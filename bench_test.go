// Package repro's root-level benchmarks regenerate every experiment table
// (E1–E12) indexed in EXPERIMENTS.md, one benchmark per table/figure, plus
// micro-benchmarks of the core solver kernels. Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark executes the full table regeneration per
// iteration, so ns/op is the cost of reproducing that table.
package repro

import (
	"strconv"
	"testing"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/linalg"
	"repro/internal/markov"
	"repro/internal/obs"
	"repro/internal/spn"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	reg, err := experiments.Registry()
	if err != nil {
		b.Fatal(err)
	}
	exp, err := reg.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var tbl *core.Table
	for i := 0; i < b.N; i++ {
		tbl, err = exp.Run(obs.Nop())
		if err != nil {
			b.Fatal(err)
		}
	}
	if tbl == nil || len(tbl.Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
}

func BenchmarkE1RBDScaling(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2FaultTree(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3StateSpace(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkE4Bounds(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5SharedRepair(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkE6FixedPoint(b *testing.B)    { benchExperiment(b, "E6") }
func BenchmarkE7Transient(b *testing.B)     { benchExperiment(b, "E7") }
func BenchmarkE8PhaseType(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9Uncertainty(b *testing.B)   { benchExperiment(b, "E9") }
func BenchmarkE10SPN(b *testing.B)          { benchExperiment(b, "E10") }
func BenchmarkE11Rejuvenation(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkE12RelGraph(b *testing.B)     { benchExperiment(b, "E12") }
func BenchmarkE13Lumping(b *testing.B)      { benchExperiment(b, "E13") }
func BenchmarkE14AutoLump(b *testing.B)     { benchExperiment(b, "E14") }
func BenchmarkE15JobSweep(b *testing.B)     { benchExperiment(b, "E15") }

// --- solver-kernel micro-benchmarks -----------------------------------

// BenchmarkGTH measures dense GTH steady-state solution across chain sizes.
func BenchmarkGTH(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			q := linalg.NewDense(n, n)
			for i := 0; i < n-1; i++ {
				q.Set(i, i+1, 1)
				q.Set(i+1, i, 2)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := linalg.GTH(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSOR measures sparse SOR steady-state solution on birth-death
// chains.
func BenchmarkSOR(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			coo := linalg.NewCOO(n, n)
			for i := 0; i < n-1; i++ {
				_ = coo.Add(i, i+1, 1)
				_ = coo.Add(i, i, -1)
				_ = coo.Add(i+1, i, 2)
			}
			for i := 1; i < n; i++ {
				_ = coo.Add(i, i, -2)
			}
			m := coo.ToCSR()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := linalg.SORSteadyState(m, linalg.SOROptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUniformization measures the transient solver on a stiff chain.
func BenchmarkUniformization(b *testing.B) {
	c := markov.NewCTMC()
	if err := c.AddRate("up", "down", 1e-3); err != nil {
		b.Fatal(err)
	}
	if err := c.AddRate("down", "up", 10); err != nil {
		b.Fatal(err)
	}
	p0, err := c.InitialAt("up")
	if err != nil {
		b.Fatal(err)
	}
	for _, t := range []float64{10, 1000} {
		b.Run("t="+strconv.FormatFloat(t, 'g', -1, 64), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.Transient(t, p0, markov.TransientOptions{SteadyStateDetection: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBDDKofN measures voting-function construction and probability
// evaluation.
func BenchmarkBDDKofN(b *testing.B) {
	for _, n := range []int{20, 60, 120} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := bdd.New(n)
				vars := make([]bdd.Ref, n)
				for j := range vars {
					v, err := m.Var(j)
					if err != nil {
						b.Fatal(err)
					}
					vars[j] = v
				}
				f, err := m.KofN(n/2, vars)
				if err != nil {
					b.Fatal(err)
				}
				p := make([]float64, n)
				for j := range p {
					p[j] = 0.9
				}
				if _, err := m.Prob(f, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSPNGeneration measures reachability-graph generation for an
// M/M/1/K net across buffer sizes.
func BenchmarkSPNGeneration(b *testing.B) {
	for _, k := range []int{32, 256, 1024} {
		b.Run("K="+strconv.Itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := spn.New()
				if err := n.Place("queue", 0); err != nil {
					b.Fatal(err)
				}
				if err := n.Place("slots", k); err != nil {
					b.Fatal(err)
				}
				steps := []error{
					n.Timed("arrive", 1),
					n.Timed("serve", 2),
					n.Input("slots", "arrive", 1),
					n.Output("arrive", "queue", 1),
					n.Input("queue", "serve", 1),
					n.Output("serve", "slots", 1),
				}
				for _, err := range steps {
					if err != nil {
						b.Fatal(err)
					}
				}
				if _, err := n.Generate(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
