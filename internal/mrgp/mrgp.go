// Package mrgp implements Markov regenerative processes for the
// state-local deterministic subclass (the DSPN-style models used in the
// tutorial's software-rejuvenation examples): every state has exponential
// outgoing transitions, and some states additionally carry a deterministic
// timeout that fires after a fixed delay unless an exponential transition
// wins the race. The clock is local to the state — entering the state
// starts it, leaving the state cancels it — so every state change is a
// regeneration point and the process is solved exactly through its embedded
// Markov renewal sequence:
//
//	P(det fires first)        = e^{-Λ_i d_i}
//	P(exp j fires first)      = (q_ij/Λ_i)·(1 - e^{-Λ_i d_i})
//	E[sojourn in i]           = (1 - e^{-Λ_i d_i})/Λ_i
//
// where Λ_i is the total exponential rate out of i. States with no
// deterministic timeout reduce to ordinary CTMC states. Timeouts with an
// infinite-rate race (Λ_i = 0) sojourn exactly d_i.
//
// This subclass covers deterministic rejuvenation intervals, watchdog
// timeouts, and periodic maintenance — the non-exponential timing patterns
// the tutorial's industrial examples actually use — while remaining exactly
// solvable without transient integration of a subordinated process.
package mrgp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/markov"
)

// Process is an MRGP under construction.
type Process struct {
	names []string
	index map[string]int
	rates []expEntry
	det   map[int]detEntry
}

type expEntry struct {
	from, to int
	rate     float64
}

type detEntry struct {
	to    int
	delay float64
}

// Errors returned by process construction and analysis.
var (
	ErrUnknownState = errors.New("mrgp: unknown state")
	ErrBadRate      = errors.New("mrgp: invalid rate")
	ErrBadDelay     = errors.New("mrgp: invalid delay")
	ErrEmpty        = errors.New("mrgp: no states")
)

// New returns an empty process.
func New() *Process {
	return &Process{index: make(map[string]int), det: make(map[int]detEntry)}
}

// State ensures a state exists and returns its index.
func (p *Process) State(name string) int {
	if i, ok := p.index[name]; ok {
		return i
	}
	i := len(p.names)
	p.index[name] = i
	p.names = append(p.names, name)
	return i
}

// AddExp adds an exponential transition.
func (p *Process) AddExp(from, to string, rate float64) error {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return fmt.Errorf("%w: %g for %q -> %q", ErrBadRate, rate, from, to)
	}
	if from == to {
		return fmt.Errorf("mrgp: self transition %q", from)
	}
	p.rates = append(p.rates, expEntry{from: p.State(from), to: p.State(to), rate: rate})
	return nil
}

// SetDeterministic attaches a deterministic timeout to a state: after
// `delay` in the state (if no exponential transition fired first) the
// process jumps to `to`. A state may carry at most one timeout.
func (p *Process) SetDeterministic(from, to string, delay float64) error {
	if delay <= 0 || math.IsNaN(delay) || math.IsInf(delay, 0) {
		return fmt.Errorf("%w: %g for %q", ErrBadDelay, delay, from)
	}
	if from == to {
		return fmt.Errorf("mrgp: deterministic self transition %q", from)
	}
	fi := p.State(from)
	if _, ok := p.det[fi]; ok {
		return fmt.Errorf("mrgp: state %q already has a deterministic timeout", from)
	}
	p.det[fi] = detEntry{to: p.State(to), delay: delay}
	return nil
}

// embedded computes, per state, the jump probabilities and expected sojourn
// of the regenerative step.
func (p *Process) embedded() (jump [][]expEntry, sojourn []float64, err error) {
	n := len(p.names)
	if n == 0 {
		return nil, nil, ErrEmpty
	}
	totals := make([]float64, n)
	outs := make([][]expEntry, n)
	for _, e := range p.rates {
		totals[e.from] += e.rate
		outs[e.from] = append(outs[e.from], e)
	}
	jump = make([][]expEntry, n)
	sojourn = make([]float64, n)
	for i := 0; i < n; i++ {
		lam := totals[i]
		d, hasDet := p.det[i]
		switch {
		case !hasDet && lam == 0: //numvet:allow float-eq exactly-zero exit rate marks an absorbing state
			// Absorbing state: no jumps, infinite sojourn (flagged by -1).
			sojourn[i] = -1
		case !hasDet:
			sojourn[i] = 1 / lam
			for _, e := range outs[i] {
				jump[i] = append(jump[i], expEntry{from: i, to: e.to, rate: e.rate / lam})
			}
		case lam == 0: //numvet:allow float-eq exactly-zero exit rate leaves only the deterministic jump
			sojourn[i] = d.delay
			jump[i] = append(jump[i], expEntry{from: i, to: d.to, rate: 1})
		default:
			surv := math.Exp(-lam * d.delay)
			sojourn[i] = (1 - surv) / lam
			jump[i] = append(jump[i], expEntry{from: i, to: d.to, rate: surv})
			for _, e := range outs[i] {
				jump[i] = append(jump[i], expEntry{from: i, to: e.to, rate: (e.rate / lam) * (1 - surv)})
			}
		}
	}
	return jump, sojourn, nil
}

// SteadyState returns the long-run fraction of time in each state via the
// embedded Markov renewal sequence.
func (p *Process) SteadyState() (map[string]float64, error) {
	jump, sojourn, err := p.embedded()
	if err != nil {
		return nil, err
	}
	for i, s := range sojourn {
		if s < 0 {
			return nil, fmt.Errorf("mrgp: state %q is absorbing; steady state undefined", p.names[i])
		}
	}
	d := markov.NewDTMC()
	for _, name := range p.names {
		d.State(name)
	}
	for i, entries := range jump {
		for _, e := range entries {
			if e.to == i {
				continue
			}
			if err := d.AddProb(p.names[i], p.names[e.to], e.rate); err != nil {
				return nil, err
			}
		}
		// Self-jump mass (det target equals source is rejected at build
		// time, so none is expected; guard anyway by renormalizing below).
	}
	nu, err := d.SteadyState()
	if err != nil {
		return nil, fmt.Errorf("mrgp embedded chain: %w", err)
	}
	w := make([]float64, len(nu))
	for i := range nu {
		w[i] = nu[i] * sojourn[i]
	}
	if err := linalg.Normalize1(w); err != nil {
		return nil, fmt.Errorf("mrgp: %w", err)
	}
	out := make(map[string]float64, len(w))
	for i, name := range p.names {
		out[name] = w[i]
	}
	return out, nil
}

// MeanTimeToAbsorption returns the expected time to reach any of the named
// states from the initial state.
func (p *Process) MeanTimeToAbsorption(initial string, absorbing ...string) (float64, error) {
	jump, sojourn, err := p.embedded()
	if err != nil {
		return 0, err
	}
	start, ok := p.index[initial]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownState, initial)
	}
	if len(absorbing) == 0 {
		return 0, fmt.Errorf("mrgp: no absorbing states given")
	}
	isAbs := make(map[int]bool, len(absorbing))
	for _, name := range absorbing {
		i, ok := p.index[name]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrUnknownState, name)
		}
		isAbs[i] = true
	}
	if isAbs[start] {
		return 0, nil
	}
	var transIdx []int
	pos := make(map[int]int)
	for i := range p.names {
		if !isAbs[i] {
			pos[i] = len(transIdx)
			transIdx = append(transIdx, i)
		}
	}
	nt := len(transIdx)
	a := linalg.NewDense(nt, nt)
	b := make([]float64, nt)
	for _, gi := range transIdx {
		q := pos[gi]
		a.Set(q, q, 1)
		if sojourn[gi] < 0 {
			return 0, fmt.Errorf("mrgp: transient state %q is absorbing; MTTA infinite", p.names[gi])
		}
		b[q] = sojourn[gi]
		for _, e := range jump[gi] {
			if !isAbs[e.to] {
				a.Add(q, pos[e.to], -e.rate)
			}
		}
	}
	m, err := linalg.LUSolve(a, b)
	if err != nil {
		return 0, fmt.Errorf("mrgp MTTA: %w", err)
	}
	return m[pos[start]], nil
}
