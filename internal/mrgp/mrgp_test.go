package mrgp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/markov"
)

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Abs(b); m > 1e-300 {
		return d / m
	}
	return d
}

func TestPureExponentialMatchesCTMC(t *testing.T) {
	lam, mu := 0.25, 1.75
	p := New()
	if err := p.AddExp("up", "down", lam); err != nil {
		t.Fatal(err)
	}
	if err := p.AddExp("down", "up", mu); err != nil {
		t.Fatal(err)
	}
	pi, err := p.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	c := markov.NewCTMC()
	_ = c.AddRate("up", "down", lam)
	_ = c.AddRate("down", "up", mu)
	want, err := c.SteadyStateMap()
	if err != nil {
		t.Fatal(err)
	}
	if relErr(pi["up"], want["up"]) > 1e-12 {
		t.Errorf("pi[up] = %g, want %g", pi["up"], want["up"])
	}
}

func TestDeterministicCycle(t *testing.T) {
	// A (det 3) → B (det 1) → A: π_A = 3/4.
	p := New()
	if err := p.SetDeterministic("A", "B", 3); err != nil {
		t.Fatal(err)
	}
	if err := p.SetDeterministic("B", "A", 1); err != nil {
		t.Fatal(err)
	}
	pi, err := p.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if relErr(pi["A"], 0.75) > 1e-12 {
		t.Errorf("pi[A] = %g, want 0.75", pi["A"])
	}
}

// rejuvProcess builds the classic rejuvenation MRGP: "up" races an
// exponential failure (rate lam) against a deterministic rejuvenation
// timeout tau; failures repair at muF, rejuvenation completes at muR.
func rejuvProcess(t *testing.T, lam, tau, muF, muR float64) *Process {
	t.Helper()
	p := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(p.AddExp("up", "failed", lam))
	must(p.SetDeterministic("up", "rejuv", tau))
	must(p.AddExp("failed", "up", muF))
	must(p.AddExp("rejuv", "up", muR))
	return p
}

// simulateRejuv estimates long-run state fractions of the rejuvenation
// process by direct Monte Carlo, as an independent oracle.
func simulateRejuv(lam, tau, muF, muR, horizon float64, rng *rand.Rand) map[string]float64 {
	occ := map[string]float64{}
	state := "up"
	now := 0.0
	for now < horizon {
		var dwell float64
		var next string
		switch state {
		case "up":
			x := rng.ExpFloat64() / lam
			if x < tau {
				dwell, next = x, "failed"
			} else {
				dwell, next = tau, "rejuv"
			}
		case "failed":
			dwell, next = rng.ExpFloat64()/muF, "up"
		default: // rejuv
			dwell, next = rng.ExpFloat64()/muR, "up"
		}
		if now+dwell > horizon {
			dwell = horizon - now
		}
		occ[state] += dwell
		now += dwell
		state = next
	}
	for k := range occ {
		occ[k] /= horizon
	}
	return occ
}

func TestRejuvenationSteadyStateVsSimulation(t *testing.T) {
	lam, tau, muF, muR := 0.05, 10.0, 0.2, 2.0
	p := rejuvProcess(t, lam, tau, muF, muR)
	pi, err := p.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(101))
	sim := simulateRejuv(lam, tau, muF, muR, 2_000_000, rng)
	for _, state := range []string{"up", "failed", "rejuv"} {
		if math.Abs(pi[state]-sim[state]) > 0.004 {
			t.Errorf("pi[%s] = %g, simulation %g", state, pi[state], sim[state])
		}
	}
	// Rejuvenation keeps unplanned downtime below the no-rejuvenation case.
	noRejuv := markov.NewCTMC()
	_ = noRejuv.AddRate("up", "failed", lam)
	_ = noRejuv.AddRate("failed", "up", muF)
	base, err := noRejuv.SteadyStateMap()
	if err != nil {
		t.Fatal(err)
	}
	if pi["failed"] >= base["failed"] {
		t.Errorf("unplanned downtime with rejuvenation %g should be below %g",
			pi["failed"], base["failed"])
	}
}

func TestRejuvenationMTTAVsSimulation(t *testing.T) {
	// Time to first failure with rejuvenation resets.
	lam, tau, muR := 0.05, 5.0, 1.0
	p := New()
	_ = p.AddExp("up", "failed", lam)
	_ = p.SetDeterministic("up", "rejuv", tau)
	_ = p.AddExp("rejuv", "up", muR)
	got, err := p.MeanTimeToAbsorption("up", "failed")
	if err != nil {
		t.Fatal(err)
	}
	// Monte Carlo oracle.
	rng := rand.New(rand.NewSource(7))
	const reps = 200000
	var sum float64
	for r := 0; r < reps; r++ {
		now := 0.0
		state := "up"
		for state != "failed" {
			if state == "up" {
				x := rng.ExpFloat64() / lam
				if x < tau {
					now += x
					state = "failed"
				} else {
					now += tau
					state = "rejuv"
				}
			} else {
				now += rng.ExpFloat64() / muR
				state = "up"
			}
		}
		sum += now
	}
	mc := sum / reps
	if relErr(got, mc) > 0.02 {
		t.Errorf("MTTA analytic %g vs simulated %g", got, mc)
	}
	// Note: because the deterministic clock resets the exponential race
	// memorylessly, MTTF equals 1/λ plus the added rejuvenation dwell
	// overhead; the analytic value must exceed 1/λ.
	if got <= 1/lam {
		t.Errorf("MTTA %g should exceed 1/λ = %g (rejuvenation adds dwell)", got, 1/lam)
	}
}

func TestValidation(t *testing.T) {
	p := New()
	if err := p.AddExp("a", "a", 1); err == nil {
		t.Error("self exp accepted")
	}
	if err := p.AddExp("a", "b", 0); err == nil {
		t.Error("zero rate accepted")
	}
	if err := p.SetDeterministic("a", "b", -1); err == nil {
		t.Error("negative delay accepted")
	}
	if err := p.SetDeterministic("a", "b", 1); err != nil {
		t.Fatal(err)
	}
	if err := p.SetDeterministic("a", "c", 2); err == nil {
		t.Error("second timeout on state accepted")
	}
	empty := New()
	if _, err := empty.SteadyState(); err == nil {
		t.Error("empty process accepted")
	}
	// Absorbing state → steady state undefined.
	abs := New()
	_ = abs.AddExp("a", "b", 1)
	if _, err := abs.SteadyState(); err == nil {
		t.Error("absorbing state accepted")
	}
}
