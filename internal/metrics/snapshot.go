package metrics

import "sort"

// SeriesSnapshot is one labeled time series at a point in time. Counters
// and gauges populate Value; histograms populate Buckets/Sum/Count
// (Buckets are cumulative counts per bound, matching Prometheus `le`
// semantics, with the implicit +Inf bucket equal to Count).
type SeriesSnapshot struct {
	// LabelValues align with the family's LabelNames.
	LabelValues []string `json:"label_values,omitempty"`
	// Value is the counter or gauge value.
	Value float64 `json:"value"`
	// Buckets are cumulative observation counts per family bound.
	Buckets []uint64 `json:"buckets,omitempty"`
	// Sum and Count are the histogram's running totals.
	Sum   float64 `json:"sum,omitempty"`
	Count uint64  `json:"count,omitempty"`
}

// FamilySnapshot is one metric family — name, schema, and every series —
// as structured Go values. It is the single source of truth behind both
// the Prometheus exposition writer and the dashboard's /api/metrics JSON,
// so the two surfaces cannot disagree about what the registry holds.
type FamilySnapshot struct {
	// Name is the family name ("relscope_solver_wall_seconds", …).
	Name string `json:"name"`
	// Help is the registration help string.
	Help string `json:"help,omitempty"`
	// Kind is "counter", "gauge", or "histogram".
	Kind string `json:"kind"`
	// LabelNames fixes the label schema shared by every series.
	LabelNames []string `json:"label_names,omitempty"`
	// Bounds are the histogram bucket upper bounds (+Inf implicit).
	Bounds []float64 `json:"bounds,omitempty"`
	// Series holds every labeled series, sorted by label values.
	Series []SeriesSnapshot `json:"series,omitempty"`
}

// Snapshot captures every registered family with deterministic ordering:
// families sort by name, series by label values. Families with no series
// yet still appear (empty Series), so consumers see the full schema
// before the first event — the same contract WritePrometheus has always
// had for HELP/TYPE lines.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.snapshot())
	}
	return out
}

// snapshotSeries returns the family's series sorted by label values.
func (f *family) snapshotSeries() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		cp := &series{
			labelValues: s.labelValues,
			val:         s.val,
			sum:         s.sum,
			count:       s.count,
		}
		if s.buckets != nil {
			cp.buckets = append([]uint64(nil), s.buckets...)
		}
		out = append(out, cp)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return joinKey(out[i].labelValues) < joinKey(out[j].labelValues)
	})
	return out
}

// snapshot renders one family into its exported form.
func (f *family) snapshot() FamilySnapshot {
	fs := FamilySnapshot{
		Name:       f.name,
		Help:       f.help,
		Kind:       f.kind.String(),
		LabelNames: append([]string(nil), f.labels...),
		Bounds:     append([]float64(nil), f.bounds...),
	}
	series := f.snapshotSeries()
	fs.Series = make([]SeriesSnapshot, 0, len(series))
	for _, s := range series {
		fs.Series = append(fs.Series, SeriesSnapshot{
			LabelValues: s.labelValues,
			Value:       s.val,
			Buckets:     s.buckets,
			Sum:         s.sum,
			Count:       s.count,
		})
	}
	return fs
}
