package metrics

import (
	"reflect"
	"strings"
	"testing"
)

// TestSnapshotStructure: the structured export carries every family with
// its schema and series, deterministically ordered.
func TestSnapshotStructure(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("zz_requests_total", "Requests.", "code")
	c.Add(3, "200")
	c.Inc("500")
	g := r.NewGauge("aa_inflight", "In flight.")
	g.Set(2)
	h := r.NewHistogram("mm_wall_seconds", "Wall.", []float64{0.1, 1}, "solver")
	h.Observe(0.05, "sor")
	h.Observe(5, "sor")

	snap := r.Snapshot()
	names := make([]string, len(snap))
	byName := make(map[string]FamilySnapshot, len(snap))
	for i, f := range snap {
		names[i] = f.Name
		byName[f.Name] = f
	}
	// Families sort by name; the dropped self-metric is always present.
	want := []string{"aa_inflight", "mm_wall_seconds", "relscope_metrics_dropped_total", "zz_requests_total"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("family order = %v, want %v", names, want)
	}

	ctr := byName["zz_requests_total"]
	if ctr.Kind != "counter" || !reflect.DeepEqual(ctr.LabelNames, []string{"code"}) {
		t.Errorf("counter schema: %+v", ctr)
	}
	if len(ctr.Series) != 2 || ctr.Series[0].LabelValues[0] != "200" || ctr.Series[0].Value != 3 {
		t.Errorf("counter series: %+v", ctr.Series)
	}

	hist := byName["mm_wall_seconds"]
	if hist.Kind != "histogram" || !reflect.DeepEqual(hist.Bounds, []float64{0.1, 1}) {
		t.Fatalf("histogram schema: %+v", hist)
	}
	s := hist.Series[0]
	if !reflect.DeepEqual(s.Buckets, []uint64{1, 1}) || s.Count != 2 || s.Sum != 5.05 {
		t.Errorf("histogram series: %+v", s)
	}

	if byName["aa_inflight"].Series[0].Value != 2 {
		t.Errorf("gauge series: %+v", byName["aa_inflight"].Series)
	}
}

// TestSnapshotMatchesExposition: the Prometheus writer renders from the
// snapshot, so every snapshot family and series value must appear in the
// exposition output.
func TestSnapshotMatchesExposition(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "X.", "k").Add(7, "v")
	r.NewHistogram("y_seconds", "Y.", []float64{1}).Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`x_total{k="v"} 7`,
		`y_seconds_bucket{le="1"} 1`,
		`y_seconds_bucket{le="+Inf"} 1`,
		`y_seconds_sum 0.5`,
		`y_seconds_count 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestSnapshotIsACopy: mutating the registry after Snapshot must not
// change an already-taken snapshot (the JSON API hands snapshots to the
// encoder concurrently with live solves).
func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "C.")
	c.Inc()
	h := r.NewHistogram("h_seconds", "H.", []float64{1})
	h.Observe(0.5)

	snap := r.Snapshot()
	c.Add(10)
	h.Observe(0.25)

	for _, f := range snap {
		switch f.Name {
		case "c_total":
			if f.Series[0].Value != 1 {
				t.Errorf("counter snapshot mutated: %v", f.Series[0].Value)
			}
		case "h_seconds":
			if f.Series[0].Count != 1 || f.Series[0].Buckets[0] != 1 {
				t.Errorf("histogram snapshot mutated: %+v", f.Series[0])
			}
		}
	}
}
