package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden locks the exposition output byte-for-byte: family
// ordering, series ordering, HELP/TYPE lines, label escaping, histogram
// bucket triplets, and float formatting.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("relscope_test_total", "A counter with\nnewline and back\\slash help.", "solver", "model")
	c.Add(3, "sor", `farm "A"`)
	c.Inc("gth", "plain")
	g := r.NewGauge("relscope_resid", "Last residual.", "solver")
	g.Set(2.5e-11, "sor")
	h := r.NewHistogram("relscope_wall_seconds", "Wall time.", []float64{0.001, 0.1}, "solver")
	h.Observe(0.0005, "sor")
	h.Observe(0.05, "sor")
	h.Observe(7, "sor")
	// Registered but never observed: HELP/TYPE must still appear.
	r.NewCounter("relscope_empty_total", "Never incremented.")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP relscope_empty_total Never incremented.
# TYPE relscope_empty_total counter
# HELP relscope_metrics_dropped_total Observations dropped due to metric misuse (label arity or registration conflicts).
# TYPE relscope_metrics_dropped_total counter
# HELP relscope_resid Last residual.
# TYPE relscope_resid gauge
relscope_resid{solver="sor"} 2.5e-11
# HELP relscope_test_total A counter with\nnewline and back\\slash help.
# TYPE relscope_test_total counter
relscope_test_total{solver="gth",model="plain"} 1
relscope_test_total{solver="sor",model="farm \"A\""} 3
# HELP relscope_wall_seconds Wall time.
# TYPE relscope_wall_seconds histogram
relscope_wall_seconds_bucket{solver="sor",le="0.001"} 1
relscope_wall_seconds_bucket{solver="sor",le="0.1"} 2
relscope_wall_seconds_bucket{solver="sor",le="+Inf"} 3
relscope_wall_seconds_sum{solver="sor"} 7.0505
relscope_wall_seconds_count{solver="sor"} 3
`
	if sb.String() != want {
		t.Errorf("exposition drifted.\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("x_total", "", "l")
	c.Inc("a\nb\\c\"d")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `x_total{l="a\nb\\c\"d"} 1`) {
		t.Errorf("escaping wrong:\n%s", sb.String())
	}
}

// TestMisuseDropsNotPanics exercises every forgiving-failure path: label
// arity mismatches, negative counter deltas, and re-registration with a
// conflicting signature must all count into the dropped self-metric and
// leave existing families untouched.
func TestMisuseDropsNotPanics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "", "a")
	c.Inc()                                     // missing label
	c.Inc("x", "y")                             // extra label
	c.Add(-1, "x")                              // negative delta
	r.NewGauge("c_total", "")                   // kind conflict
	bad := r.NewCounter("c_total", "", "other") // label conflict
	bad.Inc("v")                                // dropped, not merged
	c.Inc("x")
	if got := c.Value("x"); got != 1 {
		t.Errorf("c{a=x} = %g, want 1", got)
	}
	dropped := r.NewCounter("relscope_metrics_dropped_total", "Observations dropped due to metric misuse (label arity or registration conflicts).")
	if got := dropped.Value(); got != 6 {
		t.Errorf("dropped = %g, want 6", got)
	}
}

func TestGaugeAndHistogram(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("g", "")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %g, want 3", got)
	}
	h := r.NewHistogram("h", "", nil) // default buckets
	h.Observe(0.02)
	if got := h.Count(); got != 1 {
		t.Errorf("histogram count = %d, want 1", got)
	}
}

// TestRegistryRace hammers one registry from parallel writers while a
// reader repeatedly renders the exposition — the shape of a serve
// process being scraped mid-solve. Run under -race by scripts/check.sh.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("race_total", "", "w")
	g := r.NewGauge("race_gauge", "", "w")
	h := r.NewHistogram("race_seconds", "", nil, "w")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lbl := string(rune('a' + id))
			for i := 0; i < 500; i++ {
				c.Inc(lbl)
				g.Set(float64(i), lbl)
				h.Observe(float64(i)/1000, lbl)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	for w := 0; w < 8; w++ {
		lbl := string(rune('a' + w))
		if got := c.Value(lbl); got != 500 {
			t.Errorf("race_total{w=%s} = %g, want 500", lbl, got)
		}
		if got := h.Count(lbl); got != 500 {
			t.Errorf("race_seconds{w=%s} count = %d, want 500", lbl, got)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("h_total", "Handled.").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("content type = %q", ct)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "h_total 1") {
		t.Errorf("body missing sample:\n%s", buf[:n])
	}
}
