// Package metrics is the aggregate-telemetry layer ("relscope"): a
// concurrent registry of counters, gauges, and fixed-bucket histograms
// with label support, exposed in Prometheus text exposition format v0.0.4
// (see expose.go). Where internal/obs records one solve as a tree of
// spans, this package accumulates *across* solves — requests served,
// iterations spent per solver, wall-time distributions — so a long-running
// `relcli serve` process can be scraped like any other service.
//
// The package is stdlib-only and sits below internal/obs (obs bridges
// Recorder events into a Registry; this package knows nothing about
// spans). All operations are safe for concurrent use.
//
// Misuse — observing with the wrong number of label values, or
// re-registering a name with a different kind or label set — never
// panics: the observation is dropped and counted in the registry's
// `relscope_metrics_dropped_total` self-metric, so metric plumbing can
// never fail a solve.
package metrics

import (
	"math"
	"sync"
)

// kind discriminates the metric families a Registry can hold.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled time series inside a family. Counters and gauges
// use val; histograms use buckets/sum/count. The family mutex guards all
// fields.
type series struct {
	labelValues []string
	val         float64
	buckets     []uint64
	sum         float64
	count       uint64
}

// family is one named metric with a fixed kind, help string, label names,
// and (for histograms) bucket upper bounds.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string
	bounds []float64 // ascending; +Inf is implicit

	mu     sync.Mutex
	series map[string]*series
}

// seriesFor returns (creating if needed) the series for the given label
// values. Callers must hold f.mu. A label-arity mismatch returns nil.
func (f *family) seriesFor(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		return nil
	}
	key := joinKey(labelValues)
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), labelValues...)}
		if f.kind == kindHistogram {
			s.buckets = make([]uint64, len(f.bounds))
		}
		f.series[key] = s
	}
	return s
}

// joinKey builds a map key from label values. The unit separator (0x1f)
// never appears in sane label values; a collision would merely merge two
// series.
func joinKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, 0x1f)
		}
		b = append(b, v...)
	}
	return string(b)
}

// Registry holds metric families and renders them for scraping. The zero
// value is not usable; construct with NewRegistry or use Default.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	dropped *family // self-metric counting dropped observations
}

// NewRegistry returns an empty registry carrying only the
// relscope_metrics_dropped_total self-metric.
func NewRegistry() *Registry {
	r := &Registry{families: make(map[string]*family)}
	r.dropped = &family{
		name:   "relscope_metrics_dropped_total",
		help:   "Observations dropped due to metric misuse (label arity or registration conflicts).",
		kind:   kindCounter,
		series: make(map[string]*series),
	}
	r.families[r.dropped.name] = r.dropped
	return r
}

var defaultRegistry = NewRegistry()

// Default returns the shared process-wide registry. The relprobe.*
// counters in internal/obs and the relcli debug/serve endpoints all use
// it, so every surface reports the same numbers.
func Default() *Registry { return defaultRegistry }

// drop records one discarded observation.
func (r *Registry) drop() {
	r.dropped.mu.Lock()
	if s := r.dropped.seriesFor(nil); s != nil {
		s.val++
	}
	r.dropped.mu.Unlock()
}

// register returns the family for name, creating it if absent. A
// signature conflict (same name, different kind/labels/buckets) returns
// nil and bumps the dropped counter; the caller's handle then discards
// every observation rather than corrupting the existing family.
func (r *Registry) register(name, help string, k kind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:   name,
			help:   help,
			kind:   k,
			labels: append([]string(nil), labels...),
			bounds: append([]float64(nil), bounds...),
			series: make(map[string]*series),
		}
		r.families[name] = f
		r.mu.Unlock()
		return f
	}
	r.mu.Unlock()
	if f.kind != k || !equalStrings(f.labels, labels) || !equalFloats(f.bounds, bounds) {
		r.drop()
		return nil
	}
	return f
}

// equalFloats compares bucket-bound slices by exact bit pattern; bounds
// are configuration constants, never computed values, so == is the right
// comparison here.
func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { //numvet:allow float-eq bucket bounds are exact configuration constants
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing metric family handle.
type Counter struct {
	reg *Registry
	f   *family // nil when registration conflicted
}

// NewCounter registers (or fetches) a counter family. labelNames fixes
// the label schema; every Add/Inc must supply exactly that many values.
func (r *Registry) NewCounter(name, help string, labelNames ...string) *Counter {
	return &Counter{reg: r, f: r.register(name, help, kindCounter, labelNames, nil)}
}

// Add increments the series selected by labelValues. Negative deltas and
// label-arity mismatches are dropped.
func (c *Counter) Add(delta float64, labelValues ...string) {
	if c.f == nil || delta < 0 {
		c.reg.drop()
		return
	}
	c.f.mu.Lock()
	s := c.f.seriesFor(labelValues)
	if s == nil {
		c.f.mu.Unlock()
		c.reg.drop()
		return
	}
	s.val += delta
	c.f.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Value returns the current value of the selected series (0 when the
// series does not exist yet).
func (c *Counter) Value(labelValues ...string) float64 {
	if c.f == nil {
		return 0
	}
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	if s, ok := c.f.series[joinKey(labelValues)]; ok && len(labelValues) == len(c.f.labels) {
		return s.val
	}
	return 0
}

// Total returns the sum over every series in the family — the rollup a
// dashboard wants when the label split does not matter.
func (c *Counter) Total() float64 {
	if c.f == nil {
		return 0
	}
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	var sum float64
	for _, s := range c.f.series {
		sum += s.val
	}
	return sum
}

// Gauge is a metric family handle whose series can move both ways.
type Gauge struct {
	reg *Registry
	f   *family
}

// NewGauge registers (or fetches) a gauge family.
func (r *Registry) NewGauge(name, help string, labelNames ...string) *Gauge {
	return &Gauge{reg: r, f: r.register(name, help, kindGauge, labelNames, nil)}
}

// Set stores v on the selected series.
func (g *Gauge) Set(v float64, labelValues ...string) {
	if g.f == nil {
		g.reg.drop()
		return
	}
	g.f.mu.Lock()
	s := g.f.seriesFor(labelValues)
	if s == nil {
		g.f.mu.Unlock()
		g.reg.drop()
		return
	}
	s.val = v
	g.f.mu.Unlock()
}

// Add shifts the selected series by delta (negative allowed).
func (g *Gauge) Add(delta float64, labelValues ...string) {
	if g.f == nil {
		g.reg.drop()
		return
	}
	g.f.mu.Lock()
	s := g.f.seriesFor(labelValues)
	if s == nil {
		g.f.mu.Unlock()
		g.reg.drop()
		return
	}
	s.val += delta
	g.f.mu.Unlock()
}

// Value returns the current value of the selected series.
func (g *Gauge) Value(labelValues ...string) float64 {
	if g.f == nil {
		return 0
	}
	g.f.mu.Lock()
	defer g.f.mu.Unlock()
	if s, ok := g.f.series[joinKey(labelValues)]; ok && len(labelValues) == len(g.f.labels) {
		return s.val
	}
	return 0
}

// Histogram is a fixed-bucket histogram family handle.
type Histogram struct {
	reg *Registry
	f   *family
}

// DefBuckets are latency buckets in seconds spanning the repo's solver
// range: microsecond GTH solves of tiny chains up to multi-second sweeps.
func DefBuckets() []float64 {
	return []float64{1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 2.5, 10}
}

// NewHistogram registers (or fetches) a histogram family with the given
// ascending bucket upper bounds (+Inf is implicit; nil means DefBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64, labelNames ...string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets()
	}
	return &Histogram{reg: r, f: r.register(name, help, kindHistogram, labelNames, buckets)}
}

// Observe records v into the selected series.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	if h.f == nil {
		h.reg.drop()
		return
	}
	h.f.mu.Lock()
	s := h.f.seriesFor(labelValues)
	if s == nil {
		h.f.mu.Unlock()
		h.reg.drop()
		return
	}
	for i, ub := range h.f.bounds {
		if v <= ub {
			s.buckets[i]++
		}
	}
	s.sum += v
	s.count++
	h.f.mu.Unlock()
}

// Quantile estimates the q-quantile (q in [0,1]) of the selected series
// from its cumulative bucket counts: the answer is the upper bound of the
// first bucket whose cumulative count reaches q·total — a conservative
// (never underestimating) figure, which is what backpressure hints like
// Retry-After want. Observations beyond the last finite bound are
// attributed to the last finite bound. A series with no observations (or
// a mis-labeled lookup) reports NaN.
func (h *Histogram) Quantile(q float64, labelValues ...string) float64 {
	if h.f == nil || q < 0 || q > 1 {
		return math.NaN()
	}
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	s, ok := h.f.series[joinKey(labelValues)]
	if !ok || len(labelValues) != len(h.f.labels) || s.count == 0 || len(h.f.bounds) == 0 {
		return math.NaN()
	}
	rank := q * float64(s.count)
	for i, cum := range s.buckets {
		if float64(cum) >= rank {
			return h.f.bounds[i]
		}
	}
	return h.f.bounds[len(h.f.bounds)-1]
}

// Count returns the observation count of the selected series.
func (h *Histogram) Count(labelValues ...string) uint64 {
	if h.f == nil {
		return 0
	}
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if s, ok := h.f.series[joinKey(labelValues)]; ok && len(labelValues) == len(h.f.labels) {
		return s.count
	}
	return 0
}
