package metrics

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in Prometheus text
// exposition format v0.0.4. Output is deterministic: families sort by
// name, series by label values, and HELP/TYPE lines appear even for
// families with no series yet (so dashboards and golden tests see the
// full schema before the first event).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// snapshotSeries returns the family's series sorted by label values.
func (f *family) snapshotSeries() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		cp := &series{
			labelValues: s.labelValues,
			val:         s.val,
			sum:         s.sum,
			count:       s.count,
		}
		if s.buckets != nil {
			cp.buckets = append([]uint64(nil), s.buckets...)
		}
		out = append(out, cp)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return joinKey(out[i].labelValues) < joinKey(out[j].labelValues)
	})
	return out
}

func (f *family) write(w *bufio.Writer) error {
	if f.help != "" {
		if _, err := w.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n"); err != nil {
			return err
		}
	}
	if _, err := w.WriteString("# TYPE " + f.name + " " + f.kind.String() + "\n"); err != nil {
		return err
	}
	for _, s := range f.snapshotSeries() {
		var err error
		if f.kind == kindHistogram {
			err = f.writeHistogramSeries(w, s)
		} else {
			err = writeSample(w, f.name, f.labels, s.labelValues, "", "", s.val)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogramSeries emits the _bucket/_sum/_count triplet for one
// series. Bucket counts are stored cumulatively (Observe increments every
// bucket whose bound admits the value), matching the le semantics.
func (f *family) writeHistogramSeries(w *bufio.Writer, s *series) error {
	for i, ub := range f.bounds {
		if err := writeSample(w, f.name+"_bucket", f.labels, s.labelValues,
			"le", formatFloat(ub), float64(s.buckets[i])); err != nil {
			return err
		}
	}
	if err := writeSample(w, f.name+"_bucket", f.labels, s.labelValues,
		"le", "+Inf", float64(s.count)); err != nil {
		return err
	}
	if err := writeSample(w, f.name+"_sum", f.labels, s.labelValues, "", "", s.sum); err != nil {
		return err
	}
	return writeSample(w, f.name+"_count", f.labels, s.labelValues, "", "", float64(s.count))
}

// writeSample emits one `name{labels} value` line. extraName/extraValue
// append a synthetic label (the histogram le bound) after the family
// labels.
func writeSample(w *bufio.Writer, name string, labels, values []string, extraName, extraValue string, v float64) error {
	if _, err := w.WriteString(name); err != nil {
		return err
	}
	if len(labels) > 0 || extraName != "" {
		if err := w.WriteByte('{'); err != nil {
			return err
		}
		for i, ln := range labels {
			if i > 0 {
				if err := w.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := w.WriteString(ln + `="` + escapeLabel(values[i]) + `"`); err != nil {
				return err
			}
		}
		if extraName != "" {
			if len(labels) > 0 {
				if err := w.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := w.WriteString(extraName + `="` + escapeLabel(extraValue) + `"`); err != nil {
				return err
			}
		}
		if err := w.WriteByte('}'); err != nil {
			return err
		}
	}
	_, err := w.WriteString(" " + formatFloat(v) + "\n")
	return err
}

// formatFloat renders a sample value: shortest round-trip representation,
// with the Prometheus spellings for infinities and NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are
// legal there).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Handler returns an http.Handler serving the registry in exposition
// format — the /metrics endpoint of relcli serve and the debug server.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		// A write error here means the scraper hung up; there is no
		// one left to report it to.
		_ = r.WritePrometheus(w) //numvet:allow ignored-err scraper disconnects are benign
	})
}
