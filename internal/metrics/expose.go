package metrics

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in Prometheus text
// exposition format v0.0.4. Output is deterministic: families sort by
// name, series by label values, and HELP/TYPE lines appear even for
// families with no series yet (so dashboards and golden tests see the
// full schema before the first event). It renders from the same
// Snapshot the JSON API serves, so the two surfaces cannot drift.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.Snapshot() {
		if err := writeFamily(bw, f); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeFamily(w *bufio.Writer, f FamilySnapshot) error {
	if f.Help != "" {
		if _, err := w.WriteString("# HELP " + f.Name + " " + escapeHelp(f.Help) + "\n"); err != nil {
			return err
		}
	}
	if _, err := w.WriteString("# TYPE " + f.Name + " " + f.Kind + "\n"); err != nil {
		return err
	}
	for _, s := range f.Series {
		var err error
		if f.Kind == "histogram" {
			err = writeHistogramSeries(w, f, s)
		} else {
			err = writeSample(w, f.Name, f.LabelNames, s.LabelValues, "", "", s.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogramSeries emits the _bucket/_sum/_count triplet for one
// series. Bucket counts are stored cumulatively (Observe increments every
// bucket whose bound admits the value), matching the le semantics.
func writeHistogramSeries(w *bufio.Writer, f FamilySnapshot, s SeriesSnapshot) error {
	for i, ub := range f.Bounds {
		if err := writeSample(w, f.Name+"_bucket", f.LabelNames, s.LabelValues,
			"le", formatFloat(ub), float64(s.Buckets[i])); err != nil {
			return err
		}
	}
	if err := writeSample(w, f.Name+"_bucket", f.LabelNames, s.LabelValues,
		"le", "+Inf", float64(s.Count)); err != nil {
		return err
	}
	if err := writeSample(w, f.Name+"_sum", f.LabelNames, s.LabelValues, "", "", s.Sum); err != nil {
		return err
	}
	return writeSample(w, f.Name+"_count", f.LabelNames, s.LabelValues, "", "", float64(s.Count))
}

// writeSample emits one `name{labels} value` line. extraName/extraValue
// append a synthetic label (the histogram le bound) after the family
// labels.
func writeSample(w *bufio.Writer, name string, labels, values []string, extraName, extraValue string, v float64) error {
	if _, err := w.WriteString(name); err != nil {
		return err
	}
	if len(labels) > 0 || extraName != "" {
		if err := w.WriteByte('{'); err != nil {
			return err
		}
		for i, ln := range labels {
			if i > 0 {
				if err := w.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := w.WriteString(ln + `="` + escapeLabel(values[i]) + `"`); err != nil {
				return err
			}
		}
		if extraName != "" {
			if len(labels) > 0 {
				if err := w.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := w.WriteString(extraName + `="` + escapeLabel(extraValue) + `"`); err != nil {
				return err
			}
		}
		if err := w.WriteByte('}'); err != nil {
			return err
		}
	}
	_, err := w.WriteString(" " + formatFloat(v) + "\n")
	return err
}

// formatFloat renders a sample value: shortest round-trip representation,
// with the Prometheus spellings for infinities and NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are
// legal there).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Handler returns an http.Handler serving the registry in exposition
// format — the /metrics endpoint of relcli serve and the debug server.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		// A write error here means the scraper hung up; there is no
		// one left to report it to.
		_ = r.WritePrometheus(w) //numvet:allow ignored-err scraper disconnects are benign
	})
}
