package metrics

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a stepping clock for deterministic window tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestSlidingCounterEmptyWindow(t *testing.T) {
	clk := newFakeClock()
	c := NewSlidingCounterClock(time.Minute, 6, clk.Now)
	good, bad := c.Totals()
	if good != 0 || bad != 0 {
		t.Fatalf("empty window totals = %d,%d, want 0,0", good, bad)
	}
	// Reading an empty window repeatedly (with the clock moving) must
	// stay zero and must not panic or underflow.
	for i := 0; i < 10; i++ {
		clk.Advance(30 * time.Second)
		if g, b := c.Totals(); g != 0 || b != 0 {
			t.Fatalf("step %d: totals = %d,%d, want 0,0", i, g, b)
		}
	}
	if got := c.Span(); got != time.Minute {
		t.Fatalf("Span = %v, want 1m", got)
	}
}

func TestSlidingCounterExpiry(t *testing.T) {
	clk := newFakeClock()
	// 60s window, 6 buckets of 10s.
	c := NewSlidingCounterClock(time.Minute, 6, clk.Now)

	c.Record(true) // bad at t0
	clk.Advance(30 * time.Second)
	c.Record(false) // good at t0+30
	if g, b := c.Totals(); g != 1 || b != 1 {
		t.Fatalf("mid-window totals = %d,%d, want 1,1", g, b)
	}

	// Advance so the bad event's bucket ages out but the good one stays.
	clk.Advance(45 * time.Second) // now t0+75; bad bucket [t0,t0+10) expired
	if g, b := c.Totals(); g != 1 || b != 0 {
		t.Fatalf("after partial expiry totals = %d,%d, want 1,0", g, b)
	}

	// Advance beyond the full window: everything expires.
	clk.Advance(2 * time.Minute)
	if g, b := c.Totals(); g != 0 || b != 0 {
		t.Fatalf("after full expiry totals = %d,%d, want 0,0", g, b)
	}
}

func TestSlidingCounterBucketBoundaryStepping(t *testing.T) {
	clk := newFakeClock()
	c := NewSlidingCounterClock(10*time.Second, 5, clk.Now) // 2s buckets

	// Record one event per bucket, stepping the clock exactly one
	// bucket-width at a time across the boundary.
	for i := 0; i < 5; i++ {
		if i > 0 {
			clk.Advance(2 * time.Second)
		}
		c.Record(i%2 == 0)
	}
	g, b := c.Totals()
	if g+b != 5 {
		t.Fatalf("all five events should still be in window, got %d good %d bad", g, b)
	}

	// One more bucket step evicts exactly the oldest event each time.
	for i := 0; i < 5; i++ {
		clk.Advance(2 * time.Second)
		g, b = c.Totals()
		if got, want := g+b, uint64(4-i); got != want {
			t.Fatalf("after %d evictions: %d events in window, want %d", i+1, got, want)
		}
	}
}

func TestSlidingCounterClockJumpClearsRing(t *testing.T) {
	clk := newFakeClock()
	c := NewSlidingCounterClock(time.Minute, 6, clk.Now)
	for i := 0; i < 100; i++ {
		c.Record(i%3 == 0)
	}
	// Jump far past the whole window in one step (e.g. a suspended VM).
	clk.Advance(24 * time.Hour)
	if g, b := c.Totals(); g != 0 || b != 0 {
		t.Fatalf("after clock jump totals = %d,%d, want 0,0", g, b)
	}
	// The ring must still accept new events after the wipe.
	c.Record(false)
	if g, b := c.Totals(); g != 1 || b != 0 {
		t.Fatalf("post-jump record totals = %d,%d, want 1,0", g, b)
	}
}

func TestSlidingCounterBackwardClockStep(t *testing.T) {
	clk := newFakeClock()
	c := NewSlidingCounterClock(time.Minute, 6, clk.Now)
	c.Record(false)
	clk.Advance(-30 * time.Second) // non-monotonic clock
	c.Record(true)                 // must not panic or rotate backwards
	if g, b := c.Totals(); g != 1 || b != 1 {
		t.Fatalf("backward-step totals = %d,%d, want 1,1", g, b)
	}
}

// TestSlidingCounterConcurrentRotation hammers Record and Totals from
// many goroutines while the clock is stepped across bucket boundaries;
// run under -race it locks the snapshot-concurrent-with-rotation path.
func TestSlidingCounterConcurrentRotation(t *testing.T) {
	clk := newFakeClock()
	c := NewSlidingCounterClock(100*time.Millisecond, 10, clk.Now)

	var (
		wg   sync.WaitGroup
		stop atomic.Bool
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				c.Record(i%5 == 0)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			g, b := c.Totals()
			// Totals must be internally consistent: a snapshot taken
			// mid-rotation can never exceed what the window holds by
			// construction (uint64 sums of live buckets).
			_ = g + b
		}
	}()
	for i := 0; i < 200; i++ {
		clk.Advance(10 * time.Millisecond) // one bucket per step
	}
	stop.Store(true)
	wg.Wait()

	// After a full window of silence everything drains to zero.
	clk.Advance(time.Second)
	if g, b := c.Totals(); g != 0 || b != 0 {
		t.Fatalf("drained totals = %d,%d, want 0,0", g, b)
	}
}
