package metrics

import (
	"sync"
	"time"
)

// SlidingCounter counts good/bad events over a sliding time window,
// implemented as a ring of fixed-width buckets that rotate with the
// clock. It is the substrate the SLO engine's multi-window burn-rate
// evaluation stands on: one counter per (objective, window), each
// Totals() call reporting the event counts of roughly the last Span.
//
// The window is approximate at bucket granularity: an event recorded at
// the very start of a bucket expires a full bucket-width late. With the
// default 30 buckets the error is ~3% of the span, far below the noise
// of any burn-rate threshold.
//
// All methods are safe for concurrent use.
type SlidingCounter struct {
	mu      sync.Mutex
	now     func() time.Time
	bucketD time.Duration
	buckets []slidingBucket
	head    int       // index of the current bucket
	headT   time.Time // start of the current bucket (zero until first event)
}

type slidingBucket struct {
	good, bad uint64
}

// NewSlidingCounter builds a counter covering span with n buckets
// (n < 2 means 30). Span must be positive.
func NewSlidingCounter(span time.Duration, n int) *SlidingCounter {
	return NewSlidingCounterClock(span, n, time.Now)
}

// NewSlidingCounterClock is NewSlidingCounter with an injectable clock,
// so tests (and deterministic experiments) can step time explicitly.
func NewSlidingCounterClock(span time.Duration, n int, now func() time.Time) *SlidingCounter {
	if n < 2 {
		n = 30
	}
	if span <= 0 {
		span = time.Minute
	}
	if now == nil {
		now = time.Now
	}
	return &SlidingCounter{
		now:     now,
		bucketD: span / time.Duration(n),
		buckets: make([]slidingBucket, n),
	}
}

// Span reports the window the counter covers.
func (c *SlidingCounter) Span() time.Duration {
	return c.bucketD * time.Duration(len(c.buckets))
}

// Record counts one event, bad or good, at the current clock reading.
func (c *SlidingCounter) Record(bad bool) {
	c.mu.Lock()
	c.advanceLocked(c.now())
	if bad {
		c.buckets[c.head].bad++
	} else {
		c.buckets[c.head].good++
	}
	c.mu.Unlock()
}

// Totals reports the good and bad event counts currently inside the
// window, expiring aged buckets first.
func (c *SlidingCounter) Totals() (good, bad uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceLocked(c.now())
	for _, b := range c.buckets {
		good += b.good
		bad += b.bad
	}
	return good, bad
}

// advanceLocked rotates the ring so head covers the bucket containing t,
// zeroing every bucket stepped over. A clock reading at or before the
// current bucket leaves the ring untouched (monotonicity is not assumed;
// a backward step simply lands in the current bucket).
func (c *SlidingCounter) advanceLocked(t time.Time) {
	if c.headT.IsZero() {
		c.headT = t.Truncate(c.bucketD)
		return
	}
	if t.Before(c.headT.Add(c.bucketD)) {
		return
	}
	steps := int(t.Sub(c.headT) / c.bucketD)
	if steps >= len(c.buckets) {
		for i := range c.buckets {
			c.buckets[i] = slidingBucket{}
		}
		c.headT = t.Truncate(c.bucketD)
		return
	}
	for i := 0; i < steps; i++ {
		c.head = (c.head + 1) % len(c.buckets)
		c.buckets[c.head] = slidingBucket{}
	}
	c.headT = c.headT.Add(time.Duration(steps) * c.bucketD)
}
