package modelio

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/failpoint"
	"repro/internal/faulttree"
	"repro/internal/guard"
	"repro/internal/hier"
	"repro/internal/linalg"
	"repro/internal/lint"
	"repro/internal/markov"
	"repro/internal/obs"
	"repro/internal/rbd"
	"repro/internal/relgraph"
)

// Result is one computed measure.
type Result struct {
	// Measure names the measure.
	Measure string `json:"measure"`
	// Value holds a scalar result (NaN-free; unused for set results). For
	// degraded bounds-only answers it is the conservative endpoint of
	// Bound (see SolveBounds).
	Value float64 `json:"value,omitempty"`
	// Sets holds set-valued results (cut sets, path sets).
	Sets [][]string `json:"sets,omitempty"`
	// Detail holds per-item results (importance measures).
	Detail map[string]float64 `json:"detail,omitempty"`
	// Bound carries the certified interval of a degraded bounds-only
	// answer (nil for exact results).
	Bound *Bound `json:"bound,omitempty"`
}

// Bound is a certified interval attached to a degraded bounds-only
// Result: the true value provably lies in [Lower, Upper].
type Bound struct {
	Lower  float64 `json:"lower"`
	Upper  float64 `json:"upper"`
	Method string  `json:"method"`
}

// SolveOptions configures optional solver-entry behavior.
type SolveOptions struct {
	// Preflight lints the model before solving and refuses to run the
	// solvers when any error-severity diagnostic is found, returning a
	// *lint.Error listing them. Warnings never block solving.
	Preflight bool
	// Recorder receives solver telemetry as a tree of nested spans (nil
	// disables; see internal/obs). Attach an *obs.Trace to render the
	// solve as JSON or an indented text trace.
	Recorder obs.Recorder
	// Context interrupts iterative solvers at iteration granularity; an
	// interrupted solve returns an error matching guard.ErrCanceled or
	// guard.ErrDeadline. Nil never interrupts.
	Context context.Context
	// Timeout, when positive, bounds the whole solve by deriving a
	// deadline from Context (or the background context when Context is
	// nil).
	Timeout time.Duration
	// Rails selects the numerical guard-rail strictness applied at solver
	// boundaries: guard.Strict fails the solve on violated invariants
	// (non-finite outputs, lost probability mass), guard.Warn (the ""
	// default) records them in the trace, guard.Off disables the checks.
	Rails guard.Strictness
}

// solveEnv carries the per-solve robustness state through the dispatcher.
type solveEnv struct {
	ctx   context.Context
	rails guard.Rails
}

// ErrNoConvergence marks an iterative solver that exhausted its iteration
// budget, surfaced uniformly through SolveWithOptions regardless of which
// layer (linalg sweep, hierarchical fixed point) failed to converge. The
// wrapped chain retains the typed per-layer error (linalg.ErrNoConvergence,
// hier.NoConvergenceError) for errors.As.
var ErrNoConvergence = errors.New("modelio: solver did not converge")

// wrapConvergence folds the per-layer typed non-convergence errors into
// the package-level ErrNoConvergence sentinel, keeping the original chain.
func wrapConvergence(err error) error {
	if err == nil {
		return nil
	}
	var lerr *linalg.ErrNoConvergence
	if errors.As(err, &lerr) {
		return fmt.Errorf("%w (%d iterations, residual %g): %w", ErrNoConvergence, lerr.Iter, lerr.Residual, err)
	}
	var herr *hier.NoConvergenceError
	if errors.As(err, &herr) {
		return fmt.Errorf("%w (%d sweeps, last delta %g): %w", ErrNoConvergence, herr.Iterations, herr.LastDelta, err)
	}
	return err
}

// SolveWithOptions evaluates the specification, optionally running the
// static lint pass first (see SolveOptions.Preflight) and recording
// solver telemetry (see SolveOptions.Recorder). Panics escaping a solver
// are converted into a *guard.InternalError rather than crashing the
// caller.
func SolveWithOptions(s *Spec, opts SolveOptions) (results []Result, err error) {
	if opts.Preflight {
		var errs []lint.Diagnostic
		for _, d := range Lint(s) {
			if d.Severity == lint.SevError {
				errs = append(errs, d)
			}
		}
		if len(errs) > 0 {
			return nil, &lint.Error{Diags: errs}
		}
	}
	mode, err := guard.ParseStrictness(string(opts.Rails))
	if err != nil {
		return nil, err
	}
	rec := obs.Or(opts.Recorder)
	if rec.Enabled() {
		rec = rec.Span("modelio.solve", obs.S("type", s.Type), obs.S("model", s.Name))
		defer rec.End()
	}
	defer guard.RecoverPanic(&err, rec, "modelio.solve")
	ctx := opts.Context
	if opts.Timeout > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	env := solveEnv{ctx: ctx, rails: guard.Rails{Mode: mode, Recorder: rec}}
	results, err = solve(s, rec, env)
	return results, wrapConvergence(err)
}

// Solve evaluates every requested measure of the specification.
func Solve(s *Spec) (results []Result, err error) {
	defer guard.RecoverPanic(&err, nil, "modelio.solve")
	results, err = solve(s, obs.Nop(), solveEnv{})
	return results, wrapConvergence(err)
}

func solve(s *Spec, rec obs.Recorder, env solveEnv) ([]Result, error) {
	if err := guard.Ctx(env.ctx, "modelio.solve", 0, math.NaN()); err != nil {
		return nil, err
	}
	if err := failpoint.InjectCtx(env.ctx, fpBuild); err != nil {
		return nil, err
	}
	switch s.Type {
	case "rbd":
		return solveRBD(s.RBD, rec, env)
	case "faulttree":
		return solveFaultTree(s.FaultTree, rec, env)
	case "ctmc":
		return solveCTMC(s.CTMC, rec, env)
	case "relgraph":
		return solveRelGraph(s.RelGraph, rec)
	case "spn":
		return solveSPN(s.SPN, rec)
	default:
		return nil, fmt.Errorf("%w: unknown type %q", ErrBadSpec, s.Type)
	}
}

// measureSpan opens one span per requested measure so the trace tree
// mirrors the model's measure list.
func measureSpan(rec obs.Recorder, meas string) obs.Recorder {
	if !rec.Enabled() {
		return rec
	}
	return rec.Span("measure:" + meas)
}

func solveRBD(spec *RBDSpec, rec obs.Recorder, env solveEnv) ([]Result, error) {
	if spec.Structure == nil {
		return nil, fmt.Errorf("%w: rbd without structure", ErrBadSpec)
	}
	pool, err := buildRBDPool(spec)
	if err != nil {
		return nil, err
	}
	block, err := buildBlock(spec.Structure, pool)
	if err != nil {
		return nil, err
	}
	m, err := rbd.New(block)
	if err != nil {
		return nil, err
	}
	if rec.Enabled() {
		st := m.BDDStats()
		rec.Set(obs.S("solver", "bdd"), obs.I("components", len(spec.Components)),
			obs.I("bdd_nodes", m.BDDSize()),
			obs.I64("bdd_ite_hits", st.ITEHits), obs.I64("bdd_ite_misses", st.ITEMisses))
	}
	var out []Result
	for _, meas := range spec.Measures {
		sp := measureSpan(rec, meas)
		switch meas {
		case "availability":
			v, err := m.SteadyStateAvailability()
			if err != nil {
				return nil, err
			}
			if err := env.rails.CheckUnitInterval("rbd.availability", v); err != nil {
				return nil, err
			}
			out = append(out, Result{Measure: meas, Value: v})
		case "mttf":
			v, err := m.MTTF()
			if err != nil {
				return nil, err
			}
			if err := env.rails.CheckFiniteScalar("rbd.mttf", v); err != nil {
				return nil, err
			}
			out = append(out, Result{Measure: meas, Value: v})
		case "reliability":
			if spec.Time <= 0 {
				return nil, fmt.Errorf("%w: reliability needs a positive time", ErrBadSpec)
			}
			v, err := m.ReliabilityAt(spec.Time)
			if err != nil {
				return nil, err
			}
			if err := env.rails.CheckUnitInterval("rbd.reliability", v); err != nil {
				return nil, err
			}
			out = append(out, Result{Measure: meas, Value: v})
		case "mincuts":
			cuts := m.MinimalCutSets()
			sp.Set(obs.I("mincuts", len(cuts)))
			out = append(out, Result{Measure: meas, Sets: cuts})
		case "importance":
			if spec.Time <= 0 {
				return nil, fmt.Errorf("%w: importance needs a positive time", ErrBadSpec)
			}
			imps, err := m.ImportanceAt(spec.Time)
			if err != nil {
				return nil, err
			}
			detail := make(map[string]float64, len(imps))
			for _, im := range imps {
				detail[im.Component] = im.Birnbaum
			}
			out = append(out, Result{Measure: meas, Detail: detail})
		default:
			return nil, fmt.Errorf("%w: unknown rbd measure %q", ErrBadSpec, meas)
		}
		sp.End()
	}
	return out, nil
}

func buildBlock(b *BlockSpec, pool map[string]*rbd.Component) (*rbd.Block, error) {
	if b == nil {
		return nil, fmt.Errorf("%w: nil block", ErrBadSpec)
	}
	if b.Comp != "" {
		c, ok := pool[b.Comp]
		if !ok {
			return nil, fmt.Errorf("%w: unknown component %q", ErrBadSpec, b.Comp)
		}
		return rbd.Comp(c), nil
	}
	children := make([]*rbd.Block, len(b.Children))
	for i, cs := range b.Children {
		child, err := buildBlock(cs, pool)
		if err != nil {
			return nil, err
		}
		children[i] = child
	}
	switch b.Op {
	case "series":
		return rbd.Series(children...), nil
	case "parallel":
		return rbd.Parallel(children...), nil
	case "kofn":
		return rbd.KOfN(b.K, children...), nil
	default:
		return nil, fmt.Errorf("%w: unknown block op %q", ErrBadSpec, b.Op)
	}
}

func solveFaultTree(spec *FaultTreeSpec, rec obs.Recorder, env solveEnv) ([]Result, error) {
	if spec.Top == nil {
		return nil, fmt.Errorf("%w: faulttree without top gate", ErrBadSpec)
	}
	pool, err := buildFTPool(spec)
	if err != nil {
		return nil, err
	}
	node, err := buildGate(spec.Top, pool)
	if err != nil {
		return nil, err
	}
	if spec.BDDBudget > 0 {
		// The Boeing path: exact BDD analysis inside the node budget,
		// falling back to MOCUS cut sets with rare-event bounds beyond it.
		out, _, err := guard.RunChain(env.ctx, rec, "faulttree",
			guard.Step[[]Result]{Name: "bdd", Run: func(_ context.Context, arec obs.Recorder) ([]Result, error) {
				tree, err := faulttree.NewWithBudget(node, spec.BDDBudget)
				if err != nil {
					return nil, err
				}
				return faultTreeMeasures(spec, tree, arec, env)
			}},
			guard.Step[[]Result]{Name: "mocus-bounds", Run: func(_ context.Context, arec obs.Recorder) ([]Result, error) {
				tree, err := faulttree.NewCutSetsOnly(node)
				if err != nil {
					return nil, err
				}
				return faultTreeBoundMeasures(spec, tree, arec, env)
			}},
		)
		return out, err
	}
	tree, err := faulttree.New(node)
	if err != nil {
		return nil, err
	}
	return faultTreeMeasures(spec, tree, rec, env)
}

// faultTreeMeasures evaluates the requested measures on a BDD-compiled
// tree.
func faultTreeMeasures(spec *FaultTreeSpec, tree *faulttree.Tree, rec obs.Recorder, env solveEnv) ([]Result, error) {
	if rec.Enabled() {
		st := tree.BDDStats()
		rec.Set(obs.S("solver", "bdd"), obs.I("events", len(spec.Events)),
			obs.I("bdd_nodes", tree.BDDSize()),
			obs.I64("bdd_ite_hits", st.ITEHits), obs.I64("bdd_ite_misses", st.ITEMisses))
	}
	var out []Result
	for _, meas := range spec.Measures {
		sp := measureSpan(rec, meas)
		switch meas {
		case "top":
			v, err := tree.TopStatic()
			if err != nil {
				return nil, err
			}
			if err := env.rails.CheckUnitInterval("faulttree.top", v); err != nil {
				return nil, err
			}
			out = append(out, Result{Measure: meas, Value: v})
		case "mincuts":
			cuts := tree.MinimalCutSets()
			sp.Set(obs.I("mincuts", len(cuts)))
			out = append(out, Result{Measure: meas, Sets: cuts})
		case "rare-event":
			v, err := tree.RareEventBound()
			if err != nil {
				return nil, err
			}
			out = append(out, Result{Measure: meas, Value: v})
		case "importance":
			imps, err := tree.Importance()
			if err != nil {
				return nil, err
			}
			detail := make(map[string]float64, len(imps))
			for _, im := range imps {
				detail[im.Event] = im.Birnbaum
			}
			out = append(out, Result{Measure: meas, Detail: detail})
		case "topAt":
			if spec.Time <= 0 {
				return nil, fmt.Errorf("%w: topAt needs a positive time", ErrBadSpec)
			}
			v, err := tree.TopAt(spec.Time)
			if err != nil {
				return nil, err
			}
			if err := env.rails.CheckUnitInterval("faulttree.topAt", v); err != nil {
				return nil, err
			}
			out = append(out, Result{Measure: meas, Value: v})
		case "mttf":
			v, err := tree.MTTF()
			if err != nil {
				return nil, err
			}
			if err := env.rails.CheckFiniteScalar("faulttree.mttf", v); err != nil {
				return nil, err
			}
			out = append(out, Result{Measure: meas, Value: v})
		default:
			return nil, fmt.Errorf("%w: unknown faulttree measure %q", ErrBadSpec, meas)
		}
		sp.End()
	}
	return out, nil
}

// faultTreeBoundMeasures evaluates the measures a cut-sets-only tree can
// support: exact probabilities are replaced by the rare-event upper bound,
// computed in log space so heavily redundant cuts do not underflow. The
// BDD-only measures (importance, topAt, mttf) fail with a structural error
// rather than silently degrading.
func faultTreeBoundMeasures(spec *FaultTreeSpec, tree *faulttree.Tree, rec obs.Recorder, env solveEnv) ([]Result, error) {
	cuts, err := tree.CutSets()
	if err != nil {
		return nil, err
	}
	if rec.Enabled() {
		rec.Set(obs.S("solver", "mocus-bounds"), obs.I("events", len(spec.Events)),
			obs.I("mincuts", len(cuts)), obs.S("approx", "rare-event-bound"))
	}
	var out []Result
	for _, meas := range spec.Measures {
		sp := measureSpan(rec, meas)
		switch meas {
		case "top", "rare-event":
			lb, err := tree.RareEventBoundLog()
			if err != nil {
				return nil, err
			}
			v := math.Exp(lb)
			if err := env.rails.CheckUnitInterval("faulttree.bound."+meas, v); err != nil {
				return nil, err
			}
			sp.Set(obs.S("approx", "rare-event-bound"), obs.F("log_bound", lb))
			out = append(out, Result{Measure: meas, Value: v})
		case "mincuts":
			sp.Set(obs.I("mincuts", len(cuts)))
			out = append(out, Result{Measure: meas, Sets: cuts})
		default:
			return nil, fmt.Errorf("%w: measure %q needs an exact BDD; raise bddBudget or drop the measure", ErrBadSpec, meas)
		}
		sp.End()
	}
	return out, nil
}

func buildGate(g *GateSpec, pool map[string]*faulttree.Event) (*faulttree.Node, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil gate", ErrBadSpec)
	}
	if g.Event != "" {
		e, ok := pool[g.Event]
		if !ok {
			return nil, fmt.Errorf("%w: unknown event %q", ErrBadSpec, g.Event)
		}
		return faulttree.Basic(e), nil
	}
	children := make([]*faulttree.Node, len(g.Children))
	for i, cs := range g.Children {
		child, err := buildGate(cs, pool)
		if err != nil {
			return nil, err
		}
		children[i] = child
	}
	switch g.Op {
	case "and":
		return faulttree.And(children...), nil
	case "or":
		return faulttree.Or(children...), nil
	case "atleast":
		return faulttree.AtLeast(g.K, children...), nil
	case "not":
		if len(children) != 1 {
			return nil, fmt.Errorf("%w: not takes one child", ErrBadSpec)
		}
		return faulttree.Not(children[0]), nil
	default:
		return nil, fmt.Errorf("%w: unknown gate op %q", ErrBadSpec, g.Op)
	}
}

func solveCTMC(spec *CTMCSpec, rec obs.Recorder, env solveEnv) ([]Result, error) {
	c := markov.NewCTMC()
	for _, tr := range spec.Transitions {
		if err := c.AddRate(tr.From, tr.To, tr.Rate); err != nil {
			return nil, err
		}
	}
	if rec.Enabled() {
		rec.Set(obs.I("states", c.NumStates()), obs.I("transitions", len(spec.Transitions)))
	}
	initial, upStates, absorbing := spec.Initial, spec.UpStates, spec.Absorbing
	if lumpEligible(spec) {
		if lumped, toBlock := autoLump(c, spec, rec); lumped != nil {
			c = lumped
			upStates = mapToBlocks(upStates, toBlock)
			absorbing = mapToBlocks(absorbing, toBlock)
			if b, ok := toBlock[initial]; ok {
				initial = b
			}
		}
	}
	ssOpts := func(sp obs.Recorder) markov.SteadyStateOptions {
		return markov.SteadyStateOptions{
			Method: spec.Solver,
			SOR: linalg.SOROptions{
				Tol:     spec.SolverTol,
				MaxIter: spec.SolverMaxIter,
				Omega:   spec.SolverOmega,
			},
			Recorder: sp,
			Ctx:      env.ctx,
		}
	}
	var out []Result
	for _, meas := range spec.Measures {
		sp := measureSpan(rec, meas)
		switch meas {
		case "steadystate":
			pi, err := c.SteadyStateMapWithOptions(ssOpts(sp))
			if err != nil {
				return nil, err
			}
			probs := make([]float64, 0, len(pi))
			for _, v := range pi {
				probs = append(probs, v)
			}
			if err := env.rails.CheckProbVector("ctmc.steadystate", probs); err != nil {
				return nil, err
			}
			out = append(out, Result{Measure: meas, Detail: pi})
		case "availability":
			if len(upStates) == 0 {
				return nil, fmt.Errorf("%w: availability needs upStates", ErrBadSpec)
			}
			pi, err := c.SteadyStateWithOptions(ssOpts(sp))
			if err != nil {
				return nil, err
			}
			if err := env.rails.CheckProbVector("ctmc.availability", pi); err != nil {
				return nil, err
			}
			v, err := c.ProbSum(pi, upStates...)
			if err != nil {
				return nil, err
			}
			if err := env.rails.CheckUnitInterval("ctmc.availability", v); err != nil {
				return nil, err
			}
			out = append(out, Result{Measure: meas, Value: v})
		case "transient":
			if spec.Initial == "" || spec.Time <= 0 {
				return nil, fmt.Errorf("%w: transient needs initial and positive time", ErrBadSpec)
			}
			p0, err := c.InitialAt(spec.Initial)
			if err != nil {
				return nil, err
			}
			p, err := c.Transient(spec.Time, p0, markov.TransientOptions{Recorder: sp, Ctx: env.ctx})
			if err != nil {
				return nil, err
			}
			if err := env.rails.CheckProbVector("ctmc.transient", p); err != nil {
				return nil, err
			}
			detail := make(map[string]float64, len(p))
			for i, name := range c.StateNames() {
				detail[name] = p[i]
			}
			out = append(out, Result{Measure: meas, Detail: detail})
		case "mtta":
			if initial == "" || len(absorbing) == 0 {
				return nil, fmt.Errorf("%w: mtta needs initial and absorbing states", ErrBadSpec)
			}
			v, err := c.MTTF(initial, absorbing...)
			if err != nil {
				return nil, err
			}
			if err := env.rails.CheckFiniteScalar("ctmc.mtta", v); err != nil {
				return nil, err
			}
			out = append(out, Result{Measure: meas, Value: v})
		default:
			return nil, fmt.Errorf("%w: unknown ctmc measure %q", ErrBadSpec, meas)
		}
		sp.End()
	}
	return out, nil
}

func solveRelGraph(spec *RelGraphSpec, rec obs.Recorder) ([]Result, error) {
	g := relgraph.New()
	for _, es := range spec.Edges {
		if err := g.AddEdge(relgraph.Edge{Name: es.Name, From: es.From, To: es.To, Rel: es.Rel}); err != nil {
			return nil, err
		}
	}
	if rec.Enabled() {
		rec.Set(obs.S("solver", "factoring"), obs.I("edges", len(spec.Edges)))
	}
	var out []Result
	for _, meas := range spec.Measures {
		sp := measureSpan(rec, meas)
		switch meas {
		case "reliability":
			v, err := g.Reliability(spec.Source, spec.Target)
			if err != nil {
				return nil, err
			}
			out = append(out, Result{Measure: meas, Value: v})
		case "minpaths":
			paths, err := g.MinimalPaths(spec.Source, spec.Target)
			if err != nil {
				return nil, err
			}
			sp.Set(obs.I("minpaths", len(paths)))
			out = append(out, Result{Measure: meas, Sets: paths})
		case "mincuts":
			cuts, err := g.MinimalCuts(spec.Source, spec.Target)
			if err != nil {
				return nil, err
			}
			sp.Set(obs.I("mincuts", len(cuts)))
			out = append(out, Result{Measure: meas, Sets: cuts})
		default:
			return nil, fmt.Errorf("%w: unknown relgraph measure %q", ErrBadSpec, meas)
		}
		sp.End()
	}
	return out, nil
}

// WriteDOT renders the model's structure as Graphviz DOT. Supported for
// CTMC specifications (state diagram) and SPN specifications (Petri net);
// other model families have no canonical graph rendering here.
func WriteDOT(s *Spec, w io.Writer) error {
	switch s.Type {
	case "ctmc":
		c := markov.NewCTMC()
		for _, tr := range s.CTMC.Transitions {
			if err := c.AddRate(tr.From, tr.To, tr.Rate); err != nil {
				return err
			}
		}
		up := make(map[string]bool, len(s.CTMC.UpStates))
		for _, name := range s.CTMC.UpStates {
			up[name] = true
		}
		highlight := func(state string) bool {
			return len(up) > 0 && !up[state]
		}
		return c.WriteDOT(w, s.Name, highlight)
	case "spn":
		n, err := buildSPN(s.SPN)
		if err != nil {
			return err
		}
		return n.WriteDOT(w, s.Name)
	default:
		return fmt.Errorf("%w: no DOT rendering for model type %q", ErrBadSpec, s.Type)
	}
}

// Render formats results as a human-readable report.
func Render(name string, results []Result) string {
	var sb strings.Builder
	if name != "" {
		fmt.Fprintf(&sb, "model: %s\n", name)
	}
	for _, r := range results {
		switch {
		case r.Sets != nil:
			fmt.Fprintf(&sb, "%s (%d sets):\n", r.Measure, len(r.Sets))
			for _, set := range r.Sets {
				fmt.Fprintf(&sb, "  {%s}\n", strings.Join(set, ", "))
			}
		case r.Detail != nil:
			fmt.Fprintf(&sb, "%s:\n", r.Measure)
			keys := make([]string, 0, len(r.Detail))
			for k := range r.Detail {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&sb, "  %-20s %.10g\n", k, r.Detail[k])
			}
		default:
			fmt.Fprintf(&sb, "%-20s %.10g\n", r.Measure, r.Value)
		}
	}
	return sb.String()
}
