package modelio

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/guard"
	"repro/internal/hier"
	"repro/internal/linalg"
	"repro/internal/obs"
)

// starvedSOR is a CTMC document whose SOR budget is far too small, forcing
// the typed linalg non-convergence error up through the solve.
const starvedSOR = `{
  "type": "ctmc",
  "ctmc": {
    "transitions": [
      {"from": "a", "to": "b", "rate": 0.001},
      {"from": "b", "to": "a", "rate": 1000.0},
      {"from": "b", "to": "c", "rate": 0.001},
      {"from": "c", "to": "b", "rate": 1000.0}
    ],
    "measures": ["steadystate"],
    "solver": "sor",
    "solverTol": 1e-15,
    "solverMaxIter": 2
  }
}`

// TestUnwrapLinalgNoConvergence walks the whole error chain of a failed
// solve: the package sentinel, the typed per-layer error, and the guard
// failure classification must all survive the wrapping.
func TestUnwrapLinalgNoConvergence(t *testing.T) {
	spec, err := Parse(strings.NewReader(starvedSOR))
	if err != nil {
		t.Fatal(err)
	}
	_, err = SolveWithOptions(spec, SolveOptions{})
	if err == nil {
		t.Fatal("starved SOR budget converged")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("errors.Is(err, modelio.ErrNoConvergence) = false for %v", err)
	}
	var lerr *linalg.ErrNoConvergence
	if !errors.As(err, &lerr) {
		t.Fatalf("errors.As to *linalg.ErrNoConvergence = false for %v", err)
	}
	if lerr.Iter != 2 {
		t.Errorf("typed error iterations = %d, want 2", lerr.Iter)
	}
	if got := guard.Classify(err); got != guard.ClassNoConvergence {
		t.Errorf("guard.Classify(err) = %q, want %q", got, guard.ClassNoConvergence)
	}
}

// TestUnwrapHierNoConvergence checks wrapConvergence's hier branch: the
// folded error must match both the modelio and hier sentinels and expose
// the typed diagnostics.
func TestUnwrapHierNoConvergence(t *testing.T) {
	inner := &hier.NoConvergenceError{Iterations: 7, LastDelta: 0.25}
	err := wrapConvergence(fmt.Errorf("outer: %w", inner))
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("errors.Is(err, modelio.ErrNoConvergence) = false for %v", err)
	}
	if !errors.Is(err, hier.ErrNoConvergence) {
		t.Errorf("errors.Is(err, hier.ErrNoConvergence) = false for %v", err)
	}
	var herr *hier.NoConvergenceError
	if !errors.As(err, &herr) {
		t.Fatalf("errors.As to *hier.NoConvergenceError = false for %v", err)
	}
	if herr.Iterations != 7 {
		t.Errorf("typed error iterations = %d, want 7", herr.Iterations)
	}
}

// TestUnwrapDeadline drives a real solve into its Timeout and checks every
// address the caller might match against: the guard sentinel, the stdlib
// context error, and the typed interrupt with its partial progress.
func TestUnwrapDeadline(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"type":"ctmc","ctmc":{"transitions":[`)
	for i := 0; i < 1499; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"from":"s%d","to":"s%d","rate":1.0},{"from":"s%d","to":"s%d","rate":2.0}`,
			i, i+1, i+1, i)
	}
	sb.WriteString(`],"measures":["steadystate"],"solver":"sor","solverTol":1e-30}}`)
	spec, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	_, err = SolveWithOptions(spec, SolveOptions{Timeout: 1_000_000}) // 1ms
	if err == nil {
		t.Fatal("unconvergeable solve beat a 1ms deadline")
	}
	if !errors.Is(err, guard.ErrDeadline) {
		t.Errorf("errors.Is(err, guard.ErrDeadline) = false for %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false for %v", err)
	}
	var ierr *guard.InterruptError
	if !errors.As(err, &ierr) {
		t.Fatalf("errors.As to *guard.InterruptError = false for %v", err)
	}
	if ierr.Op == "" {
		t.Error("interrupt carries no operation label")
	}
}

// TestUnwrapCanceled covers the pre-canceled Context path end to end.
func TestUnwrapCanceled(t *testing.T) {
	spec, err := Parse(strings.NewReader(starvedSOR))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = SolveWithOptions(spec, SolveOptions{Context: ctx})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Errorf("errors.Is(err, guard.ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if got := guard.Classify(err); got != guard.ClassCanceled {
		t.Errorf("guard.Classify(err) = %q, want %q", got, guard.ClassCanceled)
	}
}

// TestUnwrapChainExhausted checks wrapConvergence on a chain that died
// with a typed last attempt: the exhausted-chain wrapper, the modelio
// sentinel, and the typed linalg error must all stay addressable.
func TestUnwrapChainExhausted(t *testing.T) {
	last := &linalg.ErrNoConvergence{Iter: 3, Residual: 0.5}
	_, _, cerr := guard.RunChain(context.Background(), obs.Nop(), "steadystate",
		guard.Step[int]{Name: "only", Run: func(context.Context, obs.Recorder) (int, error) {
			return 0, last
		}})
	if cerr == nil {
		t.Fatal("single failing step produced no chain error")
	}
	err := wrapConvergence(fmt.Errorf("chain: %w", cerr))
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("errors.Is(err, modelio.ErrNoConvergence) = false for %v", err)
	}
	var ex *guard.ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("errors.As to *guard.ExhaustedError = false for %v", err)
	}
	var lerr *linalg.ErrNoConvergence
	if !errors.As(err, &lerr) {
		t.Fatalf("errors.As to *linalg.ErrNoConvergence = false for %v", err)
	}
}
