package modelio

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

// findCode returns the first diagnostic with the given code, failing the
// test if it is absent.
func findCode(t *testing.T, ds []lint.Diagnostic, code string) lint.Diagnostic {
	t.Helper()
	for _, d := range ds {
		if d.Code == code {
			return d
		}
	}
	t.Fatalf("missing diagnostic %s in report:\n%v", code, ds)
	return lint.Diagnostic{}
}

func TestLintDocumentMalformedJSON(t *testing.T) {
	spec, ds := LintDocument(strings.NewReader(`{"type": "ctmc",`))
	if spec != nil {
		t.Error("malformed document should not yield a spec")
	}
	d := findCode(t, ds, lint.CodeSpecParse)
	if d.Severity != lint.SevError {
		t.Errorf("SPEC001 severity = %v, want error", d.Severity)
	}
}

func TestLintDocumentUnknownField(t *testing.T) {
	_, ds := LintDocument(strings.NewReader(`{"type": "ctmc", "ctmc": {"transitions": [], "measures": []}, "typo": 1}`))
	findCode(t, ds, lint.CodeSpecParse)
}

func TestLintDocumentUnknownKind(t *testing.T) {
	_, ds := LintDocument(strings.NewReader(`{"type": "petri"}`))
	d := findCode(t, ds, lint.CodeSpecType)
	if d.Path != "type" {
		t.Errorf("SPEC002 path = %q, want \"type\"", d.Path)
	}
	if !strings.Contains(d.Msg, "petri") {
		t.Errorf("SPEC002 message should name the bad type: %s", d.Msg)
	}
}

func TestLintDocumentMissingType(t *testing.T) {
	_, ds := LintDocument(strings.NewReader(`{"name": "anonymous"}`))
	findCode(t, ds, lint.CodeSpecType)
}

func TestLintDocumentMissingSection(t *testing.T) {
	_, ds := LintDocument(strings.NewReader(`{"type": "rbd"}`))
	d := findCode(t, ds, lint.CodeSpecSection)
	if d.Path != "rbd" {
		t.Errorf("SPEC003 path = %q, want \"rbd\"", d.Path)
	}
}

func TestLintUnknownMeasure(t *testing.T) {
	_, ds := LintDocument(strings.NewReader(`{
		"type": "relgraph",
		"relgraph": {
			"edges": [{"name": "e", "from": "s", "to": "t", "rel": 0.9}],
			"source": "s", "target": "t",
			"measures": ["reliability", "bogus"]
		}
	}`))
	d := findCode(t, ds, lint.CodeSpecMeasure)
	if d.Path != "measures[1]" {
		t.Errorf("SPEC004 path = %q, want \"measures[1]\"", d.Path)
	}
}

func TestLintMissingMeasureField(t *testing.T) {
	// reliability without a mission time.
	_, ds := LintDocument(strings.NewReader(`{
		"type": "rbd",
		"rbd": {
			"components": [{"name": "a", "lifetime": {"kind": "exponential", "rate": 0.1}}],
			"structure": {"comp": "a"},
			"measures": ["reliability"]
		}
	}`))
	d := findCode(t, ds, lint.CodeSpecField)
	if d.Path != "measures[0]" {
		t.Errorf("SPEC005 path = %q, want \"measures[0]\"", d.Path)
	}
}

func TestLintCTMCMeasureFields(t *testing.T) {
	_, ds := LintDocument(strings.NewReader(`{
		"type": "ctmc",
		"ctmc": {
			"transitions": [
				{"from": "up", "to": "down", "rate": 0.1},
				{"from": "down", "to": "up", "rate": 2}
			],
			"measures": ["availability", "transient", "mtta"]
		}
	}`))
	count := 0
	for _, d := range ds {
		if d.Code == lint.CodeSpecField {
			count++
		}
	}
	if count != 3 {
		t.Errorf("want 3 SPEC005 diagnostics (availability, transient, mtta all missing fields), got %d:\n%v", count, ds)
	}
}

func TestLintFindsStructuralProblems(t *testing.T) {
	// Bad rate and an unreachable state, through the document interface.
	_, ds := LintDocument(strings.NewReader(`{
		"type": "ctmc",
		"ctmc": {
			"transitions": [
				{"from": "up", "to": "down", "rate": -5},
				{"from": "down", "to": "up", "rate": 2},
				{"from": "limbo", "to": "up", "rate": 1}
			],
			"initial": "up",
			"measures": ["steadystate"]
		}
	}`))
	d := findCode(t, ds, lint.CodeCTMCBadRate)
	if d.Path != "ctmc.transitions[0].rate" {
		t.Errorf("CT001 path = %q", d.Path)
	}
	findCode(t, ds, lint.CodeCTMCUnreachable)
}

func TestLintSPNMeasureReferences(t *testing.T) {
	_, ds := LintDocument(strings.NewReader(`{
		"type": "spn",
		"spn": {
			"places": [{"name": "p", "tokens": 1}],
			"transitions": [{"name": "t", "kind": "timed", "rate": 1}],
			"arcs": [
				{"kind": "input", "place": "p", "transition": "t"},
				{"kind": "output", "place": "p", "transition": "t"}
			],
			"conditions": [{"name": "c", "place": "ghost", "op": "!=", "tokens": 1}],
			"measures": ["throughput:nope", "prob:undeclared"]
		}
	}`))
	count := 0
	for _, d := range ds {
		if d.Code == lint.CodeSpecField {
			count++
		}
	}
	// Condition place, condition op, throughput target, prob target.
	if count != 4 {
		t.Errorf("want 4 SPEC005 diagnostics, got %d:\n%v", count, ds)
	}
}

func TestLintCleanModelsAreClean(t *testing.T) {
	doc := `{
		"type": "faulttree",
		"faulttree": {
			"events": [{"name": "a", "prob": 0.1}, {"name": "b", "prob": 0.2}],
			"top": {"op": "and", "children": [{"event": "a"}, {"event": "b"}]},
			"measures": ["top", "mincuts"]
		}
	}`
	_, ds := LintDocument(strings.NewReader(doc))
	if len(ds) != 0 {
		t.Errorf("clean document produced diagnostics: %v", ds)
	}
}

func TestSolveWithOptionsPreflight(t *testing.T) {
	bad := &Spec{
		Type: "ctmc",
		CTMC: &CTMCSpec{
			Transitions: []CTMCTransition{
				{From: "up", To: "down", Rate: -1},
				{From: "down", To: "up", Rate: 1},
			},
			Measures: []string{"steadystate"},
		},
	}
	if _, err := SolveWithOptions(bad, SolveOptions{Preflight: true}); err == nil {
		t.Fatal("preflight should reject the negative rate")
	} else if lerr, ok := err.(*lint.Error); !ok {
		t.Fatalf("want *lint.Error, got %T: %v", err, err)
	} else if len(lerr.Diags) == 0 || lerr.Diags[0].Code != lint.CodeCTMCBadRate {
		t.Fatalf("unexpected preflight report: %v", lerr.Diags)
	}

	good := &Spec{
		Type: "ctmc",
		CTMC: &CTMCSpec{
			Transitions: []CTMCTransition{
				{From: "up", To: "down", Rate: 0.01},
				{From: "down", To: "up", Rate: 1},
			},
			Measures: []string{"steadystate"},
		},
	}
	if _, err := SolveWithOptions(good, SolveOptions{Preflight: true}); err != nil {
		t.Fatalf("preflight rejected a clean model: %v", err)
	}
}

func TestPreflightWarningsDoNotBlock(t *testing.T) {
	// A duplicate transition is only a warning; solving must proceed.
	s := &Spec{
		Type: "ctmc",
		CTMC: &CTMCSpec{
			Transitions: []CTMCTransition{
				{From: "up", To: "down", Rate: 0.01},
				{From: "up", To: "down", Rate: 0.02},
				{From: "down", To: "up", Rate: 1},
			},
			Measures: []string{"steadystate"},
		},
	}
	if _, err := SolveWithOptions(s, SolveOptions{Preflight: true}); err != nil {
		t.Fatalf("warning-only model blocked: %v", err)
	}
}
