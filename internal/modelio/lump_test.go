package modelio

import (
	"math"
	"testing"

	"repro/internal/obs"
)

// farmSpec builds the detailed chain of n independent identical machines
// (mask states, per-machine fail rate lam, single shared repairer fixing
// the lowest failed machine at rate mu), with up = "at most maxDown
// machines down". The chain is exactly lumpable to the failure-count
// chain, which is what the automatic pre-pass must discover.
func farmSpec(n int, lam, mu float64, maxDown int, measures []string, lump string) *Spec {
	name := func(mask int) string {
		buf := make([]byte, n)
		for i := 0; i < n; i++ {
			buf[i] = '0'
			if mask&(1<<i) != 0 {
				buf[i] = '1'
			}
		}
		return "m" + string(buf)
	}
	spec := &CTMCSpec{Measures: measures, Lump: lump}
	var up, absorbing []string
	full := (1 << n) - 1
	for mask := 0; mask <= full; mask++ {
		down := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				down++
			}
		}
		if down <= maxDown {
			up = append(up, name(mask))
		}
		if mask == full {
			absorbing = append(absorbing, name(mask))
		}
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				spec.Transitions = append(spec.Transitions, CTMCTransition{
					From: name(mask), To: name(mask | (1 << i)), Rate: lam,
				})
			}
		}
		// Shared repair: lowest failed machine only.
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				spec.Transitions = append(spec.Transitions, CTMCTransition{
					From: name(mask), To: name(mask &^ (1 << i)), Rate: mu,
				})
				break
			}
		}
	}
	spec.UpStates = up
	spec.Initial = name(0)
	spec.Absorbing = absorbing
	return &Spec{Type: "ctmc", Name: "farm", CTMC: spec}
}

// TestAutoLumpAvailabilityMatchesDetailed solves the symmetric farm with
// the pre-pass on and off: the availabilities must agree exactly (the
// lumping is exact, not approximate) and the traced solve must show the
// relstruct.lump span with the right reduction.
func TestAutoLumpAvailabilityMatchesDetailed(t *testing.T) {
	const n = 5
	off := farmSpec(n, 0.01, 1.0, 2, []string{"availability"}, "off")
	auto := farmSpec(n, 0.01, 1.0, 2, []string{"availability"}, "auto")

	rOff, err := SolveWithOptions(off, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("test")
	rAuto, err := SolveWithOptions(auto, SolveOptions{Recorder: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(rOff) != 1 || len(rAuto) != 1 {
		t.Fatalf("results: off=%v auto=%v", rOff, rAuto)
	}
	if diff := math.Abs(rOff[0].Value - rAuto[0].Value); diff > 1e-12 {
		t.Fatalf("availability differs: off=%.15g auto=%.15g (diff %g)",
			rOff[0].Value, rAuto[0].Value, diff)
	}
	root := tr.Finish()
	lump := findLumpSpan(root)
	if lump == nil {
		t.Fatal("no relstruct.lump span in trace")
	}
	if got, _ := lump.Attr("lump_states"); got != int64(1<<n) {
		t.Errorf("lump_states = %v, want %d", got, 1<<n)
	}
	// The failure-count chain of n machines has n+1 states.
	if got, _ := lump.Attr("lump_blocks"); got != int64(n+1) {
		t.Errorf("lump_blocks = %v, want %d", got, n+1)
	}
}

// TestAutoLumpMTTAMatchesDetailed checks the pre-pass is exact for the
// absorbing measure too: MTTA into the all-down state from the all-up
// state must not change under lumping.
func TestAutoLumpMTTAMatchesDetailed(t *testing.T) {
	const n = 4
	off := farmSpec(n, 0.05, 1.0, n-1, []string{"mtta"}, "off")
	auto := farmSpec(n, 0.05, 1.0, n-1, []string{"mtta"}, "auto")
	// MTTA needs the absorbing state to actually absorb: drop its repair.
	strip := func(s *Spec) {
		full := "m1111"
		keep := s.CTMC.Transitions[:0]
		for _, tr := range s.CTMC.Transitions {
			if tr.From != full {
				keep = append(keep, tr)
			}
		}
		s.CTMC.Transitions = keep
	}
	strip(off)
	strip(auto)

	rOff, err := SolveWithOptions(off, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rAuto, err := SolveWithOptions(auto, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rOff[0].Value-rAuto[0].Value) > 1e-9*rOff[0].Value {
		t.Fatalf("mtta differs: off=%.15g auto=%.15g", rOff[0].Value, rAuto[0].Value)
	}
	if rOff[0].Value <= 0 {
		t.Fatalf("mtta = %g, want positive", rOff[0].Value)
	}
}

// TestAutoLumpSkipsDetailMeasures: per-state measures are not preserved
// by aggregation, so requesting one must disable the pre-pass.
func TestAutoLumpSkipsDetailMeasures(t *testing.T) {
	spec := farmSpec(3, 0.01, 1.0, 1, []string{"availability", "steadystate"}, "auto")
	tr := obs.NewTrace("test")
	rs, err := SolveWithOptions(spec, SolveOptions{Recorder: tr})
	if err != nil {
		t.Fatal(err)
	}
	if findLumpSpan(tr.Finish()) != nil {
		t.Fatal("lump pre-pass ran despite a per-state measure")
	}
	// The steadystate detail must cover the full 2^3 state space.
	for _, r := range rs {
		if r.Measure == "steadystate" && len(r.Detail) != 8 {
			t.Fatalf("steadystate detail has %d states, want 8", len(r.Detail))
		}
	}
}

// TestAutoLumpOffByRequest: lump "off" must leave the trace lump-free.
func TestAutoLumpOffByRequest(t *testing.T) {
	spec := farmSpec(3, 0.01, 1.0, 1, []string{"availability"}, "off")
	tr := obs.NewTrace("test")
	if _, err := SolveWithOptions(spec, SolveOptions{Recorder: tr}); err != nil {
		t.Fatal(err)
	}
	if findLumpSpan(tr.Finish()) != nil {
		t.Fatal("lump pre-pass ran despite lump: off")
	}
}

// TestLumpModeValidation: an unknown lump mode is a lint error.
func TestLumpModeValidation(t *testing.T) {
	spec := farmSpec(2, 0.01, 1.0, 1, []string{"availability"}, "sometimes")
	ds := Lint(spec)
	found := false
	for _, d := range ds {
		if d.Path == "ctmc.lump" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no ctmc.lump diagnostic in %v", ds)
	}
}

// findLumpSpan locates the relstruct.lump span in a trace tree.
func findLumpSpan(s *obs.Span) *obs.Span {
	if s == nil {
		return nil
	}
	if s.Name == "relstruct.lump" {
		return s
	}
	for _, c := range s.Children {
		if got := findLumpSpan(c); got != nil {
			return got
		}
	}
	return nil
}
