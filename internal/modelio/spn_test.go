package modelio

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestSPNRoundtripMM1K(t *testing.T) {
	doc := `{
	  "type": "spn",
	  "spn": {
	    "places": [
	      {"name": "queue", "tokens": 0},
	      {"name": "slots", "tokens": 3}
	    ],
	    "transitions": [
	      {"name": "arrive", "kind": "timed", "rate": 2},
	      {"name": "serve", "kind": "timed", "rate": 3}
	    ],
	    "arcs": [
	      {"kind": "input", "place": "slots", "transition": "arrive"},
	      {"kind": "output", "place": "queue", "transition": "arrive"},
	      {"kind": "input", "place": "queue", "transition": "serve"},
	      {"kind": "output", "place": "slots", "transition": "serve"}
	    ],
	    "conditions": [
	      {"name": "full", "place": "queue", "op": "==", "tokens": 3}
	    ],
	    "measures": ["states", "throughput:serve", "tokens:queue", "prob:full"]
	  }
	}`
	res := solveJSON(t, doc)
	if got := scalar(t, res, "states"); got != 4 {
		t.Errorf("states = %g, want 4", got)
	}
	// M/M/1/3 with rho=2/3: pi_j ∝ rho^j.
	rho := 2.0 / 3
	var norm, en float64
	for j := 0; j <= 3; j++ {
		p := math.Pow(rho, float64(j))
		norm += p
		en += float64(j) * p
	}
	en /= norm
	if got := scalar(t, res, "tokens:queue"); math.Abs(got-en) > 1e-12 {
		t.Errorf("E[N] = %g, want %g", got, en)
	}
	pFull := math.Pow(rho, 3) / norm
	if got := scalar(t, res, "prob:full"); math.Abs(got-pFull) > 1e-12 {
		t.Errorf("P(full) = %g, want %g", got, pFull)
	}
	// Throughput of serve = λ(1 - P(full)).
	if got := scalar(t, res, "throughput:serve"); math.Abs(got-2*(1-pFull)) > 1e-12 {
		t.Errorf("throughput = %g, want %g", got, 2*(1-pFull))
	}
}

func TestSPNWithImmediateAndInhibitor(t *testing.T) {
	// One token circulates: a → (choice via immediates) → back; inhibitor
	// blocks "fill" while the buffer holds a token.
	doc := `{
	  "type": "spn",
	  "spn": {
	    "places": [{"name": "idle", "tokens": 1}, {"name": "busy", "tokens": 0}],
	    "transitions": [
	      {"name": "start", "kind": "timed", "rate": 1},
	      {"name": "finish", "kind": "timed", "rate": 4}
	    ],
	    "arcs": [
	      {"kind": "input", "place": "idle", "transition": "start"},
	      {"kind": "output", "place": "busy", "transition": "start"},
	      {"kind": "input", "place": "busy", "transition": "finish"},
	      {"kind": "output", "place": "idle", "transition": "finish"},
	      {"kind": "inhibitor", "place": "busy", "transition": "start"}
	    ],
	    "conditions": [{"name": "busy", "place": "busy", "op": ">=", "tokens": 1}],
	    "measures": ["prob:busy"]
	  }
	}`
	res := solveJSON(t, doc)
	// Two-state chain: P(busy) = 1/(1+4) = 0.2.
	if got := scalar(t, res, "prob:busy"); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("P(busy) = %g, want 0.2", got)
	}
}

func TestSPNSpecErrors(t *testing.T) {
	cases := []string{
		// Unknown transition kind.
		`{"type":"spn","spn":{"places":[{"name":"p","tokens":1}],
		  "transitions":[{"name":"t","kind":"fuzzy","rate":1}],
		  "arcs":[],"measures":["states"]}}`,
		// Unknown arc kind.
		`{"type":"spn","spn":{"places":[{"name":"p","tokens":1}],
		  "transitions":[{"name":"t","kind":"timed","rate":1}],
		  "arcs":[{"kind":"sideways","place":"p","transition":"t"}],
		  "measures":["states"]}}`,
		// Undeclared condition.
		`{"type":"spn","spn":{"places":[{"name":"p","tokens":1}],
		  "transitions":[{"name":"t","kind":"timed","rate":1}],
		  "arcs":[{"kind":"input","place":"p","transition":"t"},
		          {"kind":"output","place":"p","transition":"t"}],
		  "measures":["prob:ghost"]}}`,
		// Unknown measure.
		`{"type":"spn","spn":{"places":[{"name":"p","tokens":1}],
		  "transitions":[{"name":"t","kind":"timed","rate":1}],
		  "arcs":[{"kind":"input","place":"p","transition":"t"},
		          {"kind":"output","place":"p","transition":"t"}],
		  "measures":["entropy"]}}`,
	}
	for i, doc := range cases {
		spec, err := Parse(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("case %d parse: %v", i, err)
		}
		if _, err := Solve(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("case %d: want ErrBadSpec, got %v", i, err)
		}
	}
	if _, err := Parse(strings.NewReader(`{"type":"spn"}`)); !errors.Is(err, ErrBadSpec) {
		t.Errorf("missing section: %v", err)
	}
}

func TestWriteDOTSPN(t *testing.T) {
	doc := `{"type":"spn","name":"net","spn":{
	  "places":[{"name":"p","tokens":1}],
	  "transitions":[{"name":"t","kind":"timed","rate":1}],
	  "arcs":[{"kind":"input","place":"p","transition":"t"},
	          {"kind":"output","place":"p","transition":"t"}],
	  "measures":["states"]}}`
	spec, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteDOT(spec, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"p_p"`) {
		t.Errorf("dot: %q", sb.String())
	}
}
