package modelio

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func specFromJSON(t *testing.T, doc string) *Spec {
	t.Helper()
	s, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestSolveBoundsRBDReliability(t *testing.T) {
	s := specFromJSON(t, `{
		"type": "rbd",
		"rbd": {
			"components": [
				{"name": "a", "lifetime": {"kind": "exponential", "rate": 0.001}},
				{"name": "b", "lifetime": {"kind": "exponential", "rate": 0.001}}
			],
			"structure": {"op": "parallel", "children": [{"comp": "a"}, {"comp": "b"}]},
			"measures": ["reliability", "mincuts"],
			"time": 100
		}
	}`)
	got, err := SolveBounds(s)
	if err != nil {
		t.Fatalf("SolveBounds: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d results, want 2", len(got))
	}
	rel := got[0]
	if rel.Measure != "reliability" || rel.Bound == nil {
		t.Fatalf("first result = %+v, want bounded reliability", rel)
	}
	// The exact parallel-of-two reliability; the rare-event lower bound
	// must not exceed it, and the interval must bracket it.
	q := 1 - math.Exp(-0.1)
	exact := 1 - q*q
	if rel.Bound.Lower > exact || rel.Bound.Upper < exact {
		t.Errorf("bound [%g, %g] does not bracket exact %g", rel.Bound.Lower, rel.Bound.Upper, exact)
	}
	if rel.Value != rel.Bound.Lower {
		t.Errorf("Value %g is not the conservative endpoint %g", rel.Value, rel.Bound.Lower)
	}
	if rel.Bound.Lower < 0 || rel.Bound.Upper > 1 {
		t.Errorf("bound [%g, %g] escapes [0,1]", rel.Bound.Lower, rel.Bound.Upper)
	}
	if got[1].Measure != "mincuts" || len(got[1].Sets) != 1 || got[1].Bound != nil {
		t.Errorf("mincuts result = %+v, want one exact cut set", got[1])
	}
}

func TestSolveBoundsFaultTreeTop(t *testing.T) {
	s := specFromJSON(t, `{
		"type": "faulttree",
		"faulttree": {
			"events": [
				{"name": "e1", "prob": 0.01},
				{"name": "e2", "prob": 0.02},
				{"name": "e3", "prob": 0.03}
			],
			"top": {"op": "or", "children": [
				{"op": "and", "children": [{"event": "e1"}, {"event": "e2"}]},
				{"event": "e3"}
			]},
			"measures": ["top"]
		}
	}`)
	got, err := SolveBounds(s)
	if err != nil {
		t.Fatalf("SolveBounds: %v", err)
	}
	if len(got) != 1 || got[0].Bound == nil {
		t.Fatalf("got %+v, want one bounded result", got)
	}
	// Rare-event bound: 0.01*0.02 + 0.03.
	wantUpper := 0.01*0.02 + 0.03
	if math.Abs(got[0].Bound.Upper-wantUpper) > 1e-12 {
		t.Errorf("upper = %g, want %g", got[0].Bound.Upper, wantUpper)
	}
	if got[0].Bound.Lower != 0 || got[0].Value != got[0].Bound.Upper {
		t.Errorf("bound = %+v, want [0, upper] with conservative Value", got[0])
	}
	// The exact answer must sit inside the interval.
	exact, err := Solve(s)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if exact[0].Value > got[0].Bound.Upper {
		t.Errorf("exact %g above bound %g", exact[0].Value, got[0].Bound.Upper)
	}
}

func TestSolveBoundsFaultTreeTopAt(t *testing.T) {
	s := specFromJSON(t, `{
		"type": "faulttree",
		"faulttree": {
			"events": [
				{"name": "e1", "prob": 0, "lifetime": {"kind": "exponential", "rate": 0.001}},
				{"name": "e2", "prob": 0, "lifetime": {"kind": "exponential", "rate": 0.002}}
			],
			"top": {"op": "and", "children": [{"event": "e1"}, {"event": "e2"}]},
			"measures": ["topAt"],
			"time": 50
		}
	}`)
	got, err := SolveBounds(s)
	if err != nil {
		t.Fatalf("SolveBounds: %v", err)
	}
	want := (1 - math.Exp(-0.05)) * (1 - math.Exp(-0.1))
	if math.Abs(got[0].Bound.Upper-want) > 1e-12 {
		t.Errorf("topAt upper = %g, want %g", got[0].Bound.Upper, want)
	}
}

func TestSolveBoundsNoDegradedPath(t *testing.T) {
	ctmc := specFromJSON(t, `{
		"type": "ctmc",
		"ctmc": {
			"transitions": [{"from": "up", "to": "down", "rate": 1}, {"from": "down", "to": "up", "rate": 10}],
			"measures": ["availability"],
			"upStates": ["up"]
		}
	}`)
	if _, err := SolveBounds(ctmc); !errors.Is(err, ErrNoDegraded) {
		t.Errorf("ctmc err = %v, want ErrNoDegraded", err)
	}
	// An rbd whose only measures need the quadrature path has nothing to
	// bound either.
	avail := specFromJSON(t, `{
		"type": "rbd",
		"rbd": {
			"components": [{"name": "a",
				"lifetime": {"kind": "exponential", "rate": 0.001},
				"repair": {"kind": "exponential", "rate": 0.1}}],
			"structure": {"comp": "a"},
			"measures": ["availability"]
		}
	}`)
	if _, err := SolveBounds(avail); !errors.Is(err, ErrNoDegraded) {
		t.Errorf("rbd availability err = %v, want ErrNoDegraded", err)
	}
}
