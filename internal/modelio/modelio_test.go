package modelio

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func solveJSON(t *testing.T, doc string) []Result {
	t.Helper()
	spec, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func scalar(t *testing.T, res []Result, measure string) float64 {
	t.Helper()
	for _, r := range res {
		if r.Measure == measure {
			return r.Value
		}
	}
	t.Fatalf("measure %q not found in %v", measure, res)
	return 0
}

func TestRBDRoundtrip(t *testing.T) {
	doc := `{
	  "type": "rbd",
	  "name": "duplex",
	  "rbd": {
	    "components": [
	      {"name": "a", "lifetime": {"kind": "exponential", "rate": 0.001},
	       "repair": {"kind": "exponential", "rate": 0.5}},
	      {"name": "b", "lifetime": {"kind": "exponential", "rate": 0.001},
	       "repair": {"kind": "exponential", "rate": 0.5}}
	    ],
	    "structure": {"op": "parallel", "children": [{"comp": "a"}, {"comp": "b"}]},
	    "measures": ["availability", "mttf", "reliability", "mincuts"],
	    "time": 100
	  }
	}`
	res := solveJSON(t, doc)
	aComp := 0.5 / 0.501
	wantA := 1 - (1-aComp)*(1-aComp)
	if got := scalar(t, res, "availability"); math.Abs(got-wantA) > 1e-12 {
		t.Errorf("availability = %g, want %g", got, wantA)
	}
	if got := scalar(t, res, "mttf"); math.Abs(got-1500) > 1 {
		t.Errorf("mttf = %g, want 1500", got)
	}
	r := math.Exp(-0.1)
	wantR := 2*r - r*r
	if got := scalar(t, res, "reliability"); math.Abs(got-wantR) > 1e-10 {
		t.Errorf("reliability = %g, want %g", got, wantR)
	}
	for _, rr := range res {
		if rr.Measure == "mincuts" {
			if len(rr.Sets) != 1 || len(rr.Sets[0]) != 2 {
				t.Errorf("mincuts = %v", rr.Sets)
			}
		}
	}
}

func TestFaultTreeRoundtrip(t *testing.T) {
	doc := `{
	  "type": "faulttree",
	  "faulttree": {
	    "events": [
	      {"name": "pump1", "prob": 0.1},
	      {"name": "pump2", "prob": 0.1},
	      {"name": "valve", "prob": 0.01}
	    ],
	    "top": {"op": "or", "children": [
	      {"event": "valve"},
	      {"op": "and", "children": [{"event": "pump1"}, {"event": "pump2"}]}
	    ]},
	    "measures": ["top", "mincuts", "rare-event", "importance"]
	  }
	}`
	res := solveJSON(t, doc)
	want := 1 - (1-0.01)*(1-0.01)
	if got := scalar(t, res, "top"); math.Abs(got-want) > 1e-12 {
		t.Errorf("top = %g, want %g", got, want)
	}
	if got := scalar(t, res, "rare-event"); got < want-1e-12 {
		t.Errorf("rare-event %g below exact %g", got, want)
	}
	for _, r := range res {
		if r.Measure == "importance" {
			if r.Detail["valve"] <= r.Detail["pump1"] {
				t.Errorf("valve should dominate importance: %v", r.Detail)
			}
		}
	}
}

func TestCTMCRoundtrip(t *testing.T) {
	doc := `{
	  "type": "ctmc",
	  "ctmc": {
	    "transitions": [
	      {"from": "up", "to": "down", "rate": 0.01},
	      {"from": "down", "to": "up", "rate": 1.0}
	    ],
	    "initial": "up",
	    "upStates": ["up"],
	    "absorbing": ["down"],
	    "measures": ["steadystate", "availability", "transient", "mtta"],
	    "time": 10
	  }
	}`
	res := solveJSON(t, doc)
	wantA := 1.0 / 1.01
	if got := scalar(t, res, "availability"); math.Abs(got-wantA) > 1e-12 {
		t.Errorf("availability = %g, want %g", got, wantA)
	}
	if got := scalar(t, res, "mtta"); math.Abs(got-100) > 1e-9 {
		t.Errorf("mtta = %g, want 100", got)
	}
	for _, r := range res {
		if r.Measure == "transient" {
			s := 1.01
			want := 1/s + 0.01/s*math.Exp(-s*10)/1 // A(t) closed form with λ+μ=1.01
			if math.Abs(r.Detail["up"]-want) > 1e-9 {
				t.Errorf("transient up = %g, want %g", r.Detail["up"], want)
			}
		}
	}
}

func TestRelGraphRoundtrip(t *testing.T) {
	doc := `{
	  "type": "relgraph",
	  "relgraph": {
	    "edges": [
	      {"name": "e1", "from": "s", "to": "m", "rel": 0.9},
	      {"name": "e2", "from": "m", "to": "t", "rel": 0.8},
	      {"name": "e3", "from": "s", "to": "t", "rel": 0.5}
	    ],
	    "source": "s", "target": "t",
	    "measures": ["reliability", "minpaths", "mincuts"]
	  }
	}`
	res := solveJSON(t, doc)
	want := 1 - (1-0.72)*(1-0.5)
	if got := scalar(t, res, "reliability"); math.Abs(got-want) > 1e-12 {
		t.Errorf("reliability = %g, want %g", got, want)
	}
}

func TestDistSpecKinds(t *testing.T) {
	tests := []struct {
		name     string
		spec     DistSpec
		wantMean float64
		wantErr  bool
	}{
		{name: "exponential", spec: DistSpec{Kind: "exponential", Rate: 2}, wantMean: 0.5},
		{name: "weibull", spec: DistSpec{Kind: "weibull", Shape: 1, Scale: 3}, wantMean: 3},
		{name: "lognormal", spec: DistSpec{Kind: "lognormal", Mu: 0, Sigma: 1}, wantMean: math.Exp(0.5)},
		{name: "gamma", spec: DistSpec{Kind: "gamma", Shape: 2, Rate: 4}, wantMean: 0.5},
		{name: "deterministic", spec: DistSpec{Kind: "deterministic", Value: 7}, wantMean: 7},
		{name: "uniform", spec: DistSpec{Kind: "uniform", Lo: 1, Hi: 3}, wantMean: 2},
		{name: "erlang", spec: DistSpec{Kind: "erlang", Stages: 3, Rate: 3}, wantMean: 1},
		{name: "unknown", spec: DistSpec{Kind: "zipf"}, wantErr: true},
		{name: "bad params", spec: DistSpec{Kind: "exponential", Rate: -1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, err := tt.spec.Distribution()
			if tt.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(d.Mean()-tt.wantMean) > 1e-9 {
				t.Errorf("mean = %g, want %g", d.Mean(), tt.wantMean)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`{"type": "rbd"}`,                   // missing section
		`{"type": "alien"}`,                 // unknown type
		`{"type": "ctmc", "bogusField": 1}`, // unknown field
		`{`,                                 // syntax error
		`{"type": "faulttree", "ctmc": {}}`, // mismatched section
	}
	for _, doc := range cases {
		if _, err := Parse(strings.NewReader(doc)); !errors.Is(err, ErrBadSpec) {
			t.Errorf("doc %q: want ErrBadSpec, got %v", doc, err)
		}
	}
}

func TestSolveErrors(t *testing.T) {
	// Unknown component reference.
	doc := `{"type":"rbd","rbd":{"components":[],"structure":{"comp":"ghost"},"measures":["mttf"]}}`
	spec, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(spec); !errors.Is(err, ErrBadSpec) {
		t.Errorf("ghost component: %v", err)
	}
	// Reliability without time.
	doc2 := `{"type":"rbd","rbd":{
	  "components":[{"name":"a","lifetime":{"kind":"exponential","rate":1}}],
	  "structure":{"comp":"a"},"measures":["reliability"]}}`
	spec2, err := Parse(strings.NewReader(doc2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(spec2); !errors.Is(err, ErrBadSpec) {
		t.Errorf("missing time: %v", err)
	}
	// Unknown measure.
	doc3 := `{"type":"relgraph","relgraph":{
	  "edges":[{"name":"e","from":"s","to":"t","rel":0.5}],
	  "source":"s","target":"t","measures":["entropy"]}}`
	spec3, err := Parse(strings.NewReader(doc3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(spec3); !errors.Is(err, ErrBadSpec) {
		t.Errorf("unknown measure: %v", err)
	}
}

func TestRender(t *testing.T) {
	out := Render("demo", []Result{
		{Measure: "availability", Value: 0.999},
		{Measure: "mincuts", Sets: [][]string{{"a", "b"}}},
		{Measure: "importance", Detail: map[string]float64{"a": 0.5}},
	})
	for _, want := range []string{"model: demo", "availability", "0.999", "{a, b}", "importance"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestFaultTreeTimeDependentMeasures(t *testing.T) {
	doc := `{
	  "type": "faulttree",
	  "faulttree": {
	    "events": [
	      {"name": "a", "lifetime": {"kind": "exponential", "rate": 1}},
	      {"name": "b", "lifetime": {"kind": "exponential", "rate": 1}}
	    ],
	    "top": {"op": "and", "children": [{"event": "a"}, {"event": "b"}]},
	    "measures": ["topAt", "mttf"],
	    "time": 1
	  }
	}`
	res := solveJSON(t, doc)
	wantTop := math.Pow(1-math.Exp(-1), 2)
	if got := scalar(t, res, "topAt"); math.Abs(got-wantTop) > 1e-10 {
		t.Errorf("topAt = %g, want %g", got, wantTop)
	}
	// Parallel of two identical exponentials: MTTF = 1.5.
	if got := scalar(t, res, "mttf"); math.Abs(got-1.5) > 1e-5 {
		t.Errorf("mttf = %g, want 1.5", got)
	}
}

func TestFaultTreeTopAtNeedsTime(t *testing.T) {
	doc := `{"type":"faulttree","faulttree":{
	  "events":[{"name":"a","lifetime":{"kind":"exponential","rate":1}}],
	  "top":{"event":"a"},"measures":["topAt"]}}`
	spec, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(spec); !errors.Is(err, ErrBadSpec) {
		t.Errorf("missing time: %v", err)
	}
}
