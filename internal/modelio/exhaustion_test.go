package modelio

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/failpoint"
	"repro/internal/guard"
)

// TestChainExhaustionTelemetry pins the terminal-failure contract of
// the fallback chain: with SOR unable to converge (one-sweep budget)
// AND the GTH escalation broken by a failpoint, the solve must return a
// typed *guard.ExhaustedError carrying every attempt — never a
// zero-value result presented as an answer.
func TestChainExhaustionTelemetry(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	if err := failpoint.Arm("linalg.gth", "error(gth wrecked)"); err != nil {
		t.Fatal(err)
	}
	s := specFromJSON(t, `{
		"type": "ctmc",
		"name": "exhaust",
		"ctmc": {
			"transitions": [
				{"from": "a", "to": "b", "rate": 1},
				{"from": "b", "to": "c", "rate": 2},
				{"from": "c", "to": "a", "rate": 3}
			],
			"measures": ["steadystate"],
			"solver": "chain",
			"solverTol": 1e-14,
			"solverMaxIter": 1
		}
	}`)
	results, err := Solve(s)
	if err == nil {
		t.Fatalf("solve succeeded with both methods broken: %v", results)
	}
	if results != nil {
		t.Errorf("exhausted chain leaked results: %v", results)
	}
	var exh *guard.ExhaustedError
	if !errors.As(err, &exh) {
		t.Fatalf("error is not a *guard.ExhaustedError: %v", err)
	}
	if len(exh.Report.Attempts) < 2 {
		t.Fatalf("attempt telemetry incomplete: %+v", exh.Report)
	}
	methods := make(map[string]guard.FailureClass)
	for _, a := range exh.Report.Attempts {
		methods[a.Method] = a.Class
		if a.Err == "" || a.Class == "" {
			t.Errorf("attempt %q try %d lacks failure detail: %+v", a.Method, a.Try, a)
		}
	}
	if _, ok := methods["sor"]; !ok {
		t.Errorf("no sor attempt recorded: %+v", exh.Report.Attempts)
	}
	if cls, ok := methods["gth"]; !ok || cls != guard.ClassInjected {
		t.Errorf("gth attempt class = %q, want %q: %+v", cls, guard.ClassInjected, exh.Report.Attempts)
	}
	if exh.Report.Winner != "" {
		t.Errorf("exhausted chain reports winner %q", exh.Report.Winner)
	}
	if !strings.Contains(err.Error(), "gth wrecked") {
		t.Errorf("terminal error lost the last cause: %v", err)
	}
}
