package modelio

import (
	"repro/internal/markov"
	"repro/internal/obs"
	"repro/internal/relstruct"
)

// This file implements the automatic lumping pre-pass: before solving a
// CTMC whose measures only distinguish whole state sets (availability
// over the up set, MTTA into the absorbing set), the chain is checked for
// an exactly-lumpable partition seeded by those sets and, when one
// exists, solved in aggregated form. Ordinary lumpability makes the
// block-level process Markov for every initial distribution, so both
// measures are exact on the lumped chain; the reduction is pure speedup.

// lumpEligible reports whether the pre-pass may run for this spec: not
// opted out, and every requested measure is a set-level measure the
// lumping preserves (per-state detail measures like "steadystate" and
// "transient" need the original state space).
func lumpEligible(spec *CTMCSpec) bool {
	switch spec.Lump {
	case "", "auto":
	default:
		return false
	}
	if len(spec.Measures) == 0 {
		return false
	}
	for _, m := range spec.Measures {
		if m != "availability" && m != "mtta" {
			return false
		}
	}
	return true
}

// structInput builds the relstruct input for a ctmc spec, seeded so any
// refinement keeps the up and absorbing sets (the sets the measures
// distinguish) in separate blocks. Transitions with empty endpoints are
// skipped — the basic lint checks reject them before anything solves.
func structInput(spec *CTMCSpec) relstruct.Input {
	nts := make([]relstruct.NamedTransition, 0, len(spec.Transitions))
	for _, tr := range spec.Transitions {
		if tr.From == "" || tr.To == "" {
			continue
		}
		nts = append(nts, relstruct.NamedTransition{From: tr.From, To: tr.To, Weight: tr.Rate})
	}
	in := relstruct.FromNamed(nts, false)
	if in.States > 0 {
		in.Seed = relstruct.SeedSets(in.Names, spec.UpStates, spec.Absorbing)
	}
	return in
}

// StructReport computes the static structural analysis of a parsed ctmc
// spec: SCC condensation, stiffness, the coarsest measure-preserving
// lumpable partition, and the distilled solver hint. It is the engine
// behind `relcli analyze` and the serve-side preflight.
func StructReport(spec *CTMCSpec) (*relstruct.StructReport, error) {
	if spec == nil {
		return nil, relstruct.ErrEmpty
	}
	return relstruct.Analyze(structInput(spec))
}

// autoLump analyzes the chain and, when it is exactly lumpable under a
// partition separating the up and absorbing sets, returns the aggregated
// chain and the state→block-representative mapping. A nil chain means
// "no reduction" (not lumpable, analysis failed, or markov.Lump vetoed
// the partition) and the caller solves the original. An applied lump is
// announced on a "relstruct.lump" span whose lump_ratio attribute feeds
// the metrics bridge.
func autoLump(c *markov.CTMC, spec *CTMCSpec, rec obs.Recorder) (*markov.CTMC, map[string]string) {
	in := structInput(spec)
	if in.States == 0 {
		return nil, nil
	}
	rep, err := relstruct.Analyze(in)
	if err != nil || !rep.Lumping.Lumpable {
		return nil, nil
	}
	names := rep.StateNames()
	blockOf := rep.Lumping.BlockOf()
	// Each block is represented by its smallest-index member's name.
	repName := make([]string, rep.Lumping.Blocks)
	for s := len(names) - 1; s >= 0; s-- {
		repName[blockOf[s]] = names[s]
	}
	toBlock := make(map[string]string, len(names))
	for s, name := range names {
		toBlock[name] = repName[blockOf[s]]
	}
	lumped, err := c.Lump(func(state string) string { return toBlock[state] }, in.Tol)
	if err != nil {
		// The refinement and markov.Lump agree on the lumpability
		// condition, but stay safe: a veto just skips the reduction.
		return nil, nil
	}
	if rec.Enabled() {
		sp := rec.Span("relstruct.lump",
			obs.I("lump_states", rep.States),
			obs.I("lump_blocks", rep.Lumping.Blocks),
			obs.F("lump_ratio", rep.Lumping.Ratio))
		sp.End()
	}
	return lumped, toBlock
}

// mapToBlocks rewrites a state set through the lump mapping, deduplicating
// states that landed in the same block while keeping first-appearance
// order.
func mapToBlocks(states []string, toBlock map[string]string) []string {
	seen := make(map[string]bool, len(states))
	out := make([]string, 0, len(states))
	for _, s := range states {
		b, ok := toBlock[s]
		if !ok {
			b = s
		}
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}
