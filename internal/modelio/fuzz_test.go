package modelio

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

// seedModels feeds every bundled model document into the fuzz corpus, so
// mutation starts from realistic specs instead of raw JSON noise.
func seedModels(f *testing.F) {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "models", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	// A few hand-picked degenerates the glob cannot cover.
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"type":"ctmc"}`))
	f.Add([]byte(`{"type":"rbd","rbd":{"structure":{"comp":"x"}}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"type":"faulttree","faulttree":{"top":{"op":"and"}}}`))
	// The chaos-drill document mix (cmd/relcli chaos): fixtures chosen
	// to route traffic through every failpoint-instrumented solver
	// layer, plus the deliberately broken inputs the drill keeps 4xx.
	f.Add([]byte(`{"type":"ctmc","name":"chaos-chain","ctmc":{
		"transitions":[{"from":"a","to":"b","rate":1},{"from":"b","to":"c","rate":2},{"from":"c","to":"a","rate":3}],
		"measures":["steadystate"],"solver":"chain"}}`))
	f.Add([]byte(`{"type":"ctmc","name":"chaos-transient","ctmc":{
		"transitions":[{"from":"up","to":"down","rate":0.01},{"from":"down","to":"up","rate":1}],
		"initial":"up","upStates":["up"],"measures":["transient"],"time":10}}`))
	f.Add([]byte(`{"type":"rbd","name":"chaos-rbd","rbd":{
		"components":[{"name":"a","lifetime":{"kind":"exponential","rate":0.001}},
			{"name":"b","lifetime":{"kind":"exponential","rate":0.001}}],
		"structure":{"op":"parallel","children":[{"comp":"a"},{"comp":"b"}]},
		"measures":["reliability"],"time":100}}`))
	f.Add([]byte(`{"type":"faulttree","name":"chaos-ft","faulttree":{
		"events":[{"name":"e1","prob":0.01},{"name":"e2","prob":0.02},{"name":"e3","prob":0.03}],
		"top":{"op":"or","children":[{"op":"and","children":[{"event":"e1"},{"event":"e2"}]},{"event":"e3"}]},
		"measures":["top"],"bddBudget":2}}`))
	f.Add([]byte(`{this is not json`))
	f.Add([]byte(`{"type":"ctmc","name":"chaos-bad","ctmc":{
		"transitions":[{"from":"a","to":"b","rate":1}],"measures":["no-such-measure"]}}`))
}

// FuzzLoadDocument fuzzes the JSON model parser: Parse must never panic,
// and any document it accepts must survive a marshal/re-parse round trip
// (the spec types are the persistence format, so asymmetry there is a
// data-loss bug).
func FuzzLoadDocument(f *testing.F) {
	seedModels(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		out, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted document failed to re-marshal: %v", err)
		}
		if _, err := Parse(bytes.NewReader(out)); err != nil {
			t.Fatalf("round-tripped document rejected: %v\noriginal: %s\nround-trip: %s", err, data, out)
		}
	})
}

// FuzzLint fuzzes the combined parse+lint path: LintDocument must never
// panic, must always return at least one diagnostic for undecodable input,
// and its diagnostics must be well-formed (coded, sorted severity set).
func FuzzLint(f *testing.F) {
	seedModels(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, ds := LintDocument(bytes.NewReader(data))
		if spec == nil && len(ds) == 0 {
			t.Fatal("undecodable document produced no diagnostics")
		}
		for _, d := range ds {
			if d.Code == "" {
				t.Errorf("diagnostic without a code: %+v", d)
			}
			if d.Severity != lint.SevError && d.Severity != lint.SevWarning && d.Severity != lint.SevInfo {
				t.Errorf("diagnostic with unknown severity %q: %+v", d.Severity, d)
			}
		}
	})
}
