package modelio

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/spn"
)

// SPNSpec describes a generalized stochastic Petri net. Guards and
// marking-dependent rates are code-level features; the JSON surface covers
// the declarative core (places, timed/immediate transitions, input/output/
// inhibitor arcs) plus token-count measures.
type SPNSpec struct {
	// Places declares places with initial tokens.
	Places []SPNPlace `json:"places"`
	// Transitions declares timed and immediate transitions.
	Transitions []SPNTransition `json:"transitions"`
	// Arcs declares the arc structure.
	Arcs []SPNArc `json:"arcs"`
	// Measures selects outputs: "states", "throughput:<transition>",
	// "tokens:<place>", or a condition measure declared in Conditions.
	Measures []string `json:"measures"`
	// Conditions names steady-state probability measures over token
	// counts; each is referenced from Measures by "prob:<name>".
	Conditions []SPNCondition `json:"conditions,omitempty"`
	// MaxStates bounds reachability exploration (0 = default).
	MaxStates int `json:"maxStates,omitempty"`
}

// SPNPlace is one place declaration.
type SPNPlace struct {
	Name   string `json:"name"`
	Tokens int    `json:"tokens"`
}

// SPNTransition is one transition declaration.
type SPNTransition struct {
	Name string `json:"name"`
	// Kind is "timed" or "immediate".
	Kind string `json:"kind"`
	// Rate is the exponential rate (timed) or weight (immediate).
	Rate float64 `json:"rate"`
}

// SPNArc is one arc declaration.
type SPNArc struct {
	// Kind is "input" (place→transition), "output" (transition→place), or
	// "inhibitor".
	Kind       string `json:"kind"`
	Place      string `json:"place"`
	Transition string `json:"transition"`
	// Mult is the multiplicity (default 1).
	Mult int `json:"mult,omitempty"`
}

// SPNCondition is a named predicate over a place's token count.
type SPNCondition struct {
	Name  string `json:"name"`
	Place string `json:"place"`
	// Op is one of ">=", "<=", "==".
	Op     string `json:"op"`
	Tokens int    `json:"tokens"`
}

// buildSPN assembles the net from the spec.
func buildSPN(spec *SPNSpec) (*spn.Net, error) {
	n := spn.New()
	for _, p := range spec.Places {
		if err := n.Place(p.Name, p.Tokens); err != nil {
			return nil, err
		}
	}
	for _, tr := range spec.Transitions {
		switch tr.Kind {
		case "timed":
			if err := n.Timed(tr.Name, tr.Rate); err != nil {
				return nil, err
			}
		case "immediate":
			if err := n.Immediate(tr.Name, tr.Rate); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: transition %q kind %q", ErrBadSpec, tr.Name, tr.Kind)
		}
	}
	for _, a := range spec.Arcs {
		mult := a.Mult
		if mult == 0 {
			mult = 1
		}
		var err error
		switch a.Kind {
		case "input":
			err = n.Input(a.Place, a.Transition, mult)
		case "output":
			err = n.Output(a.Transition, a.Place, mult)
		case "inhibitor":
			err = n.Inhibitor(a.Place, a.Transition, mult)
		default:
			err = fmt.Errorf("%w: arc kind %q", ErrBadSpec, a.Kind)
		}
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

func solveSPN(spec *SPNSpec, rec obs.Recorder) ([]Result, error) {
	n, err := buildSPN(spec)
	if err != nil {
		return nil, err
	}
	tc, err := n.Generate(spec.MaxStates)
	if err != nil {
		return nil, err
	}
	if rec.Enabled() {
		rec.Set(obs.S("solver", "spn-ctmc"),
			obs.I("places", len(spec.Places)),
			obs.I("spn_transitions", len(spec.Transitions)),
			obs.I("tangible_states", tc.NumTangible()))
	}
	conds := make(map[string]SPNCondition, len(spec.Conditions))
	for _, c := range spec.Conditions {
		conds[c.Name] = c
	}
	var out []Result
	for _, meas := range spec.Measures {
		sp := measureSpan(rec, meas)
		switch {
		case meas == "states":
			out = append(out, Result{Measure: meas, Value: float64(tc.NumTangible())})
		case len(meas) > len("throughput:") && meas[:len("throughput:")] == "throughput:":
			v, err := tc.Throughput(meas[len("throughput:"):])
			if err != nil {
				return nil, err
			}
			out = append(out, Result{Measure: meas, Value: v})
		case len(meas) > len("tokens:") && meas[:len("tokens:")] == "tokens:":
			v, err := tc.ExpectedTokens(meas[len("tokens:"):])
			if err != nil {
				return nil, err
			}
			out = append(out, Result{Measure: meas, Value: v})
		case len(meas) > len("prob:") && meas[:len("prob:")] == "prob:":
			cond, ok := conds[meas[len("prob:"):]]
			if !ok {
				return nil, fmt.Errorf("%w: condition %q undeclared", ErrBadSpec, meas)
			}
			pi, err := n.PlaceIndex(cond.Place)
			if err != nil {
				return nil, err
			}
			pred, err := tokenPredicate(cond.Op, cond.Tokens)
			if err != nil {
				return nil, err
			}
			v, err := tc.ProbWhere(func(m spn.Marking) bool { return pred(m[pi]) })
			if err != nil {
				return nil, err
			}
			out = append(out, Result{Measure: meas, Value: v})
		default:
			return nil, fmt.Errorf("%w: unknown spn measure %q", ErrBadSpec, meas)
		}
		sp.End()
	}
	return out, nil
}

func tokenPredicate(op string, k int) (func(int) bool, error) {
	switch op {
	case ">=":
		return func(n int) bool { return n >= k }, nil
	case "<=":
		return func(n int) bool { return n <= k }, nil
	case "==":
		return func(n int) bool { return n == k }, nil
	default:
		return nil, fmt.Errorf("%w: condition op %q", ErrBadSpec, op)
	}
}
