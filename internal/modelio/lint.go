package modelio

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/lint"
)

// This file adapts parsed model documents into the inputs of the
// internal/lint analyzers. The lint package deliberately does not know
// about the JSON spec types (modelio depends on lint for the pre-flight
// hook, so the reverse import would cycle); the conversion here is the
// single place where document paths and formalism inputs meet.

// LintDocument parses a model document and lints it, folding parse-level
// failures (invalid JSON, unknown model type, missing section) into
// SPEC-coded diagnostics instead of bare errors. The returned spec is nil
// when the document could not be decoded at all.
func LintDocument(r io.Reader) (*Spec, []lint.Diagnostic) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, []lint.Diagnostic{{
			Code: lint.CodeSpecParse, Severity: lint.SevError,
			Msg: fmt.Sprintf("document is not a valid model description: %v", err),
		}}
	}
	return &s, Lint(&s)
}

// Lint statically checks a parsed model document and returns the sorted
// findings. It validates the document shape (type, section, measures and
// their required fields) and then runs the formalism analyzers of
// internal/lint over the model structure.
func Lint(s *Spec) []lint.Diagnostic {
	ds := checkShape(s)
	if lint.HasErrors(ds) {
		lint.Sort(ds)
		return ds
	}
	var in lint.Input
	switch s.Type {
	case "rbd":
		ds = append(ds, checkRBDMeasures(s.RBD)...)
		in.RBD = convRBD(s.RBD)
	case "faulttree":
		ds = append(ds, checkFTMeasures(s.FaultTree)...)
		in.FaultTree = convFaultTree(s.FaultTree)
	case "ctmc":
		ds = append(ds, checkCTMCMeasures(s.CTMC)...)
		in.CTMC = convCTMC(s.CTMC)
	case "relgraph":
		ds = append(ds, checkRGMeasures(s.RelGraph)...)
		in.RelGraph = convRelGraph(s.RelGraph)
	case "spn":
		ds = append(ds, checkSPNMeasures(s.SPN)...)
		in.SPN = convSPN(s.SPN)
	}
	ds = append(ds, lint.Model(in)...)
	lint.Sort(ds)
	return ds
}

// checkShape validates the type/section pairing of the document.
func checkShape(s *Spec) []lint.Diagnostic {
	specErr := func(code, path, format string, args ...any) []lint.Diagnostic {
		return []lint.Diagnostic{{
			Code: code, Severity: lint.SevError, Path: path,
			Msg: fmt.Sprintf(format, args...),
		}}
	}
	switch s.Type {
	case "":
		return specErr(lint.CodeSpecType, "type", "document does not declare a model type")
	case "rbd":
		if s.RBD == nil {
			return specErr(lint.CodeSpecSection, "rbd", "type %q without a matching section", s.Type)
		}
	case "faulttree":
		if s.FaultTree == nil {
			return specErr(lint.CodeSpecSection, "faulttree", "type %q without a matching section", s.Type)
		}
	case "ctmc":
		if s.CTMC == nil {
			return specErr(lint.CodeSpecSection, "ctmc", "type %q without a matching section", s.Type)
		}
	case "relgraph":
		if s.RelGraph == nil {
			return specErr(lint.CodeSpecSection, "relgraph", "type %q without a matching section", s.Type)
		}
	case "spn":
		if s.SPN == nil {
			return specErr(lint.CodeSpecSection, "spn", "type %q without a matching section", s.Type)
		}
	default:
		return specErr(lint.CodeSpecType, "type", "unknown model type %q", s.Type)
	}
	return nil
}

func measureErr(code string, i int, format string, args ...any) lint.Diagnostic {
	return lint.Diagnostic{
		Code: code, Severity: lint.SevError,
		Path: fmt.Sprintf("measures[%d]", i),
		Msg:  fmt.Sprintf(format, args...),
	}
}

func checkRBDMeasures(spec *RBDSpec) []lint.Diagnostic {
	var ds []lint.Diagnostic
	for i, m := range spec.Measures {
		switch m {
		case "availability", "mttf", "mincuts":
		case "reliability", "importance":
			if spec.Time <= 0 {
				ds = append(ds, measureErr(lint.CodeSpecField, i, "measure %q needs a positive time field", m))
			}
		default:
			ds = append(ds, measureErr(lint.CodeSpecMeasure, i, "unknown rbd measure %q", m))
		}
	}
	return ds
}

func checkFTMeasures(spec *FaultTreeSpec) []lint.Diagnostic {
	var ds []lint.Diagnostic
	for i, m := range spec.Measures {
		switch m {
		case "top", "mincuts", "rare-event", "importance", "mttf":
		case "topAt":
			if spec.Time <= 0 {
				ds = append(ds, measureErr(lint.CodeSpecField, i, "measure %q needs a positive time field", m))
			}
		default:
			ds = append(ds, measureErr(lint.CodeSpecMeasure, i, "unknown faulttree measure %q", m))
		}
	}
	return ds
}

func checkCTMCMeasures(spec *CTMCSpec) []lint.Diagnostic {
	var ds []lint.Diagnostic
	for i, m := range spec.Measures {
		switch m {
		case "steadystate":
		case "availability":
			if len(spec.UpStates) == 0 {
				ds = append(ds, measureErr(lint.CodeSpecField, i, "measure %q needs upStates", m))
			}
		case "transient":
			if spec.Initial == "" || spec.Time <= 0 {
				ds = append(ds, measureErr(lint.CodeSpecField, i, "measure %q needs initial and a positive time", m))
			}
		case "mtta":
			if spec.Initial == "" || len(spec.Absorbing) == 0 {
				ds = append(ds, measureErr(lint.CodeSpecField, i, "measure %q needs initial and absorbing states", m))
			}
		default:
			ds = append(ds, measureErr(lint.CodeSpecMeasure, i, "unknown ctmc measure %q", m))
		}
	}
	switch spec.Solver {
	case "", "auto", "gth", "sor", "chain":
	default:
		ds = append(ds, lint.Diagnostic{
			Code: lint.CodeSpecField, Severity: lint.SevError, Path: "ctmc.solver",
			Msg: fmt.Sprintf("unknown solver %q (want auto, gth, sor, or chain)", spec.Solver),
		})
	}
	switch spec.Lump {
	case "", "auto", "off":
	default:
		ds = append(ds, lint.Diagnostic{
			Code: lint.CodeSpecField, Severity: lint.SevError, Path: "ctmc.lump",
			Msg: fmt.Sprintf("unknown lump mode %q (want auto or off)", spec.Lump),
		})
	}
	if spec.SolverOmega != 0 && (spec.SolverOmega <= 0 || spec.SolverOmega >= 2) { //numvet:allow float-eq zero means unset; option-default sentinel
		ds = append(ds, lint.Diagnostic{
			Code: lint.CodeSpecField, Severity: lint.SevError, Path: "ctmc.solverOmega",
			Msg: fmt.Sprintf("SOR relaxation factor %g outside (0,2)", spec.SolverOmega),
		})
	}
	return ds
}

func checkRGMeasures(spec *RelGraphSpec) []lint.Diagnostic {
	var ds []lint.Diagnostic
	for i, m := range spec.Measures {
		switch m {
		case "reliability", "minpaths", "mincuts":
		default:
			ds = append(ds, measureErr(lint.CodeSpecMeasure, i, "unknown relgraph measure %q", m))
		}
	}
	return ds
}

func checkSPNMeasures(spec *SPNSpec) []lint.Diagnostic {
	places := map[string]bool{}
	for _, p := range spec.Places {
		places[p.Name] = true
	}
	trans := map[string]bool{}
	for _, t := range spec.Transitions {
		trans[t.Name] = true
	}
	conds := map[string]SPNCondition{}
	var ds []lint.Diagnostic
	for i, c := range spec.Conditions {
		path := fmt.Sprintf("spn.conditions[%d]", i)
		if !places[c.Place] {
			ds = append(ds, lint.Diagnostic{
				Code: lint.CodeSpecField, Severity: lint.SevError, Path: path,
				Msg: fmt.Sprintf("condition %q references undeclared place %q", c.Name, c.Place),
			})
		}
		switch c.Op {
		case ">=", "<=", "==":
		default:
			ds = append(ds, lint.Diagnostic{
				Code: lint.CodeSpecField, Severity: lint.SevError, Path: path,
				Msg: fmt.Sprintf("condition %q op %q is not one of >=, <=, ==", c.Name, c.Op),
			})
		}
		conds[c.Name] = c
	}
	for i, m := range spec.Measures {
		switch {
		case m == "states":
		case len(m) > len("throughput:") && m[:len("throughput:")] == "throughput:":
			if name := m[len("throughput:"):]; !trans[name] {
				ds = append(ds, measureErr(lint.CodeSpecField, i, "throughput measure references undeclared transition %q", name))
			}
		case len(m) > len("tokens:") && m[:len("tokens:")] == "tokens:":
			if name := m[len("tokens:"):]; !places[name] {
				ds = append(ds, measureErr(lint.CodeSpecField, i, "tokens measure references undeclared place %q", name))
			}
		case len(m) > len("prob:") && m[:len("prob:")] == "prob:":
			if name := m[len("prob:"):]; conds[name].Name == "" {
				ds = append(ds, measureErr(lint.CodeSpecField, i, "prob measure references undeclared condition %q", name))
			}
		default:
			ds = append(ds, measureErr(lint.CodeSpecMeasure, i, "unknown spn measure %q", m))
		}
	}
	return ds
}

// convDist maps a distribution spec onto the linter's view.
func convDist(d *DistSpec) *lint.Dist {
	if d == nil {
		return nil
	}
	return &lint.Dist{
		Kind: d.Kind, Rate: d.Rate, Shape: d.Shape, Scale: d.Scale,
		Mu: d.Mu, Sigma: d.Sigma, Value: d.Value, Lo: d.Lo, Hi: d.Hi,
		Stages: d.Stages,
	}
}

func convRBD(spec *RBDSpec) *lint.RBD {
	out := &lint.RBD{}
	for _, c := range spec.Components {
		out.Components = append(out.Components, lint.RBDComponent{
			Name: c.Name, Lifetime: convDist(c.Lifetime), Repair: convDist(c.Repair),
		})
	}
	out.Structure = convBlock(spec.Structure, map[*BlockSpec]*lint.Block{})
	return out
}

// convBlock converts the block tree, preserving pointer sharing (and even
// cycles, which the linter then reports) via memoization.
func convBlock(b *BlockSpec, memo map[*BlockSpec]*lint.Block) *lint.Block {
	if b == nil {
		return nil
	}
	if out, ok := memo[b]; ok {
		return out
	}
	out := &lint.Block{Comp: b.Comp, Op: b.Op, K: b.K}
	memo[b] = out
	for _, c := range b.Children {
		out.Children = append(out.Children, convBlock(c, memo))
	}
	return out
}

func convFaultTree(spec *FaultTreeSpec) *lint.FaultTree {
	out := &lint.FaultTree{}
	for _, e := range spec.Events {
		out.Events = append(out.Events, lint.FTEvent{
			Name: e.Name, Prob: e.Prob, Lifetime: convDist(e.Lifetime),
		})
	}
	out.Top = convGate(spec.Top, map[*GateSpec]*lint.Gate{})
	return out
}

// convGate converts the gate tree, preserving pointer sharing and cycles
// via memoization.
func convGate(g *GateSpec, memo map[*GateSpec]*lint.Gate) *lint.Gate {
	if g == nil {
		return nil
	}
	if out, ok := memo[g]; ok {
		return out
	}
	out := &lint.Gate{Event: g.Event, Op: g.Op, K: g.K}
	memo[g] = out
	for _, c := range g.Children {
		out.Children = append(out.Children, convGate(c, memo))
	}
	return out
}

func convCTMC(spec *CTMCSpec) *lint.CTMC {
	out := &lint.CTMC{
		Initial:   spec.Initial,
		UpStates:  spec.UpStates,
		Absorbing: spec.Absorbing,
	}
	for _, tr := range spec.Transitions {
		out.Transitions = append(out.Transitions, lint.Transition{From: tr.From, To: tr.To, Rate: tr.Rate})
	}
	for _, m := range spec.Measures {
		if m == "steadystate" || m == "availability" {
			out.NeedsSteadyState = true
		}
	}
	return out
}

func convRelGraph(spec *RelGraphSpec) *lint.RelGraph {
	out := &lint.RelGraph{Source: spec.Source, Target: spec.Target}
	for _, e := range spec.Edges {
		out.Edges = append(out.Edges, lint.RGEdge{Name: e.Name, From: e.From, To: e.To, Rel: e.Rel})
	}
	return out
}

func convSPN(spec *SPNSpec) *lint.SPN {
	out := &lint.SPN{}
	for _, p := range spec.Places {
		out.Places = append(out.Places, lint.SPNPlace{Name: p.Name, Tokens: p.Tokens})
	}
	for _, t := range spec.Transitions {
		out.Transitions = append(out.Transitions, lint.SPNTransition{Name: t.Name, Kind: t.Kind, Rate: t.Rate})
	}
	for _, a := range spec.Arcs {
		out.Arcs = append(out.Arcs, lint.SPNArc{Kind: a.Kind, Place: a.Place, Transition: a.Transition, Mult: a.Mult})
	}
	return out
}
