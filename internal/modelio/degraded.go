package modelio

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/faulttree"
	"repro/internal/guard"
	"repro/internal/rbd"
)

// ErrNoDegraded reports that no bounds-only degraded answer exists for a
// model: either the family has no cheap bounding path (CTMC, relgraph,
// SPN) or none of the requested measures can be bounded from cut sets.
var ErrNoDegraded = errors.New("modelio: no bounds-only degraded answer for this model")

// buildRBDPool converts the component declarations into rbd components.
func buildRBDPool(spec *RBDSpec) (map[string]*rbd.Component, error) {
	pool := make(map[string]*rbd.Component, len(spec.Components))
	for _, cs := range spec.Components {
		if cs.Name == "" {
			return nil, fmt.Errorf("%w: unnamed component", ErrBadSpec)
		}
		life, err := cs.Lifetime.Distribution()
		if err != nil {
			return nil, fmt.Errorf("component %q lifetime: %w", cs.Name, err)
		}
		comp := &rbd.Component{Name: cs.Name, Lifetime: life}
		if cs.Repair != nil {
			rep, err := cs.Repair.Distribution()
			if err != nil {
				return nil, fmt.Errorf("component %q repair: %w", cs.Name, err)
			}
			comp.Repair = rep
		}
		pool[cs.Name] = comp
	}
	return pool, nil
}

// buildFTPool converts the event declarations into fault-tree events.
func buildFTPool(spec *FaultTreeSpec) (map[string]*faulttree.Event, error) {
	pool := make(map[string]*faulttree.Event, len(spec.Events))
	for _, es := range spec.Events {
		if es.Name == "" {
			return nil, fmt.Errorf("%w: unnamed event", ErrBadSpec)
		}
		e := &faulttree.Event{Name: es.Name, Prob: es.Prob}
		if es.Lifetime != nil {
			life, err := es.Lifetime.Distribution()
			if err != nil {
				return nil, fmt.Errorf("event %q lifetime: %w", es.Name, err)
			}
			e.Lifetime = life
		}
		pool[es.Name] = e
	}
	return pool, nil
}

// SolveBounds evaluates cheap certified bounds for the specification
// without running the exact solvers — the degraded answer a resilient
// service returns when the exact path is broken (circuit breaker open).
// Every returned scalar Result carries a Bound interval; Value is the
// conservative endpoint (the pessimistic reading: lowest defensible
// reliability, highest defensible failure probability). Set-valued
// measures (mincuts) are exact and carried through without a Bound.
//
// Measures with no bounding path are skipped rather than failing the
// whole request; when nothing can be bounded — or the model family has
// no cheap path at all (ctmc, relgraph, spn) — SolveBounds returns
// ErrNoDegraded.
func SolveBounds(s *Spec) (results []Result, err error) {
	defer guard.RecoverPanic(&err, nil, "modelio.solvebounds")
	switch s.Type {
	case "rbd":
		return rbdBounds(s.RBD)
	case "faulttree":
		return faultTreeBounds(s.FaultTree)
	default:
		return nil, fmt.Errorf("%w: type %q", ErrNoDegraded, s.Type)
	}
}

// rbdBounds answers reliability via the rare-event cut-set bound
// (log-space, so deep redundancy does not underflow) and mincuts
// exactly. Availability, MTTF, and importance need the quadrature path
// and are skipped.
func rbdBounds(spec *RBDSpec) ([]Result, error) {
	if spec == nil || spec.Structure == nil {
		return nil, fmt.Errorf("%w: rbd without structure", ErrBadSpec)
	}
	pool, err := buildRBDPool(spec)
	if err != nil {
		return nil, err
	}
	block, err := buildBlock(spec.Structure, pool)
	if err != nil {
		return nil, err
	}
	m, err := rbd.New(block)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, meas := range spec.Measures {
		switch meas {
		case "reliability":
			lb, err := m.UnreliabilityBoundLogAt(spec.Time)
			if err != nil {
				return nil, err
			}
			lower := 1 - math.Exp(lb)
			if lower < 0 {
				lower = 0
			}
			out = append(out, Result{Measure: meas, Value: lower,
				Bound: &Bound{Lower: lower, Upper: 1, Method: "rare-event-cutsets"}})
		case "mincuts":
			out = append(out, Result{Measure: meas, Sets: m.MinimalCutSets()})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no boundable rbd measure in %v", ErrNoDegraded, spec.Measures)
	}
	return out, nil
}

// faultTreeBounds answers top/rare-event/topAt via the rare-event upper
// bound over MOCUS cut sets — no BDD is compiled, so the path stays
// cheap even for trees whose exact compile blows the node budget.
func faultTreeBounds(spec *FaultTreeSpec) ([]Result, error) {
	if spec == nil || spec.Top == nil {
		return nil, fmt.Errorf("%w: faulttree without top gate", ErrBadSpec)
	}
	pool, err := buildFTPool(spec)
	if err != nil {
		return nil, err
	}
	node, err := buildGate(spec.Top, pool)
	if err != nil {
		return nil, err
	}
	tree, err := faulttree.NewCutSetsOnly(node)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, meas := range spec.Measures {
		switch meas {
		case "top", "rare-event":
			lb, err := tree.RareEventBoundLog()
			if err != nil {
				return nil, err
			}
			upper := math.Exp(lb)
			if upper > 1 {
				upper = 1
			}
			out = append(out, Result{Measure: meas, Value: upper,
				Bound: &Bound{Lower: 0, Upper: upper, Method: "rare-event"}})
		case "topAt":
			upper, err := topAtBound(tree, pool, spec.Time)
			if err != nil {
				return nil, err
			}
			out = append(out, Result{Measure: meas, Value: upper,
				Bound: &Bound{Lower: 0, Upper: upper, Method: "rare-event"}})
		case "mincuts":
			cuts, err := tree.CutSets()
			if err != nil {
				return nil, err
			}
			out = append(out, Result{Measure: meas, Sets: cuts})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no boundable faulttree measure in %v", ErrNoDegraded, spec.Measures)
	}
	return out, nil
}

// topAtBound evaluates the rare-event upper bound on the top event at
// mission time tau, taking per-event probabilities from the lifetime
// CDFs instead of the static Prob fields.
func topAtBound(tree *faulttree.Tree, pool map[string]*faulttree.Event, tau float64) (float64, error) {
	cuts, err := tree.CutSets()
	if err != nil {
		return 0, err
	}
	logs := make([]float64, len(cuts))
	for i, c := range cuts {
		ps := make([]float64, len(c))
		for j, name := range c {
			e := pool[name]
			if e == nil || e.Lifetime == nil {
				return 0, fmt.Errorf("%w: %q", faulttree.ErrNoLifetime, name)
			}
			ps[j] = e.Lifetime.CDF(tau)
		}
		lc, err := guard.LogCutProb(ps)
		if err != nil {
			return 0, fmt.Errorf("faulttree: cut %v: %w", c, err)
		}
		logs[i] = lc
	}
	upper := math.Exp(guard.LogRareEvent(logs))
	if upper > 1 {
		upper = 1
	}
	return upper, nil
}
