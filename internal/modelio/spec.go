// Package modelio defines the JSON model-description format consumed by
// cmd/relcli and converts specifications into solver objects. It lets a
// user describe an RBD, fault tree, CTMC, or reliability graph in a file
// and request measures without writing Go — the "software package"
// interface the tutorial's lineage of tools (SHARPE, SPNP) provided.
package modelio

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/dist"
	"repro/internal/failpoint"
)

// Failpoints this package declares (see internal/failpoint). An injected
// parse fault surfaces as the raw *failpoint.Error (not ErrBadSpec), so
// callers can tell "the document is bad" from "the parser broke".
const (
	fpParse = "modelio.parse"
	fpBuild = "modelio.build"
)

// Spec is the top-level model document.
type Spec struct {
	// Type selects the model family: "rbd", "faulttree", "ctmc", or
	// "relgraph".
	Type string `json:"type"`
	// Name optionally labels the model in reports.
	Name string `json:"name,omitempty"`
	// Exactly one of the following must be present, matching Type.
	RBD       *RBDSpec       `json:"rbd,omitempty"`
	FaultTree *FaultTreeSpec `json:"faulttree,omitempty"`
	CTMC      *CTMCSpec      `json:"ctmc,omitempty"`
	RelGraph  *RelGraphSpec  `json:"relgraph,omitempty"`
	SPN       *SPNSpec       `json:"spn,omitempty"`
}

// DistSpec describes a lifetime/repair distribution.
type DistSpec struct {
	// Kind is one of "exponential", "weibull", "lognormal", "gamma",
	// "deterministic", "uniform", "erlang".
	Kind string `json:"kind"`
	// Rate is used by exponential (rate), gamma (rate), and erlang (per
	// stage rate).
	Rate float64 `json:"rate,omitempty"`
	// Shape is used by weibull and gamma.
	Shape float64 `json:"shape,omitempty"`
	// Scale is used by weibull.
	Scale float64 `json:"scale,omitempty"`
	// Mu and Sigma are used by lognormal.
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
	// Value is used by deterministic.
	Value float64 `json:"value,omitempty"`
	// Lo and Hi are used by uniform.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// Stages is used by erlang.
	Stages int `json:"stages,omitempty"`
}

// ErrBadSpec reports a malformed model document.
var ErrBadSpec = errors.New("modelio: invalid specification")

// Distribution converts the spec into a dist.Distribution.
func (d *DistSpec) Distribution() (dist.Distribution, error) {
	if d == nil {
		return nil, fmt.Errorf("%w: missing distribution", ErrBadSpec)
	}
	switch d.Kind {
	case "exponential":
		return dist.NewExponential(d.Rate)
	case "weibull":
		return dist.NewWeibull(d.Shape, d.Scale)
	case "lognormal":
		return dist.NewLognormal(d.Mu, d.Sigma)
	case "gamma":
		return dist.NewGamma(d.Shape, d.Rate)
	case "deterministic":
		return dist.NewDeterministic(d.Value)
	case "uniform":
		return dist.NewUniform(d.Lo, d.Hi)
	case "erlang":
		return dist.NewErlang(d.Stages, d.Rate)
	default:
		return nil, fmt.Errorf("%w: unknown distribution kind %q", ErrBadSpec, d.Kind)
	}
}

// RBDSpec describes a reliability block diagram.
type RBDSpec struct {
	// Components declares the component pool.
	Components []RBDComponent `json:"components"`
	// Structure is the block tree.
	Structure *BlockSpec `json:"structure"`
	// Measures selects outputs: "availability", "mttf", "reliability"
	// (requires Time), "mincuts", "importance" (requires Time).
	Measures []string `json:"measures"`
	// Time is the mission time for time-dependent measures.
	Time float64 `json:"time,omitempty"`
}

// RBDComponent is one named component.
type RBDComponent struct {
	Name     string    `json:"name"`
	Lifetime *DistSpec `json:"lifetime"`
	Repair   *DistSpec `json:"repair,omitempty"`
}

// BlockSpec is a node of the RBD structure tree: either a component
// reference or an operator over children.
type BlockSpec struct {
	// Comp references a component by name (leaf).
	Comp string `json:"comp,omitempty"`
	// Op is "series", "parallel", or "kofn".
	Op string `json:"op,omitempty"`
	// K is the threshold for kofn.
	K int `json:"k,omitempty"`
	// Children are the operand blocks.
	Children []*BlockSpec `json:"children,omitempty"`
}

// FaultTreeSpec describes a fault tree.
type FaultTreeSpec struct {
	// Events declares the basic events.
	Events []FTEvent `json:"events"`
	// Top is the gate tree.
	Top *GateSpec `json:"top"`
	// Measures selects outputs: "top", "mincuts", "importance",
	// "rare-event", "topAt" (requires Time and event lifetimes), "mttf"
	// (requires event lifetimes).
	Measures []string `json:"measures"`
	// Time is the mission time for "topAt".
	Time float64 `json:"time,omitempty"`
	// BDDBudget caps the top-event BDD at that many internal nodes. When
	// the compile exceeds it, the solve falls back to MOCUS cut-set
	// enumeration with rare-event bounds instead of exact probabilities
	// (the Boeing path); both attempts appear in the trace. 0 disables the
	// budget.
	BDDBudget int `json:"bddBudget,omitempty"`
}

// FTEvent is one named basic event. Prob drives the static measures
// ("top", "importance", …); Lifetime drives the time-dependent ones
// ("topAt", "mttf").
type FTEvent struct {
	Name     string    `json:"name"`
	Prob     float64   `json:"prob,omitempty"`
	Lifetime *DistSpec `json:"lifetime,omitempty"`
}

// GateSpec is a node of the fault-tree gate tree.
type GateSpec struct {
	// Event references a basic event by name (leaf).
	Event string `json:"event,omitempty"`
	// Op is "and", "or", "atleast", or "not".
	Op string `json:"op,omitempty"`
	// K is the threshold for atleast.
	K int `json:"k,omitempty"`
	// Children are the operand gates.
	Children []*GateSpec `json:"children,omitempty"`
}

// CTMCSpec describes a continuous-time Markov chain.
type CTMCSpec struct {
	// Transitions lists the rates.
	Transitions []CTMCTransition `json:"transitions"`
	// Initial names the initial state for transient/absorbing measures.
	Initial string `json:"initial,omitempty"`
	// UpStates names the states counted as "up" for availability measures.
	UpStates []string `json:"upStates,omitempty"`
	// Absorbing names the failure states for the "mtta" measure.
	Absorbing []string `json:"absorbing,omitempty"`
	// Measures selects outputs: "steadystate", "availability",
	// "transient" (requires Time and Initial), "mtta" (requires Initial
	// and Absorbing).
	Measures []string `json:"measures"`
	// Time is the horizon for "transient".
	Time float64 `json:"time,omitempty"`
	// Solver selects the steady-state method: "auto" (default), "gth",
	// "sor", or "chain" (SOR escalating to exact GTH on convergence
	// failure, with both attempts recorded in the trace).
	Solver string `json:"solver,omitempty"`
	// SolverTol overrides the iterative solver's convergence tolerance.
	SolverTol float64 `json:"solverTol,omitempty"`
	// SolverMaxIter overrides the iterative solver's sweep budget.
	SolverMaxIter int `json:"solverMaxIter,omitempty"`
	// SolverOmega overrides the SOR relaxation factor (must lie in (0,2);
	// 0 means the solver default).
	SolverOmega float64 `json:"solverOmega,omitempty"`
	// Lump controls the automatic state-space reduction pre-pass: "" or
	// "auto" aggregates an exactly-lumpable chain before solving when
	// every requested measure is preserved by the lumping (availability,
	// mtta); "off" disables the pre-pass.
	Lump string `json:"lump,omitempty"`
}

// CTMCTransition is one rate entry.
type CTMCTransition struct {
	From string  `json:"from"`
	To   string  `json:"to"`
	Rate float64 `json:"rate"`
}

// RelGraphSpec describes an s–t reliability graph.
type RelGraphSpec struct {
	// Edges lists the failing links.
	Edges []RGEdge `json:"edges"`
	// Source and Target are the terminal nodes.
	Source string `json:"source"`
	Target string `json:"target"`
	// Measures selects outputs: "reliability", "minpaths", "mincuts".
	Measures []string `json:"measures"`
}

// RGEdge is one named edge.
type RGEdge struct {
	Name string  `json:"name"`
	From string  `json:"from"`
	To   string  `json:"to"`
	Rel  float64 `json:"rel"`
}

// Parse reads and validates a model document.
func Parse(r io.Reader) (*Spec, error) {
	if err := failpoint.Inject(fpParse); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	switch s.Type {
	case "rbd":
		if s.RBD == nil {
			return nil, fmt.Errorf("%w: type rbd without rbd section", ErrBadSpec)
		}
	case "faulttree":
		if s.FaultTree == nil {
			return nil, fmt.Errorf("%w: type faulttree without faulttree section", ErrBadSpec)
		}
	case "ctmc":
		if s.CTMC == nil {
			return nil, fmt.Errorf("%w: type ctmc without ctmc section", ErrBadSpec)
		}
	case "relgraph":
		if s.RelGraph == nil {
			return nil, fmt.Errorf("%w: type relgraph without relgraph section", ErrBadSpec)
		}
	case "spn":
		if s.SPN == nil {
			return nil, fmt.Errorf("%w: type spn without spn section", ErrBadSpec)
		}
	default:
		return nil, fmt.Errorf("%w: unknown type %q", ErrBadSpec, s.Type)
	}
	return &s, nil
}
