package obs

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"sync"
	"time"
)

// ProfileEntry describes one captured pprof profile in the ring.
type ProfileEntry struct {
	// Name is the file name inside the ring directory.
	Name string `json:"name"`
	// Kind is "cpu" or "heap".
	Kind string `json:"kind"`
	// Start and End bound the capture window (equal for heap snapshots),
	// so slow traces can be joined to the profiles that overlapped them.
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Bytes is the profile file size.
	Bytes int64 `json:"bytes"`
}

// ProfileRing is a bounded on-disk ring of periodic pprof captures: the
// continuous-profiling store behind serve's -profile-dir. When the ring
// is full the oldest file is deleted, so disk usage stays bounded no
// matter how long the process runs.
type ProfileRing struct {
	mu      sync.Mutex
	dir     string
	max     int
	seq     uint64
	entries []ProfileEntry // oldest first
}

// NewProfileRing builds a ring storing at most max profiles (max < 1
// means 32) under dir, creating the directory if needed.
func NewProfileRing(dir string, max int) (*ProfileRing, error) {
	if max < 1 {
		max = 32
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("profile ring: %w", err)
	}
	return &ProfileRing{dir: dir, max: max}, nil
}

// Dir reports the ring directory.
func (r *ProfileRing) Dir() string { return r.dir }

// CaptureCPU records a CPU profile for d (or until ctx is canceled,
// whichever comes first) and adds it to the ring.
func (r *ProfileRing) CaptureCPU(ctx context.Context, d time.Duration) (ProfileEntry, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d <= 0 {
		d = time.Second
	}
	name, path := r.nextName("cpu")
	f, err := os.Create(path)
	if err != nil {
		return ProfileEntry{}, err
	}
	start := time.Now()
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		return ProfileEntry{}, err
	}
	t := time.NewTimer(d)
	select {
	case <-t.C:
	case <-ctx.Done():
		t.Stop()
	}
	pprof.StopCPUProfile()
	end := time.Now()
	if err := f.Close(); err != nil {
		os.Remove(path)
		return ProfileEntry{}, err
	}
	return r.add(name, "cpu", path, start, end)
}

// CaptureHeap snapshots the heap profile into the ring.
func (r *ProfileRing) CaptureHeap() (ProfileEntry, error) {
	name, path := r.nextName("heap")
	f, err := os.Create(path)
	if err != nil {
		return ProfileEntry{}, err
	}
	at := time.Now()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		return ProfileEntry{}, err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return ProfileEntry{}, err
	}
	return r.add(name, "heap", path, at, at)
}

// List returns the ring's entries newest-first.
func (r *ProfileRing) List() []ProfileEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ProfileEntry, len(r.entries))
	for i, e := range r.entries {
		out[len(out)-1-i] = e
	}
	return out
}

// Overlapping returns entries whose capture window intersects
// [start, end], newest-first — the join slow traces use to surface
// "what was the CPU doing while this request ran".
func (r *ProfileRing) Overlapping(start, end time.Time) []ProfileEntry {
	out := r.List()
	kept := out[:0]
	for _, e := range out {
		if !e.Start.After(end) && !e.End.Before(start) {
			kept = append(kept, e)
		}
	}
	return kept
}

func (r *ProfileRing) nextName(kind string) (name, path string) {
	r.mu.Lock()
	r.seq++
	name = fmt.Sprintf("%s-%06d.pprof", kind, r.seq)
	r.mu.Unlock()
	return name, filepath.Join(r.dir, name)
}

func (r *ProfileRing) add(name, kind, path string, start, end time.Time) (ProfileEntry, error) {
	fi, err := os.Stat(path)
	var size int64
	if err == nil {
		size = fi.Size()
	}
	e := ProfileEntry{Name: name, Kind: kind, Start: start, End: end, Bytes: size}
	r.mu.Lock()
	r.entries = append(r.entries, e)
	var evict []string
	for len(r.entries) > r.max {
		evict = append(evict, r.entries[0].Name)
		r.entries = r.entries[1:]
	}
	sort.SliceStable(r.entries, func(i, j int) bool {
		return r.entries[i].Start.Before(r.entries[j].Start)
	})
	r.mu.Unlock()
	for _, n := range evict {
		os.Remove(filepath.Join(r.dir, n))
	}
	return e, nil
}
