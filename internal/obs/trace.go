package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Process-wide relprobe counters. Since relscope (PR 5) they live in the
// default metrics registry — the single source of truth scraped at
// /metrics — and the legacy expvar names under /debug/vars are read-only
// views of the same counters, so the two surfaces cannot drift. They
// advance only while a Trace is recording.
var (
	ctrTraces = metrics.Default().NewCounter("relprobe_traces_total", "Traces started.")
	ctrSpans  = metrics.Default().NewCounter("relprobe_spans_total", "Trace spans opened.")
	ctrIters  = metrics.Default().NewCounter("relprobe_iterations_total", "Iterations recorded on traces.")
)

func init() {
	mirror := func(name string, c *metrics.Counter) {
		expvar.Publish(name, expvar.Func(func() any { return int64(c.Value()) }))
	}
	mirror("relprobe.traces", ctrTraces)
	mirror("relprobe.spans", ctrSpans)
	mirror("relprobe.iterations", ctrIters)
}

// TraceSchemaVersion identifies the span-tree JSON schema. It is stamped
// on the root span of every trace so `-trace-json` consumers and the
// reldash dashboard can detect the document shape instead of guessing.
// Version 2 added the explicit wall_ms duration alongside wall_ns.
const TraceSchemaVersion = 2

// IterPoint is one recorded iteration of an iterative solve.
type IterPoint struct {
	// N is the 1-based iteration number.
	N int `json:"n"`
	// Residual is the convergence measure at that iteration (solver
	// specific: L∞ sweep delta, Poisson tail mass, fixed-point delta).
	Residual float64 `json:"residual"`
	// Label optionally names what dominated the iteration.
	Label string `json:"label,omitempty"`
}

// Span is one node of a recorded trace tree. Exported fields define the
// JSON trace schema documented in README.md.
type Span struct {
	// Name identifies the operation ("markov.steadystate", "linalg.sor", …).
	Name string `json:"name"`
	// Version is the trace schema version, stamped on root spans only
	// (see TraceSchemaVersion); zero on child spans.
	Version int `json:"version,omitempty"`
	// WallNS is the span's wall-clock duration in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// AllocBytes is the heap allocated during the span (only when the
	// trace captures allocations; see Trace.SetCaptureAllocs).
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
	// Attrs holds the typed attributes in insertion order.
	Attrs []Attr `json:"-"`
	// Iters holds per-iteration convergence records.
	Iters []IterPoint `json:"iters,omitempty"`
	// Children are nested spans in start order.
	Children []*Span `json:"children,omitempty"`

	start      time.Time
	startAlloc uint64
	open       bool
}

// spanJSON is the marshaled shape of a Span; attrs become a JSON object
// (keys sorted by encoding/json for deterministic output).
type spanJSON struct {
	Name       string         `json:"name"`
	Version    int            `json:"version,omitempty"`
	WallNS     int64          `json:"wall_ns"`
	WallMS     float64        `json:"wall_ms"`
	AllocBytes uint64         `json:"alloc_bytes,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Iters      []IterPoint    `json:"iters,omitempty"`
	Children   []*Span        `json:"children,omitempty"`
}

// MarshalJSON renders the span with attributes as an object. The duration
// appears twice on purpose: wall_ns is the exact integer measurement,
// wall_ms the unit-explicit value dashboards display without guessing.
func (s *Span) MarshalJSON() ([]byte, error) {
	out := spanJSON{
		Name:       s.Name,
		Version:    s.Version,
		WallNS:     s.WallNS,
		WallMS:     float64(s.WallNS) / 1e6,
		AllocBytes: s.AllocBytes,
		Iters:      s.Iters,
		Children:   s.Children,
	}
	if len(s.Attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.Attrs))
		for _, a := range s.Attrs {
			out.Attrs[a.Key] = a.Value()
		}
	}
	return json.Marshal(out)
}

// Attr returns the value of the named attribute and whether it is set.
func (s *Span) Attr(key string) (any, bool) {
	// Last write wins, matching JSON object semantics.
	for i := len(s.Attrs) - 1; i >= 0; i-- {
		if s.Attrs[i].Key == key {
			return s.Attrs[i].Value(), true
		}
	}
	return nil, false
}

// Walk visits the span and every descendant in depth-first order.
func (s *Span) Walk(visit func(*Span)) {
	visit(s)
	for _, c := range s.Children {
		c.Walk(visit)
	}
}

// Trace is a concrete Recorder that collects spans into a tree. The zero
// value is not usable; construct with NewTrace. All methods are
// mutex-guarded so parallel sweeps may share one trace.
type Trace struct {
	mu            sync.Mutex
	root          *Span
	captureAllocs bool
}

// NewTrace starts a trace whose root span carries the given name (the
// model or experiment being solved).
func NewTrace(rootName string) *Trace {
	ctrTraces.Add(1)
	ctrSpans.Add(1)
	return &Trace{root: &Span{Name: rootName, Version: TraceSchemaVersion, start: time.Now(), open: true}}
}

// SetCaptureAllocs toggles heap-allocation capture per span. It costs a
// runtime.ReadMemStats call at every span boundary, so it is off by
// default and only meaningful for single-goroutine solves.
func (t *Trace) SetCaptureAllocs(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.captureAllocs = on
	if on && t.root.open {
		t.root.startAlloc = heapAlloc()
	}
}

func heapAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// Finish closes the root span (and any still-open descendants) and
// returns it. Idempotent; Write* and Summary call it implicitly.
func (t *Trace) Finish() *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.finishLocked()
	return t.root
}

func (t *Trace) finishLocked() {
	now := time.Now()
	var alloc uint64
	if t.captureAllocs {
		alloc = heapAlloc()
	}
	t.root.Walk(func(s *Span) {
		if s.open {
			s.WallNS = now.Sub(s.start).Nanoseconds()
			if t.captureAllocs && alloc >= s.startAlloc {
				s.AllocBytes = alloc - s.startAlloc
			}
			s.open = false
		}
	})
}

// Root returns the root span without finalizing open spans.
func (t *Trace) Root() *Span { return t.root }

// OpenPath returns the names of the currently open span chain (outermost
// first), following the deepest open child at each level. It is what a
// panic-recovery boundary attaches to an internal error so the failure
// names the solver that was running.
func (t *Trace) OpenPath() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return openPathFrom(t.root)
}

func openPathFrom(s *Span) []string {
	if s == nil || !s.open {
		return nil
	}
	path := []string{s.Name}
	// The most recently opened child that is still open is the active one.
	for i := len(s.Children) - 1; i >= 0; i-- {
		if sub := openPathFrom(s.Children[i]); sub != nil {
			return append(path, sub...)
		}
	}
	return path
}

// --- Recorder implementation (scoped at the root span) ---

// Enabled implements Recorder.
func (t *Trace) Enabled() bool { return true }

// Span implements Recorder: it opens a child of the root span.
func (t *Trace) Span(name string, attrs ...Attr) Recorder {
	return t.openSpan(t.root, name, attrs)
}

// End implements Recorder by closing the root span.
func (t *Trace) End() { t.Finish() }

// Iter implements Recorder on the root span.
func (t *Trace) Iter(n int, residual float64) { t.addIter(t.root, n, residual, "") }

// IterLabel implements Recorder on the root span.
func (t *Trace) IterLabel(n int, residual float64, label string) {
	t.addIter(t.root, n, residual, label)
}

// Set implements Recorder on the root span.
func (t *Trace) Set(attrs ...Attr) { t.setAttrs(t.root, attrs) }

func (t *Trace) openSpan(parent *Span, name string, attrs []Attr) Recorder {
	t.mu.Lock()
	defer t.mu.Unlock()
	ctrSpans.Add(1)
	s := &Span{Name: name, Attrs: attrs, start: time.Now(), open: true}
	if t.captureAllocs {
		s.startAlloc = heapAlloc()
	}
	parent.Children = append(parent.Children, s)
	return &spanRec{t: t, s: s}
}

func (t *Trace) endSpan(s *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !s.open {
		return
	}
	s.WallNS = time.Since(s.start).Nanoseconds()
	if t.captureAllocs {
		if alloc := heapAlloc(); alloc >= s.startAlloc {
			s.AllocBytes = alloc - s.startAlloc
		}
	}
	s.open = false
}

func (t *Trace) addIter(s *Span, n int, residual float64, label string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ctrIters.Add(1)
	s.Iters = append(s.Iters, IterPoint{N: n, Residual: residual, Label: label})
}

func (t *Trace) setAttrs(s *Span, attrs []Attr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s.Attrs = append(s.Attrs, attrs...)
}

// spanRec is a Recorder scoped to one span of a Trace.
type spanRec struct {
	t *Trace
	s *Span
}

func (r *spanRec) Enabled() bool { return true }
func (r *spanRec) Span(name string, attrs ...Attr) Recorder {
	return r.t.openSpan(r.s, name, attrs)
}
func (r *spanRec) End()                  { r.t.endSpan(r.s) }
func (r *spanRec) Iter(n int, d float64) { r.t.addIter(r.s, n, d, "") }
func (r *spanRec) Set(attrs ...Attr)     { r.t.setAttrs(r.s, attrs) }
func (r *spanRec) IterLabel(n int, d float64, label string) {
	r.t.addIter(r.s, n, d, label)
}

// OpenPath reports the open span chain from the trace root through (and
// below) this recorder's span. See Trace.OpenPath.
func (r *spanRec) OpenPath() []string { return r.t.OpenPath() }

// --- export ---

// WriteJSON finalizes the trace and writes the span tree as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	root := t.Finish()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(root)
}

// WriteText finalizes the trace and writes a human-readable indented tree.
func (t *Trace) WriteText(w io.Writer) error {
	root := t.Finish()
	return writeTextSpan(w, root, 0)
}

func writeTextSpan(w io.Writer, s *Span, depth int) error {
	for i := 0; i < depth; i++ {
		if _, err := io.WriteString(w, "  "); err != nil {
			return err
		}
	}
	line := fmt.Sprintf("%s [%s]", s.Name, time.Duration(s.WallNS))
	if s.AllocBytes > 0 {
		line += fmt.Sprintf(" alloc=%dB", s.AllocBytes)
	}
	for _, a := range s.Attrs {
		line += fmt.Sprintf(" %s=%v", a.Key, a.Value())
	}
	if n := len(s.Iters); n > 0 {
		first, last := s.Iters[0], s.Iters[n-1]
		line += fmt.Sprintf(" iters=%d (resid %.3g → %.3g)", n, first.Residual, last.Residual)
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, c := range s.Children {
		if err := writeTextSpan(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// Summary condenses a trace for benchmark records and -metrics output.
type Summary struct {
	// Spans is the total span count including the root.
	Spans int `json:"spans"`
	// Iterations sums the recorded iteration events over all spans.
	Iterations int `json:"iterations"`
	// WallNS is the root span's wall time.
	WallNS int64 `json:"wall_ns"`
	// Solver names the dominant solver: the "solver" attribute of the
	// span that recorded the most iterations, falling back to the
	// longest-running span carrying one.
	Solver string `json:"solver,omitempty"`
}

// Summary finalizes the trace and condenses it.
func (t *Trace) Summary() Summary {
	root := t.Finish()
	sum := Summary{WallNS: root.WallNS}
	type cand struct {
		solver string
		iters  int
		wallNS int64
	}
	var cands []cand
	root.Walk(func(s *Span) {
		sum.Spans++
		sum.Iterations += len(s.Iters)
		if v, ok := s.Attr("solver"); ok {
			if name, ok := v.(string); ok {
				cands = append(cands, cand{solver: name, iters: len(s.Iters), wallNS: s.WallNS})
			}
		}
	})
	if len(cands) > 0 {
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].iters != cands[j].iters {
				return cands[i].iters > cands[j].iters
			}
			return cands[i].wallNS > cands[j].wallNS
		})
		sum.Solver = cands[0].solver
	}
	return sum
}
