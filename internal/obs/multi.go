package obs

// Multi fans every Recorder event out to several recorders — a solve can
// simultaneously build a Trace, feed a metrics registry, and emit slog
// events. Disabled (nil or Nop) recorders are filtered at construction,
// so a Multi of nothing collapses to Nop and a Multi of one is that
// recorder itself, preserving the zero-cost-when-disabled property.
func Multi(recs ...Recorder) Recorder {
	live := make([]Recorder, 0, len(recs))
	for _, r := range recs {
		if r != nil && r.Enabled() {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nop
	case 1:
		return live[0]
	}
	return multiRec(live)
}

type multiRec []Recorder

func (m multiRec) Enabled() bool { return true }

func (m multiRec) Span(name string, attrs ...Attr) Recorder {
	children := make(multiRec, len(m))
	for i, r := range m {
		children[i] = r.Span(name, attrs...)
	}
	return children
}

func (m multiRec) End() {
	for _, r := range m {
		r.End()
	}
}

func (m multiRec) Iter(n int, residual float64) {
	for _, r := range m {
		r.Iter(n, residual)
	}
}

func (m multiRec) IterLabel(n int, residual float64, label string) {
	for _, r := range m {
		r.IterLabel(n, residual, label)
	}
}

func (m multiRec) Set(attrs ...Attr) {
	for _, r := range m {
		r.Set(attrs...)
	}
}

// OpenPath implements guard.SpanPather by returning the first non-empty
// open-span path among the fan-out targets (typically the Trace).
func (m multiRec) OpenPath() []string {
	for _, r := range m {
		if p, ok := r.(interface{ OpenPath() []string }); ok {
			if path := p.OpenPath(); len(path) > 0 {
				return path
			}
		}
	}
	return nil
}
