package obs

import (
	"time"

	"repro/internal/metrics"
)

// MetricsRecorder bridges Recorder events into a metrics.Registry,
// turning per-solve span trees into cross-solve aggregates. It pattern
// matches the attribute vocabulary the solvers already emit (see
// internal/linalg, markov, hier, faulttree, guard):
//
//   - spans carrying a "solver" attribute feed a wall-time histogram,
//     an iteration counter, and a last-residual gauge labeled
//     {solver, model};
//   - "guard.chain" spans feed fallback counters: one per attempt labeled
//     {chain, method, class} and one per decided chain labeled
//     {chain, winner} ("" when exhausted);
//   - "outcome" attributes (set by guard.RecordInterrupt, RecoverPanic,
//     and chain exhaustion) feed a guard-outcome counter labeled
//     {outcome} — canceled, deadline, panic, exhausted;
//   - "guard_warning_op" attributes (warn-mode guard rails) feed a
//     rail-warning counter labeled {op}.
//
// Attach it with Multi alongside a Trace or SlogRecorder; when metrics
// are not wanted, simply don't attach it — the solvers' Enabled() guards
// then skip every call.
type MetricsRecorder struct {
	model string

	spans     *metrics.Counter
	solves    *metrics.Counter
	wall      *metrics.Histogram
	iters     *metrics.Counter
	residual  *metrics.Gauge
	attempts  *metrics.Counter
	winners   *metrics.Counter
	outcomes  *metrics.Counter
	railWarns *metrics.Counter
	lumped    *metrics.Counter
	lumpRatio *metrics.Gauge
}

// NewMetricsRecorder registers the relscope solver-metric families on reg
// (idempotently — registries dedupe by name) and returns a bridge that
// labels every sample with the given model name.
func NewMetricsRecorder(reg *metrics.Registry, model string) *MetricsRecorder {
	return &MetricsRecorder{
		model: model,
		spans: reg.NewCounter("relscope_spans_total",
			"Solver telemetry spans opened.", "model"),
		solves: reg.NewCounter("relscope_solves_total",
			"Model solves started (root spans).", "model"),
		wall: reg.NewHistogram("relscope_solver_wall_seconds",
			"Wall time of solver spans.", nil, "solver", "model"),
		iters: reg.NewCounter("relscope_solver_iterations_total",
			"Iterations recorded by iterative solvers.", "solver", "model"),
		residual: reg.NewGauge("relscope_solver_last_residual",
			"Most recent convergence residual per solver.", "solver", "model"),
		attempts: reg.NewCounter("relscope_chain_attempts_total",
			"Fallback-chain attempts by failure class (class \"none\" is success).", "chain", "method", "class", "model"),
		winners: reg.NewCounter("relscope_chain_decided_total",
			"Fallback chains decided, by winning method (winner \"\" means exhausted).", "chain", "winner", "model"),
		outcomes: reg.NewCounter("relscope_guard_outcomes_total",
			"Guard outcomes observed on spans: canceled, deadline, panic, exhausted.", "outcome", "model"),
		railWarns: reg.NewCounter("relscope_rail_warnings_total",
			"Warn-mode numerical guard-rail violations by check site.", "op", "model"),
		lumped: reg.NewCounter("relscope_lump_applied_total",
			"Automatic lumping pre-passes applied before a solve.", "model"),
		lumpRatio: reg.NewGauge("relscope_lump_reduction_ratio",
			"Most recent state-space reduction ratio (states/blocks) from automatic lumping.", "model"),
	}
}

// Enabled implements Recorder.
func (m *MetricsRecorder) Enabled() bool { return true }

// Span implements Recorder: the root of a new solve.
func (m *MetricsRecorder) Span(name string, attrs ...Attr) Recorder {
	m.solves.Inc(m.model)
	return m.openSpan(name, "", attrs)
}

// End, Iter, IterLabel, and Set on the bridge itself (outside any span)
// have no aggregate meaning and are ignored.
func (m *MetricsRecorder) End()                           {}
func (m *MetricsRecorder) Iter(int, float64)              {}
func (m *MetricsRecorder) IterLabel(int, float64, string) {}
func (m *MetricsRecorder) Set(...Attr)                    {}

// openSpan builds the per-span state, inheriting the enclosing chain name
// so attempt spans can label their metrics.
func (m *MetricsRecorder) openSpan(name, chain string, attrs []Attr) *metricsSpan {
	m.spans.Inc(m.model)
	s := &metricsSpan{m: m, name: name, chain: chain, start: time.Now()}
	s.absorb(attrs)
	return s
}

// metricsSpan is the bridge's per-span recorder. Only the goroutine
// driving the span mutates it (the Recorder contract), so no lock is
// needed; the metric families it feeds are themselves concurrency-safe.
type metricsSpan struct {
	m      *MetricsRecorder
	name   string
	chain  string // enclosing guard.chain name, inherited by children
	method string // "method" attr on attempt spans
	solver string // "solver" attr
	start  time.Time
}

// absorb inspects attributes for the keys the bridge aggregates.
func (s *metricsSpan) absorb(attrs []Attr) {
	for _, a := range attrs {
		if a.Key == "lump_ratio" {
			// The one float the bridge aggregates: a "relstruct.lump" span
			// announcing an applied state-space reduction.
			if f, ok := a.Value().(float64); ok {
				s.m.lumped.Inc(s.m.model)
				s.m.lumpRatio.Set(f, s.m.model)
			}
			continue
		}
		v, isString := a.Value().(string)
		if !isString {
			continue
		}
		switch a.Key {
		case "solver":
			s.solver = v
		case "chain":
			s.chain = v
		case "method":
			s.method = v
		case "failure_class":
			s.m.attempts.Inc(s.chain, s.method, v, s.m.model)
		case "winner":
			s.m.winners.Inc(s.chain, v, s.m.model)
		case "outcome":
			if v == "exhausted" {
				// A chain span reporting exhaustion also sets winner="";
				// count it under both surfaces.
				s.m.winners.Inc(s.chain, "", s.m.model)
			}
			s.m.outcomes.Inc(v, s.m.model)
		case "guard_warning_op":
			s.m.railWarns.Inc(v, s.m.model)
		}
	}
}

func (s *metricsSpan) Enabled() bool { return true }

func (s *metricsSpan) Span(name string, attrs ...Attr) Recorder {
	return s.m.openSpan(name, s.chain, attrs)
}

// End observes the wall-time histogram for spans that identified a
// solver; purely structural spans (measure:*, modelio.solve) only count
// toward relscope_spans_total.
func (s *metricsSpan) End() {
	if s.solver != "" {
		s.m.wall.Observe(time.Since(s.start).Seconds(), s.solver, s.m.model)
	}
}

func (s *metricsSpan) Iter(n int, residual float64) { s.IterLabel(n, residual, "") }

func (s *metricsSpan) IterLabel(_ int, residual float64, _ string) {
	solver := s.solver
	if solver == "" {
		solver = s.name
	}
	s.m.iters.Inc(solver, s.m.model)
	s.m.residual.Set(residual, solver, s.m.model)
}

func (s *metricsSpan) Set(attrs ...Attr) { s.absorb(attrs) }
