package obs

import (
	"context"
	"log/slog"
	"time"
)

// SlogRecorder bridges Recorder events to a *slog.Logger, rendering a
// solve as structured log events instead of (or alongside, via Multi) a
// span tree. Span completions log at Info with the span's dotted path,
// wall time, and accumulated attributes; per-iteration convergence
// records log at Debug (enable a Debug-level handler to see residual
// trajectories). relcli exposes it as `-log text|json`.
type SlogRecorder struct {
	log *slog.Logger
}

// NewSlogRecorder wraps a logger. A nil logger uses slog.Default().
func NewSlogRecorder(l *slog.Logger) *SlogRecorder {
	if l == nil {
		l = slog.Default()
	}
	return &SlogRecorder{log: l}
}

// Enabled implements Recorder.
func (r *SlogRecorder) Enabled() bool { return true }

// Span implements Recorder: a root span of a logged solve.
func (r *SlogRecorder) Span(name string, attrs ...Attr) Recorder {
	return newSlogSpan(r.log, "", name, attrs)
}

// End, Iter, IterLabel, and Set outside any span carry no path context
// and are ignored.
func (r *SlogRecorder) End()                           {}
func (r *SlogRecorder) Iter(int, float64)              {}
func (r *SlogRecorder) IterLabel(int, float64, string) {}
func (r *SlogRecorder) Set(...Attr)                    {}

// slogSpan is the per-span recorder. The driving goroutine owns it, so
// the accumulated attrs need no lock.
type slogSpan struct {
	log   *slog.Logger
	path  string
	start time.Time
	attrs []Attr
	iters int
	last  float64
}

func newSlogSpan(log *slog.Logger, parentPath, name string, attrs []Attr) *slogSpan {
	path := name
	if parentPath != "" {
		path = parentPath + "." + name
	}
	return &slogSpan{log: log, path: path, start: time.Now(), attrs: attrs}
}

func (s *slogSpan) Enabled() bool { return true }

func (s *slogSpan) Span(name string, attrs ...Attr) Recorder {
	return newSlogSpan(s.log, s.path, name, attrs)
}

// End emits the span-completion event carrying everything the span
// accumulated.
func (s *slogSpan) End() {
	args := make([]any, 0, 2*len(s.attrs)+8)
	args = append(args, "span", s.path, "wall_ms", float64(time.Since(s.start).Nanoseconds())/1e6)
	if s.iters > 0 {
		args = append(args, "iterations", s.iters, "last_residual", s.last)
	}
	for _, a := range s.attrs {
		args = append(args, a.Key, a.Value())
	}
	s.log.Info("span", args...)
}

func (s *slogSpan) Iter(n int, residual float64) { s.IterLabel(n, residual, "") }

// IterLabel logs one convergence record at Debug — visible only when the
// handler's level admits it, so Info-level serving does not drown in
// residuals — and folds the running count into the span-end event.
func (s *slogSpan) IterLabel(n int, residual float64, label string) {
	s.iters++
	s.last = residual
	if !s.log.Enabled(context.Background(), slog.LevelDebug) {
		return
	}
	args := []any{"span", s.path, "n", n, "residual", residual}
	if label != "" {
		args = append(args, "label", label)
	}
	s.log.Debug("convergence", args...)
}

func (s *slogSpan) Set(attrs ...Attr) { s.attrs = append(s.attrs, attrs...) }
