package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestNopRecorder(t *testing.T) {
	r := Nop()
	if r.Enabled() {
		t.Error("nop recorder reports enabled")
	}
	child := r.Span("x", F("a", 1))
	if child.Enabled() {
		t.Error("nop child reports enabled")
	}
	// All calls must be harmless no-ops.
	child.Iter(1, 0.5)
	child.IterLabel(2, 0.25, "m")
	child.Set(S("k", "v"))
	child.End()
	r.End()
	if Or(nil) != Nop() {
		t.Error("Or(nil) != Nop()")
	}
	tr := NewTrace("t")
	if Or(tr) != Recorder(tr) {
		t.Error("Or(non-nil) must pass through")
	}
}

func TestTraceTreeAndJSON(t *testing.T) {
	tr := NewTrace("solve")
	tr.Set(S("model", "duplex"))
	outer := tr.Span("markov.steadystate", I("states", 3))
	inner := outer.Span("linalg.sor", S("solver", "sor"))
	inner.Iter(1, 0.5)
	inner.Iter(2, 0.25)
	inner.IterLabel(3, 0.125, "dominant")
	inner.Set(F("spectral_radius_est", 0.5))
	inner.End()
	outer.End()
	root := tr.Finish()

	if root.Name != "solve" {
		t.Fatalf("root name %q", root.Name)
	}
	if len(root.Children) != 1 || len(root.Children[0].Children) != 1 {
		t.Fatalf("unexpected tree shape: %+v", root)
	}
	leaf := root.Children[0].Children[0]
	if len(leaf.Iters) != 3 {
		t.Fatalf("iters = %d, want 3", len(leaf.Iters))
	}
	if leaf.Iters[2].Label != "dominant" {
		t.Errorf("iter label = %q", leaf.Iters[2].Label)
	}
	if leaf.WallNS < 0 || root.WallNS <= 0 {
		t.Errorf("wall times not stamped: leaf=%d root=%d", leaf.WallNS, root.WallNS)
	}
	if v, ok := leaf.Attr("spectral_radius_est"); !ok || v.(float64) != 0.5 { //numvet:allow float-eq exact round-trip of a stored constant
		t.Errorf("attr lookup = %v, %v", v, ok)
	}

	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("trace JSON invalid: %v\n%s", err, sb.String())
	}
	for _, want := range []string{`"name": "linalg.sor"`, `"residual": 0.25`, `"solver": "sor"`, `"model": "duplex"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("JSON missing %s:\n%s", want, sb.String())
		}
	}
}

func TestTraceText(t *testing.T) {
	tr := NewTrace("root")
	sp := tr.Span("linalg.power", S("solver", "power"))
	sp.Iter(1, 1e-3)
	sp.Iter(2, 1e-6)
	sp.End()
	var sb strings.Builder
	if err := tr.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "linalg.power") || !strings.Contains(out, "iters=2") {
		t.Errorf("text trace missing content:\n%s", out)
	}
	if !strings.HasPrefix(strings.Split(out, "\n")[1], "  ") {
		t.Errorf("child span not indented:\n%s", out)
	}
}

func TestSummaryPicksDominantSolver(t *testing.T) {
	tr := NewTrace("E3")
	g := tr.Span("markov.steadystate", S("solver", "gth"))
	g.End()
	s := tr.Span("linalg.sor", S("solver", "sor"))
	for i := 1; i <= 5; i++ {
		s.Iter(i, 1.0/float64(i))
	}
	s.End()
	sum := tr.Summary()
	if sum.Solver != "sor" {
		t.Errorf("solver = %q, want sor", sum.Solver)
	}
	if sum.Iterations != 5 {
		t.Errorf("iterations = %d, want 5", sum.Iterations)
	}
	if sum.Spans != 3 {
		t.Errorf("spans = %d, want 3", sum.Spans)
	}
	if sum.WallNS <= 0 {
		t.Errorf("wall = %d", sum.WallNS)
	}
}

func TestCaptureAllocs(t *testing.T) {
	tr := NewTrace("alloc")
	tr.SetCaptureAllocs(true)
	sp := tr.Span("work")
	// Allocate something attributable.
	buf := make([]byte, 1<<20)
	_ = buf[0]
	sp.End()
	root := tr.Finish()
	if len(root.Children) != 1 {
		t.Fatal("missing child span")
	}
	if root.Children[0].AllocBytes == 0 {
		t.Error("alloc capture recorded nothing for a 1MiB allocation")
	}
}

func TestServeDebug(t *testing.T) {
	ds, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + ds.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}
