package obs

import (
	"sync"
	"testing"
)

func TestCorrSourceDeterministic(t *testing.T) {
	a := NewCorrSource(42)
	b := NewCorrSource(42)
	for i := 0; i < 10; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("step %d: same seed diverged: %q vs %q", i, x, y)
		}
		if len(x) != 16 {
			t.Fatalf("step %d: id %q not 16 hex chars", i, x)
		}
		if SanitizeCorr(x) != x {
			t.Fatalf("step %d: minted id %q fails its own sanitizer", i, x)
		}
	}
	if NewCorrSource(1).Next() == NewCorrSource(2).Next() {
		t.Fatal("different seeds produced the same first id")
	}
}

func TestCorrSourceConcurrentUnique(t *testing.T) {
	src := NewCorrSource(7)
	const perG, goroutines = 200, 8
	var (
		mu   sync.Mutex
		seen = make(map[string]bool, perG*goroutines)
		wg   sync.WaitGroup
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]string, 0, perG)
			for i := 0; i < perG; i++ {
				local = append(local, src.Next())
			}
			mu.Lock()
			for _, id := range local {
				if seen[id] {
					mu.Unlock()
					t.Errorf("duplicate correlation id %q", id)
					return
				}
				seen[id] = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
}

func TestSanitizeCorr(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"", ""},
		{"abc123", "abc123"},
		{"A-Z_09", "A-Z_09"},
		{"has space", ""},
		{"semi;colon", ""},
		{"newline\n", ""},
		{"quote\"", ""},
		{"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef", "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"},
		{"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdefX", ""},
	}
	for _, c := range cases {
		if got := SanitizeCorr(c.in); got != c.want {
			t.Errorf("SanitizeCorr(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
