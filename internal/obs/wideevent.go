package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// WideEvent is one request's canonical observability record: a single
// wide JSON line carrying everything worth joining on — correlation ID,
// model identity, solver outcome, admission/breaker verdicts, wall time,
// and status. One line per sampled request; every field flat so the log
// round-trips through jq without schema gymnastics.
type WideEvent struct {
	// Time is the request start time.
	Time time.Time `json:"ts"`
	// Corr is the request's correlation ID (joins logs/traces/jobs).
	Corr string `json:"corr"`
	// Route is the HTTP route ("/solve", "/analyze", "/jobs").
	Route string `json:"route"`
	// Status is the HTTP status code of the response.
	Status int `json:"status"`
	// Code is the typed error code on non-200 responses ("shed",
	// "breaker-open", "bad-spec", ...), empty on success.
	Code string `json:"code,omitempty"`
	// Model is the model name, ModelHash its content hash.
	Model     string `json:"model,omitempty"`
	ModelHash string `json:"model_hash,omitempty"`
	// Solver is the dominant solver of the solve, Outcome the chain
	// outcome ("ok", "degraded", "canceled", ...).
	Solver  string `json:"solver,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	// Degraded marks a bounds-only breaker answer.
	Degraded bool `json:"degraded,omitempty"`
	// Queue is the admission verdict ("ok", "shed", "timeout",
	// "canceled"); Breaker the circuit verdict ("closed", "open",
	// "probe").
	Queue   string `json:"queue,omitempty"`
	Breaker string `json:"breaker,omitempty"`
	// Trace is the TraceStore ID the request's trace landed under, so
	// `corr` and `trace` cross-resolve from a single log line.
	Trace string `json:"trace,omitempty"`
	// WallMS is the request wall time in milliseconds.
	WallMS float64 `json:"wall_ms"`
}

// WideLog writes sampled wide events as JSON lines. Successful requests
// are emitted 1-in-sample; anything interesting — non-2xx status or a
// non-ok solve outcome — is always emitted, so the log stays small under
// healthy load yet complete under failure.
type WideLog struct {
	mu     sync.Mutex
	w      io.Writer
	sample int
	n      uint64 // ok-event counter driving the 1-in-sample gate
}

// NewWideLog builds a log writing to w, keeping 1-in-sample healthy
// events (sample <= 1 keeps all).
func NewWideLog(w io.Writer, sample int) *WideLog {
	if sample < 1 {
		sample = 1
	}
	return &WideLog{w: w, sample: sample}
}

// Log emits ev if it passes sampling, reporting whether a line was
// written. Write errors are swallowed: the wide log is diagnostic and
// must never fail a request.
func (l *WideLog) Log(ev WideEvent) bool {
	if l == nil || l.w == nil {
		return false
	}
	interesting := ev.Status >= 400 || (ev.Outcome != "" && ev.Outcome != "ok")
	l.mu.Lock()
	defer l.mu.Unlock()
	if !interesting {
		l.n++
		if l.sample > 1 && l.n%uint64(l.sample) != 1 {
			return false
		}
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return false
	}
	b = append(b, '\n')
	if _, err := l.w.Write(b); err != nil {
		return false
	}
	return true
}
