// Package obs is the solver-telemetry layer ("relprobe") threaded through
// the analytic pipeline. Every solver entry point accepts a Recorder; the
// default is a no-op whose calls compile to nothing observable, so
// un-instrumented solves pay no cost. When a Trace is attached instead, a
// hierarchical solve renders as a tree of nested spans — one span per
// solver invocation, carrying wall time, typed attributes (state counts,
// uniformization truncation points, BDD node counts, …) and per-iteration
// convergence records (iteration number, residual, optional label).
//
// The package is stdlib-only by design: it sits below every solver package
// and must not create import cycles or external dependencies.
package obs

// attrKind discriminates the value stored in an Attr.
type attrKind uint8

const (
	kindFloat attrKind = iota
	kindInt
	kindString
)

// Attr is one typed key/value annotation on a span.
type Attr struct {
	// Key names the attribute (snake_case by convention).
	Key string

	kind attrKind
	num  float64
	i    int64
	str  string
}

// F returns a float-valued attribute.
func F(key string, v float64) Attr { return Attr{Key: key, kind: kindFloat, num: v} }

// I returns an integer-valued attribute.
func I(key string, v int) Attr { return Attr{Key: key, kind: kindInt, i: int64(v)} }

// I64 returns an integer-valued attribute from an int64.
func I64(key string, v int64) Attr { return Attr{Key: key, kind: kindInt, i: v} }

// S returns a string-valued attribute.
func S(key, v string) Attr { return Attr{Key: key, kind: kindString, str: v} }

// Value returns the attribute's value as an any (float64, int64, or string).
func (a Attr) Value() any {
	switch a.kind {
	case kindInt:
		return a.i
	case kindString:
		return a.str
	default:
		return a.num
	}
}

// Recorder collects solver telemetry. Implementations must tolerate calls
// from the single goroutine driving a solve; Trace additionally locks so
// concurrent experiment sweeps can share one recorder.
//
// The no-op recorder (Nop) is the default everywhere: solver hot paths
// guard per-iteration calls with Enabled(), so a disabled recorder costs
// one interface call per solve, not per iteration.
type Recorder interface {
	// Enabled reports whether events are actually collected. Hot loops
	// should check it once (or per iteration) before calling Iter.
	Enabled() bool
	// Span opens a child span and returns a Recorder scoped to it. End
	// must be called on the returned recorder, not the parent.
	Span(name string, attrs ...Attr) Recorder
	// End closes the span this recorder is scoped to, stamping wall time.
	End()
	// Iter records one iteration of an iterative solve on the current span.
	Iter(n int, residual float64)
	// IterLabel records one iteration with a label (e.g. the submodel that
	// dominated a fixed-point sweep).
	IterLabel(n int, residual float64, label string)
	// Set attaches attributes to the current span.
	Set(attrs ...Attr)
}

// nopRecorder discards everything.
type nopRecorder struct{}

func (nopRecorder) Enabled() bool                  { return false }
func (nopRecorder) Span(string, ...Attr) Recorder  { return nopRecorder{} }
func (nopRecorder) End()                           {}
func (nopRecorder) Iter(int, float64)              {}
func (nopRecorder) IterLabel(int, float64, string) {}
func (nopRecorder) Set(...Attr)                    {}

var nop Recorder = nopRecorder{}

// Nop returns the shared no-op recorder.
func Nop() Recorder { return nop }

// Or normalizes a possibly-nil recorder from an options struct: nil means
// "telemetry disabled" and maps to Nop.
func Or(r Recorder) Recorder {
	if r == nil {
		return nop
	}
	return r
}
