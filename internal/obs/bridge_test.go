package obs

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// driveSolve emulates the attribute vocabulary a traced solve emits:
// a root span, a chain with a failed and a winning attempt, an iterative
// solver span, and a warn-mode rail violation.
func driveSolve(rec Recorder) {
	root := rec.Span("modelio.solve", S("type", "ctmc"), S("model", "m"))
	chain := root.Span("guard.chain", S("chain", "steadystate"), I("steps", 2))
	a1 := chain.Span("attempt:sor", S("method", "sor"), I("try", 1))
	sor := a1.Span("linalg.sor", S("solver", "sor"), I("states", 6))
	sor.Iter(1, 0.5)
	sor.Iter(2, 0.01)
	sor.End()
	a1.Set(S("failure_class", "no-convergence"), S("error", "boom"))
	a1.End()
	a2 := chain.Span("attempt:gth", S("method", "gth"), I("try", 1))
	gth := a2.Span("linalg.gth", S("solver", "gth"))
	gth.End()
	a2.Set(S("failure_class", "none"))
	a2.End()
	chain.Set(I("attempts", 2), S("winner", "gth"))
	chain.End()
	root.Set(S("guard_warning", "mass off by 1e-3"), S("guard_warning_op", "ctmc.steadystate"))
	root.End()
}

// TestMetricsRecorderAggregates checks that the bridge turns the span
// vocabulary into the documented counter/gauge/histogram samples.
func TestMetricsRecorderAggregates(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := NewMetricsRecorder(reg, "farm")
	driveSolve(rec)

	iters := reg.NewCounter("relscope_solver_iterations_total", "Iterations recorded by iterative solvers.", "solver", "model")
	if got := iters.Value("sor", "farm"); got != 2 {
		t.Errorf("sor iterations = %g, want 2", got)
	}
	resid := reg.NewGauge("relscope_solver_last_residual", "Most recent convergence residual per solver.", "solver", "model")
	if got := resid.Value("sor", "farm"); got != 0.01 {
		t.Errorf("last residual = %g, want 0.01", got)
	}
	attempts := reg.NewCounter("relscope_chain_attempts_total", "Fallback-chain attempts by failure class (class \"none\" is success).", "chain", "method", "class", "model")
	if got := attempts.Value("steadystate", "sor", "no-convergence", "farm"); got != 1 {
		t.Errorf("failed attempt count = %g, want 1", got)
	}
	if got := attempts.Value("steadystate", "gth", "none", "farm"); got != 1 {
		t.Errorf("winning attempt count = %g, want 1", got)
	}
	winners := reg.NewCounter("relscope_chain_decided_total", "Fallback chains decided, by winning method (winner \"\" means exhausted).", "chain", "winner", "model")
	if got := winners.Value("steadystate", "gth", "farm"); got != 1 {
		t.Errorf("winner count = %g, want 1", got)
	}
	rails := reg.NewCounter("relscope_rail_warnings_total", "Warn-mode numerical guard-rail violations by check site.", "op", "model")
	if got := rails.Value("ctmc.steadystate", "farm"); got != 1 {
		t.Errorf("rail warning count = %g, want 1", got)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`relscope_solver_wall_seconds_count{solver="sor",model="farm"} 1`,
		`relscope_solver_wall_seconds_count{solver="gth",model="farm"} 1`,
		`relscope_solves_total{model="farm"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Structural spans (modelio.solve, guard.chain, attempts) must not
	// produce wall-time series of their own.
	if strings.Contains(out, `solver="modelio.solve"`) || strings.Contains(out, `solver="guard.chain"`) {
		t.Errorf("structural span leaked into wall histogram:\n%s", out)
	}
}

// TestMetricsRecorderOutcomes covers the guard-outcome paths: interrupt
// attrs and chain exhaustion.
func TestMetricsRecorderOutcomes(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := NewMetricsRecorder(reg, "m")
	sp := rec.Span("linalg.sor", S("solver", "sor"))
	sp.Set(S("outcome", "deadline"), I("iterations", 7))
	sp.End()
	ch := rec.Span("guard.chain", S("chain", "steadystate"))
	ch.Set(S("outcome", "exhausted"))
	ch.End()

	outcomes := reg.NewCounter("relscope_guard_outcomes_total", "Guard outcomes observed on spans: canceled, deadline, panic, exhausted.", "outcome", "model")
	if got := outcomes.Value("deadline", "m"); got != 1 {
		t.Errorf("deadline outcomes = %g, want 1", got)
	}
	if got := outcomes.Value("exhausted", "m"); got != 1 {
		t.Errorf("exhausted outcomes = %g, want 1", got)
	}
	winners := reg.NewCounter("relscope_chain_decided_total", "Fallback chains decided, by winning method (winner \"\" means exhausted).", "chain", "winner", "model")
	if got := winners.Value("steadystate", "", "m"); got != 1 {
		t.Errorf("exhausted chain decided count = %g, want 1", got)
	}
}

// TestMultiFansOut drives a Trace and a MetricsRecorder through one Multi
// and checks both observed the same solve; also checks the collapsing
// constructor behavior.
func TestMultiFansOut(t *testing.T) {
	if got := Multi(); got != Nop() {
		t.Errorf("Multi() = %v, want Nop", got)
	}
	if got := Multi(nil, Nop()); got != Nop() {
		t.Errorf("Multi(nil, Nop) = %v, want Nop", got)
	}
	tr := NewTrace("root")
	if got := Multi(tr, Nop()); got != Recorder(tr) {
		t.Errorf("Multi of one live recorder should return it unchanged")
	}

	reg := metrics.NewRegistry()
	mrec := NewMetricsRecorder(reg, "multi")
	m := Multi(tr, mrec)
	driveSolve(m)

	root := tr.Finish()
	if len(root.Children) == 0 || root.Children[0].Name != "modelio.solve" {
		t.Fatalf("trace missed the solve: %+v", root)
	}
	iters := reg.NewCounter("relscope_solver_iterations_total", "Iterations recorded by iterative solvers.", "solver", "model")
	if got := iters.Value("sor", "multi"); got != 2 {
		t.Errorf("metrics missed iterations through Multi: %g", got)
	}
}

// TestMultiOpenPath checks guard.SpanPather keeps working through Multi,
// so panic recovery still names the active solver.
func TestMultiOpenPath(t *testing.T) {
	tr := NewTrace("root")
	reg := metrics.NewRegistry()
	m := Multi(tr, NewMetricsRecorder(reg, "m"))
	sp := m.Span("inner")
	defer sp.End()
	p, ok := m.(interface{ OpenPath() []string })
	if !ok {
		t.Fatal("Multi recorder does not expose OpenPath")
	}
	path := p.OpenPath()
	if len(path) != 2 || path[0] != "root" || path[1] != "inner" {
		t.Errorf("OpenPath = %v, want [root inner]", path)
	}
}

// TestMetricsRecorderConcurrent drives parallel solves through one bridge
// (the serve scenario) under -race.
func TestMetricsRecorderConcurrent(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := NewMetricsRecorder(reg, "par")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			driveSolve(rec)
		}()
	}
	wg.Wait()
	iters := reg.NewCounter("relscope_solver_iterations_total", "Iterations recorded by iterative solvers.", "solver", "model")
	if got := iters.Value("sor", "par"); got != 16 {
		t.Errorf("iterations = %g, want 16", got)
	}
}
