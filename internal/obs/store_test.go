package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestTraceStoreEvictionOrder(t *testing.T) {
	s := NewTraceStore(3)
	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, s.Put(TraceRecord{Model: fmt.Sprintf("m%d", i), Endpoint: "solve"}))
	}
	if got, want := s.Len(), 3; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if got, want := s.Cap(), 3; got != want {
		t.Fatalf("Cap = %d, want %d", got, want)
	}
	// The two oldest records were evicted, the three newest survive.
	for _, id := range ids[:2] {
		if _, ok := s.Get(id); ok {
			t.Errorf("Get(%s) found an evicted record", id)
		}
	}
	for i, id := range ids[2:] {
		rec, ok := s.Get(id)
		if !ok {
			t.Fatalf("Get(%s) missing", id)
		}
		if want := fmt.Sprintf("m%d", i+2); rec.Model != want {
			t.Errorf("Get(%s).Model = %q, want %q", id, rec.Model, want)
		}
	}
	// List is newest-first.
	list := s.List(TraceFilter{})
	if len(list) != 3 {
		t.Fatalf("List returned %d records, want 3", len(list))
	}
	for i, want := range []string{"m4", "m3", "m2"} {
		if list[i].Model != want {
			t.Errorf("List[%d].Model = %q, want %q", i, list[i].Model, want)
		}
	}
}

func TestTraceStoreIDsAreStable(t *testing.T) {
	s := NewTraceStore(2)
	id1 := s.Put(TraceRecord{Model: "a"})
	id2 := s.Put(TraceRecord{Model: "b"})
	if id1 == id2 {
		t.Fatalf("ids collide: %s", id1)
	}
	rec, ok := s.Get(id2)
	if !ok || rec.Model != "b" || rec.Seq == 0 {
		t.Fatalf("Get(%s) = %+v, %v", id2, rec, ok)
	}
	if rec.Outcome != "ok" {
		t.Errorf("empty outcome not normalized: %q", rec.Outcome)
	}
}

func TestTraceStoreFilter(t *testing.T) {
	s := NewTraceStore(8)
	s.Put(TraceRecord{Model: "m1", Solver: "sor", Outcome: "ok"})
	s.Put(TraceRecord{Model: "m1", Solver: "gth", Outcome: "error"})
	s.Put(TraceRecord{Model: "m2", Solver: "sor", Outcome: "ok"})

	if got := s.List(TraceFilter{Model: "m1"}); len(got) != 2 {
		t.Errorf("filter model=m1: %d records, want 2", len(got))
	}
	if got := s.List(TraceFilter{Solver: "sor"}); len(got) != 2 {
		t.Errorf("filter solver=sor: %d records, want 2", len(got))
	}
	if got := s.List(TraceFilter{Outcome: "error"}); len(got) != 1 || got[0].Model != "m1" {
		t.Errorf("filter outcome=error: %+v", got)
	}
	if got := s.List(TraceFilter{Model: "m1", Solver: "sor", Outcome: "ok"}); len(got) != 1 {
		t.Errorf("conjunctive filter: %d records, want 1", len(got))
	}
	if got := s.List(TraceFilter{Limit: 2}); len(got) != 2 || got[0].Model != "m2" {
		t.Errorf("limit=2: %+v", got)
	}
}

// TestTraceStoreListStripsRoot: the list view is metadata only; span
// trees come back solely through Get.
func TestTraceStoreListStripsRoot(t *testing.T) {
	s := NewTraceStore(2)
	tr := NewTrace("root")
	sub := tr.Span("child")
	sub.Iter(1, 0.5)
	sub.End()
	id := s.Put(RecordFromTrace(tr, "m", "solve"))

	list := s.List(TraceFilter{})
	if len(list) != 1 || list[0].Root != nil {
		t.Fatalf("List leaked the span tree: %+v", list)
	}
	rec, ok := s.Get(id)
	if !ok || rec.Root == nil || len(rec.Root.Children) != 1 {
		t.Fatalf("Get lost the span tree: %+v, %v", rec, ok)
	}
	if rec.Spans != 2 || rec.Iterations != 1 {
		t.Errorf("summary fields: spans=%d iterations=%d, want 2/1", rec.Spans, rec.Iterations)
	}
	if rec.Root.Version != TraceSchemaVersion {
		t.Errorf("root span version = %d, want %d", rec.Root.Version, TraceSchemaVersion)
	}
}

// TestTraceStoreConcurrent hammers Put/Get/List from many goroutines;
// run under -race this is the store's concurrency contract.
func TestTraceStoreConcurrent(t *testing.T) {
	s := NewTraceStore(16)
	const writers, readers, perWriter = 4, 4, 200
	var writeWG, readWG sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				id := s.Put(TraceRecord{Model: fmt.Sprintf("w%d", w), Solver: "sor"})
				s.Get(id)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s.List(TraceFilter{Solver: "sor", Limit: 8})
				s.Len()
			}
		}()
	}
	writeWG.Wait()
	close(done)
	readWG.Wait()

	if got := s.Len(); got != 16 {
		t.Errorf("Len = %d, want the full capacity 16", got)
	}
	list := s.List(TraceFilter{})
	for i := 1; i < len(list); i++ {
		if list[i-1].Seq <= list[i].Seq {
			t.Fatalf("List not newest-first at %d: seq %d then %d", i, list[i-1].Seq, list[i].Seq)
		}
	}
}

// TestTraceStoreEvictionIDsExact pins the ID contract under contention:
// with a tiny store being evicted constantly by racing writers (readers
// racing Get/List against them), every Put still gets a unique ID, the
// issued IDs are exactly t1..tN with none skipped, and what remains
// retained is the contiguous newest window.
func TestTraceStoreEvictionIDsExact(t *testing.T) {
	s := NewTraceStore(8)
	const writers, perWriter, readerIters = 8, 100, 400
	ids := make(chan string, writers*perWriter)

	var readWG sync.WaitGroup
	for r := 0; r < 4; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			// A bounded spin (not until-done) keeps the race-detector run
			// fast while still overlapping the whole eviction churn.
			for n := 0; n < readerIters; n++ {
				// t1 is evicted almost immediately; Get must simply miss,
				// and List must stay internally consistent mid-eviction.
				s.Get("t1")
				for i, rec := range s.List(TraceFilter{}) {
					if i > 0 && rec.ID == "" {
						t.Error("List returned a record with no ID")
						return
					}
				}
			}
		}()
	}

	var writeWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				ids <- s.Put(TraceRecord{Model: fmt.Sprintf("w%d", w)})
			}
		}(w)
	}
	writeWG.Wait()
	close(ids)
	readWG.Wait()

	seen := make(map[string]bool, writers*perWriter)
	for id := range ids {
		if id == "" {
			t.Fatal("Put returned an empty ID with no failpoint armed")
		}
		if seen[id] {
			t.Fatalf("duplicate ID %s issued", id)
		}
		seen[id] = true
	}
	total := writers * perWriter
	for n := 1; n <= total; n++ {
		if !seen[fmt.Sprintf("t%d", n)] {
			t.Fatalf("sequence skipped: t%d never issued", n)
		}
	}

	// The survivors are the contiguous newest window, newest first.
	list := s.List(TraceFilter{})
	if len(list) != 8 {
		t.Fatalf("retained %d records, want the full capacity 8", len(list))
	}
	if list[0].Seq != uint64(total) {
		t.Errorf("newest retained seq %d, want %d", list[0].Seq, total)
	}
	for i := 1; i < len(list); i++ {
		if list[i].Seq != list[i-1].Seq-1 {
			t.Errorf("retained window not contiguous at %d: seq %d then %d", i, list[i-1].Seq, list[i].Seq)
		}
	}
}
