package obs

import (
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// CorrHeader is the HTTP header carrying a request's correlation ID.
// Serve echoes an inbound value (after sanitizing) or mints a fresh one,
// and always sets it on the response so clients can join their request
// to server-side traces, wide events, and logs.
const CorrHeader = "X-Rel-Correlation-Id"

// CorrSource mints correlation IDs from a seeded splitmix64 stream, so a
// fixed seed yields a reproducible ID sequence under test while distinct
// runtime seeds keep concurrent servers from colliding.
type CorrSource struct {
	mu sync.Mutex
	x  uint64
}

// NewCorrSource returns a source seeded with seed.
func NewCorrSource(seed uint64) *CorrSource {
	return &CorrSource{x: seed}
}

// Next returns the next correlation ID: 16 lowercase hex characters.
func (c *CorrSource) Next() string {
	c.mu.Lock()
	c.x += 0x9e3779b97f4a7c15
	z := c.x
	c.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], z)
	return hex.EncodeToString(b[:])
}

// SanitizeCorr validates a client-supplied correlation ID. It returns s
// unchanged when s is 1–64 characters drawn from [A-Za-z0-9_-], and ""
// otherwise — bad inputs are discarded, never escaped, so correlation
// IDs are always safe to embed in logs, JSON, and URLs verbatim.
func SanitizeCorr(s string) string {
	if len(s) == 0 || len(s) > 64 {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
		case c == '_' || c == '-':
		default:
			return ""
		}
	}
	return s
}
