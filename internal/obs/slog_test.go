package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

// TestSlogRecorderInfo checks span-completion events at Info level: one
// line per span with the dotted path, wall time, attributes, and folded
// iteration summary — but no per-iteration spam.
func TestSlogRecorderInfo(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	rec := NewSlogRecorder(logger)

	root := rec.Span("modelio.solve", S("model", "farm"))
	sor := root.Span("linalg.sor", S("solver", "sor"))
	sor.Iter(1, 0.5)
	sor.IterLabel(2, 0.01, "sweep")
	sor.End()
	root.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 span events, got %d:\n%s", len(lines), buf.String())
	}
	var ev struct {
		Msg          string  `json:"msg"`
		Span         string  `json:"span"`
		WallMS       float64 `json:"wall_ms"`
		Iterations   int     `json:"iterations"`
		LastResidual float64 `json:"last_residual"`
		Solver       string  `json:"solver"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Msg != "span" || ev.Span != "modelio.solve.linalg.sor" {
		t.Errorf("inner event = %+v", ev)
	}
	if ev.Iterations != 2 || ev.LastResidual != 0.01 || ev.Solver != "sor" {
		t.Errorf("inner event missing solve facts: %+v", ev)
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Span != "modelio.solve" || ev.WallMS < 0 {
		t.Errorf("root event = %+v", ev)
	}
}

// TestSlogRecorderDebugIterations checks that a Debug-level handler also
// receives one structured convergence event per iteration.
func TestSlogRecorderDebugIterations(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	rec := NewSlogRecorder(logger)
	sp := rec.Span("linalg.sor", S("solver", "sor"))
	sp.Iter(1, 0.5)
	sp.IterLabel(2, 0.25, "node-a")
	sp.End()

	out := buf.String()
	if got := strings.Count(out, "msg=convergence"); got != 2 {
		t.Errorf("want 2 convergence events, got %d:\n%s", got, out)
	}
	if !strings.Contains(out, "label=node-a") {
		t.Errorf("labeled iteration lost its label:\n%s", out)
	}
}

func TestSlogRecorderNilLogger(t *testing.T) {
	rec := NewSlogRecorder(nil)
	if !rec.Enabled() {
		t.Error("slog recorder reports disabled")
	}
	sp := rec.Span("x")
	sp.End() // must not panic with the default logger
}
