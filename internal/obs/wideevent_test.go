package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestWideLogSampling(t *testing.T) {
	var buf bytes.Buffer
	l := NewWideLog(&buf, 10)
	for i := 0; i < 40; i++ {
		l.Log(WideEvent{Status: 200, Outcome: "ok", Corr: "c"})
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 4 {
		t.Fatalf("1-in-10 sampling of 40 ok events wrote %d lines, want 4", lines)
	}
}

func TestWideLogErrorsAlwaysEmitted(t *testing.T) {
	var buf bytes.Buffer
	l := NewWideLog(&buf, 1000)
	for i := 0; i < 5; i++ {
		if !l.Log(WideEvent{Status: 500, Code: "internal"}) {
			t.Fatal("error event was sampled away")
		}
	}
	if !l.Log(WideEvent{Status: 200, Outcome: "degraded"}) {
		t.Fatal("non-ok outcome was sampled away")
	}
	if got := strings.Count(buf.String(), "\n"); got != 6 {
		t.Fatalf("wrote %d lines, want 6", got)
	}
}

func TestWideLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewWideLog(&buf, 1)
	in := WideEvent{
		Time:      time.Unix(1700000000, 0).UTC(),
		Corr:      "deadbeefcafef00d",
		Route:     "/solve",
		Status:    200,
		Model:     "repairfarm",
		ModelHash: "a1b2c3",
		Solver:    "gth",
		Outcome:   "ok",
		Queue:     "ok",
		Breaker:   "closed",
		Trace:     "t7",
		WallMS:    1.25,
	}
	if !l.Log(in) {
		t.Fatal("event not written")
	}
	var out WideEvent
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	if out != in {
		t.Fatalf("round-trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
	// The flat schema jq queries depend on.
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"ts", "corr", "route", "status", "trace", "wall_ms"} {
		if _, ok := m[k]; !ok {
			t.Errorf("wide event missing key %q", k)
		}
	}
}

func TestWideLogNilSafe(t *testing.T) {
	var l *WideLog
	if l.Log(WideEvent{Status: 500}) {
		t.Fatal("nil WideLog claimed to write")
	}
	if NewWideLog(nil, 1).Log(WideEvent{Status: 500}) {
		t.Fatal("nil writer claimed to write")
	}
}
