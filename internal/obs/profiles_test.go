package obs

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestProfileRingHeapAndEviction(t *testing.T) {
	dir := t.TempDir()
	r, err := NewProfileRing(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := r.CaptureHeap(); err != nil {
			t.Fatalf("heap capture %d: %v", i, err)
		}
	}
	got := r.List()
	if len(got) != 3 {
		t.Fatalf("ring holds %d entries, want 3", len(got))
	}
	// Newest first, and the evicted files are gone from disk.
	if got[0].Name != "heap-000005.pprof" {
		t.Fatalf("newest entry = %q, want heap-000005.pprof", got[0].Name)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("%d files on disk, want 3", len(files))
	}
	for _, e := range got {
		fi, err := os.Stat(filepath.Join(dir, e.Name))
		if err != nil {
			t.Fatalf("listed entry missing on disk: %v", err)
		}
		if fi.Size() == 0 || e.Bytes != fi.Size() {
			t.Fatalf("entry %s bytes=%d disk=%d", e.Name, e.Bytes, fi.Size())
		}
	}
}

func TestProfileRingCPUCancel(t *testing.T) {
	r, err := NewProfileRing(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // capture should return promptly instead of waiting 30s
	start := time.Now()
	e, err := r.CaptureCPU(ctx, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("canceled capture took %v", waited)
	}
	if e.Kind != "cpu" || e.End.Before(e.Start) {
		t.Fatalf("bad entry %+v", e)
	}
}

func TestProfileRingOverlapping(t *testing.T) {
	r, err := NewProfileRing(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	e, err := r.CaptureHeap()
	if err != nil {
		t.Fatal(err)
	}
	hits := r.Overlapping(e.Start.Add(-time.Second), e.Start.Add(time.Second))
	if len(hits) != 1 {
		t.Fatalf("window around capture matched %d entries, want 1", len(hits))
	}
	miss := r.Overlapping(e.Start.Add(-time.Hour), e.Start.Add(-time.Minute))
	if len(miss) != 0 {
		t.Fatalf("disjoint window matched %d entries, want 0", len(miss))
	}
}
