package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestDebugServerRoutes boots the debug server on an ephemeral port and
// checks each mounted route answers 200 with the expected content type —
// previously untested plumbing.
func TestDebugServerRoutes(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr == "" || !strings.Contains(srv.Addr, ":") {
		t.Fatalf("bound address %q", srv.Addr)
	}

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s body: %v", path, err)
		}
		return resp, string(body)
	}

	resp, body := get("/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("/debug/pprof/ content type %q", ct)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profile list:\n%.200s", body)
	}

	resp, body = get("/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/vars status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("/debug/vars content type %q", ct)
	}
	for _, name := range []string{"relprobe.traces", "relprobe.spans", "relprobe.iterations"} {
		if !strings.Contains(body, name) {
			t.Errorf("/debug/vars missing %s", name)
		}
	}

	resp, body = get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "relprobe_traces_total") {
		t.Errorf("/metrics missing relprobe counters:\n%.300s", body)
	}

	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	// The listener must actually be released: a second server can bind
	// the same address.
	srv2, err := ServeDebug(srv.Addr)
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	srv2.Close()
}

// TestExpvarMirrorsRegistry asserts the consolidation satellite: the
// expvar relprobe.* values are views of the registry counters, so the
// two surfaces move together.
func TestExpvarMirrorsRegistry(t *testing.T) {
	before := ctrTraces.Value()
	tr := NewTrace("mirror")
	tr.Finish()
	if got := ctrTraces.Value(); got != before+1 {
		t.Fatalf("registry counter did not advance: %g -> %g", before, got)
	}
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"relprobe.traces"`) {
		t.Errorf("expvar page missing mirrored counter:\n%.300s", body)
	}
}
