package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is an opt-in HTTP endpoint serving net/http/pprof profiles
// and the expvar counter page during long solves. It binds its own mux so
// importing this package never touches http.DefaultServeMux.
type DebugServer struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// ServeDebug starts a debug server on addr ("localhost:6060", ":0", …).
// Routes: /debug/pprof/ (index, profile, heap, trace, …) and /debug/vars
// (expvar, including the relprobe.* counters).
func ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// Serve returns ErrServerClosed on Close; nothing to report.
		_ = srv.Serve(ln) //numvet:allow ignored-err shutdown race is benign for a debug endpoint
	}()
	return &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }
