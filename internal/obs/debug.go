package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/metrics"
)

// RegisterDebug mounts the debug routes on mux: /debug/pprof/ (index,
// profile, heap, trace, …), /debug/vars (expvar, including the mirrored
// relprobe.* counters), and /metrics (reg in Prometheus exposition
// format; nil means the default registry). `relcli serve` reuses it so
// the solve service and the standalone debug server expose identical
// surfaces.
func RegisterDebug(mux *http.ServeMux, reg *metrics.Registry) {
	if reg == nil {
		reg = metrics.Default()
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", reg.Handler())
}

// DebugServer is an opt-in HTTP endpoint serving net/http/pprof profiles,
// the expvar counter page, and /metrics during long solves. It binds its
// own mux so importing this package never touches http.DefaultServeMux.
type DebugServer struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// ServeDebug starts a debug server on addr ("localhost:6060", ":0", …)
// with the RegisterDebug routes.
func ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	mux := http.NewServeMux()
	RegisterDebug(mux, nil)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { //numvet:allow goroutine-no-ctx lifecycle is DebugServer.Close, not a context
		// Serve returns ErrServerClosed on Close; nothing to report.
		_ = srv.Serve(ln) //numvet:allow ignored-err shutdown race is benign for a debug endpoint
	}()
	return &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }
