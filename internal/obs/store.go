package obs

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/failpoint"
)

// fpStorePut is the TraceStore ingestion failpoint: an injected error
// drops the record (observability loss must never fail a solve), a panic
// exercises the serve layer's per-request isolation.
const fpStorePut = "obs.store.put"

// TraceRecord is one completed solve (or analyze) request retained by a
// TraceStore. The metadata fields — model, solver, outcome, wall time —
// exist so the dashboard can list and filter traces without walking span
// trees; Root carries the full nested span tree for the detail view and
// is omitted from List results to keep them cheap.
type TraceRecord struct {
	// ID is the store-assigned stable identifier ("t1", "t2", …).
	ID string `json:"id"`
	// Seq is the store-assigned monotone sequence number behind ID.
	Seq uint64 `json:"seq"`
	// Corr is the request's correlation ID, joining this record to its
	// wide-event log line, slog entries, and job records.
	Corr string `json:"corr,omitempty"`
	// Model names the solved model (the spec's name field).
	Model string `json:"model"`
	// Endpoint says which request produced the record ("solve", "analyze").
	Endpoint string `json:"endpoint"`
	// Solver is the dominant solver from the trace summary.
	Solver string `json:"solver,omitempty"`
	// Outcome classifies how the request ended: "ok", "error", "canceled",
	// or "deadline".
	Outcome string `json:"outcome"`
	// Error carries the failure message for non-ok outcomes.
	Error string `json:"error,omitempty"`
	// Start is when the request began.
	Start time.Time `json:"start"`
	// WallMS is the request's wall time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Spans and Iterations summarize the trace (see Summary).
	Spans      int `json:"spans,omitempty"`
	Iterations int `json:"iterations,omitempty"`
	// Root is the full span tree; nil for requests that do not solve
	// (analyze) and stripped from List results.
	Root *Span `json:"trace,omitempty"`
}

// RecordFromTrace condenses a finished Trace into a TraceRecord carrying
// the span tree plus its summary fields. The caller sets Start, Outcome,
// and Error; Put assigns ID and Seq.
func RecordFromTrace(tr *Trace, model, endpoint string) TraceRecord {
	sum := tr.Summary()
	return TraceRecord{
		Model:      model,
		Endpoint:   endpoint,
		Solver:     sum.Solver,
		Spans:      sum.Spans,
		Iterations: sum.Iterations,
		WallMS:     float64(sum.WallNS) / 1e6,
		Root:       tr.Root(),
	}
}

// TraceFilter selects records from a TraceStore. Empty fields match
// everything; Limit bounds the result count (0 means no bound).
type TraceFilter struct {
	Model   string
	Solver  string
	Outcome string
	Corr    string
	Limit   int
}

func (f TraceFilter) matches(rec *TraceRecord) bool {
	if f.Model != "" && rec.Model != f.Model {
		return false
	}
	if f.Corr != "" && rec.Corr != f.Corr {
		return false
	}
	if f.Solver != "" && rec.Solver != f.Solver {
		return false
	}
	if f.Outcome != "" && rec.Outcome != f.Outcome {
		return false
	}
	return true
}

// TraceStore is a bounded ring buffer of completed TraceRecords. When
// full, Put evicts the oldest record; IDs stay stable for a record's
// lifetime, so a dashboard link goes 404 (rather than showing the wrong
// trace) once its record ages out. All methods are safe for concurrent
// use.
type TraceStore struct {
	mu    sync.RWMutex
	buf   []TraceRecord
	first int // index of the oldest record
	n     int
	seq   uint64
}

// NewTraceStore builds a store retaining up to capacity records
// (minimum 1).
func NewTraceStore(capacity int) *TraceStore {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceStore{buf: make([]TraceRecord, capacity)}
}

// Put assigns the record an ID and sequence number, stores it (evicting
// the oldest record when at capacity), and returns the ID. An empty
// Outcome is normalized to "ok". Under an armed obs.store.put failpoint
// the record is dropped and Put returns "" — losing a trace must never
// lose the solve.
func (s *TraceStore) Put(rec TraceRecord) string {
	if err := failpoint.Inject(fpStorePut); err != nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	rec.Seq = s.seq
	rec.ID = "t" + strconv.FormatUint(s.seq, 10)
	if rec.Outcome == "" {
		rec.Outcome = "ok"
	}
	if s.n == len(s.buf) {
		s.buf[s.first] = rec
		s.first = (s.first + 1) % len(s.buf)
	} else {
		s.buf[(s.first+s.n)%len(s.buf)] = rec
		s.n++
	}
	return rec.ID
}

// Get returns the record with the given ID, or false when it was never
// stored or has been evicted.
func (s *TraceStore) Get(id string) (TraceRecord, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := 0; i < s.n; i++ {
		rec := &s.buf[(s.first+i)%len(s.buf)]
		if rec.ID == id {
			return *rec, true
		}
	}
	return TraceRecord{}, false
}

// List returns matching records newest-first with Root stripped (the
// list is metadata; fetch the span tree with Get).
func (s *TraceStore) List(f TraceFilter) []TraceRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]TraceRecord, 0, s.n)
	for i := s.n - 1; i >= 0; i-- {
		rec := &s.buf[(s.first+i)%len(s.buf)]
		if !f.matches(rec) {
			continue
		}
		cp := *rec
		cp.Root = nil
		out = append(out, cp)
		if f.Limit > 0 && len(out) == f.Limit {
			break
		}
	}
	return out
}

// Len reports how many records are currently retained.
func (s *TraceStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// Cap reports the store's fixed capacity.
func (s *TraceStore) Cap() int {
	return len(s.buf)
}
