package relstruct

import "sort"

// condense computes the strongly connected components of the chain graph
// with an iterative Tarjan (the recursive form overflows the goroutine
// stack on deep chains like long birth-death ladders) and returns the
// per-state class index plus the classes ordered deterministically by
// smallest member state index.
func condense(n int, adj [][]int, names []string) ([]int, []Class) {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int
	rawOf := make([]int, n)
	comps := 0
	next := 0

	// frame is one suspended strongconnect activation.
	type frame struct {
		v    int
		edge int
	}
	var frames []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: root})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.edge < len(adj[v]) {
				w := adj[v][f.edge]
				f.edge++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// v is exhausted: close its component if it is a root, then
			// propagate its low-link to the caller.
			if low[v] == index[v] {
				for len(stack) > 0 {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					rawOf[w] = comps
					if w == v {
						break
					}
				}
				comps++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				u := frames[len(frames)-1].v
				if low[v] < low[u] {
					low[u] = low[v]
				}
			}
		}
	}

	// Renumber components by smallest member index so reports are stable
	// regardless of traversal order.
	minMember := make([]int, comps)
	for i := range minMember {
		minMember[i] = n
	}
	for s := n - 1; s >= 0; s-- {
		minMember[rawOf[s]] = s
	}
	order := make([]int, comps)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return minMember[order[a]] < minMember[order[b]] })
	renum := make([]int, comps)
	for newID, raw := range order {
		renum[raw] = newID
	}
	classOf := make([]int, n)
	classes := make([]Class, comps)
	for i := range classes {
		classes[i].Index = i
	}
	for s := 0; s < n; s++ {
		c := renum[rawOf[s]]
		classOf[s] = c
		classes[c].States = append(classes[c].States, names[s])
	}
	return classOf, classes
}

// weakComponents counts weakly connected components (union-find over the
// undirected edge set). Isolated states each form their own component.
func weakComponents(n int, trans []Transition) int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps := n
	for _, t := range trans {
		a, b := find(t.From), find(t.To)
		if a != b {
			parent[a] = b
			comps--
		}
	}
	return comps
}
