// Package relstruct statically analyzes the structure of Markov chain
// generators — the model-level analogue of cmd/numvet's source hygiene
// pass. Without solving anything it computes, in one O(states +
// transitions·log) sweep over the transition graph:
//
//   - the SCC condensation with every communicating class labeled
//     recurrent (closed) or transient, absorbing states called out, and —
//     for discrete chains — the period of each recurrent class;
//   - a stiffness estimate: the rate-ratio spread inside each recurrent
//     class, the quantity that stalls iterative steady-state solvers;
//   - the coarsest ordinarily-lumpable partition, found by signature-based
//     partition refinement from a caller-supplied seed (up/down sets,
//     absorbing targets), which is what makes automatic state-space
//     reduction safe for availability and MTTA measures;
//   - a solver hint distilled from the above: prefer the exact method
//     first when the chain is stiff or periodic, restrict to the single
//     recurrent class when transient states carry no stationary mass, or
//     lump before solving.
//
// The package is deliberately dependency-free (stdlib only): internal/lint,
// internal/markov, and internal/modelio all build on it, so it must sit
// below every solver package in the import graph.
package relstruct

import (
	"errors"
	"fmt"
	"math"
)

// StiffThreshold is the within-class rate-ratio spread beyond which a
// chain counts as stiff: iterative methods (SOR, power iteration) need
// iteration counts on the order of the ratio to propagate probability
// mass between the fast and slow time scales, so exact elimination (GTH)
// or uniformization-first ordering wins.
const StiffThreshold = 1e6

// ExtremeSpanThreshold is the global rate spread beyond which double
// precision itself becomes the limiting factor and rescaling time units
// is advisable regardless of solver.
const ExtremeSpanThreshold = 1e12

// partitionCap bounds the state count up to which the lumping partition
// is spelled out state-by-state in the JSON report; beyond it only the
// block count and ratio are reported, keeping analyze output bounded.
const partitionCap = 256

// Transition is one weighted edge of the chain under analysis: a rate for
// continuous chains, a probability for discrete ones.
type Transition struct {
	From, To int
	Weight   float64
}

// Input describes a chain to Analyze. States are identified by index;
// Names is optional and only affects report readability.
type Input struct {
	// States is the number of states (indices 0..States-1).
	States int
	// Names labels the states; nil synthesizes "s0", "s1", ….
	Names []string
	// Trans lists the transitions. Self-loops are permitted (they matter
	// for discrete-chain periodicity) and multiple entries for one pair
	// accumulate.
	Trans []Transition
	// Discrete marks a DTMC: weights are probabilities and recurrent
	// classes get a periodicity analysis.
	Discrete bool
	// Seed is an optional initial partition for the lumpability
	// refinement: states with different seed labels never share a block.
	// Callers seed with the sets their measures distinguish (up states,
	// absorbing targets) so the coarsest refinement preserves those
	// measures exactly. Nil starts from one all-states block.
	Seed []int
	// Tol is the relative tolerance for comparing aggregated weights
	// during lumpability refinement (0 means 1e-9).
	Tol float64
}

// Class is one communicating class (SCC) of the chain.
type Class struct {
	// Index is the class's position in the report (ordered by smallest
	// member state index).
	Index int `json:"index"`
	// States lists the member state names, sorted by state index.
	States []string `json:"states"`
	// Recurrent marks a closed class (no transitions leave it); open
	// classes are transient.
	Recurrent bool `json:"recurrent"`
	// Absorbing marks a single-state recurrent class.
	Absorbing bool `json:"absorbing,omitempty"`
	// Period is the class period for discrete chains (1 = aperiodic);
	// omitted for continuous chains and classes without internal
	// transitions.
	Period int `json:"period,omitempty"`
	// RateRatio is the max/min spread of transition weights inside a
	// recurrent class (the per-class stiffness estimate); omitted for
	// transient classes and classes without internal transitions.
	RateRatio float64 `json:"rateRatio,omitempty"`
}

// Stiffness summarizes the rate-scale analysis.
type Stiffness struct {
	// RateMin and RateMax bound the positive transition weights of the
	// whole chain.
	RateMin float64 `json:"rateMin,omitempty"`
	RateMax float64 `json:"rateMax,omitempty"`
	// Ratio is the global spread RateMax/RateMin.
	Ratio float64 `json:"ratio,omitempty"`
	// MaxClassRatio is the largest within-recurrent-class spread — the
	// number that actually predicts iterative-solver stalling.
	MaxClassRatio float64 `json:"maxClassRatio,omitempty"`
	// Stiff reports MaxClassRatio ≥ StiffThreshold.
	Stiff bool `json:"stiff"`
}

// Lumping summarizes the coarsest ordinarily-lumpable partition that
// also preserves every state's total exit rate (so the aggregated chain
// keeps the original sojourn structure and markov.Lump accepts it).
type Lumping struct {
	// Blocks is the number of blocks of the coarsest partition.
	Blocks int `json:"blocks"`
	// Ratio is States/Blocks — the state-space reduction factor an exact
	// lumping pre-pass achieves.
	Ratio float64 `json:"ratio"`
	// Lumpable reports Blocks < States.
	Lumpable bool `json:"lumpable"`
	// Partition spells out the blocks (members sorted by state index,
	// blocks ordered by smallest member) when the chain is lumpable and
	// small enough to print (see partitionCap). The first member of each
	// block is its canonical representative.
	Partition [][]string `json:"partition,omitempty"`

	// blockOf maps state index -> block id; kept out of the JSON (the
	// Partition field is the readable form) but always populated so
	// programmatic callers can lump without re-deriving it.
	blockOf []int
}

// BlockOf returns the block id (0-based, ordered by smallest member
// state index) of each state, regardless of partitionCap.
func (l *Lumping) BlockOf() []int {
	out := make([]int, len(l.blockOf))
	copy(out, l.blockOf)
	return out
}

// Hint is the solver advice distilled from the structure.
type Hint struct {
	// Method names the chain-solver step to try first ("gth" when the
	// chain is stiff or periodic); "" keeps the default order.
	Method string `json:"method,omitempty"`
	// Reduce names the applicable state-space reduction:
	// "restrict-recurrent" (solve only the single recurrent class) or
	// "lump" (aggregate symmetric states first).
	Reduce string `json:"reduce,omitempty"`
	// Reason explains the advice for traces and reports.
	Reason string `json:"reason,omitempty"`
}

// StructReport is the full static analysis of one chain.
type StructReport struct {
	States      int  `json:"states"`
	Transitions int  `json:"transitions"`
	Discrete    bool `json:"discrete,omitempty"`
	// Irreducible reports a single communicating class.
	Irreducible bool `json:"irreducible"`
	// RecurrentClasses counts the closed classes; TransientStates counts
	// states outside every closed class.
	RecurrentClasses int `json:"recurrentClasses"`
	TransientStates  int `json:"transientStates"`
	// Components counts weakly connected components; >1 means the chain
	// splits into independent sub-chains.
	Components int     `json:"components"`
	Classes    []Class `json:"classes"`
	// AbsorbingStates lists the states forming single-state recurrent
	// classes, sorted by state index.
	AbsorbingStates []string  `json:"absorbingStates,omitempty"`
	Stiffness       Stiffness `json:"stiffness"`
	Lumping         Lumping   `json:"lumping"`
	Hint            Hint      `json:"hint"`

	names   []string
	classOf []int
}

// StateNames returns the (possibly synthesized) state names in index order.
func (r *StructReport) StateNames() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// ClassOf returns each state's class index into Classes.
func (r *StructReport) ClassOf() []int {
	out := make([]int, len(r.classOf))
	copy(out, r.classOf)
	return out
}

// RecurrentMembers returns the state indices of the i-th recurrent class
// (in report order), sorted ascending.
func (r *StructReport) RecurrentMembers(i int) []int {
	seen := 0
	for ci, cl := range r.Classes {
		if !cl.Recurrent {
			continue
		}
		if seen == i {
			var out []int
			for s, c := range r.classOf {
				if c == ci {
					out = append(out, s)
				}
			}
			return out
		}
		seen++
	}
	return nil
}

// Errors returned by Analyze.
var (
	ErrEmpty    = errors.New("relstruct: chain has no states")
	ErrBadInput = errors.New("relstruct: invalid input")
)

// Analyze computes the full structural report.
func Analyze(in Input) (*StructReport, error) {
	n := in.States
	if n <= 0 {
		return nil, ErrEmpty
	}
	names := in.Names
	if names == nil {
		names = make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("s%d", i)
		}
	}
	if len(names) != n {
		return nil, fmt.Errorf("%w: %d names for %d states", ErrBadInput, len(names), n)
	}
	if in.Seed != nil && len(in.Seed) != n {
		return nil, fmt.Errorf("%w: seed len %d for %d states", ErrBadInput, len(in.Seed), n)
	}
	adj := make([][]int, n)
	for _, t := range in.Trans {
		if t.From < 0 || t.From >= n || t.To < 0 || t.To >= n {
			return nil, fmt.Errorf("%w: transition %d -> %d outside 0..%d", ErrBadInput, t.From, t.To, n-1)
		}
		adj[t.From] = append(adj[t.From], t.To)
	}

	rep := &StructReport{
		States:      n,
		Transitions: len(in.Trans),
		Discrete:    in.Discrete,
		names:       names,
	}

	rep.classOf, rep.Classes = condense(n, adj, names)
	markClosedClasses(rep, in.Trans)
	rep.Components = weakComponents(n, in.Trans)
	if in.Discrete {
		periods(rep, adj)
	}
	stiffness(rep, in.Trans)
	lumpability(rep, in, names)
	rep.Hint = hint(rep)
	return rep, nil
}

// markClosedClasses flags recurrent/absorbing classes and fills the
// summary counters.
func markClosedClasses(rep *StructReport, trans []Transition) {
	closed := make([]bool, len(rep.Classes))
	size := make([]int, len(rep.Classes))
	for i := range closed {
		closed[i] = true
	}
	for _, c := range rep.classOf {
		size[c]++
	}
	for _, t := range trans {
		if cf := rep.classOf[t.From]; cf != rep.classOf[t.To] {
			closed[cf] = false
		}
	}
	for i := range rep.Classes {
		cl := &rep.Classes[i]
		cl.Recurrent = closed[i]
		if closed[i] {
			rep.RecurrentClasses++
			if size[i] == 1 {
				cl.Absorbing = true
				rep.AbsorbingStates = append(rep.AbsorbingStates, cl.States[0])
			}
		} else {
			rep.TransientStates += size[i]
		}
	}
	rep.Irreducible = len(rep.Classes) == 1
}

// periods computes the period of every recurrent class of a discrete
// chain: the gcd of (level[u]+1-level[v]) over the class's internal edges,
// with BFS levels from the class's smallest member.
func periods(rep *StructReport, adj [][]int) {
	n := len(rep.classOf)
	level := make([]int, n)
	for ci := range rep.Classes {
		cl := &rep.Classes[ci]
		if !cl.Recurrent {
			continue
		}
		// Find the smallest member index.
		root := -1
		for s := 0; s < n && root < 0; s++ {
			if rep.classOf[s] == ci {
				root = s
			}
		}
		for s := 0; s < n; s++ {
			level[s] = -1
		}
		level[root] = 0
		queue := []int{root}
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, w := range adj[u] {
				if rep.classOf[w] != ci {
					continue
				}
				if level[w] < 0 {
					level[w] = level[u] + 1
					queue = append(queue, w)
				}
			}
		}
		g := 0
		for _, u := range queue {
			for _, w := range adj[u] {
				if rep.classOf[w] != ci {
					continue
				}
				g = gcd(g, abs(level[u]+1-level[w]))
			}
		}
		cl.Period = g
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// stiffness fills the global and per-recurrent-class rate-ratio spreads.
func stiffness(rep *StructReport, trans []Transition) {
	gMin, gMax := math.Inf(1), 0.0
	cMin := make([]float64, len(rep.Classes))
	cMax := make([]float64, len(rep.Classes))
	for i := range cMin {
		cMin[i] = math.Inf(1)
	}
	for _, t := range trans {
		w := t.Weight
		if !(w > 0) || math.IsInf(w, 0) {
			continue
		}
		gMin = math.Min(gMin, w)
		gMax = math.Max(gMax, w)
		cf := rep.classOf[t.From]
		if rep.classOf[t.To] == cf && rep.Classes[cf].Recurrent {
			cMin[cf] = math.Min(cMin[cf], w)
			cMax[cf] = math.Max(cMax[cf], w)
		}
	}
	if gMax > 0 && !math.IsInf(gMin, 1) {
		rep.Stiffness.RateMin = gMin
		rep.Stiffness.RateMax = gMax
		rep.Stiffness.Ratio = gMax / gMin
	}
	for i := range rep.Classes {
		if cMax[i] > 0 && !math.IsInf(cMin[i], 1) {
			ratio := cMax[i] / cMin[i]
			rep.Classes[i].RateRatio = ratio
			rep.Stiffness.MaxClassRatio = math.Max(rep.Stiffness.MaxClassRatio, ratio)
		}
	}
	rep.Stiffness.Stiff = rep.Stiffness.MaxClassRatio >= StiffThreshold
}

// lumpability runs the partition refinement and fills the Lumping section.
func lumpability(rep *StructReport, in Input, names []string) {
	blockOf, blocks := coarsestPartition(in)
	rep.Lumping.blockOf = blockOf
	rep.Lumping.Blocks = blocks
	rep.Lumping.Ratio = float64(rep.States) / float64(blocks)
	rep.Lumping.Lumpable = blocks < rep.States
	if rep.Lumping.Lumpable && rep.States <= partitionCap {
		members := make([][]string, blocks)
		for s, b := range blockOf {
			members[b] = append(members[b], names[s])
		}
		rep.Lumping.Partition = members
	}
}

// hint distills the solver advice.
func hint(rep *StructReport) Hint {
	var h Hint
	switch {
	case rep.Stiffness.Stiff:
		h.Method = "gth"
		h.Reason = fmt.Sprintf("stiff: within-class rate ratio %.3g exceeds %.0e", rep.Stiffness.MaxClassRatio, float64(StiffThreshold))
	case rep.Discrete && maxPeriod(rep) > 1:
		h.Method = "gth"
		h.Reason = fmt.Sprintf("periodic: recurrent class with period %d defeats power iteration", maxPeriod(rep))
	}
	switch {
	case rep.RecurrentClasses == 1 && rep.TransientStates > 0:
		h.Reduce = "restrict-recurrent"
		if h.Reason == "" {
			h.Reason = fmt.Sprintf("%d transient state(s) carry no stationary mass; solve the single recurrent class", rep.TransientStates)
		}
	case rep.Lumping.Lumpable:
		h.Reduce = "lump"
		if h.Reason == "" {
			h.Reason = fmt.Sprintf("exactly lumpable: %d states aggregate to %d blocks", rep.States, rep.Lumping.Blocks)
		}
	}
	return h
}

func maxPeriod(rep *StructReport) int {
	p := 0
	for _, cl := range rep.Classes {
		if cl.Recurrent && cl.Period > p {
			p = cl.Period
		}
	}
	return p
}

// NamedTransition is one named-state edge for FromNamed.
type NamedTransition struct {
	From, To string
	Weight   float64
}

// FromNamed builds an Input by interning state names in order of first
// appearance, matching how markov.CTMC numbers its states.
func FromNamed(trans []NamedTransition, discrete bool) Input {
	index := make(map[string]int, len(trans)/2+1)
	names := make([]string, 0, len(trans)/2+1)
	intern := func(name string) int {
		if i, ok := index[name]; ok {
			return i
		}
		i := len(names)
		index[name] = i
		names = append(names, name)
		return i
	}
	ts := make([]Transition, 0, len(trans))
	for _, t := range trans {
		ts = append(ts, Transition{From: intern(t.From), To: intern(t.To), Weight: t.Weight})
	}
	return Input{States: len(names), Names: names, Trans: ts, Discrete: discrete}
}

// SeedSets builds a seed partition from membership sets: two states share
// a seed label iff they belong to exactly the same subset of the given
// sets. Measures that only distinguish those sets (availability over up
// states, MTTA into absorbing targets) are then preserved exactly by any
// refinement of the seed.
func SeedSets(names []string, sets ...[]string) []int {
	member := make([]map[string]bool, len(sets))
	for i, set := range sets {
		member[i] = make(map[string]bool, len(set))
		for _, s := range set {
			member[i][s] = true
		}
	}
	seed := make([]int, len(names))
	for i, name := range names {
		mask := 0
		for j := range sets {
			if member[j][name] {
				mask |= 1 << j
			}
		}
		seed[i] = mask
	}
	return seed
}
