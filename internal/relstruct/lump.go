package relstruct

import (
	"encoding/binary"
	"math"
	"sort"
)

// coarsestPartition computes the coarsest ordinarily-lumpable partition
// refining the seed: states sharing a block must have identical aggregate
// outflow into every other block (the ordinary-lumpability condition) and
// identical total exit weight — without the exit-weight constraint the
// one-block partition is vacuously lumpable and the refinement would
// report every chain as collapsible to a point; with it the aggregated
// chain also keeps the original sojourn structure.
//
// The refinement is worklist-driven: when a block splits, only the blocks
// holding predecessors of its states (whose signatures referenced it) and
// the new sub-blocks themselves are re-examined, so long propagation
// chains (ladders) cost O(states + transitions) per split instead of a
// full O(states·transitions) synchronous sweep. Refinement is confluent,
// so the processing order does not change the fixed point. Returns the
// per-state block id (blocks numbered by smallest member state index)
// and the block count.
//
// Signatures are computed into stamped scratch arrays and grouped by a
// compact byte key — no per-state maps — so a refinement pass over a
// block costs O(members + their out-edges) with a handful of
// allocations, keeping the pre-pass cheap even on 10^4-state chains.
func coarsestPartition(in Input) ([]int, int) {
	n := in.States
	tol := in.Tol
	if tol <= 0 {
		tol = 1e-9
	}
	blockOf := make([]int, n)
	nblocks := 1
	if in.Seed != nil {
		seen := map[int]int{}
		next := 0
		for i, lab := range in.Seed {
			id, ok := seen[lab]
			if !ok {
				id = next
				seen[lab] = id
				next++
			}
			blockOf[i] = id
		}
		nblocks = next
	}

	adj, totalOut := aggregateEdges(n, in.Trans)
	pred := reverseAdjacency(n, adj)

	members := make([][]int, nblocks, n)
	for s := 0; s < n; s++ {
		members[blockOf[s]] = append(members[blockOf[s]], s)
	}

	queue := make([]int, 0, nblocks)
	queued := make([]bool, nblocks, n)
	enqueue := func(b int) {
		if !queued[b] {
			queued[b] = true
			queue = append(queue, b)
		}
	}
	for b := 0; b < nblocks; b++ {
		enqueue(b)
	}

	sc := newSigScratch(n)
	// budget bounds the total signature work. Symmetric models converge
	// in a handful of splits; adversarial shapes (long ladders of
	// all-distinct states) would otherwise peel one state per split for
	// O(states²) work. When the budget runs out the remaining multi-state
	// blocks explode to singletons — a finer-than-coarsest answer that is
	// still trivially lumpable, so the result errs toward "no reduction",
	// never toward a wrong one.
	budget := 64*n + 1024
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false
		ms := members[b]
		if len(ms) <= 1 {
			continue
		}
		budget -= len(ms)
		if budget < 0 {
			for _, s := range ms[1:] {
				blockOf[s] = nblocks
				members = append(members, []int{s})
				queued = append(queued, false)
				nblocks++
			}
			members[b] = ms[:1]
			continue
		}
		sc.reset()
		sigs := make([]sig, len(ms))
		for i, s := range ms {
			sigs[i] = sc.sigOf(s, blockOf, adj, totalOut)
		}
		groups := splitBlock(ms, sigs, tol)
		if len(groups) == 1 {
			continue
		}
		// The first group keeps id b; the rest get fresh ids. Everything
		// that could see the split — the sub-blocks (intra flows became
		// inter) and every block holding a predecessor of the old block's
		// states — goes back on the worklist.
		members[b] = groups[0]
		enqueue(b)
		for _, g := range groups[1:] {
			id := nblocks
			nblocks++
			members = append(members, g)
			queued = append(queued, false)
			for _, s := range g {
				blockOf[s] = id
			}
			enqueue(id)
		}
		for _, s := range ms {
			for _, p := range pred.neighbors(s) {
				enqueue(blockOf[p])
			}
		}
	}
	return renumberBySmallestMember(blockOf, nblocks), nblocks
}

// csr is a compact adjacency: neighbors(i) slices the shared backing
// arrays, so building and walking it allocates O(1) beyond the arrays.
type csr struct {
	off []int32
	to  []int32
	w   []float64
}

func (c csr) neighborsW(i int) ([]int32, []float64) {
	return c.to[c.off[i]:c.off[i+1]], c.w[c.off[i]:c.off[i+1]]
}

func (c csr) neighbors(i int) []int32 {
	return c.to[c.off[i]:c.off[i+1]]
}

// aggregateEdges sums parallel edges and drops self-loops (a self-loop
// never crosses a block border so it cannot influence any per-block
// signature entry; it still counts toward the total exit weight),
// returning the forward adjacency and per-state total exit weights.
func aggregateEdges(n int, trans []Transition) (csr, []float64) {
	totalOut := make([]float64, n)
	counts := make([]int32, n+1)
	for _, t := range trans {
		totalOut[t.From] += t.Weight
		if t.From != t.To {
			counts[t.From+1]++
		}
	}
	off := make([]int32, n+1)
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + counts[i+1]
	}
	to := make([]int32, off[n])
	w := make([]float64, off[n])
	fill := make([]int32, n)
	for _, t := range trans {
		if t.From == t.To {
			continue
		}
		p := off[t.From] + fill[t.From]
		to[p] = int32(t.To)
		w[p] = t.Weight
		fill[t.From]++
	}
	// Aggregate duplicates per row: sort each row segment by target in
	// place, then compact (rows are short; the total work is O(E log deg)).
	// With sorted rows the compaction reads left to right, so the write
	// cursor never overtakes an unread entry even though it shares the
	// backing arrays.
	out := csr{off: make([]int32, n+1), to: to[:0], w: w[:0]}
	for i := 0; i < n; i++ {
		lo, hi := off[i], off[i+1]
		sort.Sort(rowSorter{to: to[lo:hi], w: w[lo:hi]})
		for p := lo; p < hi; p++ {
			if p > lo && to[p] == out.to[len(out.to)-1] {
				out.w[len(out.w)-1] += w[p]
				continue
			}
			t, wt := to[p], w[p]
			out.to = append(out.to, t)
			out.w = append(out.w, wt)
		}
		out.off[i+1] = int32(len(out.to))
	}
	return out, totalOut
}

// rowSorter orders one adjacency-row segment by target state.
type rowSorter struct {
	to []int32
	w  []float64
}

func (r rowSorter) Len() int           { return len(r.to) }
func (r rowSorter) Less(i, j int) bool { return r.to[i] < r.to[j] }
func (r rowSorter) Swap(i, j int) {
	r.to[i], r.to[j] = r.to[j], r.to[i]
	r.w[i], r.w[j] = r.w[j], r.w[i]
}

// reverseAdjacency builds the predecessor lists of an aggregated
// adjacency (weights are irrelevant for invalidation, so only targets
// are kept).
func reverseAdjacency(n int, adj csr) csr {
	counts := make([]int32, n+1)
	for _, t := range adj.to {
		counts[t+1]++
	}
	off := make([]int32, n+1)
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + counts[i+1]
	}
	to := make([]int32, off[n])
	fill := make([]int32, n)
	for from := 0; from < n; from++ {
		for _, t := range adj.neighbors(from) {
			to[off[t]+fill[t]] = int32(from)
			fill[t]++
		}
	}
	return csr{off: off, to: to}
}

// sig is one state's block-outflow signature: the total exit weight plus
// the aggregate outflow into each foreign block, sorted by block id.
// entries aliases the owning sigScratch's arena and is only valid until
// the next block is processed.
type sig struct {
	exit    float64
	blocks  []int32
	weights []float64
}

// sigScratch holds the stamped accumulation arrays reused across every
// signature computation: acc[b] is the running outflow into block b,
// valid only when mark[b] equals the current stamp.
type sigScratch struct {
	acc     []float64
	mark    []int64
	stamp   int64
	touched []int32
	// arenas back the per-block sig slices; reset per processed block.
	blocksArena  []int32
	weightsArena []float64
}

func newSigScratch(n int) *sigScratch {
	// Block ids never exceed the state count (blocks partition states).
	return &sigScratch{acc: make([]float64, n+1), mark: make([]int64, n+1)}
}

// reset recycles the arenas once the previous block's signatures are no
// longer referenced.
func (sc *sigScratch) reset() {
	sc.blocksArena = sc.blocksArena[:0]
	sc.weightsArena = sc.weightsArena[:0]
}

// sigOf computes one state's current signature against the running
// partition. The returned slices alias the scratch arenas.
func (sc *sigScratch) sigOf(s int, blockOf []int, adj csr, totalOut []float64) sig {
	sc.stamp++
	sc.touched = sc.touched[:0]
	own := blockOf[s]
	tos, ws := adj.neighborsW(s)
	for k, to := range tos {
		tb := int32(blockOf[to])
		if int(tb) == own {
			continue
		}
		if sc.mark[tb] != sc.stamp {
			sc.mark[tb] = sc.stamp
			sc.acc[tb] = 0
			sc.touched = append(sc.touched, tb)
		}
		sc.acc[tb] += ws[k]
	}
	sort.Slice(sc.touched, func(a, b int) bool { return sc.touched[a] < sc.touched[b] })
	start := len(sc.blocksArena)
	for _, tb := range sc.touched {
		sc.blocksArena = append(sc.blocksArena, tb)
		sc.weightsArena = append(sc.weightsArena, sc.acc[tb])
	}
	return sig{
		exit:    totalOut[s],
		blocks:  sc.blocksArena[start:],
		weights: sc.weightsArena[start:],
	}
}

// splitBlock partitions one block's members (in state-index order) into
// groups with matching signatures. Exact-bit grouping handles the common
// symmetric-model case in O(members); the few surviving group
// representatives are then pairwise-merged under the relative tolerance.
func splitBlock(members []int, sigs []sig, tol float64) [][]int {
	if len(members) <= 1 {
		return [][]int{members}
	}
	byKey := map[string]int{}
	var groups [][]int
	var groupSig []sig
	var keyBuf []byte
	for i, s := range members {
		keyBuf = sigs[i].appendKey(keyBuf[:0])
		gi, ok := byKey[string(keyBuf)]
		if !ok {
			gi = len(groups)
			byKey[string(keyBuf)] = gi
			groups = append(groups, nil)
			groupSig = append(groupSig, sigs[i])
		}
		groups[gi] = append(groups[gi], s)
	}
	if len(groups) == 1 {
		return groups
	}
	// Merge exact groups whose representatives agree within tolerance
	// (rounding at the bit level can split values that are numerically
	// the same aggregate rate).
	var merged [][]int
	var reps []sig
	for gi, g := range groups {
		placed := false
		for mi := range merged {
			if sameSig(reps[mi], groupSig[gi], tol) {
				merged[mi] = append(merged[mi], g...)
				placed = true
				break
			}
		}
		if !placed {
			merged = append(merged, g)
			reps = append(reps, groupSig[gi])
		}
	}
	for _, g := range merged {
		sort.Ints(g)
	}
	return merged
}

// appendKey renders the signature as an exact, order-independent byte
// key (entries are already sorted by block id).
func (s sig) appendKey(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.exit))
	for i, b := range s.blocks {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(b))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.weights[i]))
	}
	return buf
}

// sameSig compares two block-outflow signatures within a relative
// tolerance (mirroring markov's lumpability check, so the refinement here
// and the verification in markov.Lump agree on what counts as uniform).
// Entries are sorted by block id, so the comparison is a merge walk; a
// block absent from one side matches an exact zero on the other.
func sameSig(a, b sig, tol float64) bool {
	if !closeEnough(a.exit, b.exit, tol) {
		return false
	}
	i, j := 0, 0
	for i < len(a.blocks) || j < len(b.blocks) {
		switch {
		case j >= len(b.blocks) || (i < len(a.blocks) && a.blocks[i] < b.blocks[j]):
			if a.weights[i] != 0 { //numvet:allow float-eq an absent key only matches an exact zero
				return false
			}
			i++
		case i >= len(a.blocks) || b.blocks[j] < a.blocks[i]:
			if b.weights[j] != 0 { //numvet:allow float-eq an absent key only matches an exact zero
				return false
			}
			j++
		default:
			if !closeEnough(a.weights[i], b.weights[j], tol) {
				return false
			}
			i++
			j++
		}
	}
	return true
}

func closeEnough(ra, rb, tol float64) bool {
	scale := math.Max(math.Abs(ra), math.Abs(rb))
	if scale == 0 { //numvet:allow float-eq both rates exactly zero compare equal; guards the division below
		return true
	}
	return math.Abs(ra-rb)/scale <= tol
}

// renumberBySmallestMember relabels blocks so ids ascend with each
// block's smallest state index, making reports independent of refinement
// order.
func renumberBySmallestMember(blockOf []int, nblocks int) []int {
	first := make([]int, nblocks)
	for i := range first {
		first[i] = len(blockOf)
	}
	for s := len(blockOf) - 1; s >= 0; s-- {
		first[blockOf[s]] = s
	}
	order := make([]int, nblocks)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return first[order[a]] < first[order[b]] })
	renum := make([]int, nblocks)
	for newID, old := range order {
		renum[old] = newID
	}
	out := make([]int, len(blockOf))
	for s, b := range blockOf {
		out[s] = renum[b]
	}
	return out
}
