package relstruct

import (
	"math"
	"reflect"
	"testing"
)

// chain builds an Input from named transitions.
func chain(discrete bool, trans ...NamedTransition) Input {
	return FromNamed(trans, discrete)
}

func TestIrreducibleBirthDeath(t *testing.T) {
	rep, err := Analyze(chain(false,
		NamedTransition{"up", "deg", 0.5},
		NamedTransition{"deg", "down", 0.4},
		NamedTransition{"down", "deg", 1.2},
		NamedTransition{"deg", "up", 2.0},
	))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Irreducible || rep.RecurrentClasses != 1 || rep.TransientStates != 0 {
		t.Fatalf("want irreducible single recurrent class, got %+v", rep)
	}
	if rep.Components != 1 {
		t.Fatalf("components = %d, want 1", rep.Components)
	}
	if len(rep.Classes) != 1 || !rep.Classes[0].Recurrent || rep.Classes[0].Absorbing {
		t.Fatalf("classes = %+v", rep.Classes)
	}
	if got := rep.Classes[0].RateRatio; math.Abs(got-5.0) > 1e-12 {
		t.Fatalf("rate ratio = %g, want 5", got)
	}
	if rep.Stiffness.Stiff {
		t.Fatalf("chain misreported stiff: %+v", rep.Stiffness)
	}
	// Distinct rates: every state is its own block.
	if rep.Lumping.Blocks != 3 || rep.Lumping.Lumpable {
		t.Fatalf("lumping = %+v", rep.Lumping)
	}
	if rep.Hint.Method != "" || rep.Hint.Reduce != "" {
		t.Fatalf("unexpected hint %+v", rep.Hint)
	}
}

func TestAbsorbingClassification(t *testing.T) {
	rep, err := Analyze(chain(false,
		NamedTransition{"ok", "deg", 0.2},
		NamedTransition{"deg", "ok", 1.0},
		NamedTransition{"deg", "failed", 0.1},
	))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Irreducible {
		t.Fatal("chain with absorbing state reported irreducible")
	}
	if rep.RecurrentClasses != 1 || rep.TransientStates != 2 {
		t.Fatalf("recurrent=%d transient=%d, want 1/2", rep.RecurrentClasses, rep.TransientStates)
	}
	if !reflect.DeepEqual(rep.AbsorbingStates, []string{"failed"}) {
		t.Fatalf("absorbing = %v", rep.AbsorbingStates)
	}
	// {ok,deg} communicate and come first (smallest member order).
	if !reflect.DeepEqual(rep.Classes[0].States, []string{"ok", "deg"}) || rep.Classes[0].Recurrent {
		t.Fatalf("class 0 = %+v", rep.Classes[0])
	}
	if !rep.Classes[1].Absorbing {
		t.Fatalf("class 1 = %+v", rep.Classes[1])
	}
	if rep.Hint.Reduce != "restrict-recurrent" {
		t.Fatalf("hint = %+v", rep.Hint)
	}
	if got := rep.RecurrentMembers(0); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("recurrent members = %v", got)
	}
}

func TestMultipleRecurrentClasses(t *testing.T) {
	rep, err := Analyze(chain(false,
		NamedTransition{"start", "a", 1},
		NamedTransition{"start", "b", 1},
		NamedTransition{"a", "a2", 1},
		NamedTransition{"a2", "a", 1},
		NamedTransition{"b", "b2", 1},
		NamedTransition{"b2", "b", 1},
	))
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecurrentClasses != 2 || rep.TransientStates != 1 {
		t.Fatalf("recurrent=%d transient=%d, want 2/1", rep.RecurrentClasses, rep.TransientStates)
	}
	if rep.Hint.Reduce == "restrict-recurrent" {
		t.Fatalf("restrict hint with two recurrent classes: %+v", rep.Hint)
	}
}

func TestStiffnessHint(t *testing.T) {
	rep, err := Analyze(chain(false,
		NamedTransition{"up", "down", 1e-9},
		NamedTransition{"down", "up", 5e6},
	))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stiffness.Stiff {
		t.Fatalf("stiffness = %+v", rep.Stiffness)
	}
	if rep.Stiffness.MaxClassRatio < 1e15 {
		t.Fatalf("class ratio = %g", rep.Stiffness.MaxClassRatio)
	}
	if rep.Hint.Method != "gth" {
		t.Fatalf("hint = %+v", rep.Hint)
	}
}

func TestDTMCPeriodicity(t *testing.T) {
	rep, err := Analyze(chain(true,
		NamedTransition{"a", "b", 1},
		NamedTransition{"b", "a", 1},
	))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Classes[0].Period != 2 {
		t.Fatalf("period = %d, want 2", rep.Classes[0].Period)
	}
	if rep.Hint.Method != "gth" {
		t.Fatalf("hint = %+v", rep.Hint)
	}

	// A self-loop makes the class aperiodic.
	rep, err = Analyze(chain(true,
		NamedTransition{"a", "b", 0.5},
		NamedTransition{"b", "a", 1},
		NamedTransition{"a", "a", 0.5},
	))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Classes[0].Period != 1 {
		t.Fatalf("period = %d, want 1", rep.Classes[0].Period)
	}
	if rep.Hint.Method != "" {
		t.Fatalf("hint = %+v", rep.Hint)
	}
}

// TestLumpableSymmetricPair checks the coarsest partition of two
// identical independent components: the detailed 4-state chain lumps to
// the 3-state failure-count chain once up/down states are seeded apart.
func TestLumpableSymmetricPair(t *testing.T) {
	lam, mu := 0.01, 1.0
	in := chain(false,
		NamedTransition{"00", "01", lam},
		NamedTransition{"00", "10", lam},
		NamedTransition{"01", "11", lam},
		NamedTransition{"10", "11", lam},
		NamedTransition{"01", "00", mu},
		NamedTransition{"10", "00", mu},
		NamedTransition{"11", "01", mu},
		NamedTransition{"11", "10", mu},
	)
	in.Seed = SeedSets(in.Names, []string{"00", "01", "10"})
	rep, err := Analyze(in)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Lumping.Lumpable || rep.Lumping.Blocks != 3 {
		t.Fatalf("lumping = %+v", rep.Lumping)
	}
	want := [][]string{{"00"}, {"01", "10"}, {"11"}}
	if !reflect.DeepEqual(rep.Lumping.Partition, want) {
		t.Fatalf("partition = %v, want %v", rep.Lumping.Partition, want)
	}
	if got := rep.Lumping.BlockOf(); !reflect.DeepEqual(got, []int{0, 1, 1, 2}) {
		t.Fatalf("blockOf = %v", got)
	}
	if rep.Hint.Reduce != "lump" {
		t.Fatalf("hint = %+v", rep.Hint)
	}
}

// TestSeedKeepsSetsApart: a seed split must never be merged back even
// when outflows agree perfectly.
func TestSeedKeepsSetsApart(t *testing.T) {
	in := chain(false,
		NamedTransition{"a", "c", 1},
		NamedTransition{"b", "c", 1},
		NamedTransition{"c", "a", 0.5},
		NamedTransition{"c", "b", 0.5},
	)
	in.Seed = SeedSets(in.Names, []string{"a"})
	rep, err := Analyze(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, block := range rep.Lumping.Partition {
		for _, s := range block {
			if s == "a" && len(block) > 1 {
				t.Fatalf("seeded state merged: %v", block)
			}
		}
	}
	if rep.Lumping.Blocks != 3 {
		t.Fatalf("blocks = %d, want 3 (a alone, b alone after split, c)", rep.Lumping.Blocks)
	}
}

func TestAsymmetricNotLumpable(t *testing.T) {
	rep, err := Analyze(chain(false,
		NamedTransition{"x", "y", 1},
		NamedTransition{"y", "z", 2},
		NamedTransition{"z", "x", 3},
	))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lumping.Lumpable {
		t.Fatalf("asymmetric cycle reported lumpable: %+v", rep.Lumping)
	}
}

func TestWeakComponents(t *testing.T) {
	rep, err := Analyze(chain(false,
		NamedTransition{"a", "b", 1},
		NamedTransition{"b", "a", 1},
		NamedTransition{"c", "d", 1},
		NamedTransition{"d", "c", 1},
	))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Components != 2 {
		t.Fatalf("components = %d, want 2", rep.Components)
	}
	if rep.RecurrentClasses != 2 {
		t.Fatalf("recurrent classes = %d, want 2", rep.RecurrentClasses)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Analyze(Input{}); err == nil {
		t.Fatal("empty input did not error")
	}
	if _, err := Analyze(Input{States: 2, Trans: []Transition{{From: 0, To: 5, Weight: 1}}}); err == nil {
		t.Fatal("out-of-range transition did not error")
	}
	if _, err := Analyze(Input{States: 2, Seed: []int{0}}); err == nil {
		t.Fatal("short seed did not error")
	}
}

// TestDeepChainIterativeSCC guards the iterative Tarjan against stack
// overflow on long ladders (the recursive form dies around 1e5 frames
// under -race).
func TestDeepChainIterativeSCC(t *testing.T) {
	const n = 20000
	trans := make([]NamedTransition, 0, 2*n)
	name := func(i int) string { return "s" + itoa(i) }
	for i := 0; i < n-1; i++ {
		trans = append(trans, NamedTransition{name(i), name(i + 1), 1.0})
		trans = append(trans, NamedTransition{name(i + 1), name(i), 2.0})
	}
	rep, err := Analyze(FromNamed(trans, false))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Irreducible {
		t.Fatal("ladder not irreducible")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [12]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
