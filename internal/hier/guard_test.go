package hier

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/guard"
)

// nanAfter returns a cyclic two-model composition whose "source" submodel
// starts emitting NaN at the given sweep — the shape of a divide-by-zero
// deep inside a lower-level model.
func nanAfter(sweep int) (*Composition, error) {
	calls := 0
	src := FuncModel{
		ModelName: "source",
		In:        []string{"x"},
		Out:       []string{"y"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			calls++
			if calls >= sweep {
				return map[string]float64{"y": math.NaN()}, nil
			}
			return map[string]float64{"y": in["x"] / 2}, nil
		},
	}
	copyBack := FuncModel{
		ModelName: "copy",
		In:        []string{"y"},
		Out:       []string{"x"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			return map[string]float64{"x": in["y"]}, nil
		},
	}
	return NewComposition(src, copyBack)
}

// TestNonFiniteFailsFastWithDominantLabel locks the NaN-spin fix: before,
// a NaN iterate either spun to MaxIter or — worse — "converged", because
// NaN comparisons never exceed the residual. Now the sweep that produces
// it fails immediately and names the submodel responsible.
func TestNonFiniteFailsFastWithDominantLabel(t *testing.T) {
	comp, err := nanAfter(3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = comp.Solve(map[string]float64{"x": 1}, Options{MaxIter: 500})
	if err == nil {
		t.Fatal("NaN-producing composition converged without error")
	}
	var nf *NonFiniteError
	if !errors.As(err, &nf) {
		t.Fatalf("error %v (type %T) is not *NonFiniteError", err, err)
	}
	if nf.Dominant != "source" {
		t.Errorf("dominant submodel = %q, want %q", nf.Dominant, "source")
	}
	if nf.Variable != "y" {
		t.Errorf("non-finite variable = %q, want %q", nf.Variable, "y")
	}
	if nf.Sweep > 5 {
		t.Errorf("failed at sweep %d; the fix requires failing fast, not spinning", nf.Sweep)
	}
	if got := nf.FailureClass(); got != string(guard.ClassNumerical) {
		t.Errorf("FailureClass() = %q, want %q", got, guard.ClassNumerical)
	}
}

// TestNonFiniteUnderDamping exercises the second non-finite check site:
// with damping, the blended iterate (not the raw submodel output) is what
// carries the NaN forward.
func TestNonFiniteUnderDamping(t *testing.T) {
	comp, err := nanAfter(2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = comp.Solve(map[string]float64{"x": 1}, Options{Damping: 0.5, MaxIter: 500})
	var nf *NonFiniteError
	if !errors.As(err, &nf) {
		t.Fatalf("damped solve error %v (type %T) is not *NonFiniteError", err, err)
	}
}

// TestSolveCancellation covers the per-sweep context check.
func TestSolveCancellation(t *testing.T) {
	m1 := FuncModel{
		ModelName: "osc", In: []string{"x"}, Out: []string{"y"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			return map[string]float64{"y": math.Cos(in["x"])}, nil
		},
	}
	m2 := FuncModel{
		ModelName: "copy", In: []string{"y"}, Out: []string{"x"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			return map[string]float64{"x": in["y"]}, nil
		},
	}
	comp, err := NewComposition(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = comp.Solve(map[string]float64{"x": 0.5}, Options{Ctx: ctx})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("error %v does not match guard.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not also match context.Canceled", err)
	}
	var ie *guard.InterruptError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v does not unwrap to *guard.InterruptError", err)
	}
	if ie.Op != "hier.fixedpoint" {
		t.Errorf("interrupt op = %q, want hier.fixedpoint", ie.Op)
	}
}
