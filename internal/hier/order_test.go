package hier

import (
	"math"
	"testing"
)

func constModel(name, out string, v float64) FuncModel {
	return FuncModel{
		ModelName: name,
		Out:       []string{out},
		Fn: func(map[string]float64) (map[string]float64, error) {
			return map[string]float64{out: v}, nil
		},
	}
}

func chainModel(name, in, out string, f func(float64) float64) FuncModel {
	return FuncModel{
		ModelName: name,
		In:        []string{in},
		Out:       []string{out},
		Fn: func(m map[string]float64) (map[string]float64, error) {
			return map[string]float64{out: f(m[in])}, nil
		},
	}
}

func TestOrderedFixesBadOrder(t *testing.T) {
	// Register consumers before producers: x → y → z computed from base.
	double := func(v float64) float64 { return 2 * v }
	comp, err := NewComposition(
		chainModel("z", "y", "z", double),
		chainModel("y", "x", "y", double),
		constModel("x", "x", 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Unordered needs several sweeps (3 models, reversed dependencies).
	resBad, err := comp.Solve(map[string]float64{"x": 0, "y": 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ordered, cyclic, err := comp.Ordered()
	if err != nil {
		t.Fatal(err)
	}
	if len(cyclic) != 0 {
		t.Fatalf("cyclic = %v, want none", cyclic)
	}
	resGood, err := ordered.Solve(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resGood.Vars["z"]-12) > 1e-12 {
		t.Errorf("z = %g, want 12", resGood.Vars["z"])
	}
	if resGood.Iterations >= resBad.Iterations {
		t.Errorf("ordered (%d sweeps) should beat unordered (%d)",
			resGood.Iterations, resBad.Iterations)
	}
	// Ordered acyclic solves in <= 2 sweeps (compute + verify).
	if resGood.Iterations > 2 {
		t.Errorf("ordered sweeps = %d, want <= 2", resGood.Iterations)
	}
}

func TestOrderedReportsCycles(t *testing.T) {
	comp, err := NewComposition(
		chainModel("a", "y", "x", func(v float64) float64 { return math.Cos(v) }),
		chainModel("b", "x", "y", func(v float64) float64 { return v }),
		constModel("free", "w", 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	ordered, cyclic, err := comp.Ordered()
	if err != nil {
		t.Fatal(err)
	}
	if len(cyclic) != 2 {
		t.Fatalf("cyclic = %v, want the two coupled models", cyclic)
	}
	// Still solvable by iteration.
	res, err := ordered.Solve(map[string]float64{"x": 0.5, "y": 0.5}, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Vars["x"]-0.7390851332151607) > 1e-9 {
		t.Errorf("fixed point = %g", res.Vars["x"])
	}
}

func TestOrderedRejectsDuplicateProducers(t *testing.T) {
	comp, err := NewComposition(
		constModel("p1", "shared", 1),
		constModel("p2", "shared", 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := comp.Ordered(); err == nil {
		t.Error("duplicate producer accepted")
	}
}
