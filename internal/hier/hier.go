// Package hier implements hierarchical model composition with fixed-point
// iteration — the tutorial's scalable alternative to monolithic state-space
// models. Submodels exchange scalar measures through named variables: a
// lower-level Markov submodel exports a component availability, an upper
// RBD/fault-tree imports it, and cyclic dependencies (e.g., a repair-person
// submodel whose load depends on system state) are resolved by iterating
// the whole composition to a fixed point.
package hier

import (
	"errors"
	"fmt"
	"math"
)

// Submodel is one level of a hierarchical model. Solve consumes the current
// variable assignment and returns the variables this model exports.
type Submodel interface {
	// Name identifies the submodel in error messages.
	Name() string
	// Inputs lists the variables the model reads (must exist before its
	// first Solve unless provided as initial guesses).
	Inputs() []string
	// Outputs lists the variables the model writes.
	Outputs() []string
	// Solve computes the outputs from the inputs.
	Solve(in map[string]float64) (map[string]float64, error)
}

// FuncModel adapts a plain function to the Submodel interface.
type FuncModel struct {
	// ModelName identifies the model.
	ModelName string
	// In and Out declare the variable interface.
	In, Out []string
	// Fn computes outputs from inputs.
	Fn func(in map[string]float64) (map[string]float64, error)
}

var _ Submodel = FuncModel{}

// Name implements Submodel.
func (f FuncModel) Name() string { return f.ModelName }

// Inputs implements Submodel.
func (f FuncModel) Inputs() []string { return f.In }

// Outputs implements Submodel.
func (f FuncModel) Outputs() []string { return f.Out }

// Solve implements Submodel.
func (f FuncModel) Solve(in map[string]float64) (map[string]float64, error) {
	if f.Fn == nil {
		return nil, fmt.Errorf("hier: model %q has no solve function", f.ModelName)
	}
	return f.Fn(in)
}

// Options controls the fixed-point iteration.
type Options struct {
	// Tol is the convergence tolerance on the max absolute variable change
	// per sweep (default 1e-10).
	Tol float64
	// MaxIter bounds the sweeps (default 500).
	MaxIter int
	// Damping in (0,1] blends successive iterates: x ← (1-d)·x + d·x_new.
	// 1 (default) is undamped.
	Damping float64
}

// Result reports a composition solution.
type Result struct {
	// Vars holds the converged variable assignment.
	Vars map[string]float64
	// Iterations is the number of sweeps performed.
	Iterations int
	// Residual is the final max variable change.
	Residual float64
}

// ErrNoConvergence is returned when the fixed point is not reached.
var ErrNoConvergence = errors.New("hier: fixed-point iteration did not converge")

// Composition is an ordered list of submodels solved in sweeps.
type Composition struct {
	models []Submodel
}

// NewComposition returns a composition over the given submodels; they are
// solved in the supplied order within each sweep (order affects iteration
// count, not the fixed point).
func NewComposition(models ...Submodel) (*Composition, error) {
	if len(models) == 0 {
		return nil, errors.New("hier: no submodels")
	}
	seen := make(map[string]bool, len(models))
	for _, m := range models {
		if m == nil {
			return nil, errors.New("hier: nil submodel")
		}
		if seen[m.Name()] {
			return nil, fmt.Errorf("hier: duplicate submodel name %q", m.Name())
		}
		seen[m.Name()] = true
	}
	return &Composition{models: append([]Submodel(nil), models...)}, nil
}

// Solve iterates the composition from the initial variable assignment until
// every variable is stable. Acyclic compositions converge in one sweep (plus
// one verification sweep); cyclic ones iterate.
func (c *Composition) Solve(initial map[string]float64, opts Options) (*Result, error) {
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 500
	}
	if opts.Damping <= 0 || opts.Damping > 1 {
		opts.Damping = 1
	}
	vars := make(map[string]float64, len(initial))
	for k, v := range initial {
		vars[k] = v
	}
	var residual float64
	for iter := 1; iter <= opts.MaxIter; iter++ {
		residual = 0
		for _, m := range c.models {
			in := make(map[string]float64, len(m.Inputs()))
			for _, name := range m.Inputs() {
				v, ok := vars[name]
				if !ok {
					return nil, fmt.Errorf("hier: model %q input %q undefined (missing initial guess?)",
						m.Name(), name)
				}
				in[name] = v
			}
			out, err := m.Solve(in)
			if err != nil {
				return nil, fmt.Errorf("hier: model %q: %w", m.Name(), err)
			}
			for _, name := range m.Outputs() {
				nv, ok := out[name]
				if !ok {
					return nil, fmt.Errorf("hier: model %q did not produce declared output %q",
						m.Name(), name)
				}
				if math.IsNaN(nv) || math.IsInf(nv, 0) {
					return nil, fmt.Errorf("hier: model %q output %q = %g", m.Name(), name, nv)
				}
				old, existed := vars[name]
				if existed {
					nv = old + opts.Damping*(nv-old)
					if d := math.Abs(nv - old); d > residual {
						residual = d
					}
				} else {
					// A newly defined variable forces one more sweep.
					residual = math.Inf(1)
				}
				vars[name] = nv
			}
		}
		if residual < opts.Tol {
			return &Result{Vars: vars, Iterations: iter, Residual: residual}, nil
		}
	}
	return &Result{Vars: vars, Iterations: opts.MaxIter, Residual: residual},
		fmt.Errorf("%w after %d sweeps (residual %g)", ErrNoConvergence, opts.MaxIter, residual)
}
