// Package hier implements hierarchical model composition with fixed-point
// iteration — the tutorial's scalable alternative to monolithic state-space
// models. Submodels exchange scalar measures through named variables: a
// lower-level Markov submodel exports a component availability, an upper
// RBD/fault-tree imports it, and cyclic dependencies (e.g., a repair-person
// submodel whose load depends on system state) are resolved by iterating
// the whole composition to a fixed point.
package hier

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/guard"
	"repro/internal/obs"
)

// Submodel is one level of a hierarchical model. Solve consumes the current
// variable assignment and returns the variables this model exports.
type Submodel interface {
	// Name identifies the submodel in error messages.
	Name() string
	// Inputs lists the variables the model reads (must exist before its
	// first Solve unless provided as initial guesses).
	Inputs() []string
	// Outputs lists the variables the model writes.
	Outputs() []string
	// Solve computes the outputs from the inputs.
	Solve(in map[string]float64) (map[string]float64, error)
}

// FuncModel adapts a plain function to the Submodel interface.
type FuncModel struct {
	// ModelName identifies the model.
	ModelName string
	// In and Out declare the variable interface.
	In, Out []string
	// Fn computes outputs from inputs.
	Fn func(in map[string]float64) (map[string]float64, error)
}

var _ Submodel = FuncModel{}

// Name implements Submodel.
func (f FuncModel) Name() string { return f.ModelName }

// Inputs implements Submodel.
func (f FuncModel) Inputs() []string { return f.In }

// Outputs implements Submodel.
func (f FuncModel) Outputs() []string { return f.Out }

// Solve implements Submodel.
func (f FuncModel) Solve(in map[string]float64) (map[string]float64, error) {
	if f.Fn == nil {
		return nil, fmt.Errorf("hier: model %q has no solve function", f.ModelName)
	}
	return f.Fn(in)
}

// Options controls the fixed-point iteration.
type Options struct {
	// Tol is the convergence tolerance on the max absolute variable change
	// per sweep (default 1e-10).
	Tol float64
	// MaxIter bounds the sweeps (default 500).
	MaxIter int
	// Damping in (0,1] blends successive iterates: x ← (1-d)·x + d·x_new.
	// 1 (default) is undamped.
	Damping float64
	// Recorder receives fixed-point telemetry: one record per sweep with
	// the max variable delta and the submodel that produced it (nil
	// disables).
	Recorder obs.Recorder
	// Ctx interrupts the iteration between sweeps; nil never interrupts.
	Ctx context.Context
}

// Result reports a composition solution.
type Result struct {
	// Vars holds the converged variable assignment.
	Vars map[string]float64
	// Iterations is the number of sweeps performed.
	Iterations int
	// Residual is the final max variable change.
	Residual float64
}

// ErrNoConvergence is the sentinel matched by errors.Is when the fixed
// point is not reached. The concrete error returned by Solve is a
// *NoConvergenceError carrying the iteration count and last delta.
var ErrNoConvergence = errors.New("hier: fixed-point iteration did not converge")

// NoConvergenceError reports a fixed-point iteration that exhausted its
// sweep budget. It wraps ErrNoConvergence, so errors.Is(err,
// ErrNoConvergence) keeps working while errors.As exposes the diagnostics.
type NoConvergenceError struct {
	// Iterations is the number of sweeps performed.
	Iterations int
	// LastDelta is the max absolute variable change of the final sweep.
	LastDelta float64
	// Dominant names the submodel whose output produced LastDelta.
	Dominant string
}

// Error implements error.
func (e *NoConvergenceError) Error() string {
	msg := fmt.Sprintf("%v after %d sweeps (last delta %g", ErrNoConvergence, e.Iterations, e.LastDelta)
	if e.Dominant != "" {
		msg += fmt.Sprintf(", dominated by %q", e.Dominant)
	}
	return msg + ")"
}

// Unwrap links the typed error to the ErrNoConvergence sentinel.
func (e *NoConvergenceError) Unwrap() error { return ErrNoConvergence }

// FailureClass implements guard.Classed, so a fallback chain treats an
// unconverged composition as escalatable.
func (e *NoConvergenceError) FailureClass() string { return string(guard.ClassNoConvergence) }

// NonFiniteError reports a fixed-point sweep whose damped variable value
// went non-finite — typically a NaN initial guess or a submodel output
// that blew up under damping. Without this fail-fast the iteration spins:
// NaN deltas never compare above the running residual, so the sweep loop
// either never terminates usefully or reports false convergence.
type NonFiniteError struct {
	// Sweep is the 1-based sweep number that produced the value.
	Sweep int
	// Variable names the exchanged variable that went non-finite.
	Variable string
	// Value is the offending value (NaN or ±Inf).
	Value float64
	// Dominant names the submodel whose output produced the value.
	Dominant string
}

// Error implements error.
func (e *NonFiniteError) Error() string {
	return fmt.Sprintf("hier: variable %q went non-finite (%g) at sweep %d, dominated by submodel %q",
		e.Variable, e.Value, e.Sweep, e.Dominant)
}

// FailureClass implements guard.Classed.
func (e *NonFiniteError) FailureClass() string { return string(guard.ClassNumerical) }

// Composition is an ordered list of submodels solved in sweeps.
type Composition struct {
	models []Submodel
}

// NewComposition returns a composition over the given submodels; they are
// solved in the supplied order within each sweep (order affects iteration
// count, not the fixed point).
func NewComposition(models ...Submodel) (*Composition, error) {
	if len(models) == 0 {
		return nil, errors.New("hier: no submodels")
	}
	seen := make(map[string]bool, len(models))
	for _, m := range models {
		if m == nil {
			return nil, errors.New("hier: nil submodel")
		}
		if seen[m.Name()] {
			return nil, fmt.Errorf("hier: duplicate submodel name %q", m.Name())
		}
		seen[m.Name()] = true
	}
	return &Composition{models: append([]Submodel(nil), models...)}, nil
}

// Solve iterates the composition from the initial variable assignment until
// every variable is stable. Acyclic compositions converge in one sweep (plus
// one verification sweep); cyclic ones iterate.
func (c *Composition) Solve(initial map[string]float64, opts Options) (*Result, error) {
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 500
	}
	if opts.Damping <= 0 || opts.Damping > 1 {
		opts.Damping = 1
	}
	rec := obs.Or(opts.Recorder)
	tracing := rec.Enabled()
	if tracing {
		rec = rec.Span("hier.fixedpoint",
			obs.S("solver", "fixed-point"), obs.I("submodels", len(c.models)),
			obs.F("tol", opts.Tol), obs.F("damping", opts.Damping))
		defer rec.End()
	}
	vars := make(map[string]float64, len(initial))
	for k, v := range initial {
		vars[k] = v
	}
	var residual float64
	var dominant string
	for iter := 1; iter <= opts.MaxIter; iter++ {
		if err := guard.Ctx(opts.Ctx, "hier.fixedpoint", iter-1, residual); err != nil {
			guard.RecordInterrupt(rec, err)
			return nil, err
		}
		residual = 0
		dominant = ""
		for _, m := range c.models {
			in := make(map[string]float64, len(m.Inputs()))
			for _, name := range m.Inputs() {
				v, ok := vars[name]
				if !ok {
					return nil, fmt.Errorf("hier: model %q input %q undefined (missing initial guess?)",
						m.Name(), name)
				}
				in[name] = v
			}
			out, err := m.Solve(in)
			if err != nil {
				return nil, fmt.Errorf("hier: model %q: %w", m.Name(), err)
			}
			for _, name := range m.Outputs() {
				nv, ok := out[name]
				if !ok {
					return nil, fmt.Errorf("hier: model %q did not produce declared output %q",
						m.Name(), name)
				}
				if !guard.IsFinite(nv) {
					err := &NonFiniteError{Sweep: iter, Variable: name, Value: nv, Dominant: m.Name()}
					if tracing {
						rec.Set(obs.I("iterations", iter), obs.S("outcome", "non-finite"),
							obs.S("dominant", m.Name()))
					}
					return nil, err
				}
				old, existed := vars[name]
				if existed {
					nv = old + opts.Damping*(nv-old)
					if !guard.IsFinite(nv) {
						err := &NonFiniteError{Sweep: iter, Variable: name, Value: nv, Dominant: m.Name()}
						if tracing {
							rec.Set(obs.I("iterations", iter), obs.S("outcome", "non-finite"),
								obs.S("dominant", m.Name()))
						}
						return nil, err
					}
					if d := math.Abs(nv - old); d > residual {
						residual = d
						dominant = m.Name()
					}
				} else {
					// A newly defined variable forces one more sweep.
					residual = math.Inf(1)
					dominant = m.Name()
				}
				vars[name] = nv
			}
		}
		if tracing {
			rec.IterLabel(iter, residual, dominant)
		}
		if residual < opts.Tol {
			if tracing {
				rec.Set(obs.I("iterations", iter), obs.F("final_delta", residual))
			}
			return &Result{Vars: vars, Iterations: iter, Residual: residual}, nil
		}
	}
	if tracing {
		rec.Set(obs.I("iterations", opts.MaxIter), obs.F("final_delta", residual),
			obs.S("outcome", "no-convergence"))
	}
	return &Result{Vars: vars, Iterations: opts.MaxIter, Residual: residual},
		&NoConvergenceError{Iterations: opts.MaxIter, LastDelta: residual, Dominant: dominant}
}
