package hier

import (
	"fmt"
	"sort"
)

// Ordered returns a new composition whose submodels are sorted
// topologically by their declared input/output dependencies: producers
// before consumers. For an acyclic composition this guarantees one-sweep
// convergence regardless of the order the caller listed the models in; a
// dependency cycle (genuine fixed-point coupling) is reported through the
// cyclic return value and the involved models keep their relative order at
// the end of the schedule.
func (c *Composition) Ordered() (ordered *Composition, cyclic []string, err error) {
	n := len(c.models)
	producer := make(map[string]int) // variable -> producing model index
	for i, m := range c.models {
		for _, out := range m.Outputs() {
			if prev, ok := producer[out]; ok {
				return nil, nil, fmt.Errorf("hier: variable %q produced by both %q and %q",
					out, c.models[prev].Name(), m.Name())
			}
			producer[out] = i
		}
	}
	// Edges: producer -> consumer.
	adj := make([][]int, n)
	indeg := make([]int, n)
	for i, m := range c.models {
		seen := make(map[int]bool)
		for _, in := range m.Inputs() {
			p, ok := producer[in]
			if !ok || p == i || seen[p] {
				continue // external input or self-loop (handled as cycle below)
			}
			seen[p] = true
			adj[p] = append(adj[p], i)
			indeg[i]++
		}
	}
	// Kahn's algorithm with stable ordering.
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	sort.Ints(queue)
	var order []int
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, j := range adj[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
		sort.Ints(queue)
	}
	// Remaining models form cycles; append them in original order.
	inOrder := make(map[int]bool, len(order))
	for _, i := range order {
		inOrder[i] = true
	}
	for i := 0; i < n; i++ {
		if !inOrder[i] {
			order = append(order, i)
			cyclic = append(cyclic, c.models[i].Name())
		}
	}
	models := make([]Submodel, n)
	for pos, i := range order {
		models[pos] = c.models[i]
	}
	oc, err := NewComposition(models...)
	if err != nil {
		return nil, nil, err
	}
	return oc, cyclic, nil
}
