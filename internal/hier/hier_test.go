package hier

import (
	"errors"
	"math"
	"testing"

	"repro/internal/markov"
	"repro/internal/obs"
)

func TestAcyclicComposition(t *testing.T) {
	// Lower level: component availability from a Markov chain.
	lower := FuncModel{
		ModelName: "component",
		Out:       []string{"A_comp"},
		Fn: func(map[string]float64) (map[string]float64, error) {
			c := markov.NewCTMC()
			if err := c.AddRate("up", "down", 0.01); err != nil {
				return nil, err
			}
			if err := c.AddRate("down", "up", 1.0); err != nil {
				return nil, err
			}
			pi, err := c.SteadyStateMap()
			if err != nil {
				return nil, err
			}
			return map[string]float64{"A_comp": pi["up"]}, nil
		},
	}
	// Upper level: 2-of-3 over identical components.
	upper := FuncModel{
		ModelName: "system",
		In:        []string{"A_comp"},
		Out:       []string{"A_sys"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			a := in["A_comp"]
			return map[string]float64{"A_sys": 3*a*a - 2*a*a*a}, nil
		},
	}
	comp, err := NewComposition(lower, upper)
	if err != nil {
		t.Fatal(err)
	}
	res, err := comp.Solve(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aComp := 1.0 / 1.01
	want := 3*aComp*aComp - 2*aComp*aComp*aComp
	if math.Abs(res.Vars["A_sys"]-want) > 1e-12 {
		t.Errorf("A_sys = %g, want %g", res.Vars["A_sys"], want)
	}
	if res.Iterations > 2 {
		t.Errorf("acyclic composition took %d sweeps, want <= 2", res.Iterations)
	}
}

func TestCyclicFixedPoint(t *testing.T) {
	// Classic fixed point: x = cos(x) via two mutually dependent models.
	m1 := FuncModel{
		ModelName: "cos",
		In:        []string{"x"},
		Out:       []string{"y"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			return map[string]float64{"y": math.Cos(in["x"])}, nil
		},
	}
	m2 := FuncModel{
		ModelName: "copy",
		In:        []string{"y"},
		Out:       []string{"x"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			return map[string]float64{"x": in["y"]}, nil
		},
	}
	comp, err := NewComposition(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := comp.Solve(map[string]float64{"x": 0.5}, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Dottie number.
	if math.Abs(res.Vars["x"]-0.7390851332151607) > 1e-9 {
		t.Errorf("fixed point = %.12g, want 0.739085133215", res.Vars["x"])
	}
}

func TestSharedRepairFixedPointMatchesExact(t *testing.T) {
	// Two identical components share one repair facility. The exact model
	// is the 3-state CTMC; the hierarchical approximation models each
	// component independently with an effective repair rate slowed by the
	// probability the repairer is busy with the other component, iterated
	// to a fixed point. The fixed point must land within ~1% of exact for
	// small utilization.
	lam, mu := 0.01, 1.0

	// Exact: shared-repair birth-death chain.
	exactChain := markov.NewCTMC()
	_ = exactChain.AddRate("2", "1", 2*lam)
	_ = exactChain.AddRate("1", "0", lam)
	_ = exactChain.AddRate("1", "2", mu)
	_ = exactChain.AddRate("0", "1", mu)
	exactPi, err := exactChain.SteadyStateMap()
	if err != nil {
		t.Fatal(err)
	}
	exactA := exactPi["2"] + exactPi["1"]

	// Hierarchical: component availability with effective repair rate
	// mu_eff = mu · P(repairer free when I need it) ≈ mu·(1 - U_other),
	// where U_other is the other component's unavailability.
	compModel := FuncModel{
		ModelName: "component",
		In:        []string{"U_other"},
		Out:       []string{"U_comp"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			muEff := mu * (1 - in["U_other"])
			u := lam / (lam + muEff)
			return map[string]float64{"U_comp": u}, nil
		},
	}
	mirror := FuncModel{
		ModelName: "mirror",
		In:        []string{"U_comp"},
		Out:       []string{"U_other"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			return map[string]float64{"U_other": in["U_comp"]}, nil
		},
	}
	sys := FuncModel{
		ModelName: "system",
		In:        []string{"U_comp"},
		Out:       []string{"A_sys"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			u := in["U_comp"]
			return map[string]float64{"A_sys": 1 - u*u}, nil
		},
	}
	comp, err := NewComposition(compModel, mirror, sys)
	if err != nil {
		t.Fatal(err)
	}
	res, err := comp.Solve(map[string]float64{"U_other": 0}, Options{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Vars["A_sys"]
	// The fixed point corrects the naive independent-repair model toward
	// the exact value (contention lowers availability) and lands within
	// 0.1% of exact availability.
	uInd := lam / (lam + mu)
	aNaive := 1 - uInd*uInd
	if got >= aNaive {
		t.Errorf("fixed point %.10f should fall below the naive independent value %.10f", got, aNaive)
	}
	if math.Abs(got-exactA) > 1e-3 {
		t.Errorf("fixed-point availability %.10f differs from exact %.10f by > 1e-3", got, exactA)
	}
	if res.Iterations < 2 {
		t.Errorf("cyclic model converged suspiciously fast (%d sweeps)", res.Iterations)
	}
}

func TestDampingHelpsOscillation(t *testing.T) {
	// x ← 1 - x oscillates undamped; damping 0.5 converges to 0.5 at once.
	m := FuncModel{
		ModelName: "flip",
		In:        []string{"x"},
		Out:       []string{"x"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			return map[string]float64{"x": 1 - in["x"]}, nil
		},
	}
	comp, err := NewComposition(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comp.Solve(map[string]float64{"x": 0.2}, Options{MaxIter: 50}); !errors.Is(err, ErrNoConvergence) {
		t.Errorf("undamped oscillation: want ErrNoConvergence, got %v", err)
	}
	res, err := comp.Solve(map[string]float64{"x": 0.2}, Options{MaxIter: 200, Damping: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Vars["x"]-0.5) > 1e-9 {
		t.Errorf("damped fixed point = %g, want 0.5", res.Vars["x"])
	}
}

func TestCompositionErrors(t *testing.T) {
	if _, err := NewComposition(); err == nil {
		t.Error("empty composition accepted")
	}
	if _, err := NewComposition(nil); err == nil {
		t.Error("nil submodel accepted")
	}
	a := FuncModel{ModelName: "same", Out: []string{"x"},
		Fn: func(map[string]float64) (map[string]float64, error) {
			return map[string]float64{"x": 1}, nil
		}}
	if _, err := NewComposition(a, a); err == nil {
		t.Error("duplicate names accepted")
	}
	// Missing input.
	needs := FuncModel{ModelName: "needs", In: []string{"missing"}, Out: []string{"y"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			return map[string]float64{"y": in["missing"]}, nil
		}}
	comp, err := NewComposition(needs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comp.Solve(nil, Options{}); err == nil {
		t.Error("undefined input accepted")
	}
	// Model not producing declared output.
	liar := FuncModel{ModelName: "liar", Out: []string{"z"},
		Fn: func(map[string]float64) (map[string]float64, error) {
			return map[string]float64{}, nil
		}}
	comp2, _ := NewComposition(liar)
	if _, err := comp2.Solve(nil, Options{}); err == nil {
		t.Error("missing output accepted")
	}
	// NaN output.
	nan := FuncModel{ModelName: "nan", Out: []string{"w"},
		Fn: func(map[string]float64) (map[string]float64, error) {
			return map[string]float64{"w": math.NaN()}, nil
		}}
	comp3, _ := NewComposition(nan)
	if _, err := comp3.Solve(nil, Options{}); err == nil {
		t.Error("NaN output accepted")
	}
}

func TestNoConvergenceErrorCarriesDiagnostics(t *testing.T) {
	m := FuncModel{
		ModelName: "flip",
		In:        []string{"x"},
		Out:       []string{"x"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			return map[string]float64{"x": 1 - in["x"]}, nil
		},
	}
	comp, err := NewComposition(m)
	if err != nil {
		t.Fatal(err)
	}
	_, err = comp.Solve(map[string]float64{"x": 0.2}, Options{MaxIter: 7})
	var nc *NoConvergenceError
	if !errors.As(err, &nc) {
		t.Fatalf("want *NoConvergenceError, got %T: %v", err, err)
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Error("typed error must still match the ErrNoConvergence sentinel")
	}
	if nc.Iterations != 7 {
		t.Errorf("Iterations = %d, want 7", nc.Iterations)
	}
	// x oscillates between 0.2 and 0.8: every sweep moves it by 0.6.
	if math.Abs(nc.LastDelta-0.6) > 1e-12 {
		t.Errorf("LastDelta = %g, want 0.6", nc.LastDelta)
	}
	if nc.Dominant != "flip" {
		t.Errorf("Dominant = %q, want flip", nc.Dominant)
	}
}

func TestFixedPointTelemetry(t *testing.T) {
	// Contraction x ← 0.5·x + 0.25 converges to 0.5 linearly, so the
	// per-sweep deltas halve each sweep.
	m := FuncModel{
		ModelName: "contract",
		In:        []string{"x"},
		Out:       []string{"x"},
		Fn: func(in map[string]float64) (map[string]float64, error) {
			return map[string]float64{"x": 0.5*in["x"] + 0.25}, nil
		},
	}
	comp, err := NewComposition(m)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("test")
	res, err := comp.Solve(map[string]float64{"x": 0}, Options{Tol: 1e-10, Recorder: tr})
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Finish()
	if len(root.Children) != 1 || root.Children[0].Name != "hier.fixedpoint" {
		t.Fatalf("missing hier.fixedpoint span: %+v", root.Children)
	}
	sp := root.Children[0]
	if len(sp.Iters) != res.Iterations {
		t.Fatalf("recorded %d sweeps, result says %d", len(sp.Iters), res.Iterations)
	}
	for i, p := range sp.Iters {
		if p.Label != "contract" {
			t.Errorf("sweep %d dominant label = %q", i+1, p.Label)
		}
		if i > 0 && p.Residual > sp.Iters[i-1].Residual {
			t.Errorf("sweep deltas not decreasing: %g then %g", sp.Iters[i-1].Residual, p.Residual)
		}
	}
}
