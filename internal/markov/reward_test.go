package markov

import (
	"math"
	"testing"
)

func TestSteadyStateRewardRateTwoState(t *testing.T) {
	lam, mu := 0.2, 1.8
	c := twoState(t, lam, mu)
	rate, err := c.SteadyStateRewardRate(func(s string) float64 {
		if s == "up" {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	want := mu / (lam + mu)
	if relErr(rate, want) > 1e-12 {
		t.Errorf("reward rate = %g, want %g", rate, want)
	}
}

func TestExpectedRewardAtMatchesAvailability(t *testing.T) {
	lam, mu := 0.5, 2.0
	c := twoState(t, lam, mu)
	p0, _ := c.InitialAt("up")
	upReward := func(s string) float64 {
		if s == "up" {
			return 1
		}
		return 0
	}
	for _, tt := range []float64{0.3, 1, 4} {
		got, err := c.ExpectedRewardAt(tt, p0, upReward, TransientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		s := lam + mu
		want := mu/s + lam/s*math.Exp(-s*tt)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("E[r(%g)] = %g, want %g", tt, got, want)
		}
	}
}

func TestAccumulatedRewardDegradableMultiprocessor(t *testing.T) {
	// Beaudry-style: two processors, no repair, reward = number up.
	// E[∫₀^∞ r] = 2·E[time in 2] + 1·E[time in 1] = 2/(2λ) + 1/λ = 2/λ.
	lam := 0.25
	c := NewCTMC()
	_ = c.AddRate("2", "1", 2*lam)
	_ = c.AddRate("1", "0", lam)
	p0, _ := c.InitialAt("2")
	capacity := func(s string) float64 {
		switch s {
		case "2":
			return 2
		case "1":
			return 1
		default:
			return 0
		}
	}
	// Over a horizon far beyond absorption, the accumulated reward
	// approaches the total-work closed form 2/λ.
	got, err := c.AccumulatedReward(200, p0, capacity, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got, 2/lam) > 1e-6 {
		t.Errorf("total work = %g, want %g", got, 2/lam)
	}
	// Cross-check against the absorbing-analysis route.
	viaAbsorbing, err := c.ExpectedAccumulatedReward(p0, capacity, "0")
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got, viaAbsorbing) > 1e-6 {
		t.Errorf("transient route %g vs absorbing route %g", got, viaAbsorbing)
	}
}

func TestCapacityOrientedAvailability(t *testing.T) {
	// Repairable duplex, reward = units up, full rate 2: COA lies strictly
	// between the all-up probability and plain availability.
	lam, mu := 0.1, 1.0
	c := duplexSharedRepair(t, lam, mu)
	p0, _ := c.InitialAt("2")
	capacity := func(s string) float64 {
		switch s {
		case "2":
			return 2
		case "1":
			return 1
		default:
			return 0
		}
	}
	horizon := 500.0
	coa, err := c.CapacityOrientedAvailability(horizon, p0, capacity, 2, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyStateMap()
	if err != nil {
		t.Fatal(err)
	}
	allUp := pi["2"]
	avail := pi["2"] + pi["1"]
	if !(coa > allUp && coa < avail) {
		t.Errorf("COA %g should lie in (%g, %g)", coa, allUp, avail)
	}
	if _, err := c.CapacityOrientedAvailability(0, p0, capacity, 2, TransientOptions{}); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := c.CapacityOrientedAvailability(1, p0, capacity, 0, TransientOptions{}); err == nil {
		t.Error("zero full rate accepted")
	}
}

func TestRewardNilValidation(t *testing.T) {
	c := twoState(t, 1, 1)
	p0, _ := c.InitialAt("up")
	if _, err := c.SteadyStateRewardRate(nil); err == nil {
		t.Error("nil reward accepted")
	}
	if _, err := c.ExpectedRewardAt(1, p0, nil, TransientOptions{}); err == nil {
		t.Error("nil reward accepted")
	}
	if _, err := c.AccumulatedReward(1, p0, nil, TransientOptions{}); err == nil {
		t.Error("nil reward accepted")
	}
}
