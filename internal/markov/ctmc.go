// Package markov implements continuous- and discrete-time Markov chains:
// steady-state solution (GTH state reduction for small chains, SOR for
// large sparse ones), transient solution by uniformization (Jensen's
// method) with stable Poisson weighting, cumulative transient measures
// (interval availability), absorbing-chain analysis (mean time to
// absorption, absorption probabilities, accumulated reward), Markov reward
// models, and parametric sensitivity of the stationary vector.
//
// Markov chains are the tutorial's primary state-space model type: they
// capture the dependence (shared repair, imperfect coverage, standby
// redundancy) that the non-state-space models cannot, at the cost of state
// spaces that grow exponentially with the number of components.
package markov

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/guard"
	"repro/internal/linalg"
	"repro/internal/obs"
)

// CTMC is a continuous-time Markov chain under construction or analysis.
// States are created lazily by name; transitions carry positive rates.
type CTMC struct {
	names []string
	index map[string]int
	trans []transition
}

type transition struct {
	from, to int
	rate     float64
}

// Errors returned by chain construction and analysis.
var (
	ErrUnknownState = errors.New("markov: unknown state")
	ErrBadRate      = errors.New("markov: rate must be positive and finite")
	ErrEmptyChain   = errors.New("markov: chain has no states")
	ErrBadInitial   = errors.New("markov: initial distribution invalid")
)

// NewCTMC returns an empty chain.
func NewCTMC() *CTMC {
	return &CTMC{index: make(map[string]int)}
}

// State ensures a state with the given name exists and returns its index.
func (c *CTMC) State(name string) int {
	if i, ok := c.index[name]; ok {
		return i
	}
	i := len(c.names)
	c.index[name] = i
	c.names = append(c.names, name)
	return i
}

// AddRate adds a transition with the given rate from one state to another,
// creating the states as needed. Multiple calls accumulate.
func (c *CTMC) AddRate(from, to string, rate float64) error {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return fmt.Errorf("%w: %q -> %q rate %g", ErrBadRate, from, to, rate)
	}
	if from == to {
		return fmt.Errorf("markov: self-transition %q has no effect in a CTMC", from)
	}
	c.trans = append(c.trans, transition{from: c.State(from), to: c.State(to), rate: rate})
	return nil
}

// NumStates returns the number of states created so far.
func (c *CTMC) NumStates() int { return len(c.names) }

// StateNames returns a copy of the state names in index order.
func (c *CTMC) StateNames() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Index returns the index of a named state.
func (c *CTMC) Index(name string) (int, error) {
	i, ok := c.index[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownState, name)
	}
	return i, nil
}

// Generator assembles the infinitesimal generator Q in CSR form, including
// the negative diagonal.
func (c *CTMC) Generator() (*linalg.CSR, error) {
	n := len(c.names)
	if n == 0 {
		return nil, ErrEmptyChain
	}
	coo := linalg.NewCOO(n, n)
	diag := make([]float64, n)
	for _, t := range c.trans {
		if err := coo.Add(t.from, t.to, t.rate); err != nil {
			return nil, err
		}
		diag[t.from] += t.rate
	}
	for i, d := range diag {
		if d > 0 {
			if err := coo.Add(i, i, -d); err != nil {
				return nil, err
			}
		}
	}
	return coo.ToCSR(), nil
}

// gthThreshold is the state count above which SteadyState switches from
// dense GTH to sparse SOR.
const gthThreshold = 600

// SteadyStateOptions tunes the stationary solve.
type SteadyStateOptions struct {
	// Method selects the solver: "" or "auto" (GTH up to gthThreshold
	// states, SOR beyond), "gth", "sor", or "chain" (SOR first, escalating
	// to exact GTH when the iteration fails to converge or diverges).
	Method string
	// SOR tunes the iterative solver when it is used. Its Recorder field
	// is overridden by Recorder below.
	SOR linalg.SOROptions
	// Recorder receives solver telemetry (nil disables).
	Recorder obs.Recorder
	// Ctx interrupts the solve between sweeps; nil never interrupts.
	Ctx context.Context
}

// SteadyState computes the stationary distribution π of an irreducible
// chain. Chains up to gthThreshold states use GTH (exact, subtraction-free);
// larger chains use SOR.
func (c *CTMC) SteadyState() ([]float64, error) {
	return c.SteadyStateWithOptions(SteadyStateOptions{})
}

// SteadyStateWithOptions is SteadyState with solver selection and
// telemetry.
func (c *CTMC) SteadyStateWithOptions(opts SteadyStateOptions) ([]float64, error) {
	q, err := c.Generator()
	if err != nil {
		return nil, err
	}
	method := opts.Method
	switch method {
	case "", "auto":
		if q.Rows() <= gthThreshold {
			method = "gth"
		} else {
			method = "sor"
		}
	case "gth", "sor", "chain":
	default:
		return nil, fmt.Errorf("markov steady state: unknown method %q (want auto, gth, sor, or chain)", opts.Method)
	}
	rec := obs.Or(opts.Recorder)
	if rec.Enabled() {
		rec = rec.Span("markov.steadystate",
			obs.I("states", q.Rows()), obs.I("transitions", len(c.trans)),
			obs.S("method", method))
		defer rec.End()
	}
	switch method {
	case "gth":
		if err := guard.Ctx(opts.Ctx, "markov.steadystate", 0, math.NaN()); err != nil {
			guard.RecordInterrupt(rec, err)
			return nil, err
		}
		pi, err := solveGTH(q, rec)
		if err != nil {
			return nil, fmt.Errorf("markov steady state: %w", err)
		}
		return pi, nil
	case "chain":
		chainSteps := func(q *linalg.CSR) []guard.Step[[]float64] {
			return []guard.Step[[]float64]{
				{Name: "sor", Run: func(ctx context.Context, arec obs.Recorder) ([]float64, error) {
					so := opts.SOR
					so.Recorder = arec
					so.Ctx = ctx
					v, _, err := linalg.SORSteadyState(q, so)
					if err != nil {
						return nil, err
					}
					return v, nil
				}},
				{Name: "gth", Run: func(_ context.Context, arec obs.Recorder) ([]float64, error) {
					return solveGTH(q, arec)
				}},
			}
		}
		steps := chainSteps(q)
		// Before running, consult the static structural analysis: it may
		// shrink the problem (solve only the recurrent class) and reorder
		// the fallback steps (exact method first on a stiff chain). Both
		// decisions are recorded on the steadystate span.
		var members []int
		if rep, serr := c.StructReport(); serr == nil {
			h := rep.Hint
			if h.Reason != "" && (h.Method != "" || h.Reduce == "restrict-recurrent") {
				rec.Set(obs.S("struct_hint", h.Reason))
			}
			if h.Reduce == "restrict-recurrent" {
				if sub, ms, rerr := c.restrictRecurrent(rep); rerr == nil {
					if qsub, gerr := sub.Generator(); gerr == nil {
						members = ms
						steps = chainSteps(qsub)
						rec.Set(obs.S("struct_reduce", "restrict-recurrent"),
							obs.I("restrict_states", len(ms)))
					}
				}
			}
			if h.Method != "" {
				steps = guard.Prefer(h.Method, steps...)
				rec.Set(obs.S("struct_prefer", h.Method))
			}
		}
		pi, _, err := guard.RunChain(opts.Ctx, rec, "steadystate", steps...)
		if err != nil {
			return nil, fmt.Errorf("markov steady state: %w", err)
		}
		if members != nil {
			full := make([]float64, len(c.names))
			for j, s := range members {
				full[s] = pi[j]
			}
			pi = full
		}
		return pi, nil
	}
	sorOpts := opts.SOR
	sorOpts.Recorder = rec
	if sorOpts.Ctx == nil {
		sorOpts.Ctx = opts.Ctx
	}
	pi, _, err := linalg.SORSteadyState(q, sorOpts)
	if err != nil {
		return nil, fmt.Errorf("markov steady state: %w", err)
	}
	return pi, nil
}

// solveGTH runs the exact GTH elimination under its own solver span.
func solveGTH(q *linalg.CSR, rec obs.Recorder) ([]float64, error) {
	if rec.Enabled() {
		sp := rec.Span("linalg.gth", obs.S("solver", "gth"), obs.I("states", q.Rows()))
		defer sp.End()
	}
	return linalg.GTHCSR(q)
}

// SteadyStateMap returns the stationary distribution keyed by state name.
func (c *CTMC) SteadyStateMap() (map[string]float64, error) {
	return c.SteadyStateMapWithOptions(SteadyStateOptions{})
}

// SteadyStateMapWithOptions is SteadyStateMap with solver selection and
// telemetry.
func (c *CTMC) SteadyStateMapWithOptions(opts SteadyStateOptions) (map[string]float64, error) {
	pi, err := c.SteadyStateWithOptions(opts)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(pi))
	for i, name := range c.names {
		out[name] = pi[i]
	}
	return out, nil
}

// ProbSum sums a probability vector over the named states.
func (c *CTMC) ProbSum(pi []float64, states ...string) (float64, error) {
	if len(pi) != len(c.names) {
		return 0, fmt.Errorf("markov: vector len %d for %d states", len(pi), len(c.names))
	}
	var s float64
	for _, name := range states {
		i, err := c.Index(name)
		if err != nil {
			return 0, err
		}
		s += pi[i]
	}
	return s, nil
}

// checkInitial validates and copies an initial distribution.
func (c *CTMC) checkInitial(p0 []float64) ([]float64, error) {
	if len(p0) != len(c.names) {
		return nil, fmt.Errorf("%w: len %d for %d states", ErrBadInitial, len(p0), len(c.names))
	}
	var sum float64
	for i, p := range p0 {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("%w: p0[%d]=%g", ErrBadInitial, i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("%w: sums to %g", ErrBadInitial, sum)
	}
	return linalg.Clone(p0), nil
}

// InitialAt returns the point-mass initial distribution on the named state.
func (c *CTMC) InitialAt(name string) ([]float64, error) {
	i, err := c.Index(name)
	if err != nil {
		return nil, err
	}
	p0 := make([]float64, len(c.names))
	p0[i] = 1
	return p0, nil
}

// ExpectedReward returns Σ_i reward(state_i)·π_i for the supplied
// probability vector.
func (c *CTMC) ExpectedReward(pi []float64, reward func(state string) float64) (float64, error) {
	if len(pi) != len(c.names) {
		return 0, fmt.Errorf("markov: vector len %d for %d states", len(pi), len(c.names))
	}
	var s float64
	for i, name := range c.names {
		s += pi[i] * reward(name)
	}
	return s, nil
}
