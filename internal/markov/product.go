package markov

import (
	"fmt"
)

// Product returns the joint CTMC of two chains evolving independently (the
// Kronecker sum of their generators): joint states are named "a|b" and
// each transition changes one coordinate. Composing with Product is the
// brute-force counterpart of hierarchical composition — exact for
// independent submodels, exponential in their number — and serves as the
// oracle that hierarchical results are checked against.
func Product(a, b *CTMC) (*CTMC, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("markov product: nil chain")
	}
	if a.NumStates() == 0 || b.NumStates() == 0 {
		return nil, ErrEmptyChain
	}
	out := NewCTMC()
	join := func(sa, sb string) string { return sa + "|" + sb }
	// Materialize all joint states first so even isolated combinations
	// exist (deterministic ordering: a-major).
	for _, sa := range a.names {
		for _, sb := range b.names {
			out.State(join(sa, sb))
		}
	}
	for _, t := range a.trans {
		for _, sb := range b.names {
			if err := out.AddRate(join(a.names[t.from], sb), join(a.names[t.to], sb), t.rate); err != nil {
				return nil, err
			}
		}
	}
	for _, t := range b.trans {
		for _, sa := range a.names {
			if err := out.AddRate(join(sa, b.names[t.from]), join(sa, b.names[t.to]), t.rate); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// ProductN folds Product over several chains (left-associative naming:
// "a|b|c").
func ProductN(chains ...*CTMC) (*CTMC, error) {
	if len(chains) == 0 {
		return nil, ErrEmptyChain
	}
	acc := chains[0]
	for _, next := range chains[1:] {
		joined, err := Product(acc, next)
		if err != nil {
			return nil, err
		}
		acc = joined
	}
	return acc, nil
}
