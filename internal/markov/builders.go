package markov

import (
	"fmt"
	"strconv"
)

// This file provides builders for the canonical availability chains the
// tutorial walks through: k-of-n systems with limited repair crews, and
// cold/warm/hot standby pairs with imperfect switch-over coverage. They
// encode the standard textbook generators so examples and user models
// don't re-derive them (and mis-derive them) by hand.

// KOfNOptions parameterizes BuildKOfN.
type KOfNOptions struct {
	// N is the number of identical units; K the number required up.
	N, K int
	// FailureRate is the per-unit failure rate while operating.
	FailureRate float64
	// RepairRate is the per-crew repair rate.
	RepairRate float64
	// Crews is the number of parallel repair crews (≥ 1); failed units
	// beyond the crew count queue.
	Crews int
	// FailInDown, when true, lets surviving units keep failing after the
	// system is down (components don't know the system state); when false
	// the system stops when it fails.
	FailInDown bool
}

// KOfNModel packages the generated chain with its measure helpers.
type KOfNModel struct {
	// Chain is the birth–death chain over the number of failed units.
	Chain *CTMC
	opts  KOfNOptions
}

// BuildKOfN constructs the k-of-n availability chain. State f ∈ 0..N
// counts failed units; the system is up while f ≤ N−K.
func BuildKOfN(opts KOfNOptions) (*KOfNModel, error) {
	if opts.N < 1 || opts.K < 1 || opts.K > opts.N {
		return nil, fmt.Errorf("markov: k-of-n with n=%d k=%d", opts.N, opts.K)
	}
	if opts.FailureRate <= 0 || opts.RepairRate <= 0 {
		return nil, fmt.Errorf("markov: k-of-n rates λ=%g μ=%g", opts.FailureRate, opts.RepairRate)
	}
	if opts.Crews < 1 {
		return nil, fmt.Errorf("markov: k-of-n with %d repair crews", opts.Crews)
	}
	c := NewCTMC()
	name := func(f int) string { return "f" + strconv.Itoa(f) }
	maxFail := opts.N
	if !opts.FailInDown {
		maxFail = opts.N - opts.K + 1 // one past the failure threshold
	}
	for f := 0; f < maxFail; f++ {
		up := opts.N - f
		if err := c.AddRate(name(f), name(f+1), float64(up)*opts.FailureRate); err != nil {
			return nil, err
		}
	}
	for f := 1; f <= maxFail; f++ {
		crews := f
		if crews > opts.Crews {
			crews = opts.Crews
		}
		if err := c.AddRate(name(f), name(f-1), float64(crews)*opts.RepairRate); err != nil {
			return nil, err
		}
	}
	return &KOfNModel{Chain: c, opts: opts}, nil
}

// UpStates returns the names of the states where the system is up.
func (m *KOfNModel) UpStates() []string {
	var out []string
	for f := 0; f <= m.opts.N-m.opts.K; f++ {
		if _, err := m.Chain.Index("f" + strconv.Itoa(f)); err == nil {
			out = append(out, "f"+strconv.Itoa(f))
		}
	}
	return out
}

// Availability returns the steady-state availability.
func (m *KOfNModel) Availability() (float64, error) {
	pi, err := m.Chain.SteadyState()
	if err != nil {
		return 0, err
	}
	return m.Chain.ProbSum(pi, m.UpStates()...)
}

// MTTF returns the mean time to first system failure from all-up.
func (m *KOfNModel) MTTF() (float64, error) {
	failState := "f" + strconv.Itoa(m.opts.N-m.opts.K+1)
	return m.Chain.MTTF("f0", failState)
}

// StandbyKind selects the standby regime of BuildStandbyPair.
type StandbyKind int

// Standby regimes.
const (
	// ColdStandby: the spare cannot fail while waiting.
	ColdStandby StandbyKind = iota + 1
	// WarmStandby: the spare fails at a reduced (dormancy) rate.
	WarmStandby
	// HotStandby: the spare fails at the full rate.
	HotStandby
)

// StandbyOptions parameterizes BuildStandbyPair.
type StandbyOptions struct {
	// Kind selects cold/warm/hot standby.
	Kind StandbyKind
	// FailureRate is the active unit's failure rate.
	FailureRate float64
	// DormancyFactor scales the spare's failure rate for WarmStandby
	// (0 < factor < 1); ignored otherwise.
	DormancyFactor float64
	// RepairRate is the (single-crew) repair rate.
	RepairRate float64
	// Coverage is the probability the switch-over to the spare succeeds;
	// an uncovered switch-over takes the system down until repair.
	Coverage float64
}

// StandbyModel packages the generated standby chain.
//
// States: "both" (active + good spare), "one" (one good unit active),
// "down" (no unit serving — either both failed or an uncovered
// switch-over).
type StandbyModel struct {
	// Chain is the generated 3-state chain.
	Chain *CTMC
}

// BuildStandbyPair constructs the classic standby-redundancy chain with
// imperfect switch-over coverage.
func BuildStandbyPair(opts StandbyOptions) (*StandbyModel, error) {
	if opts.FailureRate <= 0 || opts.RepairRate <= 0 {
		return nil, fmt.Errorf("markov: standby rates λ=%g μ=%g", opts.FailureRate, opts.RepairRate)
	}
	if opts.Coverage < 0 || opts.Coverage > 1 {
		return nil, fmt.Errorf("markov: standby coverage %g", opts.Coverage)
	}
	var spareRate float64
	switch opts.Kind {
	case ColdStandby:
		spareRate = 0
	case WarmStandby:
		if opts.DormancyFactor <= 0 || opts.DormancyFactor >= 1 {
			return nil, fmt.Errorf("markov: warm standby dormancy factor %g", opts.DormancyFactor)
		}
		spareRate = opts.DormancyFactor * opts.FailureRate
	case HotStandby:
		spareRate = opts.FailureRate
	default:
		return nil, fmt.Errorf("markov: unknown standby kind %d", opts.Kind)
	}
	lam, mu, c := opts.FailureRate, opts.RepairRate, opts.Coverage
	chain := NewCTMC()
	// Active fails: covered switch-over → "one"; uncovered → "down".
	if c > 0 {
		if err := chain.AddRate("both", "one", lam*c); err != nil {
			return nil, err
		}
	}
	if c < 1 {
		if err := chain.AddRate("both", "down", lam*(1-c)); err != nil {
			return nil, err
		}
	}
	// Spare fails silently in "both" (detected, repaired): same "one"
	// state (one good unit, one in repair).
	if spareRate > 0 {
		if err := chain.AddRate("both", "one", spareRate); err != nil {
			return nil, err
		}
	}
	// From "one": the serving unit fails → down; repair completes → both.
	if err := chain.AddRate("one", "down", lam); err != nil {
		return nil, err
	}
	if err := chain.AddRate("one", "both", mu); err != nil {
		return nil, err
	}
	// From "down": repair restores one unit into service.
	if err := chain.AddRate("down", "one", mu); err != nil {
		return nil, err
	}
	return &StandbyModel{Chain: chain}, nil
}

// Availability returns the steady-state availability (up in "both"/"one").
func (m *StandbyModel) Availability() (float64, error) {
	pi, err := m.Chain.SteadyState()
	if err != nil {
		return 0, err
	}
	return m.Chain.ProbSum(pi, "both", "one")
}

// MTTF returns the mean time to first entry into "down" from "both".
func (m *StandbyModel) MTTF() (float64, error) {
	return m.Chain.MTTF("both", "down")
}
