package markov

import (
	"context"
	"fmt"
	"math"

	"repro/internal/guard"
	"repro/internal/linalg"
	"repro/internal/obs"
)

// DTMC is a discrete-time Markov chain built by naming states and setting
// transition probabilities.
type DTMC struct {
	names []string
	index map[string]int
	trans []transition // rate field carries the probability
}

// NewDTMC returns an empty discrete-time chain.
func NewDTMC() *DTMC {
	return &DTMC{index: make(map[string]int)}
}

// State ensures a state exists and returns its index.
func (d *DTMC) State(name string) int {
	if i, ok := d.index[name]; ok {
		return i
	}
	i := len(d.names)
	d.index[name] = i
	d.names = append(d.names, name)
	return i
}

// AddProb adds transition probability p from one state to another
// (self-loops allowed). Multiple calls accumulate.
func (d *DTMC) AddProb(from, to string, p float64) error {
	if p <= 0 || p > 1 || math.IsNaN(p) {
		return fmt.Errorf("markov dtmc: probability %g for %q -> %q outside (0,1]", p, from, to)
	}
	d.trans = append(d.trans, transition{from: d.State(from), to: d.State(to), rate: p})
	return nil
}

// NumStates returns the number of states.
func (d *DTMC) NumStates() int { return len(d.names) }

// StateNames returns the state names in index order.
func (d *DTMC) StateNames() []string {
	out := make([]string, len(d.names))
	copy(out, d.names)
	return out
}

// Index returns the index of a named state.
func (d *DTMC) Index(name string) (int, error) {
	i, ok := d.index[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownState, name)
	}
	return i, nil
}

// Matrix assembles the transition probability matrix and verifies that
// every row sums to 1 (within tolerance).
func (d *DTMC) Matrix() (*linalg.CSR, error) {
	n := len(d.names)
	if n == 0 {
		return nil, ErrEmptyChain
	}
	coo := linalg.NewCOO(n, n)
	rowSum := make([]float64, n)
	for _, t := range d.trans {
		if err := coo.Add(t.from, t.to, t.rate); err != nil {
			return nil, err
		}
		rowSum[t.from] += t.rate
	}
	for i, s := range rowSum {
		if math.Abs(s-1) > 1e-9 {
			return nil, fmt.Errorf("markov dtmc: row %q sums to %g, want 1", d.names[i], s)
		}
	}
	return coo.ToCSR(), nil
}

// SteadyState computes the stationary distribution of an irreducible,
// aperiodic DTMC. Small chains use GTH on P−I (exact); large chains use
// power iteration.
func (d *DTMC) SteadyState() ([]float64, error) {
	return d.SteadyStateWithOptions(SteadyStateOptions{})
}

// SteadyStateWithOptions is SteadyState with solver selection ("auto",
// "gth", "power", or "chain" — power iteration escalating to exact GTH on
// P−I — for a DTMC) and telemetry.
func (d *DTMC) SteadyStateWithOptions(opts SteadyStateOptions) ([]float64, error) {
	p, err := d.Matrix()
	if err != nil {
		return nil, err
	}
	n := p.Rows()
	method := opts.Method
	switch method {
	case "", "auto":
		if n <= gthThreshold {
			method = "gth"
		} else {
			method = "power"
		}
	case "gth", "power", "chain":
	default:
		return nil, fmt.Errorf("markov dtmc steady state: unknown method %q (want auto, gth, power, or chain)", opts.Method)
	}
	rec := obs.Or(opts.Recorder)
	if rec.Enabled() {
		rec = rec.Span("markov.dtmc.steadystate",
			obs.I("states", n), obs.S("method", method))
		defer rec.End()
	}
	gth := func(rec obs.Recorder) ([]float64, error) {
		// P − I is a valid generator-shaped matrix: nonnegative
		// off-diagonals and zero row sums, so GTH applies verbatim.
		if rec.Enabled() {
			sp := rec.Span("linalg.gth", obs.S("solver", "gth"), obs.I("states", n))
			defer sp.End()
		}
		g := linalg.NewDense(n, n)
		for i := 0; i < n; i++ {
			p.RowRange(i, func(col int, val float64) {
				g.Add(i, col, val)
			})
			g.Add(i, i, -1)
		}
		return linalg.GTH(g)
	}
	switch method {
	case "gth":
		if err := guard.Ctx(opts.Ctx, "markov.dtmc.steadystate", 0, math.NaN()); err != nil {
			guard.RecordInterrupt(rec, err)
			return nil, err
		}
		pi, err := gth(rec)
		if err != nil {
			return nil, fmt.Errorf("markov dtmc steady state: %w", err)
		}
		return pi, nil
	case "chain":
		steps := []guard.Step[[]float64]{
			{Name: "power", Run: func(ctx context.Context, arec obs.Recorder) ([]float64, error) {
				v, _, err := linalg.PowerIterationOpts(p, linalg.PowerOptions{Recorder: arec, Ctx: ctx})
				if err != nil {
					return nil, err
				}
				return v, nil
			}},
			{Name: "gth", Run: func(_ context.Context, arec obs.Recorder) ([]float64, error) {
				return gth(arec)
			}},
		}
		// A stiff or periodic chain defeats power iteration; the static
		// analysis moves the exact method first instead of paying for the
		// doomed attempt.
		if rep, serr := d.StructReport(); serr == nil && rep.Hint.Method != "" {
			steps = guard.Prefer(rep.Hint.Method, steps...)
			rec.Set(obs.S("struct_hint", rep.Hint.Reason),
				obs.S("struct_prefer", rep.Hint.Method))
		}
		pi, _, err := guard.RunChain(opts.Ctx, rec, "dtmc.steadystate", steps...)
		if err != nil {
			return nil, fmt.Errorf("markov dtmc steady state: %w", err)
		}
		return pi, nil
	}
	pi, _, err := linalg.PowerIterationOpts(p, linalg.PowerOptions{Recorder: rec, Ctx: opts.Ctx})
	if err != nil {
		return nil, fmt.Errorf("markov dtmc steady state: %w", err)
	}
	return pi, nil
}

// StepN returns p0·P^n.
func (d *DTMC) StepN(p0 []float64, n int) ([]float64, error) {
	if len(p0) != len(d.names) {
		return nil, fmt.Errorf("%w: len %d for %d states", ErrBadInitial, len(p0), len(d.names))
	}
	p, err := d.Matrix()
	if err != nil {
		return nil, err
	}
	v := linalg.Clone(p0)
	for i := 0; i < n; i++ {
		v, err = p.VecMul(v)
		if err != nil {
			return nil, err
		}
	}
	return v, nil
}

// AbsorptionProbs computes, for a DTMC whose named absorbing states have
// P(i,i)=1, the probability of eventually being absorbed in each absorbing
// state starting from the given state.
func (d *DTMC) AbsorptionProbs(initial string, absorbing ...string) (map[string]float64, error) {
	start, err := d.Index(initial)
	if err != nil {
		return nil, err
	}
	if len(absorbing) == 0 {
		return nil, fmt.Errorf("markov dtmc: no absorbing states given")
	}
	isAbs := make(map[int]bool, len(absorbing))
	for _, name := range absorbing {
		i, err := d.Index(name)
		if err != nil {
			return nil, err
		}
		isAbs[i] = true
	}
	out := make(map[string]float64, len(absorbing))
	if isAbs[start] {
		for _, name := range absorbing {
			out[name] = 0
		}
		out[d.names[start]] = 1
		return out, nil
	}
	var transIdx []int
	transPos := make(map[int]int)
	for i := range d.names {
		if !isAbs[i] {
			transPos[i] = len(transIdx)
			transIdx = append(transIdx, i)
		}
	}
	nt := len(transIdx)
	// (I - Q)·b_a = R_a where Q is transient-to-transient, R_a is the
	// one-step probability into absorbing state a.
	iq := linalg.NewDense(nt, nt)
	for i := 0; i < nt; i++ {
		iq.Set(i, i, 1)
	}
	rhs := make(map[int][]float64, len(absorbing))
	for _, t := range d.trans {
		if isAbs[t.from] {
			continue
		}
		fp := transPos[t.from]
		if isAbs[t.to] {
			col, ok := rhs[t.to]
			if !ok {
				col = make([]float64, nt)
				rhs[t.to] = col
			}
			col[fp] += t.rate
		} else {
			iq.Add(fp, transPos[t.to], -t.rate)
		}
	}
	for _, name := range absorbing {
		gi := d.index[name]
		col, ok := rhs[gi]
		if !ok {
			out[name] = 0
			continue
		}
		b, err := linalg.LUSolve(iq, col)
		if err != nil {
			return nil, fmt.Errorf("markov dtmc absorption: %w", err)
		}
		out[name] = b[transPos[start]]
	}
	return out, nil
}
