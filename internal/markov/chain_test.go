package markov

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// TestCTMCChainEscalatesToGTH starves SOR so the "chain" method must fall
// back to GTH, and checks the trace records both attempts and the winner.
func TestCTMCChainEscalatesToGTH(t *testing.T) {
	c := NewCTMC()
	// Rates spanning twelve orders of magnitude, an over-relaxed omega, and
	// a starved sweep budget: SOR cannot reach 1e-13 in 25 sweeps here.
	mustRate(t, c, "up", "degraded", 1e-6)
	mustRate(t, c, "degraded", "up", 1e6)
	mustRate(t, c, "degraded", "down", 2e6)
	mustRate(t, c, "down", "degraded", 1e-6)
	mustRate(t, c, "down", "dead", 1e-3)
	mustRate(t, c, "dead", "up", 5e6)
	mustRate(t, c, "up", "dead", 1e-9)
	tr := obs.NewTrace("test")
	pi, err := c.SteadyStateMapWithOptions(SteadyStateOptions{
		Method:   "chain",
		SOR:      linalg.SOROptions{Tol: 1e-13, MaxIter: 25, Omega: 1.9},
		Recorder: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range pi {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("chain-solved pi sums to %g, want 1", sum)
	}
	if pi["up"] < 0.99 {
		t.Errorf("pi[up] = %g, want > 0.99", pi["up"])
	}
	root := tr.Finish()
	chain := findSpan(root, "guard.chain")
	if chain == nil {
		t.Fatal("no guard.chain span in trace")
	}
	if got, _ := chain.Attr("winner"); got != "gth" {
		t.Errorf("chain winner = %v, want gth", got)
	}
	if findSpan(chain, "attempt:sor") == nil || findSpan(chain, "attempt:gth") == nil {
		t.Errorf("chain span missing attempt children: %+v", chain.Children)
	}
}

// TestDTMCChainEscalatesOnOscillation runs the "chain" method on a
// periodic DTMC: power iteration oscillates forever, so the chain must
// escalate to the dense GTH solve of P−I, which handles periodicity.
func TestDTMCChainEscalatesOnOscillation(t *testing.T) {
	d := NewDTMC()
	// Bipartite (period-2) chain a↔{b}, c↔{b} with stationary vector
	// [1/4, 1/2, 1/4]. The uniform power-iteration start alternates between
	// two iterates forever, so the power step must fail and GTH on P−I win.
	for _, tr := range []struct {
		from, to string
		p        float64
	}{
		{"a", "b", 1}, {"b", "a", 0.5}, {"b", "c", 0.5}, {"c", "b", 1},
	} {
		if err := d.AddProb(tr.from, tr.to, tr.p); err != nil {
			t.Fatal(err)
		}
	}
	tr := obs.NewTrace("test")
	pi, err := d.SteadyStateWithOptions(SteadyStateOptions{Method: "chain", Recorder: tr})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.5, 0.25}
	for i, v := range pi {
		if math.Abs(v-want[i]) > 1e-12 {
			t.Errorf("pi[%d] = %g, want %g", i, v, want[i])
		}
	}
	root := tr.Finish()
	chain := findSpan(root, "guard.chain")
	if chain == nil {
		t.Fatal("no guard.chain span in trace")
	}
	if got, _ := chain.Attr("winner"); got != "gth" {
		t.Errorf("chain winner = %v, want gth", got)
	}
}

// findSpan walks the span tree for the first span with the given name.
func findSpan(s *obs.Span, name string) *obs.Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if got := findSpan(c, name); got != nil {
			return got
		}
	}
	return nil
}

// mustRate adds a transition or fails the test.
func mustRate(t *testing.T, c *CTMC, from, to string, rate float64) {
	t.Helper()
	if err := c.AddRate(from, to, rate); err != nil {
		t.Fatal(err)
	}
}
