package markov

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// TestCTMCChainEscalatesToGTH starves SOR so the "chain" method must fall
// back to GTH, and checks the trace records both attempts and the winner.
// The rates stay within one order of magnitude so the structural analyzer
// does not reorder the steps — escalation itself is under test here.
func TestCTMCChainEscalatesToGTH(t *testing.T) {
	c := NewCTMC()
	mustRate(t, c, "up", "degraded", 0.5)
	mustRate(t, c, "degraded", "up", 2.0)
	mustRate(t, c, "degraded", "down", 0.7)
	mustRate(t, c, "down", "degraded", 1.1)
	mustRate(t, c, "down", "dead", 0.3)
	mustRate(t, c, "dead", "up", 2.5)
	mustRate(t, c, "up", "dead", 0.2)
	tr := obs.NewTrace("test")
	pi, err := c.SteadyStateMapWithOptions(SteadyStateOptions{
		Method: "chain",
		// An over-relaxed omega and a starved sweep budget: SOR cannot
		// reach 1e-13 in 2 sweeps.
		SOR:      linalg.SOROptions{Tol: 1e-13, MaxIter: 2, Omega: 1.9},
		Recorder: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range pi {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("chain-solved pi sums to %g, want 1", sum)
	}
	root := tr.Finish()
	chain := findSpan(root, "guard.chain")
	if chain == nil {
		t.Fatal("no guard.chain span in trace")
	}
	if got, _ := chain.Attr("winner"); got != "gth" {
		t.Errorf("chain winner = %v, want gth", got)
	}
	if findSpan(chain, "attempt:sor") == nil || findSpan(chain, "attempt:gth") == nil {
		t.Errorf("chain span missing attempt children: %+v", chain.Children)
	}
}

// TestCTMCChainStiffHintPrefersGTH checks the structural pre-pass on a
// stiff chain: the steadystate span records the hint and the first (and
// only) attempt is GTH — the doomed SOR attempt is skipped entirely.
func TestCTMCChainStiffHintPrefersGTH(t *testing.T) {
	c := NewCTMC()
	mustRate(t, c, "up", "degraded", 1e-6)
	mustRate(t, c, "degraded", "up", 1e6)
	mustRate(t, c, "degraded", "down", 2e6)
	mustRate(t, c, "down", "degraded", 1e-6)
	mustRate(t, c, "down", "dead", 1e-3)
	mustRate(t, c, "dead", "up", 5e6)
	mustRate(t, c, "up", "dead", 1e-9)
	tr := obs.NewTrace("test")
	pi, err := c.SteadyStateMapWithOptions(SteadyStateOptions{
		Method:   "chain",
		SOR:      linalg.SOROptions{Tol: 1e-13, MaxIter: 25, Omega: 1.9},
		Recorder: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pi["up"] < 0.99 {
		t.Errorf("pi[up] = %g, want > 0.99", pi["up"])
	}
	root := tr.Finish()
	ss := findSpan(root, "markov.steadystate")
	if ss == nil {
		t.Fatal("no markov.steadystate span")
	}
	if got, _ := ss.Attr("struct_prefer"); got != "gth" {
		t.Errorf("struct_prefer = %v, want gth", got)
	}
	if got, ok := ss.Attr("struct_hint"); !ok || got == "" {
		t.Errorf("struct_hint missing, attrs = %+v", ss.Attrs)
	}
	chain := findSpan(root, "guard.chain")
	if chain == nil {
		t.Fatal("no guard.chain span in trace")
	}
	if got, _ := chain.Attr("winner"); got != "gth" {
		t.Errorf("chain winner = %v, want gth", got)
	}
	if findSpan(chain, "attempt:sor") != nil {
		t.Errorf("stiff chain still attempted sor before gth: %+v", chain.Children)
	}
}

// TestCTMCChainRestrictsToRecurrentClass solves a reducible chain (one
// recurrent class plus transient feeder states) with the chain method:
// the structural pre-pass restricts the solve to the recurrent class and
// zero-pads the transients.
func TestCTMCChainRestrictsToRecurrentClass(t *testing.T) {
	c := NewCTMC()
	mustRate(t, c, "boot", "warm", 3.0)
	mustRate(t, c, "warm", "up", 2.0)
	mustRate(t, c, "up", "down", 0.5)
	mustRate(t, c, "down", "up", 1.5)
	tr := obs.NewTrace("test")
	pi, err := c.SteadyStateMapWithOptions(SteadyStateOptions{Method: "chain", Recorder: tr})
	if err != nil {
		t.Fatal(err)
	}
	if pi["boot"] != 0 || pi["warm"] != 0 {
		t.Errorf("transient states carry mass: %+v", pi)
	}
	// up/down two-state chain: pi ∝ [mu, lambda] = [1.5, 0.5]/2.
	if math.Abs(pi["up"]-0.75) > 1e-12 || math.Abs(pi["down"]-0.25) > 1e-12 {
		t.Errorf("recurrent-class solution wrong: %+v", pi)
	}
	root := tr.Finish()
	ss := findSpan(root, "markov.steadystate")
	if ss == nil {
		t.Fatal("no markov.steadystate span")
	}
	if got, _ := ss.Attr("struct_reduce"); got != "restrict-recurrent" {
		t.Errorf("struct_reduce = %v, want restrict-recurrent", got)
	}
	if got, _ := ss.Attr("restrict_states"); got != int64(2) {
		t.Errorf("restrict_states = %v (%T), want 2", got, got)
	}
}

// TestChainMethodOrderUnderHints is the table-driven contract for how the
// analyzer hints reorder the fallback chain.
func TestChainMethodOrderUnderHints(t *testing.T) {
	cases := []struct {
		name       string
		rates      []Transition3
		firstSteps []string // expected attempt order prefix
		prefer     string   // expected struct_prefer attr ("" = absent)
	}{
		{
			name: "benign keeps sor first",
			rates: []Transition3{
				{"a", "b", 1.0}, {"b", "a", 2.0},
			},
			firstSteps: []string{"attempt:sor"},
			prefer:     "",
		},
		{
			name: "stiff goes gth first",
			rates: []Transition3{
				{"a", "b", 1e-9}, {"b", "a", 5e6},
			},
			firstSteps: []string{"attempt:gth"},
			prefer:     "gth",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCTMC()
			for _, r := range tc.rates {
				mustRate(t, c, r.From, r.To, r.Rate)
			}
			tr := obs.NewTrace("test")
			if _, err := c.SteadyStateWithOptions(SteadyStateOptions{Method: "chain", Recorder: tr}); err != nil {
				t.Fatal(err)
			}
			root := tr.Finish()
			chain := findSpan(root, "guard.chain")
			if chain == nil {
				t.Fatal("no guard.chain span")
			}
			for i, want := range tc.firstSteps {
				if i >= len(chain.Children) || chain.Children[i].Name != want {
					t.Fatalf("attempt order = %v, want prefix %v", spanNames(chain.Children), tc.firstSteps)
				}
			}
			ss := findSpan(root, "markov.steadystate")
			got, _ := ss.Attr("struct_prefer")
			if tc.prefer == "" && got != nil {
				t.Errorf("unexpected struct_prefer = %v", got)
			}
			if tc.prefer != "" && got != tc.prefer {
				t.Errorf("struct_prefer = %v, want %q", got, tc.prefer)
			}
		})
	}
}

// Transition3 is a test helper triple.
type Transition3 struct {
	From, To string
	Rate     float64
}

func spanNames(spans []*obs.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// TestDTMCChainEscalatesOnOscillation runs the "chain" method on a
// periodic DTMC: power iteration would oscillate forever, and the
// structural analyzer detects the period up front and moves the dense GTH
// solve of P−I first, so the doomed power attempt never runs.
func TestDTMCChainEscalatesOnOscillation(t *testing.T) {
	d := NewDTMC()
	// Bipartite (period-2) chain a↔{b}, c↔{b} with stationary vector
	// [1/4, 1/2, 1/4]. The uniform power-iteration start alternates between
	// two iterates forever, so the power step must fail and GTH on P−I win.
	for _, tr := range []struct {
		from, to string
		p        float64
	}{
		{"a", "b", 1}, {"b", "a", 0.5}, {"b", "c", 0.5}, {"c", "b", 1},
	} {
		if err := d.AddProb(tr.from, tr.to, tr.p); err != nil {
			t.Fatal(err)
		}
	}
	tr := obs.NewTrace("test")
	pi, err := d.SteadyStateWithOptions(SteadyStateOptions{Method: "chain", Recorder: tr})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.5, 0.25}
	for i, v := range pi {
		if math.Abs(v-want[i]) > 1e-12 {
			t.Errorf("pi[%d] = %g, want %g", i, v, want[i])
		}
	}
	root := tr.Finish()
	chain := findSpan(root, "guard.chain")
	if chain == nil {
		t.Fatal("no guard.chain span in trace")
	}
	if got, _ := chain.Attr("winner"); got != "gth" {
		t.Errorf("chain winner = %v, want gth", got)
	}
	if findSpan(chain, "attempt:power") != nil {
		t.Errorf("periodic chain still attempted power iteration: %+v", chain.Children)
	}
	ss := findSpan(root, "markov.dtmc.steadystate")
	if ss == nil {
		t.Fatal("no markov.dtmc.steadystate span")
	}
	if got, _ := ss.Attr("struct_prefer"); got != "gth" {
		t.Errorf("struct_prefer = %v, want gth", got)
	}
}

// findSpan walks the span tree for the first span with the given name.
func findSpan(s *obs.Span, name string) *obs.Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if got := findSpan(c, name); got != nil {
			return got
		}
	}
	return nil
}

// mustRate adds a transition or fails the test.
func mustRate(t *testing.T, c *CTMC, from, to string, rate float64) {
	t.Helper()
	if err := c.AddRate(from, to, rate); err != nil {
		t.Fatal(err)
	}
}
