package markov

import (
	"fmt"

	"repro/internal/relstruct"
)

// This file connects the chains to internal/relstruct's static analysis.
// The "chain" solver method consults the analysis before running: a stiff
// or periodic chain reorders its fallback steps exact-method-first, and a
// reducible chain with a single recurrent class solves only that class
// and zero-pads the transient states (which carry no stationary mass).

// structInput converts a chain's transition list for relstruct. State
// indices already match (both packages intern names in first-appearance
// order), so no renaming is needed.
func structInput(names []string, trans []transition, discrete bool) relstruct.Input {
	ts := make([]relstruct.Transition, len(trans))
	for i, t := range trans {
		ts[i] = relstruct.Transition{From: t.from, To: t.to, Weight: t.rate}
	}
	return relstruct.Input{States: len(names), Names: names, Trans: ts, Discrete: discrete}
}

// StructReport statically analyzes the chain (SCC condensation,
// stiffness, lumpability, solver hint) without solving it.
func (c *CTMC) StructReport() (*relstruct.StructReport, error) {
	return relstruct.Analyze(structInput(c.names, c.trans, false))
}

// StructReport statically analyzes the discrete chain, including the
// periodicity of its recurrent classes.
func (d *DTMC) StructReport() (*relstruct.StructReport, error) {
	return relstruct.Analyze(structInput(d.names, d.trans, true))
}

// restrictRecurrent builds the sub-chain over the chain's single
// recurrent class, returning it with the original state indices of its
// members (ascending; member j of the sub-chain is state members[j]).
func (c *CTMC) restrictRecurrent(rep *relstruct.StructReport) (*CTMC, []int, error) {
	members := rep.RecurrentMembers(0)
	if len(members) == 0 {
		return nil, nil, fmt.Errorf("markov: no recurrent class to restrict to")
	}
	pos := make(map[int]int, len(members))
	sub := NewCTMC()
	for j, s := range members {
		pos[s] = j
		sub.State(c.names[s])
	}
	for _, t := range c.trans {
		jf, ok := pos[t.from]
		if !ok {
			continue
		}
		jt, ok := pos[t.to]
		if !ok {
			// A recurrent class is closed; an escaping edge means the
			// report does not describe this chain.
			return nil, nil, fmt.Errorf("markov: transition %q -> %q leaves the recurrent class",
				c.names[t.from], c.names[t.to])
		}
		sub.trans = append(sub.trans, transition{from: jf, to: jt, rate: t.rate})
	}
	return sub, members, nil
}
