package markov

import (
	"context"
	"fmt"
	"math"

	"repro/internal/failpoint"
	"repro/internal/guard"
	"repro/internal/linalg"
	"repro/internal/obs"
)

// fpUnifStep is the per-step failpoint inside the uniformization walks
// (Transient and CumulativeTransient share it): an injected fault aborts
// the transient solve with a typed error exactly like a genuine one.
const fpUnifStep = "markov.unif.step"

// TransientOptions tunes the uniformization computation.
type TransientOptions struct {
	// Tol is the allowed truncation error on the Poisson mass (default 1e-12).
	Tol float64
	// SteadyStateDetection stops the power sequence when successive vectors
	// agree to within Tol, replacing the tail with the converged vector.
	SteadyStateDetection bool
	// Recorder receives uniformization telemetry: truncation points,
	// per-step vector deltas, and early-stop decisions (nil disables).
	// Recording computes one extra L∞ diff per step when steady-state
	// detection is off.
	Recorder obs.Recorder
	// Ctx interrupts the power sequence between matrix powers; nil never
	// interrupts.
	Ctx context.Context
}

// Transient computes the state-probability vector p(t) = p0·e^{Qt} by
// Jensen's uniformization with stable Poisson weighting:
//
//	p(t) = Σ_k Poisson(qt; k) · p0·P^k,  P = I + Q/q,  q ≥ max_i |q_ii|.
//
// Uniformization is the standard transient solver for stiff availability
// models because every term is nonnegative — there is no subtractive
// cancellation.
func (c *CTMC) Transient(t float64, p0 []float64, opts TransientOptions) ([]float64, error) {
	v, err := c.checkInitial(p0)
	if err != nil {
		return nil, err
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("markov transient: bad time %g", t)
	}
	if t == 0 { //numvet:allow float-eq t exactly 0 returns the initial vector unchanged
		return v, nil
	}
	q, err := c.Generator()
	if err != nil {
		return nil, err
	}
	unif, rate, err := uniformized(q)
	if err != nil {
		return nil, err
	}
	if rate == 0 { //numvet:allow float-eq exactly-zero uniformization rate means no transitions
		return v, nil // no transitions at all
	}
	if opts.Tol == 0 { //numvet:allow float-eq zero means unset; option-default sentinel
		opts.Tol = 1e-12
	}
	weights, left, err := poissonWeights(rate*t, opts.Tol)
	if err != nil {
		return nil, err
	}
	kmax := left + len(weights) - 1
	rec := obs.Or(opts.Recorder)
	tracing := rec.Enabled()
	if tracing {
		rec = rec.Span("markov.transient",
			obs.S("solver", "uniformization"), obs.I("states", len(v)),
			obs.F("t", t), obs.F("unif_rate", rate), obs.F("tol", opts.Tol),
			obs.I("poisson_left", left), obs.I("poisson_right", kmax),
			obs.I("poisson_terms", len(weights)))
		defer rec.End()
	}
	out := make([]float64, len(v))
	prev := linalg.Clone(v)
	// Walk k = 0,1,2,...: accumulate weights[k-left]·(p0·P^k).
	steps, earlyStop := 0, false
	for k := 0; k <= kmax; k++ {
		if err := guard.Ctx(opts.Ctx, "markov.transient", k, math.NaN()); err != nil {
			guard.RecordInterrupt(rec, err)
			return nil, err
		}
		if err := failpoint.InjectCtx(opts.Ctx, fpUnifStep); err != nil {
			return nil, err
		}
		if k > 0 {
			next, err := unif.VecMul(prev)
			if err != nil {
				return nil, err
			}
			steps = k
			if opts.SteadyStateDetection || tracing {
				d, _ := linalg.MaxAbsDiff(next, prev)
				if tracing {
					rec.Iter(k, d)
				}
				if opts.SteadyStateDetection && d < opts.Tol {
					// Remaining Poisson mass lands on the converged vector.
					var remaining float64
					for j := k - left; j < len(weights); j++ {
						if j >= 0 {
							remaining += weights[j]
						}
					}
					if err := linalg.AXPY(remaining, next, out); err != nil {
						return nil, err
					}
					prev = next
					earlyStop = true
					break
				}
			}
			prev = next
		}
		if k >= left {
			if err := linalg.AXPY(weights[k-left], prev, out); err != nil {
				return nil, err
			}
		}
	}
	if tracing {
		early := 0
		if earlyStop {
			early = 1
		}
		rec.Set(obs.I("steps", steps), obs.I("early_stop", early))
	}
	// Guard against tiny negative round-off and renormalize.
	for i, x := range out {
		if x < 0 {
			out[i] = 0
		}
	}
	if err := linalg.Normalize1(out); err != nil {
		return nil, fmt.Errorf("markov transient: %w", err)
	}
	return out, nil
}

// CumulativeTransient computes L(t) = ∫₀ᵗ p(u) du, the expected total time
// spent in each state during [0, t]. Dividing by t gives the interval
// availability when summed over up states:
//
//	L(t) = (1/q) Σ_k (1 - Σ_{j≤k} Poisson(qt; j)) · p0·P^k.
func (c *CTMC) CumulativeTransient(t float64, p0 []float64, opts TransientOptions) ([]float64, error) {
	v, err := c.checkInitial(p0)
	if err != nil {
		return nil, err
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("markov cumulative transient: bad time %g", t)
	}
	out := make([]float64, len(v))
	if t == 0 { //numvet:allow float-eq t exactly 0 returns zero occupancy
		return out, nil
	}
	q, err := c.Generator()
	if err != nil {
		return nil, err
	}
	unif, rate, err := uniformized(q)
	if err != nil {
		return nil, err
	}
	if rate == 0 { //numvet:allow float-eq exactly-zero uniformization rate means no transitions
		// No transitions: occupancy is p0·t.
		for i := range out {
			out[i] = v[i] * t
		}
		return out, nil
	}
	if opts.Tol == 0 { //numvet:allow float-eq zero means unset; option-default sentinel
		opts.Tol = 1e-12
	}
	weights, left, err := poissonWeights(rate*t, opts.Tol)
	if err != nil {
		return nil, err
	}
	kmax := left + len(weights) - 1
	rec := obs.Or(opts.Recorder)
	tracing := rec.Enabled()
	if tracing {
		rec = rec.Span("markov.cumtransient",
			obs.S("solver", "uniformization"), obs.I("states", len(v)),
			obs.F("t", t), obs.F("unif_rate", rate), obs.F("tol", opts.Tol),
			obs.I("poisson_left", left), obs.I("poisson_right", kmax),
			obs.I("poisson_terms", len(weights)))
		defer rec.End()
	}
	// tailMass[k] = 1 - Σ_{j≤k} pois(j); computed from the truncated weights.
	// Mass below `left` is within tolerance and treated as already summed.
	prev := linalg.Clone(v)
	cum := 0.0
	for k := 0; k <= kmax; k++ {
		if err := guard.Ctx(opts.Ctx, "markov.cumtransient", k, math.NaN()); err != nil {
			guard.RecordInterrupt(rec, err)
			return nil, err
		}
		if err := failpoint.InjectCtx(opts.Ctx, fpUnifStep); err != nil {
			return nil, err
		}
		if k > 0 {
			next, err := unif.VecMul(prev)
			if err != nil {
				return nil, err
			}
			prev = next
		}
		if k >= left {
			cum += weights[k-left]
		}
		tail := 1 - cum
		if tail < 0 {
			tail = 0
		}
		if tracing && k > 0 {
			// The Poisson tail is the natural residual: the occupancy mass
			// still unaccounted for after k powers.
			rec.Iter(k, tail)
		}
		if err := linalg.AXPY(tail/rate, prev, out); err != nil {
			return nil, err
		}
		if tail == 0 { //numvet:allow float-eq Poisson tail underflows to exactly 0 at truncation
			break
		}
	}
	return out, nil
}

// IntervalAvailability returns the expected fraction of [0, t] spent in the
// named up states, starting from p0.
func (c *CTMC) IntervalAvailability(t float64, p0 []float64, upStates []string, opts TransientOptions) (float64, error) {
	if t <= 0 {
		return 0, fmt.Errorf("markov interval availability: t=%g must be positive", t)
	}
	occ, err := c.CumulativeTransient(t, p0, opts)
	if err != nil {
		return 0, err
	}
	up, err := c.ProbSum(occ, upStates...)
	if err != nil {
		return 0, err
	}
	return up / t, nil
}

// uniformized returns P = I + Q/q in CSR form together with the
// uniformization rate q (slightly above the largest exit rate).
func uniformized(q *linalg.CSR) (*linalg.CSR, float64, error) {
	n := q.Rows()
	var maxExit float64
	for i := 0; i < n; i++ {
		if d := -q.At(i, i); d > maxExit {
			maxExit = d
		}
	}
	if maxExit == 0 { //numvet:allow float-eq exactly-zero exit rate means no transitions
		return nil, 0, nil
	}
	rate := maxExit * 1.02
	coo := linalg.NewCOO(n, n)
	for i := 0; i < n; i++ {
		var diag float64
		var rowErr error
		q.RowRange(i, func(col int, val float64) {
			if col == i {
				diag = val
				return
			}
			if err := coo.Add(i, col, val/rate); err != nil && rowErr == nil {
				rowErr = err
			}
		})
		if rowErr != nil {
			return nil, 0, rowErr
		}
		if err := coo.Add(i, i, 1+diag/rate); err != nil {
			return nil, 0, err
		}
	}
	return coo.ToCSR(), rate, nil
}

// poissonWeights returns normalized Poisson(lambda) probabilities for
// k = left..right where the two-sided truncated mass is within tol. The
// weights are computed by recursion from the mode for numerical stability
// (a simplified Fox–Glynn scheme).
func poissonWeights(lambda, tol float64) ([]float64, int, error) {
	if lambda < 0 {
		return nil, 0, fmt.Errorf("markov: negative poisson rate %g", lambda)
	}
	if lambda == 0 { //numvet:allow float-eq lambda exactly 0 is the degenerate Poisson point mass
		return []float64{1}, 0, nil
	}
	mode := int(math.Floor(lambda))
	sd := math.Sqrt(lambda)
	left := mode - int(8*sd) - 10
	if left < 0 {
		left = 0
	}
	right := mode + int(8*sd) + 20
	w := make([]float64, right-left+1)
	w[mode-left] = 1
	// Downward recursion: p(k-1) = p(k)·k/λ.
	for k := mode; k > left; k-- {
		w[k-1-left] = w[k-left] * float64(k) / lambda
	}
	// Upward recursion: p(k+1) = p(k)·λ/(k+1).
	for k := mode; k < right; k++ {
		w[k+1-left] = w[k-left] * lambda / float64(k+1)
	}
	total := linalg.Sum(w)
	if total <= 0 || math.IsNaN(total) {
		return nil, 0, fmt.Errorf("markov: poisson weight normalization failed (lambda=%g)", lambda)
	}
	linalg.Scale(w, 1/total)
	// Trim negligible tails to keep the power sequence short.
	lo, hi := 0, len(w)-1
	var mass float64
	for lo < hi && mass+w[lo] < tol/2 {
		mass += w[lo]
		lo++
	}
	mass = 0
	for hi > lo && mass+w[hi] < tol/2 {
		mass += w[hi]
		hi--
	}
	trimmed := w[lo : hi+1]
	out := make([]float64, len(trimmed))
	copy(out, trimmed)
	total = linalg.Sum(out)
	linalg.Scale(out, 1/total)
	return out, left + lo, nil
}
