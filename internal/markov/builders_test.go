package markov

import (
	"math"
	"testing"
)

func TestBuildKOfNMatchesBinomialWithAmpleCrews(t *testing.T) {
	// With one crew per unit (independent repair) the steady state is
	// binomial with p = mu/(lam+mu).
	lam, mu := 0.2, 2.0
	m, err := BuildKOfN(KOfNOptions{
		N: 4, K: 2, FailureRate: lam, RepairRate: mu, Crews: 4, FailInDown: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Availability()
	if err != nil {
		t.Fatal(err)
	}
	p := mu / (lam + mu)
	var want float64
	for up := 2; up <= 4; up++ {
		want += binom(4, up) * math.Pow(p, float64(up)) * math.Pow(1-p, float64(4-up))
	}
	if relErr(a, want) > 1e-12 {
		t.Errorf("availability = %.12g, want binomial %.12g", a, want)
	}
}

func binom(n, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}

func TestBuildKOfNSingleCrewWorseThanAmple(t *testing.T) {
	base := KOfNOptions{N: 5, K: 3, FailureRate: 0.3, RepairRate: 1.0, FailInDown: true}
	one := base
	one.Crews = 1
	many := base
	many.Crews = 5
	m1, err := BuildKOfN(one)
	if err != nil {
		t.Fatal(err)
	}
	mN, err := BuildKOfN(many)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := m1.Availability()
	if err != nil {
		t.Fatal(err)
	}
	aN, err := mN.Availability()
	if err != nil {
		t.Fatal(err)
	}
	if a1 >= aN {
		t.Errorf("single crew %g should be worse than five crews %g", a1, aN)
	}
}

func TestBuildKOfNMTTFClosedForm(t *testing.T) {
	// 1-of-2 (parallel) with single crew: MTTF = (3λ+μ)/(2λ²).
	lam, mu := 0.4, 3.0
	m, err := BuildKOfN(KOfNOptions{N: 2, K: 1, FailureRate: lam, RepairRate: mu, Crews: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.MTTF()
	if err != nil {
		t.Fatal(err)
	}
	want := (3*lam + mu) / (2 * lam * lam)
	if relErr(got, want) > 1e-12 {
		t.Errorf("MTTF = %g, want %g", got, want)
	}
}

func TestBuildKOfNStopsAtFailureWhenConfigured(t *testing.T) {
	m, err := BuildKOfN(KOfNOptions{N: 3, K: 2, FailureRate: 0.1, RepairRate: 1, Crews: 1})
	if err != nil {
		t.Fatal(err)
	}
	// FailInDown=false: states f0..f2 only (f2 = down), no f3.
	if m.Chain.NumStates() != 3 {
		t.Errorf("states = %d, want 3", m.Chain.NumStates())
	}
	full, err := BuildKOfN(KOfNOptions{N: 3, K: 2, FailureRate: 0.1, RepairRate: 1, Crews: 1, FailInDown: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Chain.NumStates() != 4 {
		t.Errorf("states = %d, want 4", full.Chain.NumStates())
	}
}

func TestBuildKOfNValidation(t *testing.T) {
	bad := []KOfNOptions{
		{N: 0, K: 1, FailureRate: 1, RepairRate: 1, Crews: 1},
		{N: 2, K: 3, FailureRate: 1, RepairRate: 1, Crews: 1},
		{N: 2, K: 1, FailureRate: 0, RepairRate: 1, Crews: 1},
		{N: 2, K: 1, FailureRate: 1, RepairRate: 1, Crews: 0},
	}
	for i, opts := range bad {
		if _, err := BuildKOfN(opts); err == nil {
			t.Errorf("case %d accepted: %+v", i, opts)
		}
	}
}

func TestStandbyColdBeatsWarmBeatsHot(t *testing.T) {
	mk := func(kind StandbyKind) float64 {
		t.Helper()
		opts := StandbyOptions{
			Kind: kind, FailureRate: 0.1, RepairRate: 1.0, Coverage: 0.98,
		}
		if kind == WarmStandby {
			opts.DormancyFactor = 0.3
		}
		m, err := BuildStandbyPair(opts)
		if err != nil {
			t.Fatal(err)
		}
		mttf, err := m.MTTF()
		if err != nil {
			t.Fatal(err)
		}
		return mttf
	}
	cold, warm, hot := mk(ColdStandby), mk(WarmStandby), mk(HotStandby)
	if !(cold > warm && warm > hot) {
		t.Errorf("MTTF ordering violated: cold %g, warm %g, hot %g", cold, warm, hot)
	}
}

func TestStandbyColdPerfectCoverageClosedForm(t *testing.T) {
	// Cold standby, perfect coverage, no repair of MTTF path… with repair
	// the classic result is MTTF = (2λ+μ)/λ². Verify.
	lam, mu := 0.2, 1.5
	m, err := BuildStandbyPair(StandbyOptions{
		Kind: ColdStandby, FailureRate: lam, RepairRate: mu, Coverage: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.MTTF()
	if err != nil {
		t.Fatal(err)
	}
	want := (2*lam + mu) / (lam * lam)
	if relErr(got, want) > 1e-12 {
		t.Errorf("MTTF = %g, want %g", got, want)
	}
}

func TestStandbyCoverageSensitivity(t *testing.T) {
	// Lower coverage → lower MTTF and availability.
	av := func(cov float64) (float64, float64) {
		t.Helper()
		m, err := BuildStandbyPair(StandbyOptions{
			Kind: HotStandby, FailureRate: 0.05, RepairRate: 1, Coverage: cov,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := m.Availability()
		if err != nil {
			t.Fatal(err)
		}
		mttf, err := m.MTTF()
		if err != nil {
			t.Fatal(err)
		}
		return a, mttf
	}
	a99, m99 := av(0.99)
	a90, m90 := av(0.90)
	if !(a99 > a90 && m99 > m90) {
		t.Errorf("coverage should help: A %g vs %g, MTTF %g vs %g", a99, a90, m99, m90)
	}
}

func TestStandbyValidation(t *testing.T) {
	bad := []StandbyOptions{
		{Kind: ColdStandby, FailureRate: 0, RepairRate: 1, Coverage: 1},
		{Kind: ColdStandby, FailureRate: 1, RepairRate: 1, Coverage: 2},
		{Kind: WarmStandby, FailureRate: 1, RepairRate: 1, Coverage: 1, DormancyFactor: 1.5},
		{Kind: StandbyKind(99), FailureRate: 1, RepairRate: 1, Coverage: 1},
	}
	for i, opts := range bad {
		if _, err := BuildStandbyPair(opts); err == nil {
			t.Errorf("case %d accepted: %+v", i, opts)
		}
	}
}
