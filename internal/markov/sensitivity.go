package markov

import (
	"fmt"

	"repro/internal/linalg"
)

// SteadyStateSensitivity computes dπ/dθ for a parameter θ, given the
// derivative of each transition rate with respect to θ (dRate, returning 0
// for rates that do not depend on θ). It solves the augmented system
//
//	dπ·Q = -π·dQ,   Σ_i dπ_i = 0,
//
// densely (sensitivity analysis is typically run on the small chains used
// for design exploration). The result is keyed by state name.
//
// Parametric sensitivities are the gradient half of the tutorial's
// "parametric uncertainty" story: they identify which input rates dominate
// the output measure.
func (c *CTMC) SteadyStateSensitivity(dRate func(from, to string) float64) (map[string]float64, error) {
	n := len(c.names)
	if n == 0 {
		return nil, ErrEmptyChain
	}
	pi, err := c.SteadyState()
	if err != nil {
		return nil, err
	}
	// Build dQ densely.
	dq := linalg.NewDense(n, n)
	for _, t := range c.trans {
		d := dRate(c.names[t.from], c.names[t.to])
		if d != 0 { //numvet:allow float-eq structurally-zero derivative entries are omitted
			dq.Add(t.from, t.to, d)
			dq.Add(t.from, t.from, -d)
		}
	}
	// rhs_j = -(π·dQ)_j
	piDQ, err := dq.VecMul(pi)
	if err != nil {
		return nil, err
	}
	// Unknown x = dπ satisfies x·Q = -π·dQ with Σx = 0. Write as
	// Aᵀ·x = b where A stacks Q columns with one column replaced by the
	// normalization constraint (Q is rank n-1).
	qg, err := c.Generator()
	if err != nil {
		return nil, err
	}
	qd := qg.ToDense()
	a := linalg.NewDense(n, n)
	b := make([]float64, n)
	for j := 0; j < n; j++ {
		if j == n-1 {
			// Normalization row: Σ_i x_i = 0.
			for i := 0; i < n; i++ {
				a.Set(j, i, 1)
			}
			b[j] = 0
			continue
		}
		// Equation j: Σ_i x_i·Q(i,j) = -piDQ[j].
		for i := 0; i < n; i++ {
			a.Set(j, i, qd.At(i, j))
		}
		b[j] = -piDQ[j]
	}
	x, err := linalg.LUSolve(a, b)
	if err != nil {
		return nil, fmt.Errorf("markov sensitivity: %w", err)
	}
	out := make(map[string]float64, n)
	for i, name := range c.names {
		out[name] = x[i]
	}
	return out, nil
}

// MeasureSensitivity returns d(Σ_{s∈S} π_s)/dθ for a set of states S,
// composing SteadyStateSensitivity.
func (c *CTMC) MeasureSensitivity(states []string, dRate func(from, to string) float64) (float64, error) {
	dpi, err := c.SteadyStateSensitivity(dRate)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, name := range states {
		v, ok := dpi[name]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrUnknownState, name)
		}
		s += v
	}
	return s, nil
}
