package markov

import (
	"math"
	"testing"
)

func TestReliabilityCurveParallelClosedForm(t *testing.T) {
	// Two-unit parallel without repair: R(t) = 2e^{-λt} - e^{-2λt}.
	lam := 0.5
	c := NewCTMC()
	_ = c.AddRate("2", "1", 2*lam)
	_ = c.AddRate("1", "0", lam)
	times := []float64{0.1, 0.5, 1, 3, 8}
	curve, err := c.ReliabilityCurve(times, "2", "0")
	if err != nil {
		t.Fatal(err)
	}
	for k, tt := range times {
		want := 2*math.Exp(-lam*tt) - math.Exp(-2*lam*tt)
		if math.Abs(curve[k]-want) > 1e-9 {
			t.Errorf("R(%g) = %g, want %g", tt, curve[k], want)
		}
	}
}

func TestReliabilityWithRepairExceedsWithout(t *testing.T) {
	// Repair of the degraded state extends mission reliability even though
	// availability chains would hide the first failure.
	lam, mu := 0.3, 4.0
	norep := NewCTMC()
	_ = norep.AddRate("2", "1", 2*lam)
	_ = norep.AddRate("1", "0", lam)
	rep := NewCTMC()
	_ = rep.AddRate("2", "1", 2*lam)
	_ = rep.AddRate("1", "0", lam)
	_ = rep.AddRate("1", "2", mu)
	// Extra: the full availability chain even repairs from "0"; the
	// reliability computation must ignore that path.
	_ = rep.AddRate("0", "1", mu)
	tt := 2.0
	r1, err := norep.ReliabilityAt(tt, "2", "0")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rep.ReliabilityAt(tt, "2", "0")
	if err != nil {
		t.Fatal(err)
	}
	if r2 <= r1 {
		t.Errorf("repair should raise R(t): %g vs %g", r2, r1)
	}
	// R(t) must be monotone decreasing despite the repair-from-0 edge in
	// the source chain (proof the absorbing copy is used).
	curve, err := rep.ReliabilityCurve([]float64{1, 5, 20, 100}, "2", "0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-12 {
			t.Errorf("R not monotone: %v", curve)
		}
	}
}

func TestReliabilityMatchesMTTFIntegral(t *testing.T) {
	// ∫R(t)dt = MTTF: check with a coarse trapezoid on a fine grid.
	lam := 1.0
	c := NewCTMC()
	_ = c.AddRate("2", "1", 2*lam)
	_ = c.AddRate("1", "0", lam)
	mttf, err := c.MTTF("2", "0")
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	h := 20.0 / n
	times := make([]float64, n+1)
	for i := range times {
		times[i] = float64(i) * h
	}
	curve, err := c.ReliabilityCurve(times, "2", "0")
	if err != nil {
		t.Fatal(err)
	}
	var integral float64
	for i := 1; i < len(curve); i++ {
		integral += (curve[i] + curve[i-1]) / 2 * h
	}
	if math.Abs(integral-mttf) > 1e-3 {
		t.Errorf("∫R = %g, MTTF = %g", integral, mttf)
	}
}

func TestReliabilityValidation(t *testing.T) {
	c := twoState(t, 1, 1)
	if _, err := c.ReliabilityAt(1, "up"); err == nil {
		t.Error("no failure states accepted")
	}
	if _, err := c.ReliabilityAt(1, "ghost", "down"); err == nil {
		t.Error("unknown initial accepted")
	}
}
