package markov

import (
	"errors"
	"math"
	"math/bits"
	"strconv"
	"strings"
	"testing"
)

// identicalBitmaskChain builds the 2^n chain of n IDENTICAL components
// with a single shared repairer (lowest failed index first).
func identicalBitmaskChain(t *testing.T, n int, lam, mu float64) *CTMC {
	t.Helper()
	c := NewCTMC()
	name := func(mask int) string { return "m" + strconv.Itoa(mask) }
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				if err := c.AddRate(name(mask), name(mask|1<<i), lam); err != nil {
					t.Fatal(err)
				}
			}
		}
		if mask != 0 {
			low := 0
			for mask&(1<<low) == 0 {
				low++
			}
			if err := c.AddRate(name(mask), name(mask&^(1<<low)), mu); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

func TestLumpBitmaskToCounts(t *testing.T) {
	n := 6
	lam, mu := 0.02, 1.0
	detailed := identicalBitmaskChain(t, n, lam, mu)
	if detailed.NumStates() != 64 {
		t.Fatalf("detailed states = %d", detailed.NumStates())
	}
	lumped, err := detailed.Lump(func(state string) string {
		mask, err := strconv.Atoi(strings.TrimPrefix(state, "m"))
		if err != nil {
			t.Fatal(err)
		}
		return "k" + strconv.Itoa(bits.OnesCount(uint(mask)))
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lumped.NumStates() != n+1 {
		t.Fatalf("lumped states = %d, want %d", lumped.NumStates(), n+1)
	}
	// Lumped steady state must match the aggregated detailed steady state.
	piD, err := detailed.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	piL, err := lumped.SteadyStateMap()
	if err != nil {
		t.Fatal(err)
	}
	agg := make(map[string]float64, n+1)
	for i, name := range detailed.StateNames() {
		mask, _ := strconv.Atoi(strings.TrimPrefix(name, "m"))
		agg["k"+strconv.Itoa(bits.OnesCount(uint(mask)))] += piD[i]
	}
	for k, want := range agg {
		if math.Abs(piL[k]-want) > 1e-11 {
			t.Errorf("pi[%s] = %g, want %g", k, piL[k], want)
		}
	}
	// The lumped chain is the textbook birth-death: check one rate.
	// From k0, failure rate is n·λ.
	q, err := lumped.Generator()
	if err != nil {
		t.Fatal(err)
	}
	i0, _ := lumped.Index("k0")
	i1, _ := lumped.Index("k1")
	if math.Abs(q.At(i0, i1)-float64(n)*lam) > 1e-12 {
		t.Errorf("lumped failure rate = %g, want %g", q.At(i0, i1), float64(n)*lam)
	}
}

func TestLumpRejectsAsymmetricChain(t *testing.T) {
	// Distinct per-component rates break lumpability by counts.
	c := NewCTMC()
	_ = c.AddRate("m0", "m1", 1.0) // comp 0 fails at 1.0
	_ = c.AddRate("m0", "m2", 2.0) // comp 1 fails at 2.0
	_ = c.AddRate("m1", "m3", 2.0)
	_ = c.AddRate("m2", "m3", 1.0)
	_ = c.AddRate("m1", "m0", 5)
	_ = c.AddRate("m2", "m0", 5)
	_ = c.AddRate("m3", "m1", 5)
	counts := map[string]string{"m0": "k0", "m1": "k1", "m2": "k1", "m3": "k2"}
	_, err := c.Lump(func(s string) string { return counts[s] }, 0)
	if err == nil {
		t.Fatal("asymmetric chain lumped")
	}
	if !errors.Is(err, ErrNotLumpable) {
		t.Fatalf("want ErrNotLumpable, got %v", err)
	}
	// The same chain IS lumpable with the trivial identity partition.
	if _, err := c.Lump(func(s string) string { return s }, 0); err != nil {
		t.Fatalf("identity partition: %v", err)
	}
}

func TestLumpValidation(t *testing.T) {
	empty := NewCTMC()
	if _, err := empty.Lump(func(s string) string { return s }, 0); !errors.Is(err, ErrEmptyChain) {
		t.Errorf("empty: %v", err)
	}
	c := twoState(t, 1, 1)
	if _, err := c.Lump(nil, 0); err == nil {
		t.Error("nil partition accepted")
	}
	if _, err := c.Lump(func(string) string { return "" }, 0); err == nil {
		t.Error("empty block accepted")
	}
}

func TestLumpTransientAgreement(t *testing.T) {
	// Transient measures survive lumping: P(k failed at t) identical.
	n := 4
	lam, mu := 0.1, 2.0
	detailed := identicalBitmaskChain(t, n, lam, mu)
	toBlock := func(state string) string {
		mask, _ := strconv.Atoi(strings.TrimPrefix(state, "m"))
		return "k" + strconv.Itoa(bits.OnesCount(uint(mask)))
	}
	lumped, err := detailed.Lump(toBlock, 0)
	if err != nil {
		t.Fatal(err)
	}
	p0D, err := detailed.InitialAt("m0")
	if err != nil {
		t.Fatal(err)
	}
	p0L, err := lumped.InitialAt("k0")
	if err != nil {
		t.Fatal(err)
	}
	tt := 0.7
	pD, err := detailed.Transient(tt, p0D, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pL, err := lumped.Transient(tt, p0L, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	agg := make(map[string]float64)
	for i, name := range detailed.StateNames() {
		agg[toBlock(name)] += pD[i]
	}
	for i, name := range lumped.StateNames() {
		if math.Abs(pL[i]-agg[name]) > 1e-9 {
			t.Errorf("P(%s at t) lumped %g vs aggregated %g", name, pL[i], agg[name])
		}
	}
}

func TestWriteDOT(t *testing.T) {
	c := twoState(t, 0.5, 2)
	var sb strings.Builder
	if err := c.WriteDOT(&sb, "availability", func(s string) bool { return s == "down" }); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`digraph "availability"`, `"up" -> "down" [label="0.5"]`, "lightcoral"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	if err := NewCTMC().WriteDOT(&sb, "empty", nil); err == nil {
		t.Error("empty chain accepted")
	}
}
