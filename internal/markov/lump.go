package markov

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Exact (ordinary) lumping — the tutorial's "largeness avoidance"
// counterpart to largeness tolerance: when states are symmetric (identical
// components), the chain over 2^n detailed states collapses exactly to the
// chain over component counts. Lump verifies the lumpability condition —
// for every partition block B and target block B', the total rate from
// each state of B into B' is identical — and returns the aggregated chain.

// ErrNotLumpable is returned when the partition violates the ordinary
// lumpability condition.
var ErrNotLumpable = errors.New("markov: partition is not ordinarily lumpable")

// Lump aggregates the chain according to partition, which maps every state
// name to its block name. tol bounds the allowed rate mismatch between
// states of a block (0 means exact up to 1e-9 relative).
func (c *CTMC) Lump(partition func(state string) string, tol float64) (*CTMC, error) {
	if len(c.names) == 0 {
		return nil, ErrEmptyChain
	}
	if partition == nil {
		return nil, fmt.Errorf("markov lump: nil partition")
	}
	if tol <= 0 {
		tol = 1e-9
	}
	blockOf := make([]string, len(c.names))
	members := make(map[string][]int)
	for i, name := range c.names {
		b := partition(name)
		if b == "" {
			return nil, fmt.Errorf("markov lump: state %q mapped to empty block", name)
		}
		blockOf[i] = b
		members[b] = append(members[b], i)
	}
	// Per-state outflow rates into each block.
	outflow := make([]map[string]float64, len(c.names))
	for i := range outflow {
		outflow[i] = make(map[string]float64)
	}
	for _, t := range c.trans {
		tb := blockOf[t.to]
		if tb == blockOf[t.from] {
			continue // intra-block transitions vanish in the lumped chain
		}
		outflow[t.from][tb] += t.rate
	}
	// Verify uniformity within each block and build the lumped chain.
	lumped := NewCTMC()
	blocks := make([]string, 0, len(members))
	for b := range members {
		blocks = append(blocks, b)
	}
	sort.Strings(blocks)
	for _, b := range blocks {
		lumped.State(b)
	}
	for _, b := range blocks {
		ref := outflow[members[b][0]]
		for _, i := range members[b][1:] {
			if err := sameOutflow(ref, outflow[i], tol); err != nil {
				return nil, fmt.Errorf("%w: block %q states %q vs %q: %v",
					ErrNotLumpable, b, c.names[members[b][0]], c.names[i], err)
			}
		}
		for tb, rate := range ref {
			if rate <= 0 {
				continue
			}
			if err := lumped.AddRate(b, tb, rate); err != nil {
				return nil, err
			}
		}
	}
	return lumped, nil
}

// sameOutflow compares two block-outflow maps within a relative tolerance.
func sameOutflow(a, b map[string]float64, tol float64) error {
	keys := make(map[string]bool, len(a)+len(b))
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	for k := range keys {
		ra, rb := a[k], b[k]
		scale := math.Max(math.Abs(ra), math.Abs(rb))
		if scale == 0 { //numvet:allow float-eq both rates exactly zero compare equal; guards the division below
			continue
		}
		if math.Abs(ra-rb)/scale > tol {
			return fmt.Errorf("rate into %q differs: %g vs %g", k, ra, rb)
		}
	}
	return nil
}
