package markov

import (
	"math"
	"testing"
)

func TestEmbeddedDTMCJumpProbabilities(t *testing.T) {
	c := NewCTMC()
	_ = c.AddRate("s", "a", 2)
	_ = c.AddRate("s", "b", 3)
	_ = c.AddRate("a", "s", 1)
	_ = c.AddRate("b", "s", 1)
	d, err := c.EmbeddedDTMC()
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	is, _ := d.Index("s")
	ia, _ := d.Index("a")
	ib, _ := d.Index("b")
	if math.Abs(p.At(is, ia)-0.4) > 1e-15 {
		t.Errorf("P(s→a) = %g, want 0.4", p.At(is, ia))
	}
	if math.Abs(p.At(is, ib)-0.6) > 1e-15 {
		t.Errorf("P(s→b) = %g, want 0.6", p.At(is, ib))
	}
}

func TestEmbeddedDTMCAbsorbingSelfLoop(t *testing.T) {
	c := NewCTMC()
	_ = c.AddRate("s", "end", 1)
	d, err := c.EmbeddedDTMC()
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	ie, _ := d.Index("end")
	if p.At(ie, ie) != 1 {
		t.Errorf("absorbing self-loop = %g", p.At(ie, ie))
	}
}

func TestExpectedVisitsGeometric(t *testing.T) {
	// s → a (prob 1); a → s (0.5) or a → done (0.5). Visits to a form a
	// geometric sequence: E[visits to a] = 2, E[visits to s] = 2
	// (including the initial visit).
	d := NewDTMC()
	_ = d.AddProb("s", "a", 1)
	_ = d.AddProb("a", "s", 0.5)
	_ = d.AddProb("a", "done", 0.5)
	_ = d.AddProb("done", "done", 1)
	visits, err := d.ExpectedVisits("s", "done")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(visits["s"]-2) > 1e-12 {
		t.Errorf("visits(s) = %g, want 2", visits["s"])
	}
	if math.Abs(visits["a"]-2) > 1e-12 {
		t.Errorf("visits(a) = %g, want 2", visits["a"])
	}
	steps, err := d.MeanStepsToAbsorption("s", "done")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(steps-4) > 1e-12 {
		t.Errorf("steps = %g, want 4", steps)
	}
}

func TestExpectedVisitsConsistentWithMTTA(t *testing.T) {
	// CTMC MTTA = Σ_i visits_i · mean-sojourn_i via the embedded chain.
	c := NewCTMC()
	_ = c.AddRate("2", "1", 2)
	_ = c.AddRate("1", "0", 1)
	_ = c.AddRate("1", "2", 5)
	visits, err := c.ExpectedVisits("2", "0")
	if err != nil {
		t.Fatal(err)
	}
	// Mean sojourns: state 2: 1/2, state 1: 1/6.
	reconstructed := visits["2"]*(1.0/2) + visits["1"]*(1.0/6)
	mtta, err := c.MTTF("2", "0")
	if err != nil {
		t.Fatal(err)
	}
	if relErr(reconstructed, mtta) > 1e-12 {
		t.Errorf("visit-based MTTA %g vs direct %g", reconstructed, mtta)
	}
}

func TestExpectedVisitsFromAbsorbing(t *testing.T) {
	d := NewDTMC()
	_ = d.AddProb("s", "end", 1)
	_ = d.AddProb("end", "end", 1)
	visits, err := d.ExpectedVisits("end", "end")
	if err != nil {
		t.Fatal(err)
	}
	if len(visits) != 0 {
		t.Errorf("visits from absorbing start: %v", visits)
	}
}
