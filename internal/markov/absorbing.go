package markov

import (
	"fmt"

	"repro/internal/linalg"
)

// AbsorbingAnalysis holds the results of analyzing a chain with absorbing
// states: mean time to absorption, per-state expected sojourn times, and
// absorption probabilities.
type AbsorbingAnalysis struct {
	// MTTA is the mean time to absorption from the supplied initial
	// distribution.
	MTTA float64
	// Sojourn maps each transient state name to its expected total time
	// before absorption.
	Sojourn map[string]float64
	// AbsorbProb maps each absorbing state name to the probability that
	// absorption happens there.
	AbsorbProb map[string]float64
}

// Absorbing analyzes the chain treating the named states as absorbing
// (their outgoing transitions, if any, are ignored). In a reliability
// model the absorbing states are the system-failure states and MTTA is the
// system MTTF.
func (c *CTMC) Absorbing(p0 []float64, absorbing ...string) (*AbsorbingAnalysis, error) {
	v, err := c.checkInitial(p0)
	if err != nil {
		return nil, err
	}
	if len(absorbing) == 0 {
		return nil, fmt.Errorf("markov absorbing: no absorbing states given")
	}
	isAbs := make(map[int]bool, len(absorbing))
	for _, name := range absorbing {
		i, err := c.Index(name)
		if err != nil {
			return nil, err
		}
		isAbs[i] = true
	}
	// Partition states.
	var transIdx []int
	transPos := make(map[int]int) // global index -> position in transient block
	for i := range c.names {
		if !isAbs[i] {
			transPos[i] = len(transIdx)
			transIdx = append(transIdx, i)
		}
	}
	nt := len(transIdx)
	if nt == 0 {
		return nil, fmt.Errorf("markov absorbing: all states absorbing")
	}
	// Build dense Q_TT and Q_TA.
	qtt := linalg.NewDense(nt, nt)
	qta := make(map[int][]float64, len(absorbing)) // absorbing global idx -> column
	for _, t := range c.trans {
		if isAbs[t.from] {
			continue
		}
		fp := transPos[t.from]
		qtt.Add(fp, fp, -t.rate)
		if isAbs[t.to] {
			col, ok := qta[t.to]
			if !ok {
				col = make([]float64, nt)
				qta[t.to] = col
			}
			col[fp] += t.rate
		} else {
			qtt.Add(fp, transPos[t.to], t.rate)
		}
	}
	// Expected sojourn: solve tauᵀ·(-Q_TT) = p0_Tᵀ, i.e. (-Q_TT)ᵀ·tau = p0_T.
	negQTTt := linalg.NewDense(nt, nt)
	for i := 0; i < nt; i++ {
		for j := 0; j < nt; j++ {
			negQTTt.Set(i, j, -qtt.At(j, i))
		}
	}
	p0T := make([]float64, nt)
	for gi, pos := range transPos {
		p0T[pos] = v[gi]
	}
	tau, err := linalg.LUSolve(negQTTt, p0T)
	if err != nil {
		return nil, fmt.Errorf("markov absorbing: transient block singular (absorption not certain from every state?): %w", err)
	}
	res := &AbsorbingAnalysis{
		Sojourn:    make(map[string]float64, nt),
		AbsorbProb: make(map[string]float64, len(absorbing)),
	}
	for gi, pos := range transPos {
		if tau[pos] < 0 {
			tau[pos] = 0
		}
		res.Sojourn[c.names[gi]] = tau[pos]
		res.MTTA += tau[pos]
	}
	// Absorption probabilities: P(absorb at a) = Σ_i tau_i · q(i→a), plus
	// any initial mass already on a.
	for _, name := range absorbing {
		gi := c.index[name]
		p := v[gi]
		if col, ok := qta[gi]; ok {
			for i := 0; i < nt; i++ {
				p += tau[i] * col[i]
			}
		}
		res.AbsorbProb[name] = p
	}
	return res, nil
}

// MTTF returns the mean time to absorption treating the named states as
// failure (absorbing) states, starting from the named initial state.
func (c *CTMC) MTTF(initial string, failureStates ...string) (float64, error) {
	p0, err := c.InitialAt(initial)
	if err != nil {
		return 0, err
	}
	res, err := c.Absorbing(p0, failureStates...)
	if err != nil {
		return 0, err
	}
	return res.MTTA, nil
}

// ExpectedAccumulatedReward returns E[∫₀^T r(X(u)) du] where T is the
// absorption time: Σ_i sojourn_i · r(i).
func (c *CTMC) ExpectedAccumulatedReward(p0 []float64, reward func(state string) float64, absorbing ...string) (float64, error) {
	res, err := c.Absorbing(p0, absorbing...)
	if err != nil {
		return 0, err
	}
	var total float64
	for name, soj := range res.Sojourn {
		total += soj * reward(name)
	}
	return total, nil
}
