package markov

import (
	"fmt"

	"repro/internal/linalg"
)

// EmbeddedDTMC returns the jump chain of the CTMC: P(i,j) = q(i,j)/|q(i,i)|
// for i ≠ j. States with no outgoing rate become absorbing (self-loop 1).
// The embedded chain drives semi-Markov constructions and visit-count
// analyses.
func (c *CTMC) EmbeddedDTMC() (*DTMC, error) {
	if len(c.names) == 0 {
		return nil, ErrEmptyChain
	}
	totals := make([]float64, len(c.names))
	for _, t := range c.trans {
		totals[t.from] += t.rate
	}
	d := NewDTMC()
	for _, name := range c.names {
		d.State(name)
	}
	for _, t := range c.trans {
		if err := d.AddProb(c.names[t.from], c.names[t.to], t.rate/totals[t.from]); err != nil {
			return nil, err
		}
	}
	for i, total := range totals {
		if total == 0 { //numvet:allow float-eq exactly-zero exit rate marks an absorbing state
			if err := d.AddProb(c.names[i], c.names[i], 1); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// ExpectedVisits returns, for a chain with the named absorbing states, the
// expected number of visits to every transient state before absorption,
// starting from the given state (the fundamental-matrix row of the
// embedded chain).
func (c *CTMC) ExpectedVisits(initial string, absorbing ...string) (map[string]float64, error) {
	d, err := c.EmbeddedDTMC()
	if err != nil {
		return nil, err
	}
	return d.ExpectedVisits(initial, absorbing...)
}

// ExpectedVisits returns the expected visit counts to transient states
// before absorption: the row of N = (I - Q)^{-1} for the initial state.
func (d *DTMC) ExpectedVisits(initial string, absorbing ...string) (map[string]float64, error) {
	start, err := d.Index(initial)
	if err != nil {
		return nil, err
	}
	if len(absorbing) == 0 {
		return nil, fmt.Errorf("markov dtmc: no absorbing states given")
	}
	isAbs := make(map[int]bool, len(absorbing))
	for _, name := range absorbing {
		i, err := d.Index(name)
		if err != nil {
			return nil, err
		}
		isAbs[i] = true
	}
	out := make(map[string]float64)
	if isAbs[start] {
		return out, nil
	}
	var transIdx []int
	pos := make(map[int]int)
	for i := range d.names {
		if !isAbs[i] {
			pos[i] = len(transIdx)
			transIdx = append(transIdx, i)
		}
	}
	nt := len(transIdx)
	// Solve nᵀ·(I - Q) = e_startᵀ, i.e. (I - Q)ᵀ·n = e_start.
	a := linalg.NewDense(nt, nt)
	for i := 0; i < nt; i++ {
		a.Set(i, i, 1)
	}
	for _, t := range d.trans {
		if isAbs[t.from] || isAbs[t.to] {
			continue
		}
		// (I-Q)ᵀ entry (to, from) -= p.
		a.Add(pos[t.to], pos[t.from], -t.rate)
	}
	b := make([]float64, nt)
	b[pos[start]] = 1
	n, err := linalg.LUSolve(a, b)
	if err != nil {
		return nil, fmt.Errorf("markov dtmc visits: %w", err)
	}
	for _, gi := range transIdx {
		out[d.names[gi]] = n[pos[gi]]
	}
	return out, nil
}

// MeanStepsToAbsorption returns the expected number of jumps before
// absorption from the initial state (the sum of expected visits).
func (d *DTMC) MeanStepsToAbsorption(initial string, absorbing ...string) (float64, error) {
	visits, err := d.ExpectedVisits(initial, absorbing...)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, v := range visits {
		total += v
	}
	return total, nil
}
