package markov

import (
	"math"
	"strconv"
	"testing"
)

func TestDTMCSteadyState(t *testing.T) {
	d := NewDTMC()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.AddProb("sunny", "sunny", 0.9))
	must(d.AddProb("sunny", "rainy", 0.1))
	must(d.AddProb("rainy", "sunny", 0.5))
	must(d.AddProb("rainy", "rainy", 0.5))
	pi, err := d.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	is, _ := d.Index("sunny")
	if relErr(pi[is], 5.0/6) > 1e-12 {
		t.Errorf("pi[sunny] = %g, want 5/6", pi[is])
	}
}

func TestDTMCRowSumValidation(t *testing.T) {
	d := NewDTMC()
	_ = d.AddProb("a", "b", 0.5)
	if _, err := d.Matrix(); err == nil {
		t.Error("row sum 0.5 accepted")
	}
	if err := d.AddProb("a", "b", 1.5); err == nil {
		t.Error("probability > 1 accepted")
	}
}

func TestDTMCStepN(t *testing.T) {
	d := NewDTMC()
	_ = d.AddProb("a", "b", 1)
	_ = d.AddProb("b", "a", 1)
	p0 := []float64{1, 0}
	p2, err := d.StepN(p0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p2[0] != 1 || p2[1] != 0 {
		t.Errorf("period-2 chain after 2 steps: %v", p2)
	}
	p3, _ := d.StepN(p0, 3)
	if p3[0] != 0 || p3[1] != 1 {
		t.Errorf("after 3 steps: %v", p3)
	}
}

func TestDTMCAbsorptionGambler(t *testing.T) {
	// Gambler's ruin on {0..4}, fair coin, start at 2:
	// P(reach 4 before 0) = 2/4 = 0.5. Start at 1 → 0.25.
	d := NewDTMC()
	for i := 1; i <= 3; i++ {
		s := strconv.Itoa(i)
		lo := strconv.Itoa(i - 1)
		hi := strconv.Itoa(i + 1)
		_ = d.AddProb(s, lo, 0.5)
		_ = d.AddProb(s, hi, 0.5)
	}
	_ = d.AddProb("0", "0", 1)
	_ = d.AddProb("4", "4", 1)
	probs, err := d.AbsorptionProbs("2", "0", "4")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(probs["4"]-0.5) > 1e-12 {
		t.Errorf("P(win from 2) = %g, want 0.5", probs["4"])
	}
	probs1, _ := d.AbsorptionProbs("1", "0", "4")
	if math.Abs(probs1["4"]-0.25) > 1e-12 {
		t.Errorf("P(win from 1) = %g, want 0.25", probs1["4"])
	}
	// Starting absorbed.
	pa, _ := d.AbsorptionProbs("0", "0", "4")
	if pa["0"] != 1 || pa["4"] != 0 {
		t.Errorf("absorbed start: %v", pa)
	}
}

func TestDTMCLargePowerIteration(t *testing.T) {
	// Ring chain with 700 states and slight bias; uniformish stationary.
	d := NewDTMC()
	n := 700
	name := func(i int) string { return "r" + strconv.Itoa(i) }
	for i := 0; i < n; i++ {
		_ = d.AddProb(name(i), name((i+1)%n), 0.6)
		_ = d.AddProb(name(i), name((i+n-1)%n), 0.4)
	}
	pi, err := d.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pi {
		if math.Abs(p-1.0/float64(n)) > 1e-6 {
			t.Fatalf("pi[%d] = %g, want uniform %g", i, p, 1.0/float64(n))
		}
	}
}
