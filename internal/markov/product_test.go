package markov

import (
	"math"
	"strings"
	"testing"
)

func TestProductSteadyStateFactorizes(t *testing.T) {
	a := twoState(t, 0.1, 1.0)
	b := twoState(t, 0.3, 2.0)
	joint, err := Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if joint.NumStates() != 4 {
		t.Fatalf("states = %d, want 4", joint.NumStates())
	}
	piA, err := a.SteadyStateMap()
	if err != nil {
		t.Fatal(err)
	}
	piB, err := b.SteadyStateMap()
	if err != nil {
		t.Fatal(err)
	}
	piJ, err := joint.SteadyStateMap()
	if err != nil {
		t.Fatal(err)
	}
	for sa, pa := range piA {
		for sb, pb := range piB {
			key := sa + "|" + sb
			if math.Abs(piJ[key]-pa*pb) > 1e-13 {
				t.Errorf("pi[%s] = %g, want %g", key, piJ[key], pa*pb)
			}
		}
	}
}

func TestProductTransientFactorizes(t *testing.T) {
	a := twoState(t, 0.2, 1.5)
	b := twoState(t, 0.05, 0.8)
	joint, err := Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := joint.InitialAt("up|up")
	if err != nil {
		t.Fatal(err)
	}
	tt := 1.3
	pj, err := joint.Transient(tt, p0, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Marginal up-probabilities from the closed form.
	aUp := closedFormA(0.2, 1.5, tt)
	bUp := closedFormA(0.05, 0.8, tt)
	idx, err := joint.Index("up|up")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pj[idx]-aUp*bUp) > 1e-9 {
		t.Errorf("P(up|up) = %g, want %g", pj[idx], aUp*bUp)
	}
}

func closedFormA(lam, mu, t float64) float64 {
	s := lam + mu
	return mu/s + lam/s*math.Exp(-s*t)
}

func TestProductNThreeChains(t *testing.T) {
	chains := make([]*CTMC, 3)
	for i := range chains {
		chains[i] = twoState(t, 0.1*float64(i+1), 1.0)
	}
	joint, err := ProductN(chains...)
	if err != nil {
		t.Fatal(err)
	}
	if joint.NumStates() != 8 {
		t.Fatalf("states = %d, want 8", joint.NumStates())
	}
	// All-up probability = product of marginals.
	piJ, err := joint.SteadyStateMap()
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0
	for i := range chains {
		pi, err := chains[i].SteadyStateMap()
		if err != nil {
			t.Fatal(err)
		}
		want *= pi["up"]
	}
	var allUp float64
	for name, p := range piJ {
		if strings.Count(name, "up") == 3 {
			allUp += p
		}
	}
	if math.Abs(allUp-want) > 1e-13 {
		t.Errorf("P(all up) = %g, want %g", allUp, want)
	}
}

func TestProductValidation(t *testing.T) {
	a := twoState(t, 1, 1)
	if _, err := Product(a, nil); err == nil {
		t.Error("nil chain accepted")
	}
	if _, err := Product(a, NewCTMC()); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := ProductN(); err == nil {
		t.Error("no chains accepted")
	}
}
