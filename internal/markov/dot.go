package markov

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the chain as a Graphviz digraph: one node per state,
// one edge per transition labeled with its rate. highlight marks states
// (e.g., failure states) with a distinct fill.
func (c *CTMC) WriteDOT(w io.Writer, title string, highlight func(state string) bool) error {
	if len(c.names) == 0 {
		return ErrEmptyChain
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", title)
	sb.WriteString("  rankdir=LR;\n  node [shape=circle, fontsize=11];\n")
	for _, name := range c.names {
		if highlight != nil && highlight(name) {
			fmt.Fprintf(&sb, "  %q [style=filled, fillcolor=lightcoral];\n", name)
		} else {
			fmt.Fprintf(&sb, "  %q;\n", name)
		}
	}
	for _, t := range c.trans {
		fmt.Fprintf(&sb, "  %q -> %q [label=\"%g\"];\n", c.names[t.from], c.names[t.to], t.rate)
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
