package markov

import (
	"fmt"
)

// Markov reward models attach a reward rate r(s) to every state; the
// resulting performability measures unify performance and dependability
// (Beaudry's degradable-capacity analysis, one of the tutorial's recurring
// themes): the expected reward rate at time t, the expected accumulated
// reward over [0, t], and the steady-state reward rate.

// RewardFunc maps a state name to its reward rate.
type RewardFunc func(state string) float64

// SteadyStateRewardRate returns lim_{t→∞} E[r(X(t))] = Σ_i π_i·r(i).
func (c *CTMC) SteadyStateRewardRate(reward RewardFunc) (float64, error) {
	if reward == nil {
		return 0, fmt.Errorf("markov: nil reward function")
	}
	pi, err := c.SteadyState()
	if err != nil {
		return 0, err
	}
	return c.ExpectedReward(pi, reward)
}

// ExpectedRewardAt returns E[r(X(t))] from the initial distribution p0.
func (c *CTMC) ExpectedRewardAt(t float64, p0 []float64, reward RewardFunc, opts TransientOptions) (float64, error) {
	if reward == nil {
		return 0, fmt.Errorf("markov: nil reward function")
	}
	p, err := c.Transient(t, p0, opts)
	if err != nil {
		return 0, err
	}
	return c.ExpectedReward(p, reward)
}

// AccumulatedReward returns E[∫₀ᵗ r(X(u)) du] from p0 — total work done by
// a degradable system over a mission, total energy consumed, etc.
func (c *CTMC) AccumulatedReward(t float64, p0 []float64, reward RewardFunc, opts TransientOptions) (float64, error) {
	if reward == nil {
		return 0, fmt.Errorf("markov: nil reward function")
	}
	occ, err := c.CumulativeTransient(t, p0, opts)
	if err != nil {
		return 0, err
	}
	var total float64
	for i, name := range c.names {
		total += occ[i] * reward(name)
	}
	return total, nil
}

// CapacityOrientedAvailability returns the ratio of expected accumulated
// reward over [0, t] to the full-capacity reward rate times t — the
// fraction of nominal work the degradable system actually delivers.
func (c *CTMC) CapacityOrientedAvailability(t float64, p0 []float64, reward RewardFunc, fullRate float64, opts TransientOptions) (float64, error) {
	if fullRate <= 0 {
		return 0, fmt.Errorf("markov: full-capacity rate %g must be positive", fullRate)
	}
	if t <= 0 {
		return 0, fmt.Errorf("markov: horizon %g must be positive", t)
	}
	acc, err := c.AccumulatedReward(t, p0, reward, opts)
	if err != nil {
		return 0, err
	}
	return acc / (fullRate * t), nil
}
