package markov

import (
	"fmt"
)

// System reliability from a CTMC: R(t) = P(the chain has not entered a
// failure state by time t). The failure states are made absorbing (their
// outgoing transitions dropped), so R(t) is the survival function of the
// first-passage time — the dependability twin of the availability
// transients elsewhere in this package.

// ReliabilityAt returns R(t) from the named initial state with the named
// states treated as absorbing failures.
func (c *CTMC) ReliabilityAt(t float64, initial string, failures ...string) (float64, error) {
	curve, err := c.ReliabilityCurve([]float64{t}, initial, failures...)
	if err != nil {
		return 0, err
	}
	return curve[0], nil
}

// ReliabilityCurve evaluates R(t) on a grid of times.
func (c *CTMC) ReliabilityCurve(times []float64, initial string, failures ...string) ([]float64, error) {
	if len(failures) == 0 {
		return nil, fmt.Errorf("markov reliability: no failure states given")
	}
	isFail := make(map[int]bool, len(failures))
	for _, name := range failures {
		i, err := c.Index(name)
		if err != nil {
			return nil, err
		}
		isFail[i] = true
	}
	// Build the absorbing copy: failure states keep no outgoing rates.
	abs := NewCTMC()
	for _, name := range c.names {
		abs.State(name)
	}
	for _, tr := range c.trans {
		if isFail[tr.from] {
			continue
		}
		if err := abs.AddRate(c.names[tr.from], c.names[tr.to], tr.rate); err != nil {
			return nil, err
		}
	}
	p0, err := abs.InitialAt(initial)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(times))
	for k, t := range times {
		p, err := abs.Transient(t, p0, TransientOptions{})
		if err != nil {
			return nil, err
		}
		var failed float64
		for i := range p {
			if isFail[i] {
				failed += p[i]
			}
		}
		r := 1 - failed
		if r < 0 {
			r = 0
		}
		out[k] = r
	}
	return out, nil
}
