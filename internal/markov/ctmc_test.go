package markov

import (
	"errors"
	"math"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Abs(b); m > 1e-300 {
		return d / m
	}
	return d
}

// twoState builds the canonical up/down availability chain.
func twoState(t *testing.T, lam, mu float64) *CTMC {
	t.Helper()
	c := NewCTMC()
	if err := c.AddRate("up", "down", lam); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate("down", "up", mu); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTwoStateSteadyState(t *testing.T) {
	tests := []struct {
		name    string
		lam, mu float64
	}{
		{name: "balanced", lam: 1, mu: 1},
		{name: "availability-like", lam: 1e-4, mu: 0.5},
		{name: "very stiff", lam: 1e-8, mu: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := twoState(t, tt.lam, tt.mu)
			pi, err := c.SteadyStateMap()
			if err != nil {
				t.Fatal(err)
			}
			want := tt.mu / (tt.lam + tt.mu)
			if relErr(pi["up"], want) > 1e-13 {
				t.Errorf("pi[up] = %.16g, want %.16g", pi["up"], want)
			}
		})
	}
}

// duplexSharedRepair builds the 2-component shared-repair chain with states
// "2" (both up), "1", "0". Failure rate lam each, single repairer rate mu.
func duplexSharedRepair(t *testing.T, lam, mu float64) *CTMC {
	t.Helper()
	c := NewCTMC()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.AddRate("2", "1", 2*lam))
	must(c.AddRate("1", "0", lam))
	must(c.AddRate("1", "2", mu))
	must(c.AddRate("0", "1", mu))
	return c
}

func TestDuplexSharedRepairSteadyState(t *testing.T) {
	// Birth-death chain: pi_1 = pi_2·(2λ/μ), pi_0 = pi_1·(λ/μ).
	lam, mu := 0.1, 1.0
	c := duplexSharedRepair(t, lam, mu)
	pi, err := c.SteadyStateMap()
	if err != nil {
		t.Fatal(err)
	}
	r1 := 2 * lam / mu
	r0 := r1 * lam / mu
	norm := 1 + r1 + r0
	if relErr(pi["2"], 1/norm) > 1e-13 {
		t.Errorf("pi[2] = %g, want %g", pi["2"], 1/norm)
	}
	if relErr(pi["0"], r0/norm) > 1e-13 {
		t.Errorf("pi[0] = %g, want %g", pi["0"], r0/norm)
	}
}

func TestTransientTwoStateClosedForm(t *testing.T) {
	lam, mu := 0.3, 1.7
	c := twoState(t, lam, mu)
	p0, err := c.InitialAt("up")
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 0.1, 0.5, 1, 3, 10, 50} {
		p, err := c.Transient(tt, p0, TransientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		s := lam + mu
		want := mu/s + lam/s*math.Exp(-s*tt)
		iu, _ := c.Index("up")
		if math.Abs(p[iu]-want) > 1e-10 {
			t.Errorf("A(%g) = %.12g, want %.12g", tt, p[iu], want)
		}
	}
}

func TestTransientStiff(t *testing.T) {
	// Stiff chain: uniformization must stay stable for qt ~ 1e4.
	lam, mu := 1e-3, 10.0
	c := twoState(t, lam, mu)
	p0, _ := c.InitialAt("up")
	p, err := c.Transient(1000, p0, TransientOptions{SteadyStateDetection: true})
	if err != nil {
		t.Fatal(err)
	}
	iu, _ := c.Index("up")
	want := mu / (lam + mu)
	if math.Abs(p[iu]-want) > 1e-9 {
		t.Errorf("A(1000) = %.12g, want steady %.12g", p[iu], want)
	}
}

func TestTransientConservation(t *testing.T) {
	c := duplexSharedRepair(t, 0.2, 1)
	p0, _ := c.InitialAt("2")
	for _, tt := range []float64{0.01, 0.7, 4} {
		p, err := c.Transient(tt, p0, TransientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, x := range p {
			if x < 0 {
				t.Fatalf("negative probability %g at t=%g", x, tt)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("probabilities sum to %.15g at t=%g", sum, tt)
		}
	}
}

func TestCumulativeTransientTwoState(t *testing.T) {
	// L_up(t) = ∫A(u)du = A_ss·t + (lam/s²)(1-e^{-st}).
	lam, mu := 0.4, 1.1
	c := twoState(t, lam, mu)
	p0, _ := c.InitialAt("up")
	s := lam + mu
	for _, tt := range []float64{0.5, 2, 8} {
		occ, err := c.CumulativeTransient(tt, p0, TransientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		iu, _ := c.Index("up")
		want := mu/s*tt + lam/(s*s)*(1-math.Exp(-s*tt))
		if math.Abs(occ[iu]-want) > 1e-8 {
			t.Errorf("L_up(%g) = %.10g, want %.10g", tt, occ[iu], want)
		}
		// Total occupancy equals elapsed time.
		var total float64
		for _, x := range occ {
			total += x
		}
		if math.Abs(total-tt) > 1e-8 {
			t.Errorf("total occupancy %g != t %g", total, tt)
		}
	}
}

func TestIntervalAvailability(t *testing.T) {
	lam, mu := 0.4, 1.1
	c := twoState(t, lam, mu)
	p0, _ := c.InitialAt("up")
	got, err := c.IntervalAvailability(5, p0, []string{"up"}, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := lam + mu
	want := (mu/s*5 + lam/(s*s)*(1-math.Exp(-s*5))) / 5
	if math.Abs(got-want) > 1e-8 {
		t.Errorf("interval availability = %.10g, want %.10g", got, want)
	}
	// Interval availability starts at 1 and decreases toward steady state.
	short, _ := c.IntervalAvailability(0.001, p0, []string{"up"}, TransientOptions{})
	long, _ := c.IntervalAvailability(100, p0, []string{"up"}, TransientOptions{})
	if !(short > long) {
		t.Errorf("interval availability should decrease: %g vs %g", short, long)
	}
	// Long-run value is A_ss plus the O(1/t) startup correction λ/(s²t).
	wantLong := mu/s + lam/(s*s*100)
	if math.Abs(long-wantLong) > 1e-6 {
		t.Errorf("long-run interval availability %g, want %g", long, wantLong)
	}
}

func TestMTTFTwoComponentParallel(t *testing.T) {
	// Two independent components rate λ, no repair, system fails when both
	// fail: MTTF = 3/(2λ).
	lam := 0.5
	c := NewCTMC()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.AddRate("2", "1", 2*lam))
	must(c.AddRate("1", "0", lam))
	mttf, err := c.MTTF("2", "0")
	if err != nil {
		t.Fatal(err)
	}
	if relErr(mttf, 3/(2*lam)) > 1e-12 {
		t.Errorf("MTTF = %g, want %g", mttf, 3/(2*lam))
	}
}

func TestMTTFWithRepairExceedsWithout(t *testing.T) {
	// Repairable duplex (repair of the degraded state) has much larger MTTF.
	lam, mu := 0.1, 5.0
	norep := NewCTMC()
	_ = norep.AddRate("2", "1", 2*lam)
	_ = norep.AddRate("1", "0", lam)
	rep := NewCTMC()
	_ = rep.AddRate("2", "1", 2*lam)
	_ = rep.AddRate("1", "0", lam)
	_ = rep.AddRate("1", "2", mu)
	m1, err := norep.MTTF("2", "0")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := rep.MTTF("2", "0")
	if err != nil {
		t.Fatal(err)
	}
	// Closed form with repair: (3λ+μ)/(2λ²).
	want := (3*lam + mu) / (2 * lam * lam)
	if relErr(m2, want) > 1e-12 {
		t.Errorf("repairable MTTF = %g, want %g", m2, want)
	}
	if m2 < 10*m1 {
		t.Errorf("repair should boost MTTF: %g vs %g", m2, m1)
	}
}

func TestAbsorptionProbabilities(t *testing.T) {
	// From "s", race between absorption to "a" (rate 2) and "b" (rate 3).
	c := NewCTMC()
	_ = c.AddRate("s", "a", 2)
	_ = c.AddRate("s", "b", 3)
	p0, _ := c.InitialAt("s")
	res, err := c.Absorbing(p0, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if relErr(res.AbsorbProb["a"], 0.4) > 1e-12 {
		t.Errorf("P(absorb a) = %g, want 0.4", res.AbsorbProb["a"])
	}
	if relErr(res.AbsorbProb["b"], 0.6) > 1e-12 {
		t.Errorf("P(absorb b) = %g, want 0.6", res.AbsorbProb["b"])
	}
	if relErr(res.MTTA, 0.2) > 1e-12 {
		t.Errorf("MTTA = %g, want 0.2", res.MTTA)
	}
}

func TestExpectedAccumulatedReward(t *testing.T) {
	// Degrading 3-state chain with reward 1.0 / 0.5 / 0 (performability).
	c := NewCTMC()
	_ = c.AddRate("full", "degraded", 1)
	_ = c.AddRate("degraded", "failed", 2)
	p0, _ := c.InitialAt("full")
	rew := func(s string) float64 {
		switch s {
		case "full":
			return 1
		case "degraded":
			return 0.5
		default:
			return 0
		}
	}
	got, err := c.ExpectedAccumulatedReward(p0, rew, "failed")
	if err != nil {
		t.Fatal(err)
	}
	// sojourn(full)=1, sojourn(degraded)=1/2 → reward = 1 + 0.25.
	if relErr(got, 1.25) > 1e-12 {
		t.Errorf("accumulated reward = %g, want 1.25", got)
	}
}

func TestSteadyStateRewardDowntime(t *testing.T) {
	lam, mu := 1.0/1000, 0.25 // per hour
	c := twoState(t, lam, mu)
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	down, err := c.ExpectedReward(pi, func(s string) float64 {
		if s == "down" {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	wantUnavail := lam / (lam + mu)
	if relErr(down, wantUnavail) > 1e-12 {
		t.Errorf("unavailability = %g, want %g", down, wantUnavail)
	}
	// Annual downtime in minutes: U · 525960.
	minutes := down * 525960
	if minutes < 2000 || minutes > 2200 {
		t.Errorf("downtime %g min/yr outside expected band", minutes)
	}
}

func TestErrorsAndValidation(t *testing.T) {
	c := NewCTMC()
	if err := c.AddRate("a", "a", 1); err == nil {
		t.Error("self transition accepted")
	}
	if err := c.AddRate("a", "b", -1); !errors.Is(err, ErrBadRate) {
		t.Errorf("negative rate: %v", err)
	}
	if err := c.AddRate("a", "b", math.Inf(1)); !errors.Is(err, ErrBadRate) {
		t.Errorf("infinite rate: %v", err)
	}
	empty := NewCTMC()
	if _, err := empty.SteadyState(); !errors.Is(err, ErrEmptyChain) {
		t.Errorf("empty chain: %v", err)
	}
	_ = c.AddRate("a", "b", 1)
	_ = c.AddRate("b", "a", 1)
	if _, err := c.Index("zzz"); !errors.Is(err, ErrUnknownState) {
		t.Errorf("unknown state: %v", err)
	}
	if _, err := c.Transient(1, []float64{0.5, 0.6}, TransientOptions{}); !errors.Is(err, ErrBadInitial) {
		t.Errorf("bad initial: %v", err)
	}
	if _, err := c.Transient(-1, []float64{1, 0}, TransientOptions{}); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := c.Absorbing([]float64{1, 0}); err == nil {
		t.Error("no absorbing states accepted")
	}
}

func TestLargeChainSORPath(t *testing.T) {
	// Birth-death chain with 800 states exercises the SOR branch.
	c := NewCTMC()
	n := 800
	name := func(i int) string { return "s" + strconv.Itoa(i) }
	for i := 0; i < n-1; i++ {
		if err := c.AddRate(name(i), name(i+1), 1.0); err != nil {
			t.Fatal(err)
		}
		if err := c.AddRate(name(i+1), name(i), 2.0); err != nil {
			t.Fatal(err)
		}
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	// Geometric with ratio 1/2: pi_0 = (1-r)/(1-r^n).
	r := 0.5
	want0 := (1 - r) / (1 - math.Pow(r, float64(n)))
	i0, _ := c.Index(name(0))
	if relErr(pi[i0], want0) > 1e-6 {
		t.Errorf("pi[0] = %g, want %g", pi[i0], want0)
	}
}

func TestSensitivityTwoState(t *testing.T) {
	// A = mu/(lam+mu); dA/dlam = -mu/(lam+mu)².
	lam, mu := 0.2, 2.0
	c := twoState(t, lam, mu)
	dA, err := c.MeasureSensitivity([]string{"up"}, func(from, to string) float64 {
		if from == "up" && to == "down" {
			return 1 // dλ/dλ
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	want := -mu / math.Pow(lam+mu, 2)
	if relErr(dA, want) > 1e-10 {
		t.Errorf("dA/dλ = %g, want %g", dA, want)
	}
	// dA/dmu = lam/(lam+mu)².
	dAmu, err := c.MeasureSensitivity([]string{"up"}, func(from, to string) float64 {
		if from == "down" && to == "up" {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	wantMu := lam / math.Pow(lam+mu, 2)
	if relErr(dAmu, wantMu) > 1e-10 {
		t.Errorf("dA/dμ = %g, want %g", dAmu, wantMu)
	}
}

func TestSensitivityFiniteDifference(t *testing.T) {
	// Cross-check analytic sensitivity against finite differences on the
	// shared-repair duplex.
	lam, mu := 0.3, 1.5
	build := func(l float64) *CTMC {
		c := NewCTMC()
		_ = c.AddRate("2", "1", 2*l)
		_ = c.AddRate("1", "0", l)
		_ = c.AddRate("1", "2", mu)
		_ = c.AddRate("0", "1", mu)
		return c
	}
	c := build(lam)
	got, err := c.MeasureSensitivity([]string{"2", "1"}, func(from, to string) float64 {
		switch {
		case from == "2" && to == "1":
			return 2
		case from == "1" && to == "0":
			return 1
		default:
			return 0
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	h := 1e-6
	aPlus := availOf(t, build(lam+h))
	aMinus := availOf(t, build(lam-h))
	fd := (aPlus - aMinus) / (2 * h)
	if math.Abs(got-fd) > 1e-5 {
		t.Errorf("analytic %g vs finite-diff %g", got, fd)
	}
}

func availOf(t *testing.T, c *CTMC) float64 {
	t.Helper()
	pi, err := c.SteadyStateMap()
	if err != nil {
		t.Fatal(err)
	}
	return pi["2"] + pi["1"]
}

func TestTransientMatchesMatrixExponentialProperty(t *testing.T) {
	// Cross-oracle: uniformization must agree with p0·e^{Qt} computed by
	// dense scaling-and-squaring for random small generators.
	f := func(seed int64) bool {
		rng := newSplitMix(seed)
		n := 2 + int(uint64(seed)%5)
		c := NewCTMC()
		names := make([]string, n)
		for i := range names {
			names[i] = "s" + strconv.Itoa(i)
			c.State(names[i])
		}
		q := linalg.NewDense(n, n)
		for i := 0; i < n; i++ {
			var out float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if rng.float() < 0.7 {
					rate := 0.05 + 3*rng.float()
					if err := c.AddRate(names[i], names[j], rate); err != nil {
						return false
					}
					q.Set(i, j, rate)
					out += rate
				}
			}
			q.Set(i, i, -out)
		}
		tt := 0.1 + 2*rng.float()
		// Scale Q by t and exponentiate.
		qt := q.Clone()
		for i := 0; i < n; i++ {
			row := qt.Row(i)
			for j := range row {
				row[j] *= tt
			}
		}
		e, err := linalg.Expm(qt)
		if err != nil {
			return false
		}
		p0 := make([]float64, n)
		p0[0] = 1
		want, err := e.VecMul(p0)
		if err != nil {
			return false
		}
		got, err := c.Transient(tt, p0, TransientOptions{})
		if err != nil {
			return false
		}
		d, _ := linalg.MaxAbsDiff(got, want)
		return d < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// splitMix is a tiny deterministic PRNG for property tests.
type splitMix struct{ s uint64 }

func newSplitMix(seed int64) *splitMix {
	return &splitMix{s: uint64(seed) + 0x9e3779b97f4a7c15}
}

func (r *splitMix) float() float64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
