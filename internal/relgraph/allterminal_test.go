package relgraph

import (
	"math"
	"math/rand"
	"testing"
)

func TestAllTerminalTriangle(t *testing.T) {
	// Triangle with identical p: R_all = 3p²(1-p) + p³.
	p := 0.9
	g := New()
	mustAdd(t, g, "e1", "a", "b", p)
	mustAdd(t, g, "e2", "b", "c", p)
	mustAdd(t, g, "e3", "c", "a", p)
	got, err := g.AllTerminalReliability()
	if err != nil {
		t.Fatal(err)
	}
	want := 3*p*p*(1-p) + p*p*p
	if relErr(got, want) > 1e-12 {
		t.Errorf("R_all = %.12g, want %.12g", got, want)
	}
}

func TestAllTerminalSpanningTree(t *testing.T) {
	// A path graph IS its only spanning tree: R_all = ∏ p_i.
	g := New()
	mustAdd(t, g, "e1", "a", "b", 0.9)
	mustAdd(t, g, "e2", "b", "c", 0.8)
	mustAdd(t, g, "e3", "c", "d", 0.7)
	got, err := g.AllTerminalReliability()
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got, 0.9*0.8*0.7) > 1e-12 {
		t.Errorf("R_all = %g, want %g", got, 0.9*0.8*0.7)
	}
}

// bruteForceAllTerminal enumerates all edge subsets.
func bruteForceAllTerminal(g *Graph) float64 {
	edges := g.Edges()
	nodes := map[string]int{}
	for _, e := range edges {
		if _, ok := nodes[e.From]; !ok {
			nodes[e.From] = len(nodes)
		}
		if _, ok := nodes[e.To]; !ok {
			nodes[e.To] = len(nodes)
		}
	}
	n := len(nodes)
	var total float64
	for mask := 0; mask < 1<<len(edges); mask++ {
		p := 1.0
		var live []workEdge
		for i, e := range edges {
			if mask&(1<<i) != 0 {
				p *= e.Rel
				live = append(live, workEdge{u: nodes[e.From], v: nodes[e.To]})
			} else {
				p *= 1 - e.Rel
			}
		}
		if countComponents(n, live, false) == 1 {
			total += p
		}
	}
	return total
}

func TestAllTerminalMatchesBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		g := New()
		nodes := []string{"a", "b", "c", "d", "e"}
		cnt := 0
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				if rng.Float64() < 0.55 {
					cnt++
					name := "e" + itoa(cnt)
					mustAdd(t, g, name, nodes[i], nodes[j], rng.Float64())
				}
			}
		}
		if cnt == 0 {
			continue
		}
		got, err := g.AllTerminalReliability()
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceAllTerminal(g)
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("trial %d: factoring %g vs brute force %g", trial, got, want)
		}
	}
}

func TestAllTerminalDisconnected(t *testing.T) {
	g := New()
	mustAdd(t, g, "e1", "a", "b", 0.9)
	mustAdd(t, g, "e2", "c", "d", 0.9)
	got, err := g.AllTerminalReliability()
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("disconnected graph R_all = %g, want 0", got)
	}
}

func TestAllTerminalBelowTwoTerminal(t *testing.T) {
	// Connecting everything is harder than connecting s to t.
	g := bridge(t, 0.9, 0.9, 0.9, 0.9, 0.9)
	all, err := g.AllTerminalReliability()
	if err != nil {
		t.Fatal(err)
	}
	st, err := g.Reliability("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if all > st {
		t.Errorf("R_all %g should not exceed R_st %g", all, st)
	}
}

func TestAllTerminalEdgeCap(t *testing.T) {
	g := New()
	for i := 0; i <= maxAllTerminalEdges; i++ {
		mustAdd(t, g, "e"+itoa(i), "n"+itoa(i), "n"+itoa(i+1), 0.9)
	}
	if _, err := g.AllTerminalReliability(); err == nil {
		t.Error("oversized graph accepted")
	}
}
