package relgraph

import (
	"fmt"
	"sort"

	"repro/internal/bdd"
)

// Directed s–t reliability: edges carry a direction (From → To), as in
// communication networks with one-way links. Factoring with undirected
// contraction does not apply, so the solver enumerates directed minimal
// paths and evaluates the coverage function exactly on a BDD (sound for
// any edge count whose path structure keeps the BDD manageable — the
// regime reliability graphs are used in).

// DiGraph is a directed reliability graph.
type DiGraph struct {
	edges []Edge
	nodes map[string]bool
}

// NewDirected returns an empty directed graph.
func NewDirected() *DiGraph {
	return &DiGraph{nodes: make(map[string]bool)}
}

// AddEdge appends a directed edge From → To.
func (g *DiGraph) AddEdge(e Edge) error {
	if e.Name == "" || e.From == "" || e.To == "" || e.From == e.To {
		return fmt.Errorf("%w: %+v", ErrBadEdge, e)
	}
	if e.Rel < 0 || e.Rel > 1 {
		return fmt.Errorf("%w: reliability %g outside [0,1]", ErrBadEdge, e.Rel)
	}
	for _, prev := range g.edges {
		if prev.Name == e.Name {
			return fmt.Errorf("%w: duplicate edge name %q", ErrBadEdge, e.Name)
		}
	}
	g.edges = append(g.edges, e)
	g.nodes[e.From] = true
	g.nodes[e.To] = true
	return nil
}

// Edges returns a copy of the edge list.
func (g *DiGraph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// MinimalPaths enumerates the node-simple directed s→t paths as edge-name
// lists.
func (g *DiGraph) MinimalPaths(source, target string) ([][]string, error) {
	if !g.nodes[source] {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchNode, source)
	}
	if !g.nodes[target] {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchNode, target)
	}
	adj := make(map[string][]int)
	for i, e := range g.edges {
		adj[e.From] = append(adj[e.From], i)
	}
	var paths [][]string
	visited := map[string]bool{source: true}
	var walk func(node string, trail []int)
	walk = func(node string, trail []int) {
		if node == target {
			names := make([]string, len(trail))
			for i, ei := range trail {
				names[i] = g.edges[ei].Name
			}
			paths = append(paths, names)
			return
		}
		for _, ei := range adj[node] {
			next := g.edges[ei].To
			if visited[next] {
				continue
			}
			visited[next] = true
			walk(next, append(trail, ei))
			visited[next] = false
		}
	}
	walk(source, nil)
	sort.Slice(paths, func(i, j int) bool {
		if len(paths[i]) != len(paths[j]) {
			return len(paths[i]) < len(paths[j])
		}
		return fmt.Sprint(paths[i]) < fmt.Sprint(paths[j])
	})
	return paths, nil
}

// Reliability computes P(a working directed s→t path exists) exactly via
// the BDD of the path-coverage function.
func (g *DiGraph) Reliability(source, target string) (float64, error) {
	paths, err := g.MinimalPaths(source, target)
	if err != nil {
		return 0, err
	}
	if len(paths) == 0 {
		return 0, nil
	}
	idx := make(map[string]int, len(g.edges))
	for i, e := range g.edges {
		idx[e.Name] = i
	}
	mgr := bdd.New(len(g.edges))
	f := bdd.False
	for _, p := range paths {
		term := bdd.True
		for _, name := range p {
			v, err := mgr.Var(idx[name])
			if err != nil {
				return 0, err
			}
			term = mgr.And(term, v)
		}
		f = mgr.Or(f, term)
	}
	probs := make([]float64, len(g.edges))
	for i, e := range g.edges {
		probs[i] = e.Rel
	}
	return mgr.Prob(f, probs)
}

// MinimalCuts returns the minimal directed s→t edge cut sets.
func (g *DiGraph) MinimalCuts(source, target string) ([][]string, error) {
	paths, err := g.MinimalPaths(source, target)
	if err != nil {
		return nil, err
	}
	idx := make(map[string]int, len(g.edges))
	for i, e := range g.edges {
		idx[e.Name] = i
	}
	mgr := bdd.New(len(g.edges))
	f := bdd.True
	for _, p := range paths {
		clause := bdd.False
		for _, name := range p {
			v, err := mgr.Var(idx[name])
			if err != nil {
				return nil, err
			}
			clause = mgr.Or(clause, v)
		}
		f = mgr.And(f, clause)
	}
	cuts := mgr.MinimalCutSets(f)
	out := make([][]string, len(cuts))
	for i, c := range cuts {
		names := make([]string, len(c))
		for j, v := range c {
			names[j] = g.edges[v].Name
		}
		out[i] = names
	}
	return out, nil
}
