package relgraph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Abs(b); m > 1e-300 {
		return d / m
	}
	return d
}

func mustAdd(t *testing.T, g *Graph, name, from, to string, p float64) {
	t.Helper()
	if err := g.AddEdge(Edge{Name: name, From: from, To: to, Rel: p}); err != nil {
		t.Fatal(err)
	}
}

// bridge builds the classic 5-edge bridge network between s and t.
func bridge(t *testing.T, p1, p2, p3, p4, p5 float64) *Graph {
	t.Helper()
	g := New()
	mustAdd(t, g, "e1", "s", "a", p1)
	mustAdd(t, g, "e2", "s", "b", p2)
	mustAdd(t, g, "e3", "a", "b", p3)
	mustAdd(t, g, "e4", "a", "t", p4)
	mustAdd(t, g, "e5", "b", "t", p5)
	return g
}

func TestSeriesChain(t *testing.T) {
	g := New()
	mustAdd(t, g, "e1", "s", "m", 0.9)
	mustAdd(t, g, "e2", "m", "t", 0.8)
	got, err := g.Reliability("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got, 0.72) > 1e-12 {
		t.Errorf("series = %g, want 0.72", got)
	}
}

func TestParallelEdges(t *testing.T) {
	g := New()
	mustAdd(t, g, "e1", "s", "t", 0.9)
	mustAdd(t, g, "e2", "s", "t", 0.8)
	got, err := g.Reliability("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 - 0.1*0.2; relErr(got, want) > 1e-12 {
		t.Errorf("parallel = %g, want %g", got, want)
	}
}

func TestBridgeKnownValue(t *testing.T) {
	// Identical p: R = 2p² + 2p³ - 5p⁴ + 2p⁵.
	p := 0.9
	g := bridge(t, p, p, p, p, p)
	got, err := g.Reliability("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	want := 2*math.Pow(p, 2) + 2*math.Pow(p, 3) - 5*math.Pow(p, 4) + 2*math.Pow(p, 5)
	if relErr(got, want) > 1e-12 {
		t.Errorf("bridge = %.12g, want %.12g", got, want)
	}
}

func TestFactoringMatchesBDD(t *testing.T) {
	g := bridge(t, 0.95, 0.7, 0.5, 0.85, 0.9)
	fact, err := g.Reliability("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.ReliabilityBDD("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if relErr(fact, exact) > 1e-12 {
		t.Errorf("factoring %g != BDD %g", fact, exact)
	}
}

func TestFactoringMatchesBDDRandomProperty(t *testing.T) {
	// Random graphs on 5 nodes with random edge reliabilities.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		nodes := []string{"s", "a", "b", "c", "t"}
		cnt := 0
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				if rng.Float64() < 0.6 {
					cnt++
					name := "e" + string(rune('0'+cnt))
					if err := g.AddEdge(Edge{Name: name, From: nodes[i], To: nodes[j], Rel: rng.Float64()}); err != nil {
						return false
					}
				}
			}
		}
		if cnt == 0 || !g.nodes["s"] || !g.nodes["t"] {
			return true // vacuous
		}
		fact, err := g.Reliability("s", "t")
		if err != nil {
			return false
		}
		exact, err := g.ReliabilityBDD("s", "t")
		if err != nil {
			return false
		}
		return math.Abs(fact-exact) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTerminalEdgePivotRegression(t *testing.T) {
	// Regression: a dense K5-minus-one-edge graph containing a direct s–t
	// edge used to mis-factor (contracting a terminal-to-terminal edge
	// silently lost the "surely connected" branch). Factoring must match
	// the BDD oracle.
	g := New()
	type spec struct {
		name, from, to string
		p              float64
	}
	for _, e := range []spec{
		{"e1", "s", "b", 0.268}, {"e2", "s", "c", 0.331}, {"e3", "s", "t", 0.175},
		{"e4", "a", "b", 0.745}, {"e5", "a", "c", 0.451}, {"e6", "a", "t", 0.800},
		{"e7", "b", "c", 0.802}, {"e8", "b", "t", 0.781}, {"e9", "c", "t", 0.855},
	} {
		mustAdd(t, g, e.name, e.from, e.to, e.p)
	}
	fact, err := g.Reliability("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.ReliabilityBDD("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fact-exact) > 1e-12 {
		t.Fatalf("factoring %g != BDD %g", fact, exact)
	}
}

func TestDisconnected(t *testing.T) {
	g := New()
	mustAdd(t, g, "e1", "s", "a", 0.9)
	mustAdd(t, g, "e2", "b", "t", 0.9)
	got, err := g.Reliability("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("disconnected = %g, want 0", got)
	}
}

func TestMinimalPathsBridge(t *testing.T) {
	g := bridge(t, 0.9, 0.9, 0.9, 0.9, 0.9)
	paths, err := g.MinimalPaths("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	// Bridge has 4 minimal paths: e1e4, e2e5, e1e3e5, e2e3e4.
	if len(paths) != 4 {
		t.Fatalf("paths = %v, want 4", paths)
	}
	if len(paths[0]) != 2 || len(paths[1]) != 2 || len(paths[2]) != 3 || len(paths[3]) != 3 {
		t.Errorf("path sizes wrong: %v", paths)
	}
}

func TestMinimalCutsBridge(t *testing.T) {
	g := bridge(t, 0.9, 0.9, 0.9, 0.9, 0.9)
	cuts, err := g.MinimalCuts("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	// Bridge has 4 minimal cuts: {e1,e2}, {e4,e5}, {e1,e3,e5}, {e2,e3,e4}.
	if len(cuts) != 4 {
		t.Fatalf("cuts = %v, want 4", cuts)
	}
}

func TestLadderNetwork(t *testing.T) {
	// Ladder of k rungs: factoring should handle it and match BDD.
	g := New()
	k := 6
	prev := "s"
	for i := 0; i < k; i++ {
		top := "u" + itoa(i)
		mustAdd(t, g, "a"+itoa(i), prev, top, 0.9)
		mustAdd(t, g, "b"+itoa(i), prev, top, 0.8)
		prev = top
	}
	mustAdd(t, g, "final", prev, "t", 0.95)
	fact, err := g.Reliability("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	want := 0.95 * math.Pow(1-0.1*0.2, float64(k))
	if relErr(fact, want) > 1e-12 {
		t.Errorf("ladder = %g, want %g", fact, want)
	}
}

func TestErrors(t *testing.T) {
	g := New()
	if err := g.AddEdge(Edge{Name: "", From: "a", To: "b", Rel: 0.5}); err == nil {
		t.Error("empty name accepted")
	}
	if err := g.AddEdge(Edge{Name: "x", From: "a", To: "a", Rel: 0.5}); err == nil {
		t.Error("self loop accepted")
	}
	if err := g.AddEdge(Edge{Name: "x", From: "a", To: "b", Rel: 1.5}); err == nil {
		t.Error("bad probability accepted")
	}
	mustAdd(t, g, "e", "a", "b", 0.5)
	if err := g.AddEdge(Edge{Name: "e", From: "b", To: "c", Rel: 0.5}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := g.Reliability("missing", "b"); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("want ErrNoSuchNode, got %v", err)
	}
	if _, err := g.Reliability("a", "a"); err != nil {
		t.Errorf("s==t should be reliability 1, got err %v", err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
