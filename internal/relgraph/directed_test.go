package relgraph

import (
	"math"
	"testing"
)

func mustAddDi(t *testing.T, g *DiGraph, name, from, to string, p float64) {
	t.Helper()
	if err := g.AddEdge(Edge{Name: name, From: from, To: to, Rel: p}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedSeriesParallel(t *testing.T) {
	g := NewDirected()
	mustAddDi(t, g, "e1", "s", "m", 0.9)
	mustAddDi(t, g, "e2", "m", "t", 0.8)
	mustAddDi(t, g, "e3", "s", "t", 0.5)
	got, err := g.Reliability("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.72)*(1-0.5)
	if relErr(got, want) > 1e-12 {
		t.Errorf("reliability = %g, want %g", got, want)
	}
}

func TestDirectedEdgeDirectionMatters(t *testing.T) {
	// Only a backwards edge: no s→t path.
	g := NewDirected()
	mustAddDi(t, g, "back", "t", "s", 0.99)
	got, err := g.Reliability("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("reliability = %g, want 0 (edge is backwards)", got)
	}
	// The undirected graph with the same edge would connect them.
	u := New()
	mustAdd(t, u, "back", "t", "s", 0.99)
	ur, err := u.Reliability("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if ur != 0.99 {
		t.Errorf("undirected baseline = %g, want 0.99", ur)
	}
}

func TestDirectedBridgeVsUndirected(t *testing.T) {
	// Bridge with a one-way center edge a→b: the path through b→a is
	// unavailable, so the directed reliability is below the undirected one
	// (for asymmetric end probabilities that use that direction).
	build := func() (*DiGraph, *Graph) {
		d := NewDirected()
		u := New()
		type spec struct {
			name, from, to string
			p              float64
		}
		edges := []spec{
			{"e1", "s", "a", 0.9}, {"e2", "s", "b", 0.7},
			{"e3", "a", "b", 0.8},
			{"e4", "a", "t", 0.7}, {"e5", "b", "t", 0.9},
		}
		for _, e := range edges {
			mustAddDi(t, d, e.name, e.from, e.to, e.p)
			mustAdd(t, u, e.name, e.from, e.to, e.p)
		}
		return d, u
	}
	d, u := build()
	dr, err := d.Reliability("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	ur, err := u.Reliability("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if !(dr < ur) {
		t.Errorf("directed %g should be below undirected %g (lost b→a path)", dr, ur)
	}
	paths, err := d.MinimalPaths("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	// Directed bridge has 3 paths: e1e4, e2e5, e1e3e5 (no e2e3e4).
	if len(paths) != 3 {
		t.Errorf("paths = %v, want 3", paths)
	}
	cuts, err := d.MinimalCuts("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) == 0 {
		t.Error("no cuts found")
	}
	// Every path must intersect every cut.
	for _, c := range cuts {
		cutSet := map[string]bool{}
		for _, name := range c {
			cutSet[name] = true
		}
		for _, p := range paths {
			hit := false
			for _, name := range p {
				if cutSet[name] {
					hit = true
					break
				}
			}
			if !hit {
				t.Errorf("cut %v misses path %v", c, p)
			}
		}
	}
}

func TestDirectedRareEventConsistency(t *testing.T) {
	// Unreliability via cuts (rare-event) must upper-bound exact.
	g := NewDirected()
	mustAddDi(t, g, "e1", "s", "a", 0.9)
	mustAddDi(t, g, "e2", "a", "t", 0.9)
	mustAddDi(t, g, "e3", "s", "b", 0.8)
	mustAddDi(t, g, "e4", "b", "t", 0.8)
	r, err := g.Reliability("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := g.MinimalCuts("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	relOf := map[string]float64{"e1": 0.9, "e2": 0.9, "e3": 0.8, "e4": 0.8}
	var rare float64
	for _, c := range cuts {
		p := 1.0
		for _, name := range c {
			p *= 1 - relOf[name]
		}
		rare += p
	}
	if rare < (1-r)-1e-12 {
		t.Errorf("rare-event %g below exact unreliability %g", rare, 1-r)
	}
	want := 1 - (1-0.81)*(1-0.64)
	if math.Abs(r-want) > 1e-12 {
		t.Errorf("reliability = %g, want %g", r, want)
	}
}

func TestDirectedValidation(t *testing.T) {
	g := NewDirected()
	if err := g.AddEdge(Edge{Name: "", From: "a", To: "b", Rel: 0.5}); err == nil {
		t.Error("empty name accepted")
	}
	if err := g.AddEdge(Edge{Name: "x", From: "a", To: "a", Rel: 0.5}); err == nil {
		t.Error("self loop accepted")
	}
	mustAddDi(t, g, "e", "a", "b", 0.5)
	if err := g.AddEdge(Edge{Name: "e", From: "b", To: "c", Rel: 0.5}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := g.Reliability("ghost", "b"); err == nil {
		t.Error("unknown node accepted")
	}
}
