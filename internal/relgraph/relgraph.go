// Package relgraph implements reliability graphs (s–t network reliability):
// nodes are perfect, edges fail independently with known probability, and
// the system is up while at least one source→target path of working edges
// exists. The solver is the classic factoring (pivotal decomposition)
// algorithm accelerated by series and parallel reductions; minimal path and
// cut sets are extracted via a BDD over the edge variables, which also
// serves as an independent exact oracle.
//
// Reliability graphs are the third of the tutorial's non-state-space model
// types.
package relgraph

import (
	"errors"
	"fmt"
	"sort"
)

// Edge is a failing connection between two perfect nodes.
type Edge struct {
	// Name identifies the edge; unique per graph.
	Name string
	// From and To are node names. Edges are undirected.
	From, To string
	// Rel is the probability the edge is up.
	Rel float64
}

// Graph is an undirected reliability graph.
type Graph struct {
	edges []Edge
	nodes map[string]bool
}

// Errors returned by graph analysis.
var (
	ErrNoSuchNode = errors.New("relgraph: node not in graph")
	ErrBadEdge    = errors.New("relgraph: invalid edge")
)

// New returns an empty graph.
func New() *Graph {
	return &Graph{nodes: make(map[string]bool)}
}

// AddEdge appends an undirected edge. Probabilities must lie in [0,1] and
// names must be unique.
func (g *Graph) AddEdge(e Edge) error {
	if e.Name == "" || e.From == "" || e.To == "" || e.From == e.To {
		return fmt.Errorf("%w: %+v", ErrBadEdge, e)
	}
	if e.Rel < 0 || e.Rel > 1 {
		return fmt.Errorf("%w: reliability %g outside [0,1]", ErrBadEdge, e.Rel)
	}
	for _, prev := range g.edges {
		if prev.Name == e.Name {
			return fmt.Errorf("%w: duplicate edge name %q", ErrBadEdge, e.Name)
		}
	}
	g.edges = append(g.edges, e)
	g.nodes[e.From] = true
	g.nodes[e.To] = true
	return nil
}

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// NumNodes returns the number of distinct nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// --- factoring solver ------------------------------------------------------

// workGraph is the mutable graph used during factoring. Nodes are ints after
// renumbering; parallel edges are allowed (they arise from contractions).
type workGraph struct {
	n     int
	edges []workEdge
	s, t  int
}

type workEdge struct {
	u, v int
	p    float64
}

// Reliability computes the probability that source and target are connected
// by working edges, using factoring with series-parallel reductions.
func (g *Graph) Reliability(source, target string) (float64, error) {
	if !g.nodes[source] {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchNode, source)
	}
	if !g.nodes[target] {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchNode, target)
	}
	if source == target {
		return 1, nil
	}
	// Renumber nodes.
	id := make(map[string]int, len(g.nodes))
	names := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		id[n] = i
	}
	w := &workGraph{n: len(names), s: id[source], t: id[target]}
	w.edges = make([]workEdge, len(g.edges))
	for i, e := range g.edges {
		w.edges[i] = workEdge{u: id[e.From], v: id[e.To], p: e.Rel}
	}
	return factor(w), nil
}

// factor implements pivotal decomposition with reductions.
func factor(w *workGraph) float64 {
	w = reduce(w)
	if w.s == w.t {
		return 1
	}
	if !connected(w) {
		return 0
	}
	if len(w.edges) == 1 {
		e := w.edges[0]
		if (e.u == w.s && e.v == w.t) || (e.v == w.s && e.u == w.t) {
			return e.p
		}
		return 0
	}
	// Pivot on an edge incident to the source (a common effective heuristic).
	pivot := 0
	for i, e := range w.edges {
		if e.u == w.s || e.v == w.s {
			pivot = i
			break
		}
	}
	e := w.edges[pivot]
	if (e.u == w.s && e.v == w.t) || (e.v == w.s && e.u == w.t) {
		// Contracting a terminal-to-terminal edge merges s with t: that
		// branch is surely connected and contributes p directly.
		return e.p + (1-e.p)*factor(remove(w, pivot))
	}
	up := contract(w, pivot)
	down := remove(w, pivot)
	return e.p*factor(up) + (1-e.p)*factor(down)
}

// reduce applies parallel and series reductions and drops dangling edges
// until a fixed point.
func reduce(w *workGraph) *workGraph {
	for { //numvet:allow unbounded-loop each pass strictly shrinks the edge set or exits via !changed
		changed := false
		// Parallel reduction: merge duplicate (u,v) pairs.
		type key struct{ a, b int }
		seen := make(map[key]int, len(w.edges))
		var merged []workEdge
		for _, e := range w.edges {
			a, b := e.u, e.v
			if a > b {
				a, b = b, a
			}
			if idx, ok := seen[key{a, b}]; ok {
				merged[idx].p = 1 - (1-merged[idx].p)*(1-e.p)
				changed = true
				continue
			}
			seen[key{a, b}] = len(merged)
			merged = append(merged, e)
		}
		w = &workGraph{n: w.n, edges: merged, s: w.s, t: w.t}

		// Degree count for series reduction and dangling removal.
		deg := make([]int, w.n)
		for _, e := range w.edges {
			deg[e.u]++
			deg[e.v]++
		}
		// Remove dangling degree-1 nodes that are neither s nor t.
		removedAny := false
		var kept []workEdge
		for _, e := range w.edges {
			dangling := (deg[e.u] == 1 && e.u != w.s && e.u != w.t) ||
				(deg[e.v] == 1 && e.v != w.s && e.v != w.t)
			if dangling {
				removedAny = true
				continue
			}
			kept = append(kept, e)
		}
		if removedAny {
			w.edges = kept
			changed = true
			continue // recompute degrees
		}
		// Series reduction: internal degree-2 node x with edges (a,x),(x,b),
		// a != b: replace by (a,b) with p1·p2.
		for x := 0; x < w.n; x++ {
			if x == w.s || x == w.t || deg[x] != 2 {
				continue
			}
			var idx []int
			for i, e := range w.edges {
				if e.u == x || e.v == x {
					idx = append(idx, i)
				}
			}
			if len(idx) != 2 {
				continue
			}
			e1, e2 := w.edges[idx[0]], w.edges[idx[1]]
			other := func(e workEdge) int {
				if e.u == x {
					return e.v
				}
				return e.u
			}
			a, b := other(e1), other(e2)
			if a == b {
				// Self-loop after merge: both edges vanish (a loop never
				// helps connectivity).
				w.edges = deleteIndices(w.edges, idx)
				changed = true
				break
			}
			ne := workEdge{u: a, v: b, p: e1.p * e2.p}
			w.edges = append(deleteIndices(w.edges, idx), ne)
			changed = true
			break
		}
		if !changed {
			return w
		}
	}
}

func deleteIndices(edges []workEdge, idx []int) []workEdge {
	drop := make(map[int]bool, len(idx))
	for _, i := range idx {
		drop[i] = true
	}
	out := make([]workEdge, 0, len(edges)-len(idx))
	for i, e := range edges {
		if !drop[i] {
			out = append(out, e)
		}
	}
	return out
}

// connected reports whether s and t are joined ignoring probabilities.
func connected(w *workGraph) bool {
	adj := make([][]int, w.n)
	for _, e := range w.edges {
		adj[e.u] = append(adj[e.u], e.v)
		adj[e.v] = append(adj[e.v], e.u)
	}
	seen := make([]bool, w.n)
	stack := []int{w.s}
	seen[w.s] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == w.t {
			return true
		}
		for _, y := range adj[x] {
			if !seen[y] {
				seen[y] = true
				stack = append(stack, y)
			}
		}
	}
	return false
}

// contract merges the endpoints of edge i (edge works for sure).
func contract(w *workGraph, i int) *workGraph {
	e := w.edges[i]
	keep, gone := e.u, e.v
	if gone == w.s || gone == w.t {
		keep, gone = gone, keep
	}
	out := &workGraph{n: w.n, s: w.s, t: w.t}
	for j, other := range w.edges {
		if j == i {
			continue
		}
		ne := other
		if ne.u == gone {
			ne.u = keep
		}
		if ne.v == gone {
			ne.v = keep
		}
		if ne.u == ne.v {
			continue // self loop
		}
		out.edges = append(out.edges, ne)
	}
	return out
}

// remove deletes edge i (edge failed for sure).
func remove(w *workGraph, i int) *workGraph {
	out := &workGraph{n: w.n, s: w.s, t: w.t}
	out.edges = append(out.edges, w.edges[:i]...)
	out.edges = append(out.edges, w.edges[i+1:]...)
	return out
}
