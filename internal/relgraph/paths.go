package relgraph

import (
	"fmt"
	"sort"

	"repro/internal/bdd"
)

// MinimalPaths enumerates the minimal s–t paths as lists of edge names
// (simple paths; minimality over edge sets follows from node-simplicity in
// an undirected graph).
func (g *Graph) MinimalPaths(source, target string) ([][]string, error) {
	if !g.nodes[source] {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchNode, source)
	}
	if !g.nodes[target] {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchNode, target)
	}
	adj := make(map[string][]int)
	for i, e := range g.edges {
		adj[e.From] = append(adj[e.From], i)
		adj[e.To] = append(adj[e.To], i)
	}
	var paths [][]string
	visited := map[string]bool{source: true}
	var walk func(node string, trail []int)
	walk = func(node string, trail []int) {
		if node == target {
			names := make([]string, len(trail))
			for i, ei := range trail {
				names[i] = g.edges[ei].Name
			}
			paths = append(paths, names)
			return
		}
		for _, ei := range adj[node] {
			e := g.edges[ei]
			next := e.To
			if next == node {
				next = e.From
			}
			if visited[next] {
				continue
			}
			visited[next] = true
			walk(next, append(trail, ei))
			visited[next] = false
		}
	}
	walk(source, nil)
	sort.Slice(paths, func(i, j int) bool {
		if len(paths[i]) != len(paths[j]) {
			return len(paths[i]) < len(paths[j])
		}
		return fmt.Sprint(paths[i]) < fmt.Sprint(paths[j])
	})
	return paths, nil
}

// structureBDD compiles the s–t connectivity function as a BDD over edge
// variables (edge i up = variable i true) from the minimal paths.
func (g *Graph) structureBDD(source, target string) (*bdd.Manager, bdd.Ref, error) {
	paths, err := g.MinimalPaths(source, target)
	if err != nil {
		return nil, bdd.False, err
	}
	idx := make(map[string]int, len(g.edges))
	for i, e := range g.edges {
		idx[e.Name] = i
	}
	mgr := bdd.New(len(g.edges))
	f := bdd.False
	for _, p := range paths {
		term := bdd.True
		for _, name := range p {
			v, err := mgr.Var(idx[name])
			if err != nil {
				return nil, bdd.False, err
			}
			term = mgr.And(term, v)
		}
		f = mgr.Or(f, term)
	}
	return mgr, f, nil
}

// ReliabilityBDD computes the s–t reliability exactly via the BDD of the
// connectivity function. It serves as an independent oracle for the
// factoring solver (and handles graphs whose path count is moderate).
func (g *Graph) ReliabilityBDD(source, target string) (float64, error) {
	mgr, f, err := g.structureBDD(source, target)
	if err != nil {
		return 0, err
	}
	p := make([]float64, len(g.edges))
	for i, e := range g.edges {
		p[i] = e.Rel
	}
	return mgr.Prob(f, p)
}

// MinimalCuts returns the minimal s–t edge cut sets as lists of edge names,
// extracted from the dual of the connectivity BDD.
func (g *Graph) MinimalCuts(source, target string) ([][]string, error) {
	paths, err := g.MinimalPaths(source, target)
	if err != nil {
		return nil, err
	}
	idx := make(map[string]int, len(g.edges))
	for i, e := range g.edges {
		idx[e.Name] = i
	}
	// Failure function over "edge failed" variables: system fails iff every
	// path contains at least one failed edge → AND over paths of OR of
	// failed edges.
	mgr := bdd.New(len(g.edges))
	f := bdd.True
	for _, p := range paths {
		clause := bdd.False
		for _, name := range p {
			v, err := mgr.Var(idx[name])
			if err != nil {
				return nil, err
			}
			clause = mgr.Or(clause, v)
		}
		f = mgr.And(f, clause)
	}
	cuts := mgr.MinimalCutSets(f)
	out := make([][]string, len(cuts))
	for i, c := range cuts {
		names := make([]string, len(c))
		for j, v := range c {
			names[j] = g.edges[v].Name
		}
		out[i] = names
	}
	return out, nil
}
