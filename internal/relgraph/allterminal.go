package relgraph

import (
	"fmt"
	"sort"
)

// All-terminal reliability: the probability that the working edges keep
// EVERY node connected (the network-management variant of the s–t
// measure). Solved by factoring with parallel-edge reduction; series
// reduction does not preserve all-terminal semantics, so it is not
// applied. Intended for the tens-of-edges graphs where the measure is
// used.

// maxAllTerminalEdges caps the factoring recursion (2^n worst case).
const maxAllTerminalEdges = 40

// AllTerminalReliability returns P(all nodes connected).
func (g *Graph) AllTerminalReliability() (float64, error) {
	if len(g.nodes) == 0 {
		return 0, fmt.Errorf("relgraph: empty graph")
	}
	if len(g.nodes) == 1 {
		return 1, nil
	}
	if len(g.edges) > maxAllTerminalEdges {
		return 0, fmt.Errorf("relgraph: %d edges exceed the all-terminal cap of %d",
			len(g.edges), maxAllTerminalEdges)
	}
	// Renumber.
	names := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	id := make(map[string]int, len(names))
	for i, n := range names {
		id[n] = i
	}
	edges := make([]workEdge, len(g.edges))
	for i, e := range g.edges {
		edges[i] = workEdge{u: id[e.From], v: id[e.To], p: e.Rel}
	}
	return allTerminalFactor(len(names), edges), nil
}

// allTerminalFactor implements pivotal decomposition for all-terminal
// connectivity over `n` live node labels.
func allTerminalFactor(n int, edges []workEdge) float64 {
	edges = mergeParallel(edges)
	if countComponents(n, edges, false) > 1 {
		return 0 // some node is unreachable even with all edges up
	}
	if n == 1 {
		return 1
	}
	if len(edges) == n-1 {
		// Spanning tree: every edge must work.
		p := 1.0
		for _, e := range edges {
			p *= e.p
		}
		return p
	}
	// Pivot on the first edge.
	e := edges[0]
	rest := edges[1:]
	// Contract (edge up): merge v into u, relabel compactly.
	contracted := make([]workEdge, 0, len(rest))
	for _, o := range rest {
		ne := o
		if ne.u == e.v {
			ne.u = e.u
		}
		if ne.v == e.v {
			ne.v = e.u
		}
		if ne.u != ne.v {
			contracted = append(contracted, ne)
		}
	}
	up := allTerminalFactor(n-1, relabel(contracted, e.v, n))
	down := allTerminalFactor(n, rest)
	return e.p*up + (1-e.p)*down
}

// relabel compacts node labels after `gone` was merged away: every label
// above gone shifts down by one so labels stay 0..n-2.
func relabel(edges []workEdge, gone, n int) []workEdge {
	out := make([]workEdge, len(edges))
	shift := func(x int) int {
		if x > gone {
			return x - 1
		}
		return x
	}
	for i, e := range edges {
		out[i] = workEdge{u: shift(e.u), v: shift(e.v), p: e.p}
	}
	return out
}

// mergeParallel combines duplicate undirected edges.
func mergeParallel(edges []workEdge) []workEdge {
	type key struct{ a, b int }
	seen := make(map[key]int, len(edges))
	var out []workEdge
	for _, e := range edges {
		a, b := e.u, e.v
		if a > b {
			a, b = b, a
		}
		if idx, ok := seen[key{a, b}]; ok {
			out[idx].p = 1 - (1-out[idx].p)*(1-e.p)
			continue
		}
		seen[key{a, b}] = len(out)
		out = append(out, e)
	}
	return out
}

// countComponents returns the number of connected components over labels
// 0..n-1 given the edges (probabilities ignored).
func countComponents(n int, edges []workEdge, _ bool) int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps := n
	for _, e := range edges {
		ru, rv := find(e.u), find(e.v)
		if ru != rv {
			parent[ru] = rv
			comps--
		}
	}
	return comps
}
