package reldash

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// TestParseTemplates fails `go test` on a broken embedded template, so a
// template error can never survive to the first page load. It also
// executes both pages against representative data: ParseFS alone does
// not catch a missing field or function reference.
func TestParseTemplates(t *testing.T) {
	tmpl, err := ParseTemplates()
	if err != nil {
		t.Fatalf("embedded templates do not parse: %v", err)
	}
	for _, name := range []string{"index", "trace", "span", "head", "header", "livejs"} {
		if tmpl.Lookup(name) == nil {
			t.Errorf("template %q not defined", name)
		}
	}

	tr := obs.NewTrace("m")
	sub := tr.Span("linalg.sor", obs.S("solver", "sor"))
	sub.Iter(1, 0.5)
	sub.Iter(2, 0.01)
	sub.End()
	rec := obs.RecordFromTrace(tr, "m", "solve")
	rec.ID, rec.Outcome, rec.Start = "t1", "ok", time.Unix(0, 0)

	var sb strings.Builder
	if err := tmpl.ExecuteTemplate(&sb, "trace", traceData{Rec: rec}); err != nil {
		t.Fatalf("trace template does not execute: %v", err)
	}
	if out := sb.String(); !strings.Contains(out, "linalg.sor") || !strings.Contains(out, "<svg") {
		t.Errorf("trace page missing span tree or sparkline:\n%s", out)
	}

	sb.Reset()
	data := indexData{
		Traces:   []obs.TraceRecord{rec},
		StoreLen: 1, StoreCap: 4,
		Solvers: []solverRow{{Solver: "sor", Model: "m", Count: 1, AvgMS: 2}},
	}
	if err := tmpl.ExecuteTemplate(&sb, "index", data); err != nil {
		t.Fatalf("index template does not execute: %v", err)
	}
	if out := sb.String(); !strings.Contains(out, "/ui/trace/t1") {
		t.Errorf("index page missing trace link:\n%s", out)
	}
}

// newTestHandler builds a handler over a populated store and registry.
func newTestHandler(t *testing.T, benchPath string) (*Handler, *obs.TraceStore) {
	t.Helper()
	store := obs.NewTraceStore(8)
	reg := metrics.NewRegistry()
	h, err := NewHandler(Config{
		Store:     store,
		Registry:  reg,
		BenchPath: benchPath,
		InFlight:  func() int { return 3 },
		Start:     time.Now().Add(-time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, store
}

func get(t *testing.T, h *Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	mux := http.NewServeMux()
	h.Register(mux)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func TestHandlerHeaders(t *testing.T) {
	h, store := newTestHandler(t, "")
	store.Put(obs.TraceRecord{Model: "m", Endpoint: "solve"})
	for path, wantCT := range map[string]string{
		"/ui":            "text/html; charset=utf-8",
		"/ui/trace/t1":   "text/html; charset=utf-8",
		"/api/traces":    "application/json; charset=utf-8",
		"/api/traces/t1": "application/json; charset=utf-8",
		"/api/metrics":   "application/json; charset=utf-8",
		"/api/bench":     "application/json; charset=utf-8",
		"/api/summary":   "application/json; charset=utf-8",
		"/api/jobs":      "application/json; charset=utf-8",
	} {
		w := get(t, h, path)
		if w.Code != http.StatusOK {
			t.Errorf("GET %s: status %d", path, w.Code)
		}
		if got := w.Header().Get("Content-Type"); got != wantCT {
			t.Errorf("GET %s: Content-Type %q, want %q", path, got, wantCT)
		}
		if got := w.Header().Get("Cache-Control"); got != "no-store" {
			t.Errorf("GET %s: Cache-Control %q, want no-store", path, got)
		}
	}
}

// TestHandlerJobs pins /api/jobs and the index Jobs panel: without a
// feed the API reports disabled and the panel is absent; with one, the
// rows flow through to both.
func TestHandlerJobs(t *testing.T) {
	h, _ := newTestHandler(t, "")
	var payload jobsPayload
	if err := json.Unmarshal(get(t, h, "/api/jobs").Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Enabled || len(payload.Jobs) != 0 {
		t.Fatalf("feedless /api/jobs = %+v, want disabled and empty", payload)
	}
	if body := get(t, h, "/ui").Body.String(); strings.Contains(body, "Sweep jobs") {
		t.Error("index renders the Jobs panel without a feed")
	}

	store := obs.NewTraceStore(8)
	rows := []JobRow{{ID: "j1", State: "running", Samples: 1000, Shards: 10, DoneShards: 4, Progress: 0.4, Resumed: true}}
	h2, err := NewHandler(Config{Store: store, Registry: metrics.NewRegistry(), Jobs: func() []JobRow { return rows }})
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(get(t, h2, "/api/jobs").Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if !payload.Enabled || len(payload.Jobs) != 1 || payload.Jobs[0].ID != "j1" {
		t.Fatalf("/api/jobs = %+v, want the one fed row", payload)
	}
	body := get(t, h2, "/ui").Body.String()
	for _, want := range []string{"Sweep jobs", "j1", "4/10 (40%)", "running"} {
		if !strings.Contains(body, want) {
			t.Errorf("index Jobs panel missing %q", want)
		}
	}
}

func TestHandlerTraceNotFound(t *testing.T) {
	h, _ := newTestHandler(t, "")
	if w := get(t, h, "/api/traces/t999"); w.Code != http.StatusNotFound {
		t.Errorf("/api/traces/t999: status %d, want 404", w.Code)
	}
	if w := get(t, h, "/ui/trace/t999"); w.Code != http.StatusNotFound {
		t.Errorf("/ui/trace/t999: status %d, want 404", w.Code)
	}
}

func TestHandlerSummary(t *testing.T) {
	h, store := newTestHandler(t, "")
	store.Put(obs.TraceRecord{Model: "m"})
	h.Window().Record(false)
	h.Window().Record(false)
	h.Window().Record(true)

	w := get(t, h, "/api/summary")
	var p summaryPayload
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Requests != 3 || p.Errors != 1 {
		t.Errorf("requests/errors = %d/%d, want 3/1", p.Requests, p.Errors)
	}
	if p.ErrorRate < 0.33 || p.ErrorRate > 0.34 {
		t.Errorf("error rate = %v", p.ErrorRate)
	}
	if p.InFlight != 3 {
		t.Errorf("in_flight = %d, want 3 (from the InFlight func)", p.InFlight)
	}
	if p.UptimeS < 59 {
		t.Errorf("uptime = %v, want about a minute", p.UptimeS)
	}
	if p.TraceStore.Len != 1 || p.TraceStore.Cap != 8 {
		t.Errorf("trace_store = %+v", p.TraceStore)
	}
	if p.WindowS <= 0 || p.ThroughputPerS <= 0 {
		t.Errorf("window stats: %+v", p)
	}
}

func TestHandlerBenchMissingFile(t *testing.T) {
	h, _ := newTestHandler(t, "/nonexistent/BENCH.json")
	w := get(t, h, "/api/bench")
	var p benchPayload
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Error == "" || len(p.Entries) != 0 {
		t.Errorf("missing baseline not reported: %+v", p)
	}
	// A missing baseline must not break the index page either.
	if w := get(t, h, "/ui"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "bench baseline unavailable") {
		t.Errorf("/ui with missing baseline: %d", w.Code)
	}
}

func TestHandlerTracesFilterQuery(t *testing.T) {
	h, store := newTestHandler(t, "")
	store.Put(obs.TraceRecord{Model: "a", Solver: "sor", Outcome: "ok"})
	store.Put(obs.TraceRecord{Model: "b", Solver: "gth", Outcome: "error"})

	w := get(t, h, "/api/traces?solver=gth&outcome=error")
	var p tracesPayload
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Retained != 2 || p.Capacity != 8 {
		t.Errorf("occupancy: %+v", p)
	}
	if len(p.Traces) != 1 || p.Traces[0].Model != "b" {
		t.Errorf("filtered list: %+v", p.Traces)
	}
}

func TestSparklineDeterministic(t *testing.T) {
	iters := []obs.IterPoint{{N: 1, Residual: 1e-2}, {N: 2, Residual: 1e-4}, {N: 3, Residual: 1e-8}}
	a, b := sparklineSVG(iters), sparklineSVG(iters)
	if a == "" || a != b {
		t.Fatalf("sparkline not deterministic:\n%s\n%s", a, b)
	}
	if !strings.Contains(string(a), "polyline") {
		t.Errorf("sparkline is not an svg polyline: %s", a)
	}
	if got := sparklineSVG(iters[:1]); got != "" {
		t.Errorf("single-point sparkline should be empty, got %s", got)
	}
	// Non-positive residuals must not produce NaN coordinates.
	weird := []obs.IterPoint{{N: 1, Residual: 0}, {N: 2, Residual: 1e-3}}
	if s := string(sparklineSVG(weird)); strings.Contains(s, "NaN") {
		t.Errorf("sparkline leaked NaN: %s", s)
	}
}
