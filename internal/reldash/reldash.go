// Package reldash is the embedded observability dashboard mounted on
// `relcli serve`. It follows the embedded-templates-over-an-analysis-
// engine pattern: html/template pages compiled from an embed.FS (no
// external assets, no new dependencies) rendering views over the
// telemetry the solve pipeline already produces — the obs.TraceStore of
// retained solve traces, the relscope metrics registry snapshot, and the
// committed relbench baseline.
//
// Routes (all GET, all marked Cache-Control: no-store):
//
//	/ui              trace list + filters + metric highlights + bench trend
//	/ui/trace/{id}   one trace: nested span tree, attrs, residual sparklines
//	/api/traces      filterable trace metadata (model, solver, outcome, limit)
//	/api/traces/{id} one full trace record including the span tree
//	/api/metrics     metrics.Registry snapshot as structured JSON
//	/api/bench       BENCH_solvers.json trend (median/p95 per experiment)
//	/api/summary     sliding-window throughput/error rate + uptime + store occupancy
//
// The /ui pages poll /api/summary for liveness; there is no SSE or
// websocket machinery, so the dashboard works wherever net/http does.
package reldash

import (
	"bytes"
	"embed"
	"encoding/json"
	"fmt"
	"html/template"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/metrics"
	"repro/internal/obs"
)

//go:embed templates/*.gohtml
var templateFS embed.FS

// ParseTemplates compiles the embedded dashboard templates. It is
// exported so a unit test can fail the build on a broken template
// instead of the first page load discovering it.
func ParseTemplates() (*template.Template, error) {
	return template.New("reldash").Funcs(template.FuncMap{
		"ms":      fmtMS,
		"msNS":    func(ns int64) string { return fmtMS(float64(ns) / 1e6) },
		"rfc3339": func(t time.Time) string { return t.Format(time.RFC3339) },
		"spark":   sparklineSVG,
		"resid":   residRange,
	}).ParseFS(templateFS, "templates/*.gohtml")
}

// fmtMS renders a millisecond quantity with its unit attached.
func fmtMS(v float64) string { return fmt.Sprintf("%.3gms", v) }

// Config wires the dashboard to the serve process's telemetry surfaces.
type Config struct {
	// Store holds the retained solve traces (required).
	Store *obs.TraceStore
	// Registry backs /api/metrics and the index metric highlights
	// (nil means the default registry).
	Registry *metrics.Registry
	// BenchPath locates the committed bench baseline for /api/bench
	// (empty disables the trend section).
	BenchPath string
	// Window receives request completions for /api/summary (nil builds a
	// one-minute window; the caller must then Record into that one).
	Window *Window
	// InFlight reports currently-executing solves (nil reports 0).
	InFlight func() int
	// Start anchors the uptime report (zero means "now").
	Start time.Time
	// Resilience snapshots the serve-layer protection state — admission
	// queue occupancy, breaker states, shed/degraded counts, draining —
	// for /api/summary and the index page (nil hides the section).
	Resilience func() Resilience
	// Jobs snapshots the async sweep jobs for /api/jobs and the index
	// Jobs panel (nil hides both).
	Jobs func() []JobRow
	// SLO snapshots the serve-layer SLO engine for the index SLO panel
	// (nil, or a nil return, hides it).
	SLO func() *SLOView
	// Profiles lists continuous-profiling captures overlapping a time
	// window, for the trace detail page (nil hides the section).
	Profiles func(start, end time.Time) []ProfileRow
}

// SLOView is the dashboard's flattened snapshot of the SLO engine —
// defined here so reldash does not import the engine package.
type SLOView struct {
	Rows []SLORow `json:"rows"`
	// Measured is the availability objective's good fraction over its
	// longest window; Modeled is the self-model CTMC's predicted
	// steady-state availability. Together they are the modeled-vs-
	// measured pair the panel headlines.
	Measured   float64 `json:"measured"`
	Modeled    float64 `json:"modeled"`
	ModeledOK  bool    `json:"modeled_ok"`
	ModeledErr string  `json:"modeled_err,omitempty"`
}

// SLORow is one objective's status as the dashboard renders it.
type SLORow struct {
	Name            string      `json:"name"`
	Kind            string      `json:"kind"`
	Target          float64     `json:"target"`
	WorstBurn       float64     `json:"worst_burn"`
	BudgetRemaining float64     `json:"budget_remaining"`
	Breaching       bool        `json:"breaching"`
	Breaches        int         `json:"breaches"`
	Windows         []SLOWindow `json:"windows"`
}

// BudgetPct renders the remaining error budget as a whole percentage
// for the <progress> budget bars.
func (r SLORow) BudgetPct() int { return int(r.BudgetRemaining*100 + 0.5) }

// SLOWindow is one burn-rate window cell in an SLO row.
type SLOWindow struct {
	Label     string  `json:"label"`
	Burn      float64 `json:"burn"`
	Breaching bool    `json:"breaching"`
}

// ProfileRow is one continuous-profiling capture as the trace page
// lists it.
type ProfileRow struct {
	Name  string    `json:"name"`
	Kind  string    `json:"kind"`
	Start time.Time `json:"start"`
	Bytes int64     `json:"bytes"`
}

// JobRow is one async sweep job as the dashboard renders it — a
// flattened view of the job engine's snapshot, defined here so reldash
// does not import the engine.
type JobRow struct {
	ID         string  `json:"id"`
	State      string  `json:"state"`
	Samples    int     `json:"samples"`
	Shards     int     `json:"shards"`
	DoneShards int     `json:"done_shards"`
	Progress   float64 `json:"progress"`
	Retries    int64   `json:"retries,omitempty"`
	Resumed    bool    `json:"resumed,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// Pct renders the progress fraction as a whole percentage for the
// progress bars on the index page.
func (j JobRow) Pct() int { return int(j.Progress*100 + 0.5) }

// Resilience is the serve-layer protection snapshot the dashboard
// renders: is the process draining, how full is the admission queue,
// which model-class circuit breakers have left the closed state, and
// how much traffic has been shed or answered with degraded bounds.
type Resilience struct {
	Draining bool              `json:"draining"`
	QueueLen int               `json:"queue_len"`
	QueueCap int               `json:"queue_cap"`
	Breakers map[string]string `json:"breakers,omitempty"`
	Shed     float64           `json:"shed_total"`
	Degraded float64           `json:"degraded_total"`
}

// Handler serves the dashboard pages and their JSON APIs.
type Handler struct {
	cfg  Config
	tmpl *template.Template
}

// NewHandler validates the config and compiles the templates.
func NewHandler(cfg Config) (*Handler, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("reldash: Config.Store is required")
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.Default()
	}
	if cfg.Window == nil {
		cfg.Window = NewWindow(time.Minute)
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Now()
	}
	tmpl, err := ParseTemplates()
	if err != nil {
		return nil, fmt.Errorf("reldash: %w", err)
	}
	return &Handler{cfg: cfg, tmpl: tmpl}, nil
}

// Window returns the request window the handler reports on, so the
// serve layer can Record into it.
func (h *Handler) Window() *Window { return h.cfg.Window }

// Register mounts every dashboard route on mux.
func (h *Handler) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /ui", h.handleIndex)
	mux.HandleFunc("GET /ui/{$}", h.handleIndex)
	mux.HandleFunc("GET /ui/trace/{id}", h.handleTracePage)
	mux.HandleFunc("GET /api/traces", h.handleTraces)
	mux.HandleFunc("GET /api/traces/{id}", h.handleTrace)
	mux.HandleFunc("GET /api/metrics", h.handleMetrics)
	mux.HandleFunc("GET /api/bench", h.handleBench)
	mux.HandleFunc("GET /api/summary", h.handleSummary)
	mux.HandleFunc("GET /api/jobs", h.handleJobs)
}

// setHeaders stamps the explicit content type and the no-store cache
// policy every /ui and /api/* response carries (live telemetry must
// never be cached).
func setHeaders(w http.ResponseWriter, contentType string) {
	h := w.Header()
	h.Set("Content-Type", contentType)
	h.Set("Cache-Control", "no-store")
}

// writeJSON emits an indented JSON response (indented so curl output in
// the README examples reads without a formatter).
func writeJSON(w http.ResponseWriter, code int, v any) {
	setHeaders(w, "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// A write error here means the client hung up; nothing to recover.
	_ = enc.Encode(v) //numvet:allow ignored-err client disconnects are benign
}

// render executes a page template into a buffer first so a template
// failure becomes a clean 500 instead of half a page.
func (h *Handler) render(w http.ResponseWriter, name string, data any) {
	var buf bytes.Buffer
	if err := h.tmpl.ExecuteTemplate(&buf, name, data); err != nil {
		http.Error(w, "reldash: template "+name+": "+err.Error(), http.StatusInternalServerError)
		return
	}
	setHeaders(w, "text/html; charset=utf-8")
	_, _ = w.Write(buf.Bytes()) //numvet:allow ignored-err client disconnects are benign
}

// --- JSON APIs ---

// filterFromQuery maps ?model=&solver=&outcome=&limit= onto a store
// filter.
func filterFromQuery(r *http.Request) obs.TraceFilter {
	q := r.URL.Query()
	f := obs.TraceFilter{
		Model:   q.Get("model"),
		Solver:  q.Get("solver"),
		Outcome: q.Get("outcome"),
		Corr:    q.Get("corr"),
	}
	if n, err := strconv.Atoi(q.Get("limit")); err == nil && n > 0 {
		f.Limit = n
	}
	return f
}

// tracesPayload is the GET /api/traces reply document.
type tracesPayload struct {
	// Retained and Capacity describe store occupancy, independent of the
	// filter.
	Retained int `json:"retained"`
	Capacity int `json:"capacity"`
	// Traces are the matching records, newest first, without span trees.
	Traces []obs.TraceRecord `json:"traces"`
}

func (h *Handler) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, tracesPayload{
		Retained: h.cfg.Store.Len(),
		Capacity: h.cfg.Store.Cap(),
		Traces:   h.cfg.Store.List(filterFromQuery(r)),
	})
}

func (h *Handler) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := h.cfg.Store.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "trace " + id + " not found (never stored, or evicted from the ring)",
		})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// metricsPayload is the GET /api/metrics reply document: the registry
// snapshot verbatim, the same values the Prometheus handler renders.
type metricsPayload struct {
	Families []metrics.FamilySnapshot `json:"families"`
}

func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, metricsPayload{Families: h.cfg.Registry.Snapshot()})
}

// benchPayload is the GET /api/bench reply document.
type benchPayload struct {
	Source  string             `json:"source"`
	Error   string             `json:"error,omitempty"`
	Entries []bench.TrendPoint `json:"entries"`
}

func (h *Handler) handleBench(w http.ResponseWriter, r *http.Request) {
	p := benchPayload{Source: h.cfg.BenchPath, Entries: []bench.TrendPoint{}}
	if h.cfg.BenchPath == "" {
		p.Error = "no bench baseline configured (relcli serve -bench)"
	} else if trend, err := bench.LoadTrend(h.cfg.BenchPath); err != nil {
		p.Error = err.Error()
	} else {
		p.Entries = trend
	}
	writeJSON(w, http.StatusOK, p)
}

// summaryPayload is the GET /api/summary reply document the dashboard
// polls for liveness.
type summaryPayload struct {
	UptimeS        float64        `json:"uptime_s"`
	WindowS        float64        `json:"window_s"`
	Requests       int            `json:"requests"`
	Errors         int            `json:"errors"`
	ThroughputPerS float64        `json:"throughput_per_s"`
	ErrorRate      float64        `json:"error_rate"`
	InFlight       int            `json:"in_flight"`
	TraceStore     storeOccupancy `json:"trace_store"`
	Resilience     *Resilience    `json:"resilience,omitempty"`
}

type storeOccupancy struct {
	Len int `json:"len"`
	Cap int `json:"cap"`
}

func (h *Handler) handleSummary(w http.ResponseWriter, r *http.Request) {
	total, failed := h.cfg.Window.Stats()
	windowS := h.cfg.Window.Span().Seconds()
	p := summaryPayload{
		UptimeS:    time.Since(h.cfg.Start).Seconds(),
		WindowS:    windowS,
		Requests:   total,
		Errors:     failed,
		TraceStore: storeOccupancy{Len: h.cfg.Store.Len(), Cap: h.cfg.Store.Cap()},
	}
	if windowS > 0 {
		p.ThroughputPerS = float64(total) / windowS
	}
	if total > 0 {
		p.ErrorRate = float64(failed) / float64(total)
	}
	if h.cfg.InFlight != nil {
		p.InFlight = h.cfg.InFlight()
	}
	if h.cfg.Resilience != nil {
		res := h.cfg.Resilience()
		p.Resilience = &res
	}
	writeJSON(w, http.StatusOK, p)
}

// jobsPayload is the GET /api/jobs reply document.
type jobsPayload struct {
	// Enabled is false when the serve process exposes no job engine
	// feed; Jobs is then always empty.
	Enabled bool     `json:"enabled"`
	Jobs    []JobRow `json:"jobs"`
}

func (h *Handler) handleJobs(w http.ResponseWriter, r *http.Request) {
	p := jobsPayload{Jobs: []JobRow{}}
	if h.cfg.Jobs != nil {
		p.Enabled = true
		if rows := h.cfg.Jobs(); rows != nil {
			p.Jobs = rows
		}
	}
	writeJSON(w, http.StatusOK, p)
}

// --- HTML pages ---

// indexData feeds templates/index.gohtml.
type indexData struct {
	Filter             obs.TraceFilter
	Traces             []obs.TraceRecord
	StoreLen, StoreCap int
	Solvers            []solverRow
	Winners            []winnerRow
	Outcomes           []outcomeRow
	Lumps              []lumpRow
	Bench              []bench.TrendPoint
	BenchErr           string
	Resilience         *Resilience
	// JobsOn gates the Jobs panel; Jobs are the rows inside it.
	JobsOn bool
	Jobs   []JobRow
	// SLO is the SLO panel snapshot (nil hides the panel).
	SLO *SLOView
}

// solverRow is one {solver, model} wall-time histogram series condensed
// for the index table.
type solverRow struct {
	Solver, Model string
	Count         uint64
	AvgMS         float64
}

// winnerRow is one decided fallback chain.
type winnerRow struct {
	Chain, Winner, Model string
	Count                float64
}

// outcomeRow is one guard outcome (canceled, deadline, panic, exhausted).
type outcomeRow struct {
	Outcome, Model string
	Count          float64
}

// lumpRow is one model's most recent lumping reduction ratio.
type lumpRow struct {
	Model string
	Ratio float64
}

func (h *Handler) handleIndex(w http.ResponseWriter, r *http.Request) {
	filter := filterFromQuery(r)
	data := indexData{
		Filter:   filter,
		Traces:   h.cfg.Store.List(filter),
		StoreLen: h.cfg.Store.Len(),
		StoreCap: h.cfg.Store.Cap(),
	}
	h.fillHighlights(&data)
	if h.cfg.Resilience != nil {
		res := h.cfg.Resilience()
		data.Resilience = &res
	}
	if h.cfg.Jobs != nil {
		data.JobsOn = true
		data.Jobs = h.cfg.Jobs()
	}
	if h.cfg.SLO != nil {
		data.SLO = h.cfg.SLO()
	}
	if h.cfg.BenchPath != "" {
		if trend, err := bench.LoadTrend(h.cfg.BenchPath); err != nil {
			data.BenchErr = err.Error()
		} else {
			data.Bench = trend
		}
	}
	h.render(w, "index", data)
}

// fillHighlights condenses the registry snapshot into the index page's
// solver/fallback/guard/lump tables. Unknown families are simply absent:
// the dashboard renders whatever the solvers have reported so far.
func (h *Handler) fillHighlights(data *indexData) {
	for _, f := range h.cfg.Registry.Snapshot() {
		switch f.Name {
		case "relscope_solver_wall_seconds":
			for _, s := range f.Series {
				if len(s.LabelValues) < 2 || s.Count == 0 {
					continue
				}
				data.Solvers = append(data.Solvers, solverRow{
					Solver: s.LabelValues[0],
					Model:  s.LabelValues[1],
					Count:  s.Count,
					AvgMS:  s.Sum / float64(s.Count) * 1e3,
				})
			}
		case "relscope_chain_decided_total":
			for _, s := range f.Series {
				if len(s.LabelValues) < 3 {
					continue
				}
				data.Winners = append(data.Winners, winnerRow{
					Chain:  s.LabelValues[0],
					Winner: s.LabelValues[1],
					Model:  s.LabelValues[2],
					Count:  s.Value,
				})
			}
		case "relscope_guard_outcomes_total":
			for _, s := range f.Series {
				if len(s.LabelValues) < 2 {
					continue
				}
				data.Outcomes = append(data.Outcomes, outcomeRow{
					Outcome: s.LabelValues[0],
					Model:   s.LabelValues[1],
					Count:   s.Value,
				})
			}
		case "relscope_lump_reduction_ratio":
			for _, s := range f.Series {
				if len(s.LabelValues) < 1 {
					continue
				}
				data.Lumps = append(data.Lumps, lumpRow{
					Model: s.LabelValues[0],
					Ratio: s.Value,
				})
			}
		}
	}
}

// traceData feeds templates/trace.gohtml.
type traceData struct {
	Rec obs.TraceRecord
	// Profiles are the continuous-profiling captures whose windows
	// overlap this trace, cross-linking a slow request to the pprof
	// data recorded while it ran.
	Profiles   []ProfileRow
	ProfilesOn bool
}

func (h *Handler) handleTracePage(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := h.cfg.Store.Get(id)
	if !ok {
		setHeaders(w, "text/html; charset=utf-8")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintf(w, "<!doctype html><title>reldash</title><p>trace %s not found (never stored, or evicted). <a href=\"/ui\">back</a></p>",
			template.HTMLEscapeString(id))
		return
	}
	data := traceData{Rec: rec}
	if h.cfg.Profiles != nil {
		data.ProfilesOn = true
		end := rec.Start.Add(time.Duration(rec.WallMS * float64(time.Millisecond)))
		data.Profiles = h.cfg.Profiles(rec.Start, end)
	}
	h.render(w, "trace", data)
}

// --- sparkline rendering ---

// sparklineSVG renders per-iteration residuals as an inline SVG
// polyline on a log10 scale — the convergence sparkline on the trace
// detail page. Output depends only on the residual values, so golden
// tests over deterministic solvers lock it byte-for-byte.
func sparklineSVG(iters []obs.IterPoint) template.HTML {
	if len(iters) < 2 {
		return ""
	}
	const width, height, pad = 220.0, 36.0, 2.0
	vals := make([]float64, 0, len(iters))
	for _, p := range iters {
		v := p.Residual
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			// Log scale: clamp non-positive/non-finite residuals to a
			// floor rather than dropping the point, so the x axis still
			// aligns with iteration numbers.
			v = 1e-300
		}
		vals = append(vals, math.Log10(v))
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo = min(lo, v)
		hi = max(hi, v)
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	var b strings.Builder
	for i, v := range vals {
		x := pad + (width-2*pad)*float64(i)/float64(len(vals)-1)
		y := pad + (height-2*pad)*(hi-v)/span
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.1f,%.1f", x, y)
	}
	return template.HTML(fmt.Sprintf(
		`<svg class="spark" width="%d" height="%d" viewBox="0 0 %d %d" role="img" aria-label="residual convergence (log scale)"><polyline fill="none" stroke="currentColor" stroke-width="1.5" points="%s"/></svg>`,
		int(width), int(height), int(width), int(height), b.String()))
}

// residRange condenses an iteration series to "first → last" residuals.
func residRange(iters []obs.IterPoint) string {
	if len(iters) == 0 {
		return ""
	}
	return fmt.Sprintf("%.3g → %.3g", iters[0].Residual, iters[len(iters)-1].Residual)
}
