package reldash

import (
	"sync"
	"time"
)

// Window is a sliding-window request counter behind /api/summary: the
// serve handlers Record every terminal request, and Stats answers "how
// many requests (and errors) landed in the last N seconds" so the
// dashboard can show throughput and error rate without retaining
// unbounded history. All methods are safe for concurrent use.
type Window struct {
	mu     sync.Mutex
	span   time.Duration
	events []windowEvent
}

type windowEvent struct {
	t      time.Time
	failed bool
}

// NewWindow builds a window covering the given span (<=0 means one
// minute).
func NewWindow(span time.Duration) *Window {
	if span <= 0 {
		span = time.Minute
	}
	return &Window{span: span}
}

// Span reports the window's duration.
func (w *Window) Span() time.Duration { return w.span }

// Record notes one completed request.
func (w *Window) Record(failed bool) { w.RecordAt(time.Now(), failed) }

// RecordAt is Record with an explicit timestamp (tests).
func (w *Window) RecordAt(t time.Time, failed bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pruneLocked(t)
	w.events = append(w.events, windowEvent{t: t, failed: failed})
}

// Stats reports how many requests and failures are inside the window.
func (w *Window) Stats() (total, failed int) { return w.StatsAt(time.Now()) }

// StatsAt is Stats with an explicit "now" (tests).
func (w *Window) StatsAt(now time.Time) (total, failed int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pruneLocked(now)
	for _, e := range w.events {
		total++
		if e.failed {
			failed++
		}
	}
	return total, failed
}

// pruneLocked drops events older than the window. Callers hold w.mu.
func (w *Window) pruneLocked(now time.Time) {
	cutoff := now.Add(-w.span)
	keep := 0
	for keep < len(w.events) && !w.events[keep].t.After(cutoff) {
		keep++
	}
	if keep > 0 {
		w.events = append(w.events[:0], w.events[keep:]...)
	}
}
