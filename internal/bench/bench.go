// Package bench turns the experiment suite's solver telemetry into a
// performance-regression gate. Collect runs the full suite several
// times and folds the per-experiment wall times into stable statistics
// (median, p95); Compare checks a fresh collection against a committed
// baseline with a tolerance band wide enough to absorb scheduler noise
// but tight enough to catch a genuine slowdown or a solver falling off
// its fast path.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/experiments"
)

// Collect runs the full experiment suite runs times, streaming the
// result tables to w (io.Discard is the usual choice), and returns one
// aggregated record per experiment: WallMS becomes the median across
// runs and WallMSP95 the 95th percentile. Solver, Spans, and Iterations
// come from the first run — the solvers are deterministic, so those do
// not vary between runs.
func Collect(runs int, w io.Writer) ([]experiments.BenchEntry, error) {
	if runs < 1 {
		runs = 1
	}
	var agg []experiments.BenchEntry
	walls := make(map[string][]float64)
	for i := 0; i < runs; i++ {
		entries, err := experiments.RunAllWithBench(w)
		if err != nil {
			return nil, err
		}
		if agg == nil {
			agg = entries
		}
		for _, e := range entries {
			walls[e.ID] = append(walls[e.ID], e.WallMS)
		}
	}
	for i := range agg {
		ws := walls[agg[i].ID]
		agg[i].WallMS = median(ws)
		agg[i].WallMSP95 = percentile(ws, 0.95)
		agg[i].Runs = runs
	}
	return agg, nil
}

// Tolerance is the band within which a wall-time difference is treated
// as noise rather than regression.
type Tolerance struct {
	// WallFactor is the multiplicative slowdown tolerated before an
	// entry is flagged; a fresh run on a loaded machine can legitimately
	// be a few times slower than the committed baseline.
	WallFactor float64
	// SlackMS is the absolute slowdown that must ALSO be exceeded; it
	// keeps sub-millisecond experiments from flagging on jitter that is
	// large relative to their wall time but meaningless in absolute
	// terms.
	SlackMS float64
}

// DefaultTolerance is the band used when no explicit knobs are given:
// flag only a >4x slowdown that also costs more than 25ms.
func DefaultTolerance() Tolerance { return Tolerance{WallFactor: 4, SlackMS: 25} }

// Regression is one tolerance-band violation found by Compare.
type Regression struct {
	// ID names the experiment ("E1".."E13").
	ID string
	// Reason says what moved and by how much.
	Reason string
}

func (r Regression) String() string { return r.ID + ": " + r.Reason }

// Compare checks current against baseline and returns one Regression
// per violation (empty means the run is clean). Wall time is flagged
// only when it exceeds both the multiplicative and the absolute slack;
// iteration counts and the dominant solver are deterministic, so any
// solver change and any iteration growth beyond the same factor are
// flagged outright. IDs missing on either side are reported so a stale
// baseline fails loudly instead of silently shrinking coverage.
func Compare(current, baseline []experiments.BenchEntry, tol Tolerance) []Regression {
	if tol.WallFactor <= 0 {
		tol.WallFactor = DefaultTolerance().WallFactor
	}
	if tol.SlackMS <= 0 {
		tol.SlackMS = DefaultTolerance().SlackMS
	}
	base := make(map[string]experiments.BenchEntry, len(baseline))
	for _, b := range baseline {
		base[b.ID] = b
	}
	var regs []Regression
	seen := make(map[string]bool, len(current))
	for _, c := range current {
		seen[c.ID] = true
		b, ok := base[c.ID]
		if !ok {
			regs = append(regs, Regression{c.ID, "not in baseline; regenerate it with relbench -out"})
			continue
		}
		if b.Solver != "" && c.Solver != b.Solver {
			regs = append(regs, Regression{c.ID,
				fmt.Sprintf("dominant solver changed: %s -> %s", b.Solver, c.Solver)})
		}
		if b.Iterations > 0 && float64(c.Iterations) > float64(b.Iterations)*tol.WallFactor {
			regs = append(regs, Regression{c.ID,
				fmt.Sprintf("iterations grew %d -> %d (convergence regression)", b.Iterations, c.Iterations)})
		}
		if c.WallMS > b.WallMS*tol.WallFactor && c.WallMS-b.WallMS > tol.SlackMS {
			regs = append(regs, Regression{c.ID,
				fmt.Sprintf("wall %.2fms -> %.2fms exceeds the %gx + %gms band",
					b.WallMS, c.WallMS, tol.WallFactor, tol.SlackMS)})
		}
	}
	for _, b := range baseline {
		if !seen[b.ID] {
			regs = append(regs, Regression{b.ID, "present in baseline but missing from this run"})
		}
	}
	return regs
}

// Load reads a records file written by Write (or by cmd/experiments
// before relbench took ownership of the trajectory file).
func Load(path string) ([]experiments.BenchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []experiments.BenchEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return entries, nil
}

// Write serializes the records as indented JSON, matching the format
// the repository commits as BENCH_solvers.json.
func Write(path string, entries []experiments.BenchEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// TrendPoint is one experiment's compact row in the dashboard's
// /api/bench payload: the committed BENCH_solvers.json trend with
// explicit median/p95 naming.
type TrendPoint struct {
	// ID names the experiment ("E1"…).
	ID string `json:"id"`
	// Title is the experiment's one-line description.
	Title string `json:"title"`
	// Solver is the dominant solver recorded in the baseline.
	Solver string `json:"solver,omitempty"`
	// MedianMS and P95MS are the aggregated wall times in milliseconds.
	MedianMS float64 `json:"median_ms"`
	P95MS    float64 `json:"p95_ms,omitempty"`
	// Iterations is the deterministic iteration count.
	Iterations int `json:"iterations,omitempty"`
	// Runs is how many suite runs the record aggregates.
	Runs int `json:"runs,omitempty"`
}

// Trend maps bench records to trend rows sorted by numeric experiment ID
// (E2 before E10, which a lexical sort gets wrong).
func Trend(entries []experiments.BenchEntry) []TrendPoint {
	out := make([]TrendPoint, 0, len(entries))
	for _, e := range entries {
		out = append(out, TrendPoint{
			ID:         e.ID,
			Title:      e.Title,
			Solver:     e.Solver,
			MedianMS:   e.WallMS,
			P95MS:      e.WallMSP95,
			Iterations: e.Iterations,
			Runs:       e.Runs,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		ni, iOK := experimentNumber(out[i].ID)
		nj, jOK := experimentNumber(out[j].ID)
		if iOK && jOK && ni != nj {
			return ni < nj
		}
		if iOK != jOK {
			return iOK // numbered experiments before oddly-named ones
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// experimentNumber parses the numeric part of an "E<n>" experiment ID.
func experimentNumber(id string) (int, bool) {
	if len(id) < 2 || id[0] != 'E' {
		return 0, false
	}
	n := 0
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// LoadTrend reads a committed bench baseline and returns its trend rows;
// the one-call path behind the dashboard's /api/bench.
func LoadTrend(path string) ([]TrendPoint, error) {
	entries, err := Load(path)
	if err != nil {
		return nil, err
	}
	return Trend(entries), nil
}

// median returns the middle value (mean of the middle pair for even
// counts); zero for an empty slice.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// percentile returns the nearest-rank p-quantile (p in (0,1]).
func percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
