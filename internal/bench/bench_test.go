package bench

import (
	"io"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func entry(id, solver string, iters int, wall float64) experiments.BenchEntry {
	return experiments.BenchEntry{ID: id, Solver: solver, Iterations: iters, WallMS: wall}
}

func TestCompareCleanRun(t *testing.T) {
	base := []experiments.BenchEntry{
		entry("E1", "bdd", 0, 200),
		entry("E3", "sor", 52, 22),
	}
	cur := []experiments.BenchEntry{
		entry("E1", "bdd", 0, 260), // 1.3x and +60ms: inside the factor band
		entry("E3", "sor", 52, 80), // 3.6x: inside the factor band
	}
	if regs := Compare(cur, base, DefaultTolerance()); len(regs) != 0 {
		t.Errorf("clean run flagged: %v", regs)
	}
}

// TestCompareFlagsInjectedSlowdown is the core acceptance property: a
// 10x wall-time slowdown on a non-trivial experiment must be caught.
func TestCompareFlagsInjectedSlowdown(t *testing.T) {
	base := []experiments.BenchEntry{entry("E1", "bdd", 0, 200)}
	cur := []experiments.BenchEntry{entry("E1", "bdd", 0, 2000)}
	regs := Compare(cur, base, DefaultTolerance())
	if len(regs) != 1 || !strings.Contains(regs[0].Reason, "wall") {
		t.Fatalf("10x slowdown not flagged as wall regression: %v", regs)
	}
}

func TestCompareNoiseFloorOnTinyEntries(t *testing.T) {
	// 10x on a 0.5ms experiment is 4.5ms of jitter — below the absolute
	// slack, so it must NOT flag.
	base := []experiments.BenchEntry{entry("E2", "bdd", 0, 0.5)}
	cur := []experiments.BenchEntry{entry("E2", "bdd", 0, 5)}
	if regs := Compare(cur, base, DefaultTolerance()); len(regs) != 0 {
		t.Errorf("sub-slack jitter flagged: %v", regs)
	}
}

func TestCompareFlagsSolverAndIterationDrift(t *testing.T) {
	base := []experiments.BenchEntry{entry("E3", "sor", 52, 22)}
	cur := []experiments.BenchEntry{entry("E3", "gth", 300, 22)}
	regs := Compare(cur, base, DefaultTolerance())
	if len(regs) != 2 {
		t.Fatalf("want solver + iteration regressions, got %v", regs)
	}
	joined := regs[0].String() + " " + regs[1].String()
	if !strings.Contains(joined, "solver changed") || !strings.Contains(joined, "iterations grew") {
		t.Errorf("unexpected reasons: %v", regs)
	}
}

func TestCompareMissingEntriesBothWays(t *testing.T) {
	base := []experiments.BenchEntry{entry("E1", "bdd", 0, 200), entry("E9", "mc", 0, 10)}
	cur := []experiments.BenchEntry{entry("E1", "bdd", 0, 200), entry("E14", "new", 0, 1)}
	regs := Compare(cur, base, DefaultTolerance())
	if len(regs) != 2 {
		t.Fatalf("want 2 coverage regressions, got %v", regs)
	}
	joined := regs[0].String() + " " + regs[1].String()
	if !strings.Contains(joined, "E14: not in baseline") || !strings.Contains(joined, "E9: ") {
		t.Errorf("unexpected coverage findings: %v", regs)
	}
}

func TestCompareZeroToleranceFallsBackToDefault(t *testing.T) {
	base := []experiments.BenchEntry{entry("E1", "bdd", 0, 200)}
	cur := []experiments.BenchEntry{entry("E1", "bdd", 0, 260)}
	if regs := Compare(cur, base, Tolerance{}); len(regs) != 0 {
		t.Errorf("zero tolerance should mean the default band, got %v", regs)
	}
}

// TestCollectAggregatesSuite runs the real suite once and checks the
// aggregation plumbing end to end; percentile math is covered through
// the round-trip below.
func TestCollectAggregatesSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite")
	}
	entries, err := Collect(1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 13 {
		t.Fatalf("got %d entries, want >= 13", len(entries))
	}
	for _, e := range entries {
		if e.WallMS <= 0 {
			t.Errorf("%s: wall %.3fms, want > 0", e.ID, e.WallMS)
		}
		if e.Runs != 1 {
			t.Errorf("%s: runs %d, want 1", e.ID, e.Runs)
		}
		if e.WallMSP95 < e.WallMS {
			t.Errorf("%s: p95 %.3f < median %.3f", e.ID, e.WallMSP95, e.WallMS)
		}
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := Write(path, entries); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(entries) {
		t.Fatalf("round trip lost entries: %d != %d", len(loaded), len(entries))
	}
	if regs := Compare(loaded, entries, DefaultTolerance()); len(regs) != 0 {
		t.Errorf("self-compare flagged: %v", regs)
	}
}

func TestMedianAndPercentile(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median odd = %g", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("median even = %g", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("median empty = %g", got)
	}
	vs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(vs, 0.95); got != 10 {
		t.Errorf("p95 of 1..10 = %g", got)
	}
	if got := percentile(vs, 0.5); got != 5 {
		t.Errorf("p50 of 1..10 = %g", got)
	}
}

// TestTrendSortsNumerically: E2 must sort before E10, and the trend rows
// must carry the median/p95 fields the dashboard renders.
func TestTrendSortsNumerically(t *testing.T) {
	entries := []experiments.BenchEntry{
		{ID: "E10", Title: "ten", Solver: "gth", WallMS: 5, WallMSP95: 9, Runs: 3},
		{ID: "E2", Title: "two", Solver: "bdd", WallMS: 1, WallMSP95: 2, Iterations: 7, Runs: 3},
	}
	trend := Trend(entries)
	if len(trend) != 2 || trend[0].ID != "E2" || trend[1].ID != "E10" {
		t.Fatalf("trend order: %+v", trend)
	}
	p := trend[0]
	if p.MedianMS != 1 || p.P95MS != 2 || p.Iterations != 7 || p.Solver != "bdd" || p.Runs != 3 {
		t.Errorf("trend row lost fields: %+v", p)
	}
}

// TestLoadTrendFromCommittedBaseline reads the repo's own baseline file.
func TestLoadTrendFromCommittedBaseline(t *testing.T) {
	trend, err := LoadTrend(filepath.Join("..", "..", "BENCH_solvers.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(trend) < 10 {
		t.Fatalf("baseline trend has %d rows, want the full suite", len(trend))
	}
	for i := 1; i < len(trend); i++ {
		ni, _ := experimentNumber(trend[i-1].ID)
		nj, _ := experimentNumber(trend[i].ID)
		if ni >= nj {
			t.Errorf("trend not in numeric order: %s then %s", trend[i-1].ID, trend[i].ID)
		}
	}
	if trend[0].MedianMS <= 0 {
		t.Errorf("E1 median = %v, want > 0", trend[0].MedianMS)
	}
}

func TestLoadTrendMissingFile(t *testing.T) {
	if _, err := LoadTrend(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file did not error")
	}
}
