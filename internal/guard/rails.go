package guard

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// Strictness selects how a guard-rail violation is handled.
type Strictness string

// The three strictness modes.
const (
	// Strict turns violations into errors that fail the solve.
	Strict Strictness = "strict"
	// Warn records violations on the trace but lets the solve proceed.
	Warn Strictness = "warn"
	// Off disables the checks entirely.
	Off Strictness = "off"
)

// ParseStrictness validates a mode string ("" maps to Warn).
func ParseStrictness(s string) (Strictness, error) {
	switch Strictness(s) {
	case "":
		return Warn, nil
	case Strict, Warn, Off:
		return Strictness(s), nil
	}
	return Off, fmt.Errorf("guard: unknown strictness %q (want strict, warn, or off)", s)
}

// NumericalError reports a failed numerical invariant at a solver
// boundary: a non-finite entry, lost probability mass, a violated row sum.
type NumericalError struct {
	// Op names the check site ("modelio.ctmc.steadystate", …).
	Op string
	// Detail describes the violated invariant.
	Detail string
}

// Error implements error.
func (e *NumericalError) Error() string {
	return fmt.Sprintf("guard: %s: %s", e.Op, e.Detail)
}

// FailureClass implements Classed.
func (e *NumericalError) FailureClass() string { return string(ClassNumerical) }

// Rails bundles a strictness mode with the recorder that receives
// warnings, so solve sites can run checks with one call.
type Rails struct {
	// Mode selects Strict, Warn, or Off (the zero value "" behaves as
	// Warn).
	Mode Strictness
	// Recorder receives warn-mode violations as span attributes.
	Recorder obs.Recorder
	// Tol is the tolerance for mass/row-sum checks (default 1e-9).
	Tol float64
}

// tol returns the effective tolerance.
func (r Rails) tol() float64 {
	if r.Tol > 0 {
		return r.Tol
	}
	return 1e-9
}

// enforce applies the strictness mode to a violation: nil in Off mode, a
// recorded warning in Warn mode, the error itself in Strict mode.
func (r Rails) enforce(err *NumericalError) error {
	if err == nil {
		return nil
	}
	switch r.Mode {
	case Off:
		return nil
	case Strict:
		return err
	default:
		if rec := obs.Or(r.Recorder); rec.Enabled() {
			rec.Set(obs.S("guard_warning", err.Detail), obs.S("guard_warning_op", err.Op))
		}
		return nil
	}
}

// CheckFinite verifies every entry of v is finite.
func (r Rails) CheckFinite(op string, v []float64) error {
	if r.Mode == Off {
		return nil
	}
	return r.enforce(firstNonFinite(op, v))
}

// CheckProbVector verifies v is a probability vector: finite entries
// within [-tol, 1+tol] and total mass within tol of 1.
func (r Rails) CheckProbVector(op string, v []float64) error {
	if r.Mode == Off {
		return nil
	}
	if err := firstNonFinite(op, v); err != nil {
		return r.enforce(err)
	}
	tol := r.tol()
	var sum float64
	for i, x := range v {
		if x < -tol || x > 1+tol {
			return r.enforce(&NumericalError{Op: op,
				Detail: fmt.Sprintf("entry %d = %g outside [0,1]", i, x)})
		}
		sum += x
	}
	if math.Abs(sum-1) > tol*float64(max(len(v), 1)) {
		return r.enforce(&NumericalError{Op: op,
			Detail: fmt.Sprintf("probability mass %g differs from 1 by %g", sum, math.Abs(sum-1))})
	}
	return nil
}

// CheckUnitInterval verifies a scalar probability-valued result.
func (r Rails) CheckUnitInterval(op string, v float64) error {
	if r.Mode == Off {
		return nil
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return r.enforce(&NumericalError{Op: op, Detail: fmt.Sprintf("non-finite value %g", v)})
	}
	tol := r.tol()
	if v < -tol || v > 1+tol {
		return r.enforce(&NumericalError{Op: op, Detail: fmt.Sprintf("value %g outside [0,1]", v)})
	}
	return nil
}

// CheckFiniteScalar verifies a scalar result is finite (MTTF, rates).
func (r Rails) CheckFiniteScalar(op string, v float64) error {
	if r.Mode == Off {
		return nil
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return r.enforce(&NumericalError{Op: op, Detail: fmt.Sprintf("non-finite value %g", v)})
	}
	return nil
}

// CheckRowSums verifies generator rows sum to ~0 (or stochastic rows to
// ~1, per want). rowSum is called for each of the n rows.
func (r Rails) CheckRowSums(op string, n int, want float64, rowSum func(i int) float64) error {
	if r.Mode == Off {
		return nil
	}
	tol := r.tol()
	for i := 0; i < n; i++ {
		s := rowSum(i)
		if math.IsNaN(s) || math.IsInf(s, 0) || math.Abs(s-want) > tol {
			return r.enforce(&NumericalError{Op: op,
				Detail: fmt.Sprintf("row %d sums to %g, want %g", i, s, want)})
		}
	}
	return nil
}

// firstNonFinite returns a NumericalError naming the first NaN/Inf entry.
func firstNonFinite(op string, v []float64) *NumericalError {
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return &NumericalError{Op: op, Detail: fmt.Sprintf("non-finite entry %d = %g", i, x)}
		}
	}
	return nil
}

// IsFinite reports whether x is neither NaN nor ±Inf — the boundary check
// solvers run on per-iteration residuals.
func IsFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// nan is a helper for "no residual recorded yet".
func nan() float64 { return math.NaN() }
