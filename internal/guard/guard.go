// Package guard is the robustness layer ("relguard") wrapped around the
// analytic solve pipeline. It provides the pieces that keep a solve
// bounded, recoverable, and self-explaining:
//
//   - cancellation and deadlines: iterative solvers poll a context at
//     iteration granularity through Ctx and surface a typed
//     *InterruptError that unwraps to both the guard sentinel
//     (ErrCanceled / ErrDeadline) and the underlying context error while
//     carrying partial-progress telemetry;
//   - fallback chains: RunChain escalates through solver methods (SOR →
//     GTH, exact BDD → cut-set bounds) with retry/backoff semantics,
//     classifying each failure and recording every attempt in the trace;
//   - numerical guard rails: finite/probability-mass invariant checks with
//     Strict/Warn/Off modes, and log-space helpers for probabilities too
//     small for the linear domain;
//   - panic containment: RecoverPanic converts internal panics at a public
//     boundary into a typed *InternalError carrying the open span stack.
//
// The package sits below every solver package (it imports only the
// standard library and internal/obs), so linalg, markov, hier, faulttree,
// and modelio can all depend on it without cycles.
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"

	"repro/internal/obs"
)

// Sentinels matched by errors.Is on interrupted solves. The concrete error
// in the chain is a *InterruptError.
var (
	// ErrCanceled marks a solve interrupted by context cancellation.
	ErrCanceled = errors.New("guard: solve canceled")
	// ErrDeadline marks a solve that exceeded its context deadline.
	ErrDeadline = errors.New("guard: solve deadline exceeded")
)

// InterruptError is returned by a solver that observed context
// cancellation mid-iteration. It carries the partial progress made so the
// caller (and the trace) can tell how far the solve got.
type InterruptError struct {
	// Op names the solver that was interrupted ("linalg.sor", …).
	Op string
	// Iterations is the number of iterations completed before the
	// interruption.
	Iterations int
	// LastResidual is the most recent convergence measure (NaN when the
	// solve was interrupted before the first residual).
	LastResidual float64

	cause error // context.Canceled or context.DeadlineExceeded
}

// Error implements error.
func (e *InterruptError) Error() string {
	what := "canceled"
	if errors.Is(e.cause, context.DeadlineExceeded) {
		what = "deadline exceeded"
	}
	return fmt.Sprintf("guard: %s %s after %d iterations (last residual %g)",
		e.Op, what, e.Iterations, e.LastResidual)
}

// Unwrap links the error to both the guard sentinel and the context error,
// so errors.Is works against ErrCanceled/ErrDeadline as well as
// context.Canceled/context.DeadlineExceeded.
func (e *InterruptError) Unwrap() []error {
	sentinel := ErrCanceled
	if errors.Is(e.cause, context.DeadlineExceeded) {
		sentinel = ErrDeadline
	}
	return []error{sentinel, e.cause}
}

// FailureClass implements Classed: interruption by deadline or
// cancellation.
func (e *InterruptError) FailureClass() string {
	if errors.Is(e.cause, context.DeadlineExceeded) {
		return string(ClassDeadline)
	}
	return string(ClassCanceled)
}

// Ctx polls the context at iteration granularity. It returns nil when the
// context is nil or still live, and a *InterruptError carrying the
// partial progress otherwise. The check is one atomic load on the happy
// path, cheap enough for per-sweep use in solver hot loops.
func Ctx(ctx context.Context, op string, iterations int, lastResidual float64) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &InterruptError{Op: op, Iterations: iterations, LastResidual: lastResidual, cause: err}
	}
	return nil
}

// RecordInterrupt stamps an interrupted span with the outcome and partial
// progress so the trace explains where the deadline landed.
func RecordInterrupt(rec obs.Recorder, err error) {
	var ie *InterruptError
	if rec == nil || !rec.Enabled() || !errors.As(err, &ie) {
		return
	}
	rec.Set(obs.S("outcome", ie.FailureClass()),
		obs.I("iterations", ie.Iterations),
		obs.F("last_residual", ie.LastResidual))
}

// BudgetError reports work refused (or abandoned) because a size budget
// was exceeded — the Boeing path: a model too large for exact solution,
// where a bounding method must take over.
type BudgetError struct {
	// Op names the budgeted operation ("faulttree.bdd", …).
	Op string
	// Budget is the configured limit and Actual the size that tripped it.
	Budget, Actual int
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("guard: %s exceeded budget (%d > %d)", e.Op, e.Actual, e.Budget)
}

// FailureClass implements Classed.
func (e *BudgetError) FailureClass() string { return string(ClassBudget) }

// InternalError is a panic converted into an error at a public solve
// boundary. It preserves the panic value, the goroutine stack, and the
// open telemetry span path at the moment of the panic.
type InternalError struct {
	// Op names the boundary that recovered the panic.
	Op string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured by runtime/debug.Stack.
	Stack []byte
	// SpanPath is the chain of open trace spans (outermost first) when the
	// panic unwound, when the attached Recorder exposes one.
	SpanPath []string
}

// Error implements error.
func (e *InternalError) Error() string {
	msg := fmt.Sprintf("guard: internal error in %s: %v", e.Op, e.Value)
	if len(e.SpanPath) > 0 {
		msg += " (in " + strings.Join(e.SpanPath, " > ") + ")"
	}
	return msg
}

// FailureClass implements Classed.
func (e *InternalError) FailureClass() string { return string(ClassInternal) }

// SpanPather is implemented by recorders (obs.Trace and its span scopes)
// that can report the currently open span chain.
type SpanPather interface {
	OpenPath() []string
}

// Isolate runs fn, converting any panic that unwinds out of it into a
// *InternalError. It is the per-request isolation boundary for servers:
// one solve panicking (a solver defect, an armed panic failpoint) must
// become a typed error on that request, never take down sibling solves
// sharing the process.
func Isolate(op string, fn func() error) (err error) {
	defer RecoverPanic(&err, nil, op)
	return fn()
}

// RecoverPanic converts a panic unwinding through a public boundary into a
// *InternalError assigned to *errp. Use it in a defer at the top of the
// boundary function:
//
//	defer guard.RecoverPanic(&err, rec, "modelio.solve")
//
// When no panic is in flight it does nothing, preserving the function's
// normal return value. See Isolate for the closure form.
func RecoverPanic(errp *error, rec obs.Recorder, op string) {
	r := recover()
	if r == nil {
		return
	}
	ie := &InternalError{Op: op, Value: r, Stack: debug.Stack()}
	if p, ok := rec.(SpanPather); ok {
		ie.SpanPath = p.OpenPath()
	}
	if rec != nil && rec.Enabled() {
		rec.Set(obs.S("outcome", "panic"), obs.S("panic", fmt.Sprint(r)))
	}
	*errp = ie
}
