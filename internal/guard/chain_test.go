package guard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func step(name string, fn func(context.Context) (float64, error)) Step[float64] {
	return Step[float64]{Name: name, Run: func(ctx context.Context, _ obs.Recorder) (float64, error) {
		return fn(ctx)
	}}
}

func TestChainFirstStepWins(t *testing.T) {
	v, report, err := RunChain(context.Background(), nil, "ss",
		step("sor", func(context.Context) (float64, error) { return 42, nil }),
		step("gth", func(context.Context) (float64, error) {
			t.Error("second step ran after first succeeded")
			return 0, nil
		}),
	)
	if err != nil || v != 42 {
		t.Fatalf("got %v, %v", v, err)
	}
	if report.Winner != "sor" || len(report.Attempts) != 1 {
		t.Errorf("report = %+v", report)
	}
}

func TestChainEscalatesOnConvergenceFailure(t *testing.T) {
	tr := obs.NewTrace("solve")
	v, report, err := RunChain[float64](context.Background(), tr, "ss",
		step("sor", func(context.Context) (float64, error) {
			return 0, classedErr{"no-convergence"}
		}),
		step("gth", func(context.Context) (float64, error) { return 7, nil }),
	)
	if err != nil || v != 7 {
		t.Fatalf("got %v, %v", v, err)
	}
	if report.Winner != "gth" {
		t.Errorf("winner = %q", report.Winner)
	}
	if len(report.Attempts) != 2 || report.Attempts[0].Class != ClassNoConvergence {
		t.Errorf("attempts = %+v", report.Attempts)
	}
	// Both attempts and the winner are visible in the trace.
	root := tr.Finish()
	var chain *obs.Span
	root.Walk(func(s *obs.Span) {
		if s.Name == "guard.chain" {
			chain = s
		}
	})
	if chain == nil {
		t.Fatal("no guard.chain span recorded")
	}
	if w, _ := chain.Attr("winner"); w != "gth" {
		t.Errorf("chain winner attr = %v", w)
	}
	if len(chain.Children) != 2 {
		t.Fatalf("chain children = %d, want 2 attempts", len(chain.Children))
	}
	if fc, _ := chain.Children[0].Attr("failure_class"); fc != "no-convergence" {
		t.Errorf("first attempt failure_class = %v", fc)
	}
}

func TestChainAbortsOnStructuralError(t *testing.T) {
	structural := errors.New("markov: unknown state")
	ran := false
	_, report, err := RunChain(context.Background(), nil, "ss",
		step("sor", func(context.Context) (float64, error) { return 0, structural }),
		step("gth", func(context.Context) (float64, error) { ran = true; return 0, nil }),
	)
	if !errors.Is(err, structural) {
		t.Fatalf("structural error not surfaced: %v", err)
	}
	if ran {
		t.Error("chain escalated past a structural error")
	}
	if report.Winner != "" {
		t.Errorf("winner = %q", report.Winner)
	}
}

func TestChainAbortsOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	_, _, err := RunChain(ctx, nil, "ss",
		step("sor", func(ctx context.Context) (float64, error) {
			cancel()
			return 0, Ctx(ctx, "sor", 5, 0.1)
		}),
		step("gth", func(context.Context) (float64, error) { ran = true; return 0, nil }),
	)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if ran {
		t.Error("chain kept solving after cancellation")
	}
}

func TestChainExhausted(t *testing.T) {
	last := classedErr{"divergence"}
	_, report, err := RunChain(context.Background(), nil, "ss",
		step("sor", func(context.Context) (float64, error) { return 0, classedErr{"no-convergence"} }),
		step("gth", func(context.Context) (float64, error) { return 0, last }),
	)
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("want *ExhaustedError, got %v", err)
	}
	if !errors.Is(err, error(last)) {
		t.Errorf("last attempt error not unwrapped: %v", err)
	}
	if len(report.Attempts) != 2 || report.Winner != "" {
		t.Errorf("report = %+v", report)
	}
}

func TestChainRetryWithBackoff(t *testing.T) {
	tries := 0
	start := time.Now()
	v, report, err := RunChain(context.Background(), nil, "mc",
		Step[float64]{
			Name:    "sim",
			Retries: 2,
			Backoff: 5 * time.Millisecond,
			Run: func(context.Context, obs.Recorder) (float64, error) {
				tries++
				if tries < 3 {
					return 0, classedErr{"numerical"}
				}
				return 1, nil
			},
		},
	)
	if err != nil || v != 1 {
		t.Fatalf("got %v, %v", v, err)
	}
	if tries != 3 {
		t.Errorf("tries = %d, want 3", tries)
	}
	// Backoffs: 5ms + 10ms.
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("backoff not applied: elapsed %v", elapsed)
	}
	if len(report.Attempts) != 3 || report.Attempts[2].Try != 3 {
		t.Errorf("attempts = %+v", report.Attempts)
	}
}

func TestChainBackoffHonorsDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := RunChain(ctx, nil, "mc",
		Step[float64]{
			Name:    "sim",
			Retries: 5,
			Backoff: time.Hour,
			Run: func(context.Context, obs.Recorder) (float64, error) {
				return 0, classedErr{"numerical"}
			},
		},
	)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("backoff ignored the deadline")
	}
}

// TestChainStressRace is the -race fallback-chain stress test wired into
// scripts/check.sh: many goroutines run chains that share one Trace
// recorder, mixing successes, escalations, retries, and cancellations, so
// the race detector sees every lock interaction in guard + obs.
func TestChainStressRace(t *testing.T) {
	tr := obs.NewTrace("stress")
	const goroutines = 16
	const runs = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < runs; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%5 == 4 {
					ctx, cancel = context.WithCancel(ctx)
					cancel() // exercise the abort path
				}
				mode := (g + i) % 3
				v, _, err := RunChain(ctx, tr, fmt.Sprintf("c%d", g),
					Step[int]{Name: "fast", Retries: 1, Run: func(ctx context.Context, rec obs.Recorder) (int, error) {
						if err := Ctx(ctx, "fast", i, 0.5); err != nil {
							return 0, err
						}
						sp := rec.Span("inner")
						sp.Iter(1, 0.1)
						sp.End()
						if mode == 0 {
							return i, nil
						}
						return 0, classedErr{"no-convergence"}
					}},
					Step[int]{Name: "exact", Run: func(ctx context.Context, rec obs.Recorder) (int, error) {
						if mode == 1 {
							return i, nil
						}
						return 0, classedErr{"divergence"}
					}},
				)
				switch {
				case cancel != nil:
					if !errors.Is(err, ErrCanceled) {
						t.Errorf("canceled run returned %v", err)
					}
				case mode == 2:
					var ex *ExhaustedError
					if !errors.As(err, &ex) {
						t.Errorf("mode 2 want exhausted, got %v", err)
					}
				default:
					if err != nil || v != i {
						t.Errorf("mode %d got %v, %v", mode, v, err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	root := tr.Finish()
	chains := 0
	root.Walk(func(s *obs.Span) {
		if s.Name == "guard.chain" {
			chains++
		}
	})
	if chains != goroutines*runs {
		t.Errorf("recorded %d chain spans, want %d", chains, goroutines*runs)
	}
}

// TestPrefer checks the hint-driven step reordering: the named step moves
// first, relative order of the rest is kept, unknown names are a no-op.
func TestPrefer(t *testing.T) {
	mk := func(names ...string) []Step[int] {
		out := make([]Step[int], len(names))
		for i, n := range names {
			out[i] = Step[int]{Name: n}
		}
		return out
	}
	names := func(steps []Step[int]) []string {
		out := make([]string, len(steps))
		for i, s := range steps {
			out[i] = s.Name
		}
		return out
	}
	cases := []struct {
		prefer string
		in     []string
		want   []string
	}{
		{"gth", []string{"sor", "gth"}, []string{"gth", "sor"}},
		{"sor", []string{"sor", "gth"}, []string{"sor", "gth"}},
		{"c", []string{"a", "b", "c", "d"}, []string{"c", "a", "b", "d"}},
		{"missing", []string{"a", "b"}, []string{"a", "b"}},
		{"x", nil, nil},
	}
	for _, tc := range cases {
		got := names(Prefer(tc.prefer, mk(tc.in...)...))
		if len(got) != len(tc.want) {
			t.Errorf("Prefer(%q, %v) = %v, want %v", tc.prefer, tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Prefer(%q, %v) = %v, want %v", tc.prefer, tc.in, got, tc.want)
				break
			}
		}
	}
}
