package guard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
)

// FailureClass buckets solver failures so a fallback chain can decide
// whether escalating to the next method makes sense.
type FailureClass string

// The failure classes understood by chain escalation.
const (
	// ClassNone marks success.
	ClassNone FailureClass = ""
	// ClassNoConvergence: the iteration budget ran out without reaching
	// tolerance. Escalatable — an exact method may still succeed.
	ClassNoConvergence FailureClass = "no-convergence"
	// ClassDivergence: the iteration produced growing or non-finite
	// residuals. Escalatable.
	ClassDivergence FailureClass = "divergence"
	// ClassNumerical: a guard-rail check failed (NaN/Inf, lost probability
	// mass). Escalatable.
	ClassNumerical FailureClass = "numerical"
	// ClassBudget: a size budget was exceeded (the Boeing path).
	// Escalatable — that is what the bounding fallbacks are for.
	ClassBudget FailureClass = "budget-exceeded"
	// ClassInjected: a failpoint tripped (internal/failpoint). Escalatable
	// so fault injection exercises the same fallback paths a genuine
	// solver failure would.
	ClassInjected FailureClass = "injected"
	// ClassCanceled and ClassDeadline: the context was interrupted. Never
	// escalated — the caller asked the whole solve to stop.
	ClassCanceled FailureClass = "canceled"
	ClassDeadline FailureClass = "deadline"
	// ClassInternal: a recovered panic. Not escalated by default; the
	// model likely triggers the same defect in every method.
	ClassInternal FailureClass = "internal"
	// ClassError: anything unclassified (malformed model, dimension
	// mismatch). Not escalated — a structural error fails every method
	// the same way.
	ClassError FailureClass = "error"
)

// Classed is implemented by typed solver errors that know their own
// failure class (linalg.ErrNoConvergence, hier.NoConvergenceError,
// *InterruptError, …). Classify falls back to ClassError for errors that
// do not.
type Classed interface {
	FailureClass() string
}

// Classify buckets an error for chain escalation.
func Classify(err error) FailureClass {
	if err == nil {
		return ClassNone
	}
	var c Classed
	if errors.As(err, &c) {
		return FailureClass(c.FailureClass())
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return ClassDeadline
	case errors.Is(err, context.Canceled):
		return ClassCanceled
	}
	return ClassError
}

// Escalatable reports whether a failure of this class should fall through
// to the next method in a chain.
func (c FailureClass) Escalatable() bool {
	switch c {
	case ClassNoConvergence, ClassDivergence, ClassNumerical, ClassBudget, ClassInjected:
		return true
	}
	return false
}

// Step is one method in a fallback chain.
type Step[T any] struct {
	// Name identifies the method in the trace ("sor", "gth", "bounds").
	Name string
	// Run executes the method. The recorder is scoped to this attempt's
	// span, so nested solver spans land under the attempt.
	Run func(ctx context.Context, rec obs.Recorder) (T, error)
	// Retries re-runs this step up to Retries additional times when it
	// fails with an escalatable class, waiting Backoff (doubled per retry)
	// between attempts. Zero disables retrying; deterministic solvers
	// should leave it zero — retries exist for stochastic or external
	// steps.
	Retries int
	// Backoff is the initial wait before a retry. The wait is
	// context-aware: cancellation during backoff aborts the chain.
	Backoff time.Duration
}

// Prefer reorders a step list so the named step runs first, keeping the
// relative order of the remaining steps. An unknown name returns the list
// unchanged, so callers can pass a structural solver hint through
// verbatim without validating it against the chain's method set.
func Prefer[T any](name string, steps ...Step[T]) []Step[T] {
	for i, s := range steps {
		if s.Name != name {
			continue
		}
		out := make([]Step[T], 0, len(steps))
		out = append(out, s)
		out = append(out, steps[:i]...)
		out = append(out, steps[i+1:]...)
		return out
	}
	return steps
}

// Attempt records one executed step (including retries) in a ChainReport.
type Attempt struct {
	// Method is the step name, Try its 1-based attempt number within the
	// step (retries increment it).
	Method string `json:"method"`
	Try    int    `json:"try"`
	// Class is the failure class ("" on success).
	Class FailureClass `json:"class,omitempty"`
	// Err is the failure message ("" on success).
	Err string `json:"error,omitempty"`
}

// ChainReport summarizes a chain run: every attempt in order plus the
// winning method ("" when the chain was exhausted or aborted).
type ChainReport struct {
	Attempts []Attempt `json:"attempts"`
	Winner   string    `json:"winner,omitempty"`
	// RetryBudgetExhausted reports that per-step retries were skipped
	// because the chain's retry budget ran out (see WithRetryBudget);
	// escalation to later steps still happened.
	RetryBudgetExhausted bool `json:"retry_budget_exhausted,omitempty"`
}

// retryBudgetKey carries an explicit retry budget on the context.
type retryBudgetKey struct{}

// WithRetryBudget caps the total wall time RunChain may spend on
// *retries* of failing steps (escalation to the next method is always
// allowed — the budget protects the deadline from being eaten by
// re-running a struggling solver, not from trying a different one).
// Without an explicit budget, a chain under a context deadline gets half
// the time remaining when it starts; a chain with neither deadline nor
// budget retries without limit.
func WithRetryBudget(ctx context.Context, d time.Duration) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, retryBudgetKey{}, d)
}

// retryDeadline computes the instant after which RunChain stops retrying.
// The zero time means "no budget".
func retryDeadline(ctx context.Context, start time.Time) time.Time {
	if ctx == nil {
		return time.Time{}
	}
	if d, ok := ctx.Value(retryBudgetKey{}).(time.Duration); ok {
		return start.Add(d)
	}
	if dl, ok := ctx.Deadline(); ok {
		return start.Add(dl.Sub(start) / 2)
	}
	return time.Time{}
}

// ExhaustedError reports a chain whose every method failed. It unwraps to
// the last attempt's error, so errors.Is/As reach the typed solver error.
type ExhaustedError struct {
	// Name labels the chain ("steadystate", …).
	Name string
	// Report holds the attempt log.
	Report *ChainReport

	last error
}

// Error implements error.
func (e *ExhaustedError) Error() string {
	parts := make([]string, len(e.Report.Attempts))
	for i, a := range e.Report.Attempts {
		parts[i] = fmt.Sprintf("%s: %s", a.Method, a.Class)
	}
	return fmt.Sprintf("guard: chain %s exhausted (%s): %v", e.Name, strings.Join(parts, ", "), e.last)
}

// Unwrap exposes the final attempt's error.
func (e *ExhaustedError) Unwrap() error { return e.last }

// RunChain executes the steps in escalation order until one succeeds.
// Failures with an escalatable class (no-convergence, divergence,
// numerical, budget) fall through to the next step; cancellation,
// deadline, and structural errors abort immediately. Every attempt, its
// failure class, and the winning method are recorded on a "guard.chain"
// span under rec, and the same information is returned as a ChainReport
// regardless of tracing.
func RunChain[T any](ctx context.Context, rec obs.Recorder, name string, steps ...Step[T]) (T, *ChainReport, error) {
	var zero T
	report := &ChainReport{}
	if len(steps) == 0 {
		return zero, report, fmt.Errorf("guard: chain %s has no steps", name)
	}
	rec = obs.Or(rec)
	tracing := rec.Enabled()
	if tracing {
		rec = rec.Span("guard.chain", obs.S("chain", name), obs.I("steps", len(steps)))
		defer rec.End()
	}
	var lastErr error
	retryCutoff := retryDeadline(ctx, time.Now())
	for _, step := range steps {
		backoff := step.Backoff
		for try := 1; try <= step.Retries+1; try++ {
			if err := Ctx(ctx, "guard.chain:"+name, 0, nan()); err != nil {
				report.finish(rec, tracing, "")
				return zero, report, err
			}
			sp := rec
			if tracing {
				sp = rec.Span("attempt:"+step.Name, obs.S("method", step.Name), obs.I("try", try))
			}
			val, err := step.Run(ctx, sp)
			class := Classify(err)
			report.Attempts = append(report.Attempts, Attempt{
				Method: step.Name, Try: try, Class: class, Err: errString(err),
			})
			if tracing {
				if err != nil {
					sp.Set(obs.S("failure_class", string(class)), obs.S("error", err.Error()))
				} else {
					sp.Set(obs.S("failure_class", "none"))
				}
				sp.End()
			}
			if err == nil {
				report.finish(rec, tracing, step.Name)
				return val, report, nil
			}
			lastErr = err
			if !class.Escalatable() {
				// Cancellation/deadline/structural failure: abort the chain,
				// surfacing the typed error unchanged.
				report.finish(rec, tracing, "")
				return zero, report, err
			}
			if try <= step.Retries {
				if !retryCutoff.IsZero() && !time.Now().Before(retryCutoff) {
					// Retry budget spent: skip this step's remaining retries
					// but keep escalating so a different method still gets
					// its shot inside the deadline.
					report.RetryBudgetExhausted = true
					if tracing {
						rec.Set(obs.S("retry_budget", "exhausted"))
					}
					break
				}
				if err := waitBackoff(ctx, backoff); err != nil {
					report.finish(rec, tracing, "")
					return zero, report, err
				}
				backoff *= 2
			}
		}
	}
	report.finish(rec, tracing, "")
	return zero, report, &ExhaustedError{Name: name, Report: report, last: lastErr}
}

// finish stamps the chain span with the outcome.
func (r *ChainReport) finish(rec obs.Recorder, tracing bool, winner string) {
	r.Winner = winner
	if !tracing {
		return
	}
	if winner == "" {
		rec.Set(obs.I("attempts", len(r.Attempts)), obs.S("outcome", "exhausted"))
		return
	}
	rec.Set(obs.I("attempts", len(r.Attempts)), obs.S("winner", winner))
}

// waitBackoff sleeps for d respecting cancellation. It deliberately avoids
// time.Sleep (forbidden in library code by numvet's time-sleep rule) so a
// deadline can cut a backoff short.
func waitBackoff(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return Ctx(ctx, "guard.backoff", 0, nan())
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	if ctx == nil {
		<-timer.C
		return nil
	}
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return Ctx(ctx, "guard.backoff", 0, nan())
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
