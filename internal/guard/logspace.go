package guard

import (
	"errors"
	"math"
)

// Log-space probability arithmetic for the tiny failure probabilities the
// bounding paths work with (per-cut products like 1e-12^5 underflow the
// linear domain long before they stop mattering to a certified bound).

// ErrBadLogProb reports a probability outside [0,1] handed to a log-space
// helper.
var ErrBadLogProb = errors.New("guard: probability outside [0,1]")

// LogProb returns log(p) for p in [0,1], with log(0) = -Inf.
func LogProb(p float64) (float64, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return 0, ErrBadLogProb
	}
	return math.Log(p), nil
}

// LogSumExp returns log(Σ exp(x_i)) without overflow or underflow: the
// classic max-shifted form. An empty slice yields -Inf (the log of zero).
func LogSumExp(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return math.Inf(-1)
	}
	if math.IsInf(m, 1) {
		return math.Inf(1)
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - m)
	}
	return m + math.Log(sum)
}

// Log1mExp returns log(1 - exp(x)) for x ≤ 0, switching between expm1 and
// log1p at the standard x = -ln 2 crossover for full precision (the
// Mächler scheme).
func Log1mExp(x float64) float64 {
	if x > 0 {
		return math.NaN()
	}
	if x == 0 { //numvet:allow float-eq log(1-e^0) is exactly log(0) = -Inf
		return math.Inf(-1)
	}
	if x > -math.Ln2 {
		return math.Log(-math.Expm1(x))
	}
	return math.Log1p(-math.Exp(x))
}

// LogCutProb returns the log-probability of one cut set: Σ log p_i over
// the cut's component failure probabilities.
func LogCutProb(probs []float64) (float64, error) {
	var sum float64
	for _, p := range probs {
		lp, err := LogProb(p)
		if err != nil {
			return 0, err
		}
		sum += lp
	}
	return sum, nil
}

// LogRareEvent returns the log of the rare-event (first Bonferroni) upper
// bound min(1, Σ_j Π_i p_ji) given each cut's log-probability, evaluated
// entirely in log space so bounds like 1e-700 survive.
func LogRareEvent(logCuts []float64) float64 {
	s := LogSumExp(logCuts)
	if s > 0 {
		return 0 // the bound is capped at probability 1
	}
	return s
}
