package guard

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestCtxNilAndLive(t *testing.T) {
	if err := Ctx(nil, "op", 3, 0.5); err != nil {
		t.Fatalf("nil context: %v", err)
	}
	if err := Ctx(context.Background(), "op", 3, 0.5); err != nil {
		t.Fatalf("live context: %v", err)
	}
}

func TestCtxCanceledUnwraps(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Ctx(ctx, "linalg.sor", 42, 1e-3)
	if err == nil {
		t.Fatal("want error from canceled context")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false: %v", err)
	}
	if errors.Is(err, ErrDeadline) {
		t.Errorf("canceled error must not match ErrDeadline: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false: %v", err)
	}
	var ie *InterruptError
	if !errors.As(err, &ie) {
		t.Fatalf("errors.As *InterruptError = false: %v", err)
	}
	if ie.Op != "linalg.sor" || ie.Iterations != 42 || ie.LastResidual != 1e-3 {
		t.Errorf("partial progress lost: %+v", ie)
	}
	if got := Classify(err); got != ClassCanceled {
		t.Errorf("Classify = %q, want canceled", got)
	}
}

func TestCtxDeadlineUnwraps(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	err := Ctx(ctx, "markov.transient", 7, 0.25)
	if !errors.Is(err, ErrDeadline) {
		t.Errorf("errors.Is(err, ErrDeadline) = false: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false: %v", err)
	}
	if got := Classify(err); got != ClassDeadline {
		t.Errorf("Classify = %q, want deadline", got)
	}
	if !strings.Contains(err.Error(), "deadline exceeded after 7 iterations") {
		t.Errorf("message lost progress: %v", err)
	}
}

type classedErr struct{ class string }

func (e classedErr) Error() string        { return "classed: " + e.class }
func (e classedErr) FailureClass() string { return e.class }

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want FailureClass
	}{
		{nil, ClassNone},
		{classedErr{"no-convergence"}, ClassNoConvergence},
		{classedErr{"divergence"}, ClassDivergence},
		{&BudgetError{Op: "bdd", Budget: 10, Actual: 11}, ClassBudget},
		{&NumericalError{Op: "x", Detail: "NaN"}, ClassNumerical},
		{&InternalError{Op: "solve", Value: "boom"}, ClassInternal},
		{errors.New("plain"), ClassError},
		{context.DeadlineExceeded, ClassDeadline},
		{context.Canceled, ClassCanceled},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
	for _, c := range []struct {
		class FailureClass
		want  bool
	}{
		{ClassNoConvergence, true}, {ClassDivergence, true}, {ClassNumerical, true},
		{ClassBudget, true}, {ClassCanceled, false}, {ClassDeadline, false},
		{ClassInternal, false}, {ClassError, false},
	} {
		if got := c.class.Escalatable(); got != c.want {
			t.Errorf("%q.Escalatable() = %v, want %v", c.class, got, c.want)
		}
	}
}

func TestRecoverPanicConvertsToInternalError(t *testing.T) {
	tr := obs.NewTrace("root")
	rec := tr.Span("modelio.solve")
	boundary := func() (err error) {
		defer RecoverPanic(&err, rec, "modelio.solve")
		inner := rec.Span("linalg.sor")
		_ = inner
		panic("index out of range")
	}
	err := boundary()
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InternalError, got %v", err)
	}
	if ie.Value != "index out of range" {
		t.Errorf("panic value = %v", ie.Value)
	}
	if len(ie.Stack) == 0 {
		t.Error("stack not captured")
	}
	found := false
	for _, name := range ie.SpanPath {
		if name == "linalg.sor" {
			found = true
		}
	}
	if !found {
		t.Errorf("span path %v misses the active solver span", ie.SpanPath)
	}
	if Classify(err) != ClassInternal {
		t.Errorf("Classify = %q", Classify(err))
	}
}

func TestRecoverPanicNoopOnSuccess(t *testing.T) {
	f := func() (err error) {
		defer RecoverPanic(&err, nil, "op")
		return nil
	}
	if err := f(); err != nil {
		t.Fatalf("clean return overwritten: %v", err)
	}
}

func TestRailsModes(t *testing.T) {
	bad := []float64{0.5, math.NaN(), 0.5}
	if err := (Rails{Mode: Off}).CheckFinite("op", bad); err != nil {
		t.Errorf("Off mode errored: %v", err)
	}
	if err := (Rails{Mode: Warn}).CheckFinite("op", bad); err != nil {
		t.Errorf("Warn mode errored: %v", err)
	}
	err := (Rails{Mode: Strict}).CheckFinite("op", bad)
	var ne *NumericalError
	if !errors.As(err, &ne) {
		t.Fatalf("Strict mode: want *NumericalError, got %v", err)
	}
	if Classify(err) != ClassNumerical {
		t.Errorf("Classify = %q", Classify(err))
	}

	// Warn mode records the violation on the trace.
	tr := obs.NewTrace("t")
	sp := tr.Span("solve")
	if err := (Rails{Mode: Warn, Recorder: sp}).CheckProbVector("op", []float64{0.7, 0.7}); err != nil {
		t.Fatalf("warn returned error: %v", err)
	}
	sp.End()
	root := tr.Finish()
	if _, ok := root.Children[0].Attr("guard_warning"); !ok {
		t.Error("warn-mode violation not recorded on span")
	}
}

func TestRailsChecks(t *testing.T) {
	r := Rails{Mode: Strict}
	if err := r.CheckProbVector("op", []float64{0.25, 0.75}); err != nil {
		t.Errorf("valid distribution rejected: %v", err)
	}
	if err := r.CheckProbVector("op", []float64{0.9, 0.3}); err == nil {
		t.Error("excess mass accepted")
	}
	if err := r.CheckProbVector("op", []float64{1.5, -0.5}); err == nil {
		t.Error("out-of-range entries accepted")
	}
	if err := r.CheckUnitInterval("op", 0.3); err != nil {
		t.Errorf("valid scalar rejected: %v", err)
	}
	if err := r.CheckUnitInterval("op", 1.5); err == nil {
		t.Error("1.5 accepted as probability")
	}
	if err := r.CheckFiniteScalar("op", math.Inf(1)); err == nil {
		t.Error("Inf accepted as finite scalar")
	}
	rows := [][]float64{{-2, 2}, {1, -1}}
	err := r.CheckRowSums("op", 2, 0, func(i int) float64 {
		var s float64
		for _, v := range rows[i] {
			s += v
		}
		return s
	})
	if err != nil {
		t.Errorf("zero row sums rejected: %v", err)
	}
	err = r.CheckRowSums("op", 1, 0, func(int) float64 { return 0.5 })
	if err == nil {
		t.Error("bad row sum accepted")
	}
}

func TestLogSpace(t *testing.T) {
	// logsumexp of log(0.25)+log(0.25) = log(0.5).
	got := LogSumExp([]float64{math.Log(0.25), math.Log(0.25)})
	if math.Abs(got-math.Log(0.5)) > 1e-12 {
		t.Errorf("LogSumExp = %g, want log 0.5", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("empty LogSumExp not -Inf")
	}
	// Values that underflow linear space survive in log space:
	// 1000 cuts of probability 1e-400 each (exactly 0 in float64) gives
	// the bound 1e-397, representable only as a log.
	logs := make([]float64, 1000)
	for i := range logs {
		logs[i] = -400 * math.Ln10
	}
	if math.Exp(logs[0]) != 0 { //numvet:allow float-eq asserting exact underflow to zero
		t.Fatal("per-cut probability should underflow the linear domain")
	}
	lb := LogRareEvent(logs)
	want := math.Log(1000) - 400*math.Ln10
	if math.Abs(lb-want) > 1e-9 {
		t.Errorf("LogRareEvent = %g, want %g", lb, want)
	}
	// Cap at log(1) for non-rare cuts.
	if got := LogRareEvent([]float64{math.Log(0.9), math.Log(0.9)}); got != 0 {
		t.Errorf("LogRareEvent cap = %g, want 0", got)
	}
	// Log1mExp: mid-range values against the naive form, the far tail
	// against the asymptotic log(1-e) ≈ -e (where the naive form rounds
	// 1-e to 1 and returns 0, losing the answer entirely).
	for _, x := range []float64{-0.1, -0.5, -1, -5} {
		want := math.Log(1 - math.Exp(x))
		got := Log1mExp(x)
		if math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Errorf("Log1mExp(%g) = %g, want %g", x, got, want)
		}
	}
	if x := -40.0; math.Abs(Log1mExp(x)+math.Exp(x)) > 1e-12*math.Exp(x) {
		t.Errorf("Log1mExp(%g) = %g, want ≈ %g", x, Log1mExp(x), -math.Exp(x))
	}
	if !math.IsInf(Log1mExp(0), -1) {
		t.Error("Log1mExp(0) not -Inf")
	}
	if _, err := LogProb(1.5); !errors.Is(err, ErrBadLogProb) {
		t.Error("LogProb accepted 1.5")
	}
	if lp, err := LogProb(0); err != nil || !math.IsInf(lp, -1) {
		t.Errorf("LogProb(0) = %g, %v", lp, err)
	}
	if lc, err := LogCutProb([]float64{0.5, 0.5}); err != nil || math.Abs(lc-math.Log(0.25)) > 1e-12 {
		t.Errorf("LogCutProb = %g, %v", lc, err)
	}
}
