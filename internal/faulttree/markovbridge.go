package faulttree

import (
	"fmt"
	"strconv"

	"repro/internal/dist"
	"repro/internal/markov"
)

// Bridge to the state-space world: a coherent fault tree whose basic
// events have exponential lifetimes (and repair rates) expands into the
// CTMC over event-status bitmasks. The expansion buys the measures the
// non-state-space solution cannot produce — above all the system MTTF
// *with component repair* (components are fixed while the system is still
// up, so the first system failure is a first-passage problem) — at the
// price the tutorial warns about: 2^n states.

// maxBridgeEvents caps the expansion (2^12 = 4096 states keeps the dense
// first-passage solve comfortable).
const maxBridgeEvents = 12

// AvailabilityChain holds the expanded CTMC and its metadata.
type AvailabilityChain struct {
	// Chain is the 2^n-state CTMC; state names are bitmask integers in
	// decimal ("0" = all events good).
	Chain *markov.CTMC
	// UpStates lists states where the top event has NOT occurred.
	UpStates []string
	// DownStates lists the complement.
	DownStates []string
	tree       *Tree
}

// ToCTMC expands the tree. Every event needs an exponential lifetime;
// repairRate supplies each event's repair rate (return 0 for
// non-repairable events).
func (t *Tree) ToCTMC(repairRate func(*Event) float64) (*AvailabilityChain, error) {
	if !t.coherent {
		return nil, ErrNonCoherent
	}
	n := len(t.events)
	if n > maxBridgeEvents {
		return nil, fmt.Errorf("faulttree: %d events exceed the %d-event state-space cap (2^n states)",
			n, maxBridgeEvents)
	}
	lams := make([]float64, n)
	mus := make([]float64, n)
	for i, e := range t.events {
		exp, ok := e.Lifetime.(dist.Exponential)
		if !ok {
			return nil, fmt.Errorf("faulttree: event %q lifetime %v is not exponential (use phfit to expand first)",
				e.Name, e.Lifetime)
		}
		lams[i] = exp.Rate()
		if repairRate != nil {
			mu := repairRate(e)
			if mu < 0 {
				return nil, fmt.Errorf("faulttree: negative repair rate %g for %q", mu, e.Name)
			}
			mus[i] = mu
		}
	}
	c := markov.NewCTMC()
	name := func(mask int) string { return strconv.Itoa(mask) }
	ac := &AvailabilityChain{Chain: c, tree: t}
	probe := make([]float64, n)
	topOccurred := func(mask int) (bool, error) {
		for i := range probe {
			if mask&(1<<i) != 0 {
				probe[i] = 1
			} else {
				probe[i] = 0
			}
		}
		p, err := t.mgr.Prob(t.top, probe)
		if err != nil {
			return false, err
		}
		return p > 0.5, nil
	}
	for mask := 0; mask < 1<<n; mask++ {
		c.State(name(mask))
		down, err := topOccurred(mask)
		if err != nil {
			return nil, err
		}
		if down {
			ac.DownStates = append(ac.DownStates, name(mask))
		} else {
			ac.UpStates = append(ac.UpStates, name(mask))
		}
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				if err := c.AddRate(name(mask), name(mask|1<<i), lams[i]); err != nil {
					return nil, err
				}
			} else if mus[i] > 0 {
				if err := c.AddRate(name(mask), name(mask&^(1<<i)), mus[i]); err != nil {
					return nil, err
				}
			}
		}
	}
	return ac, nil
}

// Availability returns the steady-state probability that the top event has
// not occurred (requires every event repairable for a meaningful long-run
// value).
func (ac *AvailabilityChain) Availability() (float64, error) {
	pi, err := ac.Chain.SteadyState()
	if err != nil {
		return 0, err
	}
	return ac.Chain.ProbSum(pi, ac.UpStates...)
}

// MTTF returns the mean time to the first top-event occurrence from the
// all-good state, treating every down state as absorbing. With repair
// rates supplied to ToCTMC, component repairs while the system is up
// extend this first-passage time — the measure that forces the state-space
// treatment.
func (ac *AvailabilityChain) MTTF() (float64, error) {
	if len(ac.DownStates) == 0 {
		return 0, fmt.Errorf("faulttree: top event unreachable; MTTF infinite")
	}
	p0, err := ac.Chain.InitialAt("0")
	if err != nil {
		return 0, err
	}
	res, err := ac.Chain.Absorbing(p0, ac.DownStates...)
	if err != nil {
		return 0, err
	}
	return res.MTTA, nil
}
