package faulttree

import (
	"fmt"
	"sort"

	"repro/internal/bdd"
)

// MOCUS enumerates the minimal cut sets by classic top-down gate expansion
// (the Method of Obtaining CUt Sets). It requires a coherent tree. maxSets
// caps the number of intermediate product terms to bound blow-up; pass 0
// for the default of 1,000,000.
//
// MOCUS exists alongside the BDD extraction both as an independent oracle
// in tests and because it is the algorithm the tutorial's lineage of tools
// (SHARPE and its contemporaries) historically used.
func (t *Tree) MOCUS(maxSets int) ([][]string, error) {
	if !t.coherent {
		return nil, ErrNonCoherent
	}
	if maxSets <= 0 {
		maxSets = 1_000_000
	}
	sets, err := t.mocusRec(t.root, maxSets)
	if err != nil {
		return nil, err
	}
	cuts := make([]bdd.CutSet, len(sets))
	for i, s := range sets {
		cs := make(bdd.CutSet, 0, len(s))
		for v := range s {
			cs = append(cs, v)
		}
		sort.Ints(cs)
		cuts[i] = cs
	}
	minimal := bdd.Minimize(cuts)
	out := make([][]string, len(minimal))
	for i, c := range minimal {
		names := make([]string, len(c))
		for j, v := range c {
			names[j] = t.events[v].Name
		}
		out[i] = names
	}
	return out, nil
}

type intSet map[int]bool

func (t *Tree) mocusRec(n *Node, maxSets int) ([]intSet, error) {
	switch n.kind {
	case kindBasic:
		return []intSet{{t.index[n.event]: true}}, nil
	case kindOr:
		var out []intSet
		for _, c := range n.children {
			sub, err := t.mocusRec(c, maxSets)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
			if len(out) > maxSets {
				return nil, fmt.Errorf("faulttree: MOCUS exceeded %d product terms", maxSets)
			}
		}
		return out, nil
	case kindAnd:
		out := []intSet{{}}
		for _, c := range n.children {
			sub, err := t.mocusRec(c, maxSets)
			if err != nil {
				return nil, err
			}
			next := make([]intSet, 0, len(out)*len(sub))
			for _, a := range out {
				for _, b := range sub {
					merged := make(intSet, len(a)+len(b))
					for v := range a {
						merged[v] = true
					}
					for v := range b {
						merged[v] = true
					}
					next = append(next, merged)
					if len(next) > maxSets {
						return nil, fmt.Errorf("faulttree: MOCUS exceeded %d product terms", maxSets)
					}
				}
			}
			out = next
		}
		return out, nil
	case kindAtLeast:
		// Expand k-of-n into OR over all k-subsets of AND.
		nc := len(n.children)
		var out []intSet
		idx := make([]int, n.k)
		var choose func(start, depth int) error
		choose = func(start, depth int) error {
			if depth == n.k {
				group := make([]*Node, n.k)
				for i, j := range idx {
					group[i] = n.children[j]
				}
				sub, err := t.mocusRec(And(group...), maxSets)
				if err != nil {
					return err
				}
				out = append(out, sub...)
				if len(out) > maxSets {
					return fmt.Errorf("faulttree: MOCUS exceeded %d product terms", maxSets)
				}
				return nil
			}
			for j := start; j <= nc-(n.k-depth); j++ {
				idx[depth] = j
				if err := choose(j+1, depth+1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := choose(0, 0); err != nil {
			return nil, err
		}
		return out, nil
	case kindNot:
		return nil, ErrNonCoherent
	default:
		return nil, fmt.Errorf("%w: unknown node kind %d", ErrMalformed, n.kind)
	}
}
