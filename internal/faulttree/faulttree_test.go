package faulttree

import (
	"errors"
	"math"
	"sort"
	"testing"

	"repro/internal/dist"
)

func ev(name string, p float64) *Event { return &Event{Name: name, Prob: p} }

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Abs(b); m > 1e-300 {
		return d / m
	}
	return d
}

func TestAndOrGates(t *testing.T) {
	a, b, c := ev("a", 0.1), ev("b", 0.2), ev("c", 0.3)
	tests := []struct {
		name string
		top  *Node
		want float64
	}{
		{name: "and", top: And(Basic(a), Basic(b)), want: 0.02},
		{name: "or", top: Or(Basic(a), Basic(b)), want: 1 - 0.9*0.8},
		{name: "or3", top: Or(Basic(a), Basic(b), Basic(c)), want: 1 - 0.9*0.8*0.7},
		{name: "nested", top: Or(And(Basic(a), Basic(b)), Basic(c)), want: 1 - (1-0.02)*0.7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr, err := New(tt.top)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tr.TopStatic()
			if err != nil {
				t.Fatal(err)
			}
			if relErr(got, tt.want) > 1e-12 {
				t.Errorf("top = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestRepeatedEventExactness(t *testing.T) {
	// TOP = (a∧b) ∨ (a∧c), a repeated. Exact P = p_a(p_b + p_c - p_b p_c).
	a, b, c := ev("a", 0.3), ev("b", 0.4), ev("c", 0.5)
	tr, err := New(Or(And(Basic(a), Basic(b)), And(Basic(a), Basic(c))))
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.TopStatic()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.3 * (0.4 + 0.5 - 0.2)
	if relErr(got, want) > 1e-12 {
		t.Errorf("top = %g, want %g", got, want)
	}
	if len(tr.Events()) != 3 {
		t.Errorf("events = %d, want 3", len(tr.Events()))
	}
}

func TestKofNGate(t *testing.T) {
	events := []*Event{ev("a", 0.1), ev("b", 0.1), ev("c", 0.1)}
	tr, err := New(AtLeast(2, Basic(events[0]), Basic(events[1]), Basic(events[2])))
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.TopStatic()
	if err != nil {
		t.Fatal(err)
	}
	want := 3*0.01*0.9 + 0.001
	if relErr(got, want) > 1e-12 {
		t.Errorf("2oo3 = %g, want %g", got, want)
	}
}

func TestNotGateNonCoherent(t *testing.T) {
	a, b := ev("a", 0.3), ev("b", 0.6)
	tr, err := New(And(Basic(a), Not(Basic(b))))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Coherent() {
		t.Error("tree with NOT should be non-coherent")
	}
	got, err := tr.TopStatic()
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.3 * 0.4; relErr(got, want) > 1e-12 {
		t.Errorf("top = %g, want %g", got, want)
	}
	if _, err := tr.MOCUS(0); !errors.Is(err, ErrNonCoherent) {
		t.Errorf("MOCUS on non-coherent: got %v", err)
	}
	if _, err := tr.RareEventBound(); !errors.Is(err, ErrNonCoherent) {
		t.Errorf("RareEventBound on non-coherent: got %v", err)
	}
}

func TestMinimalCutSetsMatchMOCUS(t *testing.T) {
	// Redundant pump system with shared valve.
	valve := ev("valve", 0.01)
	p1, p2 := ev("pump1", 0.1), ev("pump2", 0.1)
	power := ev("power", 0.005)
	top := Or(
		Basic(power),
		Basic(valve),
		And(Basic(p1), Basic(p2)),
	)
	tr, err := New(top)
	if err != nil {
		t.Fatal(err)
	}
	bddCuts := tr.MinimalCutSets()
	mocusCuts, err := tr.MOCUS(0)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(cc [][]string) []string {
		keys := make([]string, len(cc))
		for i, c := range cc {
			s := append([]string(nil), c...)
			sort.Strings(s)
			keys[i] = ""
			for _, x := range s {
				keys[i] += x + ","
			}
		}
		sort.Strings(keys)
		return keys
	}
	a, b := norm(bddCuts), norm(mocusCuts)
	if len(a) != 3 {
		t.Fatalf("cut sets: %v", bddCuts)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("BDD cuts %v != MOCUS cuts %v", bddCuts, mocusCuts)
		}
	}
}

func TestMOCUSKofN(t *testing.T) {
	events := []*Event{ev("a", 0.1), ev("b", 0.1), ev("c", 0.1)}
	tr, err := New(AtLeast(2, Basic(events[0]), Basic(events[1]), Basic(events[2])))
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := tr.MOCUS(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 3 {
		t.Fatalf("2oo3 MOCUS cuts = %v, want 3 pairs", cuts)
	}
	for _, c := range cuts {
		if len(c) != 2 {
			t.Fatalf("cut %v should have 2 events", c)
		}
	}
}

func TestRareEventBoundIsUpperBound(t *testing.T) {
	a, b, c := ev("a", 0.2), ev("b", 0.3), ev("c", 0.25)
	tr, err := New(Or(And(Basic(a), Basic(b)), And(Basic(a), Basic(c)), Basic(b)))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := tr.TopStatic()
	if err != nil {
		t.Fatal(err)
	}
	bound, err := tr.RareEventBound()
	if err != nil {
		t.Fatal(err)
	}
	if bound < exact-1e-12 {
		t.Errorf("rare-event bound %g below exact %g", bound, exact)
	}
}

func TestInclusionExclusionConverges(t *testing.T) {
	a, b, c, d := ev("a", 0.1), ev("b", 0.15), ev("c", 0.2), ev("d", 0.12)
	tr, err := New(Or(
		And(Basic(a), Basic(b)),
		And(Basic(b), Basic(c)),
		And(Basic(c), Basic(d)),
		And(Basic(a), Basic(d)),
	))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := tr.TopStatic()
	if err != nil {
		t.Fatal(err)
	}
	full, err := tr.InclusionExclusion(0)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(full, exact) > 1e-10 {
		t.Errorf("full IE %g != exact %g", full, exact)
	}
	upper, err := tr.InclusionExclusion(1)
	if err != nil {
		t.Fatal(err)
	}
	lower, err := tr.InclusionExclusion(2)
	if err != nil {
		t.Fatal(err)
	}
	if upper < exact-1e-12 || lower > exact+1e-12 {
		t.Errorf("Bonferroni bounds [%g, %g] do not bracket %g", lower, upper, exact)
	}
}

func TestTopAtWithLifetimes(t *testing.T) {
	a := &Event{Name: "a", Lifetime: dist.MustExponential(1)}
	b := &Event{Name: "b", Lifetime: dist.MustExponential(2)}
	tr, err := New(And(Basic(a), Basic(b)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.TopAt(0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 - math.Exp(-0.5)) * (1 - math.Exp(-1.0))
	if relErr(got, want) > 1e-12 {
		t.Errorf("top(0.5) = %g, want %g", got, want)
	}
	noLife := ev("static", 0.5)
	tr2, err := New(And(Basic(a), Basic(noLife)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.TopAt(1); !errors.Is(err, ErrNoLifetime) {
		t.Errorf("want ErrNoLifetime, got %v", err)
	}
}

func TestImportanceRanking(t *testing.T) {
	// Single point of failure should dominate importance.
	spof := ev("spof", 0.01)
	r1, r2 := ev("r1", 0.1), ev("r2", 0.1)
	tr, err := New(Or(Basic(spof), And(Basic(r1), Basic(r2))))
	if err != nil {
		t.Fatal(err)
	}
	imp, err := tr.Importance()
	if err != nil {
		t.Fatal(err)
	}
	if imp[0].Event != "spof" {
		t.Errorf("highest Birnbaum is %q, want spof", imp[0].Event)
	}
	for _, im := range imp {
		if im.FussellVesely < 0 || im.FussellVesely > 1 {
			t.Errorf("FV(%s) = %g outside [0,1]", im.Event, im.FussellVesely)
		}
		if im.Criticality < 0 || im.Criticality > 1+1e-12 {
			t.Errorf("criticality(%s) = %g outside [0,1]", im.Event, im.Criticality)
		}
	}
}

func TestConstructionErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil root")
	}
	if _, err := New(And()); err == nil {
		t.Error("empty gate")
	}
	if _, err := New(Basic(nil)); err == nil {
		t.Error("nil event")
	}
	if _, err := New(AtLeast(4, Basic(ev("a", 0.1)))); err == nil {
		t.Error("k out of range")
	}
	d1, d2 := ev("dup", 0.1), ev("dup", 0.2)
	if _, err := New(And(Basic(d1), Basic(d2))); err == nil {
		t.Error("duplicate names")
	}
}

func TestLargeTreeBDDScales(t *testing.T) {
	// OR of 60 AND-pairs: 120 events, BDD linear.
	gates := make([]*Node, 60)
	for i := range gates {
		a := ev("a"+itoa(i), 0.001)
		b := ev("b"+itoa(i), 0.001)
		gates[i] = And(Basic(a), Basic(b))
	}
	tr, err := New(Or(gates...))
	if err != nil {
		t.Fatal(err)
	}
	if tr.BDDSize() > 500 {
		t.Errorf("BDD size %d, want linear growth", tr.BDDSize())
	}
	got, err := tr.TopStatic()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Pow(1-1e-6, 60)
	if relErr(got, want) > 1e-9 {
		t.Errorf("top = %g, want %g", got, want)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
