package faulttree

import (
	"errors"
	"testing"
)

func TestModulesDetectIndependentSubtrees(t *testing.T) {
	// TOP = OR( AND(a,b), AND(c,d), e ) — two 2-event modules plus a free
	// event.
	a, b := ev("a", 0.1), ev("b", 0.2)
	c, d := ev("c", 0.3), ev("d", 0.4)
	e := ev("e", 0.05)
	tr, err := New(Or(
		And(Basic(a), Basic(b)),
		And(Basic(c), Basic(d)),
		Basic(e),
	))
	if err != nil {
		t.Fatal(err)
	}
	mods, err := tr.Modules()
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 2 {
		t.Fatalf("modules = %+v, want 2", mods)
	}
	// Probabilities are the AND products.
	wants := map[string]float64{"a": 0.02, "c": 0.12}
	for _, m := range mods {
		if len(m.Events) != 2 {
			t.Errorf("module events = %v", m.Events)
		}
		w, ok := wants[m.Events[0]]
		if !ok {
			t.Errorf("unexpected module %v", m.Events)
			continue
		}
		if relErr(m.Probability, w) > 1e-12 {
			t.Errorf("module %v prob = %g, want %g", m.Events, m.Probability, w)
		}
	}
}

func TestModulesRepeatedEventBlocksModule(t *testing.T) {
	// TOP = OR( AND(a,b), AND(a,c) ): 'a' is shared, so neither AND is a
	// module.
	a, b, c := ev("a", 0.1), ev("b", 0.2), ev("c", 0.3)
	tr, err := New(Or(And(Basic(a), Basic(b)), And(Basic(a), Basic(c))))
	if err != nil {
		t.Fatal(err)
	}
	mods, err := tr.Modules()
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 0 {
		t.Fatalf("modules = %+v, want none (repeated event)", mods)
	}
}

func TestTopViaModulesMatchesDirect(t *testing.T) {
	// Nested structure with modules at several levels.
	a, b := ev("a", 0.1), ev("b", 0.2)
	c, d, e := ev("c", 0.3), ev("d", 0.4), ev("e", 0.15)
	f := ev("f", 0.02)
	tr, err := New(Or(
		And(Basic(a), Basic(b)),
		AtLeast(2, Basic(c), Basic(d), Basic(e)),
		Basic(f),
	))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := tr.TopStatic()
	if err != nil {
		t.Fatal(err)
	}
	viaMods, reducedEvents, err := tr.TopViaModules()
	if err != nil {
		t.Fatal(err)
	}
	if relErr(viaMods, direct) > 1e-12 {
		t.Errorf("modularized %g != direct %g", viaMods, direct)
	}
	// 6 events reduce to 2 module pseudo-events + f = 3.
	if reducedEvents != 3 {
		t.Errorf("reduced events = %d, want 3", reducedEvents)
	}
}

func TestTopViaModulesNoModules(t *testing.T) {
	a, b, c := ev("a", 0.1), ev("b", 0.2), ev("c", 0.3)
	tr, err := New(Or(And(Basic(a), Basic(b)), And(Basic(a), Basic(c))))
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := tr.TopStatic()
	via, n, err := tr.TopViaModules()
	if err != nil {
		t.Fatal(err)
	}
	if relErr(via, direct) > 1e-12 {
		t.Errorf("via %g != direct %g", via, direct)
	}
	if n != 3 {
		t.Errorf("reduced events = %d, want 3 (no reduction possible)", n)
	}
}

func TestModulesNonCoherent(t *testing.T) {
	a, b := ev("a", 0.1), ev("b", 0.2)
	tr, err := New(And(Basic(a), Not(Basic(b))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Modules(); !errors.Is(err, ErrNonCoherent) {
		t.Errorf("want ErrNonCoherent, got %v", err)
	}
}

func TestModulesLargeTreeReduction(t *testing.T) {
	// 40 independent AND-pairs under an OR: every pair is a module, and
	// the reduced tree has 40 pseudo-events.
	gates := make([]*Node, 40)
	for i := range gates {
		a := ev("a"+itoa(i), 0.01)
		b := ev("b"+itoa(i), 0.01)
		gates[i] = And(Basic(a), Basic(b))
	}
	tr, err := New(Or(gates...))
	if err != nil {
		t.Fatal(err)
	}
	mods, err := tr.Modules()
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 40 {
		t.Fatalf("modules = %d, want 40", len(mods))
	}
	direct, _ := tr.TopStatic()
	via, n, err := tr.TopViaModules()
	if err != nil {
		t.Fatal(err)
	}
	if relErr(via, direct) > 1e-12 {
		t.Errorf("via %g != direct %g", via, direct)
	}
	if n != 40 {
		t.Errorf("reduced events = %d, want 40", n)
	}
}
