package faulttree

import (
	"fmt"
	"sort"
)

// Module detection (in the spirit of Dutuit–Rauzy): a gate is an
// independent module when the set of basic events below it is disjoint
// from the events appearing anywhere else in the tree. Modules can be
// solved in isolation and replaced by single pseudo-events — the
// tree-level counterpart of the tutorial's hierarchical decomposition, and
// the enabler for hybrid solutions (e.g., replacing a module by a Markov
// submodel's result).

// Module describes one maximal independent module.
type Module struct {
	// Gate is the depth-first index of the gate (root = 0), a stable
	// identifier for trees built in one expression.
	Gate int
	// Events lists the basic events under the module, sorted.
	Events []string
	// Probability is the module's top probability under the static event
	// probabilities.
	Probability float64
}

// Modules returns the maximal independent modules of a coherent tree,
// excluding the root (which is trivially a module) and single-event leaves
// (which are trivially modules of size one).
func (t *Tree) Modules() ([]Module, error) {
	if !t.coherent {
		return nil, ErrNonCoherent
	}
	// Count global occurrences of each event (leaf references).
	occurrences := make(map[*Event]int)
	var countOcc func(n *Node)
	countOcc = func(n *Node) {
		if n.kind == kindBasic {
			occurrences[n.event]++
			return
		}
		for _, c := range n.children {
			countOcc(c)
		}
	}
	countOcc(t.root)

	// Depth-first walk assigning gate indices and collecting, per gate,
	// its event multiset size and event set.
	type gateInfo struct {
		index  int
		node   *Node
		events map[*Event]int // occurrence counts within the subtree
	}
	var gates []gateInfo
	var walk func(n *Node) map[*Event]int
	nextIdx := 0
	walk = func(n *Node) map[*Event]int {
		idx := nextIdx
		nextIdx++
		if n.kind == kindBasic {
			return map[*Event]int{n.event: 1}
		}
		events := make(map[*Event]int)
		for _, c := range n.children {
			for e, k := range walk(c) {
				events[e] += k
			}
		}
		gates = append(gates, gateInfo{index: idx, node: n, events: events})
		return events
	}
	walk(t.root)

	// A gate is a module iff every event below it occurs globally exactly
	// as often as it occurs below the gate (no references from outside).
	isModule := func(g gateInfo) bool {
		for e, k := range g.events {
			if occurrences[e] != k {
				return false
			}
		}
		return true
	}
	// Keep maximal modules only: sort by subtree size descending and skip
	// gates whose event set is covered by an already-kept module.
	sort.Slice(gates, func(i, j int) bool { return len(gates[i].events) > len(gates[j].events) })
	var kept []gateInfo
	covered := make(map[*Event]bool)
	for _, g := range gates {
		if g.index == 0 {
			continue // root is trivially a module
		}
		if !isModule(g) {
			continue
		}
		sub := false
		for e := range g.events {
			if covered[e] {
				sub = true
				break
			}
		}
		if sub {
			continue
		}
		for e := range g.events {
			covered[e] = true
		}
		kept = append(kept, g)
	}
	out := make([]Module, 0, len(kept))
	for _, g := range kept {
		sub, err := New(g.node)
		if err != nil {
			return nil, fmt.Errorf("faulttree: module at gate %d: %w", g.index, err)
		}
		p, err := sub.TopStatic()
		if err != nil {
			return nil, err
		}
		names := make([]string, 0, len(g.events))
		for e := range g.events {
			names = append(names, e.Name)
		}
		sort.Strings(names)
		out = append(out, Module{Gate: g.index, Events: names, Probability: p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Gate < out[j].Gate })
	return out, nil
}

// TopViaModules solves the tree by replacing every maximal independent
// module with a pseudo-event carrying the module's probability, then
// solving the reduced tree — and returns both the result and the reduced
// tree's event count. The result must equal TopStatic (asserted in tests);
// the reduction is what enables hybrid solutions.
func (t *Tree) TopViaModules() (float64, int, error) {
	mods, err := t.Modules()
	if err != nil {
		return 0, 0, err
	}
	if len(mods) == 0 {
		v, err := t.TopStatic()
		return v, len(t.events), err
	}
	// Map each module's gate node to its pseudo-event.
	modByGate := make(map[int]*Event, len(mods))
	for _, m := range mods {
		modByGate[m.Gate] = &Event{
			Name: fmt.Sprintf("module@%d", m.Gate),
			Prob: m.Probability,
		}
	}
	nextIdx := 0
	var rebuild func(n *Node) *Node
	rebuild = func(n *Node) *Node {
		idx := nextIdx
		nextIdx++
		if e, ok := modByGate[idx]; ok {
			// Consume the subtree's indices without descending for real.
			skip := countNodes(n) - 1
			nextIdx += skip
			return Basic(e)
		}
		if n.kind == kindBasic {
			return Basic(n.event)
		}
		children := make([]*Node, len(n.children))
		for i, c := range n.children {
			children[i] = rebuild(c)
		}
		return &Node{kind: n.kind, k: n.k, children: children}
	}
	reduced := rebuild(t.root)
	rt, err := New(reduced)
	if err != nil {
		return 0, 0, err
	}
	v, err := rt.TopStatic()
	if err != nil {
		return 0, 0, err
	}
	return v, len(rt.events), nil
}

// countNodes returns the subtree node count (gates + leaves).
func countNodes(n *Node) int {
	if n.kind == kindBasic {
		return 1
	}
	total := 1
	for _, c := range n.children {
		total += countNodes(c)
	}
	return total
}
