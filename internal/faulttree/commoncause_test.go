package faulttree

import (
	"errors"
	"testing"
)

func TestCCFRedundantPair(t *testing.T) {
	// Two redundant pumps, each p=0.01, in an AND gate. Without CCF the
	// top is 1e-4; with beta=0.1 the common cause dominates:
	// top = P(indep both) + contributions of the shared event.
	p, beta := 0.01, 0.1
	a := &Event{Name: "pumpA", Prob: p}
	b := &Event{Name: "pumpB", Prob: p}
	tree, err := New(And(Basic(a), Basic(b)))
	if err != nil {
		t.Fatal(err)
	}
	ccfTree, err := tree.ApplyCCF([]CCFGroup{{
		Name: "ccf-pumps", Beta: beta, Members: []string{"pumpA", "pumpB"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	base, err := tree.TopStatic()
	if err != nil {
		t.Fatal(err)
	}
	withCCF, err := ccfTree.TopStatic()
	if err != nil {
		t.Fatal(err)
	}
	// Exact: member i fails iff indep_i ∨ common. top = P((i1∨c)(i2∨c))
	// = P(c) + (1-P(c))·P(i1)P(i2).
	pi := (1 - beta) * p
	pc := beta * p
	want := pc + (1-pc)*pi*pi
	if relErr(withCCF, want) > 1e-12 {
		t.Errorf("CCF top = %.12g, want %.12g", withCCF, want)
	}
	if withCCF <= base {
		t.Errorf("CCF should raise the top probability: %g vs %g", withCCF, base)
	}
	// Order of magnitude: CCF turns ~p² into ~βp.
	if withCCF < 0.5*beta*p {
		t.Errorf("CCF contribution too small: %g", withCCF)
	}
}

func TestCCFMinimalCutSetsGainSingleton(t *testing.T) {
	a := &Event{Name: "a", Prob: 0.01}
	b := &Event{Name: "b", Prob: 0.01}
	tree, err := New(And(Basic(a), Basic(b)))
	if err != nil {
		t.Fatal(err)
	}
	ccfTree, err := tree.ApplyCCF([]CCFGroup{{
		Name: "cc", Beta: 0.05, Members: []string{"a", "b"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cuts := ccfTree.MinimalCutSets()
	foundSingleton := false
	for _, c := range cuts {
		if len(c) == 1 && c[0] == "cc" {
			foundSingleton = true
		}
	}
	if !foundSingleton {
		t.Errorf("CCF event should be a singleton cut set: %v", cuts)
	}
}

func TestCCFLeavesNonMembersAlone(t *testing.T) {
	a := &Event{Name: "a", Prob: 0.1}
	b := &Event{Name: "b", Prob: 0.1}
	other := &Event{Name: "other", Prob: 0.37}
	tree, err := New(Or(And(Basic(a), Basic(b)), Basic(other)))
	if err != nil {
		t.Fatal(err)
	}
	ccfTree, err := tree.ApplyCCF([]CCFGroup{{
		Name: "cc", Beta: 0.2, Members: []string{"a", "b"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range ccfTree.Events() {
		if e.Name == "other" && e.Prob == 0.37 {
			found = true
		}
	}
	if !found {
		t.Errorf("non-member event mutated: %v", ccfTree.Events())
	}
}

func TestCCFUnequalMembersUsesMinProb(t *testing.T) {
	a := &Event{Name: "a", Prob: 0.02}
	b := &Event{Name: "b", Prob: 0.08}
	tree, err := New(And(Basic(a), Basic(b)))
	if err != nil {
		t.Fatal(err)
	}
	ccfTree, err := tree.ApplyCCF([]CCFGroup{{
		Name: "cc", Beta: 0.25, Members: []string{"a", "b"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ccfTree.Events() {
		if e.Name == "cc" && relErr(e.Prob, 0.25*0.02) > 1e-12 {
			t.Errorf("common-cause prob = %g, want beta·min = %g", e.Prob, 0.25*0.02)
		}
	}
}

func TestCCFValidation(t *testing.T) {
	a := &Event{Name: "a", Prob: 0.1}
	b := &Event{Name: "b", Prob: 0.1}
	tree, err := New(And(Basic(a), Basic(b)))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		groups []CCFGroup
	}{
		{name: "empty", groups: nil},
		{name: "bad beta", groups: []CCFGroup{{Name: "g", Beta: 1.5, Members: []string{"a", "b"}}}},
		{name: "one member", groups: []CCFGroup{{Name: "g", Beta: 0.1, Members: []string{"a"}}}},
		{name: "unknown member", groups: []CCFGroup{{Name: "g", Beta: 0.1, Members: []string{"a", "zzz"}}}},
		{name: "overlapping groups", groups: []CCFGroup{
			{Name: "g1", Beta: 0.1, Members: []string{"a", "b"}},
			{Name: "g2", Beta: 0.1, Members: []string{"a", "b"}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tree.ApplyCCF(tc.groups); !errors.Is(err, ErrMalformed) {
				t.Errorf("want ErrMalformed, got %v", err)
			}
		})
	}
}

func TestCCFBetaSweepMonotone(t *testing.T) {
	// Larger beta → larger top probability for a redundant pair.
	prev := -1.0
	for _, beta := range []float64{0.01, 0.05, 0.1, 0.3} {
		a := &Event{Name: "a", Prob: 0.01}
		b := &Event{Name: "b", Prob: 0.01}
		tree, err := New(And(Basic(a), Basic(b)))
		if err != nil {
			t.Fatal(err)
		}
		ccfTree, err := tree.ApplyCCF([]CCFGroup{{
			Name: "cc", Beta: beta, Members: []string{"a", "b"},
		}})
		if err != nil {
			t.Fatal(err)
		}
		top, err := ccfTree.TopStatic()
		if err != nil {
			t.Fatal(err)
		}
		if top <= prev {
			t.Errorf("beta=%g: top %g not increasing (prev %g)", beta, top, prev)
		}
		prev = top
	}
}

func TestCCFWithKofN(t *testing.T) {
	// 2-of-3 redundant with CCF across all three members compiles and the
	// common event becomes a singleton cut.
	events := []*Event{
		{Name: "u1", Prob: 0.01},
		{Name: "u2", Prob: 0.01},
		{Name: "u3", Prob: 0.01},
	}
	tree, err := New(AtLeast(2, Basic(events[0]), Basic(events[1]), Basic(events[2])))
	if err != nil {
		t.Fatal(err)
	}
	ccfTree, err := tree.ApplyCCF([]CCFGroup{{
		Name: "cc3", Beta: 0.1, Members: []string{"u1", "u2", "u3"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cuts := ccfTree.MinimalCutSets()
	if len(cuts) == 0 || len(cuts[0]) != 1 || cuts[0][0] != "cc3" {
		t.Errorf("first (smallest) cut should be the CCF singleton: %v", cuts)
	}
	base, _ := tree.TopStatic()
	withCCF, err := ccfTree.TopStatic()
	if err != nil {
		t.Fatal(err)
	}
	if withCCF <= base {
		t.Errorf("CCF should raise top: %g vs %g", withCCF, base)
	}
}
