package faulttree

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
)

func expEvent(name string, lam float64) *Event {
	return &Event{Name: name, Lifetime: dist.MustExponential(lam)}
}

func TestBridgeMTTFParallelWithRepairClosedForm(t *testing.T) {
	// AND of two identical events (parallel system), repair rate μ while
	// the system is up: MTTF = (3λ+μ)/(2λ²).
	lam, mu := 0.2, 3.0
	a, b := expEvent("a", lam), expEvent("b", lam)
	tr, err := New(And(Basic(a), Basic(b)))
	if err != nil {
		t.Fatal(err)
	}
	ac, err := tr.ToCTMC(func(*Event) float64 { return mu })
	if err != nil {
		t.Fatal(err)
	}
	got, err := ac.MTTF()
	if err != nil {
		t.Fatal(err)
	}
	want := (3*lam + mu) / (2 * lam * lam)
	if relErr(got, want) > 1e-12 {
		t.Errorf("MTTF = %g, want %g", got, want)
	}
	// Without repair: 3/(2λ) — the static tree's MTTF must agree with the
	// bridge at μ=0.
	ac0, err := tr.ToCTMC(nil)
	if err != nil {
		t.Fatal(err)
	}
	got0, err := ac0.MTTF()
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got0, 3/(2*lam)) > 1e-12 {
		t.Errorf("no-repair MTTF = %g, want %g", got0, 3/(2*lam))
	}
	static, err := tr.MTTF()
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got0, static) > 1e-5 {
		t.Errorf("bridge %g vs static-tree %g MTTF", got0, static)
	}
	// With μ/λ = 15 the closed form gives a 6× MTTF gain.
	if got < 2*got0 {
		t.Errorf("repair should multiply MTTF: %g vs %g", got, got0)
	}
}

func TestBridgeAvailabilityMatchesProductForm(t *testing.T) {
	// Independent repair: steady-state availability equals the BDD
	// evaluation at per-event availabilities.
	lamA, lamB, lamC := 0.01, 0.02, 0.005
	mu := 1.0
	a, b, c := expEvent("a", lamA), expEvent("b", lamB), expEvent("c", lamC)
	tr, err := New(Or(Basic(c), And(Basic(a), Basic(b))))
	if err != nil {
		t.Fatal(err)
	}
	ac, err := tr.ToCTMC(func(*Event) float64 { return mu })
	if err != nil {
		t.Fatal(err)
	}
	got, err := ac.Availability()
	if err != nil {
		t.Fatal(err)
	}
	// Product form: P(top) with q_i = λ/(λ+μ).
	q := func(l float64) float64 { return l / (l + mu) }
	topU, err := tr.TopProbability(func(e *Event) float64 {
		switch e.Name {
		case "a":
			return q(lamA)
		case "b":
			return q(lamB)
		default:
			return q(lamC)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got, 1-topU) > 1e-12 {
		t.Errorf("bridge availability %g vs product form %g", got, 1-topU)
	}
}

func TestBridgeRejections(t *testing.T) {
	// Non-exponential lifetime.
	w, err := dist.NewWeibull(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := New(Basic(&Event{Name: "w", Lifetime: w}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.ToCTMC(nil); err == nil {
		t.Error("weibull event accepted")
	}
	// Non-coherent.
	a, b := expEvent("a", 1), expEvent("b", 1)
	nc, err := New(And(Basic(a), Not(Basic(b))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.ToCTMC(nil); !errors.Is(err, ErrNonCoherent) {
		t.Errorf("non-coherent: %v", err)
	}
	// Too many events.
	gates := make([]*Node, maxBridgeEvents+1)
	for i := range gates {
		gates[i] = Basic(expEvent("e"+itoa(i), 1))
	}
	big, err := New(Or(gates...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.ToCTMC(nil); err == nil {
		t.Error("oversized tree accepted")
	}
	// Negative repair rate.
	ok, err := New(And(Basic(expEvent("x", 1)), Basic(expEvent("y", 1))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ok.ToCTMC(func(*Event) float64 { return -1 }); err == nil {
		t.Error("negative repair accepted")
	}
}

func TestBridgeKofNWithRepair(t *testing.T) {
	// 2-of-3 failure gate (system fails when ≥2 events occur) with repair:
	// cross-check the bridge MTTF against the k-of-n builder chain.
	lam, mu := 0.1, 2.0
	events := []*Node{
		Basic(expEvent("u1", lam)),
		Basic(expEvent("u2", lam)),
		Basic(expEvent("u3", lam)),
	}
	tr, err := New(AtLeast(2, events...))
	if err != nil {
		t.Fatal(err)
	}
	ac, err := tr.ToCTMC(func(*Event) float64 { return mu })
	if err != nil {
		t.Fatal(err)
	}
	got, err := ac.MTTF()
	if err != nil {
		t.Fatal(err)
	}
	// Equivalent birth-death chain with per-unit repair crews: states
	// f0 → f1 → f2(absorbing); repair f1 → f0 at μ.
	// m0 = 1/(3λ) + m1; m1 = 1/(2λ+μ)·(1 + μ·m0/(2λ+μ)·(2λ+μ))…
	// solve directly: m1 = (1 + μ·m0)/(2λ+μ), m0 = 1/(3λ) + m1.
	denom := 2 * lam // from f1 absorption rate portion
	_ = denom
	m0 := ((2*lam + mu) + 3*lam) / (3 * lam * 2 * lam)
	if relErr(got, m0) > 1e-10 {
		t.Errorf("MTTF = %g, want %g", got, m0)
	}
	if math.IsNaN(got) {
		t.Fatal("NaN MTTF")
	}
}
