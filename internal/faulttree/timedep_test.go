package faulttree

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
)

func TestTopCurveMonotone(t *testing.T) {
	a := &Event{Name: "a", Lifetime: dist.MustExponential(0.5)}
	b := &Event{Name: "b", Lifetime: dist.MustExponential(0.8)}
	tr, err := New(And(Basic(a), Basic(b)))
	if err != nil {
		t.Fatal(err)
	}
	curve, err := tr.TopCurve([]float64{0, 0.5, 1, 2, 5, 20})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, pt := range curve {
		if pt.Prob < prev {
			t.Errorf("top curve not monotone at t=%g: %g < %g", pt.Time, pt.Prob, prev)
		}
		prev = pt.Prob
	}
	if curve[0].Prob != 0 {
		t.Errorf("top(0) = %g, want 0", curve[0].Prob)
	}
	if curve[len(curve)-1].Prob < 0.99 {
		t.Errorf("top(20) = %g, want ≈ 1", curve[len(curve)-1].Prob)
	}
	if _, err := tr.TopCurve([]float64{-1}); err == nil {
		t.Error("negative time accepted")
	}
}

func TestTreeMTTFMatchesClosedForms(t *testing.T) {
	// OR of two exponentials = series system: MTTF = 1/(λ1+λ2).
	a := &Event{Name: "a", Lifetime: dist.MustExponential(1)}
	b := &Event{Name: "b", Lifetime: dist.MustExponential(2)}
	orTree, err := New(Or(Basic(a), Basic(b)))
	if err != nil {
		t.Fatal(err)
	}
	mttf, err := orTree.MTTF()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mttf-1.0/3) > 1e-6 {
		t.Errorf("series MTTF = %g, want 1/3", mttf)
	}
	// AND of two identical exponentials = parallel: MTTF = 3/(2λ).
	c := &Event{Name: "c", Lifetime: dist.MustExponential(1)}
	d := &Event{Name: "d", Lifetime: dist.MustExponential(1)}
	andTree, err := New(And(Basic(c), Basic(d)))
	if err != nil {
		t.Fatal(err)
	}
	mttf, err = andTree.MTTF()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mttf-1.5) > 1e-6 {
		t.Errorf("parallel MTTF = %g, want 1.5", mttf)
	}
}

func TestTreeMTTFRequiresLifetimes(t *testing.T) {
	a := &Event{Name: "a", Lifetime: dist.MustExponential(1)}
	b := &Event{Name: "static", Prob: 0.5}
	tr, err := New(And(Basic(a), Basic(b)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MTTF(); !errors.Is(err, ErrNoLifetime) {
		t.Errorf("want ErrNoLifetime, got %v", err)
	}
}

func TestTreeMTTFInfiniteDetected(t *testing.T) {
	// NOT gate makes the top event probability approach 0 < p < 1:
	// survival does not vanish, MTTF infinite.
	a := &Event{Name: "a", Lifetime: dist.MustExponential(1)}
	b := &Event{Name: "b", Lifetime: dist.MustExponential(1)}
	tr, err := New(And(Basic(a), Not(Basic(b))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MTTF(); err == nil {
		t.Error("infinite MTTF not detected")
	}
}

func TestBirnbaumCurvePeaks(t *testing.T) {
	// For a 2-of-3 system of identical exponentials the Birnbaum
	// importance of any component rises then falls (zero at t=0 when
	// nothing has failed, zero at t→∞ when everything has).
	events := make([]*Node, 3)
	var first string
	for i := range events {
		e := &Event{Name: "u" + string(rune('1'+i)), Lifetime: dist.MustExponential(1)}
		if i == 0 {
			first = e.Name
		}
		events[i] = Basic(e)
	}
	tr, err := New(AtLeast(2, events...))
	if err != nil {
		t.Fatal(err)
	}
	curve, err := tr.BirnbaumCurve(first, []float64{0.05, 0.7, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !(curve[1].Prob > curve[0].Prob && curve[1].Prob > curve[2].Prob) {
		t.Errorf("Birnbaum curve should peak in the middle: %+v", curve)
	}
	if _, err := tr.BirnbaumCurve("ghost", []float64{1}); err == nil {
		t.Error("unknown event accepted")
	}
}
