package faulttree

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Time-dependent fault-tree analysis: when every basic event carries a
// lifetime distribution, the top event probability becomes a function of
// mission time, yielding the system unreliability curve and MTTF without
// any state-space construction (components remain independent and
// non-repairable).

// CurvePoint is one (time, probability) sample of the top-event curve.
type CurvePoint struct {
	Time float64
	Prob float64
}

// TopCurve evaluates the top-event probability at each requested time.
func (t *Tree) TopCurve(times []float64) ([]CurvePoint, error) {
	out := make([]CurvePoint, len(times))
	for i, tau := range times {
		if tau < 0 || math.IsNaN(tau) {
			return nil, fmt.Errorf("faulttree: bad curve time %g", tau)
		}
		p, err := t.TopAt(tau)
		if err != nil {
			return nil, err
		}
		out[i] = CurvePoint{Time: tau, Prob: p}
	}
	return out, nil
}

// MTTF integrates the system survival function 1 - P(top at t) over
// [0, ∞). It requires every event to have a lifetime distribution and the
// system to fail eventually with probability 1 (otherwise the integral
// diverges and an error is returned).
func (t *Tree) MTTF() (float64, error) {
	for _, e := range t.events {
		if e.Lifetime == nil {
			return 0, fmt.Errorf("%w: %q", ErrNoLifetime, e.Name)
		}
	}
	var inner error
	g := func(x float64) float64 {
		if x >= 1 {
			return 0
		}
		tau := x / (1 - x)
		p, err := t.TopAt(tau)
		if err != nil && inner == nil {
			inner = err
		}
		return (1 - p) / ((1 - x) * (1 - x))
	}
	rough := linalg.Simpson(g, 0, 1-1e-9, 200)
	tol := 1e-9 * (1 + math.Abs(rough))
	val := linalg.AdaptiveSimpson(g, 0, 1-1e-12, tol)
	if inner != nil {
		return 0, inner
	}
	if math.IsNaN(val) || val < 0 {
		return 0, fmt.Errorf("faulttree: MTTF integration produced %g", val)
	}
	// Divergence guard: if the survival probability does not approach 0,
	// the system never surely fails and the MTTF is infinite.
	pLate, err := t.TopAt(1e12)
	if err != nil {
		return 0, err
	}
	if 1-pLate > 1e-6 {
		return 0, fmt.Errorf("faulttree: system survives forever with probability %g; MTTF infinite", 1-pLate)
	}
	return val, nil
}

// BirnbaumCurve evaluates the Birnbaum importance of one event across
// mission times — the basis of time-phased maintenance prioritization.
func (t *Tree) BirnbaumCurve(eventName string, times []float64) ([]CurvePoint, error) {
	var idx = -1
	for i, e := range t.events {
		if e.Name == eventName {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("faulttree: unknown event %q", eventName)
	}
	out := make([]CurvePoint, len(times))
	for k, tau := range times {
		p := make([]float64, len(t.events))
		for i, e := range t.events {
			if e.Lifetime == nil {
				return nil, fmt.Errorf("%w: %q", ErrNoLifetime, e.Name)
			}
			p[i] = e.Lifetime.CDF(tau)
		}
		b, err := t.mgr.Birnbaum(t.top, p, idx)
		if err != nil {
			return nil, err
		}
		out[k] = CurvePoint{Time: tau, Prob: b}
	}
	return out, nil
}
