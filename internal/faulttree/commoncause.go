package faulttree

import (
	"fmt"
)

// Common-cause failure (CCF) support via the beta-factor model: a fraction
// β of each member's failure probability is attributed to a shared cause
// that fails every member of the group simultaneously. The transformation
// rewrites each member event e as OR(e_independent, ccf_group) with
//
//	P(e_independent) = (1-β)·P(e),   P(ccf_group) = β·min_e P(e),
//
// which is the standard conservative discretization of the beta-factor
// model for unequal member probabilities. CCF is the tutorial's second big
// "independence violated in practice" mechanism (after shared repair).

// CCFGroup declares a common-cause group over member events of a tree
// specification.
type CCFGroup struct {
	// Name labels the group's shared-cause event.
	Name string
	// Beta is the common-cause fraction in (0, 1).
	Beta float64
	// Members lists the member event names.
	Members []string
}

// ApplyCCF rewrites the gate tree, replacing each member event of each
// group with OR(independent-part, group-cause) and returns the new tree.
// The input tree specification (events + root) is taken from the existing
// compiled tree; the returned tree is freshly compiled.
func (t *Tree) ApplyCCF(groups []CCFGroup) (*Tree, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("%w: no CCF groups", ErrMalformed)
	}
	byName := make(map[string]*Event, len(t.events))
	for _, e := range t.events {
		byName[e.Name] = e
	}
	// Build replacement events.
	type replacement struct {
		independent *Event
		common      *Event
	}
	repl := make(map[string]replacement)
	for _, g := range groups {
		if g.Beta <= 0 || g.Beta >= 1 {
			return nil, fmt.Errorf("%w: group %q beta %g outside (0,1)", ErrMalformed, g.Name, g.Beta)
		}
		if len(g.Members) < 2 {
			return nil, fmt.Errorf("%w: group %q needs at least 2 members", ErrMalformed, g.Name)
		}
		minP := 1.0
		for _, name := range g.Members {
			e, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("%w: group %q member %q not in tree", ErrMalformed, g.Name, name)
			}
			if _, dup := repl[name]; dup {
				return nil, fmt.Errorf("%w: event %q in multiple CCF groups", ErrMalformed, name)
			}
			if e.Prob < minP {
				minP = e.Prob
			}
		}
		common := &Event{Name: g.Name, Prob: g.Beta * minP}
		for _, name := range g.Members {
			e := byName[name]
			repl[name] = replacement{
				independent: &Event{Name: name + ".indep", Prob: (1 - g.Beta) * e.Prob},
				common:      common,
			}
		}
	}
	// Rewrite the gate tree.
	var rewrite func(n *Node) *Node
	rewrite = func(n *Node) *Node {
		switch n.kind {
		case kindBasic:
			r, ok := repl[n.event.Name]
			if !ok {
				// Keep the identical event object so probabilities stay
				// shared with the original specification.
				return Basic(n.event)
			}
			return Or(Basic(r.independent), Basic(r.common))
		case kindNot:
			return Not(rewrite(n.children[0]))
		default:
			children := make([]*Node, len(n.children))
			for i, c := range n.children {
				children[i] = rewrite(c)
			}
			out := &Node{kind: n.kind, k: n.k, children: children}
			return out
		}
	}
	return New(rewrite(t.root))
}
