package faulttree

import (
	"fmt"
	"sort"
)

// ImportanceMeasures holds the standard basic-event importance measures.
type ImportanceMeasures struct {
	Event         string
	Birnbaum      float64 // ∂P(top)/∂P(event)
	Criticality   float64 // Birnbaum·p/P(top)
	FussellVesely float64 // P(∪ cuts containing event)/P(top), rare-event approx
}

// Importance computes importance measures for every basic event using the
// static event probabilities.
func (t *Tree) Importance() ([]ImportanceMeasures, error) {
	if t.mgr == nil {
		return nil, ErrNoBDD
	}
	p := make([]float64, len(t.events))
	for i, e := range t.events {
		p[i] = e.Prob
	}
	topP, err := t.mgr.Prob(t.top, p)
	if err != nil {
		return nil, err
	}
	// Fussell–Vesely via cut sets (rare-event numerator).
	cuts := t.mgr.MinimalCutSets(t.top)
	fvNum := make([]float64, len(t.events))
	for _, c := range cuts {
		prod := 1.0
		for _, v := range c {
			prod *= p[v]
		}
		for _, v := range c {
			fvNum[v] += prod
		}
	}
	out := make([]ImportanceMeasures, len(t.events))
	for i, e := range t.events {
		b, err := t.mgr.Birnbaum(t.top, p, i)
		if err != nil {
			return nil, err
		}
		im := ImportanceMeasures{Event: e.Name, Birnbaum: b}
		if topP > 0 {
			im.Criticality = b * p[i] / topP
			fv := fvNum[i] / topP
			if fv > 1 {
				fv = 1
			}
			im.FussellVesely = fv
		}
		out[i] = im
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Birnbaum > out[b].Birnbaum })
	return out, nil
}

// RareEventBound returns the rare-event (first Boole–Bonferroni) upper
// bound on the top-event probability: the sum over minimal cut sets of
// their product probabilities. It requires a coherent tree.
func (t *Tree) RareEventBound() (float64, error) {
	if !t.coherent {
		return 0, ErrNonCoherent
	}
	if t.mgr == nil {
		return 0, ErrNoBDD
	}
	p := make([]float64, len(t.events))
	for i, e := range t.events {
		p[i] = e.Prob
	}
	var sum float64
	for _, c := range t.mgr.MinimalCutSets(t.top) {
		prod := 1.0
		for _, v := range c {
			prod *= p[v]
		}
		sum += prod
	}
	if sum > 1 {
		sum = 1
	}
	return sum, nil
}

// InclusionExclusion evaluates the top-event probability by
// inclusion–exclusion over the minimal cut sets, truncated after maxOrder
// terms (0 means full expansion). Odd truncation orders give upper bounds,
// even orders lower bounds (Bonferroni). It requires a coherent tree and is
// exponential in the number of cut sets — it exists as an oracle and as the
// basis of the bounding experiments, not as the production solver.
func (t *Tree) InclusionExclusion(maxOrder int) (float64, error) {
	if !t.coherent {
		return 0, ErrNonCoherent
	}
	if t.mgr == nil {
		return 0, ErrNoBDD
	}
	p := make([]float64, len(t.events))
	for i, e := range t.events {
		p[i] = e.Prob
	}
	cuts := t.mgr.MinimalCutSets(t.top)
	n := len(cuts)
	if n > 25 {
		return 0, fmt.Errorf("faulttree: %d cut sets too many for inclusion-exclusion", n)
	}
	if maxOrder <= 0 || maxOrder > n {
		maxOrder = n
	}
	var total float64
	// Iterate over union sizes.
	for order := 1; order <= maxOrder; order++ {
		sign := 1.0
		if order%2 == 0 {
			sign = -1
		}
		idx := make([]int, order)
		var rec func(start, depth int)
		var orderSum float64
		rec = func(start, depth int) {
			if depth == order {
				union := make(map[int]bool)
				for _, ci := range idx {
					for _, v := range cuts[ci] {
						union[v] = true
					}
				}
				prod := 1.0
				for v := range union {
					prod *= p[v]
				}
				orderSum += prod
				return
			}
			for j := start; j <= n-(order-depth); j++ {
				idx[depth] = j
				rec(j+1, depth+1)
			}
		}
		rec(0, 0)
		total += sign * orderSum
	}
	return total, nil
}
