// Package faulttree implements fault-tree analysis: AND/OR/k-of-n/NOT gates
// over basic events, with repeated events handled exactly through a BDD
// encoding. It provides top-event probability, minimal cut sets (both via
// the BDD and via classic MOCUS gate expansion), the rare-event and
// inclusion–exclusion cut-set approximations, and the standard importance
// measures (Birnbaum, criticality, Fussell–Vesely).
//
// Fault trees are the second of the tutorial's non-state-space model types;
// like RBDs they assume independent events, and like RBDs they are solved
// in time linear in the BDD size rather than exponential in the number of
// events.
package faulttree

import (
	"errors"
	"fmt"

	"repro/internal/bdd"
	"repro/internal/dist"
	"repro/internal/guard"
)

// Event is a basic event (component failure mode).
type Event struct {
	// Name identifies the event; must be unique within a tree.
	Name string
	// Prob is the event probability used when no lifetime is given.
	Prob float64
	// Lifetime optionally gives a time-to-occurrence distribution so the
	// top event can be evaluated as a function of mission time.
	Lifetime dist.Distribution
}

// Node is a node of the gate tree, created with Basic, And, Or, AtLeast,
// and Not.
type Node struct {
	kind     nodeKind
	k        int
	event    *Event
	children []*Node
}

type nodeKind int

const (
	kindBasic nodeKind = iota + 1
	kindAnd
	kindOr
	kindAtLeast
	kindNot
)

// Basic wraps a basic event as a leaf. The same *Event may appear under
// several gates (a repeated event).
func Basic(e *Event) *Node { return &Node{kind: kindBasic, event: e} }

// And returns a gate that fires when all children fire.
func And(children ...*Node) *Node { return &Node{kind: kindAnd, children: children} }

// Or returns a gate that fires when any child fires.
func Or(children ...*Node) *Node { return &Node{kind: kindOr, children: children} }

// AtLeast returns a k-of-n voting gate.
func AtLeast(k int, children ...*Node) *Node {
	return &Node{kind: kindAtLeast, k: k, children: children}
}

// Not returns the complement of its child; the tree becomes non-coherent
// and MOCUS is unavailable, but BDD analysis remains exact.
func Not(child *Node) *Node { return &Node{kind: kindNot, children: []*Node{child}} }

// Tree is a compiled fault tree.
type Tree struct {
	events   []*Event
	index    map[*Event]int
	mgr      *bdd.Manager
	top      bdd.Ref
	root     *Node
	coherent bool
}

// Errors returned by tree construction and analysis.
var (
	ErrMalformed   = errors.New("faulttree: malformed tree")
	ErrNonCoherent = errors.New("faulttree: operation requires a coherent tree (no NOT gates)")
	ErrNoLifetime  = errors.New("faulttree: event lacks a lifetime distribution")
	ErrNoBDD       = errors.New("faulttree: operation requires a compiled BDD (tree built with NewCutSetsOnly)")
)

// New compiles the gate tree rooted at top.
func New(top *Node) (*Tree, error) {
	return NewWithBudget(top, 0)
}

// NewWithBudget compiles like New but refuses to grow the top-event BDD
// past budget internal nodes, returning a *guard.BudgetError instead (the
// Boeing path: a model too large for exact solution, where the cut-set
// bounding fallback must take over). A budget of 0 is unlimited.
func NewWithBudget(top *Node, budget int) (*Tree, error) {
	t, err := newTree(top)
	if err != nil {
		return nil, err
	}
	t.mgr = bdd.New(len(t.events))
	if budget > 0 {
		t.mgr.SetNodeLimit(budget)
	}
	ref, err := t.compile(top)
	if err != nil {
		return nil, err
	}
	if err := t.mgr.AllocFailure(); err != nil {
		// An injected allocation fault poisoned the manager; its refs are
		// meaningless, so surface the typed failpoint error.
		return nil, err
	}
	if t.mgr.LimitExceeded() {
		return nil, &guard.BudgetError{Op: "faulttree.bdd", Budget: budget, Actual: t.mgr.Size() - 2}
	}
	t.top = ref
	return t, nil
}

// NewCutSetsOnly validates and indexes the gate tree without compiling a
// BDD. The resulting tree supports only the cut-set analyses (MOCUS,
// CutSets, RareEventBoundLog); the BDD-backed methods return ErrNoBDD.
// This is the fallback representation when a BDD budget is exceeded.
func NewCutSetsOnly(top *Node) (*Tree, error) {
	return newTree(top)
}

// newTree collects and validates the events without touching a BDD.
func newTree(top *Node) (*Tree, error) {
	if top == nil {
		return nil, fmt.Errorf("%w: nil root", ErrMalformed)
	}
	t := &Tree{index: make(map[*Event]int), coherent: true, root: top}
	if err := t.collect(top); err != nil {
		return nil, err
	}
	if len(t.events) == 0 {
		return nil, fmt.Errorf("%w: no basic events", ErrMalformed)
	}
	names := make(map[string]bool, len(t.events))
	for _, e := range t.events {
		if names[e.Name] {
			return nil, fmt.Errorf("faulttree: duplicate event name %q", e.Name)
		}
		names[e.Name] = true
	}
	return t, nil
}

func (t *Tree) collect(n *Node) error {
	switch n.kind {
	case kindBasic:
		if n.event == nil {
			return fmt.Errorf("%w: nil event", ErrMalformed)
		}
		if _, ok := t.index[n.event]; !ok {
			t.index[n.event] = len(t.events)
			t.events = append(t.events, n.event)
		}
		return nil
	case kindNot:
		t.coherent = false
		fallthrough
	case kindAnd, kindOr, kindAtLeast:
		if len(n.children) == 0 {
			return fmt.Errorf("%w: empty gate", ErrMalformed)
		}
		if n.kind == kindAtLeast && (n.k < 1 || n.k > len(n.children)) {
			return fmt.Errorf("%w: k=%d with %d children", ErrMalformed, n.k, len(n.children))
		}
		if n.kind == kindNot && len(n.children) != 1 {
			return fmt.Errorf("%w: NOT takes exactly one child", ErrMalformed)
		}
		for _, c := range n.children {
			if c == nil {
				return fmt.Errorf("%w: nil child", ErrMalformed)
			}
			if err := t.collect(c); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown node kind %d", ErrMalformed, n.kind)
	}
}

func (t *Tree) compile(n *Node) (bdd.Ref, error) {
	switch n.kind {
	case kindBasic:
		return t.mgr.Var(t.index[n.event])
	case kindNot:
		c, err := t.compile(n.children[0])
		if err != nil {
			return bdd.False, err
		}
		return t.mgr.Not(c), nil
	case kindAnd, kindOr, kindAtLeast:
		refs := make([]bdd.Ref, len(n.children))
		for i, c := range n.children {
			r, err := t.compile(c)
			if err != nil {
				return bdd.False, err
			}
			refs[i] = r
		}
		switch n.kind {
		case kindAnd:
			return t.mgr.AndN(refs...), nil
		case kindOr:
			return t.mgr.OrN(refs...), nil
		default:
			return t.mgr.KofN(n.k, refs)
		}
	default:
		return bdd.False, fmt.Errorf("%w: unknown node kind %d", ErrMalformed, n.kind)
	}
}

// Events returns the tree's basic events in variable order.
func (t *Tree) Events() []*Event {
	out := make([]*Event, len(t.events))
	copy(out, t.events)
	return out
}

// Coherent reports whether the tree contains no NOT gates.
func (t *Tree) Coherent() bool { return t.coherent }

// BDDSize returns the node count of the top-event BDD (0 for a
// cut-sets-only tree).
func (t *Tree) BDDSize() int {
	if t.mgr == nil {
		return 0
	}
	return t.mgr.NodeCount(t.top)
}

// BDDStats returns the underlying BDD manager's node and ITE-cache
// counters (for solver telemetry; zero for a cut-sets-only tree).
func (t *Tree) BDDStats() bdd.Stats {
	if t.mgr == nil {
		return bdd.Stats{}
	}
	return t.mgr.Stats()
}

// TopProbability returns the exact top-event probability given event
// probabilities from probOf.
func (t *Tree) TopProbability(probOf func(*Event) float64) (float64, error) {
	if t.mgr == nil {
		return 0, ErrNoBDD
	}
	p := make([]float64, len(t.events))
	for i, e := range t.events {
		p[i] = probOf(e)
	}
	return t.mgr.Prob(t.top, p)
}

// TopStatic evaluates the top-event probability using each event's Prob
// field.
func (t *Tree) TopStatic() (float64, error) {
	return t.TopProbability(func(e *Event) float64 { return e.Prob })
}

// TopAt evaluates the top-event probability at mission time tau using each
// event's lifetime CDF.
func (t *Tree) TopAt(tau float64) (float64, error) {
	var missing *Event
	v, err := t.TopProbability(func(e *Event) float64 {
		if e.Lifetime == nil {
			missing = e
			return 0
		}
		return e.Lifetime.CDF(tau)
	})
	if missing != nil {
		return 0, fmt.Errorf("%w: %q", ErrNoLifetime, missing.Name)
	}
	return v, err
}

// MinimalCutSets returns the minimal cut sets (as event-name lists) via the
// BDD. For non-coherent trees the result is the positive-literal minimal
// solutions. It returns nil for a cut-sets-only tree; use CutSets there.
func (t *Tree) MinimalCutSets() [][]string {
	if t.mgr == nil {
		return nil
	}
	cuts := t.mgr.MinimalCutSets(t.top)
	out := make([][]string, len(cuts))
	for i, c := range cuts {
		names := make([]string, len(c))
		for j, v := range c {
			names[j] = t.events[v].Name
		}
		out[i] = names
	}
	return out
}

// CutSets returns the minimal cut sets through whichever representation the
// tree has: the BDD when compiled, MOCUS gate expansion otherwise.
func (t *Tree) CutSets() ([][]string, error) {
	if t.mgr != nil {
		return t.MinimalCutSets(), nil
	}
	return t.MOCUS(0)
}

// RareEventBoundLog returns the natural log of the rare-event upper bound
// on the top-event probability, evaluated entirely in log space so that
// per-cut products far below the smallest positive float64 (dozens of
// 1e-12 events in one cut) still produce a usable bound instead of
// underflowing to zero. Works on both compiled and cut-sets-only trees;
// requires a coherent tree.
func (t *Tree) RareEventBoundLog() (float64, error) {
	if !t.coherent {
		return 0, ErrNonCoherent
	}
	cuts, err := t.CutSets()
	if err != nil {
		return 0, err
	}
	probOf := make(map[string]float64, len(t.events))
	for _, e := range t.events {
		probOf[e.Name] = e.Prob
	}
	logs := make([]float64, len(cuts))
	for i, c := range cuts {
		ps := make([]float64, len(c))
		for j, name := range c {
			ps[j] = probOf[name]
		}
		lc, err := guard.LogCutProb(ps)
		if err != nil {
			return 0, fmt.Errorf("faulttree: cut %v: %w", c, err)
		}
		logs[i] = lc
	}
	return guard.LogRareEvent(logs), nil
}
