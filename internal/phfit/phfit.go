// Package phfit fits phase-type distributions to empirical moments so that
// non-exponential lifetimes and repair times can be embedded into Markov
// models (the tutorial's standard treatment of "dealing with non-exponential
// distributions"). The fitters use classical two-moment recipes:
//
//   - SCV ≈ 1  → exponential,
//   - SCV > 1  → balanced-means two-phase hyperexponential,
//   - SCV < 1  → Tijms' mixture of Erlang(k-1) and Erlang(k) with common
//     rate, for 1/k ≤ SCV ≤ 1/(k-1),
//
// each matching mean and variance exactly.
package phfit

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/linalg"
)

// ErrBadMoments reports unusable target moments.
var ErrBadMoments = errors.New("phfit: invalid target moments")

// scvExponentialBand is the SCV half-width around 1 treated as exponential.
const scvExponentialBand = 1e-9

// FitTwoMoment returns a phase-type distribution matching the target mean
// and squared coefficient of variation (SCV = variance/mean²).
func FitTwoMoment(mean, scv float64) (*dist.PhaseType, error) {
	if mean <= 0 || scv <= 0 || math.IsNaN(mean) || math.IsNaN(scv) {
		return nil, fmt.Errorf("%w: mean=%g scv=%g", ErrBadMoments, mean, scv)
	}
	switch {
	case math.Abs(scv-1) <= scvExponentialBand:
		return dist.NewErlang(1, 1/mean)
	case scv > 1:
		return fitHyperexponential(mean, scv)
	default:
		return fitErlangMixture(mean, scv)
	}
}

// FitDistribution fits a phase-type approximation to an arbitrary
// distribution by matching its first two moments.
func FitDistribution(d dist.Distribution) (*dist.PhaseType, error) {
	if d == nil {
		return nil, fmt.Errorf("%w: nil distribution", ErrBadMoments)
	}
	m := d.Mean()
	v := d.Var()
	if v <= 0 {
		// Degenerate (deterministic) input: best PH proxy is a high-order
		// Erlang, whose SCV 1/k can be made arbitrarily small.
		return FitNearDeterministic(m, 50)
	}
	return FitTwoMoment(m, v/(m*m))
}

// FitNearDeterministic returns the Erlang-k approximation of a
// deterministic delay, with SCV = 1/k.
func FitNearDeterministic(mean float64, k int) (*dist.PhaseType, error) {
	if mean <= 0 || k < 1 {
		return nil, fmt.Errorf("%w: mean=%g k=%d", ErrBadMoments, mean, k)
	}
	return dist.NewErlang(k, float64(k)/mean)
}

// fitHyperexponential implements the balanced-means H2 fit for SCV > 1:
// with probability p the lifetime is Exp(λ1), else Exp(λ2), where
// p = (1 + √((scv-1)/(scv+1)))/2, λ1 = 2p/mean, λ2 = 2(1-p)/mean.
func fitHyperexponential(mean, scv float64) (*dist.PhaseType, error) {
	r := math.Sqrt((scv - 1) / (scv + 1))
	p := (1 + r) / 2
	l1 := 2 * p / mean
	l2 := 2 * (1 - p) / mean
	return dist.NewHyperexponential([]float64{p, 1 - p}, []float64{l1, l2})
}

// fitErlangMixture implements Tijms' fit for SCV < 1: choose k with
// 1/k ≤ scv ≤ 1/(k-1) and mix Erlang(k-1) and Erlang(k) with common rate:
//
//	p  = (k·scv - √(k(1+scv) - k²·scv)) / (1 + scv)
//	μ  = (k - p)/mean
//
// realized as a k-phase sequential PH entered at stage 2 with probability p.
func fitErlangMixture(mean, scv float64) (*dist.PhaseType, error) {
	k := int(math.Ceil(1 / scv))
	if k < 2 {
		k = 2
	}
	kk := float64(k)
	disc := kk*(1+scv) - kk*kk*scv
	if disc < 0 {
		disc = 0
	}
	p := (kk*scv - math.Sqrt(disc)) / (1 + scv)
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	mu := (kk - p) / mean
	// Sequential stages 1..k, each rate mu. Enter at stage 2 with prob p
	// (so only k-1 stages are traversed), at stage 1 with prob 1-p.
	alpha := make([]float64, k)
	alpha[0] = 1 - p
	if k >= 2 {
		alpha[1] = p
	}
	s := linalg.NewDense(k, k)
	for i := 0; i < k; i++ {
		s.Set(i, i, -mu)
		if i+1 < k {
			s.Set(i, i+1, mu)
		}
	}
	return dist.NewPhaseType(alpha, s)
}
