package phfit

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
)

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Abs(b); m > 1e-300 {
		return d / m
	}
	return d
}

func TestFitExponentialBand(t *testing.T) {
	ph, err := FitTwoMoment(2.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Order() != 1 {
		t.Errorf("order = %d, want 1 (exponential)", ph.Order())
	}
	if relErr(ph.Mean(), 2.5) > 1e-12 {
		t.Errorf("mean = %g", ph.Mean())
	}
	if relErr(ph.SCV(), 1) > 1e-12 {
		t.Errorf("scv = %g", ph.SCV())
	}
}

func TestFitHyperexponential(t *testing.T) {
	for _, scv := range []float64{1.5, 2, 5, 20} {
		ph, err := FitTwoMoment(3, scv)
		if err != nil {
			t.Fatalf("scv=%g: %v", scv, err)
		}
		if relErr(ph.Mean(), 3) > 1e-10 {
			t.Errorf("scv=%g: mean = %g, want 3", scv, ph.Mean())
		}
		if relErr(ph.SCV(), scv) > 1e-9 {
			t.Errorf("scv=%g: fitted scv = %g", scv, ph.SCV())
		}
		if ph.Order() != 2 {
			t.Errorf("scv=%g: order = %d, want 2", scv, ph.Order())
		}
	}
}

func TestFitErlangMixture(t *testing.T) {
	for _, scv := range []float64{0.9, 0.5, 0.3, 0.1, 0.04} {
		ph, err := FitTwoMoment(10, scv)
		if err != nil {
			t.Fatalf("scv=%g: %v", scv, err)
		}
		if relErr(ph.Mean(), 10) > 1e-9 {
			t.Errorf("scv=%g: mean = %g, want 10", scv, ph.Mean())
		}
		if relErr(ph.SCV(), scv) > 1e-8 {
			t.Errorf("scv=%g: fitted scv = %g", scv, ph.SCV())
		}
	}
}

func TestFitMomentsProperty(t *testing.T) {
	// Property: fitted PH matches target mean and SCV across the range.
	f := func(rawMean, rawSCV float64) bool {
		mean := 0.1 + math.Mod(math.Abs(rawMean), 100)
		scv := 0.05 + math.Mod(math.Abs(rawSCV), 8)
		ph, err := FitTwoMoment(mean, scv)
		if err != nil {
			return false
		}
		return relErr(ph.Mean(), mean) < 1e-8 && relErr(ph.SCV(), scv) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFitDistributionWeibull(t *testing.T) {
	w, err := dist.NewWeibull(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := FitDistribution(w)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(ph.Mean(), w.Mean()) > 1e-8 {
		t.Errorf("mean: %g vs %g", ph.Mean(), w.Mean())
	}
	if relErr(ph.Var(), w.Var()) > 1e-6 {
		t.Errorf("var: %g vs %g", ph.Var(), w.Var())
	}
	// Weibull shape 2 has SCV < 1 → Erlang mixture with > 1 phase.
	if ph.Order() < 2 {
		t.Errorf("order = %d, want >= 2", ph.Order())
	}
}

func TestFitDistributionLognormalHighCV(t *testing.T) {
	ln, err := dist.NewLognormalFromMoments(5, 2) // cv=2 → scv=4 > 1
	if err != nil {
		t.Fatal(err)
	}
	ph, err := FitDistribution(ln)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(ph.Mean(), 5) > 1e-8 {
		t.Errorf("mean = %g", ph.Mean())
	}
	if relErr(ph.SCV(), 4) > 1e-6 {
		t.Errorf("scv = %g, want 4", ph.SCV())
	}
}

func TestFitNearDeterministic(t *testing.T) {
	ph, err := FitNearDeterministic(7, 25)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(ph.Mean(), 7) > 1e-10 {
		t.Errorf("mean = %g", ph.Mean())
	}
	if relErr(ph.SCV(), 1.0/25) > 1e-10 {
		t.Errorf("scv = %g, want 0.04", ph.SCV())
	}
	det, err := dist.NewDeterministic(7)
	if err != nil {
		t.Fatal(err)
	}
	phd, err := FitDistribution(det)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(phd.Mean(), 7) > 1e-10 {
		t.Errorf("deterministic fit mean = %g", phd.Mean())
	}
	if phd.SCV() > 0.05 {
		t.Errorf("deterministic fit scv = %g, want small", phd.SCV())
	}
}

func TestCDFShapeConvergence(t *testing.T) {
	// Higher-order deterministic approximations approach the step CDF:
	// error at t = 0.8·mean shrinks with k.
	mean := 1.0
	prevErr := math.Inf(1)
	for _, k := range []int{2, 8, 32} {
		ph, err := FitNearDeterministic(mean, k)
		if err != nil {
			t.Fatal(err)
		}
		e := ph.CDF(0.8 * mean) // true step CDF is 0 here
		if e > prevErr+1e-12 {
			t.Errorf("k=%d: CDF error %g did not shrink from %g", k, e, prevErr)
		}
		prevErr = e
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := FitTwoMoment(0, 1); !errors.Is(err, ErrBadMoments) {
		t.Errorf("zero mean: %v", err)
	}
	if _, err := FitTwoMoment(1, 0); !errors.Is(err, ErrBadMoments) {
		t.Errorf("zero scv: %v", err)
	}
	if _, err := FitTwoMoment(math.NaN(), 1); !errors.Is(err, ErrBadMoments) {
		t.Errorf("NaN mean: %v", err)
	}
	if _, err := FitDistribution(nil); !errors.Is(err, ErrBadMoments) {
		t.Errorf("nil distribution: %v", err)
	}
	if _, err := FitNearDeterministic(1, 0); !errors.Is(err, ErrBadMoments) {
		t.Errorf("k=0: %v", err)
	}
}
