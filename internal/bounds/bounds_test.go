package bounds

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bridgeSystem returns the bridge network's failure-side cut system over
// components 0..4 with identical failure probability q, plus its path sets.
func bridgeSystem(q float64) (*CutSystem, [][]int) {
	cs := &CutSystem{
		Cuts:  [][]int{{0, 1}, {3, 4}, {0, 2, 4}, {1, 2, 3}},
		FailP: []float64{q, q, q, q, q},
	}
	paths := [][]int{{0, 3}, {1, 4}, {0, 2, 4}, {1, 2, 3}}
	return cs, paths
}

// bridgeExactQ is the exact bridge failure probability for identical q.
func bridgeExactQ(q float64) float64 {
	p := 1 - q
	r := 2*math.Pow(p, 2) + 2*math.Pow(p, 3) - 5*math.Pow(p, 4) + 2*math.Pow(p, 5)
	return 1 - r
}

func TestBoundsBracketExactBridge(t *testing.T) {
	for _, q := range []float64{0.01, 0.05, 0.2} {
		cs, paths := bridgeSystem(q)
		exact, err := cs.Exact()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-bridgeExactQ(q)) > 1e-12 {
			t.Fatalf("q=%g: BDD exact %g != closed form %g", q, exact, bridgeExactQ(q))
		}
		re, err := cs.RareEvent()
		if err != nil {
			t.Fatal(err)
		}
		if re < exact-1e-15 {
			t.Errorf("q=%g: rare-event %g below exact %g", q, re, exact)
		}
		epU, err := cs.EsaryProschanUpper()
		if err != nil {
			t.Fatal(err)
		}
		if epU < exact-1e-15 {
			t.Errorf("q=%g: EP upper %g below exact %g", q, epU, exact)
		}
		epL, err := cs.EsaryProschanLower(paths)
		if err != nil {
			t.Fatal(err)
		}
		if epL > exact+1e-15 {
			t.Errorf("q=%g: EP lower %g above exact %g", q, epL, exact)
		}
		// EP upper is never worse than the rare-event bound.
		if epU > re+1e-15 {
			t.Errorf("q=%g: EP upper %g exceeds rare-event %g", q, epU, re)
		}
	}
}

func TestBonferroniAlternation(t *testing.T) {
	cs, _ := bridgeSystem(0.1)
	exact, err := cs.Exact()
	if err != nil {
		t.Fatal(err)
	}
	b1, err := cs.Bonferroni(1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := cs.Bonferroni(2)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := cs.Bonferroni(3)
	if err != nil {
		t.Fatal(err)
	}
	if !(b2 <= exact+1e-15 && exact <= b1+1e-15) {
		t.Errorf("Bonferroni order 1/2 [%g, %g] must bracket %g", b2, b1, exact)
	}
	if !(b3 >= exact-1e-15) {
		t.Errorf("order-3 %g must be an upper bound on %g", b3, exact)
	}
	// Full order equals exact.
	b4, err := cs.Bonferroni(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b4-exact) > 1e-12 {
		t.Errorf("full Bonferroni %g != exact %g", b4, exact)
	}
}

func TestTruncatedBoundsTightenMonotonically(t *testing.T) {
	// Boeing-style wide system: many AND-pairs with varying probability.
	rng := rand.New(rand.NewSource(3))
	nComp := 60
	failP := make([]float64, nComp)
	for i := range failP {
		failP[i] = 1e-4 + rng.Float64()*5e-3
	}
	var cuts [][]int
	for i := 0; i+1 < nComp; i += 2 {
		cuts = append(cuts, []int{i, i + 1})
	}
	// A few overlapping triples to break pure independence of cut events.
	for i := 0; i+2 < nComp; i += 7 {
		cuts = append(cuts, []int{i, i + 1, i + 2})
	}
	cs := &CutSystem{Cuts: cuts, FailP: failP}
	exact, err := cs.Exact()
	if err != nil {
		t.Fatal(err)
	}
	prevWidth := math.Inf(1)
	for _, keep := range []int{2, 5, 10, 20, len(cuts)} {
		res, err := cs.TruncatedBounds(keep)
		if err != nil {
			t.Fatal(err)
		}
		if res.Lower > exact+1e-15 {
			t.Errorf("keep=%d: lower %g above exact %g", keep, res.Lower, exact)
		}
		if res.Upper < exact-1e-15 {
			t.Errorf("keep=%d: upper %g below exact %g", keep, res.Upper, exact)
		}
		if res.Width() > prevWidth+1e-15 {
			t.Errorf("keep=%d: width %g did not shrink from %g", keep, res.Width(), prevWidth)
		}
		prevWidth = res.Width()
	}
	// Full keep: width zero (everything exact).
	full, _ := cs.TruncatedBounds(0)
	if full.Width() > 1e-15 {
		t.Errorf("full truncation width %g, want 0", full.Width())
	}
	if full.Discarded != 0 {
		t.Errorf("full truncation discarded %d cuts", full.Discarded)
	}
}

func TestBoundsBracketProperty(t *testing.T) {
	// Property: for random small systems, rare-event and EP upper bounds
	// dominate the exact value.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nComp := 3 + rng.Intn(6)
		failP := make([]float64, nComp)
		for i := range failP {
			failP[i] = rng.Float64() * 0.3
		}
		nCuts := 1 + rng.Intn(5)
		cuts := make([][]int, nCuts)
		for c := range cuts {
			size := 1 + rng.Intn(3)
			seen := map[int]bool{}
			for len(seen) < size {
				seen[rng.Intn(nComp)] = true
			}
			for v := range seen {
				cuts[c] = append(cuts[c], v)
			}
		}
		cs := &CutSystem{Cuts: cuts, FailP: failP}
		exact, err := cs.Exact()
		if err != nil {
			return false
		}
		re, err := cs.RareEvent()
		if err != nil {
			return false
		}
		ep, err := cs.EsaryProschanUpper()
		if err != nil {
			return false
		}
		tr, err := cs.TruncatedBounds(nCuts / 2)
		if err != nil {
			return false
		}
		return re >= exact-1e-12 && ep >= exact-1e-12 &&
			tr.Lower <= exact+1e-12 && tr.Upper >= exact-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	empty := &CutSystem{FailP: []float64{0.1}}
	if _, err := empty.RareEvent(); !errors.Is(err, ErrNoCuts) {
		t.Errorf("no cuts: %v", err)
	}
	bad := &CutSystem{Cuts: [][]int{{0}}, FailP: []float64{1.5}}
	if _, err := bad.RareEvent(); !errors.Is(err, ErrBadProb) {
		t.Errorf("bad prob: %v", err)
	}
	oob := &CutSystem{Cuts: [][]int{{3}}, FailP: []float64{0.1}}
	if _, err := oob.Exact(); !errors.Is(err, ErrBadCut) {
		t.Errorf("out of range: %v", err)
	}
	cs, _ := bridgeSystem(0.1)
	if _, err := cs.EsaryProschanLower(nil); err == nil {
		t.Error("empty paths accepted")
	}
	if _, err := cs.Bonferroni(0); err == nil {
		t.Error("order 0 accepted")
	}
}
