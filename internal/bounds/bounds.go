// Package bounds implements bounding algorithms for systems too large for
// exact solution — the tutorial's Boeing 787 story. All bounds operate on
// minimal cut sets (and optionally minimal path sets) over independent
// components:
//
//   - rare-event upper bound (first Bonferroni term),
//   - Esary–Proschan two-sided bounds,
//   - Bonferroni (truncated inclusion–exclusion) bounds of any order,
//   - probability-truncation bounds: solve the dominant cut sets exactly
//     (via BDD) and bound the discarded mass by its rare-event sum.
//
// The truncation scheme is the one that makes million-cut-set models
// tractable: the kept cuts give a certified lower bound, and adding the
// discarded cuts' total probability gives a certified upper bound.
package bounds

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bdd"
	"repro/internal/guard"
)

// CutSystem is a coherent system described by its minimal cut sets over
// components indexed 0..NumComp-1, together with each component's failure
// probability.
type CutSystem struct {
	// Cuts lists the minimal cut sets (component indices).
	Cuts [][]int
	// FailP[i] is the failure probability of component i.
	FailP []float64
}

// Errors returned by bound computations.
var (
	ErrNoCuts  = errors.New("bounds: no cut sets")
	ErrBadProb = errors.New("bounds: probability outside [0,1]")
	ErrBadCut  = errors.New("bounds: cut references unknown component")
)

// Validate checks indices and probabilities.
func (cs *CutSystem) Validate() error {
	if len(cs.Cuts) == 0 {
		return ErrNoCuts
	}
	for i, p := range cs.FailP {
		if p < 0 || p > 1 {
			return fmt.Errorf("%w: component %d has p=%g", ErrBadProb, i, p)
		}
	}
	for ci, cut := range cs.Cuts {
		if len(cut) == 0 {
			return fmt.Errorf("%w: cut %d empty", ErrBadCut, ci)
		}
		for _, v := range cut {
			if v < 0 || v >= len(cs.FailP) {
				return fmt.Errorf("%w: cut %d references component %d of %d",
					ErrBadCut, ci, v, len(cs.FailP))
			}
		}
	}
	return nil
}

// cutProb returns the product probability of one cut.
func (cs *CutSystem) cutProb(cut []int) float64 {
	p := 1.0
	for _, v := range cut {
		p *= cs.FailP[v]
	}
	return p
}

// RareEvent returns the rare-event upper bound Σ_j P(cut_j), capped at 1.
func (cs *CutSystem) RareEvent() (float64, error) {
	if err := cs.Validate(); err != nil {
		return 0, err
	}
	var s float64
	for _, cut := range cs.Cuts {
		s += cs.cutProb(cut)
	}
	if s > 1 {
		s = 1
	}
	return s, nil
}

// RareEventLog returns the natural log of the rare-event upper bound,
// evaluated entirely in log space: cut products that underflow float64
// (e.g. 40 components at 1e-12 each) still contribute, where RareEvent
// would silently return 0 and certify nothing.
func (cs *CutSystem) RareEventLog() (float64, error) {
	if err := cs.Validate(); err != nil {
		return 0, err
	}
	logs := make([]float64, len(cs.Cuts))
	for i, cut := range cs.Cuts {
		ps := make([]float64, len(cut))
		for j, v := range cut {
			ps[j] = cs.FailP[v]
		}
		lc, err := guard.LogCutProb(ps)
		if err != nil {
			return 0, fmt.Errorf("%w: cut %d: %v", ErrBadProb, i, err)
		}
		logs[i] = lc
	}
	return guard.LogRareEvent(logs), nil
}

// EsaryProschanUpper returns the Esary–Proschan upper bound on system
// failure probability: 1 - Π_j (1 - P(cut_j)).
func (cs *CutSystem) EsaryProschanUpper() (float64, error) {
	if err := cs.Validate(); err != nil {
		return 0, err
	}
	prod := 1.0
	for _, cut := range cs.Cuts {
		prod *= 1 - cs.cutProb(cut)
	}
	return 1 - prod, nil
}

// EsaryProschanLower returns the Esary–Proschan lower bound on system
// failure probability computed from the minimal path sets:
// Q ≥ Π_i (1 - Π_{k∈path_i} (1 - FailP_k)).
func (cs *CutSystem) EsaryProschanLower(paths [][]int) (float64, error) {
	if err := cs.Validate(); err != nil {
		return 0, err
	}
	if len(paths) == 0 {
		return 0, fmt.Errorf("bounds: no path sets")
	}
	prod := 1.0
	for _, path := range paths {
		up := 1.0
		for _, v := range path {
			if v < 0 || v >= len(cs.FailP) {
				return 0, fmt.Errorf("%w: path references component %d", ErrBadCut, v)
			}
			up *= 1 - cs.FailP[v]
		}
		prod *= 1 - up
	}
	return prod, nil
}

// Bonferroni returns the order-k truncated inclusion–exclusion value. Odd k
// gives an upper bound on system failure probability, even k a lower bound.
// Complexity is C(len(Cuts), k); keep k small.
func (cs *CutSystem) Bonferroni(order int) (float64, error) {
	if err := cs.Validate(); err != nil {
		return 0, err
	}
	n := len(cs.Cuts)
	if order < 1 {
		return 0, fmt.Errorf("bounds: order %d must be >= 1", order)
	}
	if order > n {
		order = n
	}
	var total float64
	idx := make([]int, order)
	for ord := 1; ord <= order; ord++ {
		sign := 1.0
		if ord%2 == 0 {
			sign = -1
		}
		var sum float64
		var rec func(start, depth int)
		rec = func(start, depth int) {
			if depth == ord {
				union := make(map[int]bool)
				for _, ci := range idx[:ord] {
					for _, v := range cs.Cuts[ci] {
						union[v] = true
					}
				}
				p := 1.0
				for v := range union {
					p *= cs.FailP[v]
				}
				sum += p
				return
			}
			for j := start; j <= n-(ord-depth); j++ {
				idx[depth] = j
				rec(j+1, depth+1)
			}
		}
		rec(0, 0)
		total += sign * sum
	}
	return total, nil
}

// Exact computes the exact union probability of the cut events via a BDD.
// Feasible whenever the BDD of the union stays manageable (it usually does
// for structured systems even with many cuts).
func (cs *CutSystem) Exact() (float64, error) {
	if err := cs.Validate(); err != nil {
		return 0, err
	}
	mgr := bdd.New(len(cs.FailP))
	f := bdd.False
	for _, cut := range cs.Cuts {
		term := bdd.True
		for _, v := range cut {
			x, err := mgr.Var(v)
			if err != nil {
				return 0, err
			}
			term = mgr.And(term, x)
		}
		f = mgr.Or(f, term)
	}
	return mgr.Prob(f, cs.FailP)
}

// TruncationResult reports a two-sided bound obtained by keeping only the
// most probable cut sets.
type TruncationResult struct {
	// Lower is the exact probability of the union of kept cuts (a certified
	// lower bound on the full union).
	Lower float64
	// Upper is Lower plus the rare-event sum of the discarded cuts (a
	// certified upper bound).
	Upper float64
	// Kept and Discarded count the cut sets in each class.
	Kept, Discarded int
	// DiscardedMass is the rare-event sum of the discarded cuts.
	DiscardedMass float64
}

// Width returns Upper - Lower.
func (r TruncationResult) Width() float64 { return r.Upper - r.Lower }

// TruncatedBounds sorts cuts by probability, keeps the most probable
// `keep` of them (all if keep <= 0 or beyond range), solves the kept union
// exactly via BDD, and bounds the discarded mass by its rare-event sum.
func (cs *CutSystem) TruncatedBounds(keep int) (TruncationResult, error) {
	if err := cs.Validate(); err != nil {
		return TruncationResult{}, err
	}
	type scored struct {
		cut []int
		p   float64
	}
	all := make([]scored, len(cs.Cuts))
	for i, cut := range cs.Cuts {
		all[i] = scored{cut: cut, p: cs.cutProb(cut)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].p > all[j].p })
	if keep <= 0 || keep > len(all) {
		keep = len(all)
	}
	keptCuts := make([][]int, keep)
	for i := 0; i < keep; i++ {
		keptCuts[i] = all[i].cut
	}
	var discardedMass float64
	for i := keep; i < len(all); i++ {
		discardedMass += all[i].p
	}
	keptSys := &CutSystem{Cuts: keptCuts, FailP: cs.FailP}
	lower, err := keptSys.Exact()
	if err != nil {
		return TruncationResult{}, err
	}
	upper := lower + discardedMass
	if upper > 1 {
		upper = 1
	}
	return TruncationResult{
		Lower:         lower,
		Upper:         upper,
		Kept:          keep,
		Discarded:     len(all) - keep,
		DiscardedMass: discardedMass,
	}, nil
}
