package slo

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/modelio"
)

// SelfModel fits a small availability CTMC of the serving process from
// its own observed behavior. The serve loop periodically classifies
// itself into a coarse state ("ok", "saturated", "open", ...); Step
// accumulates dwell time per state and transition counts between states;
// Predict fits exponential rates (count / dwell) and solves the resulting
// chain with the repo's own solver stack, yielding predicted steady-state
// availability to sit next to the measured SLO — the tutorial's
// availability modeling applied to the model server itself.
type SelfModel struct {
	mu     sync.Mutex
	last   string
	lastAt time.Time
	dwell  map[string]float64 // seconds spent in each state
	trans  map[string]map[string]float64
	steps  int
}

// NewSelfModel returns an empty model.
func NewSelfModel() *SelfModel {
	return &SelfModel{
		dwell: make(map[string]float64),
		trans: make(map[string]map[string]float64),
	}
}

// Step records that the process was observed in state at time at.
// Observations must arrive in time order; a non-advancing clock
// contributes zero dwell and is harmless.
func (m *SelfModel) Step(state string, at time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.last == "" {
		m.last = state
		m.lastAt = at
		m.dwell[state] += 0
		m.steps++
		return
	}
	if dt := at.Sub(m.lastAt).Seconds(); dt > 0 {
		m.dwell[m.last] += dt
	}
	if state != m.last {
		row := m.trans[m.last]
		if row == nil {
			row = make(map[string]float64)
			m.trans[m.last] = row
		}
		row[state]++
	}
	m.last = state
	m.lastAt = at
	m.steps++
}

// Steps reports how many observations have been recorded.
func (m *SelfModel) Steps() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.steps
}

// Prediction is the outcome of solving the fitted self-CTMC.
type Prediction struct {
	// Availability is the predicted steady-state probability of being in
	// an up state.
	Availability float64 `json:"availability"`
	// States and Transitions size the fitted chain.
	States      int `json:"states"`
	Transitions int `json:"transitions"`
	// Observed is the raw dwell-time fraction per state — what the
	// fitted chain's steady state is compared against.
	Observed map[string]float64 `json:"observed_fraction,omitempty"`
	// Solver names the engine that solved the chain.
	Solver string `json:"solver,omitempty"`
	// At stamps when the prediction was computed.
	At time.Time `json:"at"`
}

// Predict fits rates from the accumulated counts (extending the current
// state's dwell to now) and solves the chain for steady-state
// availability over the given up states. It fails with an error naming
// the gap when the observations cannot support a well-posed chain yet.
func (m *SelfModel) Predict(up []string, now time.Time) (Prediction, error) {
	m.mu.Lock()
	dwell := make(map[string]float64, len(m.dwell))
	for s, d := range m.dwell {
		dwell[s] = d
	}
	if m.last != "" {
		if dt := now.Sub(m.lastAt).Seconds(); dt > 0 {
			dwell[m.last] += dt
		}
	}
	trans := make(map[string]map[string]float64, len(m.trans))
	for from, row := range m.trans {
		cp := make(map[string]float64, len(row))
		for to, n := range row {
			cp[to] = n
		}
		trans[from] = cp
	}
	m.mu.Unlock()

	if len(dwell) == 0 {
		return Prediction{}, fmt.Errorf("selfmodel: no observations yet")
	}
	upSet := make(map[string]bool, len(up))
	for _, s := range up {
		upSet[s] = true
	}
	var total float64
	for _, d := range dwell {
		total += d
	}
	if total <= 0 {
		return Prediction{}, fmt.Errorf("selfmodel: no dwell time accumulated yet")
	}
	observed := make(map[string]float64, len(dwell))
	states := make([]string, 0, len(dwell))
	for s, d := range dwell {
		observed[s] = d / total
		states = append(states, s)
	}
	sort.Strings(states)

	pred := Prediction{States: len(states), Observed: observed, At: now}

	// Degenerate single-state chains need no solver: availability is 1
	// or 0 by membership.
	if len(states) == 1 {
		if upSet[states[0]] {
			pred.Availability = 1
		}
		return pred, nil
	}

	spec := &modelio.Spec{
		Type: "ctmc",
		Name: "selfmodel",
		CTMC: &modelio.CTMCSpec{
			Measures: []string{"availability"},
			Solver:   "gth",
		},
	}
	for _, from := range states {
		if upSet[from] {
			spec.CTMC.UpStates = append(spec.CTMC.UpStates, from)
		}
		row := trans[from]
		if len(row) == 0 {
			// A visited state with no observed exit would make the chain
			// absorbing by accident of a short observation window.
			return pred, fmt.Errorf("selfmodel: state %q has dwell but no observed exit yet", from)
		}
		if dwell[from] <= 0 {
			return pred, fmt.Errorf("selfmodel: state %q has transitions but no dwell time", from)
		}
		tos := make([]string, 0, len(row))
		for to := range row {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			spec.CTMC.Transitions = append(spec.CTMC.Transitions, modelio.CTMCTransition{
				From: from,
				To:   to,
				Rate: row[to] / dwell[from],
			})
			pred.Transitions++
		}
	}
	if len(spec.CTMC.UpStates) == 0 {
		// No observed state counts as up: availability is 0 without
		// needing a solve (and "availability" requires up states).
		return pred, nil
	}
	results, err := modelio.SolveWithOptions(spec, modelio.SolveOptions{})
	if err != nil {
		return pred, fmt.Errorf("selfmodel: solve: %w", err)
	}
	for _, r := range results {
		if r.Measure == "availability" {
			pred.Availability = r.Value
			pred.Solver = "gth"
			return pred, nil
		}
	}
	return pred, fmt.Errorf("selfmodel: solver returned no availability measure")
}
