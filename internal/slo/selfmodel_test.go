package slo

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSelfModelTwoStateChain(t *testing.T) {
	m := NewSelfModel()
	clk := newFakeClock()
	// Alternate 9s up / 1s down for several cycles, sampled every second:
	// steady-state availability of the fitted chain must be 0.9 exactly
	// (a two-state chain's steady state is the dwell-time split).
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 9; i++ {
			m.Step("ok", clk.Now())
			clk.Advance(time.Second)
		}
		m.Step("open", clk.Now())
		clk.Advance(time.Second)
	}
	m.Step("ok", clk.Now()) // close the last down interval

	pred, err := m.Predict([]string{"ok"}, clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if pred.States != 2 || pred.Transitions != 2 {
		t.Fatalf("fitted chain %d states / %d transitions, want 2/2", pred.States, pred.Transitions)
	}
	if math.Abs(pred.Availability-0.9) > 1e-9 {
		t.Fatalf("predicted availability %g, want 0.9", pred.Availability)
	}
	if math.Abs(pred.Observed["ok"]-0.9) > 1e-9 {
		t.Fatalf("observed fraction %g, want 0.9", pred.Observed["ok"])
	}
	if pred.Solver != "gth" {
		t.Fatalf("solver = %q", pred.Solver)
	}
}

func TestSelfModelThreeStateCycle(t *testing.T) {
	m := NewSelfModel()
	clk := newFakeClock()
	// ok 300s -> saturated 60s -> open 40s, cycled; up = {ok, saturated}
	// => availability 360/400 = 0.9.
	phases := []struct {
		state string
		secs  int
	}{{"ok", 300}, {"saturated", 60}, {"open", 40}}
	for cycle := 0; cycle < 4; cycle++ {
		for _, ph := range phases {
			for i := 0; i < ph.secs; i += 5 {
				m.Step(ph.state, clk.Now())
				clk.Advance(5 * time.Second)
			}
		}
	}
	m.Step("ok", clk.Now())
	pred, err := m.Predict([]string{"ok", "saturated"}, clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if pred.States != 3 {
		t.Fatalf("states = %d, want 3", pred.States)
	}
	if math.Abs(pred.Availability-0.9) > 1e-6 {
		t.Fatalf("predicted availability %g, want 0.9", pred.Availability)
	}
}

func TestSelfModelDegenerateCases(t *testing.T) {
	m := NewSelfModel()
	if _, err := m.Predict([]string{"ok"}, time.Unix(0, 0)); err == nil {
		t.Fatal("empty model must refuse to predict")
	}

	clk := newFakeClock()
	m.Step("ok", clk.Now())
	clk.Advance(time.Minute)
	pred, err := m.Predict([]string{"ok"}, clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if pred.Availability != 1 || pred.States != 1 {
		t.Fatalf("single up-state prediction %+v, want availability 1", pred)
	}
	// Same single state but not in the up set: availability 0.
	pred, err = m.Predict([]string{"other"}, clk.Now())
	if err != nil || pred.Availability != 0 {
		t.Fatalf("single down-state prediction %+v err %v", pred, err)
	}

	// Two states but the second has no observed exit yet: refuse with a
	// named gap instead of fitting an accidental absorbing chain.
	m.Step("open", clk.Now())
	clk.Advance(time.Minute)
	if _, err := m.Predict([]string{"ok"}, clk.Now()); err == nil ||
		!strings.Contains(err.Error(), "no observed exit") {
		t.Fatalf("expected no-observed-exit error, got %v", err)
	}
}
