package slo

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time            { return c.t }
func (c *fakeClock) Advance(d time.Duration)   { c.t = c.t.Add(d) }
func (c *fakeClock) NowFunc() func() time.Time { return func() time.Time { return c.t } }

func availEngine(t *testing.T, clk *fakeClock, reg *metrics.Registry, onBreach func(Breach)) *Engine {
	t.Helper()
	e, err := New(Config{
		Objectives: []Objective{
			{Name: "avail", Match: map[string]string{"route": "/solve"}, Target: 0.9},
		},
		Windows: []WindowSpec{
			{Span: 5 * time.Minute, Threshold: 5},
			{Span: time.Hour, Threshold: 1},
		},
		Registry:  reg,
		MinEvents: 5,
		Now:       clk.NowFunc(),
		OnBreach:  onBreach,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineHealthyTraffic(t *testing.T) {
	clk := newFakeClock()
	e := availEngine(t, clk, nil, nil)
	for i := 0; i < 50; i++ {
		e.Observe("/solve", 200, 10*time.Millisecond)
		clk.Advance(time.Second)
	}
	st := e.Status()
	if len(st) != 1 {
		t.Fatalf("got %d objective statuses, want 1", len(st))
	}
	o := st[0]
	if o.WorstBurn != 0 || o.Breaching || o.BudgetRemaining != 1 || o.Measured != 1 {
		t.Fatalf("healthy status wrong: %+v", o)
	}
	if o.Kind != "availability" {
		t.Fatalf("kind = %q", o.Kind)
	}
	for _, w := range o.Windows {
		if w.Total != 50 || w.Bad != 0 {
			t.Fatalf("window %s totals %d/%d, want 50/0", w.Window, w.Total, w.Bad)
		}
	}
}

func TestEngineBurnAndBreachLatch(t *testing.T) {
	clk := newFakeClock()
	reg := metrics.NewRegistry()
	var breaches []Breach
	e := availEngine(t, clk, reg, func(b Breach) { breaches = append(breaches, b) })

	// 50% bad: burn = 0.5/0.1 = 5 — at the 5m threshold, above the 1h one.
	for i := 0; i < 20; i++ {
		status := 200
		if i%2 == 0 {
			status = 500
		}
		e.Observe("/solve", status, time.Millisecond)
		clk.Advance(time.Second)
	}
	st := e.Status()[0]
	if !st.Breaching {
		t.Fatalf("expected breaching, got %+v", st)
	}
	if math.Abs(st.WorstBurn-5) > 1e-9 {
		t.Fatalf("worst burn = %g, want 5", st.WorstBurn)
	}
	if st.Breaches != 2 || len(breaches) != 2 {
		t.Fatalf("breach events = %d (status says %d), want 2 (both windows)", len(breaches), st.Breaches)
	}
	// Budget: 1 - 0.5/0.1 clamps to 0.
	if st.BudgetRemaining != 0 {
		t.Fatalf("budget remaining = %g, want 0", st.BudgetRemaining)
	}
	if math.Abs(st.Measured-0.5) > 1e-9 {
		t.Fatalf("measured = %g, want 0.5", st.Measured)
	}

	// The latch: evaluating again without new events fires nothing new.
	e.Status()
	if len(breaches) != 2 {
		t.Fatalf("latched breach re-fired: %d events", len(breaches))
	}

	// Recovery: age the short window out with healthy traffic, then the
	// latch re-arms and a fresh bad burst fires again.
	for i := 0; i < 600; i++ {
		e.Observe("/solve", 200, time.Millisecond)
		clk.Advance(time.Second)
	}
	st = e.Status()[0]
	if st.Windows[0].Breaching {
		t.Fatalf("5m window still breaching after recovery: %+v", st.Windows[0])
	}
	if got := reg != nil; !got {
		t.Fatal("registry dropped")
	}
	if v := e.breaches.Value("avail", "5m"); v != 1 {
		t.Fatalf("relslo_breaches_total{avail,5m} = %g, want 1", v)
	}
}

func TestEngineMinEventsGate(t *testing.T) {
	clk := newFakeClock()
	e := availEngine(t, clk, nil, nil)
	// A single failure is a 10x burn but must not breach below MinEvents.
	e.Observe("/solve", 500, time.Millisecond)
	st := e.Status()[0]
	if st.Breaching {
		t.Fatalf("breached on %d events (MinEvents=5): %+v", st.Windows[0].Total, st)
	}
	if st.WorstBurn == 0 {
		t.Fatal("burn rate should still be reported")
	}
}

func TestEngineLatencyObjectiveAndRouteFilter(t *testing.T) {
	clk := newFakeClock()
	e, err := New(Config{
		Objectives: []Objective{
			{Name: "lat", Match: map[string]string{"route": "/solve"}, Target: 0.5, LatencyThresholdMS: 100},
		},
		MinEvents: 1,
		Now:       clk.NowFunc(),
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Observe("/solve", 200, 10*time.Millisecond)  // good
	e.Observe("/solve", 200, 500*time.Millisecond) // slow => bad
	e.Observe("/solve", 500, time.Millisecond)     // failed => bad
	e.Observe("/analyze", 500, time.Second)        // other route: ignored
	st := e.Status()[0]
	if st.Kind != "latency" {
		t.Fatalf("kind = %q", st.Kind)
	}
	w := st.Windows[len(st.Windows)-1]
	if w.Total != 3 || w.Bad != 2 {
		t.Fatalf("window totals %d/%d, want 3/2", w.Total, w.Bad)
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{},
		{Objectives: []Objective{{Name: "", Target: 0.9}}},
		{Objectives: []Objective{{Name: "a", Target: 0}}},
		{Objectives: []Objective{{Name: "a", Target: 1}}},
		{Objectives: []Objective{{Name: "a", Target: 0.9}, {Name: "a", Target: 0.5}}},
		{Objectives: []Objective{{Name: "a", Target: 0.9, LatencyThresholdMS: -1}}},
		{Objectives: []Objective{{Name: "a", Target: 0.9}}, Windows: []WindowSpec{{Span: -time.Second, Threshold: 1}}},
		{Objectives: []Objective{{Name: "a", Target: 0.9}}, Windows: []WindowSpec{{Span: time.Minute, Threshold: 0}}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestParseConfig(t *testing.T) {
	objs, err := ParseConfig(strings.NewReader(`{"objectives":[
		{"name":"a","target":0.999,"match":{"route":"/solve"}},
		{"name":"b","target":0.95,"latency_threshold_ms":250}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 || objs[0].Name != "a" || objs[1].LatencyThresholdMS != 250 {
		t.Fatalf("parsed %+v", objs)
	}
	for _, in := range []string{
		``, `{}`, `{"objectives":[]}`, `{"objectivez":[{"name":"a"}]}`, `not json`,
	} {
		if _, err := ParseConfig(strings.NewReader(in)); err == nil {
			t.Errorf("ParseConfig(%q): expected error", in)
		}
	}
}

func TestWindowLabel(t *testing.T) {
	cases := map[time.Duration]string{
		5 * time.Minute:         "5m",
		time.Hour:               "1h",
		6 * time.Hour:           "6h",
		30 * time.Second:        "30s",
		1500 * time.Millisecond: "1.5s",
	}
	for d, want := range cases {
		if got := windowLabel(d); got != want {
			t.Errorf("windowLabel(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestDefaultObjectivesValid(t *testing.T) {
	if _, err := New(Config{Objectives: DefaultObjectives()}); err != nil {
		t.Fatal(err)
	}
}
