// Package slo evaluates declarative service-level objectives over the
// live request stream: availability percentages and latency thresholds
// per request class, judged by multi-window burn rates (Google SRE
// workbook shape: a fast 5m window catches cliff outages, a 1h window
// sustained degradation, a 6h window slow budget leaks) with error-budget
// accounting, relslo_* metric families, and edge-triggered breach events.
//
// The package also contains the self-modeling layer (see SelfModel): the
// serve process periodically classifies its own state, fits a small
// availability CTMC from the observed dwell times and transition counts,
// and solves it with the repo's own engine — publishing predicted
// steady-state availability next to the measured SLO.
package slo

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Objective is one declarative service-level objective over a request
// class selected by Match.
type Objective struct {
	// Name identifies the objective in metrics, breach events, and the
	// dashboard.
	Name string `json:"name"`
	// Match filters the request class by label. The only supported key
	// today is "route"; an empty map matches every request.
	Match map[string]string `json:"match,omitempty"`
	// Target is the objective in (0,1): the fraction of events that must
	// be good (e.g. 0.999 availability, or 0.95 of requests under the
	// latency threshold).
	Target float64 `json:"target"`
	// LatencyThresholdMS, when positive, makes this a latency objective:
	// a request is bad when it fails (5xx) or runs longer than the
	// threshold. Zero means a pure availability objective (bad = 5xx).
	LatencyThresholdMS float64 `json:"latency_threshold_ms,omitempty"`
}

// Kind reports "latency" or "availability".
func (o Objective) Kind() string {
	if o.LatencyThresholdMS > 0 {
		return "latency"
	}
	return "availability"
}

func (o Objective) matches(route string) bool {
	if want, ok := o.Match["route"]; ok && want != route {
		return false
	}
	return true
}

func (o Objective) bad(status int, latency time.Duration) bool {
	if status >= 500 {
		return true
	}
	return o.LatencyThresholdMS > 0 && float64(latency.Nanoseconds())/1e6 > o.LatencyThresholdMS
}

// WindowSpec pairs an evaluation window with its burn-rate alerting
// threshold.
type WindowSpec struct {
	Span      time.Duration
	Threshold float64
}

// DefaultWindows returns the standard multi-window multi-burn-rate
// ladder: 5m at 14.4x (2% of a 30-day budget in an hour), 1h at 6x,
// 6h at 1x.
func DefaultWindows() []WindowSpec {
	return []WindowSpec{
		{Span: 5 * time.Minute, Threshold: 14.4},
		{Span: time.Hour, Threshold: 6},
		{Span: 6 * time.Hour, Threshold: 1},
	}
}

// Breach is an edge-triggered objective violation event: emitted once
// when a window's burn rate crosses its threshold, re-armed when it
// drops back below.
type Breach struct {
	Objective string    `json:"objective"`
	Window    string    `json:"window"`
	BurnRate  float64   `json:"burn_rate"`
	Threshold float64   `json:"threshold"`
	At        time.Time `json:"at"`
}

// Config configures an Engine.
type Config struct {
	// Objectives to evaluate; at least one, names unique, targets in (0,1).
	Objectives []Objective
	// Windows is the burn-rate ladder (nil means DefaultWindows).
	Windows []WindowSpec
	// Registry receives the relslo_* metric families (nil disables).
	Registry *metrics.Registry
	// MinEvents gates breach detection: a window with fewer events never
	// breaches, so a single early failure cannot fire a 14.4x page
	// (0 means 10).
	MinEvents int
	// Now is the clock (nil means time.Now); injectable for tests and
	// deterministic experiments.
	Now func() time.Time
	// OnBreach, when set, receives each edge-triggered breach event.
	OnBreach func(Breach)
}

// WindowStatus is one window's evaluation inside an ObjectiveStatus.
type WindowStatus struct {
	// Window is the human label ("5m", "1h", "6h").
	Window string `json:"window"`
	// Total and Bad are the event counts currently inside the window.
	Total uint64 `json:"total"`
	Bad   uint64 `json:"bad"`
	// BurnRate is badRate / (1 - target): 1.0 burns the budget exactly
	// at the sustainable rate, higher burns faster.
	BurnRate float64 `json:"burn_rate"`
	// Threshold is the alerting threshold for this window.
	Threshold float64 `json:"threshold"`
	// Breaching reports burn >= threshold with at least MinEvents events.
	Breaching bool `json:"breaching"`
}

// ObjectiveStatus is one objective's full evaluation.
type ObjectiveStatus struct {
	Name    string         `json:"name"`
	Kind    string         `json:"kind"`
	Target  float64        `json:"target"`
	Windows []WindowStatus `json:"windows"`
	// WorstBurn is the maximum burn rate across windows.
	WorstBurn float64 `json:"worst_burn"`
	// BudgetRemaining is the error budget left over the longest window,
	// clamped to [0,1]: 1 - badRate/(1-target).
	BudgetRemaining float64 `json:"budget_remaining"`
	// Measured is the good-event fraction over the longest window (1.0
	// when the window is empty) — the "measured availability" the
	// self-model prediction is compared against.
	Measured float64 `json:"measured"`
	// Breaching reports whether any window is currently breaching.
	Breaching bool `json:"breaching"`
	// Breaches counts edge-triggered breach events since start.
	Breaches int `json:"breaches"`
	// LastBreach is the most recent breach event, if any.
	LastBreach *Breach `json:"last_breach,omitempty"`
}

// Engine evaluates a set of objectives over the request stream.
type Engine struct {
	cfg     Config
	windows []WindowSpec
	mu      sync.Mutex // guards breach latches and counters across Status calls
	objs    []*objectiveState

	events   *metrics.Counter
	burn     *metrics.Gauge
	budget   *metrics.Gauge
	breaches *metrics.Counter
}

type objectiveState struct {
	obj      Objective
	counters []*metrics.SlidingCounter // one per window, ascending span
	latched  []bool                    // breach latch per window
	breaches int
	last     *Breach
}

// New validates cfg and builds an engine.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("slo: no objectives")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.MinEvents <= 0 {
		cfg.MinEvents = 10
	}
	windows := cfg.Windows
	if len(windows) == 0 {
		windows = DefaultWindows()
	}
	windows = append([]WindowSpec(nil), windows...)
	sort.Slice(windows, func(i, j int) bool { return windows[i].Span < windows[j].Span })
	for _, w := range windows {
		if w.Span <= 0 {
			return nil, fmt.Errorf("slo: window span must be positive, got %v", w.Span)
		}
		if w.Threshold <= 0 {
			return nil, fmt.Errorf("slo: window %s threshold must be positive, got %g", windowLabel(w.Span), w.Threshold)
		}
	}
	e := &Engine{cfg: cfg, windows: windows}
	seen := map[string]bool{}
	for _, o := range cfg.Objectives {
		if o.Name == "" {
			return nil, fmt.Errorf("slo: objective with empty name")
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("slo: duplicate objective %q", o.Name)
		}
		seen[o.Name] = true
		if !(o.Target > 0 && o.Target < 1) {
			return nil, fmt.Errorf("slo: objective %q target must lie in (0,1), got %g", o.Name, o.Target)
		}
		if o.LatencyThresholdMS < 0 {
			return nil, fmt.Errorf("slo: objective %q latency threshold must be >= 0, got %g", o.Name, o.LatencyThresholdMS)
		}
		st := &objectiveState{obj: o, latched: make([]bool, len(windows))}
		for _, w := range windows {
			st.counters = append(st.counters, metrics.NewSlidingCounterClock(w.Span, 30, cfg.Now))
		}
		e.objs = append(e.objs, st)
	}
	if cfg.Registry != nil {
		e.events = cfg.Registry.NewCounter("relslo_events_total",
			"SLO events judged, by objective and verdict (good/bad).", "objective", "verdict")
		e.burn = cfg.Registry.NewGauge("relslo_burn_rate",
			"Error-budget burn rate per objective and window (1.0 = sustainable).", "objective", "window")
		e.budget = cfg.Registry.NewGauge("relslo_budget_remaining",
			"Fraction of error budget remaining per objective over the longest window.", "objective")
		e.breaches = cfg.Registry.NewCounter("relslo_breaches_total",
			"Edge-triggered SLO breach events, by objective and window.", "objective", "window")
	}
	return e, nil
}

// Objectives returns the configured objectives.
func (e *Engine) Objectives() []Objective {
	out := make([]Objective, len(e.objs))
	for i, st := range e.objs {
		out[i] = st.obj
	}
	return out
}

// Observe judges one finished request against every matching objective.
// Safe for concurrent use (the sliding counters serialize internally).
func (e *Engine) Observe(route string, status int, latency time.Duration) {
	for _, st := range e.objs {
		if !st.obj.matches(route) {
			continue
		}
		bad := st.obj.bad(status, latency)
		for _, c := range st.counters {
			c.Record(bad)
		}
		if e.events != nil {
			verdict := "good"
			if bad {
				verdict = "bad"
			}
			e.events.Inc(st.obj.Name, verdict)
		}
	}
}

// Status evaluates every objective now, updating gauges and firing
// edge-triggered breach callbacks for windows that newly crossed their
// threshold.
func (e *Engine) Status() []ObjectiveStatus {
	e.mu.Lock()
	now := e.cfg.Now()
	var fired []Breach
	out := make([]ObjectiveStatus, 0, len(e.objs))
	for _, st := range e.objs {
		os := ObjectiveStatus{
			Name:            st.obj.Name,
			Kind:            st.obj.Kind(),
			Target:          st.obj.Target,
			Windows:         make([]WindowStatus, 0, len(e.windows)),
			BudgetRemaining: 1,
			Measured:        1,
		}
		budgetRate := 1 - st.obj.Target
		for wi, w := range e.windows {
			good, bad := st.counters[wi].Totals()
			total := good + bad
			ws := WindowStatus{
				Window:    windowLabel(w.Span),
				Total:     total,
				Bad:       bad,
				Threshold: w.Threshold,
			}
			if total > 0 {
				ws.BurnRate = (float64(bad) / float64(total)) / budgetRate
			}
			ws.Breaching = total >= uint64(e.cfg.MinEvents) && ws.BurnRate >= w.Threshold
			if ws.BurnRate > os.WorstBurn {
				os.WorstBurn = ws.BurnRate
			}
			if ws.Breaching {
				os.Breaching = true
				if !st.latched[wi] {
					st.latched[wi] = true
					b := Breach{
						Objective: st.obj.Name,
						Window:    ws.Window,
						BurnRate:  ws.BurnRate,
						Threshold: w.Threshold,
						At:        now,
					}
					st.breaches++
					st.last = &b
					fired = append(fired, b)
					if e.breaches != nil {
						e.breaches.Inc(st.obj.Name, ws.Window)
					}
				}
			} else {
				st.latched[wi] = false
			}
			if e.burn != nil {
				e.burn.Set(ws.BurnRate, st.obj.Name, ws.Window)
			}
			// The longest window (last after sorting) carries the budget
			// and measured-availability accounting.
			if wi == len(e.windows)-1 && total > 0 {
				os.Measured = float64(good) / float64(total)
				os.BudgetRemaining = 1 - (float64(bad)/float64(total))/budgetRate
				if os.BudgetRemaining < 0 {
					os.BudgetRemaining = 0
				}
			}
			os.Windows = append(os.Windows, ws)
		}
		os.Breaches = st.breaches
		os.LastBreach = st.last
		if e.budget != nil {
			e.budget.Set(os.BudgetRemaining, st.obj.Name)
		}
		out = append(out, os)
	}
	e.mu.Unlock()
	// Callbacks run outside the lock so an OnBreach hook may query the
	// engine again without deadlocking.
	if e.cfg.OnBreach != nil {
		for _, b := range fired {
			e.cfg.OnBreach(b)
		}
	}
	return out
}

// windowLabel renders a window span compactly ("5m", "1h", "6h").
func windowLabel(d time.Duration) string {
	switch {
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%dh", int(d/time.Hour))
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%dm", int(d/time.Minute))
	case d >= time.Second && d%time.Second == 0:
		return fmt.Sprintf("%ds", int(d/time.Second))
	default:
		return d.String()
	}
}

// DefaultObjectives returns the objectives serve uses when no -slo file
// is given: three nines availability on /solve and a p95-style 2s
// latency objective on /solve.
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "solve-availability", Match: map[string]string{"route": "/solve"}, Target: 0.999},
		{Name: "solve-latency-p95", Match: map[string]string{"route": "/solve"}, Target: 0.95, LatencyThresholdMS: 2000},
	}
}

// configDoc is the on-disk -slo file shape.
type configDoc struct {
	Objectives []Objective `json:"objectives"`
}

// ParseConfig reads a declarative objectives file:
//
//	{"objectives": [
//	  {"name": "solve-availability", "target": 0.999,
//	   "match": {"route": "/solve"}},
//	  {"name": "solve-latency-p95", "target": 0.95,
//	   "latency_threshold_ms": 2000, "match": {"route": "/solve"}}
//	]}
//
// Validation of names/targets happens in New; ParseConfig only rejects
// malformed JSON, unknown fields, and an empty objective list.
func ParseConfig(r io.Reader) ([]Objective, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc configDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("slo config: %w", err)
	}
	if len(doc.Objectives) == 0 {
		return nil, fmt.Errorf("slo config: no objectives")
	}
	return doc.Objectives, nil
}
