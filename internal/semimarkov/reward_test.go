package semimarkov

import (
	"testing"

	"repro/internal/dist"
)

func TestSteadyStateRewardMaintenanceCost(t *testing.T) {
	// Operate (det 90h, earns 0) → inspect (lognormal 2h, costs 50/h) with
	// 20% chance of entering repair (det 8h, costs 200/h).
	op, err := dist.NewDeterministic(90)
	if err != nil {
		t.Fatal(err)
	}
	insp, err := dist.NewLognormalFromMoments(2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dist.NewDeterministic(8)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	mustAdd := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(s.AddTransition("operate", "inspect", 1, op))
	mustAdd(s.AddTransition("inspect", "operate", 0.8, insp))
	mustAdd(s.AddTransition("inspect", "repair", 0.2, insp))
	mustAdd(s.AddTransition("repair", "operate", 1, rep))
	cost := func(state string) float64 {
		switch state {
		case "inspect":
			return 50
		case "repair":
			return 200
		default:
			return 0
		}
	}
	got, err := s.SteadyStateReward(cost)
	if err != nil {
		t.Fatal(err)
	}
	// Embedded chain visits per cycle: operate 1, inspect 1, repair 0.2.
	// Time weights: 90, 2, 1.6 → total 93.6.
	want := (2*50 + 1.6*200) / 93.6
	if relErr(got, want) > 1e-12 {
		t.Errorf("cost rate = %g, want %g", got, want)
	}
	if _, err := s.SteadyStateReward(nil); err == nil {
		t.Error("nil reward accepted")
	}
}
