// Package semimarkov implements semi-Markov processes (SMPs): an embedded
// discrete-time chain chooses successors while sojourn times follow
// arbitrary (non-exponential) distributions attached to each transition.
// Steady-state probabilities come from the Markov-renewal formula
// π_i = ν_i·h_i / Σ_j ν_j·h_j, and mean first-passage/absorption times from
// the linear system m_i = h_i + Σ_j p_ij·m_j.
//
// SMPs are the tutorial's first answer to non-exponential distributions:
// when the non-exponential behaviour is confined to sojourn times (no
// competing general timers), the SMP solves exactly what a CTMC cannot.
package semimarkov

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/linalg"
	"repro/internal/markov"
)

// SMP is a semi-Markov process under construction.
type SMP struct {
	names []string
	index map[string]int
	trans []kernelEntry
}

type kernelEntry struct {
	from, to int
	prob     float64
	sojourn  dist.Distribution
}

// Errors returned by SMP construction and analysis.
var (
	ErrUnknownState = errors.New("semimarkov: unknown state")
	ErrBadKernel    = errors.New("semimarkov: invalid kernel entry")
	ErrEmpty        = errors.New("semimarkov: no states")
)

// New returns an empty SMP.
func New() *SMP {
	return &SMP{index: make(map[string]int)}
}

// State ensures a state exists and returns its index.
func (s *SMP) State(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	i := len(s.names)
	s.index[name] = i
	s.names = append(s.names, name)
	return i
}

// AddTransition declares that from state `from`, with probability prob the
// next state is `to` and the sojourn before the jump follows the given
// distribution. Outgoing probabilities of each state must sum to 1.
func (s *SMP) AddTransition(from, to string, prob float64, sojourn dist.Distribution) error {
	if prob <= 0 || prob > 1 || math.IsNaN(prob) {
		return fmt.Errorf("%w: prob %g for %q -> %q", ErrBadKernel, prob, from, to)
	}
	if sojourn == nil {
		return fmt.Errorf("%w: nil sojourn for %q -> %q", ErrBadKernel, from, to)
	}
	s.trans = append(s.trans, kernelEntry{from: s.State(from), to: s.State(to), prob: prob, sojourn: sojourn})
	return nil
}

// StateNames returns the state names in index order.
func (s *SMP) StateNames() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Index returns the index of a named state.
func (s *SMP) Index(name string) (int, error) {
	i, ok := s.index[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownState, name)
	}
	return i, nil
}

// validate checks row sums and returns per-state outgoing entries.
func (s *SMP) validate() ([][]kernelEntry, error) {
	if len(s.names) == 0 {
		return nil, ErrEmpty
	}
	out := make([][]kernelEntry, len(s.names))
	sums := make([]float64, len(s.names))
	for _, e := range s.trans {
		out[e.from] = append(out[e.from], e)
		sums[e.from] += e.prob
	}
	for i, sum := range sums {
		if len(out[i]) == 0 {
			continue // absorbing
		}
		if math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("%w: state %q outgoing probabilities sum to %g",
				ErrBadKernel, s.names[i], sum)
		}
	}
	return out, nil
}

// meanSojourn returns h_i = Σ_j p_ij·E[H_ij] for each state (0 for
// absorbing states).
func (s *SMP) meanSojourn(out [][]kernelEntry) []float64 {
	h := make([]float64, len(s.names))
	for i, entries := range out {
		for _, e := range entries {
			h[i] += e.prob * e.sojourn.Mean()
		}
	}
	return h
}

// SteadyState returns the long-run fraction of time in each state for an
// irreducible SMP, by the Markov-renewal formula.
func (s *SMP) SteadyState() (map[string]float64, error) {
	out, err := s.validate()
	if err != nil {
		return nil, err
	}
	for i, entries := range out {
		if len(entries) == 0 {
			return nil, fmt.Errorf("semimarkov: state %q is absorbing; steady state undefined", s.names[i])
		}
	}
	// Embedded DTMC stationary vector.
	d := markov.NewDTMC()
	for _, name := range s.names {
		d.State(name)
	}
	for _, e := range s.trans {
		if err := d.AddProb(s.names[e.from], s.names[e.to], e.prob); err != nil {
			return nil, err
		}
	}
	nu, err := d.SteadyState()
	if err != nil {
		return nil, fmt.Errorf("semimarkov embedded chain: %w", err)
	}
	h := s.meanSojourn(out)
	w := make([]float64, len(nu))
	for i := range nu {
		w[i] = nu[i] * h[i]
	}
	if err := linalg.Normalize1(w); err != nil {
		return nil, fmt.Errorf("semimarkov: %w", err)
	}
	res := make(map[string]float64, len(w))
	for i, name := range s.names {
		res[name] = w[i]
	}
	return res, nil
}

// MeanTimeToAbsorption returns E[time to reach any of the named absorbing
// states] from the initial state, solving m = h + P_TT·m over the transient
// block.
func (s *SMP) MeanTimeToAbsorption(initial string, absorbing ...string) (float64, error) {
	out, err := s.validate()
	if err != nil {
		return 0, err
	}
	start, err := s.Index(initial)
	if err != nil {
		return 0, err
	}
	if len(absorbing) == 0 {
		return 0, fmt.Errorf("semimarkov: no absorbing states given")
	}
	isAbs := make(map[int]bool, len(absorbing))
	for _, name := range absorbing {
		i, err := s.Index(name)
		if err != nil {
			return 0, err
		}
		isAbs[i] = true
	}
	if isAbs[start] {
		return 0, nil
	}
	var transIdx []int
	pos := make(map[int]int)
	for i := range s.names {
		if !isAbs[i] {
			pos[i] = len(transIdx)
			transIdx = append(transIdx, i)
		}
	}
	nt := len(transIdx)
	h := s.meanSojourn(out)
	// (I - P_TT)·m = h_T.
	a := linalg.NewDense(nt, nt)
	b := make([]float64, nt)
	for _, gi := range transIdx {
		p := pos[gi]
		a.Set(p, p, 1)
		b[p] = h[gi]
		for _, e := range out[gi] {
			if !isAbs[e.to] {
				a.Add(p, pos[e.to], -e.prob)
			}
		}
	}
	m, err := linalg.LUSolve(a, b)
	if err != nil {
		return 0, fmt.Errorf("semimarkov MTTA: %w (absorption not certain?)", err)
	}
	return m[pos[start]], nil
}

// SteadyStateReward returns Σ_i π_i·r(i) for the long-run time-fraction
// vector π — e.g. cost rate of a maintenance policy whose sojourns are
// non-exponential.
func (s *SMP) SteadyStateReward(reward func(state string) float64) (float64, error) {
	if reward == nil {
		return 0, fmt.Errorf("semimarkov: nil reward function")
	}
	pi, err := s.SteadyState()
	if err != nil {
		return 0, err
	}
	var total float64
	for name, p := range pi {
		total += p * reward(name)
	}
	return total, nil
}

// EmbeddedChain exposes the embedded DTMC (jump chain) for further
// analysis, e.g. absorption probabilities.
func (s *SMP) EmbeddedChain() (*markov.DTMC, error) {
	if _, err := s.validate(); err != nil {
		return nil, err
	}
	d := markov.NewDTMC()
	for _, name := range s.names {
		d.State(name)
	}
	for _, e := range s.trans {
		if err := d.AddProb(s.names[e.from], s.names[e.to], e.prob); err != nil {
			return nil, err
		}
	}
	return d, nil
}
