package semimarkov

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/markov"
)

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Abs(b); m > 1e-300 {
		return d / m
	}
	return d
}

func TestExponentialSojournsMatchCTMC(t *testing.T) {
	// With exponential sojourns the SMP is a CTMC.
	lam, mu := 0.3, 2.0
	s := New()
	if err := s.AddTransition("up", "down", 1, dist.MustExponential(lam)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTransition("down", "up", 1, dist.MustExponential(mu)); err != nil {
		t.Fatal(err)
	}
	pi, err := s.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	c := markov.NewCTMC()
	_ = c.AddRate("up", "down", lam)
	_ = c.AddRate("down", "up", mu)
	want, err := c.SteadyStateMap()
	if err != nil {
		t.Fatal(err)
	}
	if relErr(pi["up"], want["up"]) > 1e-12 {
		t.Errorf("pi[up] = %g, want %g", pi["up"], want["up"])
	}
}

func TestDeterministicAlternatingRenewal(t *testing.T) {
	// Fixed 9h up, fixed 1h repair: availability = 0.9 exactly. A CTMC
	// with matched means gives the same answer only because steady-state
	// availability depends on means alone — but the SMP gets it exactly
	// for any distribution shape.
	up, err := dist.NewDeterministic(9)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dist.NewDeterministic(1)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	_ = s.AddTransition("up", "down", 1, up)
	_ = s.AddTransition("down", "up", 1, rep)
	pi, err := s.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if relErr(pi["up"], 0.9) > 1e-12 {
		t.Errorf("A = %g, want 0.9", pi["up"])
	}
}

func TestWeibullLognormalMixture(t *testing.T) {
	// Weibull wear-out lifetime, lognormal repair: A = MTTF/(MTTF+MTTR).
	life, err := dist.NewWeibull(2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dist.NewLognormalFromMoments(4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	_ = s.AddTransition("up", "down", 1, life)
	_ = s.AddTransition("down", "up", 1, rep)
	pi, err := s.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	want := life.Mean() / (life.Mean() + rep.Mean())
	if relErr(pi["up"], want) > 1e-12 {
		t.Errorf("A = %g, want %g", pi["up"], want)
	}
}

func TestBranchingSMP(t *testing.T) {
	// Web-server: robust → (0.9 stay path via degraded, 0.1 crash).
	// From degraded: repair back. Three states with distinct sojourns.
	s := New()
	_ = s.AddTransition("robust", "degraded", 0.6, dist.MustExponential(0.1))
	_ = s.AddTransition("robust", "failed", 0.4, dist.MustExponential(0.1))
	_ = s.AddTransition("degraded", "robust", 1, dist.MustExponential(1.0))
	_ = s.AddTransition("failed", "robust", 1, dist.MustExponential(0.5))
	pi, err := s.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	// Embedded chain: ν(robust)=1/2, ν(degraded)=0.3, ν(failed)=0.2
	// (unnormalized 1, 0.6, 0.4). Mean sojourns: 10, 1, 2.
	// Weights: 10, 0.6, 0.8 → normalize.
	total := 10 + 0.6 + 0.8
	if relErr(pi["robust"], 10/total) > 1e-12 {
		t.Errorf("pi[robust] = %g, want %g", pi["robust"], 10/total)
	}
	if relErr(pi["failed"], 0.8/total) > 1e-12 {
		t.Errorf("pi[failed] = %g, want %g", pi["failed"], 0.8/total)
	}
}

func TestMeanTimeToAbsorption(t *testing.T) {
	// up →(1.0, mean 10)→ degraded →(0.5 back to up, 0.5 to failed), mean
	// sojourn 2 in degraded. m_deg = 2 + 0.5·m_up; m_up = 10 + m_deg.
	// Solving: m_up = 10 + 2 + 0.5·m_up → m_up = 24.
	s := New()
	_ = s.AddTransition("up", "degraded", 1, dist.MustExponential(0.1))
	_ = s.AddTransition("degraded", "up", 0.5, mustDet(t, 2))
	_ = s.AddTransition("degraded", "failed", 0.5, mustDet(t, 2))
	got, err := s.MeanTimeToAbsorption("up", "failed")
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got, 24) > 1e-12 {
		t.Errorf("MTTA = %g, want 24", got)
	}
	// From an absorbing start the MTTA is zero.
	zero, err := s.MeanTimeToAbsorption("failed", "failed")
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Errorf("MTTA from absorbing = %g", zero)
	}
}

func TestEmbeddedChainAbsorption(t *testing.T) {
	s := New()
	_ = s.AddTransition("start", "win", 0.3, mustDet(t, 1))
	_ = s.AddTransition("start", "lose", 0.7, mustDet(t, 1))
	d, err := s.EmbeddedChain()
	if err != nil {
		t.Fatal(err)
	}
	// Make absorbing states proper DTMC absorbing states.
	_ = d.AddProb("win", "win", 1)
	_ = d.AddProb("lose", "lose", 1)
	probs, err := d.AbsorptionProbs("start", "win", "lose")
	if err != nil {
		t.Fatal(err)
	}
	if relErr(probs["win"], 0.3) > 1e-12 {
		t.Errorf("P(win) = %g, want 0.3", probs["win"])
	}
}

func TestValidation(t *testing.T) {
	s := New()
	if err := s.AddTransition("a", "b", 0, dist.MustExponential(1)); !errors.Is(err, ErrBadKernel) {
		t.Errorf("zero prob: %v", err)
	}
	if err := s.AddTransition("a", "b", 0.5, nil); !errors.Is(err, ErrBadKernel) {
		t.Errorf("nil sojourn: %v", err)
	}
	_ = s.AddTransition("a", "b", 0.5, dist.MustExponential(1))
	if _, err := s.SteadyState(); !errors.Is(err, ErrBadKernel) {
		t.Errorf("row sum 0.5: %v", err)
	}
	empty := New()
	if _, err := empty.SteadyState(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: %v", err)
	}
	// Absorbing state present → steady state undefined.
	abs := New()
	_ = abs.AddTransition("a", "b", 1, dist.MustExponential(1))
	if _, err := abs.SteadyState(); err == nil {
		t.Error("absorbing state accepted in steady state")
	}
}

func mustDet(t *testing.T, v float64) dist.Deterministic {
	t.Helper()
	d, err := dist.NewDeterministic(v)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
