package bdd

import (
	"fmt"
)

// Prob computes Pr[f = 1] given independent variable probabilities
// p[i] = Pr[var i = 1], by a memoized Shannon expansion over the BDD
// (Rauzy's bottom-up algorithm). Complexity is linear in the BDD size.
func (m *Manager) Prob(f Ref, p []float64) (float64, error) {
	if len(p) != m.nvars {
		return 0, fmt.Errorf("bdd prob: %d probabilities for %d variables", len(p), m.nvars)
	}
	for i, pi := range p {
		if pi < 0 || pi > 1 {
			return 0, fmt.Errorf("bdd prob: p[%d]=%g outside [0,1]", i, pi)
		}
	}
	memo := make(map[Ref]float64)
	var rec func(Ref) float64
	rec = func(r Ref) float64 {
		switch r {
		case False:
			return 0
		case True:
			return 1
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := m.nodes[r]
		pi := p[n.level]
		v := (1-pi)*rec(n.low) + pi*rec(n.high)
		memo[r] = v
		return v
	}
	return rec(f), nil
}

// Birnbaum computes the Birnbaum importance of variable v for function f:
// Pr[f | x_v = 1] - Pr[f | x_v = 0], the partial derivative of the system
// probability with respect to the component probability.
func (m *Manager) Birnbaum(f Ref, p []float64, v int) (float64, error) {
	f1, err := m.Restrict(f, v, true)
	if err != nil {
		return 0, err
	}
	f0, err := m.Restrict(f, v, false)
	if err != nil {
		return 0, err
	}
	p1, err := m.Prob(f1, p)
	if err != nil {
		return 0, err
	}
	p0, err := m.Prob(f0, p)
	if err != nil {
		return 0, err
	}
	return p1 - p0, nil
}

// CriticalityImportance computes the criticality importance of variable v:
// Birnbaum(v) · p[v] / Pr[f]. It measures the probability that v is both
// critical and failed, given the system has failed (f interpreted as the
// failure function).
func (m *Manager) CriticalityImportance(f Ref, p []float64, v int) (float64, error) {
	b, err := m.Birnbaum(f, p, v)
	if err != nil {
		return 0, err
	}
	sys, err := m.Prob(f, p)
	if err != nil {
		return 0, err
	}
	if sys == 0 { //numvet:allow float-eq exact zero guards the division below
		return 0, nil
	}
	if v < 0 || v >= m.nvars {
		return 0, fmt.Errorf("bdd: variable %d outside [0,%d)", v, m.nvars)
	}
	return b * p[v] / sys, nil
}
