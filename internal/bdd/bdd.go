// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with an ITE-based apply, probability evaluation, and minimal cut set
// extraction. BDDs are the workhorse for non-state-space reliability models:
// a structure function over independent components becomes a BDD, and the
// system unreliability is a single bottom-up pass over it (Rauzy's
// algorithm), regardless of repeated events.
package bdd

import (
	"fmt"

	"repro/internal/failpoint"
)

// fpAlloc is the node-allocation failpoint: an injected error poisons the
// manager exactly like a tripped node budget (construction unwinds
// cheaply, results must be discarded), surfacing through AllocFailure.
const fpAlloc = "bdd.alloc"

// Ref identifies a BDD node within a Manager. The terminals are False and
// True; all other refs index internal nodes.
type Ref int32

// Terminal node references.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level     int32 // variable index; terminals use a sentinel
	low, high Ref
}

const terminalLevel int32 = 1<<31 - 1

// Manager owns the node table and operation caches for a set of BDDs that
// share a variable ordering. It is not safe for concurrent use.
type Manager struct {
	nodes  []node
	unique map[node]Ref
	iteC   map[[3]Ref]Ref
	nvars  int

	nodeLimit int
	limitHit  bool
	allocErr  error

	iteHits, iteMisses int64
}

// Stats reports manager-level telemetry: live node count and ITE
// operation-cache behavior. The counters are cheap enough to maintain
// unconditionally.
type Stats struct {
	// Nodes is the number of live nodes including the two terminals.
	Nodes int `json:"nodes"`
	// ITEHits and ITEMisses count operation-cache lookups in ITE.
	ITEHits   int64 `json:"ite_hits"`
	ITEMisses int64 `json:"ite_misses"`
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{Nodes: len(m.nodes), ITEHits: m.iteHits, ITEMisses: m.iteMisses}
}

// New returns a manager for nvars Boolean variables, ordered by index.
func New(nvars int) *Manager {
	m := &Manager{
		unique: make(map[node]Ref, 1024),
		iteC:   make(map[[3]Ref]Ref, 1024),
		nvars:  nvars,
	}
	m.nodes = append(m.nodes,
		node{level: terminalLevel}, // False
		node{level: terminalLevel}, // True
	)
	return m
}

// NumVars returns the number of declared variables.
func (m *Manager) NumVars() int { return m.nvars }

// SetNodeLimit bounds the internal node table to limit nodes (terminals
// excluded); 0 removes the bound. Once the limit trips, node construction
// degrades to returning arbitrary existing refs — the manager's results
// are meaningless from that point and the caller must check LimitExceeded
// and discard them. The degradation keeps the remaining construction O(1)
// per operation, so an over-budget compile aborts cheaply instead of
// exhausting memory first.
func (m *Manager) SetNodeLimit(limit int) { m.nodeLimit = limit }

// LimitExceeded reports whether a SetNodeLimit budget has tripped.
func (m *Manager) LimitExceeded() bool { return m.limitHit }

// AllocFailure returns the injected allocation fault that poisoned this
// manager (nil outside fault-injection runs). A poisoned manager's
// results are meaningless, exactly as after a tripped node budget;
// constructors must check and discard.
func (m *Manager) AllocFailure() error { return m.allocErr }

// Size returns the number of live nodes (including terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// Var returns the BDD for variable i.
func (m *Manager) Var(i int) (Ref, error) {
	if i < 0 || i >= m.nvars {
		return False, fmt.Errorf("bdd: variable %d outside [0,%d)", i, m.nvars)
	}
	return m.mk(int32(i), False, True), nil
}

// mk returns the canonical node (level, low, high), applying the reduction
// rules (no redundant tests, shared subgraphs).
func (m *Manager) mk(level int32, low, high Ref) Ref {
	if low == high {
		return low
	}
	key := node{level: level, low: low, high: high}
	if r, ok := m.unique[key]; ok {
		return r
	}
	if m.nodeLimit > 0 && len(m.nodes)-2 >= m.nodeLimit {
		m.limitHit = true
		return low
	}
	if err := failpoint.Inject(fpAlloc); err != nil {
		// Poison the manager and unwind the construction cheaply, the same
		// degradation path as an exhausted node budget.
		m.limitHit = true
		m.allocErr = err
		return low
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, key)
	m.unique[key] = r
	return r
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// ITE computes if-then-else(f, g, h) = f·g + ¬f·h. All Boolean connectives
// reduce to ITE.
func (m *Manager) ITE(f, g, h Ref) Ref {
	if m.limitHit {
		// The node budget already tripped: results are discarded, so stop
		// doing real work and unwind the construction cheaply.
		return False
	}
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := [3]Ref{f, g, h}
	if r, ok := m.iteC[key]; ok {
		m.iteHits++
		return r
	}
	m.iteMisses++
	// Split on the top variable.
	lv := m.level(f)
	if l := m.level(g); l < lv {
		lv = l
	}
	if l := m.level(h); l < lv {
		lv = l
	}
	f0, f1 := m.cofactors(f, lv)
	g0, g1 := m.cofactors(g, lv)
	h0, h1 := m.cofactors(h, lv)
	low := m.ITE(f0, g0, h0)
	high := m.ITE(f1, g1, h1)
	r := m.mk(lv, low, high)
	m.iteC[key] = r
	return r
}

// cofactors returns (f|v=0, f|v=1) for the variable at the given level.
func (m *Manager) cofactors(f Ref, level int32) (Ref, Ref) {
	n := m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.low, n.high
}

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, True, g) }

// Not returns ¬f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// AndN folds And over its arguments (True for none).
func (m *Manager) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
	}
	return r
}

// OrN folds Or over its arguments (False for none).
func (m *Manager) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
	}
	return r
}

// KofN returns the function that is true when at least k of the given
// functions are true, built by dynamic programming over thresholds.
func (m *Manager) KofN(k int, fs []Ref) (Ref, error) {
	n := len(fs)
	if k < 0 || k > n {
		return False, fmt.Errorf("bdd: k=%d outside [0,%d]", k, n)
	}
	if k == 0 {
		return True, nil
	}
	// thr[j] = "at least j of the inputs seen so far are true".
	thr := make([]Ref, k+1)
	thr[0] = True
	for j := 1; j <= k; j++ {
		thr[j] = False
	}
	for _, f := range fs {
		for j := k; j >= 1; j-- {
			thr[j] = m.ITE(f, thr[j-1], thr[j])
		}
	}
	return thr[k], nil
}

// Restrict returns f with variable v fixed to the given value.
func (m *Manager) Restrict(f Ref, v int, value bool) (Ref, error) {
	if v < 0 || v >= m.nvars {
		return False, fmt.Errorf("bdd: variable %d outside [0,%d)", v, m.nvars)
	}
	memo := make(map[Ref]Ref)
	var rec func(Ref) Ref
	rec = func(r Ref) Ref {
		n := m.nodes[r]
		if n.level == terminalLevel {
			return r
		}
		if got, ok := memo[r]; ok {
			return got
		}
		var out Ref
		switch {
		case int(n.level) == v:
			if value {
				out = rec(n.high)
			} else {
				out = rec(n.low)
			}
		case int(n.level) > v:
			out = r
		default:
			out = m.mk(n.level, rec(n.low), rec(n.high))
		}
		memo[r] = out
		return out
	}
	return rec(f), nil
}

// NodeCount returns the number of distinct internal nodes reachable from f.
func (m *Manager) NodeCount(f Ref) int {
	seen := make(map[Ref]bool)
	var rec func(Ref)
	rec = func(r Ref) {
		if r == True || r == False || seen[r] {
			return
		}
		seen[r] = true
		rec(m.nodes[r].low)
		rec(m.nodes[r].high)
	}
	rec(f)
	return len(seen)
}

// SatCount returns the number of satisfying assignments over all nvars
// variables as a float64 (exact for counts below 2^53).
func (m *Manager) SatCount(f Ref) float64 {
	memo := make(map[Ref]float64)
	var rec func(Ref, int32) float64
	rec = func(r Ref, fromLevel int32) float64 {
		n := m.nodes[r]
		lvl := n.level
		if lvl == terminalLevel {
			lvl = int32(m.nvars)
		}
		var base float64 // count over variables lvl..nvars-1
		if n.level == terminalLevel {
			if r == True {
				base = 1
			}
		} else if got, ok := memo[r]; ok {
			base = got
		} else {
			base = rec(n.low, lvl+1) + rec(n.high, lvl+1)
			memo[r] = base
		}
		// Variables between fromLevel and lvl are unconstrained.
		return base * pow2(int(lvl-fromLevel))
	}
	return rec(f, 0)
}

func pow2(k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= 2
	}
	return out
}
