package bdd

import (
	"sort"
)

// CutSet is a set of variable indices, sorted ascending.
type CutSet []int

// contains reports whether c ⊇ other.
func (c CutSet) contains(other CutSet) bool {
	if len(other) > len(c) {
		return false
	}
	i := 0
	for _, want := range other {
		for i < len(c) && c[i] < want {
			i++
		}
		if i >= len(c) || c[i] != want {
			return false
		}
		i++
	}
	return true
}

// MinimalCutSets extracts the minimal cut sets of a coherent (monotone)
// function f: the minimal sets of variables that, when all true, force
// f = 1. This is Rauzy's recursive BDD algorithm with subsumption
// minimization at each node.
//
// For non-coherent functions the result is the set of minimal solutions
// containing only positive literals, which coincides with minimal cut sets
// whenever the function is monotone.
func (m *Manager) MinimalCutSets(f Ref) []CutSet {
	memo := make(map[Ref][]CutSet)
	var rec func(Ref) []CutSet
	rec = func(r Ref) []CutSet {
		switch r {
		case False:
			return nil
		case True:
			return []CutSet{{}}
		}
		if cs, ok := memo[r]; ok {
			return cs
		}
		n := m.nodes[r]
		lowCuts := rec(n.low)
		highCuts := rec(n.high)
		v := int(n.level)
		// Cuts through the high branch must include v; drop those subsumed
		// by a low-branch cut (which achieves failure without v).
		out := make([]CutSet, 0, len(lowCuts)+len(highCuts))
		out = append(out, lowCuts...)
		for _, hc := range highCuts {
			withV := insertSorted(hc, v)
			subsumed := false
			for _, lc := range lowCuts {
				if withV.contains(lc) {
					subsumed = true
					break
				}
			}
			if !subsumed {
				out = append(out, withV)
			}
		}
		memo[r] = out
		return out
	}
	cuts := rec(f)
	sortCutSets(cuts)
	return cuts
}

// insertSorted returns a new sorted set equal to c ∪ {v}.
func insertSorted(c CutSet, v int) CutSet {
	out := make(CutSet, 0, len(c)+1)
	placed := false
	for _, x := range c {
		if !placed && v < x {
			out = append(out, v)
			placed = true
		}
		if x == v {
			placed = true
		}
		out = append(out, x)
	}
	if !placed {
		out = append(out, v)
	}
	return out
}

// sortCutSets orders cut sets by size, then lexicographically.
func sortCutSets(cuts []CutSet) {
	sort.Slice(cuts, func(i, j int) bool {
		a, b := cuts[i], cuts[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// Minimize removes non-minimal sets from cuts (those that are supersets of
// another cut) and returns the minimized, sorted collection. It is used by
// callers that assemble candidate cut collections outside a BDD (e.g.,
// MOCUS-style enumeration).
func Minimize(cuts []CutSet) []CutSet {
	sorted := make([]CutSet, len(cuts))
	copy(sorted, cuts)
	sortCutSets(sorted)
	var out []CutSet
	for _, c := range sorted {
		minimal := true
		for _, kept := range out {
			if c.contains(kept) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, c)
		}
	}
	return out
}
