package bdd

import (
	"math"
	"testing"
	"testing/quick"
)

func mustVar(t *testing.T, m *Manager, i int) Ref {
	t.Helper()
	v, err := m.Var(i)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestBasicConnectives(t *testing.T) {
	m := New(2)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	tests := []struct {
		name string
		f    Ref
		tt   [4]bool // truth table over (a,b) = 00,01,10,11
	}{
		{name: "and", f: m.And(a, b), tt: [4]bool{false, false, false, true}},
		{name: "or", f: m.Or(a, b), tt: [4]bool{false, true, true, true}},
		{name: "xor", f: m.Xor(a, b), tt: [4]bool{false, true, true, false}},
		{name: "not a", f: m.Not(a), tt: [4]bool{true, true, false, false}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for idx := 0; idx < 4; idx++ {
				av, bv := idx&2 != 0, idx&1 != 0
				got := evalBDD(m, tt.f, []bool{av, bv})
				if got != tt.tt[idx] {
					t.Errorf("f(%v,%v) = %v, want %v", av, bv, got, tt.tt[idx])
				}
			}
		})
	}
}

// evalBDD evaluates f under a full assignment.
func evalBDD(m *Manager, f Ref, assign []bool) bool {
	r := f
	for {
		switch r {
		case True:
			return true
		case False:
			return false
		}
		n := m.nodes[r]
		if assign[n.level] {
			r = n.high
		} else {
			r = n.low
		}
	}
}

func TestCanonicity(t *testing.T) {
	m := New(3)
	a, b, c := mustVar(t, m, 0), mustVar(t, m, 1), mustVar(t, m, 2)
	// (a∧b)∨c  ==  ¬(¬c∧¬(a∧b))  must share the same node.
	f1 := m.Or(m.And(a, b), c)
	f2 := m.Not(m.And(m.Not(c), m.Not(m.And(a, b))))
	if f1 != f2 {
		t.Fatalf("equivalent functions got different refs %d vs %d", f1, f2)
	}
	// Idempotence: a∧a = a.
	if m.And(a, a) != a {
		t.Error("a∧a != a")
	}
	if m.Or(a, m.Not(a)) != True {
		t.Error("a∨¬a != True")
	}
	if m.And(a, m.Not(a)) != False {
		t.Error("a∧¬a != False")
	}
}

func TestProbSeriesParallel(t *testing.T) {
	m := New(3)
	a, b, c := mustVar(t, m, 0), mustVar(t, m, 1), mustVar(t, m, 2)
	p := []float64{0.9, 0.8, 0.7}

	series := m.AndN(a, b, c)
	got, err := m.Prob(series, p)
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.9 * 0.8 * 0.7; math.Abs(got-want) > 1e-15 {
		t.Errorf("series prob = %g, want %g", got, want)
	}

	parallel := m.OrN(a, b, c)
	got, err = m.Prob(parallel, p)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 - 0.1*0.2*0.3; math.Abs(got-want) > 1e-15 {
		t.Errorf("parallel prob = %g, want %g", got, want)
	}
}

func TestProbRepeatedEvent(t *testing.T) {
	// f = (a∧b) ∨ (a∧c): naive independence over gates double-counts a.
	m := New(3)
	a, b, c := mustVar(t, m, 0), mustVar(t, m, 1), mustVar(t, m, 2)
	f := m.Or(m.And(a, b), m.And(a, c))
	p := []float64{0.5, 0.5, 0.5}
	got, err := m.Prob(f, p)
	if err != nil {
		t.Fatal(err)
	}
	// Exact: P(a)·P(b∨c) = 0.5 · 0.75.
	if want := 0.375; math.Abs(got-want) > 1e-15 {
		t.Errorf("prob = %g, want %g", got, want)
	}
}

func TestKofN(t *testing.T) {
	m := New(4)
	vars := make([]Ref, 4)
	for i := range vars {
		vars[i] = mustVar(t, m, i)
	}
	p := []float64{0.9, 0.9, 0.9, 0.9}
	tests := []struct {
		k    int
		want float64
	}{
		{k: 0, want: 1},
		{k: 1, want: 1 - math.Pow(0.1, 4)},
		{k: 4, want: math.Pow(0.9, 4)},
	}
	for _, tt := range tests {
		f, err := m.KofN(tt.k, vars)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Prob(f, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%d-of-4 prob = %g, want %g", tt.k, got, tt.want)
		}
	}
	// 2-of-4 binomial: sum_{j>=2} C(4,j) 0.9^j 0.1^{4-j}.
	f, err := m.KofN(2, vars)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := m.Prob(f, p)
	want := 6*math.Pow(0.9, 2)*math.Pow(0.1, 2) + 4*math.Pow(0.9, 3)*0.1 + math.Pow(0.9, 4)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("2-of-4 prob = %g, want %g", got, want)
	}
	if _, err := m.KofN(5, vars); err == nil {
		t.Error("want error for k > n")
	}
}

func TestRestrict(t *testing.T) {
	m := New(2)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	f := m.And(a, b)
	r1, err := m.Restrict(f, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != b {
		t.Errorf("(a∧b)|a=1 should be b")
	}
	r0, err := m.Restrict(f, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if r0 != False {
		t.Errorf("(a∧b)|a=0 should be False")
	}
}

func TestBirnbaumSeries(t *testing.T) {
	// Series system of 2: dR/dp1 = p2.
	m := New(2)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	f := m.And(a, b)
	p := []float64{0.9, 0.8}
	got, err := m.Birnbaum(f, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.8) > 1e-15 {
		t.Errorf("birnbaum = %g, want 0.8", got)
	}
}

func TestMinimalCutSetsBridge(t *testing.T) {
	// Failure function of the classic bridge network (components 0..4,
	// variable true = component FAILED). Min cuts: {0,1}, {3,4},
	// {0,2,4}, {1,2,3}.
	m := New(5)
	v := make([]Ref, 5)
	for i := range v {
		v[i] = mustVar(t, m, i)
	}
	f := m.OrN(
		m.And(v[0], v[1]),
		m.And(v[3], v[4]),
		m.AndN(v[0], v[2], v[4]),
		m.AndN(v[1], v[2], v[3]),
	)
	cuts := m.MinimalCutSets(f)
	want := []CutSet{{0, 1}, {3, 4}, {0, 2, 4}, {1, 2, 3}}
	if len(cuts) != len(want) {
		t.Fatalf("got %d cut sets %v, want %d", len(cuts), cuts, len(want))
	}
	for i := range want {
		if len(cuts[i]) != len(want[i]) {
			t.Fatalf("cut %d = %v, want %v", i, cuts[i], want[i])
		}
		for j := range want[i] {
			if cuts[i][j] != want[i][j] {
				t.Fatalf("cut %d = %v, want %v", i, cuts[i], want[i])
			}
		}
	}
}

func TestMinimalCutSetsSubsumption(t *testing.T) {
	// f = a ∨ (a∧b): the only minimal cut is {a}.
	m := New(2)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	f := m.Or(a, m.And(a, b))
	cuts := m.MinimalCutSets(f)
	if len(cuts) != 1 || len(cuts[0]) != 1 || cuts[0][0] != 0 {
		t.Fatalf("cuts = %v, want [[0]]", cuts)
	}
}

func TestMinimize(t *testing.T) {
	in := []CutSet{{0, 1, 2}, {0, 1}, {2}, {0, 2}}
	out := Minimize(in)
	want := []CutSet{{2}, {0, 1}}
	if len(out) != len(want) {
		t.Fatalf("minimize = %v, want %v", out, want)
	}
}

func TestSatCount(t *testing.T) {
	m := New(3)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	f := m.And(a, b) // satisfied by a=b=1, c free: 2 assignments.
	if got := m.SatCount(f); got != 2 {
		t.Errorf("satcount = %g, want 2", got)
	}
	if got := m.SatCount(True); got != 8 {
		t.Errorf("satcount(True) = %g, want 8", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Errorf("satcount(False) = %g, want 0", got)
	}
}

func TestProbMatchesTruthTableProperty(t *testing.T) {
	// Property: for random 4-var functions built from random connective
	// trees, Prob with p=0.5 equals SatCount/16.
	f := func(ops [7]uint8, leaves [8]uint8) bool {
		m := New(4)
		build := func() Ref {
			stack := make([]Ref, 0, 8)
			for _, l := range leaves {
				v, _ := m.Var(int(l) % 4)
				if l%2 == 0 {
					v = m.Not(v)
				}
				stack = append(stack, v)
			}
			for _, op := range ops {
				if len(stack) < 2 {
					break
				}
				a := stack[len(stack)-1]
				b := stack[len(stack)-2]
				stack = stack[:len(stack)-2]
				var r Ref
				switch op % 3 {
				case 0:
					r = m.And(a, b)
				case 1:
					r = m.Or(a, b)
				default:
					r = m.Xor(a, b)
				}
				stack = append(stack, r)
			}
			return stack[0]
		}
		g := build()
		p, err := m.Prob(g, []float64{0.5, 0.5, 0.5, 0.5})
		if err != nil {
			return false
		}
		return math.Abs(p-m.SatCount(g)/16) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeSharing(t *testing.T) {
	m := New(20)
	vars := make([]Ref, 20)
	for i := range vars {
		vars[i] = mustVar(t, m, i)
	}
	f, err := m.KofN(10, vars)
	if err != nil {
		t.Fatal(err)
	}
	// k-of-n BDD size is O(k(n-k)) with sharing, far below 2^20.
	if n := m.NodeCount(f); n > 500 {
		t.Errorf("10-of-20 BDD has %d nodes; sharing broken", n)
	}
}
