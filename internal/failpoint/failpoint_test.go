package failpoint

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestInjectUnarmedIsNil(t *testing.T) {
	t.Cleanup(Reset)
	if err := Inject("nothing.armed"); err != nil {
		t.Fatalf("unarmed Inject returned %v", err)
	}
}

func TestErrorAction(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("x.err", "error(broken pipe)"); err != nil {
		t.Fatal(err)
	}
	err := Inject("x.err")
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("Inject = %v, want *failpoint.Error", err)
	}
	if fe.Name != "x.err" || !strings.Contains(fe.Error(), "broken pipe") {
		t.Errorf("error = %v", fe)
	}
	if fe.FailureClass() != ClassInjected {
		t.Errorf("FailureClass = %q, want %q", fe.FailureClass(), ClassInjected)
	}
	// Arming one point must not trip others.
	if err := Inject("x.other"); err != nil {
		t.Errorf("unarmed sibling tripped: %v", err)
	}
}

func TestPanicAction(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("x.panic", "panic(boom)"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		fe, ok := r.(*Error)
		if !ok || fe.Msg != "boom" {
			t.Errorf("recovered %v, want *failpoint.Error{Msg: boom}", r)
		}
	}()
	_ = Inject("x.panic")
	t.Fatal("panic action did not panic")
}

func TestDelayAction(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("x.delay", "delay(30ms)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("x.delay"); err != nil {
		t.Fatalf("delay returned %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("delay waited only %v", d)
	}
}

func TestDelayRespectsContext(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("x.delay", "delay(5s)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := InjectCtx(ctx, "x.delay"); err != nil {
		t.Fatalf("delay returned %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("canceled delay still waited %v", d)
	}
}

func TestOneInNTrigger(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("x.nth", "1-in-3->error"); err != nil {
		t.Fatal(err)
	}
	var trips int
	for i := 0; i < 9; i++ {
		if Inject("x.nth") != nil {
			trips++
		}
	}
	if trips != 3 {
		t.Errorf("1-in-3 over 9 calls tripped %d times, want 3", trips)
	}
	// First call fires (deterministic phase), so chaos runs hit the
	// failpoint even with few evaluations.
	Reset()
	if err := Arm("x.nth", "1-in-100->error"); err != nil {
		t.Fatal(err)
	}
	if Inject("x.nth") == nil {
		t.Error("1-in-100 did not fire on the first evaluation")
	}
}

func TestAfterAndTimesTriggers(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("x.after", "after(3)->error"); err != nil {
		t.Fatal(err)
	}
	got := []bool{Inject("x.after") != nil, Inject("x.after") != nil, Inject("x.after") != nil, Inject("x.after") != nil}
	want := []bool{false, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("after(3) call %d fired=%v, want %v", i+1, got[i], want[i])
		}
	}

	if err := Arm("x.times", "times(2)->error"); err != nil {
		t.Fatal(err)
	}
	var trips int
	for i := 0; i < 10; i++ {
		if Inject("x.times") != nil {
			trips++
		}
	}
	if trips != 2 {
		t.Errorf("times(2) tripped %d times, want 2", trips)
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	t.Cleanup(Reset)
	run := func() []bool {
		Reset()
		if err := Arm("x.p", "p(0.3,42)->error"); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 40)
		for i := range out {
			out[i] = Inject("x.p") != nil
		}
		return out
	}
	a, b := run(), run()
	var trips int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded runs diverge at call %d", i)
		}
		if a[i] {
			trips++
		}
	}
	if trips == 0 || trips == len(a) {
		t.Errorf("p(0.3) tripped %d/%d times; trigger looks degenerate", trips, len(a))
	}
}

func TestArmScheduleAndStats(t *testing.T) {
	t.Cleanup(Reset)
	err := ArmSchedule("a.one:error; b.two:1-in-2->delay(1ms); ;c.three:panic(x)")
	if err != nil {
		t.Fatal(err)
	}
	_ = Inject("a.one")
	_ = Inject("a.one")
	st := Stats()
	if len(st) != 3 {
		t.Fatalf("Stats len = %d, want 3: %+v", len(st), st)
	}
	if st[0].Name != "a.one" || st[0].Calls != 2 || st[0].Trips != 2 {
		t.Errorf("a.one stats = %+v", st[0])
	}
}

func TestArmFromEnv(t *testing.T) {
	t.Cleanup(Reset)
	env := map[string]string{EnvVar: "e.one:error;e.two:error"}
	n, err := ArmFromEnv(func(k string) string { return env[k] })
	if err != nil || n != 2 {
		t.Fatalf("ArmFromEnv = %d, %v; want 2, nil", n, err)
	}
	if Inject("e.one") == nil || Inject("e.two") == nil {
		t.Error("env-armed failpoints did not trip")
	}
	n, err = ArmFromEnv(func(string) string { return "" })
	if err != nil || n != 0 {
		t.Errorf("empty env armed %d, %v", n, err)
	}
}

func TestBadSpecs(t *testing.T) {
	t.Cleanup(Reset)
	for _, spec := range []string{
		"", "explode", "delay(nope)", "delay(-1s)", "1-in-0->error",
		"p(2,1)->error", "p(0.5)->error", "after(x)->error", "wat->error",
	} {
		if err := Arm("x.bad", spec); err == nil {
			t.Errorf("Arm(%q) accepted", spec)
		}
	}
	if err := ArmSchedule("missing-colon-spec"); err == nil {
		t.Error("ArmSchedule accepted entry without colon")
	}
}

func TestDisarmAndOnTrip(t *testing.T) {
	t.Cleanup(Reset)
	var mu sync.Mutex
	var names []string
	SetOnTrip(func(name string) {
		mu.Lock()
		names = append(names, name)
		mu.Unlock()
	})
	defer SetOnTrip(nil)
	if err := Arm("x.hook", "error"); err != nil {
		t.Fatal(err)
	}
	_ = Inject("x.hook")
	Disarm("x.hook")
	if err := Inject("x.hook"); err != nil {
		t.Errorf("disarmed point tripped: %v", err)
	}
	Disarm("x.hook") // double-disarm is a no-op
	mu.Lock()
	defer mu.Unlock()
	if len(names) != 1 || names[0] != "x.hook" {
		t.Errorf("OnTrip saw %v, want [x.hook]", names)
	}
}

func TestConcurrentInject(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("x.conc", "1-in-2->error"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const goroutines, per = 8, 500
	trips := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if Inject("x.conc") != nil {
					trips[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	var total int
	for _, n := range trips {
		total += n
	}
	if total != goroutines*per/2 {
		t.Errorf("1-in-2 under concurrency tripped %d/%d", total, goroutines*per)
	}
}

func BenchmarkInjectDisarmed(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Inject("bench.off"); err != nil {
			b.Fatal(err)
		}
	}
}
