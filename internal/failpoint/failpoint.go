// Package failpoint is a zero-dependency, deterministic fault-injection
// registry. Code under test declares named failpoints by calling Inject
// (or InjectCtx) at interesting places — solver sweep boundaries, node
// allocation, request handling — and the call compiles down to one atomic
// load unless something armed the registry, so production binaries pay
// nothing for the instrumentation.
//
// A failpoint is armed with a spec string:
//
//	spec    := [trigger "->"] action
//	action  := "error" | "error(" msg ")"
//	         | "panic" | "panic(" msg ")"
//	         | "delay(" duration ")"
//	trigger := "1-in-" N            fire on every Nth evaluation (1st, N+1th, …)
//	         | "after(" N ")"       fire from the Nth evaluation on
//	         | "times(" N ")"       fire at most N times, then disarm the trigger
//	         | "p(" prob "," seed ")"  fire with probability prob from a
//	                                   seeded PRNG (splitmix64), so chaos
//	                                   runs replay bit-for-bit
//
// Multiple failpoints arm at once from a schedule string
// ("name:spec;name:spec", also accepted via the RELFAIL environment
// variable), which is how `relcli serve -failpoints` and `relcli chaos`
// drive the registry.
//
// The error action returns a *Error whose FailureClass is "injected" —
// guard fallback chains treat it as escalatable, so injection exercises
// the same degraded paths a real solver failure would. The panic action
// panics with a *Error value, exercising the guard panic-isolation
// boundaries. The delay action blocks (respecting the context in
// InjectCtx) to widen race windows and trip deadlines.
package failpoint

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ClassInjected is the guard failure class carried by injected errors.
// Declared here (guard mirrors it) so this package stays dependency-free.
const ClassInjected = "injected"

// Error is the typed error returned (or panicked) by a tripped failpoint.
type Error struct {
	// Name is the failpoint that tripped.
	Name string
	// Msg is the optional message from the spec.
	Msg string
}

// Error implements error.
func (e *Error) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("failpoint %s: %s", e.Name, e.Msg)
	}
	return fmt.Sprintf("failpoint %s tripped", e.Name)
}

// FailureClass implements guard.Classed so fallback chains escalate past
// an injected failure the way they escalate past a real one.
func (e *Error) FailureClass() string { return ClassInjected }

// action is what a tripped failpoint does.
type actionKind int

const (
	actError actionKind = iota
	actPanic
	actDelay
)

// point is one armed failpoint.
type point struct {
	name string
	spec string

	action actionKind
	msg    string
	delay  time.Duration

	// Trigger state. calls counts evaluations, trips counts firings; both
	// are read by Stats for chaos-run reporting.
	mu     sync.Mutex
	everyN int64 // 1-in-N (0 = always)
	after  int64 // fire from this evaluation on (0 = always)
	times  int64 // max firings (0 = unlimited)
	prob   float64
	seeded bool
	prng   uint64 // splitmix64 state
	calls  int64
	trips  int64
}

// registry is the process-global failpoint table. armedCount gates the
// Inject fast path: zero armed failpoints means Inject is one atomic load
// and a return.
var (
	regMu      sync.RWMutex
	registry   = map[string]*point{}
	armedCount atomic.Int32
	onTrip     atomic.Value // func(name string)
)

// EnvVar is the environment variable ArmFromEnv reads.
const EnvVar = "RELFAIL"

// SetOnTrip installs a hook called with the failpoint name on every trip
// (nil clears it). The serve layer uses it to count trips in the metrics
// registry without this package importing it.
func SetOnTrip(fn func(name string)) {
	if fn == nil {
		onTrip.Store((func(string))(nil))
		return
	}
	onTrip.Store(fn)
}

// Arm arms (or re-arms) one failpoint from a spec string.
func Arm(name, spec string) error {
	if name == "" {
		return fmt.Errorf("failpoint: empty name")
	}
	p, err := parseSpec(name, spec)
	if err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, exists := registry[name]; !exists {
		armedCount.Add(1)
	}
	registry[name] = p
	return nil
}

// Disarm removes one failpoint; unknown names are a no-op.
func Disarm(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, exists := registry[name]; exists {
		delete(registry, name)
		armedCount.Add(-1)
	}
}

// Reset disarms everything. Tests and the chaos harness call it in
// cleanup so stray failpoints cannot leak across runs.
func Reset() {
	regMu.Lock()
	defer regMu.Unlock()
	for name := range registry {
		delete(registry, name)
		armedCount.Add(-1)
	}
}

// ArmSchedule arms every "name:spec" pair in a ;-separated schedule.
func ArmSchedule(schedule string) error {
	for _, entry := range strings.Split(schedule, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, spec, ok := strings.Cut(entry, ":")
		if !ok {
			return fmt.Errorf("failpoint: schedule entry %q is not name:spec", entry)
		}
		if err := Arm(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// ArmFromEnv arms the schedule in $RELFAIL, returning how many failpoints
// it armed. An unset or empty variable arms nothing.
func ArmFromEnv(getenv func(string) string) (int, error) {
	schedule := getenv(EnvVar)
	if schedule == "" {
		return 0, nil
	}
	before := int(armedCount.Load())
	if err := ArmSchedule(schedule); err != nil {
		return 0, err
	}
	return int(armedCount.Load()) - before, nil
}

// Status reports one armed failpoint's configuration and counters.
type Status struct {
	Name  string `json:"name"`
	Spec  string `json:"spec"`
	Calls int64  `json:"calls"`
	Trips int64  `json:"trips"`
}

// Stats lists every armed failpoint sorted by name.
func Stats() []Status {
	regMu.RLock()
	out := make([]Status, 0, len(registry))
	for _, p := range registry {
		p.mu.Lock()
		out = append(out, Status{Name: p.name, Spec: p.spec, Calls: p.calls, Trips: p.trips})
		p.mu.Unlock()
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Inject evaluates the named failpoint. When nothing is armed it costs a
// single atomic load. An armed point that triggers either returns a
// *Error, panics with one, or delays and returns nil, per its action.
func Inject(name string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	return inject(name, nil)
}

// InjectCtx is Inject with a cancellable delay: a delay action waits on a
// timer or ctx.Done, whichever fires first, and returns nil either way
// (the interrupted caller sees its own context error at the next guard
// check).
func InjectCtx(ctx context.Context, name string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	return inject(name, done)
}

func inject(name string, done <-chan struct{}) error {
	regMu.RLock()
	p := registry[name]
	regMu.RUnlock()
	if p == nil || !p.fire() {
		return nil
	}
	if fn, _ := onTrip.Load().(func(string)); fn != nil {
		fn(name)
	}
	switch p.action {
	case actPanic:
		panic(&Error{Name: name, Msg: p.msg}) //numvet:allow panic the panic action exists to exercise guard panic isolation
	case actDelay:
		timer := time.NewTimer(p.delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-done:
		}
		return nil
	default:
		return &Error{Name: name, Msg: p.msg}
	}
}

// fire advances the trigger state and reports whether the point trips on
// this evaluation.
func (p *point) fire() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	if p.times > 0 && p.trips >= p.times {
		return false
	}
	if p.after > 0 && p.calls < p.after {
		return false
	}
	if p.everyN > 1 && (p.calls-1)%p.everyN != 0 {
		return false
	}
	if p.seeded {
		p.prng = splitmix64(p.prng)
		// Top 53 bits → uniform float in [0,1).
		if float64(p.prng>>11)/(1<<53) >= p.prob {
			return false
		}
	}
	p.trips++
	return true
}

// splitmix64 is the PRNG behind the p(prob,seed) trigger: tiny, seedable,
// and identical on every platform, so a chaos schedule replays exactly.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// parseSpec compiles one spec string into a point.
func parseSpec(name, spec string) (*point, error) {
	p := &point{name: name, spec: spec}
	rest := strings.TrimSpace(spec)
	if trigger, action, ok := strings.Cut(rest, "->"); ok {
		if err := p.parseTrigger(strings.TrimSpace(trigger)); err != nil {
			return nil, err
		}
		rest = strings.TrimSpace(action)
	}
	if err := p.parseAction(rest); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *point) parseTrigger(s string) error {
	switch {
	case strings.HasPrefix(s, "1-in-"):
		n, err := strconv.ParseInt(s[len("1-in-"):], 10, 64)
		if err != nil || n < 1 {
			return fmt.Errorf("failpoint %s: bad trigger %q (want 1-in-N, N >= 1)", p.name, s)
		}
		p.everyN = n
	case strings.HasPrefix(s, "after(") && strings.HasSuffix(s, ")"):
		n, err := strconv.ParseInt(s[len("after("):len(s)-1], 10, 64)
		if err != nil || n < 1 {
			return fmt.Errorf("failpoint %s: bad trigger %q (want after(N), N >= 1)", p.name, s)
		}
		p.after = n
	case strings.HasPrefix(s, "times(") && strings.HasSuffix(s, ")"):
		n, err := strconv.ParseInt(s[len("times("):len(s)-1], 10, 64)
		if err != nil || n < 1 {
			return fmt.Errorf("failpoint %s: bad trigger %q (want times(N), N >= 1)", p.name, s)
		}
		p.times = n
	case strings.HasPrefix(s, "p(") && strings.HasSuffix(s, ")"):
		probStr, seedStr, ok := strings.Cut(s[len("p("):len(s)-1], ",")
		if !ok {
			return fmt.Errorf("failpoint %s: bad trigger %q (want p(prob,seed))", p.name, s)
		}
		prob, err := strconv.ParseFloat(strings.TrimSpace(probStr), 64)
		if err != nil || prob < 0 || prob > 1 {
			return fmt.Errorf("failpoint %s: bad probability in %q (want [0,1])", p.name, s)
		}
		seed, err := strconv.ParseUint(strings.TrimSpace(seedStr), 10, 64)
		if err != nil {
			return fmt.Errorf("failpoint %s: bad seed in %q", p.name, s)
		}
		p.prob, p.seeded, p.prng = prob, true, seed
	default:
		return fmt.Errorf("failpoint %s: unknown trigger %q", p.name, s)
	}
	return nil
}

func (p *point) parseAction(s string) error {
	arg := func(prefix string) (string, bool) {
		if strings.HasPrefix(s, prefix+"(") && strings.HasSuffix(s, ")") {
			return s[len(prefix)+1 : len(s)-1], true
		}
		return "", false
	}
	switch {
	case s == "error":
		p.action = actError
	case s == "panic":
		p.action = actPanic
	default:
		if msg, ok := arg("error"); ok {
			p.action, p.msg = actError, msg
			return nil
		}
		if msg, ok := arg("panic"); ok {
			p.action, p.msg = actPanic, msg
			return nil
		}
		if ds, ok := arg("delay"); ok {
			d, err := time.ParseDuration(ds)
			if err != nil || d < 0 {
				return fmt.Errorf("failpoint %s: bad delay %q", p.name, ds)
			}
			p.action, p.delay = actDelay, d
			return nil
		}
		return fmt.Errorf("failpoint %s: unknown action %q (want error, panic, delay(d))", p.name, s)
	}
	return nil
}
