package rbd

import (
	"fmt"
)

// FullImportance extends Importance with the Fussell–Vesely measure and is
// evaluated against arbitrary per-component unreliabilities, so it serves
// both mission-time (reliability) and steady-state (availability) studies.
type FullImportance struct {
	Component string
	// Birnbaum is ∂R_sys/∂R_i.
	Birnbaum float64
	// Criticality is Birnbaum·q_i/Q_sys.
	Criticality float64
	// FussellVesely approximates P(some cut containing i is failed |
	// system failed) by the rare-event quotient over minimal cut sets.
	FussellVesely float64
}

// ImportanceWith computes all importance measures with component
// unreliability supplied by q (probability the component is DOWN).
func (m *Model) ImportanceWith(q func(*Component) float64) ([]FullImportance, error) {
	p := make([]float64, len(m.comps))
	for i, c := range m.comps {
		qi := q(c)
		if qi < 0 || qi > 1 {
			return nil, fmt.Errorf("rbd: unreliability %g for %q outside [0,1]", qi, c.Name)
		}
		p[i] = 1 - qi
	}
	sysR, err := m.mgr.Prob(m.success, p)
	if err != nil {
		return nil, err
	}
	sysQ := 1 - sysR
	// Fussell–Vesely numerators from the failure-side minimal cut sets.
	fvNum := make([]float64, len(m.comps))
	for _, cut := range m.dualMgr.MinimalCutSets(m.failure) {
		prod := 1.0
		for _, v := range cut {
			prod *= 1 - p[v]
		}
		for _, v := range cut {
			fvNum[v] += prod
		}
	}
	out := make([]FullImportance, len(m.comps))
	for i, c := range m.comps {
		b, err := m.mgr.Birnbaum(m.success, p, i)
		if err != nil {
			return nil, err
		}
		fi := FullImportance{Component: c.Name, Birnbaum: b}
		if sysQ > 0 {
			fi.Criticality = b * (1 - p[i]) / sysQ
			fv := fvNum[i] / sysQ
			if fv > 1 {
				fv = 1
			}
			fi.FussellVesely = fv
		}
		out[i] = fi
	}
	return out, nil
}

// AvailabilityImportance evaluates the importance measures at each
// component's steady-state unavailability MTTR/(MTTF+MTTR); this is the
// ranking used to direct design effort in availability studies (which
// component's improvement buys the most system uptime).
func (m *Model) AvailabilityImportance() ([]FullImportance, error) {
	return m.ImportanceWith(func(c *Component) float64 {
		if c.Repair == nil {
			// No repair: treat as eventually-down only for mission-style
			// studies; availability importance requires repair.
			return 1
		}
		mttf := c.Lifetime.Mean()
		mttr := c.Repair.Mean()
		return mttr / (mttf + mttr)
	})
}

// MissionImportance evaluates the importance measures at mission time t
// with no repair (unreliability F_i(t)).
func (m *Model) MissionImportance(t float64) ([]FullImportance, error) {
	return m.ImportanceWith(func(c *Component) float64 {
		return c.Lifetime.CDF(t)
	})
}

// UnavailabilityContribution returns, per component, the system
// unavailability reduction from making that component perfect (q_i = 0) —
// the "what if we fixed X completely" ranking used in the tutorial's
// industrial studies.
func (m *Model) UnavailabilityContribution() (map[string]float64, error) {
	baseQ, err := m.systemUnavailability(nil)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(m.comps))
	for _, c := range m.comps {
		perfect := c
		q, err := m.systemUnavailability(perfect)
		if err != nil {
			return nil, err
		}
		out[c.Name] = baseQ - q
	}
	return out, nil
}

// systemUnavailability computes 1 - availability, optionally treating one
// component as perfect.
func (m *Model) systemUnavailability(perfect *Component) (float64, error) {
	a, err := m.Probability2(func(c *Component) (float64, error) {
		if c == perfect {
			return 1, nil
		}
		if c.Repair == nil {
			return 0, fmt.Errorf("%w: %q", ErrNoRepair, c.Name)
		}
		mttf := c.Lifetime.Mean()
		mttr := c.Repair.Mean()
		return mttf / (mttf + mttr), nil
	})
	if err != nil {
		return 0, err
	}
	return 1 - a, nil
}
