package rbd

import (
	"math"
	"testing"

	"repro/internal/dist"
)

func TestMissionImportanceSeriesClosedForm(t *testing.T) {
	// Series of two: Birnbaum_1 = R_2(t); FV of each component is 1-ish
	// relative to its cut (each is a singleton cut).
	a := comp(t, "a", 2)
	b := comp(t, "b", 0.5)
	m, err := New(Series(Comp(a), Comp(b)))
	if err != nil {
		t.Fatal(err)
	}
	at := 0.4
	imps, err := m.MissionImportance(at)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FullImportance{}
	for _, im := range imps {
		byName[im.Component] = im
	}
	wantBa := math.Exp(-0.5 * at) // R_b
	if relErr(byName["a"].Birnbaum, wantBa) > 1e-12 {
		t.Errorf("Birnbaum(a) = %g, want %g", byName["a"].Birnbaum, wantBa)
	}
	// The weaker component (a, rate 2) has higher FV in a series system.
	if byName["a"].FussellVesely <= byName["b"].FussellVesely {
		t.Errorf("FV(a)=%g should exceed FV(b)=%g",
			byName["a"].FussellVesely, byName["b"].FussellVesely)
	}
}

func TestAvailabilityImportanceRanksSPOF(t *testing.T) {
	// Redundant pair in series with a single point of failure: the SPOF
	// dominates every availability-importance measure.
	spof := repairable(t, "spof", 0.001, 0.5)
	r1 := repairable(t, "r1", 0.01, 0.5)
	r2 := repairable(t, "r2", 0.01, 0.5)
	m, err := New(Series(Comp(spof), Parallel(Comp(r1), Comp(r2))))
	if err != nil {
		t.Fatal(err)
	}
	imps, err := m.AvailabilityImportance()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FullImportance{}
	for _, im := range imps {
		byName[im.Component] = im
	}
	if byName["spof"].Birnbaum <= byName["r1"].Birnbaum {
		t.Errorf("SPOF Birnbaum %g should exceed redundant %g",
			byName["spof"].Birnbaum, byName["r1"].Birnbaum)
	}
	if byName["spof"].FussellVesely <= byName["r1"].FussellVesely {
		t.Errorf("SPOF FV %g should exceed redundant %g",
			byName["spof"].FussellVesely, byName["r1"].FussellVesely)
	}
}

func TestUnavailabilityContribution(t *testing.T) {
	spof := repairable(t, "spof", 0.001, 0.5)
	r1 := repairable(t, "r1", 0.01, 0.5)
	r2 := repairable(t, "r2", 0.01, 0.5)
	m, err := New(Series(Comp(spof), Parallel(Comp(r1), Comp(r2))))
	if err != nil {
		t.Fatal(err)
	}
	contrib, err := m.UnavailabilityContribution()
	if err != nil {
		t.Fatal(err)
	}
	if contrib["spof"] <= contrib["r1"] {
		t.Errorf("fixing the SPOF (%g) should buy more than fixing r1 (%g)",
			contrib["spof"], contrib["r1"])
	}
	// Sanity: fixing the SPOF removes its whole unavailability share.
	base := 1.0
	{
		a, err := m.SteadyStateAvailability()
		if err != nil {
			t.Fatal(err)
		}
		base = 1 - a
	}
	if contrib["spof"] < 0 || contrib["spof"] > base {
		t.Errorf("contribution %g outside [0, %g]", contrib["spof"], base)
	}
}

func TestImportanceWithValidation(t *testing.T) {
	c := comp(t, "c", 1)
	m, err := New(Comp(c))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ImportanceWith(func(*Component) float64 { return 1.5 }); err == nil {
		t.Error("unreliability > 1 accepted")
	}
	// UnavailabilityContribution without repair errors.
	if _, err := m.UnavailabilityContribution(); err == nil {
		t.Error("missing repair accepted")
	}
}

func TestMissionImportanceWeibull(t *testing.T) {
	w, err := dist.NewWeibull(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	cw := &Component{Name: "wear", Lifetime: w}
	ce := comp(t, "const", 0.05)
	m, err := New(Series(Comp(cw), Comp(ce)))
	if err != nil {
		t.Fatal(err)
	}
	imps, err := m.MissionImportance(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != 2 {
		t.Fatalf("imps = %v", imps)
	}
	for _, im := range imps {
		if im.Birnbaum <= 0 || im.Birnbaum > 1 {
			t.Errorf("Birnbaum(%s) = %g outside (0,1]", im.Component, im.Birnbaum)
		}
	}
}
