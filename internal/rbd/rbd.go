// Package rbd implements reliability block diagrams: series, parallel,
// k-of-n, and arbitrary compositions thereof, including repeated components
// (the same component appearing in several places). The structure function
// is compiled to a BDD over component-up variables, so all measures —
// reliability at time t, MTTF, availability, importance — are exact even
// with shared components, at cost linear in the BDD size.
//
// RBDs are the first of the tutorial's non-state-space model types: they
// assume statistically independent components and derive their efficiency
// from that assumption.
package rbd

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bdd"
	"repro/internal/dist"
	"repro/internal/guard"
	"repro/internal/linalg"
)

// Component is a physical or logical unit with a lifetime distribution and,
// optionally, a repair-time distribution (used for availability measures).
type Component struct {
	// Name identifies the component in reports; it must be unique per model.
	Name string
	// Lifetime is the time-to-failure distribution. Required.
	Lifetime dist.Distribution
	// Repair is the time-to-repair distribution. Optional; required only
	// for availability measures.
	Repair dist.Distribution
}

// Block is a node of the block-diagram structure tree. Blocks are created
// with Comp, Series, Parallel, and KOfN.
type Block struct {
	kind     blockKind
	k        int
	comp     *Component
	children []*Block
}

type blockKind int

const (
	kindComp blockKind = iota + 1
	kindSeries
	kindParallel
	kindKofN
)

// Comp wraps a component as a leaf block. The same *Component may appear in
// multiple leaves; it is treated as one variable (a repeated component).
func Comp(c *Component) *Block {
	return &Block{kind: kindComp, comp: c}
}

// Series returns a block that is up iff all children are up.
func Series(children ...*Block) *Block {
	return &Block{kind: kindSeries, children: children}
}

// Parallel returns a block that is up iff at least one child is up.
func Parallel(children ...*Block) *Block {
	return &Block{kind: kindParallel, children: children}
}

// KOfN returns a block that is up iff at least k children are up.
func KOfN(k int, children ...*Block) *Block {
	return &Block{kind: kindKofN, k: k, children: children}
}

// Model is a compiled reliability block diagram.
type Model struct {
	comps   []*Component
	index   map[*Component]int
	mgr     *bdd.Manager
	success bdd.Ref // over up-variables
	dualMgr *bdd.Manager
	failure bdd.Ref // over down-variables (for minimal cut sets)
}

// Errors returned by model construction and measures.
var (
	ErrEmptyModel   = errors.New("rbd: model has no components")
	ErrNoRepair     = errors.New("rbd: component lacks a repair distribution")
	ErrNotBuildable = errors.New("rbd: malformed block structure")
)

// New compiles the block structure rooted at root into a model.
func New(root *Block) (*Model, error) {
	if root == nil {
		return nil, ErrNotBuildable
	}
	m := &Model{index: make(map[*Component]int)}
	if err := m.collect(root); err != nil {
		return nil, err
	}
	if len(m.comps) == 0 {
		return nil, ErrEmptyModel
	}
	names := make(map[string]bool, len(m.comps))
	for _, c := range m.comps {
		if names[c.Name] {
			return nil, fmt.Errorf("rbd: duplicate component name %q", c.Name)
		}
		names[c.Name] = true
	}
	m.mgr = bdd.New(len(m.comps))
	up, err := m.compile(m.mgr, root, false)
	if err != nil {
		return nil, err
	}
	m.success = up
	m.dualMgr = bdd.New(len(m.comps))
	down, err := m.compile(m.dualMgr, root, true)
	if err != nil {
		return nil, err
	}
	m.failure = down
	if err := m.mgr.AllocFailure(); err != nil {
		return nil, err
	}
	if err := m.dualMgr.AllocFailure(); err != nil {
		return nil, err
	}
	return m, nil
}

// collect registers every distinct component in deterministic order.
func (m *Model) collect(b *Block) error {
	switch b.kind {
	case kindComp:
		if b.comp == nil {
			return fmt.Errorf("%w: nil component leaf", ErrNotBuildable)
		}
		if b.comp.Lifetime == nil {
			return fmt.Errorf("rbd: component %q has no lifetime distribution", b.comp.Name)
		}
		if _, ok := m.index[b.comp]; !ok {
			m.index[b.comp] = len(m.comps)
			m.comps = append(m.comps, b.comp)
		}
		return nil
	case kindSeries, kindParallel, kindKofN:
		if len(b.children) == 0 {
			return fmt.Errorf("%w: empty composite block", ErrNotBuildable)
		}
		if b.kind == kindKofN && (b.k < 1 || b.k > len(b.children)) {
			return fmt.Errorf("%w: k=%d with %d children", ErrNotBuildable, b.k, len(b.children))
		}
		for _, c := range b.children {
			if c == nil {
				return fmt.Errorf("%w: nil child block", ErrNotBuildable)
			}
			if err := m.collect(c); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown block kind %d", ErrNotBuildable, b.kind)
	}
}

// compile builds the structure function. With dual=false variables mean
// "component up" and the function means "system up"; with dual=true
// variables mean "component failed" and the function means "system failed"
// (series↔parallel swap, k-of-n ↔ (n-k+1)-of-n).
func (m *Model) compile(mgr *bdd.Manager, b *Block, dual bool) (bdd.Ref, error) {
	switch b.kind {
	case kindComp:
		return mgr.Var(m.index[b.comp])
	case kindSeries, kindParallel, kindKofN:
		refs := make([]bdd.Ref, len(b.children))
		for i, c := range b.children {
			r, err := m.compile(mgr, c, dual)
			if err != nil {
				return bdd.False, err
			}
			refs[i] = r
		}
		kind := b.kind
		k := b.k
		if dual {
			switch kind {
			case kindSeries:
				kind = kindParallel
			case kindParallel:
				kind = kindSeries
			case kindKofN:
				k = len(refs) - b.k + 1
			}
		}
		switch kind {
		case kindSeries:
			return mgr.AndN(refs...), nil
		case kindParallel:
			return mgr.OrN(refs...), nil
		default:
			return mgr.KofN(k, refs)
		}
	default:
		return bdd.False, fmt.Errorf("%w: unknown block kind %d", ErrNotBuildable, b.kind)
	}
}

// Components returns the model's components in variable order.
func (m *Model) Components() []*Component {
	out := make([]*Component, len(m.comps))
	copy(out, m.comps)
	return out
}

// BDDSize returns the node count of the success-function BDD, a measure of
// model complexity.
func (m *Model) BDDSize() int { return m.mgr.NodeCount(m.success) }

// BDDStats returns the underlying BDD manager's node and ITE-cache
// counters (for solver telemetry).
func (m *Model) BDDStats() bdd.Stats { return m.mgr.Stats() }

// Probability returns the system up-probability given per-component
// up-probabilities supplied by up.
func (m *Model) Probability(up func(*Component) float64) (float64, error) {
	p := make([]float64, len(m.comps))
	for i, c := range m.comps {
		p[i] = up(c)
	}
	return m.mgr.Prob(m.success, p)
}

// ReliabilityAt returns the system reliability R(t) assuming no repair:
// each component is up with probability 1 - F_i(t).
func (m *Model) ReliabilityAt(t float64) (float64, error) {
	return m.Probability(func(c *Component) float64 {
		return dist.Survival(c.Lifetime, t)
	})
}

// MTTF returns ∫₀^∞ R(t) dt by adaptive quadrature. The tolerance is
// relative: a coarse fixed-grid pass estimates the magnitude, then the
// adaptive pass refines to ~9 significant digits.
func (m *Model) MTTF() (float64, error) {
	var firstErr error
	f := func(t float64) float64 {
		r, err := m.ReliabilityAt(t)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return r
	}
	g := func(x float64) float64 {
		if x >= 1 {
			return 0
		}
		t := x / (1 - x)
		return f(t) / ((1 - x) * (1 - x))
	}
	rough := linalg.Simpson(g, 0, 1-1e-9, 200)
	tol := 1e-9 * (1 + math.Abs(rough))
	val := linalg.AdaptiveSimpson(g, 0, 1-1e-12, tol)
	if firstErr != nil {
		return 0, firstErr
	}
	if math.IsNaN(val) || val < 0 {
		return 0, fmt.Errorf("rbd: MTTF integration produced %g", val)
	}
	return val, nil
}

// SteadyStateAvailability returns the long-run system availability with
// each component independently repaired: A_i = MTTF_i / (MTTF_i + MTTR_i).
// Every component must have a repair distribution.
func (m *Model) SteadyStateAvailability() (float64, error) {
	return m.Probability2(func(c *Component) (float64, error) {
		if c.Repair == nil {
			return 0, fmt.Errorf("%w: %q", ErrNoRepair, c.Name)
		}
		mttf := c.Lifetime.Mean()
		mttr := c.Repair.Mean()
		return mttf / (mttf + mttr), nil
	})
}

// Probability2 is Probability with an error-returning probability source.
func (m *Model) Probability2(up func(*Component) (float64, error)) (float64, error) {
	p := make([]float64, len(m.comps))
	for i, c := range m.comps {
		v, err := up(c)
		if err != nil {
			return 0, err
		}
		p[i] = v
	}
	return m.mgr.Prob(m.success, p)
}

// InstantAvailability returns the system availability at time t when every
// component has exponential lifetime (rate λ) and repair (rate μ), using the
// closed form A_i(t) = μ/(λ+μ) + λ/(λ+μ)·e^{-(λ+μ)t}.
func (m *Model) InstantAvailability(t float64) (float64, error) {
	return m.Probability2(func(c *Component) (float64, error) {
		lt, ok := c.Lifetime.(dist.Exponential)
		if !ok {
			return 0, fmt.Errorf("rbd: component %q lifetime is %v; instantaneous availability needs exponential",
				c.Name, c.Lifetime)
		}
		if c.Repair == nil {
			return 0, fmt.Errorf("%w: %q", ErrNoRepair, c.Name)
		}
		rp, ok := c.Repair.(dist.Exponential)
		if !ok {
			return 0, fmt.Errorf("rbd: component %q repair is %v; instantaneous availability needs exponential",
				c.Name, c.Repair)
		}
		lam, mu := lt.Rate(), rp.Rate()
		s := lam + mu
		return mu/s + lam/s*math.Exp(-s*t), nil
	})
}

// MinimalCutSets returns the minimal sets of component names whose joint
// failure brings the system down.
func (m *Model) MinimalCutSets() [][]string {
	return m.nameSets(m.dualMgr.MinimalCutSets(m.failure))
}

// MinimalPathSets returns the minimal sets of component names whose joint
// functioning keeps the system up.
func (m *Model) MinimalPathSets() [][]string {
	return m.nameSets(m.mgr.MinimalCutSets(m.success))
}

// UnreliabilityBoundLogAt returns the natural log of the rare-event upper
// bound on system unreliability at mission time t, computed from the
// minimal cut sets entirely in log space. For highly redundant systems the
// per-cut product (e.g. five 1e-80 component unreliabilities) underflows
// float64 — the linear-domain bound degenerates to 0 while the log-space
// bound stays informative.
func (m *Model) UnreliabilityBoundLogAt(t float64) (float64, error) {
	if t < 0 || math.IsNaN(t) {
		return 0, fmt.Errorf("rbd: bad mission time %g", t)
	}
	cuts := m.dualMgr.MinimalCutSets(m.failure)
	logs := make([]float64, len(cuts))
	for i, c := range cuts {
		ps := make([]float64, len(c))
		for j, v := range c {
			ps[j] = m.comps[v].Lifetime.CDF(t)
		}
		lc, err := guard.LogCutProb(ps)
		if err != nil {
			return 0, fmt.Errorf("rbd: cut %d: %w", i, err)
		}
		logs[i] = lc
	}
	return guard.LogRareEvent(logs), nil
}

func (m *Model) nameSets(cuts []bdd.CutSet) [][]string {
	out := make([][]string, len(cuts))
	for i, c := range cuts {
		names := make([]string, len(c))
		for j, v := range c {
			names[j] = m.comps[v].Name
		}
		out[i] = names
	}
	return out
}

// Importance holds the standard component-importance measures evaluated at
// a mission time.
type Importance struct {
	Component   string
	Birnbaum    float64 // ∂R_sys/∂R_i
	Criticality float64 // P(i critical and failed | system failed)
}

// ImportanceAt computes Birnbaum and criticality importance for every
// component at mission time t (no repair).
func (m *Model) ImportanceAt(t float64) ([]Importance, error) {
	p := make([]float64, len(m.comps))
	for i, c := range m.comps {
		p[i] = dist.Survival(c.Lifetime, t)
	}
	sysR, err := m.mgr.Prob(m.success, p)
	if err != nil {
		return nil, err
	}
	out := make([]Importance, len(m.comps))
	for i, c := range m.comps {
		b, err := m.mgr.Birnbaum(m.success, p, i)
		if err != nil {
			return nil, err
		}
		crit := 0.0
		if sysU := 1 - sysR; sysU > 0 {
			crit = b * (1 - p[i]) / sysU
		}
		out[i] = Importance{Component: c.Name, Birnbaum: b, Criticality: crit}
	}
	return out, nil
}
