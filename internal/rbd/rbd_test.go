package rbd

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
)

func comp(t *testing.T, name string, failRate float64) *Component {
	t.Helper()
	return &Component{Name: name, Lifetime: dist.MustExponential(failRate)}
}

func repairable(t *testing.T, name string, failRate, repairRate float64) *Component {
	t.Helper()
	return &Component{
		Name:     name,
		Lifetime: dist.MustExponential(failRate),
		Repair:   dist.MustExponential(repairRate),
	}
}

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Abs(b); m > 1e-300 {
		return d / m
	}
	return d
}

func TestSeriesReliability(t *testing.T) {
	// Series of exponential components: R(t) = e^{-(λ1+λ2+λ3)t}.
	a, b, c := comp(t, "a", 1), comp(t, "b", 2), comp(t, "c", 3)
	m, err := New(Series(Comp(a), Comp(b), Comp(c)))
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.1, 0.5, 1} {
		got, err := m.ReliabilityAt(tt)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(-6 * tt)
		if relErr(got, want) > 1e-12 {
			t.Errorf("R(%g) = %g, want %g", tt, got, want)
		}
	}
	mttf, err := m.MTTF()
	if err != nil {
		t.Fatal(err)
	}
	if relErr(mttf, 1.0/6) > 1e-6 {
		t.Errorf("MTTF = %g, want 1/6", mttf)
	}
}

func TestParallelReliability(t *testing.T) {
	// Two-unit parallel, identical rate λ: MTTF = 3/(2λ).
	a, b := comp(t, "a", 2), comp(t, "b", 2)
	m, err := New(Parallel(Comp(a), Comp(b)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.ReliabilityAt(1)
	if err != nil {
		t.Fatal(err)
	}
	e := math.Exp(-2.0)
	want := 2*e - e*e
	if relErr(got, want) > 1e-12 {
		t.Errorf("R(1) = %g, want %g", got, want)
	}
	mttf, err := m.MTTF()
	if err != nil {
		t.Fatal(err)
	}
	if relErr(mttf, 3.0/4) > 1e-6 {
		t.Errorf("MTTF = %g, want 0.75", mttf)
	}
}

func TestKofNReliability(t *testing.T) {
	// 2-of-3 identical: R = 3R²-2R³, MTTF = 5/(6λ).
	cs := []*Block{Comp(comp(t, "a", 1)), Comp(comp(t, "b", 1)), Comp(comp(t, "c", 1))}
	m, err := New(KOfN(2, cs...))
	if err != nil {
		t.Fatal(err)
	}
	r := math.Exp(-0.7)
	got, err := m.ReliabilityAt(0.7)
	if err != nil {
		t.Fatal(err)
	}
	want := 3*r*r - 2*r*r*r
	if relErr(got, want) > 1e-12 {
		t.Errorf("R = %g, want %g", got, want)
	}
	mttf, err := m.MTTF()
	if err != nil {
		t.Fatal(err)
	}
	if relErr(mttf, 5.0/6) > 1e-6 {
		t.Errorf("MTTF = %g, want 5/6", mttf)
	}
}

func TestRepeatedComponent(t *testing.T) {
	// Shared power supply: (P and A) or (P and B). With P repeated,
	// R = P·(A+B-AB), NOT the gate-independent value.
	p, a, b := comp(t, "P", 1), comp(t, "A", 1), comp(t, "B", 1)
	m, err := New(Parallel(
		Series(Comp(p), Comp(a)),
		Series(Comp(p), Comp(b)),
	))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Components()) != 3 {
		t.Fatalf("components = %d, want 3 (P deduplicated)", len(m.Components()))
	}
	at := 0.5
	r := math.Exp(-at)
	got, err := m.ReliabilityAt(at)
	if err != nil {
		t.Fatal(err)
	}
	want := r * (2*r - r*r)
	if relErr(got, want) > 1e-12 {
		t.Errorf("R = %g, want %g", got, want)
	}
}

func TestBridgeNetworkStructure(t *testing.T) {
	// Classic bridge as paths: {1,4},{2,5},{1,3,5},{2,3,4}.
	c1, c2, c3, c4, c5 := comp(t, "1", 1), comp(t, "2", 1), comp(t, "3", 1), comp(t, "4", 1), comp(t, "5", 1)
	m, err := New(Parallel(
		Series(Comp(c1), Comp(c4)),
		Series(Comp(c2), Comp(c5)),
		Series(Comp(c1), Comp(c3), Comp(c5)),
		Series(Comp(c2), Comp(c3), Comp(c4)),
	))
	if err != nil {
		t.Fatal(err)
	}
	// All components prob q: known bridge polynomial
	// R = 2q² + 2q³ - 5q⁴ + 2q⁵  (for identical q).
	q := 0.9
	got, err := m.Probability(func(*Component) float64 { return q })
	if err != nil {
		t.Fatal(err)
	}
	want := 2*math.Pow(q, 2) + 2*math.Pow(q, 3) - 5*math.Pow(q, 4) + 2*math.Pow(q, 5)
	if relErr(got, want) > 1e-12 {
		t.Errorf("bridge R = %.12g, want %.12g", got, want)
	}
	cuts := m.MinimalCutSets()
	if len(cuts) != 4 {
		t.Fatalf("cut sets = %v, want 4 sets", cuts)
	}
	paths := m.MinimalPathSets()
	if len(paths) != 4 {
		t.Fatalf("path sets = %v, want 4 sets", paths)
	}
}

func TestSteadyStateAvailability(t *testing.T) {
	// Single component: A = μ/(λ+μ).
	c := repairable(t, "c", 0.001, 0.5)
	m, err := New(Comp(c))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.SteadyStateAvailability()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 / 0.501
	if relErr(got, want) > 1e-12 {
		t.Errorf("A = %.12g, want %.12g", got, want)
	}
	// Parallel pair of the same spec: 1-(1-A)².
	c2 := repairable(t, "c2", 0.001, 0.5)
	mp, err := New(Parallel(Comp(c), Comp(c2)))
	if err != nil {
		t.Fatal(err)
	}
	got, err = mp.SteadyStateAvailability()
	if err != nil {
		t.Fatal(err)
	}
	wantP := 1 - (1-want)*(1-want)
	if relErr(got, wantP) > 1e-12 {
		t.Errorf("parallel A = %.12g, want %.12g", got, wantP)
	}
}

func TestAvailabilityRequiresRepair(t *testing.T) {
	m, err := New(Comp(comp(t, "norep", 1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SteadyStateAvailability(); !errors.Is(err, ErrNoRepair) {
		t.Fatalf("want ErrNoRepair, got %v", err)
	}
}

func TestInstantAvailability(t *testing.T) {
	lam, mu := 0.2, 2.0
	c := repairable(t, "c", lam, mu)
	m, err := New(Comp(c))
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 0.5, 3, 100} {
		got, err := m.InstantAvailability(tt)
		if err != nil {
			t.Fatal(err)
		}
		s := lam + mu
		want := mu/s + lam/s*math.Exp(-s*tt)
		if relErr(got, want) > 1e-12 {
			t.Errorf("A(%g) = %g, want %g", tt, got, want)
		}
	}
	// At t=0 availability is 1; as t→∞ it approaches steady state.
	a0, _ := m.InstantAvailability(0)
	if relErr(a0, 1) > 1e-12 {
		t.Errorf("A(0) = %g, want 1", a0)
	}
}

func TestImportanceSeriesWeakestLink(t *testing.T) {
	// In a series system the least reliable component has the highest
	// Birnbaum importance.
	weak := comp(t, "weak", 5)
	strong := comp(t, "strong", 0.1)
	m, err := New(Series(Comp(weak), Comp(strong)))
	if err != nil {
		t.Fatal(err)
	}
	imp, err := m.ImportanceAt(0.3)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Importance{}
	for _, im := range imp {
		byName[im.Component] = im
	}
	// Birnbaum of weak = R_strong > Birnbaum of strong = R_weak.
	if byName["weak"].Birnbaum <= byName["strong"].Birnbaum {
		t.Errorf("weak birnbaum %g should exceed strong %g",
			byName["weak"].Birnbaum, byName["strong"].Birnbaum)
	}
	wantWeak := math.Exp(-0.1 * 0.3)
	if relErr(byName["weak"].Birnbaum, wantWeak) > 1e-12 {
		t.Errorf("birnbaum(weak) = %g, want %g", byName["weak"].Birnbaum, wantWeak)
	}
}

func TestConstructionErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("want error for nil root")
	}
	if _, err := New(Series()); err == nil {
		t.Error("want error for empty series")
	}
	if _, err := New(Comp(nil)); err == nil {
		t.Error("want error for nil component")
	}
	if _, err := New(KOfN(5, Comp(comp(t, "x", 1)))); err == nil {
		t.Error("want error for k > n")
	}
	dup1 := comp(t, "same", 1)
	dup2 := comp(t, "same", 2)
	if _, err := New(Series(Comp(dup1), Comp(dup2))); err == nil {
		t.Error("want error for duplicate names")
	}
	noLife := &Component{Name: "nolife"}
	if _, err := New(Comp(noLife)); err == nil {
		t.Error("want error for missing lifetime")
	}
}

func TestLargeSeriesParallelScales(t *testing.T) {
	// 100 components in series-of-parallel-pairs: BDD stays small.
	blocks := make([]*Block, 50)
	for i := 0; i < 50; i++ {
		a := comp(t, "a"+string(rune('0'+i/10))+string(rune('0'+i%10)), 1)
		b := comp(t, "b"+string(rune('0'+i/10))+string(rune('0'+i%10)), 1)
		blocks[i] = Parallel(Comp(a), Comp(b))
	}
	m, err := New(Series(blocks...))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Components()) != 100 {
		t.Fatalf("components = %d", len(m.Components()))
	}
	if m.BDDSize() > 1000 {
		t.Errorf("BDD size %d too large for series-parallel", m.BDDSize())
	}
	r := math.Exp(-0.01)
	got, err := m.Probability(func(*Component) float64 { return r })
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(2*r-r*r, 50)
	if relErr(got, want) > 1e-10 {
		t.Errorf("R = %g, want %g", got, want)
	}
}

func TestWeibullComponents(t *testing.T) {
	w, err := dist.NewWeibull(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	c := &Component{Name: "wear", Lifetime: w}
	m, err := New(Comp(c))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.ReliabilityAt(5)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-math.Pow(0.5, 2))
	if relErr(got, want) > 1e-12 {
		t.Errorf("R(5) = %g, want %g", got, want)
	}
	mttf, err := m.MTTF()
	if err != nil {
		t.Fatal(err)
	}
	if relErr(mttf, w.Mean()) > 1e-5 {
		t.Errorf("MTTF = %g, want %g", mttf, w.Mean())
	}
}

func TestRandomSeriesParallelMatchesRecursion(t *testing.T) {
	// Property: for random series-parallel structures over distinct
	// components, the BDD evaluation equals the direct recursion
	// (series → product, parallel → 1-∏(1-·)).
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 40; trial++ {
		counter := 0
		probs := map[string]float64{}
		var build func(depth int) (*Block, func() float64)
		build = func(depth int) (*Block, func() float64) {
			if depth >= 3 || rng.Float64() < 0.3 {
				name := "c" + itoaRBD(counter)
				counter++
				p := 0.05 + 0.9*rng.Float64()
				probs[name] = p
				c := &Component{Name: name, Lifetime: dist.MustExponential(1)}
				return Comp(c), func() float64 { return p }
			}
			n := 2 + rng.Intn(3)
			blocks := make([]*Block, n)
			evals := make([]func() float64, n)
			for i := range blocks {
				blocks[i], evals[i] = build(depth + 1)
			}
			if rng.Float64() < 0.5 {
				return Series(blocks...), func() float64 {
					v := 1.0
					for _, e := range evals {
						v *= e()
					}
					return v
				}
			}
			return Parallel(blocks...), func() float64 {
				v := 1.0
				for _, e := range evals {
					v *= 1 - e()
				}
				return 1 - v
			}
		}
		root, eval := build(0)
		m, err := New(root)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Probability(func(c *Component) float64 { return probs[c.Name] })
		if err != nil {
			t.Fatal(err)
		}
		want := eval()
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: BDD %g != recursion %g", trial, got, want)
		}
	}
}

func itoaRBD(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
