package jobs

import (
	"context"
	"os"
	"strings"
	"testing"

	"repro/internal/uncertainty"
)

func walLines(t *testing.T, path string) []string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
}

func writeWAL(t *testing.T, dir, id string, lines ...string) string {
	t.Helper()
	path := walPath(dir, id)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func specLine(t *testing.T, id string) string {
	t.Helper()
	dir := t.TempDir()
	w, err := openWAL(dir, id)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(&walRecord{T: "spec", ID: id, Spec: testSpec(60, 20, 1)}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	return walLines(t, walPath(dir, id))[0]
}

func shardLine(t *testing.T) string {
	t.Helper()
	spec := testSpec(60, 20, 1)
	spec.normalize()
	sw, err := compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := uncertainty.RunShard(context.Background(), sw.model(context.Background()), sw.params, sw.plan(0))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	w, err := openWAL(dir, "jx")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(&walRecord{T: "shard", Shard: st, Bitmap: "01", Done: 1}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	return walLines(t, walPath(dir, "jx"))[0]
}

// TestReplayToleratesTornTail pins the crash window: a record cut short
// mid-append is discarded, everything before it is trusted.
func TestReplayToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	spec := specLine(t, "j1")
	shard := shardLine(t)
	path := writeWAL(t, dir, "j1", spec, shard, shard[:len(shard)/2])
	j, err := replayWAL(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if j.id != "j1" || len(j.shards) != 1 {
		t.Fatalf("replayed id=%s shards=%d, want j1 with 1 shard", j.id, len(j.shards))
	}
	if j.state.terminal() {
		t.Fatal("incomplete log replayed as terminal")
	}
}

// TestReplayRejectsMidLogCorruption: a damaged line that is NOT the tail
// is corruption, not a crash artifact.
func TestReplayRejectsMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	spec := specLine(t, "j1")
	shard := shardLine(t)
	path := writeWAL(t, dir, "j1", spec, "{garbage", shard)
	if _, err := replayWAL(path); err == nil {
		t.Fatal("mid-log corruption accepted")
	}
}

func TestReplayRejectsStructuralDamage(t *testing.T) {
	dir := t.TempDir()
	spec := specLine(t, "j1")
	shard := shardLine(t)
	cases := map[string][]string{
		"no spec":          {shard, shard},
		"empty file":       {""},
		"unknown type":     {spec, `{"t":"mystery"}`, shard},
		"shard first":      {shard, spec},
		"corrupt estimate": {spec, strings.Replace(shard, `"count":`, `"count":-`, 1)},
	}
	for name, lines := range cases {
		path := writeWAL(t, dir, "j1", lines...)
		if _, err := replayWAL(path); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBitmapHex(t *testing.T) {
	done := map[int]*uncertainty.ShardState{0: {}, 3: {}, 8: {}}
	if got := bitmapHex(done, 10); got != "0901" {
		t.Fatalf("bitmap %q, want 0901", got)
	}
	if got := bitmapHex(nil, 4); got != "00" {
		t.Fatalf("empty bitmap %q, want 00", got)
	}
}

func TestScanWALsOrder(t *testing.T) {
	dir := t.TempDir()
	writeWAL(t, dir, "j2", "{}")
	writeWAL(t, dir, "j10", "{}")
	writeWAL(t, dir, "j1", "{}")
	if err := os.WriteFile(walPath(dir, "ignore")+".bak", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	paths, err := scanWALs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("scanned %d logs, want 3", len(paths))
	}
}
