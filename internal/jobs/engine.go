package jobs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/failpoint"
	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/uncertainty"
)

// Config configures an Engine.
type Config struct {
	// Dir is the checkpoint directory holding one write-ahead log per
	// job. Empty disables durability: jobs run in memory only and die
	// with the process.
	Dir string
	// Workers bounds concurrently running shards across all jobs
	// (default 4).
	Workers int
	// MaxRetries bounds retries per shard for escalatable failures
	// (default 4; a shard therefore runs at most MaxRetries+1 times).
	MaxRetries int
	// Backoff is the base retry delay, doubled per attempt with
	// deterministic jitter (default 50ms, capped at 2s).
	Backoff time.Duration
	// Registry receives the reljob_* metric families (default
	// metrics.Default()).
	Registry *metrics.Registry
	// Logf receives operational log lines (default: dropped).
	Logf func(format string, args ...any)
}

// engineMetrics holds the reljob_* instrument handles.
type engineMetrics struct {
	shards   *metrics.Counter
	jobs     *metrics.Counter
	samples  *metrics.Counter
	active   *metrics.Gauge
	progress *metrics.Gauge
	ckpt     *metrics.Histogram
	ckptErr  *metrics.Counter
}

// Engine runs sharded uncertainty sweeps asynchronously with durable
// checkpoints. All methods are safe for concurrent use.
type Engine struct {
	cfg        Config
	slots      chan struct{}
	rootCtx    context.Context
	rootCancel context.CancelFunc
	quit       chan struct{}
	wg         sync.WaitGroup
	m          engineMetrics

	mu       sync.Mutex
	jobs     map[string]*job
	byKey    map[string]string
	seq      int
	draining bool
}

// job is the engine-internal state of one sweep.
type job struct {
	id, key   string
	spec      *Spec
	total     int
	ctx       context.Context
	cancel    context.CancelFunc
	doneCh    chan struct{}
	wal       *wal
	submitted time.Time

	mu           sync.Mutex
	shards       map[int]*uncertainty.ShardState
	retries      int64
	resumed      bool
	userCanceled bool
	state        State
	errMsg       string
	result       *uncertainty.SweepResult
	finished     time.Time
}

// New builds an engine, creating the checkpoint directory when durable.
func New(cfg Config) (*Engine, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 4
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.Default()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("jobs: checkpoint dir: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg:        cfg,
		slots:      make(chan struct{}, cfg.Workers),
		rootCtx:    ctx,
		rootCancel: cancel,
		quit:       make(chan struct{}),
		jobs:       make(map[string]*job),
		byKey:      make(map[string]string),
	}
	reg := cfg.Registry
	e.m = engineMetrics{
		shards:   reg.NewCounter("reljob_shards_total", "Shard outcomes by state (done, retried, resumed, failed).", "state"),
		jobs:     reg.NewCounter("reljob_jobs_total", "Job lifecycle transitions by state.", "state"),
		samples:  reg.NewCounter("reljob_samples_done_total", "Model evaluations folded into checkpointed shards."),
		active:   reg.NewGauge("reljob_active_jobs", "Jobs currently running."),
		progress: reg.NewGauge("reljob_job_progress_ratio", "Completed-shard fraction per job.", "job"),
		ckpt:     reg.NewHistogram("reljob_checkpoint_seconds", "Write-ahead checkpoint append latency.", []float64{0.0001, 0.001, 0.01, 0.1, 1}),
		ckptErr:  reg.NewCounter("reljob_checkpoint_errors_total", "Write-ahead checkpoint appends that failed (shard stays in memory; resume recomputes)."),
	}
	return e, nil
}

// Recover replays every write-ahead log in the checkpoint directory:
// terminal jobs load as queryable history, incomplete jobs resume with
// their checkpointed shards pre-filled (only missing shards re-run). A
// log that fails replay is logged and skipped rather than bricking the
// engine. Returns the number of jobs resumed.
func (e *Engine) Recover() (int, error) {
	if e.cfg.Dir == "" {
		return 0, nil
	}
	paths, err := scanWALs(e.cfg.Dir)
	if err != nil {
		return 0, err
	}
	resumed := 0
	for _, path := range paths {
		wj, err := replayWAL(path)
		if err != nil {
			e.cfg.Logf("jobs: skipping unrecoverable log %s: %v", path, err)
			continue
		}
		if e.load(wj) {
			resumed++
		}
	}
	return resumed, nil
}

// load installs one replayed job, resuming it when incomplete.
func (e *Engine) load(wj *walJob) bool {
	sw, err := compile(wj.spec)
	if err != nil {
		e.cfg.Logf("jobs: %s: replayed spec no longer compiles: %v", wj.id, err)
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.jobs[wj.id]; ok {
		e.cfg.Logf("jobs: duplicate log for %s ignored", wj.id)
		return false
	}
	if n, err := strconv.Atoi(strings.TrimPrefix(wj.id, "j")); err == nil && n > e.seq {
		e.seq = n
	}
	ctx, cancel := context.WithCancel(e.rootCtx)
	j := &job{
		id: wj.id, key: wj.key, spec: wj.spec, total: wj.spec.shardCount(),
		ctx: ctx, cancel: cancel, doneCh: make(chan struct{}),
		shards: wj.shards, resumed: true,
		state: StateRunning, submitted: time.Now(), //numvet:allow nondeterminism wall-clock bookkeeping, never feeds the computation
	}
	e.jobs[wj.id] = j
	if wj.key != "" {
		e.byKey[wj.key] = wj.id
	}
	if wj.state.terminal() {
		j.state, j.errMsg, j.result = wj.state, wj.errMsg, wj.result
		j.finished = j.submitted
		close(j.doneCh)
		cancel()
		e.m.progress.Set(j.progressLocked(), j.id)
		return false
	}
	w, err := openWAL(e.cfg.Dir, wj.id)
	if err != nil {
		e.cfg.Logf("jobs: %s: cannot reopen log, resuming non-durably: %v", wj.id, err)
	} else {
		j.wal = w
	}
	e.m.shards.Add(float64(len(j.shards)), "resumed")
	e.m.jobs.Inc("resumed")
	e.m.active.Add(1)
	e.m.progress.Set(j.progressLocked(), j.id)
	e.wg.Add(1)
	go e.run(j, sw) //numvet:allow goroutine-no-ctx j carries its own cancelable context (j.ctx)
	return true
}

// Submit validates, persists, and starts a job. When idemKey is
// non-empty and a job with that key exists, the existing job's snapshot
// is returned with created=false and nothing new is started.
func (e *Engine) Submit(spec *Spec, idemKey string) (snap *Snapshot, created bool, err error) {
	spec.normalize()
	sw, err := compile(spec)
	if err != nil {
		return nil, false, err
	}
	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return nil, false, ErrDraining
	}
	if idemKey != "" {
		if id, ok := e.byKey[idemKey]; ok {
			j := e.jobs[id]
			e.mu.Unlock()
			return j.snapshot(), false, nil
		}
	}
	e.seq++
	id := "j" + strconv.Itoa(e.seq)
	ctx, cancel := context.WithCancel(e.rootCtx)
	j := &job{
		id: id, key: idemKey, spec: spec, total: spec.shardCount(),
		ctx: ctx, cancel: cancel, doneCh: make(chan struct{}),
		shards:    make(map[int]*uncertainty.ShardState),
		state:     StateRunning,
		submitted: time.Now(), //numvet:allow nondeterminism wall-clock bookkeeping, never feeds the computation
	}
	if e.cfg.Dir != "" {
		w, werr := openWAL(e.cfg.Dir, id)
		if werr == nil {
			werr = w.append(&walRecord{T: "spec", ID: id, Key: idemKey, Spec: spec})
		}
		if werr != nil {
			e.seq--
			e.mu.Unlock()
			cancel()
			if w != nil {
				w.Close() //numvet:allow ignored-err submission is already failing; the close is best-effort cleanup
			}
			return nil, false, fmt.Errorf("jobs: cannot persist job: %w", werr)
		}
		j.wal = w
	}
	e.jobs[id] = j
	if idemKey != "" {
		e.byKey[idemKey] = id
	}
	e.m.jobs.Inc("submitted")
	e.m.active.Add(1)
	e.m.progress.Set(0, id)
	e.wg.Add(1)
	e.mu.Unlock()
	go e.run(j, sw) //numvet:allow goroutine-no-ctx j carries its own cancelable context (j.ctx)
	return j.snapshot(), true, nil
}

// run executes a job's missing shards under the engine-wide worker
// limit, then folds and finalizes. It owns the job's WAL handle.
func (e *Engine) run(j *job, sw *sweep) {
	defer e.wg.Done()
	model := sw.model(j.ctx)
	j.mu.Lock()
	missing := make([]int, 0, j.total-len(j.shards))
	for i := 0; i < j.total; i++ {
		if _, ok := j.shards[i]; !ok {
			missing = append(missing, i)
		}
	}
	var failErr error
	j.mu.Unlock()
	var shardWG sync.WaitGroup
	for _, idx := range missing {
		shardWG.Add(1)
		go func(idx int) {
			defer shardWG.Done()
			select {
			case <-e.quit: // draining: queued shards stay queued
				return
			case <-j.ctx.Done():
				return
			case e.slots <- struct{}{}:
			}
			defer func() { <-e.slots }()
			// Re-check after winning the slot: a freed slot and a closed
			// quit channel race in the select above, and drain must not
			// keep feeding queued shards.
			select {
			case <-e.quit:
				return
			default:
			}
			st, err := e.runShard(j, sw, model, idx)
			if err != nil {
				j.mu.Lock()
				first := failErr == nil
				if first {
					failErr = err
				}
				j.mu.Unlock()
				// Sibling shards canceled by the first failure are not
				// failures themselves; count only the root cause.
				if first && !errors.Is(err, guard.ErrCanceled) && !errors.Is(err, guard.ErrDeadline) {
					e.m.shards.Inc("failed")
				}
				j.cancel() // first failure stops sibling shards
				return
			}
			e.checkpoint(j, st)
		}(idx)
	}
	shardWG.Wait()
	e.finish(j, failErr)
}

// runShard runs one shard with retry-on-escalatable-failure semantics:
// exponential backoff with deterministic jitter, bounded attempts, and
// the jobs.shard failpoint fired before every attempt.
func (e *Engine) runShard(j *job, sw *sweep, model uncertainty.Model, idx int) (*uncertainty.ShardState, error) {
	// The jitter stream is seeded from the sweep seed and shard index
	// (inverted so it never collides with the sample stream): retry
	// timing is reproducible under a fixed seed, like everything else.
	jit := uncertainty.ShardRNG(^sw.spec.Seed, idx)
	for attempt := 0; ; attempt++ { //numvet:allow unbounded-loop every iteration returns or increments attempt toward the MaxRetries return
		err := failpoint.InjectCtx(j.ctx, fpShard)
		var st *uncertainty.ShardState
		if err == nil {
			st, err = uncertainty.RunShard(j.ctx, model, sw.params, sw.plan(idx))
		}
		if err == nil {
			return st, nil
		}
		class := guard.Classify(err)
		if !class.Escalatable() || attempt >= e.cfg.MaxRetries {
			return nil, fmt.Errorf("jobs: shard %d attempt %d (class %s): %w", idx, attempt+1, class, err)
		}
		e.m.shards.Inc("retried")
		j.mu.Lock()
		j.retries++
		j.mu.Unlock()
		backoff := e.cfg.Backoff << attempt
		if backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
		backoff += time.Duration(jit.Int63n(int64(backoff)/2 + 1))
		e.cfg.Logf("jobs: %s shard %d attempt %d failed (%s), retrying in %v: %v", j.id, idx, attempt+1, class, backoff, err)
		if err := waitBackoff(j.ctx, backoff); err != nil {
			return nil, err
		}
	}
}

// waitBackoff sleeps interruptibly; a canceled context returns the
// typed guard interrupt instead of a bare sleep cut short.
func waitBackoff(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return guard.Ctx(ctx, "jobs.backoff", 0, math.NaN())
	case <-t.C:
		return nil
	}
}

// checkpoint folds a completed shard into the job and appends it to the
// write-ahead log. A failed append is counted and logged but does not
// fail the job: the shard result is still held in memory, and a resume
// after a crash merely recomputes it (determinism makes that safe).
func (e *Engine) checkpoint(j *job, st *uncertainty.ShardState) {
	j.mu.Lock()
	j.shards[st.Index] = st
	rec := &walRecord{T: "shard", Shard: st, Bitmap: bitmapHex(j.shards, j.total), Done: len(j.shards)}
	var werr error
	if j.wal != nil {
		// The jobs.checkpoint.write failpoint fires on shard checkpoints
		// (not the submit-time spec record) so chaos tests can prove a
		// lost checkpoint costs recomputation, never correctness.
		werr = failpoint.Inject(fpCheckpoint)
		if werr == nil {
			start := time.Now() //numvet:allow nondeterminism checkpoint latency metric, never feeds the computation
			werr = j.wal.append(rec)
			e.m.ckpt.Observe(time.Since(start).Seconds())
		}
	}
	progress := j.progressLocked()
	j.mu.Unlock()
	if werr != nil {
		e.m.ckptErr.Inc()
		e.cfg.Logf("jobs: %s shard %d checkpoint append failed (will recompute on resume): %v", j.id, st.Index, werr)
	}
	e.m.shards.Inc("done")
	e.m.samples.Add(float64(st.N))
	e.m.progress.Set(progress, j.id)
}

// finish decides the job's terminal state (or leaves it running when a
// drain/abort interrupted it — the WAL then carries it to the next
// process) and durably records the outcome.
func (e *Engine) finish(j *job, failErr error) {
	j.mu.Lock()
	defer func() {
		j.mu.Unlock()
		close(j.doneCh)
	}()
	if j.wal != nil {
		defer j.wal.Close()
	}
	interrupted := failErr != nil &&
		(errors.Is(failErr, guard.ErrCanceled) || errors.Is(failErr, guard.ErrDeadline)) &&
		!j.userCanceled
	switch {
	case len(j.shards) == j.total:
		ordered := make([]*uncertainty.ShardState, j.total)
		for i := range ordered {
			ordered[i] = j.shards[i]
		}
		result, err := uncertainty.FoldShards(ordered)
		if err != nil {
			e.terminalLocked(j, StateFailed, fmt.Sprintf("fold: %v", err), nil)
			return
		}
		e.terminalLocked(j, StateDone, "", result)
	case j.userCanceled:
		e.terminalLocked(j, StateCanceled, "", nil)
	case failErr != nil && !interrupted:
		e.terminalLocked(j, StateFailed, failErr.Error(), nil)
	default:
		// Drained or aborted mid-flight: no terminal record on purpose,
		// so the next process's Recover resumes from the checkpoints.
		e.m.active.Add(-1)
	}
}

// terminalLocked records a terminal transition; j.mu must be held.
func (e *Engine) terminalLocked(j *job, s State, msg string, result *uncertainty.SweepResult) {
	j.state, j.errMsg, j.result = s, msg, result
	j.finished = time.Now() //numvet:allow nondeterminism wall-clock bookkeeping, never feeds the computation
	if j.wal != nil {
		if err := j.wal.append(&walRecord{T: "end", State: s, Error: msg, Result: result}); err != nil {
			e.m.ckptErr.Inc()
			e.cfg.Logf("jobs: %s terminal record append failed: %v", j.id, err)
		}
	}
	e.m.jobs.Inc(string(s))
	e.m.active.Add(-1)
	e.m.progress.Set(j.progressLocked(), j.id)
}

// progressLocked returns the completed fraction; j.mu must be held.
func (j *job) progressLocked() float64 {
	if j.total == 0 {
		return 0
	}
	return float64(len(j.shards)) / float64(j.total)
}

// snapshot builds the external view of the job.
func (j *job) snapshot() *Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := &Snapshot{
		ID: j.id, State: j.state, Error: j.errMsg,
		Samples: j.spec.Samples, ShardSize: j.spec.ShardSize, Shards: j.total,
		DoneShards: len(j.shards), Retries: j.retries, Resumed: j.resumed,
		IdempotencyKey: j.key, Corr: j.spec.Corr, Submitted: j.submitted, Result: j.result,
	}
	if j.state.terminal() {
		t := j.finished
		s.Finished = &t
	}
	return s
}

// Get returns a job's snapshot.
func (e *Engine) Get(id string) (*Snapshot, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.snapshot(), nil
}

// List returns snapshots of every known job, ordered by numeric ID.
func (e *Engine) List() []*Snapshot {
	e.mu.Lock()
	js := make([]*job, 0, len(e.jobs))
	for _, j := range e.jobs {
		js = append(js, j)
	}
	e.mu.Unlock()
	out := make([]*Snapshot, 0, len(js))
	for _, j := range js {
		out = append(out, j.snapshot())
	}
	sort.Slice(out, func(a, b int) bool {
		na, _ := strconv.Atoi(strings.TrimPrefix(out[a].ID, "j"))
		nb, _ := strconv.Atoi(strings.TrimPrefix(out[b].ID, "j"))
		return na < nb
	})
	return out
}

// Cancel stops a running job and waits for it to reach a terminal
// state (shards observe cancellation at sample granularity, so the
// wait is bounded by one model evaluation).
func (e *Engine) Cancel(id string) (*Snapshot, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return nil, fmt.Errorf("%w: %s is %s", ErrTerminal, id, j.state)
	}
	j.userCanceled = true
	j.mu.Unlock()
	j.cancel()
	<-j.doneCh
	return j.snapshot(), nil
}

// Wait blocks until the job leaves the running state (or ctx expires)
// and returns its snapshot.
func (e *Engine) Wait(ctx context.Context, id string) (*Snapshot, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-j.doneCh:
		return j.snapshot(), nil
	}
}

// Close drains the engine: new submissions are refused, queued shards
// stay queued (their checkpoints carry them to the next process), and
// in-flight shards finish and checkpoint. If ctx expires first, the
// remaining shards are hard-canceled (still safe — an uncheckpointed
// shard is simply recomputed on resume).
func (e *Engine) Close(ctx context.Context) error {
	e.mu.Lock()
	if !e.draining {
		e.draining = true
		close(e.quit)
	}
	e.mu.Unlock()
	done := make(chan struct{})
	go func() { //numvet:allow goroutine-no-ctx bounded by wg.Wait; the select below handles ctx expiry
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		e.rootCancel()
		<-done
		return ctx.Err()
	}
}

// Abort simulates a crash for chaos tests: every shard is canceled
// immediately and nothing terminal is recorded, leaving exactly what a
// kill -9 would leave (the WAL's synced prefix).
func (e *Engine) Abort() {
	e.mu.Lock()
	if !e.draining {
		e.draining = true
		close(e.quit)
	}
	e.mu.Unlock()
	e.rootCancel()
	e.wg.Wait()
}
