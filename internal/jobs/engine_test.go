package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/metrics"
	"repro/internal/modelio"
)

// testModelJSON is a two-state repairable pair: availability mu/(mu+lam).
const testModelJSON = `{"type":"ctmc","name":"pair","ctmc":{"transitions":[{"from":"up","to":"down","rate":0.01},{"from":"down","to":"up","rate":1}],"upStates":["up"],"measures":["availability"]}}`

func testSpec(samples, shardSize int, seed uint64) *Spec {
	return &Spec{
		Model:   json.RawMessage(testModelJSON),
		Measure: "availability",
		Params: []ParamSpec{
			{Name: "lambda", Dist: &modelio.DistSpec{Kind: "lognormal", Mu: math.Log(0.01), Sigma: 0.3}, From: "up", To: "down"},
			{Name: "mu", Dist: &modelio.DistSpec{Kind: "gamma", Shape: 4, Rate: 4}, From: "down", To: "up"},
		},
		Samples:   samples,
		ShardSize: shardSize,
		Seed:      seed,
	}
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = time.Millisecond
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	return e
}

func waitDone(t *testing.T, e *Engine, id string) *Snapshot {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	snap, err := e.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestSubmitRunsToCompletion(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 4})
	snap, created, err := e.Submit(testSpec(200, 50, 7), "")
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("fresh submission reported as duplicate")
	}
	final := waitDone(t, e, snap.ID)
	if final.State != StateDone {
		t.Fatalf("state %s (%s), want done", final.State, final.Error)
	}
	if final.Result == nil || final.Result.N != 200 {
		t.Fatalf("result %+v, want N=200", final.Result)
	}
	if final.DoneShards != 4 || final.Shards != 4 {
		t.Fatalf("shards %d/%d, want 4/4", final.DoneShards, final.Shards)
	}
	if !(final.Result.Mean > 0.9 && final.Result.Mean < 1) {
		t.Fatalf("availability mean %g implausible", final.Result.Mean)
	}
	lo, _ := final.Result.Quantile(0.05)
	hi, _ := final.Result.Quantile(0.95)
	if !(lo < final.Result.Mean && final.Result.Mean < hi) {
		t.Fatalf("quantiles %g..%g do not bracket mean %g", lo, hi, final.Result.Mean)
	}
}

// TestResultIndependentOfWorkers pins the headline determinism claim:
// worker count changes scheduling only, never the folded bits.
func TestResultIndependentOfWorkers(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 8} {
		e := newTestEngine(t, Config{Workers: workers})
		snap, _, err := e.Submit(testSpec(160, 20, 99), "")
		if err != nil {
			t.Fatal(err)
		}
		final := waitDone(t, e, snap.ID)
		if final.State != StateDone {
			t.Fatalf("workers=%d: state %s (%s)", workers, final.State, final.Error)
		}
		blob, err := json.Marshal(final.Result)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = blob
		} else if string(ref) != string(blob) {
			t.Fatalf("result depends on worker count:\n%s\n%s", ref, blob)
		}
	}
}

func TestIdempotentSubmission(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	a, created, err := e.Submit(testSpec(40, 20, 1), "key-1")
	if err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	b, created, err := e.Submit(testSpec(40, 20, 1), "key-1")
	if err != nil {
		t.Fatal(err)
	}
	if created || b.ID != a.ID {
		t.Fatalf("re-submission created=%v id=%s, want dedup onto %s", created, b.ID, a.ID)
	}
	c, _, err := e.Submit(testSpec(40, 20, 1), "key-2")
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == a.ID {
		t.Fatal("distinct key deduped")
	}
	if b.IdempotencyKey != "key-1" {
		t.Fatalf("snapshot key %q, want key-1", b.IdempotencyKey)
	}
}

func TestBadSpecsRejected(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	bad := []func(*Spec){
		func(s *Spec) { s.Measure = "steadystate" }, // non-scalar
		func(s *Spec) { s.Model = json.RawMessage(`{"type":"rbd"}`) },
		func(s *Spec) { s.Params = nil },
		func(s *Spec) { s.Params[0].From = "nowhere" },
		func(s *Spec) { s.Params[1].Name = "lambda" }, // duplicate
		func(s *Spec) { s.Samples = 0 },
		func(s *Spec) { s.Quantiles = []float64{1.5} },
	}
	for i, mutate := range bad {
		s := testSpec(40, 20, 1)
		mutate(s)
		if _, _, err := e.Submit(s, ""); !errors.Is(err, ErrBadSpec) {
			t.Errorf("case %d: got %v, want ErrBadSpec", i, err)
		}
	}
	if _, err := ParseSpec([]byte(`{"unknown_field":1}`)); !errors.Is(err, ErrBadSpec) {
		t.Errorf("unknown field: got %v, want ErrBadSpec", err)
	}
}

func TestRetryOnInjectedFault(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	if err := failpoint.Arm(fpShard, "times(3)->error"); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	e := newTestEngine(t, Config{Workers: 2, Registry: reg})
	snap, _, err := e.Submit(testSpec(80, 20, 5), "")
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, e, snap.ID)
	if final.State != StateDone {
		t.Fatalf("state %s (%s), want done despite injected faults", final.State, final.Error)
	}
	if final.Retries < 3 {
		t.Fatalf("retries %d, want >= 3", final.Retries)
	}
	if got := e.m.shards.Value("retried"); got < 3 {
		t.Fatalf("reljob_shards_total{state=retried} = %g, want >= 3", got)
	}
}

func TestRetryExhaustionFailsJob(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	if err := failpoint.Arm(fpShard, "error"); err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, Config{Workers: 2, MaxRetries: 1})
	snap, _, err := e.Submit(testSpec(40, 20, 5), "")
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, e, snap.ID)
	if final.State != StateFailed || final.Error == "" {
		t.Fatalf("state %s error %q, want failed with message", final.State, final.Error)
	}
	if final.Result != nil {
		t.Fatal("failed job carries a result")
	}
}

func TestCancel(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	snap, _, err := e.Submit(testSpec(100000, 100, 3), "")
	if err != nil {
		t.Fatal(err)
	}
	canceled, err := e.Cancel(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if canceled.State != StateCanceled {
		t.Fatalf("state %s, want canceled", canceled.State)
	}
	if _, err := e.Cancel(snap.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("second cancel: got %v, want ErrTerminal", err)
	}
	if _, err := e.Cancel("j999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown cancel: got %v, want ErrUnknownJob", err)
	}
}

// TestKillResumeBitIdentical is the durability headline: a job killed
// mid-flight, recovered by a second engine on the same directory, must
// finish with exactly the bits an uninterrupted run produces.
func TestKillResumeBitIdentical(t *testing.T) {
	spec := func() *Spec { return testSpec(1000, 40, 2024) } // 25 shards

	// Reference: uninterrupted run (before the failpoint arms — the
	// registry is process-global).
	ref := newTestEngine(t, Config{Workers: 4, Dir: filepath.Join(t.TempDir(), "ref")})
	rs, _, err := ref.Submit(spec(), "")
	if err != nil {
		t.Fatal(err)
	}
	want := waitDone(t, ref, rs.ID)
	if want.State != StateDone {
		t.Fatalf("reference run: %s (%s)", want.State, want.Error)
	}

	// Victim: the first 5 shard attempts run normally, every later one
	// blocks on an interruptible delay — so the kill deterministically
	// lands mid-flight with partial progress checkpointed.
	t.Cleanup(failpoint.Reset)
	if err := failpoint.Arm(fpShard, "after(6)->delay(30s)"); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "jobs")
	victim, err := New(Config{Workers: 2, Dir: dir, Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	vs, _, err := victim.Submit(spec(), "sweep-2024")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap, err := victim.Get(vs.ID)
		if err != nil {
			t.Fatal(err)
		}
		if snap.DoneShards >= 2 {
			break
		}
		if snap.State.terminal() {
			t.Fatalf("victim finished before it could be killed: %s", snap.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("victim made no progress to kill")
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim.Abort()
	failpoint.Reset()

	// Survivor: recover on the same directory.
	reg := metrics.NewRegistry()
	survivor := newTestEngine(t, Config{Workers: 8, Dir: dir, Registry: reg, Logf: t.Logf})
	resumed, err := survivor.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("resumed %d jobs, want 1", resumed)
	}
	final := waitDone(t, survivor, vs.ID)
	if final.State != StateDone {
		t.Fatalf("resumed job: %s (%s)", final.State, final.Error)
	}
	if !final.Resumed {
		t.Fatal("snapshot does not mark the job resumed")
	}
	if final.IdempotencyKey != "sweep-2024" {
		t.Fatalf("idempotency key lost across restart: %q", final.IdempotencyKey)
	}
	if got := survivor.m.shards.Value("resumed"); got < 2 {
		t.Fatalf("reljob_shards_total{state=resumed} = %g, want >= 2", got)
	}

	gotJSON, _ := json.Marshal(final.Result)
	wantJSON, _ := json.Marshal(want.Result)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("resumed result differs from uninterrupted run:\n%s\n%s", gotJSON, wantJSON)
	}
	// Re-submitting the same idempotency key after recovery must dedup
	// onto the finished job, not start a new sweep.
	again, created, err := survivor.Submit(spec(), "sweep-2024")
	if err != nil {
		t.Fatal(err)
	}
	if created || again.ID != vs.ID {
		t.Fatalf("post-recovery idempotency broken: created=%v id=%s", created, again.ID)
	}
}

// TestDrainLeavesResumableWAL proves graceful drain parks queued shards
// durably instead of discarding them.
func TestDrainLeavesResumableWAL(t *testing.T) {
	// Shard attempts beyond the third slow down so the drain
	// deterministically catches the job mid-flight; the delayed shard
	// still finishes and checkpoints (graceful drain, not a kill).
	t.Cleanup(failpoint.Reset)
	if err := failpoint.Arm(fpShard, "after(3)->delay(200ms)"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	e, err := New(Config{Workers: 1, Dir: dir, Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := e.Submit(testSpec(2000, 40, 11), "")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		s, err := e.Get(snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		if s.DoneShards >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress before drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	failpoint.Reset()
	mid, err := e.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.State.terminal() {
		t.Fatalf("job reached %s before drain could park it", mid.State)
	}
	if _, _, err := e.Submit(testSpec(40, 20, 1), ""); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: got %v, want ErrDraining", err)
	}

	e2 := newTestEngine(t, Config{Workers: 4, Dir: dir})
	resumed, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("resumed %d, want 1", resumed)
	}
	final := waitDone(t, e2, snap.ID)
	if final.State != StateDone || final.Result.N != 2000 {
		t.Fatalf("drained job did not complete on resume: %+v", final)
	}
}

// TestCheckpointWriteFailureTolerated proves a failed WAL append costs
// recomputation on resume, never job failure.
func TestCheckpointWriteFailureTolerated(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	if err := failpoint.Arm(fpCheckpoint, "times(2)->error"); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	e := newTestEngine(t, Config{Workers: 2, Dir: t.TempDir(), Registry: reg})
	snap, _, err := e.Submit(testSpec(120, 20, 9), "")
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, e, snap.ID)
	if final.State != StateDone {
		t.Fatalf("state %s (%s), want done despite checkpoint faults", final.State, final.Error)
	}
	if got := e.m.ckptErr.Total(); got != 2 {
		t.Fatalf("reljob_checkpoint_errors_total = %g, want 2", got)
	}
}

func TestRecoverLoadsTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	e := newTestEngine(t, Config{Workers: 2, Dir: dir})
	snap, _, err := e.Submit(testSpec(40, 20, 13), "")
	if err != nil {
		t.Fatal(err)
	}
	done := waitDone(t, e, snap.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatal(err)
	}

	e2 := newTestEngine(t, Config{Workers: 2, Dir: dir})
	resumed, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 {
		t.Fatalf("terminal job resumed (%d), want history load only", resumed)
	}
	got, err := e2.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("recovered state %s, want done", got.State)
	}
	a, _ := json.Marshal(got.Result)
	b, _ := json.Marshal(done.Result)
	if string(a) != string(b) {
		t.Fatalf("recovered result drifted:\n%s\n%s", a, b)
	}
	// A fresh submission must not collide with the recovered ID space.
	fresh, _, err := e2.Submit(testSpec(40, 20, 14), "")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == snap.ID {
		t.Fatalf("ID %s reused after recovery", fresh.ID)
	}
}
