// Package jobs is a durable, crash-recoverable async job engine for
// sharded Monte Carlo uncertainty sweeps. A job takes a CTMC model
// document, a scalar measure, and a set of uncertain rate parameters,
// and estimates the output distribution over millions of samples in
// O(1) memory per job (exact moment sums plus streaming P² quantile
// estimators; see internal/uncertainty).
//
// The robustness contract:
//
//   - every shard is a pure function of (seed, shard index, shard size,
//     spec), so shards run on any worker, in any order, with any retry
//     history, and the folded result is bit-identical;
//   - each completed shard is appended to a per-job write-ahead log
//     (JSONL, fsync per record) together with the completed-shard
//     bitmap, so a killed process resumes incomplete jobs on restart
//     and finishes with the same bits an uninterrupted run produces;
//   - transient shard failures (injected faults, solver non-convergence)
//     retry with exponential backoff and deterministic jitter; failures
//     guard classifies as non-escalatable fail the job immediately;
//   - submission is idempotent: re-posting a spec with the same
//     idempotency key returns the existing job instead of a duplicate.
package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/modelio"
	"repro/internal/uncertainty"
)

// Failpoints this package declares (see internal/failpoint).
const (
	// fpShard injects a fault into a shard attempt before it runs —
	// the knob chaos tests use to exercise the retry path.
	fpShard = "jobs.shard"
	// fpCheckpoint injects a fault into a WAL checkpoint append — the
	// knob for proving that a lost checkpoint only costs recomputation,
	// never correctness.
	fpCheckpoint = "jobs.checkpoint.write"
)

// Typed sentinels, matched with errors.Is.
var (
	// ErrBadSpec reports a job specification that fails validation.
	ErrBadSpec = errors.New("jobs: invalid job spec")
	// ErrUnknownJob reports a lookup of a job ID the engine never saw.
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrDraining reports a submission against an engine that is
	// shutting down.
	ErrDraining = errors.New("jobs: engine draining")
	// ErrTerminal reports a cancel against a job that already finished.
	ErrTerminal = errors.New("jobs: job already terminal")
)

// ParamSpec declares one uncertain CTMC rate. The parameter targets
// every transition from From to To: with Scale false the sampled value
// replaces the rate, with Scale true it multiplies the declared rate
// (useful for "rate known to ±20%" style epistemic uncertainty).
type ParamSpec struct {
	Name  string            `json:"name"`
	Dist  *modelio.DistSpec `json:"dist"`
	From  string            `json:"from"`
	To    string            `json:"to"`
	Scale bool              `json:"scale,omitempty"`
}

// Spec is the submitted job document. Model is kept as raw JSON so the
// write-ahead log preserves the submitted document byte-for-byte —
// resume must replay exactly what was submitted, not a re-serialization.
type Spec struct {
	// Model is a full modelio document (currently type "ctmc" only).
	Model json.RawMessage `json:"model"`
	// Measure is the scalar CTMC measure swept: "availability" or "mtta".
	Measure string `json:"measure"`
	// Params are the uncertain rates.
	Params []ParamSpec `json:"params"`
	// Samples is the total number of model evaluations.
	Samples int `json:"samples"`
	// ShardSize is the number of samples per shard (default 1000).
	ShardSize int `json:"shard_size,omitempty"`
	// Seed seeds the sweep; every shard derives its own splitmix64
	// stream from (Seed, shard index).
	Seed uint64 `json:"seed"`
	// Quantiles are the tracked quantiles in (0,1); default
	// {0.05, 0.5, 0.95}.
	Quantiles []float64 `json:"quantiles,omitempty"`
	// Corr is the correlation ID of the submitting request, joining the
	// job (and its WAL record) to the request's traces and wide-event
	// log line. The serve layer overwrites whatever the client sent.
	Corr string `json:"corr,omitempty"`
}

// normalize fills defaults in place so the WAL records the effective
// values — a resumed job must not be re-defaulted by a newer binary.
func (s *Spec) normalize() {
	if s.ShardSize <= 0 {
		s.ShardSize = 1000
	}
	if s.ShardSize > s.Samples && s.Samples > 0 {
		s.ShardSize = s.Samples
	}
	if len(s.Quantiles) == 0 {
		s.Quantiles = []float64{0.05, 0.5, 0.95}
	}
}

// shardCount returns the number of shards the normalized spec cuts into.
func (s *Spec) shardCount() int {
	return (s.Samples + s.ShardSize - 1) / s.ShardSize
}

// State is a job lifecycle state.
type State string

const (
	// StateRunning marks a job with outstanding shards.
	StateRunning State = "running"
	// StateDone marks a successfully folded job.
	StateDone State = "done"
	// StateFailed marks a job aborted by a non-retryable (or
	// retry-exhausted) shard error.
	StateFailed State = "failed"
	// StateCanceled marks a job stopped by an explicit cancel.
	StateCanceled State = "canceled"
)

// terminal reports whether the state is final. The zero State (used by
// WAL replay for "no terminal record seen") is not terminal.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Snapshot is the externally visible view of a job, safe to serialize.
type Snapshot struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Error carries the failure message for StateFailed.
	Error string `json:"error,omitempty"`
	// Samples/ShardSize/Shards describe the normalized plan.
	Samples   int `json:"samples"`
	ShardSize int `json:"shard_size"`
	Shards    int `json:"shards"`
	// DoneShards counts checkpointed shards; Retries counts shard
	// attempts that failed and were retried.
	DoneShards int   `json:"done_shards"`
	Retries    int64 `json:"retries,omitempty"`
	// Resumed marks a job recovered from the write-ahead log after a
	// restart.
	Resumed bool `json:"resumed,omitempty"`
	// IdempotencyKey echoes the submission key, when one was given.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Corr echoes the submitting request's correlation ID.
	Corr string `json:"corr,omitempty"`
	// Submitted and Finished are wall-clock bookkeeping (reporting
	// only; they never influence the computation).
	Submitted time.Time  `json:"submitted"`
	Finished  *time.Time `json:"finished,omitempty"`
	// Result is the folded sweep summary, present once State is "done".
	Result *uncertainty.SweepResult `json:"result,omitempty"`
}

// Progress returns the completed-shard fraction in [0,1].
func (s *Snapshot) Progress() float64 {
	if s.Shards == 0 {
		return 0
	}
	return float64(s.DoneShards) / float64(s.Shards)
}

// ParseSpec decodes and validates a job document.
func ParseSpec(raw []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	s.normalize()
	if _, err := compile(&s); err != nil {
		return nil, err
	}
	return &s, nil
}
