package jobs

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/uncertainty"
)

// walSuffix names per-job log files inside the engine directory.
const walSuffix = ".wal.jsonl"

// walRecord is one JSONL line of a job's write-ahead log. Three record
// types share the struct, discriminated by T:
//
//	"spec"  — first line: job ID, idempotency key, normalized spec;
//	"shard" — one completed shard: its full checkpointable state plus
//	          the updated completed-shard bitmap (hex, LSB-first) and
//	          running done-count, so every line is a self-describing
//	          checkpoint of overall progress;
//	"end"   — terminal line: final state, folded result or error.
//
// Records are appended with O_APPEND and fsynced one at a time; replay
// tolerates a truncated final line (the crash window of an in-flight
// append) but rejects corruption anywhere earlier.
type walRecord struct {
	T string `json:"t"`

	// "spec" fields.
	ID   string `json:"id,omitempty"`
	Key  string `json:"key,omitempty"`
	Spec *Spec  `json:"spec,omitempty"`

	// "shard" fields.
	Shard  *uncertainty.ShardState `json:"shard,omitempty"`
	Bitmap string                  `json:"bitmap,omitempty"`
	Done   int                     `json:"done,omitempty"`

	// "end" fields.
	State  State                    `json:"state,omitempty"`
	Error  string                   `json:"error,omitempty"`
	Result *uncertainty.SweepResult `json:"result,omitempty"`
}

// wal is an append-only JSONL writer for one job.
type wal struct {
	f *os.File
}

// walPath returns the log path for a job ID.
func walPath(dir, id string) string {
	return filepath.Join(dir, id+walSuffix)
}

// openWAL opens (creating if needed) a job's log for appending.
func openWAL(dir, id string) (*wal, error) {
	f, err := os.OpenFile(walPath(dir, id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: open wal: %w", err)
	}
	return &wal{f: f}, nil
}

// append durably writes one record: marshal, single write, fsync.
func (w *wal) append(rec *walRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: marshal wal record: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.f.Write(b); err != nil {
		return fmt.Errorf("jobs: append wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("jobs: sync wal: %w", err)
	}
	return nil
}

// Close releases the file handle.
func (w *wal) Close() error { return w.f.Close() }

// bitmapHex renders the completed-shard set as an LSB-first hex bitmap.
func bitmapHex(done map[int]*uncertainty.ShardState, shards int) string {
	buf := make([]byte, (shards+7)/8)
	for i := range done {
		if i >= 0 && i < shards {
			buf[i/8] |= 1 << (i % 8)
		}
	}
	return hex.EncodeToString(buf)
}

// walJob is the replayed content of one job log.
type walJob struct {
	id, key string
	spec    *Spec
	shards  map[int]*uncertainty.ShardState
	state   State // "" when the log has no terminal record
	errMsg  string
	result  *uncertainty.SweepResult
}

// replayWAL reads one job log back. A truncated or malformed final line
// is discarded (it is the record that was mid-append when the process
// died); malformed earlier lines are corruption and fail the replay.
// Every shard record is structurally validated before it is trusted.
func replayWAL(path string) (*walJob, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("jobs: read wal: %w", err)
	}
	lines := strings.Split(string(raw), "\n")
	// Trailing element after the final newline is empty; drop it so the
	// "last line" truncation check sees the real last record.
	for len(lines) > 0 && strings.TrimSpace(lines[len(lines)-1]) == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("jobs: wal %s is empty", filepath.Base(path))
	}
	j := &walJob{shards: make(map[int]*uncertainty.ShardState)}
	for i, line := range lines {
		var rec walRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			if i == len(lines)-1 {
				break // torn tail from a crash mid-append
			}
			return nil, fmt.Errorf("jobs: wal %s line %d corrupt: %w", filepath.Base(path), i+1, err)
		}
		switch rec.T {
		case "spec":
			if i != 0 {
				return nil, fmt.Errorf("jobs: wal %s line %d: unexpected spec record", filepath.Base(path), i+1)
			}
			if rec.ID == "" || rec.Spec == nil {
				return nil, fmt.Errorf("jobs: wal %s: incomplete spec record", filepath.Base(path))
			}
			rec.Spec.normalize()
			if _, err := compile(rec.Spec); err != nil {
				return nil, fmt.Errorf("jobs: wal %s: %w", filepath.Base(path), err)
			}
			j.id, j.key, j.spec = rec.ID, rec.Key, rec.Spec
		case "shard":
			if j.spec == nil {
				return nil, fmt.Errorf("jobs: wal %s line %d: shard before spec", filepath.Base(path), i+1)
			}
			sh := rec.Shard
			if sh == nil {
				return nil, fmt.Errorf("jobs: wal %s line %d: empty shard record", filepath.Base(path), i+1)
			}
			if err := sh.Validate(); err != nil {
				return nil, fmt.Errorf("jobs: wal %s line %d: %w", filepath.Base(path), i+1, err)
			}
			if sh.Index >= j.spec.shardCount() {
				return nil, fmt.Errorf("jobs: wal %s line %d: shard index %d out of range", filepath.Base(path), i+1, sh.Index)
			}
			j.shards[sh.Index] = sh
		case "end":
			if j.spec == nil {
				return nil, fmt.Errorf("jobs: wal %s line %d: end before spec", filepath.Base(path), i+1)
			}
			j.state, j.errMsg, j.result = rec.State, rec.Error, rec.Result
		default:
			return nil, fmt.Errorf("jobs: wal %s line %d: unknown record type %q", filepath.Base(path), i+1, rec.T)
		}
	}
	if j.spec == nil {
		return nil, fmt.Errorf("jobs: wal %s has no spec record", filepath.Base(path))
	}
	return j, nil
}

// scanWALs lists the job logs in a directory, sorted by filename so
// recovery order is deterministic.
func scanWALs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: scan %s: %w", dir, err)
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), walSuffix) {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	return paths, nil
}
