package jobs

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/modelio"
	"repro/internal/uncertainty"
)

// sweep is a compiled job spec: the parsed model document, the
// uncertainty parameters, and the transition indices each parameter
// rewrites. Compilation happens once per submission (and once per
// resume) so the per-sample hot path only clones transitions and
// re-solves.
type sweep struct {
	spec    *Spec
	doc     *modelio.Spec
	params  []uncertainty.Param
	targets []paramTarget
}

// paramTarget maps one parameter onto the CTMC transitions it rewrites.
type paramTarget struct {
	name  string
	idxs  []int
	scale bool
}

// compile validates the spec and builds the sweep. Every validation
// failure wraps ErrBadSpec so the HTTP layer can answer 400 uniformly.
func compile(s *Spec) (*sweep, error) {
	if s.Samples <= 0 {
		return nil, fmt.Errorf("%w: samples must be positive, got %d", ErrBadSpec, s.Samples)
	}
	if len(s.Model) == 0 {
		return nil, fmt.Errorf("%w: missing model document", ErrBadSpec)
	}
	var doc modelio.Spec
	if err := json.Unmarshal(s.Model, &doc); err != nil {
		return nil, fmt.Errorf("%w: model document: %v", ErrBadSpec, err)
	}
	if doc.Type != "ctmc" || doc.CTMC == nil {
		return nil, fmt.Errorf("%w: sweeps support ctmc models only, got type %q", ErrBadSpec, doc.Type)
	}
	switch s.Measure {
	case "availability", "mtta":
	default:
		return nil, fmt.Errorf("%w: measure %q is not a scalar ctmc sweep measure (want availability or mtta)", ErrBadSpec, s.Measure)
	}
	if len(s.Params) == 0 {
		return nil, fmt.Errorf("%w: no uncertain parameters", ErrBadSpec)
	}
	for _, p := range s.Quantiles {
		if !(p > 0 && p < 1) {
			return nil, fmt.Errorf("%w: quantile %g outside (0,1)", ErrBadSpec, p)
		}
	}
	sw := &sweep{spec: s, doc: &doc}
	seen := make(map[string]bool, len(s.Params))
	for i, ps := range s.Params {
		if ps.Name == "" {
			return nil, fmt.Errorf("%w: parameter %d has no name", ErrBadSpec, i)
		}
		if seen[ps.Name] {
			return nil, fmt.Errorf("%w: duplicate parameter %q", ErrBadSpec, ps.Name)
		}
		seen[ps.Name] = true
		d, err := ps.Dist.Distribution()
		if err != nil {
			return nil, fmt.Errorf("%w: parameter %q: %v", ErrBadSpec, ps.Name, err)
		}
		t := paramTarget{name: ps.Name, scale: ps.Scale}
		for j, tr := range doc.CTMC.Transitions {
			if tr.From == ps.From && tr.To == ps.To {
				t.idxs = append(t.idxs, j)
			}
		}
		if len(t.idxs) == 0 {
			return nil, fmt.Errorf("%w: parameter %q targets no transition %s->%s", ErrBadSpec, ps.Name, ps.From, ps.To)
		}
		sw.params = append(sw.params, uncertainty.Param{Name: ps.Name, Dist: d})
		sw.targets = append(sw.targets, t)
	}
	return sw, nil
}

// plan returns the deterministic plan for shard i: every shard is
// ShardSize samples except a shorter final remainder shard.
func (sw *sweep) plan(i int) uncertainty.ShardPlan {
	s := sw.spec
	size := s.ShardSize
	if last := s.Samples - i*s.ShardSize; last < size {
		size = last
	}
	return uncertainty.ShardPlan{Index: i, Size: size, Seed: s.Seed, Quantiles: s.Quantiles}
}

// model builds the per-sample evaluator: rewrite the targeted transition
// rates with the sampled assignment, solve the single requested measure,
// return its value. The base document is never mutated — each evaluation
// works on a fresh transition slice, so concurrent shards share the
// compiled sweep safely.
func (sw *sweep) model(ctx context.Context) uncertainty.Model {
	base := sw.doc.CTMC
	measure := sw.spec.Measure
	return func(assign map[string]float64) (float64, error) {
		clone := *base
		clone.Transitions = append([]modelio.CTMCTransition(nil), base.Transitions...)
		clone.Measures = []string{measure}
		for _, t := range sw.targets {
			x := assign[t.name]
			for _, j := range t.idxs {
				if t.scale {
					clone.Transitions[j].Rate = base.Transitions[j].Rate * x
				} else {
					clone.Transitions[j].Rate = x
				}
				if !(clone.Transitions[j].Rate > 0) {
					return 0, fmt.Errorf("jobs: parameter %q drew non-positive rate %g", t.name, clone.Transitions[j].Rate)
				}
			}
		}
		results, err := modelio.SolveWithOptions(
			&modelio.Spec{Type: "ctmc", Name: sw.doc.Name, CTMC: &clone},
			modelio.SolveOptions{Context: ctx},
		)
		if err != nil {
			return 0, err
		}
		for _, r := range results {
			if r.Measure == measure {
				return r.Value, nil
			}
		}
		return 0, fmt.Errorf("jobs: solver returned no %q result", measure)
	}
}
