package spn

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the net as a Graphviz digraph in the conventional Petri
// net style: circles for places (labeled with initial tokens), bars for
// timed transitions, filled bars for immediates, and dot-headed arcs for
// inhibitors.
func (n *Net) WriteDOT(w io.Writer, title string) error {
	if len(n.placeNames) == 0 {
		return fmt.Errorf("spn: net has no places")
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", title)
	sb.WriteString("  rankdir=LR;\n")
	for i, p := range n.placeNames {
		label := p
		if n.initial[i] > 0 {
			label = fmt.Sprintf("%s\\n(%d)", p, n.initial[i])
		}
		fmt.Fprintf(&sb, "  %q [shape=circle, label=\"%s\"];\n", "p_"+p, label)
	}
	for _, t := range n.trans {
		style := "shape=box, height=0.1, width=0.4"
		if t.kind == immediate {
			style += ", style=filled, fillcolor=black, fontcolor=white"
		}
		fmt.Fprintf(&sb, "  %q [%s, label=%q];\n", "t_"+t.name, style, t.name)
		for _, a := range t.inputs {
			fmt.Fprintf(&sb, "  %q -> %q%s;\n",
				"p_"+n.placeNames[a.place], "t_"+t.name, multLabel(a.mult))
		}
		for _, a := range t.outputs {
			fmt.Fprintf(&sb, "  %q -> %q%s;\n",
				"t_"+t.name, "p_"+n.placeNames[a.place], multLabel(a.mult))
		}
		for _, a := range t.inhibitors {
			fmt.Fprintf(&sb, "  %q -> %q [arrowhead=odot%s];\n",
				"p_"+n.placeNames[a.place], "t_"+t.name, multSuffix(a.mult))
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func multLabel(m int) string {
	if m <= 1 {
		return ""
	}
	return fmt.Sprintf(" [label=\"%d\"]", m)
}

func multSuffix(m int) string {
	if m <= 1 {
		return ""
	}
	return fmt.Sprintf(", label=\"%d\"", m)
}
