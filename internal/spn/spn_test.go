package spn

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/markov"
)

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Abs(b); m > 1e-300 {
		return d / m
	}
	return d
}

// mm1k builds an M/M/1/K queue net: place "queue" holds customers.
func mm1k(t *testing.T, lam, mu float64, k int) *Net {
	t.Helper()
	n := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.Place("queue", 0))
	must(n.Place("slots", k))
	must(n.Timed("arrive", lam))
	must(n.Timed("serve", mu))
	must(n.Input("slots", "arrive", 1))
	must(n.Output("arrive", "queue", 1))
	must(n.Input("queue", "serve", 1))
	must(n.Output("serve", "slots", 1))
	return n
}

func TestMM1KSteadyState(t *testing.T) {
	lam, mu, k := 2.0, 3.0, 4
	n := mm1k(t, lam, mu, k)
	tc, err := n.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	if tc.NumTangible() != k+1 {
		t.Fatalf("tangible markings = %d, want %d", tc.NumTangible(), k+1)
	}
	qi, err := n.PlaceIndex("queue")
	if err != nil {
		t.Fatal(err)
	}
	// pi_j ∝ rho^j.
	rho := lam / mu
	var norm float64
	for j := 0; j <= k; j++ {
		norm += math.Pow(rho, float64(j))
	}
	for j := 0; j <= k; j++ {
		want := math.Pow(rho, float64(j)) / norm
		got, err := tc.ProbWhere(func(m Marking) bool { return m[qi] == j })
		if err != nil {
			t.Fatal(err)
		}
		if relErr(got, want) > 1e-12 {
			t.Errorf("P(N=%d) = %g, want %g", j, got, want)
		}
	}
	// Mean queue length.
	en, err := tc.ExpectedTokens("queue")
	if err != nil {
		t.Fatal(err)
	}
	var wantEN float64
	for j := 0; j <= k; j++ {
		wantEN += float64(j) * math.Pow(rho, float64(j)) / norm
	}
	if relErr(en, wantEN) > 1e-12 {
		t.Errorf("E[N] = %g, want %g", en, wantEN)
	}
}

func TestThroughputBalance(t *testing.T) {
	// In steady state, arrival throughput equals service throughput.
	n := mm1k(t, 1.5, 2.5, 3)
	tc, err := n.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := tc.Throughput("arrive")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tc.Throughput("serve")
	if err != nil {
		t.Fatal(err)
	}
	if relErr(ta, ts) > 1e-12 {
		t.Errorf("throughputs differ: arrive %g vs serve %g", ta, ts)
	}
	// Effective arrival rate = λ(1-P(full)).
	qi, _ := n.PlaceIndex("queue")
	pFull, _ := tc.ProbWhere(func(m Marking) bool { return m[qi] == 3 })
	if relErr(ta, 1.5*(1-pFull)) > 1e-12 {
		t.Errorf("throughput %g, want %g", ta, 1.5*(1-pFull))
	}
}

func TestSharedRepairSPNMatchesHandBuiltCTMC(t *testing.T) {
	// Two identical components, one shared repairer — the canonical
	// dependence example. SPN marking (up, down) with repair served one at
	// a time.
	lam, mu := 0.2, 1.0
	n := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.Place("up", 2))
	must(n.Place("down", 0))
	// Infinite-server failure: rate ∝ number up.
	upIdx := 0
	must(n.TimedFunc("fail", func(m Marking) float64 { return lam * float64(m[upIdx]) }))
	must(n.Input("up", "fail", 1))
	must(n.Output("fail", "down", 1))
	// Single repairer: constant rate regardless of queue length.
	must(n.Timed("repair", mu))
	must(n.Input("down", "repair", 1))
	must(n.Output("repair", "up", 1))

	tc, err := n.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	if tc.NumTangible() != 3 {
		t.Fatalf("tangible = %d, want 3", tc.NumTangible())
	}
	// Hand-built chain.
	c := markov.NewCTMC()
	_ = c.AddRate("2", "1", 2*lam)
	_ = c.AddRate("1", "0", lam)
	_ = c.AddRate("1", "2", mu)
	_ = c.AddRate("0", "1", mu)
	want, err := c.SteadyStateMap()
	if err != nil {
		t.Fatal(err)
	}
	for nUp := 0; nUp <= 2; nUp++ {
		nUp := nUp
		got, err := tc.ProbWhere(func(m Marking) bool { return m[upIdx] == nUp })
		if err != nil {
			t.Fatal(err)
		}
		key := []string{"0", "1", "2"}[nUp]
		if relErr(got, want[key]) > 1e-12 {
			t.Errorf("P(up=%d) = %g, want %g", nUp, got, want[key])
		}
	}
}

func TestImmediateTransitionsAndVanishing(t *testing.T) {
	// Coverage model: a failure is covered (prob c → degraded) or
	// uncovered (prob 1-c → down), resolved by immediate transitions.
	c := 0.9
	lam, mu := 1.0, 10.0
	n := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.Place("ok", 1))
	must(n.Place("choice", 0))
	must(n.Place("degraded", 0))
	must(n.Place("failed", 0))
	must(n.Timed("fail", lam))
	must(n.Input("ok", "fail", 1))
	must(n.Output("fail", "choice", 1))
	must(n.Immediate("covered", c))
	must(n.Input("choice", "covered", 1))
	must(n.Output("covered", "degraded", 1))
	must(n.Immediate("uncovered", 1-c))
	must(n.Input("choice", "uncovered", 1))
	must(n.Output("uncovered", "failed", 1))
	must(n.Timed("repairDeg", mu))
	must(n.Input("degraded", "repairDeg", 1))
	must(n.Output("repairDeg", "ok", 1))
	must(n.Timed("repairFail", mu/10))
	must(n.Input("failed", "repairFail", 1))
	must(n.Output("repairFail", "ok", 1))

	tc, err := n.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	// Vanishing marking (choice=1) must not appear.
	ci, _ := n.PlaceIndex("choice")
	for _, m := range tc.Markings {
		if m[ci] != 0 {
			t.Fatalf("vanishing marking %v survived", m)
		}
	}
	if tc.NumTangible() != 3 {
		t.Fatalf("tangible = %d, want 3", tc.NumTangible())
	}
	// Compare against hand-built CTMC with branch rates λc and λ(1-c).
	hand := markov.NewCTMC()
	_ = hand.AddRate("ok", "deg", lam*c)
	_ = hand.AddRate("ok", "fail", lam*(1-c))
	_ = hand.AddRate("deg", "ok", mu)
	_ = hand.AddRate("fail", "ok", mu/10)
	want, err := hand.SteadyStateMap()
	if err != nil {
		t.Fatal(err)
	}
	oi, _ := n.PlaceIndex("ok")
	gotOK, _ := tc.ProbWhere(func(m Marking) bool { return m[oi] == 1 })
	if relErr(gotOK, want["ok"]) > 1e-12 {
		t.Errorf("P(ok) = %g, want %g", gotOK, want["ok"])
	}
}

func TestInhibitorArc(t *testing.T) {
	// Arrivals inhibited when the buffer holds 2 tokens → M/M/1/2.
	n := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.Place("buf", 0))
	must(n.Timed("arrive", 1.0))
	must(n.Output("arrive", "buf", 1))
	must(n.Inhibitor("buf", "arrive", 2))
	must(n.Timed("serve", 2.0))
	must(n.Input("buf", "serve", 1))
	tc, err := n.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	if tc.NumTangible() != 3 {
		t.Fatalf("tangible = %d, want 3", tc.NumTangible())
	}
	bi, _ := n.PlaceIndex("buf")
	// Birth-death: pi ∝ (1/2)^j.
	norm := 1 + 0.5 + 0.25
	for j := 0; j <= 2; j++ {
		j := j
		got, _ := tc.ProbWhere(func(m Marking) bool { return m[bi] == j })
		want := math.Pow(0.5, float64(j)) / norm
		if relErr(got, want) > 1e-12 {
			t.Errorf("P(%d) = %g, want %g", j, got, want)
		}
	}
}

func TestGuard(t *testing.T) {
	// Guarded repair: only while fewer than 2 components are down (e.g.
	// deferred repair policy).
	n := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.Place("up", 2))
	must(n.Place("down", 0))
	ui := 0
	must(n.TimedFunc("fail", func(m Marking) float64 { return 0.5 * float64(m[ui]) }))
	must(n.Input("up", "fail", 1))
	must(n.Output("fail", "down", 1))
	// Batch repair: both components restored at once, only when everything
	// is down (repair-on-total-failure policy).
	must(n.Timed("repair", 3))
	must(n.Input("down", "repair", 2))
	must(n.Output("repair", "up", 2))
	di, _ := n.PlaceIndex("down")
	must(n.SetGuard("repair", func(m Marking) bool { return m[di] == 2 }))
	tc, err := n.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	// Equivalent CTMC cycle: 2 →(2·0.5) 1 →(0.5) 0 →(3) 2.
	hand := markov.NewCTMC()
	_ = hand.AddRate("2", "1", 1.0)
	_ = hand.AddRate("1", "0", 0.5)
	_ = hand.AddRate("0", "2", 3.0)
	want, err := hand.SteadyStateMap()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := tc.ProbWhere(func(m Marking) bool { return m[di] == 2 })
	if relErr(got, want["0"]) > 1e-12 {
		t.Errorf("P(all down) = %g, want %g", got, want["0"])
	}
}

func TestVanishingLoopDetected(t *testing.T) {
	n := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.Place("a", 1))
	must(n.Place("b", 0))
	must(n.Immediate("ab", 1))
	must(n.Input("a", "ab", 1))
	must(n.Output("ab", "b", 1))
	must(n.Immediate("ba", 1))
	must(n.Input("b", "ba", 1))
	must(n.Output("ba", "a", 1))
	if _, err := n.Generate(0); !errors.Is(err, ErrVanishingLoop) {
		t.Errorf("want ErrVanishingLoop, got %v", err)
	}
}

func TestStateSpaceLimit(t *testing.T) {
	// Unbounded net: arrivals with no capacity bound.
	n := New()
	_ = n.Place("buf", 0)
	_ = n.Timed("arrive", 1)
	_ = n.Output("arrive", "buf", 1)
	if _, err := n.Generate(50); !errors.Is(err, ErrStateSpaceLimit) {
		t.Errorf("want ErrStateSpaceLimit, got %v", err)
	}
}

func TestConstructionErrors(t *testing.T) {
	n := New()
	_ = n.Place("p", 1)
	if err := n.Place("p", 0); !errors.Is(err, ErrDuplicate) {
		t.Errorf("dup place: %v", err)
	}
	if err := n.Place("neg", -1); err == nil {
		t.Error("negative tokens accepted")
	}
	if err := n.Timed("t", 0); err == nil {
		t.Error("zero rate accepted")
	}
	if err := n.Immediate("i", -1); err == nil {
		t.Error("negative weight accepted")
	}
	_ = n.Timed("t", 1)
	if err := n.Timed("t", 2); !errors.Is(err, ErrDuplicate) {
		t.Errorf("dup transition: %v", err)
	}
	if err := n.Input("missing", "t", 1); !errors.Is(err, ErrUnknownPlace) {
		t.Errorf("unknown place: %v", err)
	}
	if err := n.Input("p", "missing", 1); !errors.Is(err, ErrUnknownTransition) {
		t.Errorf("unknown transition: %v", err)
	}
	if err := n.Input("p", "t", 0); err == nil {
		t.Error("zero multiplicity accepted")
	}
}

func TestTransientViaUnderlyingChain(t *testing.T) {
	// The SPN-generated chain supports the full markov API: transient of
	// the single-component repairable net matches the closed form.
	lam, mu := 0.4, 2.0
	n := New()
	_ = n.Place("up", 1)
	_ = n.Place("down", 0)
	_ = n.Timed("fail", lam)
	_ = n.Input("up", "fail", 1)
	_ = n.Output("fail", "down", 1)
	_ = n.Timed("repair", mu)
	_ = n.Input("down", "repair", 1)
	_ = n.Output("repair", "up", 1)
	tc, err := n.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	ui, _ := n.PlaceIndex("up")
	upStates := tc.StatesWhere(func(m Marking) bool { return m[ui] == 1 })
	if len(upStates) != 1 {
		t.Fatalf("up states = %v", upStates)
	}
	p0, err := tc.Chain.InitialAt(upStates[0])
	if err != nil {
		t.Fatal(err)
	}
	tt := 0.9
	p, err := tc.Chain.Transient(tt, p0, markov.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tc.Chain.ProbSum(p, upStates...)
	if err != nil {
		t.Fatal(err)
	}
	s := lam + mu
	want := mu/s + lam/s*math.Exp(-s*tt)
	if relErr(got, want) > 1e-9 {
		t.Errorf("A(%g) = %g, want %g", tt, got, want)
	}
}

func TestExpectedRewardMarkingDependent(t *testing.T) {
	// M/M/1/3: power draw = 10 + 5·queue-length.
	n := mm1k(t, 2, 3, 3)
	tc, err := n.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	qi, err := n.PlaceIndex("queue")
	if err != nil {
		t.Fatal(err)
	}
	got, err := tc.ExpectedReward(func(m Marking) float64 {
		return 10 + 5*float64(m[qi])
	})
	if err != nil {
		t.Fatal(err)
	}
	en, err := tc.ExpectedTokens("queue")
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got, 10+5*en) > 1e-12 {
		t.Errorf("reward = %g, want %g", got, 10+5*en)
	}
	if _, err := tc.ExpectedReward(nil); err == nil {
		t.Error("nil reward accepted")
	}
}

func TestNetWriteDOT(t *testing.T) {
	n := mm1k(t, 1, 2, 3)
	var sb strings.Builder
	if err := n.WriteDOT(&sb, "mm1k"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`digraph "mm1k"`, `"p_queue"`, `"t_arrive"`, "shape=box"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	if err := New().WriteDOT(&sb, "empty"); err == nil {
		t.Error("empty net accepted")
	}
}
