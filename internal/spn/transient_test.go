package spn

import (
	"math"
	"testing"
)

// singleRepairableNet builds the 1-component up/down net.
func singleRepairableNet(t *testing.T, lam, mu float64) (*Net, *TangibleChain) {
	t.Helper()
	n := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.Place("up", 1))
	must(n.Place("down", 0))
	must(n.Timed("fail", lam))
	must(n.Input("up", "fail", 1))
	must(n.Output("fail", "down", 1))
	must(n.Timed("repair", mu))
	must(n.Input("down", "repair", 1))
	must(n.Output("repair", "up", 1))
	tc, err := n.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	return n, tc
}

func TestTransientProbWhereClosedForm(t *testing.T) {
	lam, mu := 0.3, 1.2
	n, tc := singleRepairableNet(t, lam, mu)
	ui, err := n.PlaceIndex("up")
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.2, 1, 5} {
		got, err := tc.TransientProbWhere(tt, func(m Marking) bool { return m[ui] == 1 })
		if err != nil {
			t.Fatal(err)
		}
		s := lam + mu
		want := mu/s + lam/s*math.Exp(-s*tt)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("A(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestIntervalProbWhere(t *testing.T) {
	lam, mu := 0.3, 1.2
	n, tc := singleRepairableNet(t, lam, mu)
	ui, _ := n.PlaceIndex("up")
	horizon := 4.0
	got, err := tc.IntervalProbWhere(horizon, func(m Marking) bool { return m[ui] == 1 })
	if err != nil {
		t.Fatal(err)
	}
	s := lam + mu
	want := (mu/s*horizon + lam/(s*s)*(1-math.Exp(-s*horizon))) / horizon
	if math.Abs(got-want) > 1e-8 {
		t.Errorf("interval availability = %g, want %g", got, want)
	}
	if _, err := tc.IntervalProbWhere(0, func(Marking) bool { return true }); err == nil {
		t.Error("t=0 accepted")
	}
}

func TestExpectedTokensAt(t *testing.T) {
	lam, mu := 0.3, 1.2
	_, tc := singleRepairableNet(t, lam, mu)
	// E[tokens in down at t] = 1 - A(t).
	tt := 2.0
	got, err := tc.ExpectedTokensAt(tt, "down")
	if err != nil {
		t.Fatal(err)
	}
	s := lam + mu
	want := 1 - (mu/s + lam/s*math.Exp(-s*tt))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("E[down tokens] = %g, want %g", got, want)
	}
	if _, err := tc.ExpectedTokensAt(1, "ghost"); err == nil {
		t.Error("unknown place accepted")
	}
}

func TestInitialDistributionWithVanishingStart(t *testing.T) {
	// Initial marking is vanishing: an immediate transition fires at t=0
	// splitting mass 0.3/0.7 between two tangible branches.
	n := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.Place("start", 1))
	must(n.Place("a", 0))
	must(n.Place("b", 0))
	must(n.Immediate("toA", 0.3))
	must(n.Input("start", "toA", 1))
	must(n.Output("toA", "a", 1))
	must(n.Immediate("toB", 0.7))
	must(n.Input("start", "toB", 1))
	must(n.Output("toB", "b", 1))
	// Keep the chain alive: a ↔ b via timed transitions.
	must(n.Timed("ab", 1))
	must(n.Input("a", "ab", 1))
	must(n.Output("ab", "b", 1))
	must(n.Timed("ba", 2))
	must(n.Input("b", "ba", 1))
	must(n.Output("ba", "a", 1))
	tc, err := n.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := tc.InitialDistribution()
	if err != nil {
		t.Fatal(err)
	}
	ai, _ := n.PlaceIndex("a")
	var pa float64
	for i, m := range tc.Markings {
		if m[ai] == 1 {
			pa += p0[i]
		}
	}
	if math.Abs(pa-0.3) > 1e-12 {
		t.Errorf("P(start in a) = %g, want 0.3", pa)
	}
}

func TestMTTAWhereMatchesHandChain(t *testing.T) {
	// Duplex shared-repair net: MTTF to "all down" = hand-built chain's.
	lam, mu := 0.2, 1.5
	n := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.Place("up", 2))
	must(n.Place("down", 0))
	ui := 0
	must(n.TimedFunc("fail", func(m Marking) float64 { return lam * float64(m[ui]) }))
	must(n.Input("up", "fail", 1))
	must(n.Output("fail", "down", 1))
	must(n.Timed("repair", mu))
	must(n.Input("down", "repair", 1))
	must(n.Output("repair", "up", 1))
	tc, err := n.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tc.MTTAWhere(func(m Marking) bool { return m[ui] == 0 })
	if err != nil {
		t.Fatal(err)
	}
	want := (3*lam + mu) / (2 * lam * lam)
	if relErr(got, want) > 1e-12 {
		t.Errorf("MTTA = %g, want %g", got, want)
	}
	// Reliability at t decreasing, matches closed form at t=0.
	r0, err := tc.ReliabilityAt(1e-9, func(m Marking) bool { return m[ui] == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r0-1) > 1e-6 {
		t.Errorf("R(0) = %g", r0)
	}
	r1, _ := tc.ReliabilityAt(5, func(m Marking) bool { return m[ui] == 0 })
	r2, _ := tc.ReliabilityAt(50, func(m Marking) bool { return m[ui] == 0 })
	if !(r1 > r2) {
		t.Errorf("R not decreasing: %g vs %g", r1, r2)
	}
	// Condition never satisfied → reliability 1, MTTA error.
	rInf, err := tc.ReliabilityAt(10, func(m Marking) bool { return false })
	if err != nil || rInf != 1 {
		t.Errorf("unsatisfiable condition: r=%g err=%v", rInf, err)
	}
	if _, err := tc.MTTAWhere(func(m Marking) bool { return false }); err == nil {
		t.Error("unsatisfiable MTTA accepted")
	}
}
