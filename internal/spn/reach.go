package spn

import (
	"fmt"
	"sort"

	"repro/internal/markov"
)

// TangibleChain is the CTMC over tangible markings generated from a net,
// together with the marking associated with each chain state.
type TangibleChain struct {
	Chain    *markov.CTMC
	Markings []Marking // indexed like chain states
	net      *Net
}

// maxVanishingDepth bounds immediate-transition chains during vanishing
// elimination; deeper chains indicate a cycle among vanishing markings.
const maxVanishingDepth = 10000

// Generate explores the reachability graph from the initial marking,
// eliminates vanishing markings, and returns the tangible CTMC. maxStates
// bounds the exploration (0 means the default of 200,000 markings).
func (n *Net) Generate(maxStates int) (*TangibleChain, error) {
	if len(n.placeNames) == 0 {
		return nil, fmt.Errorf("spn: net has no places")
	}
	if maxStates <= 0 {
		maxStates = 200000
	}
	// Resolve the initial marking to a tangible distribution first.
	initDist, err := n.resolveVanishing(n.initial, 0)
	if err != nil {
		return nil, err
	}

	chain := markov.NewCTMC()
	tc := &TangibleChain{Chain: chain, net: n}
	index := make(map[string]int)
	var queue []Marking

	addTangible := func(m Marking) int {
		k := m.key()
		if i, ok := index[k]; ok {
			return i
		}
		i := len(tc.Markings)
		index[k] = i
		tc.Markings = append(tc.Markings, m.clone())
		chain.State(stateName(m))
		queue = append(queue, m.clone())
		return i
	}
	for k := range initDist {
		addTangible(initDist[k].marking)
	}

	for len(queue) > 0 {
		if len(tc.Markings) > maxStates {
			return nil, fmt.Errorf("%w: more than %d tangible markings", ErrStateSpaceLimit, maxStates)
		}
		m := queue[0]
		queue = queue[1:]
		from := stateName(m)
		for _, t := range n.trans {
			if t.kind != timed || !n.enabled(t, m) {
				continue
			}
			rate := t.rate(m)
			if rate <= 0 {
				continue
			}
			next := n.fire(t, m)
			dist, err := n.resolveVanishing(next, 0)
			if err != nil {
				return nil, err
			}
			for _, br := range dist {
				addTangible(br.marking)
				to := stateName(br.marking)
				if to == from {
					continue // a loop back to itself contributes nothing
				}
				if err := chain.AddRate(from, to, rate*br.prob); err != nil {
					return nil, err
				}
			}
		}
	}
	return tc, nil
}

type branch struct {
	marking Marking
	prob    float64
}

// resolveVanishing follows immediate-transition firings from m until only
// tangible markings remain, returning the tangible distribution. Cycles
// among vanishing markings are reported as errors.
func (n *Net) resolveVanishing(m Marking, depth int) ([]branch, error) {
	if depth > maxVanishingDepth {
		return nil, fmt.Errorf("%w (marking %v)", ErrVanishingLoop, m)
	}
	var enabledImm []*transDef
	for _, t := range n.trans {
		if t.kind == immediate && n.enabled(t, m) {
			enabledImm = append(enabledImm, t)
		}
	}
	if len(enabledImm) == 0 {
		return []branch{{marking: m.clone(), prob: 1}}, nil
	}
	var totalW float64
	for _, t := range enabledImm {
		totalW += t.rate(m)
	}
	var out []branch
	acc := make(map[string]int)
	for _, t := range enabledImm {
		p := t.rate(m) / totalW
		next := n.fire(t, m)
		sub, err := n.resolveVanishing(next, depth+1)
		if err != nil {
			return nil, err
		}
		for _, br := range sub {
			k := br.marking.key()
			if i, ok := acc[k]; ok {
				out[i].prob += p * br.prob
				continue
			}
			acc[k] = len(out)
			out = append(out, branch{marking: br.marking, prob: p * br.prob})
		}
	}
	return out, nil
}

// stateName renders a marking as a chain-state name.
func stateName(m Marking) string { return m.key() }

// NumTangible returns the number of tangible markings.
func (tc *TangibleChain) NumTangible() int { return len(tc.Markings) }

// SteadyState returns the stationary probability of each tangible marking.
func (tc *TangibleChain) SteadyState() ([]float64, error) {
	return tc.Chain.SteadyState()
}

// ProbWhere returns the steady-state probability that cond holds.
func (tc *TangibleChain) ProbWhere(cond func(Marking) bool) (float64, error) {
	pi, err := tc.SteadyState()
	if err != nil {
		return 0, err
	}
	var p float64
	for i, m := range tc.Markings {
		if cond(m) {
			p += pi[i]
		}
	}
	return p, nil
}

// ExpectedTokens returns the steady-state expected token count in a place.
func (tc *TangibleChain) ExpectedTokens(place string) (float64, error) {
	pi, err := tc.net.PlaceIndex(place)
	if err != nil {
		return 0, err
	}
	probs, err := tc.SteadyState()
	if err != nil {
		return 0, err
	}
	var e float64
	for i, m := range tc.Markings {
		e += probs[i] * float64(m[pi])
	}
	return e, nil
}

// Throughput returns the steady-state firing rate of a timed transition:
// Σ_m π(m)·rate(m) over markings enabling it.
func (tc *TangibleChain) Throughput(transition string) (float64, error) {
	ti, ok := tc.net.transIdx[transition]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTransition, transition)
	}
	t := tc.net.trans[ti]
	if t.kind != timed {
		return 0, fmt.Errorf("spn: %q is immediate; throughput is defined for timed transitions", transition)
	}
	probs, err := tc.SteadyState()
	if err != nil {
		return 0, err
	}
	var thr float64
	for i, m := range tc.Markings {
		if tc.net.enabled(t, m) {
			thr += probs[i] * t.rate(m)
		}
	}
	return thr, nil
}

// Utilization returns the steady-state probability that the transition is
// enabled.
func (tc *TangibleChain) Utilization(transition string) (float64, error) {
	ti, ok := tc.net.transIdx[transition]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTransition, transition)
	}
	t := tc.net.trans[ti]
	probs, err := tc.SteadyState()
	if err != nil {
		return 0, err
	}
	var u float64
	for i, m := range tc.Markings {
		if tc.net.enabled(t, m) {
			u += probs[i]
		}
	}
	return u, nil
}

// ExpectedReward returns the steady-state expectation of an arbitrary
// marking-dependent reward rate Σ_m π(m)·rate(m) — utilization-weighted
// power draw, marking-dependent throughput, and similar measures.
func (tc *TangibleChain) ExpectedReward(rate func(Marking) float64) (float64, error) {
	if rate == nil {
		return 0, fmt.Errorf("spn: nil reward rate")
	}
	probs, err := tc.SteadyState()
	if err != nil {
		return 0, err
	}
	var e float64
	for i, m := range tc.Markings {
		e += probs[i] * rate(m)
	}
	return e, nil
}

// MarkingIndexWhere returns the chain-state indices whose marking satisfies
// cond, in state order.
func (tc *TangibleChain) MarkingIndexWhere(cond func(Marking) bool) []int {
	var out []int
	for i, m := range tc.Markings {
		if cond(m) {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// StatesWhere returns the chain-state names whose marking satisfies cond
// (for use with the markov package's name-based APIs).
func (tc *TangibleChain) StatesWhere(cond func(Marking) bool) []string {
	var out []string
	for _, m := range tc.Markings {
		if cond(m) {
			out = append(out, stateName(m))
		}
	}
	return out
}
