package spn

import (
	"fmt"

	"repro/internal/markov"
)

// InitialDistribution returns the probability vector over tangible
// markings corresponding to the net's initial marking (after resolving any
// initial vanishing markings).
func (tc *TangibleChain) InitialDistribution() ([]float64, error) {
	dist, err := tc.net.resolveVanishing(tc.net.initial, 0)
	if err != nil {
		return nil, err
	}
	p0 := make([]float64, len(tc.Markings))
	index := make(map[string]int, len(tc.Markings))
	for i, m := range tc.Markings {
		index[m.key()] = i
	}
	for _, br := range dist {
		i, ok := index[br.marking.key()]
		if !ok {
			return nil, fmt.Errorf("spn: initial marking %v not tangible-reachable", br.marking)
		}
		p0[i] += br.prob
	}
	return p0, nil
}

// TransientProbWhere returns P(cond holds at time t) starting from the
// initial marking, via uniformization on the tangible chain.
func (tc *TangibleChain) TransientProbWhere(t float64, cond func(Marking) bool) (float64, error) {
	p0, err := tc.InitialDistribution()
	if err != nil {
		return 0, err
	}
	p, err := tc.Chain.Transient(t, p0, markov.TransientOptions{})
	if err != nil {
		return 0, err
	}
	var out float64
	for i, m := range tc.Markings {
		if cond(m) {
			out += p[i]
		}
	}
	return out, nil
}

// IntervalProbWhere returns the expected fraction of [0, t] during which
// cond holds (e.g. interval availability of a GSPN model).
func (tc *TangibleChain) IntervalProbWhere(t float64, cond func(Marking) bool) (float64, error) {
	if t <= 0 {
		return 0, fmt.Errorf("spn: interval measure needs t > 0, got %g", t)
	}
	p0, err := tc.InitialDistribution()
	if err != nil {
		return 0, err
	}
	occ, err := tc.Chain.CumulativeTransient(t, p0, markov.TransientOptions{})
	if err != nil {
		return 0, err
	}
	var out float64
	for i, m := range tc.Markings {
		if cond(m) {
			out += occ[i]
		}
	}
	return out / t, nil
}

// ExpectedTokensAt returns the expected token count of a place at time t.
func (tc *TangibleChain) ExpectedTokensAt(t float64, place string) (float64, error) {
	pi, err := tc.net.PlaceIndex(place)
	if err != nil {
		return 0, err
	}
	p0, err := tc.InitialDistribution()
	if err != nil {
		return 0, err
	}
	p, err := tc.Chain.Transient(t, p0, markov.TransientOptions{})
	if err != nil {
		return 0, err
	}
	var e float64
	for i, m := range tc.Markings {
		e += p[i] * float64(m[pi])
	}
	return e, nil
}

// MTTAWhere returns the mean time, from the initial marking, until a
// marking satisfying cond is first reached (e.g. system MTTF of a GSPN
// availability model).
func (tc *TangibleChain) MTTAWhere(cond func(Marking) bool) (float64, error) {
	failing := tc.StatesWhere(cond)
	if len(failing) == 0 {
		return 0, fmt.Errorf("spn: no marking satisfies the condition; MTTA infinite")
	}
	p0, err := tc.InitialDistribution()
	if err != nil {
		return 0, err
	}
	res, err := tc.Chain.Absorbing(p0, failing...)
	if err != nil {
		return 0, err
	}
	return res.MTTA, nil
}

// ReliabilityAt returns P(no marking satisfying failCond has been reached
// by time t) from the initial marking.
func (tc *TangibleChain) ReliabilityAt(t float64, failCond func(Marking) bool) (float64, error) {
	failing := tc.StatesWhere(failCond)
	if len(failing) == 0 {
		return 1, nil
	}
	p0, err := tc.InitialDistribution()
	if err != nil {
		return 0, err
	}
	// Pick the (single) initial state when the mass is concentrated;
	// otherwise build a tiny two-step chain via the general curve per
	// initial state, weighting by p0.
	var total float64
	for i, p := range p0 {
		if p == 0 { //numvet:allow float-eq skipping exact zeros is a sparsity optimization
			continue
		}
		r, err := tc.Chain.ReliabilityAt(t, stateName(tc.Markings[i]), failing...)
		if err != nil {
			return 0, err
		}
		total += p * r
	}
	return total, nil
}
