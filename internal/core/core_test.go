package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestTableAddRowAndPrint(t *testing.T) {
	tbl := &Table{ID: "T1", Title: "demo", Columns: []string{"a", "bb"}}
	if err := tbl.AddRow("1", "2"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow("10", "200"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow("only one"); !errors.Is(err, ErrBadTable) {
		t.Errorf("short row: %v", err)
	}
	out := tbl.String()
	if !strings.Contains(out, "T1 — demo") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "200") {
		t.Errorf("missing cell: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header, columns, separator, 2 rows
		t.Errorf("lines = %d: %q", len(lines), out)
	}
	empty := &Table{ID: "X"}
	if err := empty.Fprint(&strings.Builder{}); !errors.Is(err, ErrBadTable) {
		t.Errorf("no columns: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	mk := func(id string) Experiment {
		return Experiment{ID: id, Title: id, Run: func(obs.Recorder) (*Table, error) {
			tbl := &Table{ID: id, Title: id, Columns: []string{"v"}}
			_ = tbl.AddRow("1")
			return tbl, nil
		}}
	}
	r, err := NewRegistry(mk("A"), mk("B"))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.IDs(); len(got) != 2 || got[0] != "A" {
		t.Errorf("ids = %v", got)
	}
	if _, err := r.Get("A"); err != nil {
		t.Errorf("get A: %v", err)
	}
	if _, err := r.Get("zzz"); err == nil {
		t.Error("unknown id accepted")
	}
	var sb strings.Builder
	if err := r.RunAll(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "B — B") {
		t.Errorf("runall output: %q", sb.String())
	}
	if _, err := NewRegistry(mk("A"), mk("A")); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, err := NewRegistry(Experiment{ID: "incomplete"}); err == nil {
		t.Error("missing Run accepted")
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := &Table{ID: "T", Title: "t", Columns: []string{"x", "y"}}
	_ = tbl.AddRow("1", "a,b") // comma forces quoting
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,\"a,b\"\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
	empty := &Table{}
	if err := empty.WriteCSV(&strings.Builder{}); !errors.Is(err, ErrBadTable) {
		t.Errorf("no columns: %v", err)
	}
}
