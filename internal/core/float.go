package core

import "math"

// The solver packages compare floating-point quantities constantly —
// probabilities against 1, residuals against 0, forward results against
// backward results — and before this helper existed each site rolled its
// own `math.Abs(a-b) > 1e-9` variant. These helpers centralize the
// convention so the lint checks, the solvers, and the tests all agree on
// what "equal" means for a computed probability or rate.

// AlmostEqual reports whether a and b agree to within tol using a mixed
// absolute/relative criterion: |a-b| ≤ tol·(1 + max(|a|, |b|)). Near zero
// this behaves like an absolute tolerance; for large magnitudes it scales
// relatively, matching the `tol*(1+|x|)` idiom used by the solvers.
// NaN is never almost-equal to anything, including itself.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //numvet:allow float-eq exact equality short-circuits infinities
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	scale := math.Abs(a)
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return math.Abs(a-b) <= tol*(1+scale)
}

// RelativeError returns |actual-target| / |target|, falling back to the
// absolute error when the target is zero (where a relative error is
// undefined). It returns NaN if either argument is NaN.
func RelativeError(target, actual float64) float64 {
	if math.IsNaN(target) || math.IsNaN(actual) {
		return math.NaN()
	}
	diff := math.Abs(actual - target)
	if target == 0 { //numvet:allow float-eq zero target switches to absolute error
		return diff
	}
	return diff / math.Abs(target)
}
