package core

import (
	"math"
	"testing"
)

func TestAlmostEqual(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		a, b float64
		tol  float64
		want bool
	}{
		{"identical", 1.0, 1.0, 1e-12, true},
		{"within absolute near zero", 0, 1e-12, 1e-9, true},
		{"outside absolute near zero", 0, 1e-6, 1e-9, false},
		{"relative at large magnitude", 1e9, 1e9 * (1 + 1e-12), 1e-9, true},
		{"relative failure at large magnitude", 1e9, 1.001e9, 1e-9, false},
		{"negative pair", -0.5, -0.5 + 1e-12, 1e-9, true},
		{"infinities equal", inf, inf, 1e-9, true},
		{"opposite infinities", inf, -inf, 1e-9, false},
		{"nan left", math.NaN(), 1, 1e-9, false},
		{"nan both", math.NaN(), math.NaN(), 1e-9, false},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("%s: AlmostEqual(%g, %g, %g) = %v, want %v", c.name, c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(2, 2.002); math.Abs(got-0.001) > 1e-12 {
		t.Errorf("RelativeError(2, 2.002) = %g, want 0.001", got)
	}
	if got := RelativeError(0, 0.25); got != 0.25 {
		t.Errorf("RelativeError(0, 0.25) = %g, want absolute fallback 0.25", got)
	}
	if got := RelativeError(-4, -5); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("RelativeError(-4, -5) = %g, want 0.25", got)
	}
	if got := RelativeError(math.NaN(), 1); !math.IsNaN(got) {
		t.Errorf("RelativeError(NaN, 1) = %g, want NaN", got)
	}
}
