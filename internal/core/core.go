// Package core provides the shared plumbing for the repository's
// reproduction harness: experiment metadata, result tables, and the
// registry that cmd/experiments and the root-level benchmarks both consume.
// The modeling substance lives in the solver packages; core only
// standardizes how experiments present their outputs so every table and
// figure of EXPERIMENTS.md is regenerated through one code path.
package core

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Table is one experiment's tabular output (a paper table or the data
// series behind a figure).
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title describes what the table shows.
	Title string
	// Columns names the columns.
	Columns []string
	// Rows holds formatted cells, one slice per row.
	Rows [][]string
	// Notes carries the expected shape and any caveats.
	Notes string
}

// ErrBadTable reports a malformed table.
var ErrBadTable = errors.New("core: malformed table")

// AddRow appends a formatted row; the cell count must match the columns.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("%w: row has %d cells for %d columns", ErrBadTable, len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if len(t.Columns) == 0 {
		return fmt.Errorf("%w: no columns", ErrBadTable)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	if t.Notes != "" {
		if _, err := fmt.Fprintf(w, "note: %s\n", t.Notes); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string (for tests and logs).
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Fprint(&sb)
	return sb.String()
}

// WriteCSV emits the table as RFC-4180-style CSV (header row first), the
// format used to plot the figure-series experiments.
func (t *Table) WriteCSV(w io.Writer) error {
	if len(t.Columns) == 0 {
		return fmt.Errorf("%w: no columns", ErrBadTable)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Experiment couples an identifier with the function regenerating its
// table.
type Experiment struct {
	// ID is the experiment identifier ("E1".."E12").
	ID string
	// Title is a one-line description.
	Title string
	// Run regenerates the table, reporting solver telemetry to the
	// recorder (pass obs.Nop() to run quietly).
	Run func(obs.Recorder) (*Table, error)
}

// Registry is an ordered experiment collection.
type Registry struct {
	byID map[string]Experiment
	ids  []string
}

// NewRegistry builds a registry, rejecting duplicate IDs.
func NewRegistry(exps ...Experiment) (*Registry, error) {
	r := &Registry{byID: make(map[string]Experiment, len(exps))}
	for _, e := range exps {
		if e.ID == "" || e.Run == nil {
			return nil, fmt.Errorf("core: experiment %q incomplete", e.ID)
		}
		if _, ok := r.byID[e.ID]; ok {
			return nil, fmt.Errorf("core: duplicate experiment %q", e.ID)
		}
		r.byID[e.ID] = e
		r.ids = append(r.ids, e.ID)
	}
	return r, nil
}

// IDs returns the experiment IDs in registration order.
func (r *Registry) IDs() []string {
	out := make([]string, len(r.ids))
	copy(out, r.ids)
	return out
}

// Get returns the experiment with the given ID.
func (r *Registry) Get(id string) (Experiment, error) {
	e, ok := r.byID[id]
	if !ok {
		known := append([]string(nil), r.ids...)
		sort.Strings(known)
		return Experiment{}, fmt.Errorf("core: unknown experiment %q (known: %s)",
			id, strings.Join(known, ", "))
	}
	return e, nil
}

// RunAll executes every experiment in order, writing each table to w and
// returning the first error.
func (r *Registry) RunAll(w io.Writer) error {
	for _, id := range r.ids {
		tbl, err := r.byID[id].Run(obs.Nop())
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		if err := tbl.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}
