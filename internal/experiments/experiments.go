// Package experiments defines the reproduction experiments E1–E12 indexed
// in DESIGN.md and EXPERIMENTS.md. Each experiment regenerates one table
// (or one figure's data series) demonstrating a claim from the tutorial:
// scalability of non-state-space methods, state-space explosion, bounding,
// the cost of the independence assumption, hierarchical fixed-point
// composition, transient analysis, phase-type expansion, parametric
// uncertainty, SPN generation, rejuvenation MRGPs, and network factoring.
//
// The same functions back cmd/experiments and the root-level benchmarks, so
// tables in documentation and numbers in benchmark runs cannot drift apart.
package experiments

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Registry returns all experiments in order.
func Registry() (*core.Registry, error) {
	return core.NewRegistry(
		core.Experiment{ID: "E1", Title: "RBD scaling: non-state-space methods handle hundreds of components", Run: E1RBDScaling},
		core.Experiment{ID: "E2", Title: "Fault trees: BDD vs MOCUS on repeated-event trees", Run: E2FaultTree},
		core.Experiment{ID: "E3", Title: "State-space explosion: shared-repair CTMC grows as 2^n", Run: E3StateSpace},
		core.Experiment{ID: "E4", Title: "Bounding: truncated cut-set bounds bracket and tighten (Boeing-style)", Run: E4Bounds},
		core.Experiment{ID: "E5", Title: "Independence violation: RBD optimistic vs shared-repair CTMC", Run: E5SharedRepair},
		core.Experiment{ID: "E6", Title: "Hierarchical fixed-point vs monolithic state space", Run: E6FixedPoint},
		core.Experiment{ID: "E7", Title: "Transient availability: uniformization vs simulation", Run: E7Transient},
		core.Experiment{ID: "E8", Title: "Non-exponential lifetimes via phase-type expansion", Run: E8PhaseType},
		core.Experiment{ID: "E9", Title: "Parametric uncertainty propagation", Run: E9Uncertainty},
		core.Experiment{ID: "E10", Title: "GSPN generation matches hand-built CTMC", Run: E10SPN},
		core.Experiment{ID: "E11", Title: "Software rejuvenation: MRGP downtime vs rejuvenation interval", Run: E11Rejuvenation},
		core.Experiment{ID: "E12", Title: "Reliability graphs: factoring vs BDD vs rare-event approximation", Run: E12RelGraph},
		core.Experiment{ID: "E13", Title: "Largeness avoidance: exact lumping of identical components (extension)", Run: E13Lumping},
		core.Experiment{ID: "E14", Title: "Automatic lumping pre-pass: discovered reduction makes the cubic MTTA solve cheap (extension)", Run: E14AutoLump},
		core.Experiment{ID: "E15", Title: "Async job engine: sharded uncertainty sweep matches the exact solve in O(1) memory (extension)", Run: E15JobSweep},
		core.Experiment{ID: "E16", Title: "Self-model fidelity: sampled availability CTMC of the server matches ground truth (extension)", Run: E16SelfModel},
	)
}

// BenchEntry is one experiment's solver-telemetry record, serialized to
// BENCH_solvers.json by cmd/experiments.
type BenchEntry struct {
	// ID is the experiment identifier ("E1".."E13").
	ID string `json:"id"`
	// Title is the experiment's one-line description.
	Title string `json:"title"`
	// Solver names the dominant solver observed in the trace (the span
	// that recorded the most iterations; see obs.Summary).
	Solver string `json:"solver,omitempty"`
	// Spans is the trace's total span count.
	Spans int `json:"spans"`
	// Iterations sums every recorded solver iteration across the run.
	Iterations int `json:"iterations"`
	// WallMS is the experiment's wall time in milliseconds — the median
	// across runs when the record was aggregated by internal/bench.
	WallMS float64 `json:"wall_ms"`
	// WallMSP95 is the 95th-percentile wall time across aggregated runs;
	// zero (and omitted) on single-run records.
	WallMSP95 float64 `json:"wall_ms_p95,omitempty"`
	// Runs is how many suite runs were folded into this record; zero
	// (and omitted) means one unaggregated run.
	Runs int `json:"runs,omitempty"`
}

// RunAllWithBench executes every experiment under a fresh trace, writing
// each table to w and returning one telemetry record per experiment.
func RunAllWithBench(w io.Writer) ([]BenchEntry, error) {
	reg, err := Registry()
	if err != nil {
		return nil, err
	}
	entries := make([]BenchEntry, 0, len(reg.IDs()))
	for _, id := range reg.IDs() {
		e, err := reg.Get(id)
		if err != nil {
			return nil, err
		}
		tr := obs.NewTrace(id)
		tbl, err := e.Run(tr)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", id, err)
		}
		if err := tbl.Fprint(w); err != nil {
			return nil, err
		}
		s := tr.Summary()
		entries = append(entries, BenchEntry{
			ID:         id,
			Title:      e.Title,
			Solver:     s.Solver,
			Spans:      s.Spans,
			Iterations: s.Iterations,
			WallMS:     float64(s.WallNS) / 1e6,
		})
	}
	return entries, nil
}

// --- small formatting helpers shared by the experiment files ---

func f64(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

func f64p(v float64, prec int) string { return strconv.FormatFloat(v, 'f', prec, 64) }

func itoa(i int) string { return strconv.Itoa(i) }

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

// timed runs fn and returns its duration.
func timed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}
