package experiments

import (
	"repro/internal/spn"
)

// spnMarking aliases the SPN marking type for readability in predicates.
type spnMarking = spn.Marking

// coverageNet builds the single-component imperfect-coverage GSPN: a
// failure is covered (probability cov, leading to a fast-repaired degraded
// state) or uncovered (slow-repaired full failure), resolved by a pair of
// immediate transitions — the standard use of vanishing markings.
func coverageNet(lam, muDegraded, muFailed, cov float64) (*spn.Net, error) {
	n := spn.New()
	steps := []func() error{
		func() error { return n.Place("ok", 1) },
		func() error { return n.Place("choice", 0) },
		func() error { return n.Place("degraded", 0) },
		func() error { return n.Place("failed", 0) },
		func() error { return n.Timed("fail", lam) },
		func() error { return n.Input("ok", "fail", 1) },
		func() error { return n.Output("fail", "choice", 1) },
		func() error { return n.Immediate("covered", cov) },
		func() error { return n.Input("choice", "covered", 1) },
		func() error { return n.Output("covered", "degraded", 1) },
		func() error { return n.Immediate("uncovered", 1-cov) },
		func() error { return n.Input("choice", "uncovered", 1) },
		func() error { return n.Output("uncovered", "failed", 1) },
		func() error { return n.Timed("repairDegraded", muDegraded) },
		func() error { return n.Input("degraded", "repairDegraded", 1) },
		func() error { return n.Output("repairDegraded", "ok", 1) },
		func() error { return n.Timed("repairFailed", muFailed) },
		func() error { return n.Input("failed", "repairFailed", 1) },
		func() error { return n.Output("repairFailed", "ok", 1) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}
	return n, nil
}
