package experiments

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/obs"
)

// E13Lumping is the extension experiment for largeness *avoidance*: the
// 2^n detailed chain of n identical shared-repair components lumps exactly
// to the (n+1)-state count chain. The table reports both state counts,
// both availabilities (identical), and both solve times — the counterpart
// of E3, which shows what happens when symmetry is absent.
func E13Lumping(rec obs.Recorder) (*core.Table, error) {
	t := &core.Table{
		ID:      "E13",
		Title:   "Largeness avoidance: exact lumping of identical components (extension)",
		Columns: []string{"components", "detailed_states", "lumped_states", "A_detailed", "A_lumped", "detailed_ms", "lumped_ms"},
		Notes:   "availabilities identical to solver precision; the lumped chain solves in microseconds regardless of n",
	}
	lam, mu := 0.02, 1.0
	for _, n := range []int{4, 6, 8, 10} {
		detailed, err := identicalSharedRepairChain(n, lam, mu)
		if err != nil {
			return nil, err
		}
		toBlock := func(state string) string {
			mask, _ := strconv.Atoi(strings.TrimPrefix(state, "m"))
			return "k" + strconv.Itoa(bits.OnesCount(uint(mask)))
		}
		sp := rec.Span("n=" + itoa(n))
		var aDet float64
		detDur, err := timed(func() error {
			pi, err := detailed.SteadyStateWithOptions(markov.SteadyStateOptions{Recorder: sp})
			if err != nil {
				return err
			}
			// Up when at most n-1 failed is trivial; use "not all failed".
			var allFailed float64
			for i, name := range detailed.StateNames() {
				if toBlock(name) == "k"+strconv.Itoa(n) {
					allFailed += pi[i]
				}
			}
			aDet = 1 - allFailed
			return nil
		})
		if err != nil {
			return nil, err
		}
		lumped, err := detailed.Lump(toBlock, 0)
		if err != nil {
			return nil, err
		}
		var aLum float64
		lumDur, err := timed(func() error {
			pi, err := lumped.SteadyStateMap()
			if err != nil {
				return err
			}
			aLum = 1 - pi["k"+strconv.Itoa(n)]
			return nil
		})
		if err != nil {
			return nil, err
		}
		if diff := aDet - aLum; diff > 1e-10 || diff < -1e-10 {
			return nil, fmt.Errorf("E13: lumped %g vs detailed %g", aLum, aDet)
		}
		sp.End()
		if err := t.AddRow(itoa(n), itoa(detailed.NumStates()), itoa(lumped.NumStates()),
			f64(aDet), f64(aLum), ms(detDur), ms(lumDur)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// identicalSharedRepairChain is the symmetric variant of E3's chain (all
// components share one failure rate, enabling exact lumping).
func identicalSharedRepairChain(n int, lam, mu float64) (*markov.CTMC, error) {
	c := markov.NewCTMC()
	name := func(mask int) string { return "m" + strconv.Itoa(mask) }
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				if err := c.AddRate(name(mask), name(mask|1<<i), lam); err != nil {
					return nil, err
				}
			}
		}
		if mask != 0 {
			low := 0
			for mask&(1<<low) == 0 {
				low++
			}
			if err := c.AddRate(name(mask), name(mask&^(1<<low)), mu); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}
