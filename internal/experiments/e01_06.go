package experiments

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/faulttree"
	"repro/internal/hier"
	"repro/internal/markov"
	"repro/internal/obs"
	"repro/internal/rbd"
	"repro/internal/spn"
)

// seriesOfParallelPairs builds an RBD of n components arranged as n/2
// parallel pairs in series — the canonical structured system that
// non-state-space methods solve in linear time.
func seriesOfParallelPairs(n int, lam, mu float64) (*rbd.Model, error) {
	if n%2 != 0 {
		n++
	}
	life, err := dist.NewExponential(lam)
	if err != nil {
		return nil, err
	}
	repair, err := dist.NewExponential(mu)
	if err != nil {
		return nil, err
	}
	blocks := make([]*rbd.Block, 0, n/2)
	for i := 0; i < n/2; i++ {
		a := &rbd.Component{
			Name:     "a" + strconv.Itoa(i),
			Lifetime: life,
			Repair:   repair,
		}
		b := &rbd.Component{
			Name:     "b" + strconv.Itoa(i),
			Lifetime: life,
			Repair:   repair,
		}
		blocks = append(blocks, rbd.Parallel(rbd.Comp(a), rbd.Comp(b)))
	}
	return rbd.New(rbd.Series(blocks...))
}

// E1RBDScaling sweeps the component count and reports availability, BDD
// size, and solve time. Expected shape: time and size grow linearly with n
// while a 2^n-state Markov model would be hopeless beyond ~20 components.
func E1RBDScaling(rec obs.Recorder) (*core.Table, error) {
	t := &core.Table{
		ID:      "E1",
		Title:   "Series-of-parallel-pairs RBD: availability and cost vs component count",
		Columns: []string{"components", "bdd_nodes", "availability", "mttf", "solve_ms"},
		Notes:   "near-linear growth in BDD size and time; the independence assumption is what buys this",
	}
	lam, mu := 1e-3, 0.1
	for _, n := range []int{10, 50, 100, 200, 400} {
		sp := rec.Span("n="+itoa(n), obs.S("solver", "bdd"))
		m, err := seriesOfParallelPairs(n, lam, mu)
		if err != nil {
			return nil, err
		}
		var avail, mttf float64
		dur, err := timed(func() error {
			var err error
			if avail, err = m.SteadyStateAvailability(); err != nil {
				return err
			}
			mttf, err = m.MTTF()
			return err
		})
		if err != nil {
			return nil, err
		}
		sp.Set(obs.I("bdd_nodes", m.BDDSize()))
		sp.End()
		if err := t.AddRow(itoa(n), itoa(m.BDDSize()), f64(avail), f64(mttf), ms(dur)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// E2FaultTree compares the BDD solution with MOCUS enumeration on trees
// with repeated events and a voting gate.
func E2FaultTree(rec obs.Recorder) (*core.Table, error) {
	t := &core.Table{
		ID:      "E2",
		Title:   "Fault tree with repeated events: BDD exact vs MOCUS cut sets vs rare-event bound",
		Columns: []string{"and_pairs", "events", "mincuts", "top_exact", "rare_event_bound", "bdd_ms", "mocus_ms"},
		Notes:   "rare-event bound ≥ exact; both cut-set extractions agree (asserted in tests)",
	}
	for _, pairs := range []int{5, 20, 60, 120} {
		sp := rec.Span("pairs="+itoa(pairs), obs.S("solver", "bdd"))
		shared := &faulttree.Event{Name: "psu", Prob: 1e-4} // repeated event
		gates := make([]*faulttree.Node, 0, pairs+1)
		for i := 0; i < pairs; i++ {
			a := &faulttree.Event{Name: fmt.Sprintf("a%d", i), Prob: 2e-3}
			b := &faulttree.Event{Name: fmt.Sprintf("b%d", i), Prob: 3e-3}
			gates = append(gates, faulttree.And(faulttree.Basic(a), faulttree.Basic(b)))
		}
		gates = append(gates, faulttree.Basic(shared))
		tree, err := faulttree.New(faulttree.Or(gates...))
		if err != nil {
			return nil, err
		}
		var top float64
		bddDur, err := timed(func() error {
			var err error
			top, err = tree.TopStatic()
			return err
		})
		if err != nil {
			return nil, err
		}
		var nCuts int
		mocusDur, err := timed(func() error {
			cuts, err := tree.MOCUS(0)
			if err != nil {
				return err
			}
			nCuts = len(cuts)
			return nil
		})
		if err != nil {
			return nil, err
		}
		bound, err := tree.RareEventBound()
		if err != nil {
			return nil, err
		}
		st := tree.BDDStats()
		sp.Set(obs.I("bdd_nodes", st.Nodes), obs.I("mincuts", nCuts))
		sp.End()
		if err := t.AddRow(itoa(pairs), itoa(len(tree.Events())), itoa(nCuts),
			f64(top), f64(bound), ms(bddDur), ms(mocusDur)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// sharedRepairChain builds the CTMC over the 2^n failure bitmasks of n
// distinct components with a single shared repairer (lowest failed index
// first). This is the model whose state space explodes.
func sharedRepairChain(n int, lam, mu float64) (*markov.CTMC, []string, error) {
	c := markov.NewCTMC()
	name := func(mask int) string { return "m" + strconv.Itoa(mask) }
	var upStates []string
	for mask := 0; mask < (1 << n); mask++ {
		if mask == 0 {
			upStates = append(upStates, name(mask))
		}
		// Failures: each currently-up component may fail.
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				// Component-specific rate: spread rates slightly so states
				// are distinguishable (no lumping).
				li := lam * (1 + 0.01*float64(i))
				if err := c.AddRate(name(mask), name(mask|1<<i), li); err != nil {
					return nil, nil, err
				}
			}
		}
		// Repair: the single repairer works on the lowest failed index.
		if mask != 0 {
			low := 0
			for mask&(1<<low) == 0 {
				low++
			}
			if err := c.AddRate(name(mask), name(mask&^(1<<low)), mu); err != nil {
				return nil, nil, err
			}
		}
	}
	return c, upStates, nil
}

// E3StateSpace demonstrates state-space explosion: the shared-repair CTMC
// over n distinct components has 2^n states, and solve time grows
// accordingly, in contrast to E1's linear growth.
func E3StateSpace(rec obs.Recorder) (*core.Table, error) {
	t := &core.Table{
		ID:      "E3",
		Title:   "Shared-repair CTMC: states, transitions, and solve time vs components",
		Columns: []string{"components", "states", "p_all_up", "solve_ms"},
		Notes:   "states = 2^n; time grows super-linearly — the state-space explosion the tutorial warns about",
	}
	lam, mu := 1e-3, 0.1
	for _, n := range []int{4, 6, 8, 10, 12} {
		c, _, err := sharedRepairChain(n, lam, mu)
		if err != nil {
			return nil, err
		}
		sp := rec.Span("n=" + itoa(n))
		var pAllUp float64
		dur, err := timed(func() error {
			pi, err := c.SteadyStateMapWithOptions(markov.SteadyStateOptions{Recorder: sp})
			if err != nil {
				return err
			}
			pAllUp = pi["m0"]
			return nil
		})
		sp.End()
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(itoa(n), itoa(c.NumStates()), f64(pAllUp), ms(dur)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// E4Bounds builds a wide Boeing-style cut system and sweeps the truncation
// level: the kept-cut exact value is a certified lower bound, adding the
// discarded rare-event mass a certified upper bound, and the bracket
// tightens monotonically.
func E4Bounds(rec obs.Recorder) (*core.Table, error) {
	t := &core.Table{
		ID:      "E4",
		Title:   "Truncated cut-set bounds on a wide fault tree (1275 cut sets)",
		Columns: []string{"kept_cuts", "discarded", "lower", "upper", "width"},
		Notes:   "bounds bracket the exact value and tighten monotonically with kept cuts",
	}
	// 50 components; cuts are all pairs (i, j) with probability decaying in
	// i+j, mimicking a wide OR-of-ANDs current-return-network tree.
	nComp := 50
	failP := make([]float64, nComp)
	for i := range failP {
		failP[i] = 1e-3 / (1 + 0.2*float64(i))
	}
	var cuts [][]int
	for i := 0; i < nComp; i++ {
		for j := i + 1; j < nComp; j++ {
			cuts = append(cuts, []int{i, j})
		}
	}
	cs := &bounds.CutSystem{Cuts: cuts, FailP: failP}
	rec.Set(obs.S("solver", "cutset-bounds"), obs.I("cuts", len(cuts)))
	exact, err := cs.Exact()
	if err != nil {
		return nil, err
	}
	for _, keep := range []int{10, 50, 200, 600, len(cuts)} {
		res, err := cs.TruncatedBounds(keep)
		if err != nil {
			return nil, err
		}
		if res.Lower > exact+1e-15 || res.Upper < exact-1e-15 {
			return nil, fmt.Errorf("E4: bounds [%g,%g] do not bracket exact %g", res.Lower, res.Upper, exact)
		}
		if err := t.AddRow(itoa(res.Kept), itoa(res.Discarded),
			f64(res.Lower), f64(res.Upper), f64(res.Width())); err != nil {
			return nil, err
		}
	}
	t.Notes += fmt.Sprintf("; exact top probability %s", f64(exact))
	return t, nil
}

// E5SharedRepair quantifies the independence assumption: an RBD with
// per-component repair is optimistic relative to the exact shared-repair
// CTMC, increasingly so as the repair facility saturates.
func E5SharedRepair(rec obs.Recorder) (*core.Table, error) {
	t := &core.Table{
		ID:      "E5",
		Title:   "Two-component parallel system: independent-repair RBD vs shared-repair CTMC",
		Columns: []string{"lambda/mu", "A_rbd_independent", "A_ctmc_shared", "unavail_ratio"},
		Notes:   "RBD (independence) is always optimistic; in the practical rare-failure regime it understates unavailability by a factor approaching 2 (the repair-queueing contribution)",
	}
	mu := 1.0
	for _, ratio := range []float64{0.001, 0.01, 0.1, 0.5, 1.0} {
		lam := ratio * mu
		life, err := dist.NewExponential(lam)
		if err != nil {
			return nil, err
		}
		repair, err := dist.NewExponential(mu)
		if err != nil {
			return nil, err
		}
		a := &rbd.Component{Name: "a", Lifetime: life, Repair: repair}
		b := &rbd.Component{Name: "b", Lifetime: life, Repair: repair}
		m, err := rbd.New(rbd.Parallel(rbd.Comp(a), rbd.Comp(b)))
		if err != nil {
			return nil, err
		}
		aRBD, err := m.SteadyStateAvailability()
		if err != nil {
			return nil, err
		}
		c := markov.NewCTMC()
		if err := c.AddRate("2", "1", 2*lam); err != nil {
			return nil, err
		}
		if err := c.AddRate("1", "0", lam); err != nil {
			return nil, err
		}
		if err := c.AddRate("1", "2", mu); err != nil {
			return nil, err
		}
		if err := c.AddRate("0", "1", mu); err != nil {
			return nil, err
		}
		pi, err := c.SteadyStateMapWithOptions(markov.SteadyStateOptions{Recorder: rec.Span("ratio=" + f64(ratio))})
		if err != nil {
			return nil, err
		}
		aCTMC := pi["2"] + pi["1"]
		if aRBD < aCTMC-1e-12 {
			return nil, fmt.Errorf("E5: RBD %g should be optimistic vs CTMC %g", aRBD, aCTMC)
		}
		ratioU := (1 - aCTMC) / (1 - aRBD)
		if err := t.AddRow(f64(ratio), f64(aRBD), f64(aCTMC), f64p(ratioU, 4)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// E6FixedPoint compares a monolithic SPN-generated CTMC of k independent
// duplex subsystems against the hierarchical composition (one small Markov
// submodel per subsystem feeding a series RBD): identical availability at a
// tiny fraction of the state count.
func E6FixedPoint(rec obs.Recorder) (*core.Table, error) {
	t := &core.Table{
		ID:      "E6",
		Title:   "Hierarchy vs monolith: k duplex subsystems in series",
		Columns: []string{"subsystems", "monolithic_states", "hier_states", "A_monolithic", "A_hier", "abs_diff"},
		Notes:   "hierarchical result matches the monolithic CTMC while the monolith grows as 3^k",
	}
	lam, mu := 5e-3, 0.5
	for _, k := range []int{2, 3, 4, 5, 6} {
		// Monolithic GSPN: k independent duplex subsystems, each with its
		// own repairer; system up while every subsystem has >= 1 working
		// component.
		net := spn.New()
		for s := 0; s < k; s++ {
			up := fmt.Sprintf("up%d", s)
			down := fmt.Sprintf("down%d", s)
			if err := net.Place(up, 2); err != nil {
				return nil, err
			}
			if err := net.Place(down, 0); err != nil {
				return nil, err
			}
			upIdx, err := net.PlaceIndex(up)
			if err != nil {
				return nil, err
			}
			if err := net.TimedFunc(fmt.Sprintf("fail%d", s), func(m spn.Marking) float64 {
				return lam * float64(m[upIdx])
			}); err != nil {
				return nil, err
			}
			if err := net.Input(up, fmt.Sprintf("fail%d", s), 1); err != nil {
				return nil, err
			}
			if err := net.Output(fmt.Sprintf("fail%d", s), down, 1); err != nil {
				return nil, err
			}
			if err := net.Timed(fmt.Sprintf("repair%d", s), mu); err != nil {
				return nil, err
			}
			if err := net.Input(down, fmt.Sprintf("repair%d", s), 1); err != nil {
				return nil, err
			}
			if err := net.Output(fmt.Sprintf("repair%d", s), up, 1); err != nil {
				return nil, err
			}
		}
		tc, err := net.Generate(0)
		if err != nil {
			return nil, err
		}
		upIdxs := make([]int, k)
		for s := 0; s < k; s++ {
			upIdxs[s], err = net.PlaceIndex(fmt.Sprintf("up%d", s))
			if err != nil {
				return nil, err
			}
		}
		aMono, err := tc.ProbWhere(func(m spn.Marking) bool {
			for _, ui := range upIdxs {
				if m[ui] == 0 {
					return false
				}
			}
			return true
		})
		if err != nil {
			return nil, err
		}

		// Hierarchical: one 3-state shared-repair submodel per subsystem,
		// composed through a series structure.
		sub := hier.FuncModel{
			ModelName: "duplex",
			Out:       []string{"A_sub"},
			Fn: func(map[string]float64) (map[string]float64, error) {
				c := markov.NewCTMC()
				if err := c.AddRate("2", "1", 2*lam); err != nil {
					return nil, err
				}
				if err := c.AddRate("1", "0", lam); err != nil {
					return nil, err
				}
				if err := c.AddRate("1", "2", mu); err != nil {
					return nil, err
				}
				if err := c.AddRate("0", "1", mu); err != nil {
					return nil, err
				}
				pi, err := c.SteadyStateMap()
				if err != nil {
					return nil, err
				}
				return map[string]float64{"A_sub": pi["2"] + pi["1"]}, nil
			},
		}
		kLocal := k
		top := hier.FuncModel{
			ModelName: "series",
			In:        []string{"A_sub"},
			Out:       []string{"A_sys"},
			Fn: func(in map[string]float64) (map[string]float64, error) {
				return map[string]float64{"A_sys": math.Pow(in["A_sub"], float64(kLocal))}, nil
			},
		}
		compn, err := hier.NewComposition(sub, top)
		if err != nil {
			return nil, err
		}
		res, err := compn.Solve(nil, hier.Options{Recorder: rec.Span("k=" + itoa(k))})
		if err != nil {
			return nil, err
		}
		aHier := res.Vars["A_sys"]
		diff := math.Abs(aMono - aHier)
		if diff > 1e-9 {
			return nil, fmt.Errorf("E6: hierarchy %g vs monolith %g differ by %g", aHier, aMono, diff)
		}
		if err := t.AddRow(itoa(k), itoa(tc.NumTangible()), itoa(3),
			f64(aMono), f64(aHier), f64(diff)); err != nil {
			return nil, err
		}
	}
	return t, nil
}
