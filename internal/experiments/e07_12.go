package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/markov"
	"repro/internal/mrgp"
	"repro/internal/obs"
	"repro/internal/phfit"
	"repro/internal/relgraph"
	"repro/internal/sim"
	"repro/internal/uncertainty"
)

// duplexChain builds the shared-repair duplex CTMC used by several
// experiments.
func duplexChain(lam, mu float64) (*markov.CTMC, error) {
	c := markov.NewCTMC()
	if err := c.AddRate("2", "1", 2*lam); err != nil {
		return nil, err
	}
	if err := c.AddRate("1", "0", lam); err != nil {
		return nil, err
	}
	if err := c.AddRate("1", "2", mu); err != nil {
		return nil, err
	}
	if err := c.AddRate("0", "1", mu); err != nil {
		return nil, err
	}
	return c, nil
}

// E7Transient computes the duplex system's point availability A(t) by
// uniformization and checks each value against a simulation confidence
// interval.
func E7Transient(rec obs.Recorder) (*core.Table, error) {
	t := &core.Table{
		ID:      "E7",
		Title:   "Duplex transient availability: uniformization vs simulation (99% CI)",
		Columns: []string{"t", "A_uniformization", "sim_lo", "sim_hi", "inside_CI"},
		Notes:   "every analytic point falls inside the simulation CI; A(t) decays from 1 to the steady state",
	}
	lam, mu := 0.05, 1.0
	c, err := duplexChain(lam, mu)
	if err != nil {
		return nil, err
	}
	p0, err := c.InitialAt("2")
	if err != nil {
		return nil, err
	}
	s, err := sim.NewCTMCPathSimulator(c)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(2024))
	for _, tt := range []float64{0.5, 2, 5, 10, 50} {
		sp := rec.Span("t=" + f64(tt))
		p, err := c.Transient(tt, p0, markov.TransientOptions{Recorder: sp})
		if err != nil {
			return nil, err
		}
		a, err := c.ProbSum(p, "2", "1")
		if err != nil {
			return nil, err
		}
		ci, err := s.EstimateTransientProb(rng, "2", tt, []string{"2", "1"}, 20000, 0.99)
		if err != nil {
			return nil, err
		}
		inside := "yes"
		if !ci.Contains(a) {
			inside = "NO"
		}
		sp.End()
		if err := t.AddRow(f64(tt), f64p(a, 6), f64p(ci.Lo, 6), f64p(ci.Hi, 6), inside); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// E8PhaseType measures how the Erlang-k expansion of a deterministic-ish
// Weibull lifetime converges: the sup-norm error of the PH reliability
// curve against the exact Weibull R(t) shrinks as phases are added.
func E8PhaseType(rec obs.Recorder) (*core.Table, error) {
	t := &core.Table{
		ID:      "E8",
		Title:   "Phase-type expansion of a Weibull(2) lifetime: CDF sup-error vs phases",
		Columns: []string{"phases", "fit_mean", "fit_scv", "sup_error"},
		Notes:   "mean-only Erlang error is U-shaped in k (best near k = 1/SCV ≈ 3.7); the two-moment fit hits that sweet spot automatically",
	}
	w, err := dist.NewWeibull(2, 100)
	if err != nil {
		return nil, err
	}
	rec.Set(obs.S("solver", "phase-type"))
	grid := make([]float64, 0, 60)
	for i := 1; i <= 60; i++ {
		grid = append(grid, float64(i)*5) // 5..300 covers the CDF body
	}
	supErr := func(ph *dist.PhaseType) float64 {
		var worst float64
		for _, x := range grid {
			if d := math.Abs(ph.CDF(x) - w.CDF(x)); d > worst {
				worst = d
			}
		}
		return worst
	}
	// Erlang-k with matched mean only (k fixed): error shrinks with k
	// because Weibull(2) has SCV ≈ 0.273 < 1.
	for _, k := range []int{1, 2, 4, 8, 16} {
		ph, err := dist.NewErlang(k, float64(k)/w.Mean())
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(itoa(k), f64p(ph.Mean(), 4), f64p(ph.SCV(), 4), f64p(supErr(ph), 5)); err != nil {
			return nil, err
		}
	}
	// Two-moment fit (Tijms mixture) as the recommended operating point.
	fit, err := phfit.FitDistribution(w)
	if err != nil {
		return nil, err
	}
	if err := t.AddRow(itoa(fit.Order())+" (2-moment fit)", f64p(fit.Mean(), 4),
		f64p(fit.SCV(), 4), f64p(supErr(fit), 5)); err != nil {
		return nil, err
	}
	return t, nil
}

// E9Uncertainty propagates lognormal uncertainty in the duplex failure rate
// into the steady-state availability and reports percentile intervals.
func E9Uncertainty(rec obs.Recorder) (*core.Table, error) {
	t := &core.Table{
		ID:      "E9",
		Title:   "Duplex availability under lognormal failure-rate uncertainty (LHS, n=3000)",
		Columns: []string{"lambda_cv", "A_mean", "A_p05", "A_p95", "interval_width"},
		Notes:   "interval width shrinks with parameter uncertainty; nominal availability lies inside every interval",
	}
	nominalLam, mu := 0.01, 1.0
	rec.Set(obs.S("solver", "gth"), obs.I("samples_per_cv", 3000))
	model := func(p map[string]float64) (float64, error) {
		c, err := duplexChain(p["lambda"], mu)
		if err != nil {
			return 0, err
		}
		pi, err := c.SteadyStateMap()
		if err != nil {
			return 0, err
		}
		return pi["2"] + pi["1"], nil
	}
	nominalChain, err := duplexChain(nominalLam, mu)
	if err != nil {
		return nil, err
	}
	nomPi, err := nominalChain.SteadyStateMap()
	if err != nil {
		return nil, err
	}
	nominalA := nomPi["2"] + nomPi["1"]
	prevWidth := math.Inf(1)
	for _, cv := range []float64{0.5, 0.3, 0.1} {
		lnd, err := dist.NewLognormalFromMoments(nominalLam, cv)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(77))
		res, err := uncertainty.Propagate(model,
			[]uncertainty.Param{{Name: "lambda", Dist: lnd}},
			uncertainty.Options{Samples: 3000, LatinHypercube: true}, rng)
		if err != nil {
			return nil, err
		}
		lo, hi, err := res.Interval(0.9)
		if err != nil {
			return nil, err
		}
		if !(lo <= nominalA && nominalA <= hi) {
			return nil, fmt.Errorf("E9: nominal %g outside [%g, %g]", nominalA, lo, hi)
		}
		width := hi - lo
		if width > prevWidth {
			return nil, fmt.Errorf("E9: width %g grew from %g as cv shrank", width, prevWidth)
		}
		prevWidth = width
		if err := t.AddRow(f64(cv), f64p(res.Mean, 8), f64p(lo, 8), f64p(hi, 8), f64(width)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// E10SPN sweeps the coverage factor of an imperfect-coverage model built as
// a GSPN (with immediate transitions) and as a hand-built CTMC, reporting
// both availabilities and their difference (which must vanish).
func E10SPN(rec obs.Recorder) (*core.Table, error) {
	t := &core.Table{
		ID:      "E10",
		Title:   "Imperfect-coverage model: GSPN-generated CTMC vs hand-built chain",
		Columns: []string{"coverage", "tangible_states", "A_spn", "A_hand", "abs_diff"},
		Notes:   "vanishing markings are eliminated exactly; both formulations agree to solver precision",
	}
	lam, muD, muF := 0.02, 2.0, 0.2
	rec.Set(obs.S("solver", "spn-ctmc"))
	for _, cov := range []float64{0.5, 0.9, 0.99, 0.999} {
		net, err := coverageNet(lam, muD, muF, cov)
		if err != nil {
			return nil, err
		}
		tc, err := net.Generate(0)
		if err != nil {
			return nil, err
		}
		oi, err := net.PlaceIndex("ok")
		if err != nil {
			return nil, err
		}
		di, err := net.PlaceIndex("degraded")
		if err != nil {
			return nil, err
		}
		aSPN, err := tc.ProbWhere(func(m spnMarking) bool { return m[oi] == 1 || m[di] == 1 })
		if err != nil {
			return nil, err
		}
		hand := markov.NewCTMC()
		if err := hand.AddRate("ok", "deg", lam*cov); err != nil {
			return nil, err
		}
		if err := hand.AddRate("ok", "fail", lam*(1-cov)); err != nil {
			return nil, err
		}
		if err := hand.AddRate("deg", "ok", muD); err != nil {
			return nil, err
		}
		if err := hand.AddRate("fail", "ok", muF); err != nil {
			return nil, err
		}
		pi, err := hand.SteadyStateMap()
		if err != nil {
			return nil, err
		}
		aHand := pi["ok"] + pi["deg"]
		diff := math.Abs(aSPN - aHand)
		if diff > 1e-12 {
			return nil, fmt.Errorf("E10: SPN %g vs hand %g", aSPN, aHand)
		}
		if err := t.AddRow(f64(cov), itoa(tc.NumTangible()), f64(aSPN), f64(aHand), f64(diff)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// E11Rejuvenation sweeps the deterministic rejuvenation interval of the
// MRGP model and reports planned, unplanned, and total unavailability —
// the classic U-shaped curve with an interior optimum.
//
// Aging is modeled by a two-stage (hypoexponential) lifetime: robust →
// degraded (latent, rate lamD) → failed (rate lamF). The rejuvenation timer
// runs in both up states (restarting on the robust→degraded jump, the
// clock-resetting variant expressible with state-local clocks): firing in
// robust wastes healthy time, firing in degraded prevents an expensive
// failure. Too-short intervals rejuvenate constantly; too-long intervals
// admit failures — hence the interior optimum. With an exponential (
// memoryless) lifetime no such optimum exists, which is exactly why the
// tutorial needs MRGPs here.
func E11Rejuvenation(rec obs.Recorder) (*core.Table, error) {
	t := &core.Table{
		ID:      "E11",
		Title:   "Software rejuvenation MRGP: unavailability vs rejuvenation interval",
		Columns: []string{"interval", "P_failed(unplanned)", "P_rejuv(planned)", "total_unavail"},
		Notes:   "short intervals waste planned downtime, long intervals admit failures; the optimum is interior",
	}
	rec.Set(obs.S("solver", "mrgp-edtmc"))
	lamD, lamF := 0.1, 0.05 // degradation and failure rates (aging lifetime)
	muF, muR := 0.1, 2.0    // failures repair 20x slower than rejuvenation
	// Baseline without rejuvenation: robust → degraded → failed → robust.
	baselineChain := markov.NewCTMC()
	if err := baselineChain.AddRate("robust", "degraded", lamD); err != nil {
		return nil, err
	}
	if err := baselineChain.AddRate("degraded", "failed", lamF); err != nil {
		return nil, err
	}
	if err := baselineChain.AddRate("failed", "robust", muF); err != nil {
		return nil, err
	}
	base, err := baselineChain.SteadyStateMap()
	if err != nil {
		return nil, err
	}
	if err := t.AddRow("no rejuvenation", f64(base["failed"]), "0", f64(base["failed"])); err != nil {
		return nil, err
	}
	for _, tau := range []float64{1, 2, 5, 10, 20, 50, 200} {
		p := mrgp.New()
		if err := p.AddExp("robust", "degraded", lamD); err != nil {
			return nil, err
		}
		if err := p.SetDeterministic("robust", "rejuv", tau); err != nil {
			return nil, err
		}
		if err := p.AddExp("degraded", "failed", lamF); err != nil {
			return nil, err
		}
		if err := p.SetDeterministic("degraded", "rejuv", tau); err != nil {
			return nil, err
		}
		if err := p.AddExp("failed", "robust", muF); err != nil {
			return nil, err
		}
		if err := p.AddExp("rejuv", "robust", muR); err != nil {
			return nil, err
		}
		pi, err := p.SteadyState()
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(f64(tau), f64(pi["failed"]), f64(pi["rejuv"]),
			f64(pi["failed"]+pi["rejuv"])); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// E12RelGraph solves the bridge network and growing ladder networks by
// factoring, cross-checks against the BDD oracle, and shows the rare-event
// cut approximation alongside.
func E12RelGraph(rec obs.Recorder) (*core.Table, error) {
	t := &core.Table{
		ID:      "E12",
		Title:   "Network reliability: factoring vs BDD vs cut-based rare-event approximation",
		Columns: []string{"network", "edges", "R_factoring", "R_bdd", "unrel_rare_event", "factoring_ms"},
		Notes:   "factoring equals the BDD oracle; rare-event approximation of unreliability is an upper bound",
	}
	addNetwork := func(name string, g *relgraph.Graph, src, dst string) error {
		sp := rec.Span(name, obs.S("solver", "factoring"), obs.I("edges", len(g.Edges())))
		defer sp.End()
		var rf float64
		dur, err := timed(func() error {
			var err error
			rf, err = g.Reliability(src, dst)
			return err
		})
		if err != nil {
			return err
		}
		rb, err := g.ReliabilityBDD(src, dst)
		if err != nil {
			return err
		}
		if math.Abs(rf-rb) > 1e-10 {
			return fmt.Errorf("E12: factoring %g vs BDD %g on %s", rf, rb, name)
		}
		cuts, err := g.MinimalCuts(src, dst)
		if err != nil {
			return err
		}
		relOf := make(map[string]float64, len(g.Edges()))
		for _, e := range g.Edges() {
			relOf[e.Name] = e.Rel
		}
		var rare float64
		for _, cut := range cuts {
			p := 1.0
			for _, name := range cut {
				p *= 1 - relOf[name]
			}
			rare += p
		}
		if rare < (1-rf)-1e-12 {
			return fmt.Errorf("E12: rare-event %g below exact unreliability %g", rare, 1-rf)
		}
		return t.AddRow(name, itoa(len(g.Edges())), f64(rf), f64(rb), f64(rare), ms(dur))
	}
	// Bridge.
	bridge := relgraph.New()
	for _, e := range []relgraph.Edge{
		{Name: "e1", From: "s", To: "a", Rel: 0.95},
		{Name: "e2", From: "s", To: "b", Rel: 0.9},
		{Name: "e3", From: "a", To: "b", Rel: 0.8},
		{Name: "e4", From: "a", To: "t", Rel: 0.95},
		{Name: "e5", From: "b", To: "t", Rel: 0.9},
	} {
		if err := bridge.AddEdge(e); err != nil {
			return nil, err
		}
	}
	if err := addNetwork("bridge", bridge, "s", "t"); err != nil {
		return nil, err
	}
	// Ladders of growing length.
	for _, rungs := range []int{3, 6, 9} {
		g := relgraph.New()
		prev := "s"
		for i := 0; i < rungs; i++ {
			node := fmt.Sprintf("n%d", i)
			if err := g.AddEdge(relgraph.Edge{Name: fmt.Sprintf("a%d", i), From: prev, To: node, Rel: 0.9}); err != nil {
				return nil, err
			}
			if err := g.AddEdge(relgraph.Edge{Name: fmt.Sprintf("b%d", i), From: prev, To: node, Rel: 0.85}); err != nil {
				return nil, err
			}
			prev = node
		}
		if err := g.AddEdge(relgraph.Edge{Name: "last", From: prev, To: "t", Rel: 0.99}); err != nil {
			return nil, err
		}
		if err := addNetwork(fmt.Sprintf("ladder-%d", rungs), g, "s", "t"); err != nil {
			return nil, err
		}
	}
	return t, nil
}
