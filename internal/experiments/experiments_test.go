package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.Fields(s)[0], 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	r, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	ids := r.IDs()
	if len(ids) != 16 {
		t.Fatalf("experiments = %d, want 16", len(ids))
	}
	for i, id := range ids {
		want := "E" + strconv.Itoa(i+1)
		if id != want {
			t.Errorf("ids[%d] = %s, want %s", i, id, want)
		}
	}
}

func runExp(t *testing.T, id string) *core.Table {
	t.Helper()
	r, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	e, err := r.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.Run(obs.Nop())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return tbl
}

func TestE1Shape(t *testing.T) {
	tbl := runExp(t, "E1")
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// BDD nodes grow roughly linearly: nodes(400) < 50 × nodes(10).
	n10 := parse(t, tbl.Rows[0][1])
	n400 := parse(t, tbl.Rows[4][1])
	if n400 > 50*n10 {
		t.Errorf("BDD growth superlinear: %g vs %g", n400, n10)
	}
	// Availability decreases with more series stages.
	if parse(t, tbl.Rows[0][2]) <= parse(t, tbl.Rows[4][2]) {
		t.Errorf("availability should fall with size")
	}
}

func TestE2Shape(t *testing.T) {
	tbl := runExp(t, "E2")
	for _, row := range tbl.Rows {
		top := parse(t, row[3])
		bound := parse(t, row[4])
		if bound < top-1e-15 {
			t.Errorf("rare-event %g below exact %g", bound, top)
		}
		// Cut sets = pairs + shared event.
		pairs := parse(t, row[0])
		if parse(t, row[2]) != pairs+1 {
			t.Errorf("mincuts = %s, want %g", row[2], pairs+1)
		}
	}
}

func TestE3Shape(t *testing.T) {
	tbl := runExp(t, "E3")
	for i, row := range tbl.Rows {
		n := parse(t, row[0])
		states := parse(t, row[1])
		if states != float64(int(1)<<int(n)) {
			t.Errorf("row %d: states = %g, want 2^%g", i, states, n)
		}
		a := parse(t, row[2])
		if a <= 0 || a >= 1 {
			t.Errorf("row %d: p_all_up = %g", i, a)
		}
	}
}

func TestE4Shape(t *testing.T) {
	tbl := runExp(t, "E4")
	prevWidth := 1e18
	for i, row := range tbl.Rows {
		lo, hi, width := parse(t, row[2]), parse(t, row[3]), parse(t, row[4])
		if lo > hi {
			t.Errorf("row %d: lo %g > hi %g", i, lo, hi)
		}
		if width > prevWidth+1e-15 {
			t.Errorf("row %d: width %g did not tighten from %g", i, width, prevWidth)
		}
		prevWidth = width
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if parse(t, last[4]) > 1e-12 {
		t.Errorf("full-keep width = %s, want 0", last[4])
	}
}

func TestE5Shape(t *testing.T) {
	tbl := runExp(t, "E5")
	for i, row := range tbl.Rows {
		aRBD, aCTMC := parse(t, row[1]), parse(t, row[2])
		if aRBD < aCTMC-1e-12 {
			t.Errorf("row %d: RBD %g not optimistic vs %g", i, aRBD, aCTMC)
		}
		ratio := parse(t, row[3])
		if ratio < 1-1e-9 || ratio > 2+1e-9 {
			t.Errorf("row %d: unavailability ratio %g outside [1,2]", i, ratio)
		}
	}
	// In the rare-failure regime the queueing contribution doubles the
	// unavailability (ratio → 2).
	if r0 := parse(t, tbl.Rows[0][3]); r0 < 1.99 {
		t.Errorf("rare-failure ratio = %g, want ≈ 2", r0)
	}
}

func TestE6Shape(t *testing.T) {
	tbl := runExp(t, "E6")
	for i, row := range tbl.Rows {
		k := parse(t, row[0])
		mono := parse(t, row[1])
		want := 1.0
		for j := 0; j < int(k); j++ {
			want *= 3
		}
		if mono != want {
			t.Errorf("row %d: monolithic states %g, want 3^%g = %g", i, mono, k, want)
		}
		if parse(t, row[5]) > 1e-9 {
			t.Errorf("row %d: hierarchy differs from monolith by %s", i, row[5])
		}
	}
}

func TestE7Shape(t *testing.T) {
	tbl := runExp(t, "E7")
	prevA := 1.1
	for i, row := range tbl.Rows {
		if row[4] != "yes" {
			t.Errorf("row %d: analytic point outside simulation CI", i)
		}
		a := parse(t, row[1])
		if a >= prevA {
			t.Errorf("row %d: A(t) should decay (got %g after %g)", i, a, prevA)
		}
		prevA = a
	}
}

func TestE8Shape(t *testing.T) {
	tbl := runExp(t, "E8")
	// Weibull(2) has SCV ≈ 0.273, so the best mean-only Erlang order is
	// k ≈ 4: error falls from k=1 to k=4 and rises again beyond.
	erlangErrs := make([]float64, 0, len(tbl.Rows)-1)
	for i := 0; i < len(tbl.Rows)-1; i++ {
		erlangErrs = append(erlangErrs, parse(t, tbl.Rows[i][3]))
	}
	// k values are 1,2,4,8,16 → index 2 is k=4.
	for i := 1; i <= 2; i++ {
		if erlangErrs[i] >= erlangErrs[i-1] {
			t.Errorf("Erlang error should fall to k=4: %v", erlangErrs)
		}
	}
	for i := 3; i < len(erlangErrs); i++ {
		if erlangErrs[i] <= erlangErrs[i-1] {
			t.Errorf("Erlang error should rise beyond k=4 (mean-only fit): %v", erlangErrs)
		}
	}
	// Two-moment fit matches mean of Weibull(2,100) and is at least as good
	// as every mean-only Erlang order.
	fitRow := tbl.Rows[len(tbl.Rows)-1]
	if m := parse(t, fitRow[1]); m < 88 || m > 89 { // Γ(1.5)·100 ≈ 88.62
		t.Errorf("fit mean = %g", m)
	}
	fitErr := parse(t, fitRow[3])
	for i, e := range erlangErrs {
		if fitErr > e+1e-9 {
			t.Errorf("two-moment fit error %g worse than Erlang row %d (%g)", fitErr, i, e)
		}
	}
}

func TestE9Shape(t *testing.T) {
	tbl := runExp(t, "E9")
	prevWidth := 1e18
	for i, row := range tbl.Rows {
		lo, hi := parse(t, row[2]), parse(t, row[3])
		if lo > hi {
			t.Errorf("row %d: interval inverted", i)
		}
		w := parse(t, row[4])
		if w > prevWidth {
			t.Errorf("row %d: width %g grew", i, w)
		}
		prevWidth = w
	}
}

func TestE10Shape(t *testing.T) {
	tbl := runExp(t, "E10")
	for i, row := range tbl.Rows {
		if parse(t, row[1]) != 3 {
			t.Errorf("row %d: tangible states = %s, want 3", i, row[1])
		}
		if parse(t, row[4]) > 1e-12 {
			t.Errorf("row %d: SPN vs hand diff = %s", i, row[4])
		}
	}
}

func TestE11Shape(t *testing.T) {
	tbl := runExp(t, "E11")
	// Row 0 is the no-rejuvenation baseline; among the sweep rows the total
	// unavailability must have an interior minimum strictly below both the
	// shortest and the longest interval.
	if len(tbl.Rows) < 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	sweep := tbl.Rows[1:]
	first := parse(t, sweep[0][3])
	last := parse(t, sweep[len(sweep)-1][3])
	best := 1e18
	for _, row := range sweep {
		if v := parse(t, row[3]); v < best {
			best = v
		}
	}
	if !(best < first && best < last) {
		t.Errorf("no interior optimum: best %g, ends %g / %g", best, first, last)
	}
	// Planned downtime decreases with the interval.
	if parse(t, sweep[0][2]) <= parse(t, sweep[len(sweep)-1][2]) {
		t.Errorf("planned downtime should fall with longer intervals")
	}
}

func TestE12Shape(t *testing.T) {
	tbl := runExp(t, "E12")
	for i, row := range tbl.Rows {
		rf, rb := parse(t, row[2]), parse(t, row[3])
		if diff := rf - rb; diff > 1e-10 || diff < -1e-10 {
			t.Errorf("row %d: factoring %g vs BDD %g", i, rf, rb)
		}
		rare := parse(t, row[4])
		if rare < (1-rf)-1e-12 {
			t.Errorf("row %d: rare-event %g below exact unreliability %g", i, rare, 1-rf)
		}
	}
}

func TestE13Shape(t *testing.T) {
	tbl := runExp(t, "E13")
	for i, row := range tbl.Rows {
		n := parse(t, row[0])
		if parse(t, row[1]) != float64(int(1)<<int(n)) {
			t.Errorf("row %d: detailed states %s != 2^%g", i, row[1], n)
		}
		if parse(t, row[2]) != n+1 {
			t.Errorf("row %d: lumped states %s != n+1", i, row[2])
		}
		if d := parse(t, row[3]) - parse(t, row[4]); d > 1e-10 || d < -1e-10 {
			t.Errorf("row %d: availabilities differ by %g", i, d)
		}
	}
}

func TestE14Shape(t *testing.T) {
	tbl := runExp(t, "E14")
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (n=8,10,12)", len(tbl.Rows))
	}
	for i, row := range tbl.Rows {
		n := parse(t, row[0])
		if parse(t, row[1]) != float64(int(1)<<int(n)) {
			t.Errorf("row %d: detailed states %s != 2^%g", i, row[1], n)
		}
		// The coarsest partition of the symmetric farm is the failure
		// count: n+1 blocks out of 2^n states.
		if parse(t, row[2]) != n+1 {
			t.Errorf("row %d: discovered blocks %s != n+1", i, row[2])
		}
		off, auto := parse(t, row[3]), parse(t, row[4])
		if rel := (off - auto) / off; rel > 1e-9 || rel < -1e-9 {
			t.Errorf("row %d: MTTAs differ by %g relative", i, rel)
		}
	}
}

func TestE15Shape(t *testing.T) {
	t.Setenv(e15SamplesEnv, "") // pin the CI-sized two-row sweep
	tbl := runExp(t, "E15")
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (2k and 20k samples)", len(tbl.Rows))
	}
	for i, row := range tbl.Rows {
		samples := parse(t, row[0])
		shards := parse(t, row[1])
		if shards != samples/500 {
			t.Errorf("row %d: shards = %g, want samples/500 = %g", i, shards, samples/500)
		}
		p05, p50, p95 := parse(t, row[5]), parse(t, row[6]), parse(t, row[7])
		if !(p05 <= p50 && p50 <= p95) {
			t.Errorf("row %d: quantiles disordered: %g / %g / %g", i, p05, p50, p95)
		}
		exact := parse(t, row[8])
		// The exact solve sits inside the sweep's 5–95% band: the
		// uncertain factor has median 1, so the distribution straddles
		// the unmodified document's availability.
		if exact < p05 || exact > p95 {
			t.Errorf("row %d: exact %g outside [p05, p95] = [%g, %g]", i, exact, p05, p95)
		}
		if relErr := parse(t, row[9]); relErr > 0.01 {
			t.Errorf("row %d: P50 relative error %g exceeds 1%%", i, relErr)
		}
		if rss := parse(t, row[4]); rss <= 0 {
			t.Errorf("row %d: peak RSS %g not reported", i, rss)
		}
	}
	// O(1) memory contract: 10× the samples must not blow up the peak
	// RSS. The high-water mark is monotone, so allow modest growth from
	// ordinary allocator churn, but nothing resembling sample retention.
	if r0, r1 := parse(t, tbl.Rows[0][4]), parse(t, tbl.Rows[1][4]); r1 > 2*r0+64 {
		t.Errorf("peak RSS grew from %g to %g MiB across a 10x sample increase", r0, r1)
	}
}

func TestE16Shape(t *testing.T) {
	t.Setenv(e16HoursEnv, "") // pin the CI-sized six-hour horizon
	tbl := runExp(t, "E16")
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (calm, congested, flapping)", len(tbl.Rows))
	}
	prevMeasured := 1.1
	for i, row := range tbl.Rows {
		measured, modeled, gap := parse(t, row[5]), parse(t, row[6]), parse(t, row[7])
		// Scenarios are ordered by increasing turbulence, so measured
		// availability must strictly decrease down the table.
		if measured >= prevMeasured {
			t.Errorf("row %d: measured %g not below previous %g", i, measured, prevMeasured)
		}
		prevMeasured = measured
		if measured <= 0 || measured >= 1 {
			t.Errorf("row %d: measured availability %g outside (0,1)", i, measured)
		}
		if d := modeled - measured; d > e16Band || d < -e16Band {
			t.Errorf("row %d: modeled %g vs measured %g outside band %g", i, modeled, measured, e16Band)
		}
		abs := modeled - measured
		if abs < 0 {
			abs = -abs
		}
		// The availabilities are printed to 8 significant digits, so the
		// recomputed gap can drift a few 1e-9 from the reported column.
		if diff := gap - abs; diff > 1e-7 || diff < -1e-7 {
			t.Errorf("row %d: abs_gap column %g inconsistent with |%g - %g|", i, gap, modeled, measured)
		}
	}
}

func TestRunAllRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full run in long mode only")
	}
	r, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.RunAll(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for i := 1; i <= 16; i++ {
		if !strings.Contains(out, "E"+strconv.Itoa(i)+" — ") {
			t.Errorf("output missing E%d", i)
		}
	}
}
