package experiments

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strconv"
	"syscall"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/modelio"
	"repro/internal/obs"
)

// e15SamplesEnv overrides the sweep sizes for the full-scale run:
// E15_SAMPLES=10000000 runs a single ten-million-sample sweep (the
// EXPERIMENTS.md E15 headline numbers). Unset, the experiment runs
// CI-sized sweeps so the suite stays fast.
const e15SamplesEnv = "E15_SAMPLES"

// E15JobSweep is the extension experiment for the reljob async engine:
// a sharded Monte Carlo uncertainty sweep over the bundled
// models/repairfarm.json CTMC, run through internal/jobs exactly as a
// `POST /jobs` submission would be. The uncertain input is the first
// failure rate, scaled by a median-1 lognormal factor (σ = 0.25, i.e.
// "known to roughly ±25%"). Availability is monotone in that rate, so
// the sweep's P50 must agree with the exact SOR solve of the unmodified
// document — a quantile-agreement check that exercises the full
// shard/fold pipeline, not just the sampler. The table reports wall
// time, throughput, and the process peak RSS, demonstrating the O(1)
// memory contract: the footprint is flat in the sample count because
// shards fold into streaming P² estimators instead of retaining samples.
func E15JobSweep(rec obs.Recorder) (*core.Table, error) {
	t := &core.Table{
		ID:      "E15",
		Title:   "Async job engine: sharded uncertainty sweep matches the exact solve in O(1) memory (extension)",
		Columns: []string{"samples", "shards", "wall_ms", "samples_per_s", "peak_rss_mb", "p05", "p50", "p95", "exact_avail", "p50_rel_err"},
		Notes:   "peak RSS is the process high-water mark (monotone across rows); E15_SAMPLES=10000000 reruns the headline sweep",
	}
	raw, err := repairFarmDocument()
	if err != nil {
		return nil, err
	}
	exact, err := exactAvailability(raw)
	if err != nil {
		return nil, err
	}

	sizes := []int{2000, 20000}
	if env := os.Getenv(e15SamplesEnv); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("E15: bad %s=%q", e15SamplesEnv, env)
		}
		sizes = []int{n}
	}

	eng, err := jobs.New(jobs.Config{Workers: 4, Registry: metrics.NewRegistry()})
	if err != nil {
		return nil, err
	}
	defer eng.Close(context.Background())

	for _, n := range sizes {
		spec := &jobs.Spec{
			Model:   raw,
			Measure: "availability",
			Params: []jobs.ParamSpec{{
				Name:  "lambda0",
				Dist:  &modelio.DistSpec{Kind: "lognormal", Mu: 0, Sigma: 0.25},
				From:  "0down",
				To:    "1down",
				Scale: true,
			}},
			Samples:   n,
			ShardSize: 500,
			Seed:      20160628,
			Quantiles: []float64{0.05, 0.5, 0.95},
		}

		sp := rec.Span("samples=" + itoa(n))
		var final *jobs.Snapshot
		dur, err := timed(func() error {
			snap, _, err := eng.Submit(spec, "")
			if err != nil {
				return err
			}
			final, err = eng.Wait(context.Background(), snap.ID)
			return err
		})
		sp.End()
		if err != nil {
			return nil, err
		}
		if final.State != jobs.StateDone || final.Result == nil {
			return nil, fmt.Errorf("E15: job ended %s: %s", final.State, final.Error)
		}

		p05, err := final.Result.Quantile(0.05)
		if err != nil {
			return nil, err
		}
		p50, err := final.Result.Quantile(0.5)
		if err != nil {
			return nil, err
		}
		p95, err := final.Result.Quantile(0.95)
		if err != nil {
			return nil, err
		}
		if !(p05 <= p50 && p50 <= p95) {
			return nil, fmt.Errorf("E15: quantiles disordered: %g / %g / %g", p05, p50, p95)
		}
		relErr := (p50 - exact) / exact
		if relErr < 0 {
			relErr = -relErr
		}
		// The scale factor has median 1 and availability is monotone in
		// the rate, so the sweep's median must sit on the exact solve of
		// the unmodified document (within Monte Carlo + P² error).
		if relErr > 0.01 {
			return nil, fmt.Errorf("E15: P50 %g disagrees with exact availability %g (rel err %g)", p50, exact, relErr)
		}

		throughput := float64(n) / dur.Seconds()
		if err := t.AddRow(itoa(n), itoa(final.Shards), ms(dur),
			f64p(throughput, 0), f64p(peakRSSMB(), 1),
			f64(p05), f64(p50), f64(p95), f64(exact), f64(relErr)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// repairFarmDocument loads the bundled machine-repair-farm model, from
// the repo root (cmd/experiments) or the package directory (go test).
func repairFarmDocument() ([]byte, error) {
	var firstErr error
	for _, path := range []string{"models/repairfarm.json", "../../models/repairfarm.json"} {
		raw, err := os.ReadFile(path)
		if err == nil {
			return raw, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, fmt.Errorf("E15: repairfarm model not found: %w", firstErr)
}

// exactAvailability solves the document as submitted and returns its
// steady-state availability.
func exactAvailability(raw []byte) (float64, error) {
	spec, err := modelio.Parse(bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	results, err := modelio.Solve(spec)
	if err != nil {
		return 0, err
	}
	for _, r := range results {
		if r.Measure == "availability" {
			return r.Value, nil
		}
	}
	return 0, fmt.Errorf("E15: solve returned no availability measure")
}

// peakRSSMB reports the process peak resident set in MiB via getrusage.
// On Linux ru_maxrss is in KiB.
func peakRSSMB() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Maxrss) / 1024
}
