package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/slo"
)

// e16HoursEnv overrides the simulated horizon per scenario:
// E16_HOURS=48 runs two simulated days instead of the CI-sized six
// hours, tightening the fitted rates (the EXPERIMENTS.md E16 numbers
// use the default).
const e16HoursEnv = "E16_HOURS"

// e16Band is the documented modeled-vs-measured acceptance band: the
// fitted self-CTMC's steady-state availability must land within this
// absolute gap of the ground-truth up fraction.
const e16Band = 0.05

// e16Cadence is the sampling interval, matching the serve default for
// -selfmodel-every.
const e16Cadence = 2 * time.Second

// e16State is one state of the ground-truth trajectory: an exponential
// mean dwell and a branching distribution over successors.
type e16State struct {
	mean float64 // seconds
	next []e16Branch
}

type e16Branch struct {
	to string
	p  float64
}

// e16Scenario is a named ground-truth process the self-model observes.
type e16Scenario struct {
	name   string
	states map[string]e16State
}

// e16Scenarios are three serve lifecycles of increasing turbulence:
// calm (long healthy stretches, brief breaker-open outages), congested
// (saturation episodes that sometimes tip into an open breaker), and
// flapping (rapid ok/open cycling, the worst case for budget burn).
func e16Scenarios() []e16Scenario {
	return []e16Scenario{
		{name: "calm", states: map[string]e16State{
			"ok":   {mean: 300, next: []e16Branch{{to: "open", p: 1}}},
			"open": {mean: 10, next: []e16Branch{{to: "ok", p: 1}}},
		}},
		{name: "congested", states: map[string]e16State{
			"ok":        {mean: 60, next: []e16Branch{{to: "saturated", p: 0.7}, {to: "open", p: 0.3}}},
			"saturated": {mean: 20, next: []e16Branch{{to: "ok", p: 0.8}, {to: "open", p: 0.2}}},
			"open":      {mean: 15, next: []e16Branch{{to: "ok", p: 1}}},
		}},
		{name: "flapping", states: map[string]e16State{
			"ok":   {mean: 40, next: []e16Branch{{to: "open", p: 1}}},
			"open": {mean: 12, next: []e16Branch{{to: "ok", p: 1}}},
		}},
	}
}

// E16SelfModel validates the serve self-modeling loop end to end
// against ground truth it can never have in production. A known CTMC
// plays the part of the serving process (states ok/saturated/open with
// exponential dwells); the experiment watches it exactly the way serve
// watches itself — sampling the current state every two seconds into
// slo.SelfModel — then solves the fitted chain and compares predicted
// steady-state availability against the trajectory's true up fraction.
// The sampled observer quantizes dwell times and misses excursions
// shorter than its cadence, so agreement is not a tautology: the row
// fails the run if the gap exceeds the documented 0.05 band.
func E16SelfModel(rec obs.Recorder) (*core.Table, error) {
	t := &core.Table{
		ID:      "E16",
		Title:   "Self-model fidelity: sampled availability CTMC of the server matches ground truth (extension)",
		Columns: []string{"scenario", "sim_hours", "samples", "states", "transitions", "measured_avail", "modeled_avail", "abs_gap"},
		Notes:   "measured = ground-truth up fraction (ok+saturated); modeled = gth steady state of the fitted chain; gap band " + f64p(e16Band, 2) + "; E16_HOURS extends the horizon",
	}
	hours := 6.0
	if env := os.Getenv(e16HoursEnv); env != "" {
		h, err := strconv.ParseFloat(env, 64)
		if err != nil || h <= 0 {
			return nil, fmt.Errorf("E16: bad %s=%q", e16HoursEnv, env)
		}
		hours = h
	}
	horizon := hours * 3600
	base := time.Unix(1_700_000_000, 0)

	for i, sc := range e16Scenarios() {
		sp := rec.Span("scenario=" + sc.name)
		rng := rand.New(rand.NewSource(int64(20160628 + i)))
		sm := slo.NewSelfModel()
		truth := map[string]float64{}
		samples := 0

		cur := "ok"
		now := 0.0
		nextSample := 0.0
		for now < horizon {
			st, ok := sc.states[cur]
			if !ok {
				sp.End()
				return nil, fmt.Errorf("E16: scenario %s: unknown state %q", sc.name, cur)
			}
			end := now + rng.ExpFloat64()*st.mean
			visible := end
			if visible > horizon {
				visible = horizon
			}
			truth[cur] += visible - now
			for nextSample < visible {
				sm.Step(cur, base.Add(time.Duration(nextSample*float64(time.Second))))
				samples++
				nextSample += e16Cadence.Seconds()
			}
			now = end
			u := rng.Float64()
			for _, b := range st.next {
				if u -= b.p; u <= 0 {
					cur = b.to
					break
				}
			}
		}

		var total float64
		for _, d := range truth {
			total += d
		}
		measured := (truth["ok"] + truth["saturated"]) / total

		pred, err := sm.Predict([]string{"ok", "saturated"}, base.Add(time.Duration(horizon*float64(time.Second))))
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("E16: scenario %s: %w", sc.name, err)
		}
		gap := pred.Availability - measured
		if gap < 0 {
			gap = -gap
		}
		if gap > e16Band {
			return nil, fmt.Errorf("E16: scenario %s: modeled %g vs measured %g (gap %g exceeds band %g)",
				sc.name, pred.Availability, measured, gap, e16Band)
		}
		if err := t.AddRow(sc.name, f64p(hours, 1), itoa(samples),
			itoa(pred.States), itoa(pred.Transitions),
			f64(measured), f64(pred.Availability), f64(gap)); err != nil {
			return nil, err
		}
	}
	return t, nil
}
