package experiments

import (
	"fmt"
	"math/bits"
	"strconv"

	"repro/internal/core"
	"repro/internal/modelio"
	"repro/internal/obs"
)

// E14AutoLump is the extension experiment for the automatic lumping
// pre-pass: the symmetric shared-repair farm of E13, but solved through
// the modelio document pipeline, where internal/relstruct must
// *discover* the lumpability rather than being handed the block map.
// The measure is the mean time to total failure (mtta), whose detailed
// solve is a dense O(states³) linear system — the case where largeness
// avoidance stops being a convenience and becomes the difference between
// feasible and not. The table compares the detailed solve (lump "off")
// against the pre-pass (lump "auto"): the MTTAs must match to solver
// precision while the pre-pass sidesteps the cubic cost.
func E14AutoLump(rec obs.Recorder) (*core.Table, error) {
	t := &core.Table{
		ID:      "E14",
		Title:   "Automatic lumping pre-pass: discovered reduction makes the cubic MTTA solve cheap (extension)",
		Columns: []string{"components", "detailed_states", "lumped_blocks", "MTTA_detailed", "MTTA_auto", "detailed_ms", "auto_ms"},
		Notes:   "lump \"auto\" lets relstruct find the coarsest ordinarily-lumpable partition; the MTTA is exact, not approximate",
	}
	lam, mu := 0.05, 1.0
	for _, n := range []int{4, 6, 8} {
		off := farmDocument(n, lam, mu, "off")
		auto := farmDocument(n, lam, mu, "auto")

		sp := rec.Span("n=" + itoa(n))
		var mttaOff float64
		offDur, err := timed(func() error {
			res, err := modelio.SolveWithOptions(off, modelio.SolveOptions{Recorder: sp})
			if err != nil {
				return err
			}
			mttaOff = res[0].Value
			return nil
		})
		if err != nil {
			return nil, err
		}

		tr := obs.NewTrace("E14-auto")
		var mttaAuto float64
		autoDur, err := timed(func() error {
			res, err := modelio.SolveWithOptions(auto, modelio.SolveOptions{Recorder: obs.Multi(sp, tr)})
			if err != nil {
				return err
			}
			mttaAuto = res[0].Value
			return nil
		})
		if err != nil {
			return nil, err
		}
		sp.End()

		if rel := (mttaOff - mttaAuto) / mttaOff; rel > 1e-9 || rel < -1e-9 {
			return nil, fmt.Errorf("E14: auto-lumped MTTA %g vs detailed %g", mttaAuto, mttaOff)
		}
		blocks, err := lumpBlocks(tr.Finish())
		if err != nil {
			return nil, fmt.Errorf("E14 n=%d: %w", n, err)
		}
		if err := t.AddRow(itoa(n), itoa(1<<n), itoa(blocks),
			f64(mttaOff), f64(mttaAuto), ms(offDur), ms(autoDur)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// farmDocument is E13's symmetric shared-repair farm expressed as a model
// document: n identical machines failing at lam, one repairer fixing the
// lowest-indexed failed machine at mu, measuring the mean time until all
// n are down simultaneously.
func farmDocument(n int, lam, mu float64, lump string) *modelio.Spec {
	name := func(mask int) string { return "m" + strconv.Itoa(mask) }
	spec := &modelio.CTMCSpec{Measures: []string{"mtta"}, Lump: lump}
	full := (1 << n) - 1
	for mask := 0; mask <= full; mask++ {
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				spec.Transitions = append(spec.Transitions, modelio.CTMCTransition{
					From: name(mask), To: name(mask | 1<<i), Rate: lam,
				})
			}
		}
		if mask != 0 {
			low := bits.TrailingZeros(uint(mask))
			spec.Transitions = append(spec.Transitions, modelio.CTMCTransition{
				From: name(mask), To: name(mask &^ (1 << low)), Rate: mu,
			})
		}
	}
	spec.Initial = name(0)
	spec.Absorbing = []string{name(full)}
	return &modelio.Spec{Type: "ctmc", Name: "farm-" + itoa(n), CTMC: spec}
}

// lumpBlocks digs the discovered block count out of the solve trace's
// relstruct.lump span.
func lumpBlocks(root *obs.Span) (int, error) {
	var blocks int
	found := false
	root.Walk(func(s *obs.Span) {
		if s.Name != "relstruct.lump" {
			return
		}
		found = true
		if v, ok := s.Attr("lump_blocks"); ok {
			if b, ok := v.(int64); ok {
				blocks = int(b)
			}
		}
	})
	if !found {
		return 0, fmt.Errorf("trace has no relstruct.lump span; pre-pass did not run")
	}
	return blocks, nil
}
