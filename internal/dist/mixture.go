package dist

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Mixture is a finite mixture of lifetime distributions: with probability
// Weights[i] the lifetime follows Components[i]. Mixtures model multi-mode
// behaviour such as repair times that are either a quick reboot or a slow
// field replacement.
type Mixture struct {
	weights []float64
	comps   []Distribution
}

var _ Distribution = (*Mixture)(nil)

// NewMixture builds a mixture; weights must be positive and sum to 1.
func NewMixture(weights []float64, comps []Distribution) (*Mixture, error) {
	if len(weights) != len(comps) || len(weights) == 0 {
		return nil, fmt.Errorf("mixture: %d weights for %d components: %w",
			len(weights), len(comps), ErrBadParam)
	}
	var sum float64
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("mixture: weight[%d]=%g: %w", i, w, ErrBadParam)
		}
		if comps[i] == nil {
			return nil, fmt.Errorf("mixture: component %d nil: %w", i, ErrBadParam)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("mixture: weights sum to %g: %w", sum, ErrBadParam)
	}
	return &Mixture{
		weights: append([]float64(nil), weights...),
		comps:   append([]Distribution(nil), comps...),
	}, nil
}

// CDF returns the weighted component CDF.
func (m *Mixture) CDF(t float64) float64 {
	var s float64
	for i, w := range m.weights {
		s += w * m.comps[i].CDF(t)
	}
	return s
}

// PDF returns the weighted component density.
func (m *Mixture) PDF(t float64) float64 {
	var s float64
	for i, w := range m.weights {
		s += w * m.comps[i].PDF(t)
	}
	return s
}

// Mean returns Σ w_i·E[X_i].
func (m *Mixture) Mean() float64 {
	var s float64
	for i, w := range m.weights {
		s += w * m.comps[i].Mean()
	}
	return s
}

// Var returns the mixture variance via the law of total variance.
func (m *Mixture) Var() float64 {
	mean := m.Mean()
	var s float64
	for i, w := range m.weights {
		mi := m.comps[i].Mean()
		s += w * (m.comps[i].Var() + (mi-mean)*(mi-mean))
	}
	return s
}

// Quantile inverts the mixture CDF numerically.
func (m *Mixture) Quantile(p float64) (float64, error) {
	return numericQuantile(m.CDF, p)
}

// Rand draws a component by weight, then a sample from it.
func (m *Mixture) Rand(rng *rand.Rand) float64 {
	u := rng.Float64()
	for i, w := range m.weights {
		if u < w {
			return m.comps[i].Rand(rng)
		}
		u -= w
	}
	return m.comps[len(m.comps)-1].Rand(rng)
}

// String implements fmt.Stringer.
func (m *Mixture) String() string {
	var sb strings.Builder
	sb.WriteString("Mix(")
	for i, w := range m.weights {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%.3g×%v", w, m.comps[i])
	}
	sb.WriteString(")")
	return sb.String()
}
