package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Empirical is the distribution of an observed sample: the step-function
// CDF of measured lifetimes or repair times. It closes the loop between
// measurement data and the analytic models — fit a phase-type to it, check
// the fit with the Kolmogorov–Smirnov distance, then embed the fit in a
// Markov model.
type Empirical struct {
	sorted []float64
	mean   float64
	vari   float64
}

var _ Distribution = (*Empirical)(nil)

// NewEmpirical builds the empirical distribution of the (nonnegative)
// sample. The data is copied.
func NewEmpirical(sample []float64) (*Empirical, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("empirical: empty sample: %w", ErrBadParam)
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	var sum float64
	for _, x := range sorted {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("empirical: bad observation %g: %w", x, ErrBadParam)
		}
		sum += x
	}
	sort.Float64s(sorted)
	n := float64(len(sorted))
	mean := sum / n
	var v float64
	for _, x := range sorted {
		d := x - mean
		v += d * d
	}
	if len(sorted) > 1 {
		v /= n - 1
	} else {
		v = 0
	}
	return &Empirical{sorted: sorted, mean: mean, vari: v}, nil
}

// N returns the sample size.
func (d *Empirical) N() int { return len(d.sorted) }

// CDF returns the fraction of observations ≤ t.
func (d *Empirical) CDF(t float64) float64 {
	// First index with value > t.
	idx := sort.SearchFloat64s(d.sorted, math.Nextafter(t, math.Inf(1)))
	return float64(idx) / float64(len(d.sorted))
}

// PDF returns 0: the empirical distribution has no density. Use a fitted
// parametric or phase-type distribution where a density is required.
func (d *Empirical) PDF(float64) float64 { return 0 }

// Mean returns the sample mean.
func (d *Empirical) Mean() float64 { return d.mean }

// Var returns the unbiased sample variance.
func (d *Empirical) Var() float64 { return d.vari }

// Quantile returns the order statistic at level p.
func (d *Empirical) Quantile(p float64) (float64, error) {
	if err := checkProb(p); err != nil {
		return 0, err
	}
	idx := int(math.Ceil(p*float64(len(d.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(d.sorted) {
		idx = len(d.sorted) - 1
	}
	return d.sorted[idx], nil
}

// Rand draws by resampling (bootstrap).
func (d *Empirical) Rand(rng *rand.Rand) float64 {
	return d.sorted[rng.Intn(len(d.sorted))]
}

// String implements fmt.Stringer.
func (d *Empirical) String() string {
	return fmt.Sprintf("Empirical(n=%d, mean=%.4g)", len(d.sorted), d.mean)
}

// KolmogorovSmirnov returns the KS statistic sup_t |F_emp(t) - F(t)|
// between the empirical distribution and a reference distribution,
// evaluated at the sample points (where the supremum of a step-vs-
// continuous comparison is attained).
func (d *Empirical) KolmogorovSmirnov(ref Distribution) (float64, error) {
	if ref == nil {
		return 0, fmt.Errorf("empirical: nil reference: %w", ErrBadParam)
	}
	n := float64(len(d.sorted))
	var worst float64
	for i, x := range d.sorted {
		f := ref.CDF(x)
		// Compare against the empirical CDF just before and at x.
		lo := float64(i) / n
		hi := float64(i+1) / n
		if d1 := math.Abs(f - lo); d1 > worst {
			worst = d1
		}
		if d2 := math.Abs(f - hi); d2 > worst {
			worst = d2
		}
	}
	return worst, nil
}
