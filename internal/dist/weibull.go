package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Weibull is the Weibull distribution with shape k and scale λ:
// F(t) = 1 - exp(-(t/λ)^k). Shape k < 1 models infant mortality
// (decreasing hazard), k = 1 is exponential, k > 1 models wear-out.
type Weibull struct {
	shape, scale float64
}

var (
	_ Distribution = Weibull{}
	_ Hazarder     = Weibull{}
)

// NewWeibull returns a Weibull distribution with the given shape and scale.
func NewWeibull(shape, scale float64) (Weibull, error) {
	if shape <= 0 || scale <= 0 || math.IsNaN(shape) || math.IsNaN(scale) {
		return Weibull{}, fmt.Errorf("weibull shape=%g scale=%g: %w", shape, scale, ErrBadParam)
	}
	return Weibull{shape: shape, scale: scale}, nil
}

// Shape returns k.
func (d Weibull) Shape() float64 { return d.shape }

// Scale returns λ.
func (d Weibull) Scale() float64 { return d.scale }

// CDF returns 1 - exp(-(t/λ)^k).
func (d Weibull) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(t/d.scale, d.shape))
}

// PDF returns the Weibull density.
func (d Weibull) PDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t == 0 { //numvet:allow float-eq hazard at exactly t=0 is a closed-form boundary case
		if d.shape < 1 {
			return math.Inf(1)
		}
		if d.shape == 1 { //numvet:allow float-eq shape exactly 1 is the exponential boundary case
			return 1 / d.scale
		}
		return 0
	}
	z := t / d.scale
	return d.shape / d.scale * math.Pow(z, d.shape-1) * math.Exp(-math.Pow(z, d.shape))
}

// Hazard returns (k/λ)(t/λ)^{k-1}.
func (d Weibull) Hazard(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t == 0 { //numvet:allow float-eq hazard at exactly t=0 is a closed-form boundary case
		switch {
		case d.shape < 1:
			return math.Inf(1)
		case d.shape == 1: //numvet:allow float-eq shape exactly 1 is the exponential boundary case
			return 1 / d.scale
		default:
			return 0
		}
	}
	return d.shape / d.scale * math.Pow(t/d.scale, d.shape-1)
}

// Mean returns λ·Γ(1+1/k).
func (d Weibull) Mean() float64 {
	return d.scale * math.Gamma(1+1/d.shape)
}

// Var returns λ²(Γ(1+2/k) - Γ(1+1/k)²).
func (d Weibull) Var() float64 {
	g1 := math.Gamma(1 + 1/d.shape)
	g2 := math.Gamma(1 + 2/d.shape)
	return d.scale * d.scale * (g2 - g1*g1)
}

// Quantile returns λ(-ln(1-p))^{1/k}.
func (d Weibull) Quantile(p float64) (float64, error) {
	if err := checkProb(p); err != nil {
		return 0, err
	}
	return d.scale * math.Pow(-math.Log1p(-p), 1/d.shape), nil
}

// Rand draws a Weibull variate by inversion.
func (d Weibull) Rand(rng *rand.Rand) float64 {
	return d.scale * math.Pow(rng.ExpFloat64(), 1/d.shape)
}

// String implements fmt.Stringer.
func (d Weibull) String() string {
	return fmt.Sprintf("Weibull(shape=%g, scale=%g)", d.shape, d.scale)
}

// Lognormal is the lognormal distribution: ln X ~ N(mu, sigma²). It is the
// classic model for repair times.
type Lognormal struct {
	mu, sigma float64
}

var _ Distribution = Lognormal{}

// NewLognormal returns a lognormal distribution with log-mean mu and
// log-standard-deviation sigma.
func NewLognormal(mu, sigma float64) (Lognormal, error) {
	if sigma <= 0 || math.IsNaN(mu) || math.IsNaN(sigma) {
		return Lognormal{}, fmt.Errorf("lognormal mu=%g sigma=%g: %w", mu, sigma, ErrBadParam)
	}
	return Lognormal{mu: mu, sigma: sigma}, nil
}

// NewLognormalFromMoments returns the lognormal with the given mean and
// coefficient of variation cv = σ/μ of X itself.
func NewLognormalFromMoments(mean, cv float64) (Lognormal, error) {
	if mean <= 0 || cv <= 0 {
		return Lognormal{}, fmt.Errorf("lognormal mean=%g cv=%g: %w", mean, cv, ErrBadParam)
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return Lognormal{mu: mu, sigma: math.Sqrt(sigma2)}, nil
}

// Params returns (mu, sigma).
func (d Lognormal) Params() (float64, float64) { return d.mu, d.sigma }

// CDF returns Φ((ln t - mu)/sigma).
func (d Lognormal) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(t)-d.mu)/(d.sigma*math.Sqrt2))
}

// PDF returns the lognormal density.
func (d Lognormal) PDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	z := (math.Log(t) - d.mu) / d.sigma
	return math.Exp(-z*z/2) / (t * d.sigma * math.Sqrt(2*math.Pi))
}

// Mean returns exp(mu + sigma²/2).
func (d Lognormal) Mean() float64 {
	return math.Exp(d.mu + d.sigma*d.sigma/2)
}

// Var returns (exp(sigma²)-1)·exp(2mu+sigma²).
func (d Lognormal) Var() float64 {
	s2 := d.sigma * d.sigma
	return math.Expm1(s2) * math.Exp(2*d.mu+s2)
}

// Quantile inverts the CDF via the normal quantile.
func (d Lognormal) Quantile(p float64) (float64, error) {
	if err := checkProb(p); err != nil {
		return 0, err
	}
	return math.Exp(d.mu + d.sigma*normalQuantile(p)), nil
}

// Rand draws a lognormal variate.
func (d Lognormal) Rand(rng *rand.Rand) float64 {
	return math.Exp(d.mu + d.sigma*rng.NormFloat64())
}

// String implements fmt.Stringer.
func (d Lognormal) String() string {
	return fmt.Sprintf("Lognormal(mu=%g, sigma=%g)", d.mu, d.sigma)
}

// normalQuantile is the standard normal quantile (Acklam's rational
// approximation refined by one Newton step on erfc).
func normalQuantile(p float64) float64 {
	// Coefficients for Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Newton refinement using the exact CDF.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}
