package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestMixtureMatchesHyperexponential(t *testing.T) {
	// A mixture of exponentials IS a hyperexponential: compare against the
	// phase-type construction.
	probs := []float64{0.3, 0.7}
	rates := []float64{0.5, 4.0}
	mix, err := NewMixture(probs, []Distribution{
		MustExponential(rates[0]), MustExponential(rates[1]),
	})
	if err != nil {
		t.Fatal(err)
	}
	ph, err := NewHyperexponential(probs, rates)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(mix.Mean(), ph.Mean()) > 1e-12 {
		t.Errorf("mean %g vs %g", mix.Mean(), ph.Mean())
	}
	if relErr(mix.Var(), ph.Var()) > 1e-12 {
		t.Errorf("var %g vs %g", mix.Var(), ph.Var())
	}
	for _, x := range []float64{0.1, 0.8, 3, 10} {
		if relErr(mix.CDF(x), ph.CDF(x)) > 1e-8 {
			t.Errorf("CDF(%g): %g vs %g", x, mix.CDF(x), ph.CDF(x))
		}
	}
}

func TestMixtureBimodalRepair(t *testing.T) {
	// 90% quick reboot (lognormal ~0.1h), 10% field replacement (~8h).
	quick, err := NewLognormalFromMoments(0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewLognormalFromMoments(8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := NewMixture([]float64{0.9, 0.1}, []Distribution{quick, slow})
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 0.9*0.1 + 0.1*8.0
	if relErr(mix.Mean(), wantMean) > 1e-12 {
		t.Errorf("mean = %g, want %g", mix.Mean(), wantMean)
	}
	// Bimodality: CDF nearly flat between the modes.
	if mix.CDF(1)-mix.CDF(0.5) > 0.02 {
		t.Errorf("CDF should be flat between modes: %g vs %g", mix.CDF(0.5), mix.CDF(1))
	}
	// High CV relative to either component alone.
	cv := math.Sqrt(mix.Var()) / mix.Mean()
	if cv < 1.5 {
		t.Errorf("bimodal cv = %g, want > 1.5", cv)
	}
	// Quantile roundtrip.
	q, err := mix.Quantile(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(mix.CDF(q), 0.95) > 1e-6 {
		t.Errorf("quantile roundtrip: %g", mix.CDF(q))
	}
}

func TestMixtureSampling(t *testing.T) {
	mix, err := NewMixture([]float64{0.5, 0.5}, []Distribution{
		MustExponential(1), MustExponential(10),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += mix.Rand(rng)
	}
	got := sum / n
	se := math.Sqrt(mix.Var() / n)
	if math.Abs(got-mix.Mean()) > 4*se {
		t.Errorf("sample mean %g, want %g ± %g", got, mix.Mean(), 4*se)
	}
}

func TestMixtureValidation(t *testing.T) {
	e := MustExponential(1)
	cases := []struct {
		w []float64
		c []Distribution
	}{
		{w: nil, c: nil},
		{w: []float64{0.5}, c: []Distribution{e, e}},
		{w: []float64{0.5, 0.4}, c: []Distribution{e, e}},
		{w: []float64{-0.5, 1.5}, c: []Distribution{e, e}},
		{w: []float64{0.5, 0.5}, c: []Distribution{e, nil}},
	}
	for i, tc := range cases {
		if _, err := NewMixture(tc.w, tc.c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
