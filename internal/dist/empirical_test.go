package dist_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/phfit"
)

func TestEmpiricalBasics(t *testing.T) {
	e, err := dist.NewEmpirical([]float64{3, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 4 {
		t.Errorf("n = %d", e.N())
	}
	if e.Mean() != 2 {
		t.Errorf("mean = %g", e.Mean())
	}
	// CDF steps: F(0.5)=0, F(1)=0.25, F(2)=0.75, F(3)=1.
	cases := map[float64]float64{0.5: 0, 1: 0.25, 1.5: 0.25, 2: 0.75, 3: 1, 10: 1}
	for x, want := range cases {
		if got := e.CDF(x); got != want {
			t.Errorf("CDF(%g) = %g, want %g", x, got, want)
		}
	}
	q, err := e.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != 2 {
		t.Errorf("median = %g, want 2", q)
	}
}

func TestEmpiricalValidation(t *testing.T) {
	if _, err := dist.NewEmpirical(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := dist.NewEmpirical([]float64{1, -2}); err == nil {
		t.Error("negative observation accepted")
	}
	if _, err := dist.NewEmpirical([]float64{math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestKSSelfDistanceSmall(t *testing.T) {
	// Large exponential sample vs its own source: KS ~ O(1/sqrt(n)).
	rng := rand.New(rand.NewSource(8))
	src := dist.MustExponential(0.5)
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = src.Rand(rng)
	}
	e, err := dist.NewEmpirical(sample)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := e.KolmogorovSmirnov(src)
	if err != nil {
		t.Fatal(err)
	}
	// 99.9% KS critical value ≈ 1.95/sqrt(n) ≈ 0.0276.
	if ks > 0.0276 {
		t.Errorf("KS = %g, too large for matching source", ks)
	}
	// Against a wrong distribution the distance must be clearly larger.
	wrong := dist.MustExponential(2)
	ksWrong, err := e.KolmogorovSmirnov(wrong)
	if err != nil {
		t.Fatal(err)
	}
	if ksWrong < 10*ks {
		t.Errorf("KS against wrong dist %g should dwarf %g", ksWrong, ks)
	}
}

func TestMeasurementToPhaseTypePipeline(t *testing.T) {
	// The full measurement loop: sample a Weibull "field data" set, fit a
	// phase-type via moments, and verify the fit by KS against the data.
	rng := rand.New(rand.NewSource(12))
	field, err := dist.NewWeibull(2, 50)
	if err != nil {
		t.Fatal(err)
	}
	sample := make([]float64, 4000)
	for i := range sample {
		sample[i] = field.Rand(rng)
	}
	emp, err := dist.NewEmpirical(sample)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := phfit.FitTwoMoment(emp.Mean(), emp.Var()/(emp.Mean()*emp.Mean()))
	if err != nil {
		t.Fatal(err)
	}
	ks, err := emp.KolmogorovSmirnov(fit)
	if err != nil {
		t.Fatal(err)
	}
	// A 2-moment PH fit of Weibull(2) lands within a few percent sup-norm.
	if ks > 0.05 {
		t.Errorf("KS of PH fit vs field data = %g, want < 0.05", ks)
	}
	// The exponential with the same mean is a much worse fit.
	expFit := dist.MustExponential(1 / emp.Mean())
	ksExp, err := emp.KolmogorovSmirnov(expFit)
	if err != nil {
		t.Fatal(err)
	}
	if ksExp < 2*ks {
		t.Errorf("exponential KS %g should be far worse than PH %g", ksExp, ks)
	}
}

func TestEmpiricalBootstrapSampling(t *testing.T) {
	e, err := dist.NewEmpirical([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		v := e.Rand(rng)
		if v != 1 && v != 2 && v != 3 {
			t.Fatalf("bootstrap drew %g outside sample", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Errorf("bootstrap saw %d distinct values, want 3", len(seen))
	}
}
