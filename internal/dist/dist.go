// Package dist provides the lifetime distributions used throughout the
// reliability models: exponential, Weibull, lognormal, gamma/Erlang,
// hypoexponential, hyperexponential, Coxian, deterministic, uniform, and
// general phase-type. Each distribution exposes its CDF, density, hazard
// rate, moments, quantile function, and a sampler, so the same object can
// drive both the analytic solvers and the discrete-event simulator.
package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Distribution is a nonnegative lifetime distribution.
type Distribution interface {
	// CDF returns P(X ≤ t). For t < 0 it returns 0.
	CDF(t float64) float64
	// PDF returns the density at t (0 for t < 0).
	PDF(t float64) float64
	// Mean returns E[X].
	Mean() float64
	// Var returns Var(X).
	Var() float64
	// Quantile returns the p-quantile for p in (0,1).
	Quantile(p float64) (float64, error)
	// Rand draws one sample using the supplied source.
	Rand(rng *rand.Rand) float64
	// String describes the distribution.
	String() string
}

// Hazarder is implemented by distributions that expose a closed-form hazard
// (failure) rate h(t) = f(t)/(1-F(t)).
type Hazarder interface {
	Hazard(t float64) float64
}

// ErrBadParam reports an invalid distribution parameter.
var ErrBadParam = errors.New("dist: invalid parameter")

// ErrBadProb reports a probability argument outside (0,1).
var ErrBadProb = errors.New("dist: probability outside (0,1)")

// Survival returns 1 - d.CDF(t), the reliability function.
func Survival(d Distribution, t float64) float64 {
	return 1 - d.CDF(t)
}

// HazardOf returns the hazard rate of d at t, using the closed form when
// available and f(t)/R(t) otherwise.
func HazardOf(d Distribution, t float64) float64 {
	if h, ok := d.(Hazarder); ok {
		return h.Hazard(t)
	}
	r := Survival(d, t)
	if r <= 0 {
		return math.Inf(1)
	}
	return d.PDF(t) / r
}

// checkProb validates a quantile probability.
func checkProb(p float64) error {
	if !(p > 0 && p < 1) {
		return fmt.Errorf("quantile p=%g: %w", p, ErrBadProb)
	}
	return nil
}

// numericQuantile inverts the CDF by bisection/Brent between 0 and an
// exponentially expanded upper bracket.
func numericQuantile(cdf func(float64) float64, p float64) (float64, error) {
	if err := checkProb(p); err != nil {
		return 0, err
	}
	hi := 1.0
	for i := 0; cdf(hi) < p; i++ {
		hi *= 2
		if i > 200 {
			return 0, fmt.Errorf("dist: quantile bracket did not close for p=%g", p)
		}
	}
	lo := 0.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-13*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2, nil
}
