package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Gamma is the gamma distribution with shape k and rate β (mean k/β).
// Integer shape gives the Erlang distribution.
type Gamma struct {
	shape, rate float64
}

var _ Distribution = Gamma{}

// NewGamma returns a gamma distribution with the given shape and rate.
func NewGamma(shape, rate float64) (Gamma, error) {
	if shape <= 0 || rate <= 0 || math.IsNaN(shape) || math.IsNaN(rate) {
		return Gamma{}, fmt.Errorf("gamma shape=%g rate=%g: %w", shape, rate, ErrBadParam)
	}
	return Gamma{shape: shape, rate: rate}, nil
}

// Shape returns k.
func (d Gamma) Shape() float64 { return d.shape }

// Rate returns β.
func (d Gamma) Rate() float64 { return d.rate }

// CDF returns the regularized lower incomplete gamma P(k, βt).
func (d Gamma) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return regIncGammaLower(d.shape, d.rate*t)
}

// PDF returns the gamma density.
func (d Gamma) PDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t == 0 { //numvet:allow float-eq hazard at exactly t=0 is a closed-form boundary case
		switch {
		case d.shape < 1:
			return math.Inf(1)
		case d.shape == 1: //numvet:allow float-eq shape exactly 1 is the exponential boundary case
			return d.rate
		default:
			return 0
		}
	}
	lg, _ := math.Lgamma(d.shape)
	return math.Exp(d.shape*math.Log(d.rate) + (d.shape-1)*math.Log(t) - d.rate*t - lg)
}

// Mean returns k/β.
func (d Gamma) Mean() float64 { return d.shape / d.rate }

// Var returns k/β².
func (d Gamma) Var() float64 { return d.shape / (d.rate * d.rate) }

// Quantile inverts the CDF numerically.
func (d Gamma) Quantile(p float64) (float64, error) {
	return numericQuantile(d.CDF, p)
}

// Rand draws a gamma variate with the Marsaglia–Tsang method.
func (d Gamma) Rand(rng *rand.Rand) float64 {
	k := d.shape
	boost := 1.0
	if k < 1 {
		// Boost: X ~ Gamma(k+1), return X·U^{1/k}.
		boost = math.Pow(rng.Float64(), 1/k)
		k++
	}
	dd := k - 1.0/3
	c := 1 / math.Sqrt(9*dd)
	for { //numvet:allow unbounded-loop Marsaglia-Tsang rejection sampling; acceptance probability is >0.95 per draw
		var x, v float64
		for { //numvet:allow unbounded-loop v>0 rejection; accepts with probability >0.99 per normal draw
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return boost * dd * v / d.rate
		}
		if math.Log(u) < 0.5*x*x+dd*(1-v+math.Log(v)) {
			return boost * dd * v / d.rate
		}
	}
}

// String implements fmt.Stringer.
func (d Gamma) String() string { return fmt.Sprintf("Gamma(shape=%g, rate=%g)", d.shape, d.rate) }

// regIncGammaLower computes the regularized lower incomplete gamma function
// P(a, x) via the series for x < a+1 and the continued fraction otherwise
// (Numerical Recipes gser/gcf).
func regIncGammaLower(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		// Series representation.
		lg, _ := math.Lgamma(a)
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-16 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a,x), then P = 1-Q.
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	dd := 1 / b
	h := dd
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		dd = an*dd + b
		if math.Abs(dd) < tiny {
			dd = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		dd = 1 / dd
		del := dd * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q
}
