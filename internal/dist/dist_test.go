package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// relErr returns |a-b| / max(|b|, 1e-300).
func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Abs(b); m > 1e-300 {
		return d / m
	}
	return d
}

func TestExponentialBasics(t *testing.T) {
	d, err := NewExponential(2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d.Mean(), 0.5, 1e-15) {
		t.Errorf("mean = %g", d.Mean())
	}
	if !almostEqual(d.Var(), 0.25, 1e-15) {
		t.Errorf("var = %g", d.Var())
	}
	if !almostEqual(d.CDF(1), 1-math.Exp(-2), 1e-15) {
		t.Errorf("cdf(1) = %g", d.CDF(1))
	}
	if d.CDF(-1) != 0 {
		t.Errorf("cdf(-1) = %g", d.CDF(-1))
	}
	if d.Hazard(100) != 2 {
		t.Errorf("hazard = %g", d.Hazard(100))
	}
	q, err := d.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d.CDF(q), 0.5, 1e-12) {
		t.Errorf("quantile roundtrip: cdf(q) = %g", d.CDF(q))
	}
}

func TestExponentialBadParams(t *testing.T) {
	for _, rate := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewExponential(rate); err == nil {
			t.Errorf("rate %v: want error", rate)
		}
	}
	d := MustExponential(1)
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		if _, err := d.Quantile(p); err == nil {
			t.Errorf("quantile(%g): want error", p)
		}
	}
}

func TestDeterministicAndUniform(t *testing.T) {
	det, err := NewDeterministic(3)
	if err != nil {
		t.Fatal(err)
	}
	if det.CDF(2.9) != 0 || det.CDF(3) != 1 {
		t.Error("deterministic CDF step wrong")
	}
	if det.Mean() != 3 || det.Var() != 0 {
		t.Error("deterministic moments wrong")
	}
	u, err := NewUniform(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if u.Mean() != 2 {
		t.Errorf("uniform mean = %g", u.Mean())
	}
	if !almostEqual(u.Var(), 4.0/12, 1e-15) {
		t.Errorf("uniform var = %g", u.Var())
	}
	if u.CDF(2) != 0.5 {
		t.Errorf("uniform cdf(2) = %g", u.CDF(2))
	}
	if _, err := NewUniform(3, 1); err == nil {
		t.Error("want error for b<a")
	}
}

func TestWeibullSpecialCases(t *testing.T) {
	// shape=1 is exponential with rate 1/scale.
	w, err := NewWeibull(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := MustExponential(0.5)
	for _, x := range []float64{0.1, 1, 5, 20} {
		if relErr(w.CDF(x), e.CDF(x)) > 1e-12 {
			t.Errorf("weibull(1,2).CDF(%g) = %g, exp = %g", x, w.CDF(x), e.CDF(x))
		}
		if relErr(w.PDF(x), e.PDF(x)) > 1e-12 {
			t.Errorf("weibull(1,2).PDF(%g) mismatch", x)
		}
	}
	if !almostEqual(w.Mean(), 2, 1e-12) {
		t.Errorf("mean = %g", w.Mean())
	}
}

func TestWeibullHazardShape(t *testing.T) {
	wear, _ := NewWeibull(2, 1)
	if wear.Hazard(0.5) >= wear.Hazard(2) {
		t.Error("increasing hazard expected for shape > 1")
	}
	infant, _ := NewWeibull(0.5, 1)
	if infant.Hazard(0.5) <= infant.Hazard(2) {
		t.Error("decreasing hazard expected for shape < 1")
	}
	if !math.IsInf(infant.Hazard(0), 1) {
		t.Error("hazard at 0 should be +Inf for shape < 1")
	}
}

func TestLognormal(t *testing.T) {
	d, err := NewLognormal(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Median of lognormal(0,1) is 1.
	if !almostEqual(d.CDF(1), 0.5, 1e-12) {
		t.Errorf("cdf(1) = %g", d.CDF(1))
	}
	if !almostEqual(d.Mean(), math.Exp(0.5), 1e-12) {
		t.Errorf("mean = %g", d.Mean())
	}
	q, err := d.Quantile(0.975)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(d.CDF(q), 0.975) > 1e-9 {
		t.Errorf("quantile roundtrip cdf(q)=%g", d.CDF(q))
	}
}

func TestLognormalFromMoments(t *testing.T) {
	d, err := NewLognormalFromMoments(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(d.Mean(), 4) > 1e-12 {
		t.Errorf("mean = %g, want 4", d.Mean())
	}
	cv := math.Sqrt(d.Var()) / d.Mean()
	if relErr(cv, 0.5) > 1e-12 {
		t.Errorf("cv = %g, want 0.5", cv)
	}
}

func TestGammaIntegerShapeMatchesErlang(t *testing.T) {
	g, err := NewGamma(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	erl, err := NewErlang(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.2, 1, 2.5, 6} {
		if relErr(g.CDF(x), erl.CDF(x)) > 1e-8 {
			t.Errorf("gamma vs erlang CDF(%g): %g vs %g", x, g.CDF(x), erl.CDF(x))
		}
	}
	if relErr(g.Mean(), erl.Mean()) > 1e-10 {
		t.Errorf("means: %g vs %g", g.Mean(), erl.Mean())
	}
	if relErr(g.Var(), erl.Var()) > 1e-10 {
		t.Errorf("vars: %g vs %g", g.Var(), erl.Var())
	}
}

func TestGammaCDFKnownValues(t *testing.T) {
	// Gamma(1, rate) is exponential.
	g, _ := NewGamma(1, 3)
	e := MustExponential(3)
	for _, x := range []float64{0.1, 1, 4} {
		if relErr(g.CDF(x), e.CDF(x)) > 1e-12 {
			t.Errorf("gamma(1,3) vs exp(3) at %g", x)
		}
	}
	// Erlang-2 closed form: F(t) = 1 - e^{-bt}(1+bt).
	g2, _ := NewGamma(2, 1.5)
	for _, x := range []float64{0.5, 2, 7} {
		want := 1 - math.Exp(-1.5*x)*(1+1.5*x)
		if relErr(g2.CDF(x), want) > 1e-10 {
			t.Errorf("erlang2 cdf(%g) = %g, want %g", x, g2.CDF(x), want)
		}
	}
}

func TestPhaseTypeErlangMoments(t *testing.T) {
	ph, err := NewErlang(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(ph.Mean(), 2) > 1e-12 { // k/rate = 4/2
		t.Errorf("mean = %g, want 2", ph.Mean())
	}
	if relErr(ph.Var(), 1) > 1e-12 { // k/rate² = 4/4
		t.Errorf("var = %g, want 1", ph.Var())
	}
	if relErr(ph.SCV(), 0.25) > 1e-12 { // 1/k
		t.Errorf("scv = %g, want 0.25", ph.SCV())
	}
}

func TestPhaseTypeCDFMatchesExponential(t *testing.T) {
	ph, err := NewErlang(1, 1.7)
	if err != nil {
		t.Fatal(err)
	}
	e := MustExponential(1.7)
	for _, x := range []float64{0.1, 0.9, 3, 8} {
		if relErr(ph.CDF(x), e.CDF(x)) > 1e-9 {
			t.Errorf("PH vs exp CDF(%g): %g vs %g", x, ph.CDF(x), e.CDF(x))
		}
		if relErr(ph.PDF(x), e.PDF(x)) > 1e-8 {
			t.Errorf("PH vs exp PDF(%g): %g vs %g", x, ph.PDF(x), e.PDF(x))
		}
	}
}

func TestHypoHyperSCV(t *testing.T) {
	hypo, err := NewHypoexponential(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hypo.SCV() >= 1 {
		t.Errorf("hypoexponential SCV = %g, want < 1", hypo.SCV())
	}
	wantMean := 1.0 + 0.5 + 1.0/3
	if relErr(hypo.Mean(), wantMean) > 1e-12 {
		t.Errorf("hypo mean = %g, want %g", hypo.Mean(), wantMean)
	}
	hyper, err := NewHyperexponential([]float64{0.4, 0.6}, []float64{0.5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if hyper.SCV() <= 1 {
		t.Errorf("hyperexponential SCV = %g, want > 1", hyper.SCV())
	}
	wantMean = 0.4/0.5 + 0.6/5
	if relErr(hyper.Mean(), wantMean) > 1e-12 {
		t.Errorf("hyper mean = %g, want %g", hyper.Mean(), wantMean)
	}
}

func TestCoxian2(t *testing.T) {
	// p=1 gives hypoexponential(mu1, mu2).
	cox, err := NewCoxian2(1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	hypo, _ := NewHypoexponential(1, 2)
	if relErr(cox.Mean(), hypo.Mean()) > 1e-12 {
		t.Errorf("coxian p=1 mean %g vs hypo %g", cox.Mean(), hypo.Mean())
	}
	// p=0 gives exponential(mu1).
	cox0, err := NewCoxian2(3, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(cox0.Mean(), 1.0/3) > 1e-12 {
		t.Errorf("coxian p=0 mean = %g", cox0.Mean())
	}
}

func TestPhaseTypeValidation(t *testing.T) {
	if _, err := NewErlang(0, 1); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := NewHyperexponential([]float64{0.5, 0.4}, []float64{1, 1}); err == nil {
		t.Error("want error for probs not summing to 1")
	}
	if _, err := NewHypoexponential(); err == nil {
		t.Error("want error for empty rates")
	}
	if _, err := NewCoxian2(1, 1, 2); err == nil {
		t.Error("want error for p>1")
	}
}

func TestSamplingMeansMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	dists := []Distribution{
		MustExponential(2),
		mustWeibull(t, 2, 3),
		mustLognormal(t, 0.5, 0.6),
		mustGamma(t, 2.5, 1.5),
		mustErlang(t, 3, 2),
	}
	for _, d := range dists {
		var sum float64
		for i := 0; i < n; i++ {
			sum += d.Rand(rng)
		}
		got := sum / n
		// 3-sigma band on the sample mean.
		se := math.Sqrt(d.Var() / n)
		if math.Abs(got-d.Mean()) > 4*se+1e-9 {
			t.Errorf("%v: sample mean %g, want %g ± %g", d, got, d.Mean(), 4*se)
		}
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	dists := []Distribution{
		MustExponential(1.3),
		mustWeibull(t, 1.8, 2),
		mustLognormal(t, 0, 0.9),
		mustGamma(t, 3, 1),
	}
	f := func(a, b float64) bool {
		x, y := math.Abs(a), math.Abs(b)
		if x > y {
			x, y = y, x
		}
		for _, d := range dists {
			if d.CDF(x) > d.CDF(y)+1e-12 {
				return false
			}
			if d.CDF(x) < 0 || d.CDF(y) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileRoundtripProperty(t *testing.T) {
	dists := []Distribution{
		MustExponential(0.7),
		mustWeibull(t, 2.2, 1.5),
		mustGamma(t, 1.7, 2.0),
	}
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 1)
		if p < 0.001 || p > 0.999 {
			p = 0.5
		}
		for _, d := range dists {
			q, err := d.Quantile(p)
			if err != nil {
				return false
			}
			if relErr(d.CDF(q), p) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHazardOfFallback(t *testing.T) {
	g, _ := NewGamma(2, 1) // no closed-form Hazard method
	h := HazardOf(g, 1)
	want := g.PDF(1) / (1 - g.CDF(1))
	if relErr(h, want) > 1e-12 {
		t.Errorf("hazard fallback = %g, want %g", h, want)
	}
	e := MustExponential(3) // closed form
	if HazardOf(e, 10) != 3 {
		t.Error("closed-form hazard not used")
	}
}

func mustWeibull(t *testing.T, shape, scale float64) Weibull {
	t.Helper()
	d, err := NewWeibull(shape, scale)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustLognormal(t *testing.T, mu, sigma float64) Lognormal {
	t.Helper()
	d, err := NewLognormal(mu, sigma)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustGamma(t *testing.T, shape, rate float64) Gamma {
	t.Helper()
	d, err := NewGamma(shape, rate)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustErlang(t *testing.T, k int, rate float64) *PhaseType {
	t.Helper()
	d, err := NewErlang(k, rate)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPhaseTypeMoments(t *testing.T) {
	// Erlang(k, rate): E[X^m] = (k+m-1)!/(k-1)! / rate^m.
	ph := mustErlang(t, 3, 2)
	m1, err := ph.Moment(1)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(m1, 1.5) > 1e-12 {
		t.Errorf("m1 = %g, want 1.5", m1)
	}
	m2, err := ph.Moment(2)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(m2, 3.0/4*4) > 1e-12 { // 3·4/2² = 3
		t.Errorf("m2 = %g, want 3", m2)
	}
	m3, err := ph.Moment(3)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(m3, 3.0*4*5/8) > 1e-12 { // 7.5
		t.Errorf("m3 = %g, want 7.5", m3)
	}
	if _, err := ph.Moment(0); err == nil {
		t.Error("moment 0 accepted")
	}
}
