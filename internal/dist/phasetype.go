package dist

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/linalg"
)

// PhaseType is a continuous phase-type distribution PH(α, S): the time to
// absorption of a CTMC with transient subgenerator S, initial distribution
// α over the transient states, and exit rates s⁰ = -S·1.
//
// Phase-type distributions are dense in the nonnegative distributions, and
// are the standard mechanism for embedding non-exponential behaviour into a
// Markov model (the tutorial's "dealing with non-exponential distributions").
type PhaseType struct {
	alpha []float64
	sub   *linalg.Dense // n×n subgenerator
	exit  []float64     // exit rate vector s⁰
	mean  float64
	m2    float64 // second moment
}

var _ Distribution = (*PhaseType)(nil)

// NewPhaseType constructs PH(α, S). α must be a sub-stochastic vector of
// length n; S must be an n×n subgenerator (negative diagonal, nonnegative
// off-diagonal, row sums ≤ 0 with at least one strictly negative row sum).
func NewPhaseType(alpha []float64, sub *linalg.Dense) (*PhaseType, error) {
	n := len(alpha)
	if sub.Rows() != n || sub.Cols() != n {
		return nil, fmt.Errorf("phase-type: alpha len %d vs S %dx%d: %w",
			n, sub.Rows(), sub.Cols(), ErrBadParam)
	}
	if n == 0 {
		return nil, fmt.Errorf("phase-type: empty: %w", ErrBadParam)
	}
	var asum float64
	for i, a := range alpha {
		if a < 0 || a > 1 {
			return nil, fmt.Errorf("phase-type: alpha[%d]=%g: %w", i, a, ErrBadParam)
		}
		asum += a
	}
	if asum <= 0 || asum > 1+1e-12 {
		return nil, fmt.Errorf("phase-type: alpha sums to %g: %w", asum, ErrBadParam)
	}
	exit := make([]float64, n)
	anyExit := false
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			v := sub.At(i, j)
			if i == j {
				if v >= 0 {
					return nil, fmt.Errorf("phase-type: diagonal S[%d][%d]=%g not negative: %w", i, i, v, ErrBadParam)
				}
			} else if v < 0 {
				return nil, fmt.Errorf("phase-type: off-diagonal S[%d][%d]=%g negative: %w", i, j, v, ErrBadParam)
			}
			rowSum += v
		}
		if rowSum > 1e-9 {
			return nil, fmt.Errorf("phase-type: row %d sums to %g > 0: %w", i, rowSum, ErrBadParam)
		}
		e := -rowSum
		if e < 0 {
			e = 0
		}
		exit[i] = e
		if e > 0 {
			anyExit = true
		}
	}
	if !anyExit {
		return nil, fmt.Errorf("phase-type: no exit rates; absorption impossible: %w", ErrBadParam)
	}
	ph := &PhaseType{
		alpha: append([]float64(nil), alpha...),
		sub:   sub.Clone(),
		exit:  exit,
	}
	var err error
	if ph.mean, err = ph.moment(1); err != nil {
		return nil, err
	}
	if ph.m2, err = ph.moment(2); err != nil {
		return nil, err
	}
	return ph, nil
}

// Order returns the number of phases.
func (d *PhaseType) Order() int { return len(d.alpha) }

// Alpha returns a copy of the initial phase distribution.
func (d *PhaseType) Alpha() []float64 { return linalg.Clone(d.alpha) }

// Subgenerator returns a copy of S.
func (d *PhaseType) Subgenerator() *linalg.Dense { return d.sub.Clone() }

// Moment returns the k-th raw moment E[X^k] (k ≥ 1).
func (d *PhaseType) Moment(k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("phase-type moment %d: %w", k, ErrBadParam)
	}
	return d.moment(k)
}

// moment computes E[X^k] = k!·α·(-S)^{-k}·1 by repeated linear solves.
func (d *PhaseType) moment(k int) (float64, error) {
	n := len(d.alpha)
	// negS = -S
	negS := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			negS.Set(i, j, -d.sub.At(i, j))
		}
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	v := ones
	fact := 1.0
	for i := 1; i <= k; i++ {
		var err error
		v, err = linalg.LUSolve(negS, v)
		if err != nil {
			return 0, fmt.Errorf("phase-type moment %d: %w", k, err)
		}
		fact *= float64(i)
	}
	dot, err := linalg.Dot(d.alpha, v)
	if err != nil {
		return 0, err
	}
	return fact * dot, nil
}

// CDF returns 1 - α·e^{St}·1.
func (d *PhaseType) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	st := d.sub.Clone()
	for i := 0; i < st.Rows(); i++ {
		row := st.Row(i)
		for j := range row {
			row[j] *= t
		}
	}
	e, err := linalg.Expm(st)
	if err != nil {
		return math.NaN()
	}
	v, err := e.VecMul(d.alpha) // α·e^{St}
	if err != nil {
		return math.NaN()
	}
	surv := linalg.Sum(v)
	if surv < 0 {
		surv = 0
	}
	if surv > 1 {
		surv = 1
	}
	return 1 - surv
}

// PDF returns α·e^{St}·s⁰.
func (d *PhaseType) PDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	st := d.sub.Clone()
	for i := 0; i < st.Rows(); i++ {
		row := st.Row(i)
		for j := range row {
			row[j] *= t
		}
	}
	e, err := linalg.Expm(st)
	if err != nil {
		return math.NaN()
	}
	v, err := e.VecMul(d.alpha)
	if err != nil {
		return math.NaN()
	}
	p, err := linalg.Dot(v, d.exit)
	if err != nil || p < 0 {
		return 0
	}
	return p
}

// Mean returns E[X].
func (d *PhaseType) Mean() float64 { return d.mean }

// Var returns the variance.
func (d *PhaseType) Var() float64 { return d.m2 - d.mean*d.mean }

// SCV returns the squared coefficient of variation Var/Mean².
func (d *PhaseType) SCV() float64 { return d.Var() / (d.mean * d.mean) }

// Quantile inverts the CDF numerically.
func (d *PhaseType) Quantile(p float64) (float64, error) {
	return numericQuantile(d.CDF, p)
}

// Rand simulates the underlying absorbing CTMC.
func (d *PhaseType) Rand(rng *rand.Rand) float64 {
	n := len(d.alpha)
	// Choose initial phase.
	u := rng.Float64()
	phase := -1
	var cum float64
	for i, a := range d.alpha {
		cum += a
		if u < cum {
			phase = i
			break
		}
	}
	if phase < 0 {
		// Mass 1-Σα starts absorbed: zero lifetime.
		return 0
	}
	var t float64
	for steps := 0; steps < 1_000_000; steps++ {
		total := -d.sub.At(phase, phase)
		t += rng.ExpFloat64() / total
		// Choose next: exit with prob exit/total, else internal jump.
		u := rng.Float64() * total
		if u < d.exit[phase] {
			return t
		}
		u -= d.exit[phase]
		next := phase
		for j := 0; j < n; j++ {
			if j == phase {
				continue
			}
			v := d.sub.At(phase, j)
			if u < v {
				next = j
				break
			}
			u -= v
		}
		phase = next
	}
	return t
}

// String implements fmt.Stringer.
func (d *PhaseType) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "PH(order=%d, mean=%.4g, scv=%.4g)", d.Order(), d.Mean(), d.SCV())
	return sb.String()
}

// NewErlang returns the Erlang-k distribution with the given per-stage rate
// as a phase-type object: k sequential exponential stages.
func NewErlang(k int, rate float64) (*PhaseType, error) {
	if k < 1 || rate <= 0 {
		return nil, fmt.Errorf("erlang k=%d rate=%g: %w", k, rate, ErrBadParam)
	}
	alpha := make([]float64, k)
	alpha[0] = 1
	s := linalg.NewDense(k, k)
	for i := 0; i < k; i++ {
		s.Set(i, i, -rate)
		if i+1 < k {
			s.Set(i, i+1, rate)
		}
	}
	return NewPhaseType(alpha, s)
}

// NewHypoexponential returns the hypoexponential (generalized Erlang)
// distribution: sequential exponential stages with the given rates.
// Its squared coefficient of variation is below 1.
func NewHypoexponential(rates ...float64) (*PhaseType, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("hypoexponential: no rates: %w", ErrBadParam)
	}
	n := len(rates)
	alpha := make([]float64, n)
	alpha[0] = 1
	s := linalg.NewDense(n, n)
	for i, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("hypoexponential rate[%d]=%g: %w", i, r, ErrBadParam)
		}
		s.Set(i, i, -r)
		if i+1 < n {
			s.Set(i, i+1, r)
		}
	}
	return NewPhaseType(alpha, s)
}

// NewHyperexponential returns the hyperexponential distribution: with
// probability probs[i] the lifetime is exponential with rates[i]. Its
// squared coefficient of variation exceeds 1.
func NewHyperexponential(probs, rates []float64) (*PhaseType, error) {
	if len(probs) != len(rates) || len(probs) == 0 {
		return nil, fmt.Errorf("hyperexponential: %d probs vs %d rates: %w",
			len(probs), len(rates), ErrBadParam)
	}
	n := len(probs)
	s := linalg.NewDense(n, n)
	var psum float64
	for i := range probs {
		if probs[i] < 0 || rates[i] <= 0 {
			return nil, fmt.Errorf("hyperexponential branch %d (p=%g, rate=%g): %w",
				i, probs[i], rates[i], ErrBadParam)
		}
		psum += probs[i]
		s.Set(i, i, -rates[i])
	}
	if math.Abs(psum-1) > 1e-9 {
		return nil, fmt.Errorf("hyperexponential: probs sum to %g: %w", psum, ErrBadParam)
	}
	return NewPhaseType(probs, s)
}

// NewCoxian2 returns the 2-phase Coxian distribution: stage 1 with rate mu1,
// continuing to stage 2 (rate mu2) with probability p and exiting otherwise.
func NewCoxian2(mu1, mu2, p float64) (*PhaseType, error) {
	if mu1 <= 0 || mu2 <= 0 || p < 0 || p > 1 {
		return nil, fmt.Errorf("coxian2 mu1=%g mu2=%g p=%g: %w", mu1, mu2, p, ErrBadParam)
	}
	s := linalg.NewDense(2, 2)
	s.Set(0, 0, -mu1)
	s.Set(0, 1, p*mu1)
	s.Set(1, 1, -mu2)
	return NewPhaseType([]float64{1, 0}, s)
}
