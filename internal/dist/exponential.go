package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Exponential is the exponential distribution with rate λ.
type Exponential struct {
	rate float64
}

var (
	_ Distribution = Exponential{}
	_ Hazarder     = Exponential{}
)

// NewExponential returns an exponential distribution with the given rate.
func NewExponential(rate float64) (Exponential, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return Exponential{}, fmt.Errorf("exponential rate %g: %w", rate, ErrBadParam)
	}
	return Exponential{rate: rate}, nil
}

// MustExponential is NewExponential for compile-time-constant rates; it
// panics on invalid input and is intended for examples and tests.
func MustExponential(rate float64) Exponential {
	d, err := NewExponential(rate)
	if err != nil {
		panic(err)
	}
	return d
}

// Rate returns λ.
func (d Exponential) Rate() float64 { return d.rate }

// CDF returns 1 - e^{-λt}.
func (d Exponential) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return -math.Expm1(-d.rate * t)
}

// PDF returns λe^{-λt}.
func (d Exponential) PDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	return d.rate * math.Exp(-d.rate*t)
}

// Hazard returns the constant hazard rate λ.
func (d Exponential) Hazard(float64) float64 { return d.rate }

// Mean returns 1/λ.
func (d Exponential) Mean() float64 { return 1 / d.rate }

// Var returns 1/λ².
func (d Exponential) Var() float64 { return 1 / (d.rate * d.rate) }

// Quantile returns -ln(1-p)/λ.
func (d Exponential) Quantile(p float64) (float64, error) {
	if err := checkProb(p); err != nil {
		return 0, err
	}
	return -math.Log1p(-p) / d.rate, nil
}

// Rand draws an exponential variate by inversion.
func (d Exponential) Rand(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / d.rate
}

// String implements fmt.Stringer.
func (d Exponential) String() string { return fmt.Sprintf("Exp(rate=%g)", d.rate) }

// Deterministic is the point mass at value v (e.g., a fixed rejuvenation
// interval or scheduled-maintenance delay).
type Deterministic struct {
	value float64
}

var _ Distribution = Deterministic{}

// NewDeterministic returns a point mass at v ≥ 0.
func NewDeterministic(v float64) (Deterministic, error) {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return Deterministic{}, fmt.Errorf("deterministic value %g: %w", v, ErrBadParam)
	}
	return Deterministic{value: v}, nil
}

// Value returns the point-mass location.
func (d Deterministic) Value() float64 { return d.value }

// CDF is the step function at the value.
func (d Deterministic) CDF(t float64) float64 {
	if t >= d.value {
		return 1
	}
	return 0
}

// PDF returns 0 everywhere (the distribution has no density); callers that
// need the mass should use CDF.
func (d Deterministic) PDF(float64) float64 { return 0 }

// Mean returns the value.
func (d Deterministic) Mean() float64 { return d.value }

// Var returns 0.
func (d Deterministic) Var() float64 { return 0 }

// Quantile returns the value for any p in (0,1).
func (d Deterministic) Quantile(p float64) (float64, error) {
	if err := checkProb(p); err != nil {
		return 0, err
	}
	return d.value, nil
}

// Rand returns the value.
func (d Deterministic) Rand(*rand.Rand) float64 { return d.value }

// String implements fmt.Stringer.
func (d Deterministic) String() string { return fmt.Sprintf("Det(%g)", d.value) }

// Uniform is the continuous uniform distribution on [a, b].
type Uniform struct {
	a, b float64
}

var _ Distribution = Uniform{}

// NewUniform returns a uniform distribution on [a, b], 0 ≤ a < b.
func NewUniform(a, b float64) (Uniform, error) {
	if a < 0 || b <= a || math.IsNaN(a) || math.IsInf(b, 0) {
		return Uniform{}, fmt.Errorf("uniform [%g,%g]: %w", a, b, ErrBadParam)
	}
	return Uniform{a: a, b: b}, nil
}

// Bounds returns (a, b).
func (d Uniform) Bounds() (float64, float64) { return d.a, d.b }

// CDF returns the uniform CDF.
func (d Uniform) CDF(t float64) float64 {
	switch {
	case t <= d.a:
		return 0
	case t >= d.b:
		return 1
	default:
		return (t - d.a) / (d.b - d.a)
	}
}

// PDF returns the uniform density.
func (d Uniform) PDF(t float64) float64 {
	if t < d.a || t > d.b {
		return 0
	}
	return 1 / (d.b - d.a)
}

// Mean returns (a+b)/2.
func (d Uniform) Mean() float64 { return (d.a + d.b) / 2 }

// Var returns (b-a)²/12.
func (d Uniform) Var() float64 { w := d.b - d.a; return w * w / 12 }

// Quantile returns a + p(b-a).
func (d Uniform) Quantile(p float64) (float64, error) {
	if err := checkProb(p); err != nil {
		return 0, err
	}
	return d.a + p*(d.b-d.a), nil
}

// Rand draws a uniform variate.
func (d Uniform) Rand(rng *rand.Rand) float64 {
	return d.a + rng.Float64()*(d.b-d.a)
}

// String implements fmt.Stringer.
func (d Uniform) String() string { return fmt.Sprintf("U[%g,%g]", d.a, d.b) }
