package uncertainty

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ParamImportance reports how strongly each uncertain parameter drives the
// output, measured two ways over the same sample set.
type ParamImportance struct {
	// Name is the parameter name.
	Name string
	// Pearson is the linear correlation between the parameter draws and
	// the model outputs.
	Pearson float64
	// Spearman is the rank correlation — robust to the monotone
	// nonlinearity typical of availability models.
	Spearman float64
}

// Importance samples the parameters (LHS), evaluates the model, and ranks
// the parameters by |Spearman| descending. This is the sampling-based
// counterpart of the analytic sensitivities in internal/markov: it tells
// the analyst which measurement to refine first.
func Importance(model Model, params []Param, samples int, rng *rand.Rand) ([]ParamImportance, error) {
	if model == nil {
		return nil, errors.New("uncertainty: nil model")
	}
	if len(params) == 0 {
		return nil, errors.New("uncertainty: no parameters")
	}
	if rng == nil {
		return nil, errors.New("uncertainty: nil rng")
	}
	if samples <= 2 {
		samples = 1000
	}
	draws, err := drawMatrix(params, samples, true, rng)
	if err != nil {
		return nil, err
	}
	outputs := make([]float64, samples)
	assign := make(map[string]float64, len(params))
	for s := 0; s < samples; s++ {
		for j, p := range params {
			assign[p.Name] = draws[j][s]
		}
		out, err := model(assign)
		if err != nil {
			return nil, fmt.Errorf("uncertainty: model evaluation %d: %w", s, err)
		}
		outputs[s] = out
	}
	res := make([]ParamImportance, len(params))
	outRanks := ranks(outputs)
	for j, p := range params {
		res[j] = ParamImportance{
			Name:     p.Name,
			Pearson:  pearson(draws[j], outputs),
			Spearman: pearson(ranks(draws[j]), outRanks),
		}
	}
	sort.Slice(res, func(a, b int) bool {
		return math.Abs(res[a].Spearman) > math.Abs(res[b].Spearman)
	})
	return res, nil
}

// pearson returns the sample Pearson correlation, or 0 when either side is
// constant.
func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 { //numvet:allow float-eq exactly-zero variance makes the correlation undefined
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// ranks returns average-tie ranks of v.
func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	out := make([]float64, len(v))
	for pos := 0; pos < len(idx); {
		end := pos
		for end+1 < len(idx) && v[idx[end+1]] == v[idx[pos]] { //numvet:allow float-eq rank ties require exact equality
			end++
		}
		avg := float64(pos+end)/2 + 1
		for k := pos; k <= end; k++ {
			out[idx[k]] = avg
		}
		pos = end + 1
	}
	return out
}
