package uncertainty

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// P2 is the Jain–Chlamtac P² streaming quantile estimator: five markers
// tracking the running p-quantile of a sample stream in O(1) memory and
// O(1) time per observation, with parabolic (falling back to linear)
// marker adjustment. It is the estimator behind million-sample
// uncertainty sweeps: no sample retention, yet percentile intervals at
// the end.
//
// The estimator is strictly deterministic — its state after n
// observations is a pure function of the observation sequence — and its
// entire state is exported, so a checkpointed estimator resumes
// bit-identically after a crash. JSON round-trips are exact: Go
// marshals float64 values in shortest-round-trip form.
type P2 struct {
	// P is the target quantile in (0,1).
	P float64 `json:"p"`
	// Count is the number of observations so far.
	Count int64 `json:"count"`
	// Heights are the five marker heights (q0..q4); only the first
	// min(Count,5) entries are meaningful before the estimator is primed.
	Heights [5]float64 `json:"heights"`
	// Positions are the five integer marker positions (1-based).
	Positions [5]float64 `json:"positions"`
	// Desired are the five desired (fractional) marker positions.
	Desired [5]float64 `json:"desired"`
}

// NewP2 builds an estimator for the p-quantile. The quantile must lie
// strictly inside (0,1); use min/max tracking for the extremes.
func NewP2(p float64) (*P2, error) {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return nil, fmt.Errorf("uncertainty: P2 quantile %g outside (0,1): %w", p, ErrBadPercentile)
	}
	return &P2{P: p}, nil
}

// Observe feeds one observation into the estimator.
func (e *P2) Observe(x float64) {
	if e.Count < 5 {
		// Priming phase: collect the first five observations sorted.
		i := int(e.Count)
		e.Heights[i] = x
		e.Count++
		sub := e.Heights[:e.Count]
		sort.Float64s(sub)
		if e.Count == 5 {
			p := e.P
			e.Positions = [5]float64{1, 2, 3, 4, 5}
			e.Desired = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
		}
		return
	}
	e.Count++
	// Locate the cell containing x, extending the extremes when needed.
	var k int
	switch {
	case x < e.Heights[0]:
		e.Heights[0] = x
		k = 0
	case x >= e.Heights[4]:
		e.Heights[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.Heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.Positions[i]++
	}
	// Desired positions advance by their quantile increments.
	incr := [5]float64{0, e.P / 2, e.P, (1 + e.P) / 2, 1}
	for i := 0; i < 5; i++ {
		e.Desired[i] += incr[i]
	}
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.Desired[i] - e.Positions[i]
		if (d >= 1 && e.Positions[i+1]-e.Positions[i] > 1) ||
			(d <= -1 && e.Positions[i-1]-e.Positions[i] < -1) {
			s := sign(d)
			h := e.parabolic(i, s)
			if e.Heights[i-1] < h && h < e.Heights[i+1] {
				e.Heights[i] = h
			} else {
				e.Heights[i] = e.linear(i, s)
			}
			e.Positions[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic marker update.
func (e *P2) parabolic(i int, s float64) float64 {
	n := e.Positions
	q := e.Heights
	return q[i] + s/(n[i+1]-n[i-1])*
		((n[i]-n[i-1]+s)*(q[i+1]-q[i])/(n[i+1]-n[i])+
			(n[i+1]-n[i]-s)*(q[i]-q[i-1])/(n[i]-n[i-1]))
}

// linear is the fallback marker update when the parabola overshoots.
func (e *P2) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.Heights[i] + s*(e.Heights[j]-e.Heights[i])/(e.Positions[j]-e.Positions[i])
}

func sign(d float64) float64 {
	if d >= 0 {
		return 1
	}
	return -1
}

// Value returns the current quantile estimate. Before the estimator is
// primed (fewer than five observations) it interpolates the sorted
// retained samples exactly; with no observations it returns
// ErrNoSamples.
func (e *P2) Value() (float64, error) {
	switch {
	case e.Count == 0:
		return 0, fmt.Errorf("uncertainty: P2 estimator is empty: %w", ErrNoSamples)
	case e.Count < 5:
		sub := append([]float64(nil), e.Heights[:e.Count]...)
		return interpolateSorted(sub, e.P), nil
	}
	return e.Heights[2], nil
}

// interpolateSorted returns the p-quantile (p in (0,1)) of an ascending
// sample slice by the same linear interpolation Result.Percentile uses.
func interpolateSorted(sorted []float64, p float64) float64 {
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// errBadP2State guards Observe against a corrupted checkpoint restore.
var errBadP2State = errors.New("uncertainty: P2 state invalid")

// Validate checks a restored estimator for structural sanity: quantile
// in range, non-negative count, monotone marker heights and positions
// once primed. A WAL written by a different build (or truncated
// mid-record) fails here instead of corrupting a resumed sweep.
func (e *P2) Validate() error {
	if math.IsNaN(e.P) || e.P <= 0 || e.P >= 1 {
		return fmt.Errorf("%w: quantile %g outside (0,1)", errBadP2State, e.P)
	}
	if e.Count < 0 {
		return fmt.Errorf("%w: negative count %d", errBadP2State, e.Count)
	}
	if e.Count < 5 {
		return nil
	}
	for i := 0; i < 4; i++ {
		if e.Heights[i] > e.Heights[i+1] {
			return fmt.Errorf("%w: marker heights not monotone", errBadP2State)
		}
		if e.Positions[i] >= e.Positions[i+1] {
			return fmt.Errorf("%w: marker positions not increasing", errBadP2State)
		}
	}
	return nil
}
