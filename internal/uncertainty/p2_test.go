package uncertainty

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestP2AgainstExactQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []float64{0.05, 0.5, 0.95} {
		est, err := NewP2(p)
		if err != nil {
			t.Fatal(err)
		}
		const n = 20000
		samples := make([]float64, n)
		for i := range samples {
			x := rng.NormFloat64()*2 + 10
			samples[i] = x
			est.Observe(x)
		}
		sort.Float64s(samples)
		exact := interpolateSorted(samples, p)
		got, err := est.Value()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-exact) > 0.05 {
			t.Errorf("p=%g: P2 %.4f vs exact %.4f", p, got, exact)
		}
	}
}

func TestP2SmallSampleExact(t *testing.T) {
	est, err := NewP2(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Value(); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("empty estimator: got %v, want ErrNoSamples", err)
	}
	for _, x := range []float64{3, 1, 2} {
		est.Observe(x)
	}
	got, err := est.Value()
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("median of {1,2,3} = %g, want 2", got)
	}
}

func TestP2BadQuantile(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewP2(p); !errors.Is(err, ErrBadPercentile) {
			t.Errorf("NewP2(%g): got %v, want ErrBadPercentile", p, err)
		}
	}
}

// TestP2CheckpointRoundTrip locks the durability contract: an estimator
// serialized mid-stream and restored must continue bit-identically with
// one that never stopped.
func TestP2CheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	live, err := NewP2(0.9)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	for _, x := range xs[:2500] {
		live.Observe(x)
	}
	blob, err := json.Marshal(live)
	if err != nil {
		t.Fatal(err)
	}
	var restored P2
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	if err := restored.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[2500:] {
		live.Observe(x)
		restored.Observe(x)
	}
	a, _ := live.Value()
	b, _ := restored.Value()
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("restored estimator diverged: %v vs %v", a, b)
	}
}

func TestP2ValidateRejectsCorruptState(t *testing.T) {
	est, err := NewP2(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		est.Observe(float64(i))
	}
	est.Heights[1], est.Heights[3] = est.Heights[3], est.Heights[1]
	if err := est.Validate(); err == nil {
		t.Fatal("swapped marker heights passed Validate")
	}
	bad := &P2{P: 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range quantile passed Validate")
	}
}
