package uncertainty

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/dist"
	"repro/internal/markov"
)

func TestPropagateParallelMatchesSequential(t *testing.T) {
	// Same seed → identical sample sets (sampling is sequential in both).
	ln, err := dist.NewLognormalFromMoments(0.02, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	model := func(p map[string]float64) (float64, error) {
		c := markov.NewCTMC()
		if err := c.AddRate("up", "down", p["lambda"]); err != nil {
			return 0, err
		}
		if err := c.AddRate("down", "up", 1); err != nil {
			return 0, err
		}
		pi, err := c.SteadyStateMap()
		if err != nil {
			return 0, err
		}
		return pi["up"], nil
	}
	params := []Param{{Name: "lambda", Dist: ln}}
	opts := Options{Samples: 500, LatinHypercube: true}

	seq, err := Propagate(model, params, opts, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	par, err := PropagateParallel(context.Background(), model, params, opts,
		rand.New(rand.NewSource(99)), 8)
	if err != nil {
		t.Fatal(err)
	}
	if seq.N != par.N {
		t.Fatalf("n mismatch: %d vs %d", seq.N, par.N)
	}
	for i := range seq.Samples {
		if math.Abs(seq.Samples[i]-par.Samples[i]) > 1e-15 {
			t.Fatalf("sample %d differs: %g vs %g", i, seq.Samples[i], par.Samples[i])
		}
	}
	if math.Abs(seq.Mean-par.Mean) > 1e-14 {
		t.Errorf("mean mismatch: %g vs %g", seq.Mean, par.Mean)
	}
}

func TestPropagateParallelStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var count atomic.Int64
	model := func(p map[string]float64) (float64, error) {
		count.Add(1)
		if p["x"] > 0 { // always true for exponential draws
			return 0, boom
		}
		return 1, nil
	}
	params := []Param{{Name: "x", Dist: dist.MustExponential(1)}}
	_, err := PropagateParallel(context.Background(), model, params,
		Options{Samples: 10000}, rand.New(rand.NewSource(5)), 4)
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	// Early cancellation: far fewer than all evaluations ran.
	if n := count.Load(); n > 5000 {
		t.Errorf("ran %d evaluations; cancellation ineffective", n)
	}
}

func TestPropagateParallelContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before start
	model := func(map[string]float64) (float64, error) { return 1, nil }
	params := []Param{{Name: "x", Dist: dist.MustExponential(1)}}
	if _, err := PropagateParallel(ctx, model, params, Options{Samples: 100},
		rand.New(rand.NewSource(1)), 2); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestPropagateParallelValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	params := []Param{{Name: "x", Dist: dist.MustExponential(1)}}
	id := func(p map[string]float64) (float64, error) { return p["x"], nil }
	if _, err := PropagateParallel(context.Background(), nil, params, Options{}, rng, 2); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := PropagateParallel(context.Background(), id, nil, Options{}, rng, 2); err == nil {
		t.Error("no params accepted")
	}
	if _, err := PropagateParallel(context.Background(), id, params, Options{}, nil, 2); err == nil {
		t.Error("nil rng accepted")
	}
	// workers <= 0 defaults rather than erroring.
	if _, err := PropagateParallel(context.Background(), id, params,
		Options{Samples: 10}, rng, 0); err != nil {
		t.Errorf("workers=0 should default: %v", err)
	}
}
