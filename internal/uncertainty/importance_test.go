package uncertainty

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/markov"
)

func TestImportanceIdentifiesDominantParameter(t *testing.T) {
	// Output = big + 0.01·small: 'big' must rank first with |corr| ≈ 1.
	big, err := dist.NewUniform(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	small, err := dist.NewUniform(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	imp, err := Importance(
		func(p map[string]float64) (float64, error) {
			return p["big"] + 0.01*p["small"], nil
		},
		[]Param{{Name: "big", Dist: big}, {Name: "small", Dist: small}},
		2000, rng,
	)
	if err != nil {
		t.Fatal(err)
	}
	if imp[0].Name != "big" {
		t.Fatalf("dominant parameter = %s, want big (%v)", imp[0].Name, imp)
	}
	if imp[0].Spearman < 0.95 {
		t.Errorf("Spearman(big) = %g, want ≈ 1", imp[0].Spearman)
	}
	if math.Abs(imp[1].Spearman) > 0.2 {
		t.Errorf("Spearman(small) = %g, want ≈ 0", imp[1].Spearman)
	}
}

func TestImportanceSignAndMonotoneRobustness(t *testing.T) {
	// Availability is monotone DECREASING in λ and the relation is
	// nonlinear; Spearman should be ≈ -1 while Pearson is merely strongly
	// negative.
	lnd, err := dist.NewLognormalFromMoments(0.01, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	imp, err := Importance(
		func(p map[string]float64) (float64, error) {
			c := markov.NewCTMC()
			if err := c.AddRate("up", "down", p["lambda"]); err != nil {
				return 0, err
			}
			if err := c.AddRate("down", "up", 1); err != nil {
				return 0, err
			}
			pi, err := c.SteadyStateMap()
			if err != nil {
				return 0, err
			}
			return pi["up"], nil
		},
		[]Param{{Name: "lambda", Dist: lnd}},
		1500, rng,
	)
	if err != nil {
		t.Fatal(err)
	}
	if imp[0].Spearman > -0.999 {
		t.Errorf("Spearman = %g, want ≈ -1 (strictly monotone)", imp[0].Spearman)
	}
	if imp[0].Pearson > -0.8 {
		t.Errorf("Pearson = %g, want strongly negative", imp[0].Pearson)
	}
}

func TestImportanceTwoRateModel(t *testing.T) {
	// Duplex availability: with much wider uncertainty on μ than λ, μ must
	// rank first.
	lamD, err := dist.NewLognormalFromMoments(0.01, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	muD, err := dist.NewLognormalFromMoments(1.0, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	imp, err := Importance(
		func(p map[string]float64) (float64, error) {
			c := markov.NewCTMC()
			for _, e := range []error{
				c.AddRate("2", "1", 2*p["lambda"]),
				c.AddRate("1", "0", p["lambda"]),
				c.AddRate("1", "2", p["mu"]),
				c.AddRate("0", "1", p["mu"]),
			} {
				if e != nil {
					return 0, e
				}
			}
			pi, err := c.SteadyStateMap()
			if err != nil {
				return 0, err
			}
			return pi["2"] + pi["1"], nil
		},
		[]Param{{Name: "lambda", Dist: lamD}, {Name: "mu", Dist: muD}},
		1500, rng,
	)
	if err != nil {
		t.Fatal(err)
	}
	if imp[0].Name != "mu" {
		t.Errorf("dominant = %s, want mu (%+v)", imp[0].Name, imp)
	}
	// Availability increases with repair rate.
	if imp[0].Spearman <= 0 {
		t.Errorf("Spearman(mu) = %g, want positive", imp[0].Spearman)
	}
}

func TestRanksTies(t *testing.T) {
	r := ranks([]float64{3, 1, 3, 2})
	want := []float64{3.5, 1, 3.5, 2}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestImportanceValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := []Param{{Name: "x", Dist: dist.MustExponential(1)}}
	id := func(m map[string]float64) (float64, error) { return m["x"], nil }
	if _, err := Importance(nil, p, 10, rng); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Importance(id, nil, 10, rng); err == nil {
		t.Error("no params accepted")
	}
	if _, err := Importance(id, p, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
}
