package uncertainty

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/guard"
	"repro/internal/markov"
)

func TestIdentityPropagation(t *testing.T) {
	// Output = parameter: the result must reproduce the input distribution.
	ln, err := dist.NewLognormalFromMoments(10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	res, err := Propagate(
		func(p map[string]float64) (float64, error) { return p["x"], nil },
		[]Param{{Name: "x", Dist: ln}},
		Options{Samples: 20000},
		rng,
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mean-10) > 0.1 {
		t.Errorf("mean = %g, want ~10", res.Mean)
	}
	cv := res.StdDev / res.Mean
	if math.Abs(cv-0.3) > 0.02 {
		t.Errorf("cv = %g, want ~0.3", cv)
	}
	med, err := res.Percentile(50)
	if err != nil {
		t.Fatal(err)
	}
	wantMed, _ := ln.Quantile(0.5)
	if math.Abs(med-wantMed) > 0.2 {
		t.Errorf("median = %g, want ~%g", med, wantMed)
	}
}

func TestLHSCoversStrataExactly(t *testing.T) {
	// With LHS and a uniform parameter, each of n strata contains exactly
	// one sample.
	u, err := dist.NewUniform(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	n := 200
	res, err := Propagate(
		func(p map[string]float64) (float64, error) { return p["u"], nil },
		[]Param{{Name: "u", Dist: u}},
		Options{Samples: n, LatinHypercube: true},
		rng,
	)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	for _, s := range res.Samples {
		idx := int(s * float64(n))
		if idx >= n {
			idx = n - 1
		}
		counts[idx]++
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("stratum %d has %d samples, want exactly 1", i, c)
		}
	}
}

func TestAvailabilityCIPropagation(t *testing.T) {
	// Two-state availability model with uncertain failure rate: the CI on
	// availability must contain the nominal value and shrink as the
	// parameter variance shrinks.
	mu := 1.0
	model := func(p map[string]float64) (float64, error) {
		c := markov.NewCTMC()
		if err := c.AddRate("up", "down", p["lambda"]); err != nil {
			return 0, err
		}
		if err := c.AddRate("down", "up", mu); err != nil {
			return 0, err
		}
		pi, err := c.SteadyStateMap()
		if err != nil {
			return 0, err
		}
		return pi["up"], nil
	}
	nominal := 0.01
	widths := make([]float64, 0, 2)
	for _, cv := range []float64{0.5, 0.1} {
		lnd, err := dist.NewLognormalFromMoments(nominal, cv)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(31))
		res, err := Propagate(model, []Param{{Name: "lambda", Dist: lnd}},
			Options{Samples: 4000, LatinHypercube: true}, rng)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi, err := res.Interval(0.9)
		if err != nil {
			t.Fatal(err)
		}
		nominalA := mu / (nominal + mu)
		if !(lo <= nominalA && nominalA <= hi) {
			t.Errorf("cv=%g: nominal availability %g outside [%g, %g]", cv, nominalA, lo, hi)
		}
		widths = append(widths, hi-lo)
	}
	if widths[1] >= widths[0] {
		t.Errorf("CI width should shrink with parameter cv: %g vs %g", widths[1], widths[0])
	}
}

func TestPercentileEdges(t *testing.T) {
	res := &Result{Samples: []float64{1, 2, 3, 4}, N: 4}
	med, err := res.Percentile(50)
	if err != nil {
		t.Fatal(err)
	}
	if med != 2.5 {
		t.Errorf("median = %g, want 2.5", med)
	}
	if _, err := res.Percentile(0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := res.Percentile(100); err == nil {
		t.Error("p=100 accepted")
	}
	if _, err := (&Result{}).Percentile(50); err == nil {
		t.Error("empty samples accepted")
	}
	if _, _, err := res.Interval(1.5); err == nil {
		t.Error("bad level accepted")
	}
}

func TestPropagateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	okParam := []Param{{Name: "x", Dist: dist.MustExponential(1)}}
	if _, err := Propagate(nil, okParam, Options{}, rng); err == nil {
		t.Error("nil model accepted")
	}
	id := func(p map[string]float64) (float64, error) { return p["x"], nil }
	if _, err := Propagate(id, nil, Options{}, rng); err == nil {
		t.Error("no params accepted")
	}
	if _, err := Propagate(id, []Param{{Name: "", Dist: dist.MustExponential(1)}}, Options{}, rng); err == nil {
		t.Error("unnamed param accepted")
	}
	if _, err := Propagate(id, okParam, Options{}, nil); err == nil {
		t.Error("nil rng accepted")
	}
	boom := errors.New("boom")
	failing := func(map[string]float64) (float64, error) { return 0, boom }
	if _, err := Propagate(failing, okParam, Options{Samples: 3}, rng); !errors.Is(err, boom) {
		t.Errorf("model error not propagated: %v", err)
	}
}

func TestPropagateCancellation(t *testing.T) {
	u, err := dist.NewUniform(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	evals := 0
	ctx, cancel := context.WithCancel(context.Background())
	rng := rand.New(rand.NewSource(1))
	_, err = Propagate(
		func(p map[string]float64) (float64, error) {
			evals++
			if evals == 10 {
				cancel()
			}
			return p["u"], nil
		},
		[]Param{{Name: "u", Dist: u}},
		Options{Samples: 100000, Ctx: ctx},
		rng,
	)
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("error %v does not match guard.ErrCanceled", err)
	}
	var ie *guard.InterruptError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v does not unwrap to *guard.InterruptError", err)
	}
	if ie.Iterations < 10 || ie.Iterations > 11 {
		t.Errorf("interrupt after %d evaluations, want ~10", ie.Iterations)
	}
	if evals > 11 {
		t.Errorf("sweep kept evaluating after cancellation: %d evals", evals)
	}
}
