// Package uncertainty propagates parametric (epistemic) uncertainty through
// any scalar model output: input rates are random variables (reflecting
// finite measurement data), and the package samples them — by plain Monte
// Carlo or Latin hypercube sampling — re-solves the model per sample, and
// summarizes the output distribution with moments and percentile intervals.
//
// This is the tutorial's "how to take into account parametric uncertainty
// in model inputs": the model itself stays analytic; only the inputs are
// sampled.
package uncertainty

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dist"
	"repro/internal/guard"
)

// Param is one uncertain model input.
type Param struct {
	// Name keys the parameter in the sample map handed to the model.
	Name string
	// Dist is the epistemic distribution of the parameter.
	Dist dist.Distribution
}

// Model maps a full parameter assignment to a scalar output (e.g., system
// availability or MTTF).
type Model func(params map[string]float64) (float64, error)

// Typed sentinels for the summary accessors, matched with errors.Is.
var (
	// ErrNoSamples reports a percentile/interval query against a result
	// (or estimator) holding no samples.
	ErrNoSamples = errors.New("uncertainty: no samples")
	// ErrBadPercentile reports a quantile outside the open interval the
	// accessor supports: Percentile wants (0,100), Interval and the P²
	// estimators want (0,1). The boundary values are excluded on purpose —
	// p=0/p=1 are the sample extremes, not interpolatable percentiles.
	ErrBadPercentile = errors.New("uncertainty: percentile out of range")
)

// Result summarizes the propagated output distribution.
type Result struct {
	// N is the number of successful model evaluations.
	N int
	// Mean and StdDev are the sample moments of the output.
	Mean, StdDev float64
	// Samples holds the sorted output samples.
	Samples []float64
}

// Percentile returns the p-th percentile (0 < p < 100) of the output by
// linear interpolation of the sorted samples.
func (r *Result) Percentile(p float64) (float64, error) {
	if r == nil || len(r.Samples) == 0 {
		return 0, ErrNoSamples
	}
	if math.IsNaN(p) || p <= 0 || p >= 100 {
		return 0, fmt.Errorf("percentile %g outside (0,100): %w", p, ErrBadPercentile)
	}
	pos := p / 100 * float64(len(r.Samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return r.Samples[lo], nil
	}
	frac := pos - float64(lo)
	return r.Samples[lo]*(1-frac) + r.Samples[hi]*frac, nil
}

// Interval returns the central interval covering the given probability mass
// (e.g. 0.9 → [5th, 95th] percentiles).
func (r *Result) Interval(level float64) (lo, hi float64, err error) {
	if math.IsNaN(level) || level <= 0 || level >= 1 {
		return 0, 0, fmt.Errorf("interval level %g outside (0,1): %w", level, ErrBadPercentile)
	}
	tail := (1 - level) / 2 * 100
	lo, err = r.Percentile(tail)
	if err != nil {
		return 0, 0, err
	}
	hi, err = r.Percentile(100 - tail)
	return lo, hi, err
}

// Options configures a propagation run.
type Options struct {
	// Samples is the number of model evaluations (default 1000).
	Samples int
	// LatinHypercube selects LHS instead of independent sampling.
	LatinHypercube bool
	// Ctx interrupts the sweep between model evaluations; nil never
	// interrupts. An interrupted sweep returns a *guard.InterruptError
	// whose iteration count is the number of completed evaluations.
	Ctx context.Context
}

// Propagate samples the parameters, evaluates the model per sample, and
// summarizes the output. Model evaluation errors abort the run (an
// availability model that fails on valid samples is a modeling bug, not a
// statistical event).
func Propagate(model Model, params []Param, opts Options, rng *rand.Rand) (*Result, error) {
	if model == nil {
		return nil, errors.New("uncertainty: nil model")
	}
	if len(params) == 0 {
		return nil, errors.New("uncertainty: no parameters")
	}
	for i, p := range params {
		if p.Name == "" || p.Dist == nil {
			return nil, fmt.Errorf("uncertainty: parameter %d incomplete", i)
		}
	}
	if rng == nil {
		return nil, errors.New("uncertainty: nil rng")
	}
	n := opts.Samples
	if n <= 0 {
		n = 1000
	}
	draws, err := drawMatrix(params, n, opts.LatinHypercube, rng)
	if err != nil {
		return nil, err
	}
	res := &Result{Samples: make([]float64, 0, n)}
	var sum, sum2 float64
	assign := make(map[string]float64, len(params))
	for s := 0; s < n; s++ {
		if err := guard.Ctx(opts.Ctx, "uncertainty.propagate", s, math.NaN()); err != nil {
			return nil, err
		}
		for j, p := range params {
			assign[p.Name] = draws[j][s]
		}
		out, err := model(assign)
		if err != nil {
			return nil, fmt.Errorf("uncertainty: model evaluation %d: %w", s, err)
		}
		res.Samples = append(res.Samples, out)
		sum += out
		sum2 += out * out
	}
	res.N = len(res.Samples)
	res.Mean = sum / float64(res.N)
	variance := sum2/float64(res.N) - res.Mean*res.Mean
	if variance < 0 {
		variance = 0
	}
	res.StdDev = math.Sqrt(variance)
	sort.Float64s(res.Samples)
	return res, nil
}

// drawMatrix returns draws[param][sample].
func drawMatrix(params []Param, n int, lhs bool, rng *rand.Rand) ([][]float64, error) {
	out := make([][]float64, len(params))
	for j, p := range params {
		col := make([]float64, n)
		if lhs {
			// Latin hypercube: one draw per equal-probability stratum,
			// randomly permuted.
			perm := rng.Perm(n)
			for s := 0; s < n; s++ {
				u := (float64(perm[s]) + rng.Float64()) / float64(n)
				if u <= 0 {
					u = 1e-12
				}
				if u >= 1 {
					u = 1 - 1e-12
				}
				q, err := p.Dist.Quantile(u)
				if err != nil {
					return nil, fmt.Errorf("uncertainty: %s quantile: %w", p.Name, err)
				}
				col[s] = q
			}
		} else {
			for s := 0; s < n; s++ {
				col[s] = p.Dist.Rand(rng)
			}
		}
		out[j] = col
	}
	return out, nil
}
