package uncertainty

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
)

// TestPercentileIntervalEdgeCases pins the typed-error contract of the
// Result accessors: empty results and boundary quantiles return
// sentinel errors, never panic, never NaN.
func TestPercentileIntervalEdgeCases(t *testing.T) {
	full := &Result{Samples: []float64{1, 2, 3, 4, 5}, N: 5}
	cases := []struct {
		name    string
		res     *Result
		call    func(r *Result) (float64, error)
		wantErr error
	}{
		{"empty percentile", &Result{}, func(r *Result) (float64, error) { return r.Percentile(50) }, ErrNoSamples},
		{"nil-slice percentile", &Result{Samples: nil}, func(r *Result) (float64, error) { return r.Percentile(95) }, ErrNoSamples},
		{"empty interval", &Result{}, func(r *Result) (float64, error) { lo, _, err := r.Interval(0.9); return lo, err }, ErrNoSamples},
		{"p=0", full, func(r *Result) (float64, error) { return r.Percentile(0) }, ErrBadPercentile},
		{"p=100", full, func(r *Result) (float64, error) { return r.Percentile(100) }, ErrBadPercentile},
		{"p<0", full, func(r *Result) (float64, error) { return r.Percentile(-3) }, ErrBadPercentile},
		{"p>100", full, func(r *Result) (float64, error) { return r.Percentile(250) }, ErrBadPercentile},
		{"p NaN", full, func(r *Result) (float64, error) { return r.Percentile(math.NaN()) }, ErrBadPercentile},
		{"level=0", full, func(r *Result) (float64, error) { lo, _, err := r.Interval(0); return lo, err }, ErrBadPercentile},
		{"level=1", full, func(r *Result) (float64, error) { lo, _, err := r.Interval(1); return lo, err }, ErrBadPercentile},
		{"level NaN", full, func(r *Result) (float64, error) { lo, _, err := r.Interval(math.NaN()); return lo, err }, ErrBadPercentile},
		{"valid percentile", full, func(r *Result) (float64, error) { return r.Percentile(50) }, nil},
		{"valid interval", full, func(r *Result) (float64, error) { lo, _, err := r.Interval(0.5); return lo, err }, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := tc.call(tc.res)
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if math.IsNaN(v) {
					t.Fatal("valid query returned NaN")
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got error %v, want %v", err, tc.wantErr)
			}
			if v != 0 {
				t.Fatalf("error path leaked value %g", v)
			}
		})
	}
}

// TestPropagateParallelDeterministicAcrossWorkers pins result equality
// across worker counts: the same seed must yield the same Result for
// workers=1, 4, and 16, because outputs are index-addressed rather than
// collected in completion order.
func TestPropagateParallelDeterministicAcrossWorkers(t *testing.T) {
	model := func(params map[string]float64) (float64, error) {
		return 1 / (1 + params["lambda"]), nil
	}
	lam, err := dist.NewLognormal(math.Log(0.02), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	params := []Param{{Name: "lambda", Dist: lam}}
	opts := Options{Samples: 4000, LatinHypercube: true}

	var ref *Result
	for _, workers := range []int{1, 4, 16} {
		rng := rand.New(rand.NewSource(2024))
		res, err := PropagateParallel(context.Background(), model, params, opts, rng, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.N != ref.N ||
			math.Float64bits(res.Mean) != math.Float64bits(ref.Mean) ||
			math.Float64bits(res.StdDev) != math.Float64bits(ref.StdDev) {
			t.Fatalf("workers=%d moments differ: %+v vs %+v", workers, res, ref)
		}
		for i := range res.Samples {
			if math.Float64bits(res.Samples[i]) != math.Float64bits(ref.Samples[i]) {
				t.Fatalf("workers=%d sample %d differs: %v vs %v", workers, i, res.Samples[i], ref.Samples[i])
			}
		}
	}
}
