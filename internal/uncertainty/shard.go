package uncertainty

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/guard"
)

// This file is the deterministic sharding substrate under the async job
// engine (internal/jobs): a million-sample sweep is cut into fixed-size
// shards, every shard draws from its own splitmix64-seeded RNG stream,
// and shard summaries fold — in shard-index order — into one sweep
// result. The contract that makes crash recovery provable:
//
//   - a shard's state after RunShard is a pure function of
//     (seed, shard index, shard size, params, model), so any shard is
//     exactly replayable on any worker, after any number of retries,
//     before or after a process restart;
//   - FoldShards combines per-shard states in index order with a
//     deterministic reduction, so the final result is independent of
//     worker count, scheduling order, and retry history.

// splitmix64 advances the per-shard RNG stream state. It matches the
// internal/failpoint generator bit-for-bit (same constants), so seeded
// chaos schedules and seeded sweeps share one reproducibility story.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// sm64Source is a rand.Source64 over a splitmix64 stream: tiny,
// seedable, identical on every platform.
type sm64Source struct{ state uint64 }

func (s *sm64Source) Uint64() uint64 {
	s.state = splitmix64(s.state)
	return s.state
}

func (s *sm64Source) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *sm64Source) Seed(seed int64) { s.state = uint64(seed) }

// ShardRNG returns the deterministic RNG for one shard of a seeded
// sweep: stream i is the splitmix64 sequence starting at
// splitmix64(seed XOR golden·(i+1)), so neighboring shards get
// decorrelated streams from one user-visible seed.
func ShardRNG(seed uint64, shard int) *rand.Rand {
	state := splitmix64(seed ^ (0x9e3779b97f4a7c15 * uint64(shard+1)))
	return rand.New(&sm64Source{state: state})
}

// ShardState is the checkpointable accumulator of one completed (or
// in-flight) shard: exact moment sums plus one P² estimator per
// requested quantile, O(1) in the shard size. All fields are exported
// and JSON round-trips are exact, so the job engine's write-ahead log
// can persist a completed shard and restore it bit-identically.
type ShardState struct {
	// Index is the shard's position in the sweep (0-based).
	Index int `json:"index"`
	// N is the number of observations folded in.
	N int64 `json:"n"`
	// Sum and Sum2 are the exact running moment sums.
	Sum  float64 `json:"sum"`
	Sum2 float64 `json:"sum2"`
	// Min and Max are the observed extremes.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Quantiles are the per-quantile P² estimators, in the sweep's
	// quantile order.
	Quantiles []*P2 `json:"quantiles,omitempty"`
}

// NewShardState builds an empty accumulator for the given quantiles.
func NewShardState(index int, quantiles []float64) (*ShardState, error) {
	st := &ShardState{Index: index, Quantiles: make([]*P2, 0, len(quantiles))}
	for _, p := range quantiles {
		est, err := NewP2(p)
		if err != nil {
			return nil, err
		}
		st.Quantiles = append(st.Quantiles, est)
	}
	return st, nil
}

// Observe folds one model output into the shard.
func (s *ShardState) Observe(x float64) {
	if s.N == 0 || x < s.Min {
		s.Min = x
	}
	if s.N == 0 || x > s.Max {
		s.Max = x
	}
	s.N++
	s.Sum += x
	s.Sum2 += x * x
	for _, q := range s.Quantiles {
		q.Observe(x)
	}
}

// Validate checks a shard restored from a checkpoint for structural
// sanity before it is trusted by a resumed sweep.
func (s *ShardState) Validate() error {
	if s.Index < 0 {
		return fmt.Errorf("uncertainty: shard index %d negative", s.Index)
	}
	if s.N < 0 {
		return fmt.Errorf("uncertainty: shard %d has negative count %d", s.Index, s.N)
	}
	if s.N > 0 && (math.IsNaN(s.Min) || math.IsNaN(s.Max) || s.Min > s.Max) {
		return fmt.Errorf("uncertainty: shard %d extremes invalid (min %g, max %g)", s.Index, s.Min, s.Max)
	}
	for _, q := range s.Quantiles {
		if q == nil {
			return fmt.Errorf("uncertainty: shard %d has a nil quantile estimator", s.Index)
		}
		if err := q.Validate(); err != nil {
			return fmt.Errorf("uncertainty: shard %d: %w", s.Index, err)
		}
		if q.Count != s.N {
			return fmt.Errorf("uncertainty: shard %d estimator count %d != shard count %d", s.Index, q.Count, s.N)
		}
	}
	return nil
}

// ShardPlan describes one shard of a seeded sweep.
type ShardPlan struct {
	// Index is the 0-based shard index; Size the number of samples.
	Index, Size int
	// Seed is the sweep-level seed the shard stream derives from.
	Seed uint64
	// Quantiles are the target quantiles, each in (0,1).
	Quantiles []float64
}

// RunShard evaluates one shard deterministically: the shard's RNG
// stream is derived from (Seed, Index), parameters are drawn in
// declaration order, and every model output folds into a fresh
// ShardState. The context interrupts between model evaluations with a
// typed *guard.InterruptError. Model evaluation errors abort the shard
// (the caller retries or fails the job; a partial shard is never
// checkpointed).
func RunShard(ctx context.Context, model Model, params []Param, plan ShardPlan) (*ShardState, error) {
	if model == nil {
		return nil, fmt.Errorf("uncertainty: nil model")
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("uncertainty: no parameters")
	}
	for i, p := range params {
		if p.Name == "" || p.Dist == nil {
			return nil, fmt.Errorf("uncertainty: parameter %d incomplete", i)
		}
	}
	if plan.Size <= 0 {
		return nil, fmt.Errorf("uncertainty: shard %d has non-positive size %d", plan.Index, plan.Size)
	}
	st, err := NewShardState(plan.Index, plan.Quantiles)
	if err != nil {
		return nil, err
	}
	rng := ShardRNG(plan.Seed, plan.Index)
	assign := make(map[string]float64, len(params))
	for s := 0; s < plan.Size; s++ {
		if err := guard.Ctx(ctx, "uncertainty.shard", s, math.NaN()); err != nil {
			return nil, err
		}
		for _, p := range params {
			assign[p.Name] = p.Dist.Rand(rng)
		}
		out, err := model(assign)
		if err != nil {
			return nil, fmt.Errorf("uncertainty: shard %d evaluation %d: %w", plan.Index, s, err)
		}
		st.Observe(out)
	}
	return st, nil
}

// QuantileEstimate is one folded quantile of a sweep.
type QuantileEstimate struct {
	// P is the quantile in (0,1); Value the folded estimate.
	P     float64 `json:"p"`
	Value float64 `json:"value"`
}

// SweepResult summarizes a sharded sweep: exact moments and extremes,
// P²-estimated quantiles, all computed without sample retention.
type SweepResult struct {
	// N is the total number of model evaluations.
	N int64 `json:"n"`
	// Mean and StdDev are the exact sample moments.
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	// Min and Max are the observed extremes.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Quantiles are the folded quantile estimates in ascending P order.
	Quantiles []QuantileEstimate `json:"quantiles,omitempty"`
}

// FoldShards reduces per-shard states into one SweepResult. The
// reduction is deterministic: shards are processed in index order
// (required and verified — a gap or duplicate is an error), moments add
// exactly, and each quantile folds as the shard-size-weighted mean of
// the per-shard P² estimates. Feeding the same shard states always
// yields the same bits, which is what makes a resumed sweep's final
// result indistinguishable from an uninterrupted one.
func FoldShards(shards []*ShardState) (*SweepResult, error) {
	if len(shards) == 0 {
		return nil, ErrNoSamples
	}
	nq := len(shards[0].Quantiles)
	res := &SweepResult{}
	qsum := make([]float64, nq)
	for i, sh := range shards {
		if sh == nil {
			return nil, fmt.Errorf("uncertainty: fold: shard %d missing", i)
		}
		if sh.Index != i {
			return nil, fmt.Errorf("uncertainty: fold: shard %d out of order (index %d)", i, sh.Index)
		}
		if sh.N == 0 {
			return nil, fmt.Errorf("uncertainty: fold: shard %d is empty", i)
		}
		if len(sh.Quantiles) != nq {
			return nil, fmt.Errorf("uncertainty: fold: shard %d has %d quantiles, want %d", i, len(sh.Quantiles), nq)
		}
		if i == 0 || sh.Min < res.Min {
			res.Min = sh.Min
		}
		if i == 0 || sh.Max > res.Max {
			res.Max = sh.Max
		}
		res.N += sh.N
		res.Mean += sh.Sum    // reused as the running sum until the end
		res.StdDev += sh.Sum2 // reused as the running square sum
		for j, q := range sh.Quantiles {
			if i > 0 && shards[0].Quantiles[j].P != q.P { //numvet:allow float-eq quantile targets are configuration constants shared across shards
				return nil, fmt.Errorf("uncertainty: fold: shard %d quantile %d targets %g, want %g",
					i, j, q.P, shards[0].Quantiles[j].P)
			}
			v, err := q.Value()
			if err != nil {
				return nil, fmt.Errorf("uncertainty: fold: shard %d: %w", i, err)
			}
			qsum[j] += float64(sh.N) * v
		}
	}
	n := float64(res.N)
	sum, sum2 := res.Mean, res.StdDev
	res.Mean = sum / n
	variance := sum2/n - res.Mean*res.Mean
	if variance < 0 {
		variance = 0
	}
	res.StdDev = math.Sqrt(variance)
	res.Quantiles = make([]QuantileEstimate, 0, nq)
	for j, q := range shards[0].Quantiles {
		res.Quantiles = append(res.Quantiles, QuantileEstimate{P: q.P, Value: qsum[j] / n})
	}
	sort.Slice(res.Quantiles, func(a, b int) bool { return res.Quantiles[a].P < res.Quantiles[b].P })
	return res, nil
}

// Quantile returns the folded estimate for the target quantile p, or
// ErrBadPercentile when the sweep did not track it.
func (r *SweepResult) Quantile(p float64) (float64, error) {
	for _, q := range r.Quantiles {
		if q.P == p { //numvet:allow float-eq quantile targets are configuration constants
			return q.Value, nil
		}
	}
	return 0, fmt.Errorf("quantile %g not tracked by this sweep: %w", p, ErrBadPercentile)
}
