package uncertainty

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/guard"
)

// shardModel is a cheap nonlinear model for shard tests.
func shardModel(params map[string]float64) (float64, error) {
	lam, mu := params["lambda"], params["mu"]
	return mu / (mu + lam), nil
}

func shardParams(t *testing.T) []Param {
	t.Helper()
	lam, err := dist.NewLognormal(math.Log(0.01), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := dist.NewGamma(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return []Param{{Name: "lambda", Dist: lam}, {Name: "mu", Dist: mu}}
}

func runSweep(t *testing.T, seed uint64, shards, size int, order []int) *SweepResult {
	t.Helper()
	params := shardParams(t)
	states := make([]*ShardState, shards)
	for _, i := range order {
		st, err := RunShard(context.Background(), shardModel, params, ShardPlan{
			Index: i, Size: size, Seed: seed, Quantiles: []float64{0.05, 0.5, 0.95},
		})
		if err != nil {
			t.Fatal(err)
		}
		states[i] = st
	}
	res, err := FoldShards(states)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardFoldOrderIndependence is the core determinism contract: the
// folded result is bit-identical no matter which order the shards were
// computed in (workers, retries, and crash-resume only change that
// order).
func TestShardFoldOrderIndependence(t *testing.T) {
	const shards, size = 8, 400
	forward := runSweep(t, 42, shards, size, []int{0, 1, 2, 3, 4, 5, 6, 7})
	scrambled := runSweep(t, 42, shards, size, []int{5, 0, 7, 3, 1, 6, 2, 4})
	if math.Float64bits(forward.Mean) != math.Float64bits(scrambled.Mean) ||
		math.Float64bits(forward.StdDev) != math.Float64bits(scrambled.StdDev) {
		t.Fatalf("moments depend on execution order: %+v vs %+v", forward, scrambled)
	}
	for i := range forward.Quantiles {
		a, b := forward.Quantiles[i], scrambled.Quantiles[i]
		if math.Float64bits(a.Value) != math.Float64bits(b.Value) {
			t.Fatalf("quantile p=%g depends on execution order: %v vs %v", a.P, a.Value, b.Value)
		}
	}
}

// TestShardReplayBitIdentical re-runs one shard and demands an identical
// serialized state — the property the job engine's retry and resume
// paths rely on.
func TestShardReplayBitIdentical(t *testing.T) {
	params := shardParams(t)
	plan := ShardPlan{Index: 3, Size: 500, Seed: 99, Quantiles: []float64{0.5, 0.95}}
	a, err := RunShard(context.Background(), shardModel, params, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShard(context.Background(), shardModel, params, plan)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("replayed shard differs:\n%s\n%s", ja, jb)
	}
}

func TestShardStateJSONRoundTrip(t *testing.T) {
	params := shardParams(t)
	st, err := RunShard(context.Background(), shardModel, params, ShardPlan{
		Index: 0, Size: 250, Seed: 7, Quantiles: []float64{0.05, 0.5, 0.95},
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back ShardState
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	blob2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("shard state not byte-stable across JSON round trip:\n%s\n%s", blob, blob2)
	}
}

func TestShardQuantilesNearExact(t *testing.T) {
	// One big fold against the sequential Propagate over the same model
	// family: sharded quantiles must land close to exact sample quantiles.
	res := runSweep(t, 1234, 20, 1000, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19})
	if res.N != 20000 {
		t.Fatalf("N = %d, want 20000", res.N)
	}
	med, err := res.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med <= res.Min || med >= res.Max {
		t.Fatalf("median %g outside observed range [%g, %g]", med, res.Min, res.Max)
	}
	lo, _ := res.Quantile(0.05)
	hi, _ := res.Quantile(0.95)
	if !(lo < med && med < hi) {
		t.Fatalf("quantiles not ordered: %g, %g, %g", lo, med, hi)
	}
	if _, err := res.Quantile(0.25); !errors.Is(err, ErrBadPercentile) {
		t.Fatalf("untracked quantile: got %v, want ErrBadPercentile", err)
	}
}

func TestRunShardInterrupt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunShard(ctx, shardModel, shardParams(t), ShardPlan{
		Index: 0, Size: 100, Seed: 1, Quantiles: []float64{0.5},
	})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("canceled shard: got %v, want guard.ErrCanceled", err)
	}
}

func TestFoldShardsRejectsGapsAndDuplicates(t *testing.T) {
	params := shardParams(t)
	mk := func(i int) *ShardState {
		st, err := RunShard(context.Background(), shardModel, params, ShardPlan{
			Index: i, Size: 50, Seed: 5, Quantiles: []float64{0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if _, err := FoldShards(nil); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("empty fold: got %v, want ErrNoSamples", err)
	}
	if _, err := FoldShards([]*ShardState{mk(0), nil, mk(2)}); err == nil {
		t.Fatal("fold with a missing shard succeeded")
	}
	if _, err := FoldShards([]*ShardState{mk(0), mk(0)}); err == nil {
		t.Fatal("fold with a duplicated index succeeded")
	}
}
