package uncertainty

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/guard"
)

// PropagateParallel is Propagate with the model evaluations fanned out
// across a bounded worker pool. Sampling stays sequential (one RNG, fully
// reproducible); only the embarrassingly parallel model solves are
// concurrent, so a run with the same seed yields the same sample set as
// Propagate. Workers stop at the first model error via context
// cancellation and the error is returned.
func PropagateParallel(ctx context.Context, model Model, params []Param, opts Options, rng *rand.Rand, workers int) (*Result, error) {
	if model == nil {
		return nil, errors.New("uncertainty: nil model")
	}
	if len(params) == 0 {
		return nil, errors.New("uncertainty: no parameters")
	}
	for i, p := range params {
		if p.Name == "" || p.Dist == nil {
			return nil, fmt.Errorf("uncertainty: parameter %d incomplete", i)
		}
	}
	if rng == nil {
		return nil, errors.New("uncertainty: nil rng")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := opts.Samples
	if n <= 0 {
		n = 1000
	}
	draws, err := drawMatrix(params, n, opts.LatinHypercube, rng)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct{ index int }
	jobs := make(chan job)
	outputs := make([]float64, n)
	var (
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() { //numvet:allow goroutine-no-ctx workers drain the jobs channel, which the feeder closes on cancellation
			defer wg.Done()
			assign := make(map[string]float64, len(params))
			for j := range jobs {
				for k, p := range params {
					assign[p.Name] = draws[k][j.index]
				}
				out, err := model(assign)
				if err != nil {
					setErr(fmt.Errorf("uncertainty: model evaluation %d: %w", j.index, err))
					return
				}
				outputs[j.index] = out
			}
		}()
	}
	fed := 0
feed:
	for s := 0; s < n; s++ {
		select {
		case jobs <- job{index: s}:
			fed++
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := guard.Ctx(ctx, "uncertainty.propagate", fed, math.NaN()); err != nil {
		return nil, err
	}

	res := &Result{Samples: outputs, N: n}
	var sum, sum2 float64
	for _, v := range outputs {
		sum += v
		sum2 += v * v
	}
	res.Mean = sum / float64(n)
	variance := sum2/float64(n) - res.Mean*res.Mean
	if variance < 0 {
		variance = 0
	}
	res.StdDev = math.Sqrt(variance)
	sort.Float64s(res.Samples)
	return res, nil
}
