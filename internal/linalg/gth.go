package linalg

import (
	"fmt"

	"repro/internal/failpoint"
)

// GTH computes the stationary probability vector π of an irreducible CTMC
// whose infinitesimal generator Q is given densely (π·Q = 0, Σπ = 1), using
// the Grassmann–Taksar–Heyman state-reduction algorithm.
//
// GTH performs no subtractions, so it is numerically stable even for stiff
// generators (rates spanning many orders of magnitude), which is the common
// case in availability models (failure rates ~1e-5/h vs repair rates ~1/h).
//
// The input matrix is not modified. Diagonal entries of Q are ignored and
// reconstructed from the off-diagonal rates, so callers may pass either a
// full generator or just the rate matrix.
func GTH(q *Dense) ([]float64, error) {
	if err := failpoint.Inject(fpGTH); err != nil {
		return nil, err
	}
	n := q.Rows()
	if q.Cols() != n {
		return nil, fmt.Errorf("gth: matrix %dx%d not square: %w", q.Rows(), q.Cols(), ErrDimensionMismatch)
	}
	if n == 0 {
		return nil, fmt.Errorf("gth: empty generator")
	}
	if n == 1 {
		return []float64{1}, nil
	}
	// Copy off-diagonal rates; negative off-diagonals are invalid.
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := q.At(i, j)
			if v < 0 {
				return nil, fmt.Errorf("gth: negative rate %g at (%d,%d)", v, i, j)
			}
			a.Set(i, j, v)
		}
	}
	// State reduction from the last state down to state 1.
	for k := n - 1; k >= 1; k-- {
		// Total outflow of state k to states 0..k-1.
		var s float64
		for j := 0; j < k; j++ {
			s += a.At(k, j)
		}
		if s == 0 { //numvet:allow float-eq exactly-zero sum means a structurally reducible generator
			return nil, fmt.Errorf("gth: state %d has no transitions to lower-indexed states; generator reducible", k)
		}
		for i := 0; i < k; i++ {
			aik := a.At(i, k)
			if aik == 0 { //numvet:allow float-eq skipping exact zeros is a sparsity optimization
				continue
			}
			f := aik / s
			row, krow := a.Row(i), a.Row(k)
			for j := 0; j < k; j++ {
				if j == i {
					continue
				}
				row[j] += f * krow[j]
			}
		}
	}
	// Back substitution: π̃(0)=1, π̃(k) = Σ_{i<k} π̃(i)·a(i,k)/s(k).
	pi := make([]float64, n)
	pi[0] = 1
	for k := 1; k < n; k++ {
		var s float64
		for j := 0; j < k; j++ {
			s += a.At(k, j)
		}
		var num float64
		for i := 0; i < k; i++ {
			num += pi[i] * a.At(i, k)
		}
		pi[k] = num / s
	}
	if err := Normalize1(pi); err != nil {
		return nil, fmt.Errorf("gth: %w", err)
	}
	return pi, nil
}

// GTHCSR runs GTH on a sparse generator by densifying it. GTH fill-in makes
// a truly sparse variant unprofitable below a few thousand states, which is
// the regime where GTH is used; larger chains should use SOR.
func GTHCSR(q *CSR) ([]float64, error) {
	return GTH(q.ToDense())
}
