package linalg

import (
	"fmt"
	"math"
)

// Simpson integrates f over [a, b] with n (forced even) uniform panels
// using composite Simpson's rule.
func Simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	s := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			s += 4 * f(x)
		} else {
			s += 2 * f(x)
		}
	}
	return s * h / 3
}

// AdaptiveSimpson integrates f over [a, b] to absolute tolerance tol using
// recursive adaptive Simpson quadrature with a depth limit.
func AdaptiveSimpson(f func(float64) float64, a, b, tol float64) float64 {
	if tol <= 0 {
		tol = 1e-10
	}
	c := (a + b) / 2
	fa, fb, fc := f(a), f(b), f(c)
	whole := (b - a) / 6 * (fa + 4*fc + fb)
	return adaptiveAux(f, a, b, tol, whole, fa, fb, fc, 50)
}

func adaptiveAux(f func(float64) float64, a, b, tol, whole, fa, fb, fc float64, depth int) float64 {
	c := (a + b) / 2
	l, r := (a+c)/2, (c+b)/2
	fl, fr := f(l), f(r)
	left := (c - a) / 6 * (fa + 4*fl + fc)
	right := (b - c) / 6 * (fc + 4*fr + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveAux(f, a, c, tol/2, left, fa, fc, fl, depth-1) +
		adaptiveAux(f, c, b, tol/2, right, fc, fb, fr, depth-1)
}

// IntegrateToInf integrates f over [0, ∞) by mapping t = x/(1-x) onto (0,1)
// and applying adaptive Simpson. f must decay to zero; reliability functions
// R(t) of systems with finite MTTF qualify.
func IntegrateToInf(f func(float64) float64, tol float64) float64 {
	g := func(x float64) float64 {
		if x >= 1 {
			return 0
		}
		t := x / (1 - x)
		jac := 1 / ((1 - x) * (1 - x))
		v := f(t) * jac
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return v
	}
	return AdaptiveSimpson(g, 0, 1, tol)
}

// Brent finds a root of f in [a, b] using Brent's method. f(a) and f(b)
// must have opposite signs.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	fa, fb := f(a), f(b)
	if fa == 0 { //numvet:allow float-eq exact root short-circuit; tolerance is handled by the bracket test
		return a, nil
	}
	if fb == 0 { //numvet:allow float-eq exact root short-circuit; tolerance is handled by the bracket test
		return b, nil
	}
	if fa*fb > 0 {
		return 0, fmt.Errorf("brent: f(%g)=%g and f(%g)=%g do not bracket a root", a, fa, b, fb)
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < 200; i++ {
		if fb == 0 || math.Abs(b-a) < tol { //numvet:allow float-eq exact root short-circuit; tolerance is handled by the bracket test
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc { //numvet:allow float-eq coincident ordinates must be excluded exactly before interpolating
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = (a + b) / 2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if fa*fs < 0 {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, nil
}
